//! Data-center walkthrough: multipath TCP inside a FatTree.
//!
//! Builds a FatTree(k=4) (16 hosts), runs the TP1 random-permutation
//! workload under single-path TCP (ECMP mimic) and under MPTCP with 1–4
//! subflows, and prints the utilization curve — a pocket edition of the
//! paper's §4 story ("multipath needs ~8 paths at k=8; fewer suffice at
//! k=4 because there are only 4 distinct inter-pod paths").
//!
//! Run with: `cargo run --release --example datacenter`

use mptcp_cc::AlgorithmKind;
use mptcp_netsim::{ConnectionSpec, LinkSpec, SimTime, Simulator};
use mptcp_topology::FatTree;
use mptcp_workload::random_permutation_pairs;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn run(paths: usize, seed: u64) -> f64 {
    let mut sim = Simulator::new(seed);
    let ft = FatTree::build(&mut sim, 4, LinkSpec::mbps(100.0, SimTime::from_micros(10), 100));
    let mut rng = StdRng::seed_from_u64(seed);
    let pairs = random_permutation_pairs(ft.host_count(), &mut rng);
    let conns: Vec<_> = pairs
        .iter()
        .map(|&(s, d)| {
            if paths == 0 {
                sim.add_connection(
                    ConnectionSpec::bulk(AlgorithmKind::Uncoupled)
                        .path(ft.ecmp_path(s, d, &mut rng)),
                )
            } else {
                let mut spec = ConnectionSpec::bulk(AlgorithmKind::Mptcp);
                for p in ft.random_paths(s, d, paths, &mut rng) {
                    spec = spec.path(p);
                }
                sim.add_connection(spec)
            }
        })
        .collect();
    sim.run_until(SimTime::from_secs(10));
    let total: f64 =
        conns.iter().map(|&c| sim.connection_stats(c).throughput_bps(sim.now())).sum();
    total / conns.len() as f64 / 1e6
}

fn main() {
    println!("FatTree(k=4), 16 hosts, TP1 random permutation, 100 Mb/s NICs");
    println!();
    let single = run(0, 5);
    println!("single-path TCP (ECMP mimic): {single:5.1} Mb/s per host");
    for paths in 1..=4 {
        let mbps = run(paths, 5);
        let bar = "#".repeat((mbps / 2.5) as usize);
        println!("MPTCP, {paths} path(s)            : {mbps:5.1} Mb/s per host  {bar}");
    }
    println!();
    println!("The paper's §4 shape: utilization climbs with path diversity,");
    println!("while single-path TCP is stuck with whatever ECMP dealt it.");
}
