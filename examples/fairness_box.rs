//! Fig. 6, live: the §2.5 fairness constraints for a two-path flow, with
//! every algorithm's fluid equilibrium plotted inside them.
//!
//! The axes are the per-path rates `w_r/RTT_r`. Constraint (3) — the
//! incentive goal — requires the point to lie on or above the diagonal
//! `x + y = max_r ŵTCP_r/RTT_r`; the constraints (4) require it on or
//! below that same diagonal and inside the box `x ≤ ŵTCP_1/RTT_1`,
//! `y ≤ ŵTCP_2/RTT_2`. The only fair points are ON the diagonal, inside
//! the box — and MPTCP's equilibrium lands there while the strawmen miss.
//!
//! Run with: `cargo run --release --example fairness_box`

use mptcp_cc::fluid::fairness::check_fairness;
use mptcp_cc::fluid::{equilibrium, tcp_rate};
use mptcp_cc::{Coupled, Ewtcp, Mptcp, MultipathCc, SemiCoupled, UncoupledReno};

// The §2.3 WiFi / 3G configuration: path 1 fast & lossy, path 2 slow & clean.
const LOSS: [f64; 2] = [0.04, 0.01];
const RTT: [f64; 2] = [0.010, 0.100];

fn main() {
    let t1 = tcp_rate(LOSS[0], RTT[0]); // ŵTCP_1/RTT_1 ≈ 707 pkt/s
    let t2 = tcp_rate(LOSS[1], RTT[1]); // ŵTCP_2/RTT_2 ≈ 141 pkt/s
    let best = t1.max(t2);

    let algorithms: Vec<(char, &str, Box<dyn MultipathCc>)> = vec![
        ('U', "UNCOUPLED", Box::new(UncoupledReno::new())),
        ('E', "EWTCP", Box::new(Ewtcp::equal_split(2))),
        ('C', "COUPLED", Box::new(Coupled::new())),
        ('S', "SEMICOUPLED", Box::new(SemiCoupled::new())),
        ('M', "MPTCP", Box::new(Mptcp::new())),
    ];

    // Plot region: x in [0, 1.1·t1], y in [0, 1.6·t2].
    let (width, height) = (64usize, 22usize);
    let x_max = 1.15 * t1;
    let y_max = 1.8 * t2;
    let mut grid = vec![vec![' '; width]; height];
    let to_cell = |x: f64, y: f64| -> (usize, usize) {
        let cx = ((x / x_max) * (width - 1) as f64).round() as usize;
        let cy = ((1.0 - y / y_max) * (height - 1) as f64).round() as usize;
        (cx.min(width - 1), cy.min(height - 1))
    };

    // Constraint (4) singletons: the box edges.
    for row in grid.iter_mut() {
        let (cx, _) = to_cell(t1, 0.0);
        row[cx] = '|'; // x = t1 vertical line
    }
    let (_, cy_t2) = to_cell(0.0, t2);
    for cell in grid[cy_t2].iter_mut() {
        if *cell == ' ' {
            *cell = '-'; // y = t2 horizontal line
        }
    }
    // The diagonal x + y = best (constraints (3) & (4) jointly).
    let mut x = 0.0;
    while x <= best {
        let y = best - x;
        if y <= y_max {
            let (cx, cy) = to_cell(x, y);
            if grid[cy][cx] == ' ' {
                grid[cy][cx] = '\\';
            }
        }
        x += x_max / width as f64 / 2.0;
    }

    // Equilibria.
    println!("Fig. 6 — fairness constraints (axes: per-path rate, pkt/s)");
    println!("  vertical | : no more than TCP on path 1  (x ≤ {t1:.0})");
    println!("  horizontal -: no more than TCP on path 2  (y ≤ {t2:.0})");
    println!("  diagonal \\ : total exactly the best single path (x+y = {best:.0})");
    println!();
    let mut legend = Vec::new();
    for (marker, name, cc) in &algorithms {
        let w = equilibrium(cc.as_ref(), &LOSS, &RTT);
        let (rx, ry) = (w[0] / RTT[0], w[1] / RTT[1]);
        let (cx, cy) = to_cell(rx, ry);
        grid[cy][cx] = *marker;
        let total = rx + ry;
        let rep = check_fairness(&w, &LOSS, &RTT, 0.05);
        let verdict = match (rep.incentive_ok, rep.no_harm_ok) {
            (true, true) => "FAIR ✓ (both goals)",
            (false, true) => "violates the incentive goal (3)",
            (true, false) => "violates the no-harm goal (4)",
            (false, false) => "violates both goals",
        };
        legend.push(format!(
            "{marker} = {name:12} ({rx:5.0}, {ry:5.0})  total {total:5.0}  {verdict}"
        ));
    }
    let y_label_top = format!("{y_max:6.0}");
    let y_label_bot = "     0";
    for (i, row) in grid.iter().enumerate() {
        let label = if i == 0 {
            y_label_top.as_str()
        } else if i == height - 1 {
            y_label_bot
        } else {
            "      "
        };
        println!("  {label} {}", row.iter().collect::<String>());
    }
    println!("         0{}{x_max:.0}", " ".repeat(width - 6));
    println!();
    for l in legend {
        println!("  {l}");
    }
    println!();
    println!("UNCOUPLED sits outside the box (unfair); EWTCP and COUPLED sit well");
    println!("below the diagonal (no incentive); MPTCP sits on the diagonal inside");
    println!("the box — the only point satisfying both §2.5 goals.");
}
