//! Congestion balancing on the Fig. 7 torus, algorithm by algorithm.
//!
//! Shrinks link C to a quarter of the others and shows how each algorithm
//! redistributes congestion around the ring — EWTCP barely, COUPLED
//! almost perfectly, MPTCP in between (the Fig. 8 story).
//!
//! Run with: `cargo run --release --example torus_balance`

use mptcp_cc::fluid::fairness::jains_index;
use mptcp_cc::AlgorithmKind;
use mptcp_netsim::{SimTime, Simulator};
use mptcp_topology::Torus;

fn main() {
    println!("five-link torus, links 1000 pkt/s except C = 250 pkt/s, RTT 100 ms");
    println!();
    println!("algorithm     p_A/p_C   per-link loss rates (%)             Jain(flows)");
    for alg in [AlgorithmKind::Ewtcp, AlgorithmKind::Mptcp, AlgorithmKind::Coupled] {
        let mut sim = Simulator::new(7);
        let caps = [1000.0, 1000.0, 250.0, 1000.0, 1000.0];
        let torus = Torus::build(&mut sim, caps, alg);
        sim.run_until(SimTime::from_secs(30));
        sim.reset_link_stats();
        let before: Vec<u64> = torus
            .flows
            .iter()
            .map(|&f| sim.connection_stats(f).delivered_pkts())
            .collect();
        sim.run_until(SimTime::from_secs(150));
        let rates: Vec<f64> = torus
            .flows
            .iter()
            .zip(&before)
            .map(|(&f, &b)| (sim.connection_stats(f).delivered_pkts() - b) as f64 / 120.0)
            .collect();
        let losses: Vec<String> = torus
            .links
            .iter()
            .map(|&l| format!("{:.2}", 100.0 * sim.link_stats(l).loss_rate()))
            .collect();
        println!(
            "{:12}  {:7.2}   [{}]   {:.3}",
            format!("{alg:?}"),
            torus.loss_ratio_a_over_c(&sim),
            losses.join(", "),
            jains_index(&rates)
        );
    }
    println!();
    println!("p_A/p_C → 1 means congestion is balanced around the ring despite the");
    println!("small link; the paper's ordering is EWTCP < MPTCP < COUPLED.");
}
