//! Quickstart: one multipath connection over two unequal links.
//!
//! Builds a client with a fast lossy "WiFi-like" link and a slow deep-
//! buffered "3G-like" link, runs the MPTCP coupled congestion controller
//! over both, and compares against the best single-path alternative —
//! the paper's headline claim in one screen of code.
//!
//! Run with: `cargo run --release --example quickstart`

use mptcp_cc::AlgorithmKind;
use mptcp_netsim::{ConnectionSpec, LinkSpec, SimTime, Simulator};

fn main() {
    // A 16 Mb/s link with 20 ms RTT and some random loss, and a 4 Mb/s
    // link with 200 ms RTT and deep buffers.
    let build = |seed: u64| {
        let mut sim = Simulator::new(seed);
        let fast =
            sim.add_link(LinkSpec::mbps(16.0, SimTime::from_millis(10), 20).with_loss(0.005));
        let slow = sim.add_link(LinkSpec::mbps(4.0, SimTime::from_millis(100), 150));
        (sim, fast, slow)
    };

    // Single-path baselines.
    let mut best_single = 0.0_f64;
    for (name, which) in [("fast link", 0), ("slow link", 1)] {
        let (mut sim, fast, slow) = build(1);
        let link = if which == 0 { fast } else { slow };
        let c =
            sim.add_connection(ConnectionSpec::bulk(AlgorithmKind::Uncoupled).path(vec![link]));
        sim.run_until(SimTime::from_secs(30));
        let bps = sim.connection_stats(c).throughput_bps(sim.now());
        best_single = best_single.max(bps);
        println!("single-path TCP on {name:9}: {:6.2} Mb/s", bps / 1e6);
    }

    // The multipath connection.
    let (mut sim, fast, slow) = build(1);
    let c = sim.add_connection(
        ConnectionSpec::bulk(AlgorithmKind::Mptcp).path(vec![fast]).path(vec![slow]),
    );
    sim.run_until(SimTime::from_secs(30));
    let stats = sim.connection_stats(c);
    let bps = stats.throughput_bps(sim.now());
    println!("MPTCP over both links      : {:6.2} Mb/s", bps / 1e6);
    for (i, sf) in stats.subflows.iter().enumerate() {
        println!(
            "  subflow {i}: {:7} pkts delivered, cwnd {:5.1} pkts, srtt {:5.1} ms, {} fast recoveries, {} timeouts",
            sf.delivered_pkts,
            sf.cwnd,
            sf.srtt * 1e3,
            sf.fast_recoveries,
            sf.timeouts
        );
    }
    println!();
    if bps >= best_single {
        println!(
            "MPTCP beat the best single path by {:.0}% — the §2.5 incentive goal.",
            100.0 * (bps / best_single - 1.0)
        );
    } else {
        println!(
            "MPTCP reached {:.0}% of the best single path (incentive goal is ≥100%).",
            100.0 * bps / best_single
        );
    }
}
