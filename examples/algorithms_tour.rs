//! A tour of every congestion-control algorithm in the crate, over the two
//! canonical §2 scenarios: a shared bottleneck (Fig. 1) and an RTT
//! mismatch (Fig. 4). Shows in one table why the paper rejects each
//! strawman and lands on MPTCP.
//!
//! Run with: `cargo run --release --example algorithms_tour`

use mptcp_cc::AlgorithmKind;
use mptcp_netsim::{ConnectionSpec, LinkSpec, SimTime, Simulator};

/// Shared bottleneck: one 2-subflow connection vs one plain TCP on a
/// single 1000 pkt/s link. Returns the multipath flow's share of one
/// TCP's throughput (1.0 = fair).
fn shared_bottleneck(alg: AlgorithmKind) -> f64 {
    let mut sim = Simulator::new(5);
    let l = sim.add_link(LinkSpec::pkts_per_sec(1000.0, SimTime::from_millis(25), 50));
    let tcp = sim.add_connection(ConnectionSpec::bulk(AlgorithmKind::Uncoupled).path(vec![l]));
    let mp = sim.add_connection(ConnectionSpec::bulk(alg).path(vec![l]).path(vec![l]));
    sim.run_until(SimTime::from_secs(30));
    let t0 = sim.connection_stats(tcp).delivered_pkts();
    let m0 = sim.connection_stats(mp).delivered_pkts();
    sim.run_until(SimTime::from_secs(120));
    let t1 = sim.connection_stats(tcp).delivered_pkts();
    let m1 = sim.connection_stats(mp).delivered_pkts();
    (m1 - m0) as f64 / (t1 - t0) as f64
}

/// RTT mismatch: fast lossy path vs slow clean path. Returns the
/// multipath throughput as a fraction of the best single-path TCP.
fn rtt_mismatch(alg: AlgorithmKind) -> f64 {
    let build = |seed| {
        let mut sim = Simulator::new(seed);
        let fast = sim
            .add_link(LinkSpec::pkts_per_sec(800.0, SimTime::from_millis(5), 12).with_loss(0.01));
        let slow = sim.add_link(LinkSpec::pkts_per_sec(200.0, SimTime::from_millis(100), 150));
        (sim, fast, slow)
    };
    let mut best = 0.0_f64;
    for which in 0..2 {
        let (mut sim, fast, slow) = build(8);
        let l = if which == 0 { fast } else { slow };
        let c = sim.add_connection(ConnectionSpec::bulk(AlgorithmKind::Uncoupled).path(vec![l]));
        sim.run_until(SimTime::from_secs(60));
        best = best.max(sim.connection_stats(c).throughput_pps(sim.now()));
    }
    let (mut sim, fast, slow) = build(8);
    let c = sim.add_connection(ConnectionSpec::bulk(alg).path(vec![fast]).path(vec![slow]));
    sim.run_until(SimTime::from_secs(60));
    sim.connection_stats(c).throughput_pps(sim.now()) / best
}

fn main() {
    println!("Two litmus tests for multipath congestion control (§2):");
    println!();
    println!("  shared-bottleneck share : multipath take relative to one TCP (goal ≈ 1.0)");
    println!("  RTT-mismatch ratio      : multipath vs best single path  (goal ≥ 1.0)");
    println!();
    println!("algorithm     shared-bottleneck   RTT-mismatch   verdict");
    for alg in AlgorithmKind::all() {
        let share = shared_bottleneck(alg);
        let ratio = rtt_mismatch(alg);
        let verdict = match alg {
            AlgorithmKind::Uncoupled => "unfair at shared bottlenecks (§2.1)",
            AlgorithmKind::Ewtcp => "fair, but wastes capacity under RTT mismatch (§2.3)",
            AlgorithmKind::Coupled => "collapses onto one path; trapped by bursts (§2.3-2.4)",
            AlgorithmKind::SemiCoupled => "good balance, but no principled fairness (§2.4)",
            AlgorithmKind::Mptcp => "the paper's answer: fair AND incentive-compatible",
            AlgorithmKind::Rfc6356 => "the standardized restatement of the same",
            AlgorithmKind::Cubic => "per-path CUBIC epochs; fast pipes, no coupling",
            AlgorithmKind::Olia => "post-paper LIA fix: Pareto-optimal balance",
            AlgorithmKind::Balia => "balanced linked adaptation (Peng et al.)",
            AlgorithmKind::Wvegas => "delay-based: backs off before queues fill",
        };
        println!("{:12}  {share:17.2}  {ratio:13.2}   {verdict}", format!("{alg:?}"));
    }
    println!();
    println!("Expected shape: UNCOUPLED ≈2.0 on the left column (unfair);");
    println!("EWTCP/COUPLED < 1.0 on the right; MPTCP ≈1.0 and ≈1.0.");
}
