//! Wireless handover: the Fig. 17 walk, live.
//!
//! An MPTCP connection rides WiFi + 3G while the user walks around a
//! building: WiFi disappears on the stairwell, 3G picks up the slack, a
//! new basestation is acquired on the next floor. Prints a bandwidth
//! timeline with a crude ASCII area chart.
//!
//! Run with: `cargo run --release --example wireless_handover`

use mptcp_cc::AlgorithmKind;
use mptcp_netsim::{SimTime, Simulator};
use mptcp_topology::WirelessClient;
use mptcp_workload::MobilityTrace;

fn main() {
    let mut sim = Simulator::new(99);
    let w = WirelessClient::build_wifi_3g(&mut sim);
    let conn = w.add_multipath(&mut sim, AlgorithmKind::Mptcp, SimTime::ZERO);
    let mut trace = MobilityTrace::paper_walk(w.link1, w.link2);

    println!("minute  wifi Mb/s  3g Mb/s   total  (w = wifi, g = 3G)");
    let step = SimTime::from_secs(15);
    let total = SimTime::from_secs(12 * 60);
    let mut now = SimTime::ZERO;
    let mut prev = (0u64, 0u64);
    while now < total {
        now += step;
        trace.apply_due(&mut sim, now);
        sim.run_until(now);
        let st = sim.connection_stats(conn);
        let cur = (st.subflows[0].delivered_pkts, st.subflows[1].delivered_pkts);
        let secs = step.as_secs_f64();
        let wifi = (cur.0 - prev.0) as f64 * 1500.0 * 8.0 / secs / 1e6;
        let tg = (cur.1 - prev.1) as f64 * 1500.0 * 8.0 / secs / 1e6;
        prev = cur;
        let bar = format!(
            "{}{}",
            "w".repeat(wifi.round() as usize),
            "g".repeat(tg.round() as usize)
        );
        println!(
            "{:5.2}   {:8.2}  {:7.2}  {:6.2}  {bar}",
            now.as_secs_f64() / 60.0,
            wifi,
            tg,
            wifi + tg
        );
    }
    println!();
    println!("Minutes 9–10.5 are the stairwell: WiFi gone, the 3G subflow carries");
    println!("the connection without any application-visible reconnect — the");
    println!("robustness benefit §5 demonstrates.");
}
