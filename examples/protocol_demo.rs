//! Protocol walkthrough: the §6 wire format and corner cases, live.
//!
//! Transfers a stream over two subflows whose paths misbehave like the
//! middleboxes §6 worries about — loss, reordering, and a `pf`-style
//! firewall that rewrites one subflow's initial sequence number — then
//! shows the option-stripping fallback and replays the three rejected-
//! design counterexamples.
//!
//! Run with: `cargo run --release --example protocol_demo`

use mptcp_proto::scenarios::{
    inferred_data_ack_drops_packet, payload_encoded_data_acks_deadlock,
    per_subflow_buffer_wedges, AckDesign,
};
use mptcp_proto::{Endpoint, EndpointConfig, Harness, RecvBufferMode, Wire, WireFault};

fn transfer_demo() {
    println!("1. stream transfer over hostile paths");
    let wires = vec![
        Wire::new(3_000, 1)
            .with_fault(WireFault::Loss(0.05))
            .with_fault(WireFault::Jitter(2_000))
            .with_fault(WireFault::RewriteIsn(0x1BAD_CAFE)),
        Wire::new(9_000, 2).with_fault(WireFault::Loss(0.02)),
    ];
    let mut h = Harness::new(EndpointConfig::default(), wires, 42);
    let data: Vec<u8> = (0..200_000u32).map(|i| (i % 253) as u8).collect();
    let got = h.transfer(&data, 400_000).expect("transfer should complete");
    assert_eq!(got, data);
    println!("   200 kB delivered byte-exact across 5%-loss + reordering + ISN-rewriting paths");
    let st = h.client.stats();
    for (i, sf) in st.subflows.iter().enumerate() {
        println!(
            "   subflow {i}: cwnd {:5.0} B, srtt {:5.1} ms, {} retransmits, {} timeouts",
            sf.cwnd_bytes,
            sf.srtt_us.unwrap_or(0.0) / 1e3,
            sf.retransmits,
            sf.timeouts
        );
    }
    println!(
        "   connection: {} B sent & data-acked, {} reinjections performed",
        st.data_acked, st.reinjections_total
    );
    println!();
}

fn fallback_demo() {
    println!("2. middlebox strips MPTCP options → fallback to regular TCP");
    let wires = vec![
        Wire::new(3_000, 3).with_fault(WireFault::StripOptions),
        Wire::new(3_000, 4),
    ];
    let mut h = Harness::new(EndpointConfig::default(), wires, 42);
    let data: Vec<u8> = (0..40_000u32).map(|i| (i % 249) as u8).collect();
    let got = h.transfer(&data, 200_000).expect("fallback transfer should complete");
    assert_eq!(got, data);
    println!(
        "   fallback detected: client={} server={}; second subflow never joined: {}",
        h.client.is_fallback(),
        h.server.is_fallback(),
        !h.client.subflow_established(1)
    );
    println!();
}

fn rejected_designs() {
    println!("3. the §6 rejected designs, replayed");
    let shared = per_subflow_buffer_wedges(RecvBufferMode::Shared, 400_000);
    let per_sub = per_subflow_buffer_wedges(RecvBufferMode::PerSubflow, 400_000);
    println!(
        "   per-subflow receive buffers: shared completes = {}, per-subflow completes = {}",
        shared.completed, per_sub.completed
    );
    println!(
        "   inferred data ACKs force a drop: inferred = {}, explicit = {}",
        inferred_data_ack_drops_packet(AckDesign::Inferred),
        inferred_data_ack_drops_packet(AckDesign::Explicit)
    );
    println!(
        "   payload-encoded data ACKs deadlock: in-payload = {}, as-options = {}",
        payload_encoded_data_acks_deadlock(true, 10_000),
        payload_encoded_data_acks_deadlock(false, 10_000)
    );
    println!();
}

fn handshake_demo() {
    println!("4. handshake trace (MP_CAPABLE / MP_JOIN)");
    let mut client = Endpoint::client(EndpointConfig::default(), 2, 7);
    let mut server = Endpoint::server(EndpointConfig::default(), 2, 7);
    let mut now = 0;
    for round in 0..4 {
        now += 1_000;
        let c_out = client.poll(now);
        for (sub, seg) in &c_out {
            println!(
                "   t={now:5}µs client→server sub{sub}: syn={} ack={} opts={:?}",
                seg.flags.syn, seg.flags.ack, seg.options
            );
        }
        for (sub, seg) in c_out {
            server.on_segment(now, sub, seg);
        }
        let s_out = server.poll(now);
        for (sub, seg) in &s_out {
            println!(
                "   t={now:5}µs server→client sub{sub}: syn={} ack={} opts={:?}",
                seg.flags.syn, seg.flags.ack, seg.options
            );
        }
        for (sub, seg) in s_out {
            client.on_segment(now, sub, seg);
        }
        if client.subflow_established(0) && client.subflow_established(1) && round > 0 {
            break;
        }
    }
    println!(
        "   established: sub0={} sub1={}",
        client.subflow_established(0),
        client.subflow_established(1)
    );
}

fn main() {
    transfer_demo();
    fallback_demo();
    rejected_designs();
    handshake_demo();
}
