//! Offline stand-in for the `criterion` crate.
//!
//! Provides the subset of criterion 0.5's API used by this workspace's
//! bench targets, with a simple timing protocol: one warm-up iteration,
//! then `sample_size` timed iterations, reporting the median per-iteration
//! time (and throughput when configured). No plotting, no statistics
//! beyond median/min/max, no command-line filtering.

#![forbid(unsafe_code)]

pub use std::hint::black_box;

use std::fmt;
use std::time::Instant;

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A parameterized benchmark name, printed as `function/parameter`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function/parameter`.
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId { id: format!("{function}/{parameter}") }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.id)
    }
}

/// Anything usable as a benchmark name.
pub trait IntoBenchmarkId {
    /// Render the name.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Passed to benchmark closures; runs and times the measured routine.
pub struct Bencher {
    samples: Vec<u64>,
    sample_size: usize,
}

impl Bencher {
    /// Time `routine` over the configured number of samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // One warm-up iteration outside the measurement.
        black_box(routine());
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed().as_nanos() as u64);
        }
    }
}

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

fn report(name: &str, samples: &mut [u64], throughput: Option<Throughput>) {
    if samples.is_empty() {
        println!("{name:<40} (no samples)");
        return;
    }
    samples.sort_unstable();
    let median = samples[samples.len() / 2];
    let min = samples[0];
    let max = samples[samples.len() - 1];
    let mut line = format!(
        "{name:<40} time: [{} {} {}]",
        fmt_ns(min),
        fmt_ns(median),
        fmt_ns(max)
    );
    if let Some(tp) = throughput {
        let (count, unit) = match tp {
            Throughput::Elements(n) => (n, "elem/s"),
            Throughput::Bytes(n) => (n, "B/s"),
        };
        if median > 0 {
            let rate = count as f64 / (median as f64 / 1e9);
            line.push_str(&format!("  thrpt: {rate:.0} {unit}"));
        }
    }
    println!("{line}");
}

/// The benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0);
        self.sample_size = n;
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher { samples: Vec::new(), sample_size: self.sample_size };
        f(&mut b);
        report(name, &mut b.samples, None);
        self
    }

    /// Start a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl fmt::Display) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup { criterion: self, throughput: None }
    }
}

/// A group of related benchmarks sharing throughput annotations.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Annotate subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, tp: Throughput) -> &mut Self {
        self.throughput = Some(tp);
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher { samples: Vec::new(), sample_size: self.criterion.sample_size };
        f(&mut b);
        report(&format!("  {}", id.into_id()), &mut b.samples, self.throughput);
        self
    }

    /// Run one benchmark with an explicit input.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher { samples: Vec::new(), sample_size: self.criterion.sample_size };
        f(&mut b, input);
        report(&format!("  {}", id.into_id()), &mut b.samples, self.throughput);
        self
    }

    /// End the group.
    pub fn finish(self) {}
}

/// Declare a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Generate a `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        let mut g = c.benchmark_group("grp");
        g.throughput(Throughput::Elements(100));
        g.bench_function("in_group", |b| b.iter(|| black_box(2 * 2)));
        g.bench_with_input(BenchmarkId::new("with_input", 7), &7u64, |b, &x| {
            b.iter(|| black_box(x * x))
        });
        g.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_macro_and_driver_run() {
        benches();
    }

    criterion_group! {
        name = configured;
        config = Criterion::default().sample_size(3);
        targets = sample_bench
    }

    #[test]
    fn configured_group_runs() {
        configured();
    }
}
