//! Offline stand-in for the `rand` crate.
//!
//! Provides the subset of rand 0.8's API that this workspace uses. The
//! default generator ([`rngs::StdRng`]) is xoshiro256++ seeded through
//! SplitMix64: deterministic across runs and platforms, but not
//! bit-compatible with upstream rand's ChaCha-based `StdRng`.

#![forbid(unsafe_code)]

use std::fmt;
use std::ops::{Range, RangeInclusive};

/// Error type for fallible RNG operations (never produced by the
/// generators in this crate; exists for API compatibility).
#[derive(Debug)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rng error")
    }
}

impl std::error::Error for Error {}

/// The core of a random number generator.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
    /// Fallible fill (infallible here).
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be instantiated from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable from the "standard" distribution.
pub trait StandardSample {
    /// Draw one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Unbiased-enough uniform integer in `[0, span)` via widening multiply.
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + uniform_u64(rng, span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty gen_range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width range: every value is fair game.
                    rng.next_u64() as $t
                } else {
                    lo + uniform_u64(rng, span) as $t
                }
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty gen_range");
        let u = f64::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty gen_range");
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64);
        lo + u * (hi - lo)
    }
}

/// Convenience methods layered over [`RngCore`].
pub trait Rng: RngCore {
    /// Draw from the standard distribution.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample(self)
    }

    /// Draw uniformly from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// Bernoulli draw with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stand-in for rand's StdRng).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut st = seed;
            let s = [
                splitmix64(&mut st),
                splitmix64(&mut st),
                splitmix64(&mut st),
                splitmix64(&mut st),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let out = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            out
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let bytes = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&bytes[..chunk.len()]);
            }
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Shuffling and random selection on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;
        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
        /// Uniformly random element, `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_across_instances() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y: u64 = rng.gen_range(0..=5);
            assert!(y <= 5);
            let f: f64 = rng.gen_range(f64::EPSILON..1.0);
            assert!(f >= f64::EPSILON && f < 1.0);
        }
    }

    #[test]
    fn gen_f64_is_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
