//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of proptest 1.x used by this workspace: the
//! [`proptest!`] macro, [`Strategy`] with `prop_map`/`boxed`, numeric-range
//! and tuple strategies, [`any`], [`Just`], `prop::collection::vec`,
//! `prop::option::of`, `prop::sample::select`, `prop_oneof!`, and the
//! `prop_assert*` macros.
//!
//! Generation is purely random with a deterministic per-test RNG (FNV hash
//! of the test path plus the case index), so failures reproduce run to run.
//! There is **no shrinking**, and `.proptest-regressions` files are ignored.

#![forbid(unsafe_code)]

use std::fmt;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

// ---------------------------------------------------------------------------
// RNG
// ---------------------------------------------------------------------------

/// Deterministic generator driving value generation (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from a test path and case index, so every test case is
    /// deterministic and independent.
    pub fn deterministic(test_path: &str, case: u32) -> Self {
        // FNV-1a over the path, mixed with the case number.
        let mut h: u64 = 0xcbf29ce484222325;
        for b in test_path.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        TestRng { state: h ^ ((case as u64).wrapping_mul(0x9e3779b97f4a7c15)) }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, span)`.
    pub fn below(&mut self, span: u64) -> u64 {
        debug_assert!(span > 0);
        ((self.next_u64() as u128 * span as u128) >> 64) as u64
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

// ---------------------------------------------------------------------------
// Errors and config
// ---------------------------------------------------------------------------

/// A failed test case (produced by `prop_assert!`).
#[derive(Debug)]
pub struct TestCaseError {
    msg: String,
}

impl TestCaseError {
    /// Build a failure with a message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError { msg: msg.into() }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.msg)
    }
}

/// Per-block configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

// ---------------------------------------------------------------------------
// Strategy
// ---------------------------------------------------------------------------

/// A recipe for generating random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value: fmt::Debug;

    /// Generate one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O: fmt::Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Build a dependent strategy: generate an intermediate value, then
    /// generate the final value from the strategy `f` returns for it.
    fn prop_flat_map<O: Strategy, F: Fn(Self::Value) -> O>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erase into a [`BoxedStrategy`] (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        let inner = Rc::new(self);
        BoxedStrategy { gen: Rc::new(move |rng| inner.new_value(rng)) }
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: fmt::Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

/// Output of [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: Strategy, F: Fn(S::Value) -> O> Strategy for FlatMap<S, F> {
    type Value = O::Value;
    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        let mid = self.inner.new_value(rng);
        (self.f)(mid).new_value(rng)
    }
}

/// A type-erased strategy.
#[derive(Clone)]
pub struct BoxedStrategy<V> {
    gen: Rc<dyn Fn(&mut TestRng) -> V>,
}

impl<V: fmt::Debug> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn new_value(&self, rng: &mut TestRng) -> V {
        (self.gen)(rng)
    }
}

/// Always generates a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + fmt::Debug>(pub T);

impl<T: Clone + fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + rng.below(span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 { rng.next_u64() as $t } else { lo + rng.below(span) as $t }
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                if span == 0 { rng.next_u64() as $t } else { (lo as i128 + rng.below(span) as i128) as $t }
            }
        }
    )*};
}
signed_range_strategy!(i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn new_value(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn new_value(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range strategy");
        lo + rng.unit_f64() * (hi - lo)
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.new_value(rng),)+)
            }
        }
    };
}
tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);
tuple_strategy!(A, B, C, D, E, F, G, H);
tuple_strategy!(A, B, C, D, E, F, G, H, I);
tuple_strategy!(A, B, C, D, E, F, G, H, I, J);

// ---------------------------------------------------------------------------
// any / Arbitrary
// ---------------------------------------------------------------------------

/// Types with a canonical "anything goes" strategy.
pub trait Arbitrary: fmt::Debug + Sized {
    /// Generate an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arb_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.unit_f64()
    }
}

/// Strategy produced by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

// ---------------------------------------------------------------------------
// prop:: submodules
// ---------------------------------------------------------------------------

/// Namespaced strategy constructors (`prop::collection`, `prop::option`,
/// `prop::sample`), mirroring the upstream layout.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{Strategy, TestRng};
        use std::fmt;
        use std::ops::{Range, RangeInclusive};

        /// A size range for generated collections.
        #[derive(Debug, Clone)]
        pub struct SizeRange {
            lo: usize,
            hi_inclusive: usize,
        }

        impl From<Range<usize>> for SizeRange {
            fn from(r: Range<usize>) -> Self {
                assert!(r.start < r.end, "empty size range");
                SizeRange { lo: r.start, hi_inclusive: r.end - 1 }
            }
        }

        impl From<RangeInclusive<usize>> for SizeRange {
            fn from(r: RangeInclusive<usize>) -> Self {
                assert!(r.start() <= r.end(), "empty size range");
                SizeRange { lo: *r.start(), hi_inclusive: *r.end() }
            }
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> Self {
                SizeRange { lo: n, hi_inclusive: n }
            }
        }

        /// Strategy for `Vec<S::Value>` with a random length.
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        /// `Vec` strategy with lengths drawn from `size`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy { element, size: size.into() }
        }

        impl<S: Strategy> Strategy for VecStrategy<S>
        where
            S::Value: fmt::Debug,
        {
            type Value = Vec<S::Value>;
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                let span = (self.size.hi_inclusive - self.size.lo + 1) as u64;
                let len = self.size.lo + rng.below(span) as usize;
                (0..len).map(|_| self.element.new_value(rng)).collect()
            }
        }
    }

    /// `Option` strategies.
    pub mod option {
        use super::super::{Strategy, TestRng};

        /// Strategy for `Option<S::Value>` (50% `Some`).
        pub struct OptionStrategy<S>(S);

        /// `Some` with probability one half.
        pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
            OptionStrategy(inner)
        }

        impl<S: Strategy> Strategy for OptionStrategy<S> {
            type Value = Option<S::Value>;
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                if rng.next_u64() & 1 == 1 {
                    Some(self.0.new_value(rng))
                } else {
                    None
                }
            }
        }
    }

    /// Sampling from explicit collections.
    pub mod sample {
        use super::super::{Strategy, TestRng};
        use std::fmt;

        /// Strategy choosing uniformly from a fixed list.
        pub struct Select<T>(Vec<T>);

        /// Choose uniformly from `options`.
        pub fn select<T: Clone + fmt::Debug>(options: Vec<T>) -> Select<T> {
            assert!(!options.is_empty(), "select from empty list");
            Select(options)
        }

        impl<T: Clone + fmt::Debug> Strategy for Select<T> {
            type Value = T;
            fn new_value(&self, rng: &mut TestRng) -> T {
                self.0[rng.below(self.0.len() as u64) as usize].clone()
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Assert inside a proptest body; failure aborts only the current case
/// with a formatted message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Equality assertion inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let l = $left;
        let r = $right;
        $crate::prop_assert!(l == r, "assertion failed: `{:?}` == `{:?}`", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let l = $left;
        let r = $right;
        $crate::prop_assert!(l == r, $($fmt)*);
    }};
}

/// Uniformly choose between several strategies with the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// Output of [`prop_oneof!`]: choose one of several boxed strategies.
pub struct Union<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V: fmt::Debug> Union<V> {
    /// Union over `options` with equal weight.
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof of nothing");
        Union { options }
    }
}

impl<V: fmt::Debug> Strategy for Union<V> {
    type Value = V;
    fn new_value(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].new_value(rng)
    }
}

/// Define property tests. Each `fn name(arg in strategy, ...)` becomes a
/// `#[test]` running `cases` random cases with a deterministic RNG.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr)
        $( $(#[$meta:meta])* fn $name:ident( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                for case in 0..config.cases {
                    let mut rng = $crate::TestRng::deterministic(
                        concat!(module_path!(), "::", stringify!($name)),
                        case,
                    );
                    $(let $arg = $crate::Strategy::new_value(&($strategy), &mut rng);)+
                    let inputs = format!(concat!($(stringify!($arg), " = {:?}, "),+), $(&$arg),+);
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!(
                            "proptest case {}/{} failed: {}\n  inputs: {}",
                            case + 1, config.cases, e, inputs
                        );
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// What everyone imports: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_oneof, proptest, Arbitrary, BoxedStrategy, Just,
        ProptestConfig, Strategy, TestCaseError, TestRng, Union,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_maps_generate_in_bounds() {
        let mut rng = TestRng::deterministic("t", 0);
        let s = (1u64..10).prop_map(|x| x * 2);
        for _ in 0..100 {
            let v = s.new_value(&mut rng);
            assert!(v >= 2 && v < 20 && v % 2 == 0);
        }
    }

    #[test]
    fn flat_map_generates_dependent_values() {
        let mut rng = TestRng::deterministic("t4", 3);
        // The second component is always strictly below the first.
        let s = (1u64..10).prop_flat_map(|n| (Just(n), 0u64..n));
        for _ in 0..100 {
            let (n, below) = s.new_value(&mut rng);
            assert!(below < n);
        }
    }

    #[test]
    fn vec_respects_size_range() {
        let mut rng = TestRng::deterministic("t2", 1);
        let s = prop::collection::vec(0u8..255, 2..=4);
        for _ in 0..100 {
            let v = s.new_value(&mut rng);
            assert!((2..=4).contains(&v.len()));
        }
    }

    #[test]
    fn oneof_draws_from_all_arms() {
        let mut rng = TestRng::deterministic("t3", 2);
        let s = prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[s.new_value(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn the_macro_itself_works(x in 0u32..100, flip in any::<bool>()) {
            prop_assert!(x < 100);
            if flip {
                prop_assert_eq!(x + 1, 1 + x);
            }
        }
    }
}
