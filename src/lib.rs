//! Umbrella crate; see README.
