//! Property tests on topology construction and path selection.

use mptcp_netsim::{LinkSpec, SimTime, Simulator};
use mptcp_topology::{BCube, FatTree};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashSet;

fn link() -> LinkSpec {
    LinkSpec::mbps(100.0, SimTime::from_micros(10), 50)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every FatTree shortest path is loop-free, starts at the source's
    /// uplink, ends at the destination's downlink, and has the right hop
    /// count for the host pair's locality.
    #[test]
    fn fattree_paths_are_wellformed(
        k in prop::sample::select(vec![4_usize, 6, 8]),
        seed in 0_u64..1_000,
    ) {
        let mut sim = Simulator::new(0);
        let ft = FatTree::build(&mut sim, k, link());
        let hosts = ft.host_count();
        let mut rng = StdRng::seed_from_u64(seed);
        use rand::Rng;
        let src = rng.gen_range(0..hosts);
        let mut dst = rng.gen_range(0..hosts - 1);
        if dst >= src {
            dst += 1;
        }
        let paths = ft.all_paths(src, dst);
        prop_assert!(!paths.is_empty());
        let mut seen = HashSet::new();
        for p in &paths {
            prop_assert!(p.len() == 2 || p.len() == 4 || p.len() == 6, "bad length {p:?}");
            let uniq: HashSet<_> = p.iter().collect();
            prop_assert_eq!(uniq.len(), p.len(), "loop in path");
            prop_assert!(seen.insert(p.clone()), "duplicate path");
            for &l in p {
                prop_assert!(l < sim.link_count());
            }
        }
        // Path-count formula: 1 same-edge, k/2 same-pod, (k/2)² inter-pod.
        let expected = match paths[0].len() {
            2 => 1,
            4 => k / 2,
            _ => (k / 2) * (k / 2),
        };
        prop_assert_eq!(paths.len(), expected);
    }

    /// BCube path sets are edge-disjoint and loop-free for every host pair
    /// and RNG seed.
    #[test]
    fn bcube_path_sets_edge_disjoint(
        n in 3_usize..=5,
        levels in 1_usize..=2,
        seed in 0_u64..1_000,
    ) {
        let mut sim = Simulator::new(0);
        let bc = BCube::build(&mut sim, n, levels, link());
        let hosts = bc.host_count();
        let mut rng = StdRng::seed_from_u64(seed);
        use rand::Rng;
        let src = rng.gen_range(0..hosts);
        let mut dst = rng.gen_range(0..hosts - 1);
        if dst >= src {
            dst += 1;
        }
        let paths = bc.path_set(src, dst, &mut rng);
        prop_assert_eq!(paths.len(), levels + 1);
        let mut seen = HashSet::new();
        for p in &paths {
            prop_assert!(!p.is_empty());
            prop_assert_eq!(p.len() % 2, 0, "paths alternate up/down links");
            for &l in p {
                prop_assert!(seen.insert(l), "link {l} shared between paths");
            }
        }
    }

    /// BCube single-path routing visits exactly one hop per differing
    /// digit.
    #[test]
    fn bcube_single_path_hop_count(
        seed in 0_u64..1_000,
    ) {
        let mut sim = Simulator::new(0);
        let bc = BCube::build(&mut sim, 4, 2, link());
        let hosts = bc.host_count();
        let mut rng = StdRng::seed_from_u64(seed);
        use rand::Rng;
        let src = rng.gen_range(0..hosts);
        let mut dst = rng.gen_range(0..hosts - 1);
        if dst >= src {
            dst += 1;
        }
        let differing = {
            let (mut a, mut b, mut d) = (src, dst, 0);
            for _ in 0..3 {
                if a % 4 != b % 4 {
                    d += 1;
                }
                a /= 4;
                b /= 4;
            }
            d
        };
        let path = bc.single_path(src, dst);
        prop_assert_eq!(path.len(), 2 * differing, "2 links per corrected digit");
    }
}
