//! BCube path enumeration must be identical across *processes*, not just
//! across calls: the enumeration once flowed through a hash container, and
//! `std`'s `RandomState` is seeded per process, so any hash-order
//! dependence shows up exactly as a cross-process divergence (the
//! Heisenbug class the `xtask lint` `unordered-iter` rule exists to kill).
//!
//! The test re-executes itself as two child processes with different
//! `RUST_MIN_STACK` values (each child also gets a fresh, independent
//! `RandomState` hasher seed from the OS) and requires the full path-set
//! enumeration digest to be bit-identical in both — and equal to the
//! digest computed in-process.

use mptcp_netsim::{DetDigest, DigestWriter, LinkSpec, SimTime, Simulator};
use mptcp_topology::BCube;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::process::Command;

const CHILD_ENV: &str = "BCUBE_DIGEST_CHILD";

/// Digest the complete ordered path enumeration for a spread of host pairs
/// in the paper's BCube(5, 2).
fn enumeration_digest() -> u64 {
    let mut sim = Simulator::new(0);
    let b = BCube::build(&mut sim, 5, 2, LinkSpec::mbps(100.0, SimTime::from_micros(10), 100));
    let mut rng = StdRng::seed_from_u64(42);
    let mut w = DigestWriter::new();
    for &(s, d) in &[(0usize, 124usize), (0, 1), (3, 78), (10, 35), (50, 55), (111, 7)] {
        for path in b.path_set(s, d, &mut rng) {
            // Order-sensitive fold: both the per-path link order and the
            // path order across the set are pinned.
            path.det_digest(&mut w);
        }
        b.single_path(s, d).det_digest(&mut w);
    }
    w.finish()
}

fn child_digest(min_stack: &str) -> u64 {
    let exe = std::env::current_exe().expect("test binary path");
    let out = Command::new(exe)
        .args(["--test-threads", "1", "--nocapture", "--exact", "path_enumeration_order_is_process_invariant"])
        .env(CHILD_ENV, "1")
        .env("RUST_MIN_STACK", min_stack)
        .output()
        .expect("re-exec test binary");
    assert!(out.status.success(), "child run failed: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    // libtest may interleave its own status text on the same line; locate
    // the marker anywhere and take the 16 hex digits after it.
    let at = stdout.find("BCUBE_DIGEST=").unwrap_or_else(|| panic!("no digest in child output:\n{stdout}"));
    let hex = &stdout[at + "BCUBE_DIGEST=".len()..][..16];
    u64::from_str_radix(hex, 16).expect("hex digest")
}

#[test]
fn path_enumeration_order_is_process_invariant() {
    if std::env::var_os(CHILD_ENV).is_some() {
        // Child mode: print the digest for the parent and stop.
        println!("BCUBE_DIGEST={:016x}", enumeration_digest());
        return;
    }
    let local = enumeration_digest();
    let a = child_digest("1048576");
    let b = child_digest("8388608");
    assert_eq!(a, b, "enumeration depends on per-process state (hasher seed / stack size)");
    assert_eq!(a, local, "child enumeration differs from in-process enumeration");
}
