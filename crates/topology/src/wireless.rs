//! The WiFi + 3G multipath wireless client of §5.
//!
//! The paper characterizes the two technologies (§5):
//!
//! * **WiFi** — "much higher throughput and short RTTs, but … performance
//!   was very variable with quite high loss rates" and the basestation "is
//!   underbuffered";
//! * **3G** — "tends to vary on longer timescales, and we found that it is
//!   overbuffered leading to RTTs of well over a second".
//!
//! [`WirelessClient`] builds the two access links with those
//! characteristics; §2.3's reference configuration (10 ms / 4% WiFi vs
//! 100 ms / 1% 3G) and the §5 testbed rates (≈14.4 Mb/s WiFi, ≈2.1 Mb/s 3G)
//! are provided as presets. The same struct also builds the §5 *wired*
//! simulation variant (Fig. 14/16) with two lossless wired links of
//! configurable rate and RTT.

use mptcp_cc::AlgorithmKind;
use mptcp_netsim::{ConnId, ConnectionSpec, LinkId, LinkSpec, SimTime, Simulator, SubflowSpec};

/// Parameters of one access link.
#[derive(Debug, Clone, Copy)]
pub struct AccessLink {
    /// Capacity, bits per second.
    pub rate_bps: f64,
    /// One-way propagation delay of the whole path through this access.
    pub one_way: SimTime,
    /// Buffer, packets.
    pub queue_pkts: usize,
    /// Random loss probability (wireless interference).
    pub loss: f64,
}

impl AccessLink {
    /// §5's WiFi: ≈14.4 Mb/s, ~5 ms one-way, underbuffered, lossy
    /// (interference in the 2.4 GHz band).
    pub fn wifi() -> Self {
        Self {
            rate_bps: 14.4e6,
            one_way: SimTime::from_millis(5),
            queue_pkts: 12, // underbuffered: well below the BDP-sized buffer
            loss: 0.01,
        }
    }

    /// §5's 3G: ≈2.1 Mb/s, long RTT, heavily overbuffered so queueing delay
    /// can reach "well over a second".
    pub fn three_g() -> Self {
        Self {
            rate_bps: 2.1e6,
            one_way: SimTime::from_millis(75),
            queue_pkts: 200, // overbuffered: ~1.1 s of queue at 175 pkt/s
            loss: 0.0,
        }
    }

    /// A plain wired link in pkt/s (the §5 simulations, Fig. 14/16).
    pub fn wired_pps(pps: f64, rtt: SimTime, queue_pkts: usize) -> Self {
        Self {
            rate_bps: pps * 1500.0 * 8.0,
            one_way: SimTime(rtt.as_nanos() / 2),
            queue_pkts,
            loss: 0.0,
        }
    }
}

/// A client with two access links to the same server.
#[derive(Debug, Clone)]
pub struct WirelessClient {
    /// Access link 1 (WiFi in the §5 experiments).
    pub link1: LinkId,
    /// Access link 2 (3G in the §5 experiments).
    pub link2: LinkId,
}

impl WirelessClient {
    /// Build the two access links.
    pub fn build(sim: &mut Simulator, l1: AccessLink, l2: AccessLink) -> Self {
        let mk = |sim: &mut Simulator, a: AccessLink| {
            sim.add_link(LinkSpec::new(a.rate_bps, a.one_way, a.queue_pkts).with_loss(a.loss))
        };
        Self { link1: mk(sim, l1), link2: mk(sim, l2) }
    }

    /// The §5 static-experiment configuration (WiFi + 3G).
    pub fn build_wifi_3g(sim: &mut Simulator) -> Self {
        Self::build(sim, AccessLink::wifi(), AccessLink::three_g())
    }

    /// A single-path TCP flow over link 1 (the competing WiFi flow S1).
    pub fn add_single_path_1(&self, sim: &mut Simulator, start: SimTime) -> ConnId {
        sim.add_connection(
            ConnectionSpec::bulk(AlgorithmKind::Uncoupled).path(vec![self.link1]).start(start),
        )
    }

    /// A single-path TCP flow over link 2 (the competing 3G flow S2).
    pub fn add_single_path_2(&self, sim: &mut Simulator, start: SimTime) -> ConnId {
        sim.add_connection(
            ConnectionSpec::bulk(AlgorithmKind::Uncoupled).path(vec![self.link2]).start(start),
        )
    }

    /// The multipath flow M using both access links.
    pub fn add_multipath(
        &self,
        sim: &mut Simulator,
        algorithm: AlgorithmKind,
        start: SimTime,
    ) -> ConnId {
        sim.add_connection(
            ConnectionSpec::bulk(algorithm)
                .subflow(SubflowSpec::new(vec![self.link1]))
                .subflow(SubflowSpec::new(vec![self.link2]))
                .start(start),
        )
    }

    /// The multipath flow with link 2 at backup priority: established and
    /// kept warm, but carrying no data until every subflow on link 1 is
    /// closed or potentially failed (the path-management failover
    /// experiments — a phone keeping 3G as insurance against losing WiFi).
    pub fn add_multipath_backup(
        &self,
        sim: &mut Simulator,
        algorithm: AlgorithmKind,
        start: SimTime,
    ) -> ConnId {
        sim.add_connection(
            ConnectionSpec::bulk(algorithm)
                .subflow(SubflowSpec::new(vec![self.link1]))
                .subflow(SubflowSpec::new(vec![self.link2]).backup())
                .start(start),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wifi_alone_approaches_its_capacity() {
        let mut sim = Simulator::new(11);
        let w = WirelessClient::build_wifi_3g(&mut sim);
        let c = w.add_single_path_1(&mut sim, SimTime::ZERO);
        sim.run_until(SimTime::from_secs(30));
        let bps = sim.connection_stats(c).throughput_bps(sim.now());
        // Lossy and underbuffered: should get a large share of 14.4 Mb/s
        // but not all of it.
        assert!(bps > 6e6, "wifi throughput too low: {bps}");
        assert!(bps < 14.4e6, "cannot exceed capacity");
    }

    #[test]
    fn three_g_rtt_inflates_with_queue() {
        let mut sim = Simulator::new(12);
        let w = WirelessClient::build_wifi_3g(&mut sim);
        let c = w.add_single_path_2(&mut sim, SimTime::ZERO);
        sim.run_until(SimTime::from_secs(60));
        let stats = sim.connection_stats(c);
        // Overbuffered: smoothed RTT should grow well beyond the 150 ms
        // propagation RTT ("RTTs of well over a second" in the worst case).
        assert!(
            stats.subflows[0].srtt > 0.4,
            "3G srtt should inflate, got {}",
            stats.subflows[0].srtt
        );
    }

    #[test]
    fn multipath_uses_both_radios() {
        let mut sim = Simulator::new(13);
        let w = WirelessClient::build_wifi_3g(&mut sim);
        let m = w.add_multipath(&mut sim, AlgorithmKind::Mptcp, SimTime::ZERO);
        sim.run_until(SimTime::from_secs(30));
        let stats = sim.connection_stats(m);
        assert!(stats.subflows[0].delivered_pkts > 0);
        assert!(stats.subflows[1].delivered_pkts > 0);
        // §5 static single-flow experiment: MPTCP ≈ sum of both accesses.
        let bps = stats.throughput_bps(sim.now());
        assert!(bps > 8e6, "should aggregate both links: {bps}");
    }
}
