//! FatTree(k) — the data-center topology of §4 (Al-Fares et al., Fig. 11a).
//!
//! A FatTree built from `k`-port switches has `k` pods, each with `k/2`
//! edge and `k/2` aggregation switches, plus `(k/2)²` core switches, and
//! supports `k³/4` hosts. The paper's configuration is `k = 8`: "128
//! single-interface hosts and 80 eight-port switches".
//!
//! Between hosts in different pods there are `(k/2)²` shortest paths (one
//! per core switch); within a pod but across edge switches there are `k/2`;
//! under the same edge switch there is one. The paper selects **8 paths at
//! random** for multipath and mimics **ECMP** by picking one shortest path
//! at random per single-path flow.

use mptcp_netsim::{LinkId, LinkSpec, ShardedSimulator, Simulator};
use rand::seq::SliceRandom;
use rand::Rng;

/// A built FatTree: link-id tables for every adjacency, in both directions.
#[derive(Debug, Clone)]
pub struct FatTree {
    /// Switch port count; must be even.
    pub k: usize,
    /// `host_up[h]`: host `h` → its edge switch.
    host_up: Vec<LinkId>,
    /// `host_down[h]`: edge switch → host `h`.
    host_down: Vec<LinkId>,
    /// `edge_agg_up[e][j]`: edge switch `e` (global index) → `j`-th agg
    /// switch of its pod.
    edge_agg_up: Vec<Vec<LinkId>>,
    /// `agg_edge_down[a][i]`: agg switch `a` (global) → `i`-th edge switch
    /// of its pod.
    agg_edge_down: Vec<Vec<LinkId>>,
    /// `agg_core_up[a][c]`: agg switch `a` → `c`-th core switch of its
    /// group (cores `a_pos*k/2 .. a_pos*k/2+k/2` where `a_pos` is the agg's
    /// index within the pod).
    agg_core_up: Vec<Vec<LinkId>>,
    /// `core_agg_down[core][p]`: core switch → the matching agg switch of
    /// pod `p`.
    core_agg_down: Vec<Vec<LinkId>>,
}

impl FatTree {
    /// Number of hosts: `k³/4`.
    pub fn host_count(&self) -> usize {
        self.k * self.k * self.k / 4
    }

    /// Number of switches: `5k²/4` (k·k/2 edge + k·k/2 agg + (k/2)² core).
    pub fn switch_count(&self) -> usize {
        5 * self.k * self.k / 4
    }

    /// Number of simplex links: `3k³/2` — `k³/2` host↕edge, `k³/2`
    /// edge↕agg and `k³/2` agg↕core, each counted in both directions.
    /// `build`/`build_sharded` create exactly this many, so large builds
    /// (the k = 48 scale rung is 165,888 links) can pre-size and verify.
    pub fn link_count(&self) -> usize {
        3 * self.k * self.k * self.k / 2
    }

    /// Build a FatTree of `k`-port switches where every (simplex) link has
    /// the given spec.
    ///
    /// # Panics
    /// Panics if `k` is odd or < 2.
    pub fn build(sim: &mut Simulator, k: usize, link: LinkSpec) -> Self {
        Self::build_inner(k, &mut |_pod| sim.add_link(link))
    }

    /// Build the same FatTree into a [`ShardedSimulator`], partitioning by
    /// pod: pod `p` (its hosts, edge and aggregation links, plus the
    /// core→agg down-links *descending into* it) lives on shard
    /// `p % num_shards`. Only the agg→core hop crosses shards, so the
    /// conservative lookahead equals one link propagation delay.
    ///
    /// Global link ids are created in exactly the same order as
    /// [`FatTree::build`], so path tables — and the deterministic `(at,
    /// seq)` history they induce — are interchangeable between the serial
    /// and sharded builds.
    pub fn build_sharded(sim: &mut ShardedSimulator, k: usize, link: LinkSpec) -> Self {
        let n = sim.num_shards();
        Self::build_inner(k, &mut |pod| sim.add_link(pod % n, link))
    }

    /// Shared construction: `add(pod)` makes the next global link, owned by
    /// `pod`'s shard in a sharded build (ignored by the serial build). The
    /// call order here *is* the global link-id order — both front-ends must
    /// stay in lockstep.
    fn build_inner(k: usize, add: &mut dyn FnMut(usize) -> LinkId) -> Self {
        assert!(k >= 2 && k.is_multiple_of(2), "FatTree requires even k ≥ 2");
        let half = k / 2;
        let pods = k;
        let hosts = k * k * k / 4;
        let edges = pods * half; // global edge index = pod*half + e
        let aggs = pods * half; // global agg index = pod*half + j
        let cores = half * half; // global core index = j*half + c

        let mut t = FatTree {
            k,
            host_up: Vec::with_capacity(hosts),
            host_down: Vec::with_capacity(hosts),
            edge_agg_up: vec![Vec::with_capacity(half); edges],
            agg_edge_down: vec![Vec::with_capacity(half); aggs],
            agg_core_up: vec![Vec::with_capacity(half); aggs],
            core_agg_down: vec![Vec::with_capacity(pods); cores],
        };

        for h in 0..hosts {
            let pod = h / (half * half);
            t.host_up.push(add(pod));
            t.host_down.push(add(pod));
        }
        for e in 0..edges {
            let pod = e / half;
            for j in 0..half {
                let a = pod * half + j;
                t.edge_agg_up[e].push(add(pod));
                // agg→edge down links are indexed by the edge's position in
                // the pod; create them in lockstep so indices line up.
                let down = add(pod);
                t.agg_edge_down[a].push(down);
                // NOTE: agg_edge_down[a] must be indexed by edge position
                // e%half. Since we iterate e in order and push per (e, j),
                // agg_edge_down[a] receives its entry for edge position
                // e%half when j matches a's position; order is correct
                // because for fixed a = pod*half+j, the pushes happen for
                // e = pod*half+0 .. pod*half+half-1 in order.
            }
        }
        for a in 0..aggs {
            let pod = a / half;
            let j = a % half; // position of agg within the pod
            for c in 0..half {
                let core = j * half + c;
                t.agg_core_up[a].push(add(pod));
                // The down-link lands in the *destination* pod's shard
                // (which is `pod` here: entry `core_agg_down[core][pod]` is
                // created while visiting agg `pod*half + j`), so the only
                // shard boundary on an inter-pod path is agg→core.
                let down = add(pod);
                // core_agg_down[core][pod]: push in pod order — a iterates
                // pods in order for each fixed j.
                t.core_agg_down[core].push(down);
            }
        }
        t
    }

    /// Edge switch (global index) of host `h`.
    fn edge_of(&self, h: usize) -> usize {
        h / (self.k / 2)
    }

    /// Pod of host `h`.
    fn pod_of(&self, h: usize) -> usize {
        self.edge_of(h) / (self.k / 2)
    }

    /// All shortest paths from host `src` to host `dst`, as link sequences.
    ///
    /// # Panics
    /// Panics if `src == dst` or either host is out of range.
    pub fn all_paths(&self, src: usize, dst: usize) -> Vec<Vec<LinkId>> {
        assert!(src != dst, "no path from a host to itself");
        assert!(src < self.host_count() && dst < self.host_count());
        let half = self.k / 2;
        let e_src = self.edge_of(src);
        let e_dst = self.edge_of(dst);
        if e_src == e_dst {
            return vec![vec![self.host_up[src], self.host_down[dst]]];
        }
        let p_src = self.pod_of(src);
        let p_dst = self.pod_of(dst);
        let mut paths = Vec::new();
        if p_src == p_dst {
            // Up to any agg of the pod, straight back down.
            for j in 0..half {
                let a = p_src * half + j;
                paths.push(vec![
                    self.host_up[src],
                    self.edge_agg_up[e_src][j],
                    self.agg_edge_down[a][e_dst % half],
                    self.host_down[dst],
                ]);
            }
        } else {
            // Up via agg j and core c of j's group, down the same way.
            for j in 0..half {
                let a_src = p_src * half + j;
                let a_dst = p_dst * half + j;
                for c in 0..half {
                    let core = j * half + c;
                    paths.push(vec![
                        self.host_up[src],
                        self.edge_agg_up[e_src][j],
                        self.agg_core_up[a_src][c],
                        self.core_agg_down[core][p_dst],
                        self.agg_edge_down[a_dst][e_dst % half],
                        self.host_down[dst],
                    ]);
                }
            }
        }
        paths
    }

    /// The paper's multipath path selection: up to `n` distinct paths
    /// chosen at random ("for each pair of hosts we selected 8 paths at
    /// random", §4).
    pub fn random_paths<R: Rng>(
        &self,
        src: usize,
        dst: usize,
        n: usize,
        rng: &mut R,
    ) -> Vec<Vec<LinkId>> {
        let mut all = self.all_paths(src, dst);
        all.shuffle(rng);
        all.truncate(n.max(1));
        all
    }

    /// The ECMP mimic: one shortest path chosen uniformly at random
    /// (§4: "we mimicked ECMP in our simulator by making each TCP source
    /// pick one of the shortest-hop paths at random").
    pub fn ecmp_path<R: Rng>(&self, src: usize, dst: usize, rng: &mut R) -> Vec<LinkId> {
        let all = self.all_paths(src, dst);
        all[rng.gen_range(0..all.len())].clone()
    }

    /// All core-layer links (for loss-distribution plots, Fig. 13).
    pub fn core_links(&self) -> Vec<LinkId> {
        let mut v = Vec::new();
        for a in &self.agg_core_up {
            v.extend_from_slice(a);
        }
        for c in &self.core_agg_down {
            v.extend_from_slice(c);
        }
        v
    }

    /// All access (host) links (Fig. 13 splits distributions into core vs
    /// access links).
    pub fn access_links(&self) -> Vec<LinkId> {
        let mut v = self.host_up.clone();
        v.extend_from_slice(&self.host_down);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mptcp_netsim::SimTime;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn build_k4() -> (Simulator, FatTree) {
        let mut sim = Simulator::new(0);
        let spec = LinkSpec::mbps(100.0, SimTime::from_micros(10), 100);
        let t = FatTree::build(&mut sim, 4, spec);
        (sim, t)
    }

    #[test]
    fn paper_configuration_sizes() {
        let mut sim = Simulator::new(0);
        let spec = LinkSpec::mbps(100.0, SimTime::from_micros(10), 100);
        let t = FatTree::build(&mut sim, 8, spec);
        assert_eq!(t.host_count(), 128, "paper: 128 hosts");
        assert_eq!(t.switch_count(), 80, "paper: 80 eight-port switches");
    }

    #[test]
    fn path_counts_by_locality() {
        let (_sim, t) = build_k4();
        // k=4: hosts 0,1 share an edge switch; 0,2 share a pod; 0,4+ differ.
        assert_eq!(t.all_paths(0, 1).len(), 1);
        assert_eq!(t.all_paths(0, 2).len(), 2); // k/2 aggs
        assert_eq!(t.all_paths(0, 4).len(), 4); // (k/2)² cores
    }

    #[test]
    fn paths_start_and_end_at_the_right_hosts() {
        let (_sim, t) = build_k4();
        for dst in 1..t.host_count() {
            for p in t.all_paths(0, dst) {
                assert_eq!(p[0], t.host_up[0]);
                assert_eq!(*p.last().unwrap(), t.host_down[dst]);
                // No repeated links within one shortest path.
                let mut sorted = p.clone();
                sorted.sort_unstable();
                sorted.dedup();
                assert_eq!(sorted.len(), p.len(), "loop in path {p:?}");
            }
        }
    }

    #[test]
    fn inter_pod_paths_are_distinct() {
        let (_sim, t) = build_k4();
        let paths = t.all_paths(0, 15);
        let mut dedup = paths.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), paths.len());
    }

    #[test]
    fn random_paths_respects_n() {
        let (_sim, t) = build_k4();
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(t.random_paths(0, 4, 3, &mut rng).len(), 3);
        assert_eq!(t.random_paths(0, 1, 8, &mut rng).len(), 1, "only one path exists");
    }

    #[test]
    fn ecmp_picks_a_valid_shortest_path() {
        let (_sim, t) = build_k4();
        let mut rng = StdRng::seed_from_u64(2);
        let all = t.all_paths(0, 12);
        for _ in 0..20 {
            let p = t.ecmp_path(0, 12, &mut rng);
            assert!(all.contains(&p));
        }
    }

    #[test]
    fn link_count_matches_what_build_creates() {
        for k in [2usize, 4, 8] {
            let mut sim = Simulator::new(0);
            let spec = LinkSpec::mbps(100.0, SimTime::from_micros(10), 100);
            let t = FatTree::build(&mut sim, k, spec);
            assert_eq!(sim.link_count(), t.link_count(), "k={k}");
        }
    }

    #[test]
    fn k48_scale_rung_topology_builds_with_the_advertised_dimensions() {
        // The scale_sweep k=48 rung: 27,648 hosts across 8 shards. Only
        // the topology is built here (no traffic), so the test stays
        // cheap while pinning the sizes the bench banner claims.
        let spec = LinkSpec::mbps(100.0, SimTime::from_micros(10), 100);
        let mut sim = ShardedSimulator::new(0, 8);
        let t = FatTree::build_sharded(&mut sim, 48, spec);
        assert_eq!(t.host_count(), 27_648);
        assert_eq!(t.switch_count(), 2_880);
        assert_eq!(t.link_count(), 165_888);
        assert_eq!(sim.link_count(), t.link_count());
        // Inter-pod hosts see the full (k/2)² = 576 core paths.
        assert_eq!(t.all_paths(0, t.host_count() - 1).len(), 576);
    }

    #[test]
    fn sharded_build_reproduces_the_serial_link_table() {
        let spec = LinkSpec::mbps(100.0, SimTime::from_micros(10), 100);
        let mut serial = Simulator::new(0);
        let st = FatTree::build(&mut serial, 4, spec);
        let mut sharded = ShardedSimulator::new(0, 3);
        let pt = FatTree::build_sharded(&mut sharded, 4, spec);
        assert_eq!(sharded.link_count(), serial.link_count());
        assert_eq!(st.host_up, pt.host_up);
        assert_eq!(st.host_down, pt.host_down);
        assert_eq!(st.edge_agg_up, pt.edge_agg_up);
        assert_eq!(st.agg_edge_down, pt.agg_edge_down);
        assert_eq!(st.agg_core_up, pt.agg_core_up);
        assert_eq!(st.core_agg_down, pt.core_agg_down);
    }

    #[test]
    fn sharded_transfer_crosses_pods_identically_under_any_job_count() {
        let spec = LinkSpec::mbps(100.0, SimTime::from_micros(10), 100);
        let digest_at = |jobs: usize| {
            let mut sim = ShardedSimulator::new(7, 4);
            let t = FatTree::build_sharded(&mut sim, 4, spec);
            let mut rng = StdRng::seed_from_u64(3);
            // Host 0 (pod 0) → host 12 (pod 3): every path crosses shards.
            let mut cs = mptcp_netsim::ConnectionSpec::bulk(mptcp_cc_kind());
            for p in t.random_paths(0, 12, 4, &mut rng) {
                cs = cs.path(p);
            }
            let c = sim.add_connection(cs);
            sim.set_jobs(jobs);
            sim.run_until(SimTime::from_secs(5));
            let bps = sim.connection_stats(c).throughput_bps(sim.now());
            assert!(bps > 80e6, "lone flow should fill its 100 Mb/s NIC: {bps}");
            sim.det_digest()
        };
        assert_eq!(digest_at(1), digest_at(4), "jobs must not change the history");
    }

    #[test]
    fn simulated_transfer_crosses_the_fabric() {
        let (mut sim, t) = build_k4();
        let mut rng = StdRng::seed_from_u64(3);
        let paths = t.random_paths(0, 12, 4, &mut rng);
        let mut spec = mptcp_netsim::ConnectionSpec::bulk(mptcp_cc_kind());
        for p in paths {
            spec = spec.path(p);
        }
        let c = sim.add_connection(spec);
        sim.run_until(SimTime::from_secs(5));
        let bps = sim.connection_stats(c).throughput_bps(sim.now());
        assert!(bps > 80e6, "lone flow should fill its 100 Mb/s NIC: {bps}");
    }

    fn mptcp_cc_kind() -> mptcp_cc::AlgorithmKind {
        mptcp_cc::AlgorithmKind::Mptcp
    }
}
