//! BCube(n, k) — the server-centric data-center topology of §4 (Guo et
//! al., Fig. 11b).
//!
//! A BCube(n, k) has `n^(k+1)` hosts, each with `k+1` interfaces, and
//! `k+1` levels of `n^k` switches with `n` ports each. A host's address is
//! a `(k+1)`-digit base-`n` number; its level-`i` interface connects to the
//! level-`i` switch shared by all hosts that agree with it on every digit
//! except digit `i`.
//!
//! The paper's configuration is `n = 5, k = 2`: "125 three-interface hosts"
//! with five-port switches, and "for each pair of hosts we selected 3
//! edge-disjoint paths according to the BCube routing algorithm, choosing
//! the intermediate nodes at random when the algorithm needed a choice".
//!
//! Routing: a hop through a level-`i` switch changes digit `i` of the
//! current host. BCube's `BuildPathSet` builds `k+1` edge-disjoint paths by
//! starting the digit-correction at each level `m`: if digit `m` already
//! matches, the path first detours through a random *different* value of
//! digit `m` (the random intermediate node), guaranteeing disjointness.

use mptcp_netsim::{LinkId, LinkSpec, Simulator};
use rand::Rng;

/// A built BCube.
#[derive(Debug, Clone)]
pub struct BCube {
    /// Switch port count / digit radix.
    pub n: usize,
    /// Levels are `0..=k`.
    pub k: usize,
    /// `host_up[h][i]`: host `h` → its level-`i` switch.
    host_up: Vec<Vec<LinkId>>,
    /// `host_down[h][i]`: level-`i` switch → host `h`.
    host_down: Vec<Vec<LinkId>>,
}

impl BCube {
    /// Number of hosts: `n^(k+1)`.
    pub fn host_count(&self) -> usize {
        self.n.pow(self.k as u32 + 1)
    }

    /// Number of interfaces per host: `k+1`.
    pub fn interfaces(&self) -> usize {
        self.k + 1
    }

    /// Number of switches per level: `n^k`.
    pub fn switches_per_level(&self) -> usize {
        self.n.pow(self.k as u32)
    }

    /// Build a BCube(n, k) where every (simplex) link has the given spec.
    ///
    /// # Panics
    /// Panics if `n < 2`.
    pub fn build(sim: &mut Simulator, n: usize, k: usize, link: LinkSpec) -> Self {
        assert!(n >= 2, "BCube needs n ≥ 2");
        let hosts = n.pow(k as u32 + 1);
        let mut host_up = Vec::with_capacity(hosts);
        let mut host_down = Vec::with_capacity(hosts);
        for _h in 0..hosts {
            let ups: Vec<LinkId> = (0..=k).map(|_| sim.add_link(link)).collect();
            let downs: Vec<LinkId> = (0..=k).map(|_| sim.add_link(link)).collect();
            host_up.push(ups);
            host_down.push(downs);
        }
        Self { n, k, host_up, host_down }
    }

    /// Digits of host `h`, least-significant first (`digit[i]` is the
    /// coordinate at level `i`).
    fn digits(&self, h: usize) -> Vec<usize> {
        let mut d = Vec::with_capacity(self.k + 1);
        let mut x = h;
        for _ in 0..=self.k {
            d.push(x % self.n);
            x /= self.n;
        }
        d
    }

    fn host_of_digits(&self, d: &[usize]) -> usize {
        d.iter().rev().fold(0, |acc, &x| acc * self.n + x)
    }

    /// The two links of a hop from `from` to `to` through their shared
    /// level-`i` switch (the hosts must differ only in digit `i`).
    fn hop(&self, from: usize, to: usize, level: usize) -> [LinkId; 2] {
        [self.host_up[from][level], self.host_down[to][level]]
    }

    /// One BCube path from `src` to `dst` correcting digits in the cyclic
    /// level order `start, start-1, …` (mod `k+1`), with a detour through a
    /// random value at level `start` if that digit already matches
    /// (BCube's `BuildPathSet` / `DCRouting` with random intermediates).
    pub fn path_starting_at<R: Rng>(
        &self,
        src: usize,
        dst: usize,
        start: usize,
        rng: &mut R,
    ) -> Vec<LinkId> {
        assert!(src != dst, "no path from a host to itself");
        let levels = self.k + 1;
        let sd = self.digits(src);
        let dd = self.digits(dst);
        let mut path = Vec::new();
        let mut cur = sd.clone();
        let mut cur_host = src;

        // Detour if the starting digit already matches (and some other digit
        // differs — guaranteed since src != dst).
        let needs_detour = sd[start] == dd[start];
        let mut detour_level = None;
        if needs_detour {
            let mut alt = rng.gen_range(0..self.n - 1);
            if alt >= dd[start] {
                alt += 1; // any value except the (matching) target digit
            }
            cur[start] = alt;
            let next_host = self.host_of_digits(&cur);
            path.extend(self.hop(cur_host, next_host, start));
            cur_host = next_host;
            detour_level = Some(start);
        }

        // Correct digits in cyclic order start, start-1, ..., wrapping.
        for step in 0..levels {
            let level = (start + levels - step) % levels; // start, start-1, …
            if step == 0 && needs_detour {
                continue; // handled below, after the cycle
            }
            if cur[level] != dd[level] {
                cur[level] = dd[level];
                let next_host = self.host_of_digits(&cur);
                path.extend(self.hop(cur_host, next_host, level));
                cur_host = next_host;
            }
        }
        // Undo the detour last.
        if let Some(level) = detour_level {
            if cur[level] != dd[level] {
                cur[level] = dd[level];
                let next_host = self.host_of_digits(&cur);
                path.extend(self.hop(cur_host, next_host, level));
                cur_host = next_host;
            }
        }
        debug_assert_eq!(cur_host, dst);
        path
    }

    /// The paper's selection: `k+1` paths, one starting at each level
    /// (edge-disjoint by construction when the digit at the starting level
    /// differs; detours keep them disjoint otherwise).
    pub fn path_set<R: Rng>(&self, src: usize, dst: usize, rng: &mut R) -> Vec<Vec<LinkId>> {
        (0..=self.k).map(|m| self.path_starting_at(src, dst, m, rng)).collect()
    }

    /// A single-path route: correct digits from the highest differing level
    /// downward (BCube's default single-path routing).
    pub fn single_path(&self, src: usize, dst: usize) -> Vec<LinkId> {
        let sd = self.digits(src);
        let dd = self.digits(dst);
        let highest = (0..=self.k)
            .rev()
            .find(|&i| sd[i] != dd[i])
            .expect("src != dst required");
        // No detour needed when starting at a differing level; rng unused.
        let mut rng = NoRng;
        self.path_starting_at(src, dst, highest, &mut rng)
    }

    /// Neighbors of host `h` in the level structure: for TP2 ("the
    /// destinations are the host's neighbors in the three levels") — one
    /// neighbor per (level, other-value) pair.
    pub fn level_neighbors(&self, h: usize) -> Vec<usize> {
        let d = self.digits(h);
        let mut out = Vec::new();
        for level in 0..=self.k {
            for v in 0..self.n {
                if v != d[level] {
                    let mut nd = d.clone();
                    nd[level] = v;
                    out.push(self.host_of_digits(&nd));
                }
            }
        }
        out
    }
}

/// An RNG that must never be consulted (used by deterministic single-path
/// routing, which takes no detours).
struct NoRng;

impl rand::RngCore for NoRng {
    fn next_u32(&mut self) -> u32 {
        unreachable!("single-path BCube routing needs no randomness")
    }
    fn next_u64(&mut self) -> u64 {
        unreachable!()
    }
    fn fill_bytes(&mut self, _dest: &mut [u8]) {
        unreachable!()
    }
    fn try_fill_bytes(&mut self, _dest: &mut [u8]) -> Result<(), rand::Error> {
        unreachable!()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mptcp_netsim::SimTime;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn build() -> (Simulator, BCube) {
        let mut sim = Simulator::new(0);
        let spec = LinkSpec::mbps(100.0, SimTime::from_micros(10), 100);
        let b = BCube::build(&mut sim, 5, 2, spec);
        (sim, b)
    }

    #[test]
    fn paper_configuration_sizes() {
        let (_sim, b) = build();
        assert_eq!(b.host_count(), 125, "paper: 125 hosts");
        assert_eq!(b.interfaces(), 3, "paper: three-interface hosts");
        assert_eq!(b.switches_per_level(), 25, "paper: 25 five-port switches per level");
    }

    #[test]
    fn digits_roundtrip() {
        let (_sim, b) = build();
        for h in [0, 1, 24, 60, 124] {
            assert_eq!(b.host_of_digits(&b.digits(h)), h);
        }
    }

    #[test]
    fn path_set_is_edge_disjoint() {
        let (_sim, b) = build();
        let mut rng = StdRng::seed_from_u64(7);
        for &(s, d) in &[(0usize, 124usize), (0, 1), (3, 78), (10, 35), (50, 55)] {
            let paths = b.path_set(s, d, &mut rng);
            assert_eq!(paths.len(), 3);
            // BTreeSet, not HashSet: no per-process hasher seed anywhere
            // near path enumeration (determinism policy, DESIGN.md §3.2d).
            let mut seen = std::collections::BTreeSet::new();
            for p in &paths {
                for &l in p {
                    assert!(seen.insert(l), "link {l} shared between paths {s}->{d}");
                }
            }
        }
    }

    #[test]
    fn single_path_has_minimal_hops() {
        let (_sim, b) = build();
        // Hosts differing in one digit: 2 links (up, down).
        assert_eq!(b.single_path(0, 1).len(), 2);
        // Differing in all three digits: 6 links.
        assert_eq!(b.single_path(0, 124).len(), 6);
    }

    #[test]
    fn level_neighbors_count() {
        let (_sim, b) = build();
        // (n-1) per level × 3 levels = 12 neighbors — exactly TP2's "12
        // flows to 12 destination hosts".
        assert_eq!(b.level_neighbors(0).len(), 12);
    }

    #[test]
    fn multipath_over_three_interfaces_beats_single_interface() {
        let (mut sim, b) = build();
        let mut rng = StdRng::seed_from_u64(9);
        let paths = b.path_set(0, 124, &mut rng);
        let mut spec = mptcp_netsim::ConnectionSpec::bulk(mptcp_cc::AlgorithmKind::Mptcp);
        for p in paths {
            spec = spec.path(p);
        }
        let c = sim.add_connection(spec);
        sim.run_until(SimTime::from_secs(5));
        let bps = sim.connection_stats(c).throughput_bps(sim.now());
        assert!(bps > 200e6, "3 interfaces × 100 Mb/s should exceed 200 Mb/s: {bps}");
    }
}
