//! The five-link torus of Fig. 7 — the §3 congestion-balancing scenario.
//!
//! "Fig. 7 shows a scenario with five bottleneck links arranged in a torus,
//! each used by two multipath flows. All paths have equal RTT of 100 ms,
//! and the buffers are one bandwidth-delay product."
//!
//! Flow *i* (i = 0..5) has one subflow over link *i* and one over link
//! *i+1 mod 5*, so each link carries two multipath flows. The experiment
//! shrinks the capacity of one link (link "C", index 2) and measures how
//! well each algorithm balances the loss rates across the ring.

use mptcp_cc::AlgorithmKind;
use mptcp_netsim::{ConnId, ConnectionSpec, LinkId, LinkSpec, ShardedSimulator, SimTime, Simulator};

/// The built torus: five bottleneck links and five two-path flows.
#[derive(Debug, Clone)]
pub struct Torus {
    /// The five bottleneck links (A, B, C, D, E → indices 0..5).
    pub links: [LinkId; 5],
    /// The five multipath connections; flow `i` uses links `i` and `i+1`.
    pub flows: [ConnId; 5],
}

impl Torus {
    /// Index of link "A" in [`Torus::links`] (reference link of Fig. 8).
    pub const LINK_A: usize = 0;
    /// Index of link "C" (the link whose capacity the experiment varies).
    pub const LINK_C: usize = 2;

    /// Build the torus.
    ///
    /// * `capacities_pps` — capacity of each link in packets per second
    ///   (Fig. 8 keeps four at 1000 pkt/s and sweeps link C);
    /// * `algorithm` — the multipath algorithm all five flows run;
    /// * every path has an RTT of 100 ms (propagation 50 ms one way) and a
    ///   buffer of one bandwidth-delay product, as in the paper.
    pub fn build(sim: &mut Simulator, capacities_pps: [f64; 5], algorithm: AlgorithmKind) -> Self {
        let one_way = SimTime::from_millis(50);
        let rtt_secs = 0.1;
        let links: [LinkId; 5] = std::array::from_fn(|i| {
            let bdp_pkts = (capacities_pps[i] * rtt_secs).round().max(2.0) as usize;
            sim.add_link(LinkSpec::pkts_per_sec(capacities_pps[i], one_way, bdp_pkts))
        });
        let flows: [ConnId; 5] = std::array::from_fn(|i| {
            sim.add_connection(
                ConnectionSpec::bulk(algorithm)
                    .path(vec![links[i]])
                    .path(vec![links[(i + 1) % 5]]),
            )
        });
        Self { links, flows }
    }

    /// Build the torus across the shards of a [`ShardedSimulator`]:
    /// bottleneck link `i` lives on shard `i % num_shards`.
    ///
    /// Because flow `i`'s two subflows enter at different links (possibly on
    /// different shards) while the sharded engine keeps every connection's
    /// sender state on one owner shard, each subflow is fronted by a
    /// high-capacity 1 ms ingress stub on flow `i`'s owner shard (the shard
    /// of link `i`). The stubs model the sender's own uncongested NIC; the
    /// five torus links remain the only bottlenecks.
    pub fn build_sharded(
        sim: &mut ShardedSimulator,
        capacities_pps: [f64; 5],
        algorithm: AlgorithmKind,
    ) -> Self {
        let n = sim.num_shards();
        let one_way = SimTime::from_millis(50);
        let rtt_secs = 0.1;
        let links: [LinkId; 5] = std::array::from_fn(|i| {
            let bdp_pkts = (capacities_pps[i] * rtt_secs).round().max(2.0) as usize;
            sim.add_link(i % n, LinkSpec::pkts_per_sec(capacities_pps[i], one_way, bdp_pkts))
        });
        let stub = LinkSpec::pkts_per_sec(100_000.0, SimTime::from_millis(1), 10_000);
        let flows: [ConnId; 5] = std::array::from_fn(|i| {
            let owner = i % n;
            let s0 = sim.add_link(owner, stub);
            let s1 = sim.add_link(owner, stub);
            sim.add_connection(
                ConnectionSpec::bulk(algorithm)
                    .path(vec![s0, links[i]])
                    .path(vec![s1, links[(i + 1) % 5]]),
            )
        });
        Self { links, flows }
    }

    /// Ratio of measured loss rates `p_A / p_C` — Fig. 8's y-axis (1.0 means
    /// perfectly balanced congestion).
    pub fn loss_ratio_a_over_c(&self, sim: &Simulator) -> f64 {
        let pa = sim.link_stats(self.links[Self::LINK_A]).loss_rate();
        let pc = sim.link_stats(self.links[Self::LINK_C]).loss_rate();
        // lint:allow(float-ord, reason = "exact zero-guard: a zero measured loss rate makes the ratio undefined (NaN), not an ordering decision")
        if pc == 0.0 {
            f64::NAN
        } else {
            pa / pc
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn torus_wires_five_links_and_flows() {
        let mut sim = Simulator::new(0);
        let t = Torus::build(&mut sim, [1000.0; 5], AlgorithmKind::Mptcp);
        assert_eq!(sim.link_count(), 5);
        assert_eq!(sim.connection_count(), 5);
        // Each link must be used by exactly two flows: check flow paths via
        // stats after a short run.
        sim.run_until(SimTime::from_secs(5));
        for (i, &f) in t.flows.iter().enumerate() {
            let st = sim.connection_stats(f);
            assert_eq!(st.subflows.len(), 2, "flow {i} has two subflows");
            assert!(st.delivered_pkts() > 0, "flow {i} moved data");
        }
    }

    #[test]
    fn sharded_torus_runs_and_is_jobs_invariant() {
        let run = |jobs: usize| {
            let mut sim = ShardedSimulator::new(11, 3);
            let t = Torus::build_sharded(&mut sim, [1000.0; 5], AlgorithmKind::Mptcp);
            sim.set_jobs(jobs);
            sim.run_until(SimTime::from_secs(30));
            for (i, &f) in t.flows.iter().enumerate() {
                let st = sim.connection_stats(f);
                assert_eq!(st.subflows.len(), 2, "flow {i} has two subflows");
                assert!(st.delivered_pkts() > 0, "flow {i} moved data");
            }
            sim.det_digest()
        };
        assert_eq!(run(1), run(2), "jobs must not change the history");
    }

    #[test]
    fn equal_capacities_balance_loss() {
        let mut sim = Simulator::new(1);
        let t = Torus::build(&mut sim, [1000.0; 5], AlgorithmKind::Mptcp);
        sim.run_until(SimTime::from_secs(60));
        sim.reset_link_stats();
        sim.run_until(SimTime::from_secs(260));
        let ratio = t.loss_ratio_a_over_c(&sim);
        assert!(
            (0.5..2.0).contains(&ratio),
            "symmetric torus should have roughly equal loss rates, got {ratio}"
        );
    }
}
