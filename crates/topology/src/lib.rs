//! # mptcp-topology — the paper's evaluation topologies
//!
//! Builders that populate an [`mptcp_netsim::Simulator`] with the network
//! shapes the paper evaluates on, and the path-selection logic each
//! scenario uses:
//!
//! * [`torus`] — the five-link torus of Fig. 7 (§3, congestion balancing);
//! * [`dualhomed`] — the multihomed-server testbed of Fig. 10 (§3);
//! * [`fattree`] — FatTree(k) (Al-Fares et al.), §4: 128 hosts and 80
//!   eight-port switches at k = 8, with the "8 random paths" selection and
//!   an ECMP mimic ("each TCP source picks one of the shortest-hop paths at
//!   random", §4 footnote);
//! * [`bcube`] — BCube(n, k) (Guo et al.), §4: 125 three-interface hosts at
//!   n = 5, k = 2, with the BCube edge-disjoint path set;
//! * [`wireless`] — the WiFi + 3G mobile-client scenarios of §5, with the
//!   paper's link characterizations (WiFi: fast, short RTT, lossy,
//!   underbuffered; 3G: slow, overbuffered so RTTs grow to seconds).
//!
//! Every physical cable is modelled as two simplex links (one per
//! direction), so forward data of one flow and forward data of a
//! reverse-direction flow do not falsely contend.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bcube;
pub mod dualhomed;
pub mod fattree;
pub mod torus;
pub mod wireless;

pub use bcube::BCube;
pub use dualhomed::{DualHomedServer, ShardedDualHomed};
pub use fattree::FatTree;
pub use torus::Torus;
pub use wireless::{AccessLink, WirelessClient};
