//! The dual-homed server of §3's testbed experiments (Fig. 10).
//!
//! "We first ran a server dual-homed with two 100 Mb/s links and a number
//! of client machines. We used dummynet to add 10 ms of latency to simulate
//! a wide-area scenario."
//!
//! Clients attach to one of the two access links; multipath clients attach
//! to both. The access links are the only bottlenecks.

use mptcp_cc::AlgorithmKind;
use mptcp_netsim::{ConnId, ConnectionSpec, LinkId, LinkSpec, ShardedSimulator, SimTime, Simulator};

/// A server with two access links.
#[derive(Debug, Clone)]
pub struct DualHomedServer {
    /// The two (simplex, server→clients) access links.
    pub links: [LinkId; 2],
}

impl DualHomedServer {
    /// Build the two access links.
    ///
    /// * `mbps` — capacity of each link in Mb/s (100 in the paper);
    /// * `one_way_delay` — added latency (10 ms in the paper);
    /// * `queue_pkts` — buffer size per link.
    pub fn build(
        sim: &mut Simulator,
        mbps: [f64; 2],
        one_way_delay: SimTime,
        queue_pkts: usize,
    ) -> Self {
        let links = [
            sim.add_link(LinkSpec::mbps(mbps[0], one_way_delay, queue_pkts)),
            sim.add_link(LinkSpec::mbps(mbps[1], one_way_delay, queue_pkts)),
        ];
        Self { links }
    }

    /// Add a single-path client downloading over access link `which`.
    pub fn add_single_path_client(
        &self,
        sim: &mut Simulator,
        which: usize,
        start: SimTime,
    ) -> ConnId {
        sim.add_connection(
            ConnectionSpec::bulk(AlgorithmKind::Uncoupled)
                .path(vec![self.links[which]])
                .start(start),
        )
    }

    /// Add a finite single-path download of `pkts` packets on link `which`
    /// (used by the Poisson-arrivals experiment).
    pub fn add_single_path_transfer(
        &self,
        sim: &mut Simulator,
        which: usize,
        pkts: u64,
        start: SimTime,
    ) -> ConnId {
        sim.add_connection(
            ConnectionSpec::sized(AlgorithmKind::Uncoupled, pkts)
                .path(vec![self.links[which]])
                .start(start),
        )
    }

    /// Add a multipath client able to use both links.
    pub fn add_multipath_client(
        &self,
        sim: &mut Simulator,
        algorithm: AlgorithmKind,
        start: SimTime,
    ) -> ConnId {
        sim.add_connection(
            ConnectionSpec::bulk(algorithm)
                .path(vec![self.links[0]])
                .path(vec![self.links[1]])
                .start(start),
        )
    }
}

/// The dual-homed server laid out across the shards of a
/// [`ShardedSimulator`]: access link `i` lives on shard `i % num_shards`,
/// so with two or more shards the two halves of the server advance on
/// different worker threads.
///
/// Multipath clients span both access links while the sharded engine keeps
/// each connection's sender state on one owner shard, so every multipath
/// subflow is fronted by a high-capacity 1 ms ingress stub on shard 0 (the
/// owner). Single-path clients enter directly at their access link, which
/// is its own owner shard — no stub needed.
#[derive(Debug, Clone)]
pub struct ShardedDualHomed {
    /// The two (simplex, server→clients) access links.
    pub links: [LinkId; 2],
    /// Per-access-link ingress stubs for multipath clients, both on shard 0.
    stubs: [LinkId; 2],
}

impl ShardedDualHomed {
    /// Build the two access links and their ingress stubs; arguments match
    /// [`DualHomedServer::build`].
    pub fn build(
        sim: &mut ShardedSimulator,
        mbps: [f64; 2],
        one_way_delay: SimTime,
        queue_pkts: usize,
    ) -> Self {
        let n = sim.num_shards();
        let links = [
            sim.add_link(0, LinkSpec::mbps(mbps[0], one_way_delay, queue_pkts)),
            sim.add_link(1 % n, LinkSpec::mbps(mbps[1], one_way_delay, queue_pkts)),
        ];
        let stub = LinkSpec::pkts_per_sec(100_000.0, SimTime::from_millis(1), 10_000);
        let stubs = [sim.add_link(0, stub), sim.add_link(0, stub)];
        Self { links, stubs }
    }

    /// Add a single-path client downloading over access link `which`.
    pub fn add_single_path_client(
        &self,
        sim: &mut ShardedSimulator,
        which: usize,
        start: SimTime,
    ) -> ConnId {
        sim.add_connection(
            ConnectionSpec::bulk(AlgorithmKind::Uncoupled)
                .path(vec![self.links[which]])
                .start(start),
        )
    }

    /// Add a finite single-path download of `pkts` packets on link `which`.
    pub fn add_single_path_transfer(
        &self,
        sim: &mut ShardedSimulator,
        which: usize,
        pkts: u64,
        start: SimTime,
    ) -> ConnId {
        sim.add_connection(
            ConnectionSpec::sized(AlgorithmKind::Uncoupled, pkts)
                .path(vec![self.links[which]])
                .start(start),
        )
    }

    /// Add a multipath client able to use both links (stub-fronted so both
    /// subflows enter on the owner shard).
    pub fn add_multipath_client(
        &self,
        sim: &mut ShardedSimulator,
        algorithm: AlgorithmKind,
        start: SimTime,
    ) -> ConnId {
        sim.add_connection(
            ConnectionSpec::bulk(algorithm)
                .path(vec![self.stubs[0], self.links[0]])
                .path(vec![self.stubs[1], self.links[1]])
                .start(start),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_path_clients_split_by_link() {
        let mut sim = Simulator::new(2);
        let srv =
            DualHomedServer::build(&mut sim, [100.0, 100.0], SimTime::from_millis(10), 100);
        let a = srv.add_single_path_client(&mut sim, 0, SimTime::ZERO);
        let b = srv.add_single_path_client(&mut sim, 1, SimTime::ZERO);
        sim.run_until(SimTime::from_secs(20));
        // Each alone on a 100 Mb/s link: both should come close to filling it.
        for c in [a, b] {
            let bps = sim.connection_stats(c).throughput_bps(sim.now());
            assert!(bps > 80e6, "client {c} got {bps}");
        }
    }

    #[test]
    fn sharded_dual_homed_balances_and_is_jobs_invariant() {
        let run = |jobs: usize| {
            let mut sim = ShardedSimulator::new(5, 2);
            let srv =
                ShardedDualHomed::build(&mut sim, [100.0, 100.0], SimTime::from_millis(10), 100);
            let mp = srv.add_multipath_client(&mut sim, AlgorithmKind::Mptcp, SimTime::ZERO);
            let sp = srv.add_single_path_client(&mut sim, 1, SimTime::ZERO);
            srv.add_single_path_transfer(&mut sim, 0, 500, SimTime::from_secs(1));
            sim.set_jobs(jobs);
            sim.run_until(SimTime::from_secs(20));
            let mp_bps = sim.connection_stats(mp).throughput_bps(sim.now());
            let sp_bps = sim.connection_stats(sp).throughput_bps(sim.now());
            assert!(mp_bps > 50e6, "multipath client uses both links: {mp_bps}");
            assert!(sp_bps > 30e6, "single-path client holds its share: {sp_bps}");
            sim.det_digest()
        };
        assert_eq!(run(1), run(2), "jobs must not change the history");
    }

    #[test]
    fn unbalanced_load_hurts_the_crowded_link() {
        let mut sim = Simulator::new(3);
        let srv =
            DualHomedServer::build(&mut sim, [100.0, 100.0], SimTime::from_millis(10), 100);
        let lone = srv.add_single_path_client(&mut sim, 0, SimTime::ZERO);
        let crowd: Vec<ConnId> =
            (0..4).map(|_| srv.add_single_path_client(&mut sim, 1, SimTime::ZERO)).collect();
        sim.run_until(SimTime::from_secs(30));
        let lone_bps = sim.connection_stats(lone).throughput_bps(sim.now());
        let crowd_bps = sim.connection_stats(crowd[0]).throughput_bps(sim.now());
        assert!(
            lone_bps > 2.0 * crowd_bps,
            "lone client {lone_bps} should beat crowded {crowd_bps}"
        );
    }
}
