//! Deterministic flow-churn schedules for the arena-lifecycle benches.
//!
//! The [`arrivals`](crate::arrivals) module generates the paper's §3
//! Poisson workload; this module generates the *stress* shape the
//! struct-of-arrays flow arena is built for: a dense **burst** of short
//! flows that are all simultaneously resident (the concurrency high-water
//! that sizes the arena), followed by a steady **trickle** of late
//! arrivals that must re-tenant the hot windows, scoreboard rings and
//! scratch vectors the burst left behind — by the trickle phase, a
//! steady-state simulator performs zero new hot-path allocations.
//!
//! Everything here is closed-form deterministic (no RNG): the schedule is
//! part of a benchmark's identity, so two runs — or the jobs=1 and jobs=8
//! arms of a determinism check — must get byte-identical arrivals.

use crate::arrivals::FlowArrival;
use mptcp_netsim::SimTime;

/// A two-phase burst-then-trickle churn schedule.
#[derive(Debug, Clone, Copy)]
pub struct ChurnSchedule {
    /// Flows in the opening burst, spread uniformly over `burst_window`.
    pub burst_flows: usize,
    /// Length of the burst arrival window. Keep it shorter than a flow's
    /// retirement grace so every burst flow is resident at once.
    pub burst_window: SimTime,
    /// Flows in the trickle phase.
    pub trickle_flows: usize,
    /// When the first trickle flow starts (leave room for the burst to
    /// drain and retire).
    pub trickle_start: SimTime,
    /// Gap between consecutive trickle arrivals.
    pub trickle_spacing: SimTime,
    /// Smallest flow size, packets (inclusive).
    pub min_pkts: u64,
    /// Largest flow size, packets (inclusive). Trickle sizes never exceed
    /// burst sizes, so recycled scoreboards always have the capacity.
    pub max_pkts: u64,
}

impl ChurnSchedule {
    /// Deterministic size for flow `i`: cycles through
    /// `[min_pkts, max_pkts]` with a coprime stride so neighbouring
    /// arrivals get unrelated sizes.
    pub fn size_pkts(&self, i: usize) -> u64 {
        debug_assert!(self.min_pkts >= 1 && self.max_pkts >= self.min_pkts);
        let span = self.max_pkts - self.min_pkts + 1;
        self.min_pkts + (i as u64).wrapping_mul(13).wrapping_add(7) % span
    }

    /// All arrivals of both phases, sorted by start time.
    pub fn arrivals(&self) -> Vec<FlowArrival> {
        let mut out = Vec::with_capacity(self.burst_flows + self.trickle_flows);
        let burst_ns = self.burst_window.as_nanos();
        for i in 0..self.burst_flows {
            // i * window / n without overflow risk: window is ns-scale
            // (< 2^40), flow counts are < 2^24.
            let start = SimTime(burst_ns * i as u64 / self.burst_flows.max(1) as u64);
            out.push(FlowArrival { start, size_pkts: self.size_pkts(i) });
        }
        for i in 0..self.trickle_flows {
            let start =
                self.trickle_start + SimTime(self.trickle_spacing.as_nanos() * i as u64);
            out.push(FlowArrival { start, size_pkts: self.size_pkts(self.burst_flows + i) });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ChurnSchedule {
        ChurnSchedule {
            burst_flows: 1000,
            burst_window: SimTime::from_millis(100),
            trickle_flows: 50,
            trickle_start: SimTime::from_secs(5),
            trickle_spacing: SimTime::from_millis(1),
            min_pkts: 4,
            max_pkts: 20,
        }
    }

    #[test]
    fn arrivals_are_sorted_sized_and_phased() {
        let s = sample();
        let a = s.arrivals();
        assert_eq!(a.len(), 1050);
        for w in a.windows(2) {
            assert!(w[0].start <= w[1].start);
        }
        assert!(a.iter().all(|f| (4..=20).contains(&f.size_pkts)));
        // Burst stays inside its window; trickle starts where asked.
        assert!(a[999].start < SimTime::from_millis(100));
        assert_eq!(a[1000].start, SimTime::from_secs(5));
        assert_eq!(a[1049].start, SimTime::from_secs(5) + SimTime::from_millis(49));
    }

    #[test]
    fn sizes_cycle_through_the_whole_range() {
        let s = sample();
        let mut seen = std::collections::BTreeSet::new();
        for i in 0..200 {
            seen.insert(s.size_pkts(i));
        }
        assert_eq!(seen.len(), 17, "stride 13 is coprime with span 17: all sizes hit");
    }

    #[test]
    fn schedule_is_deterministic() {
        assert_eq!(sample().arrivals(), sample().arrivals());
    }
}
