//! Scripted connectivity traces for the §5 mobile experiment (Fig. 17).
//!
//! The paper's subject walks around a building for ~12 minutes: WiFi is
//! good on most floors but absent on the stairwell; 3G is acceptable but
//! sometimes congested; around minute 9 the subject takes the stairs to a
//! coffee machine, losing WiFi but gaining 3G quality, then reacquires a
//! new WiFi basestation. A [`MobilityTrace`] encodes that walk as timed
//! link-condition changes and applies them to a simulator between
//! `run_until` steps.

use mptcp_netsim::{ConnId, FaultAction, FaultPlan, LinkId, SimTime, Simulator};

/// A condition to apply to one link at a point in the trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkCondition {
    /// New rate in bits per second (`None` = unchanged).
    pub rate_bps: Option<f64>,
    /// New random-loss probability (`None` = unchanged).
    pub loss: Option<f64>,
    /// Whether the link is down entirely (out of coverage).
    pub down: Option<bool>,
}

impl LinkCondition {
    /// Change only the rate.
    pub fn rate(bps: f64) -> Self {
        Self { rate_bps: Some(bps), loss: None, down: None }
    }

    /// Change rate and loss together.
    pub fn rate_loss(bps: f64, loss: f64) -> Self {
        Self { rate_bps: Some(bps), loss: Some(loss), down: None }
    }

    /// Total loss of coverage.
    pub fn outage() -> Self {
        Self { rate_bps: None, loss: None, down: Some(true) }
    }

    /// Coverage restored (optionally with a new rate — a new basestation).
    pub fn restore(bps: Option<f64>) -> Self {
        Self { rate_bps: bps, loss: None, down: Some(false) }
    }
}

/// One timed change in the trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceEvent {
    /// When the change takes effect.
    pub at: SimTime,
    /// Which link changes.
    pub link: LinkId,
    /// The new condition.
    pub condition: LinkCondition,
}

/// A time-ordered list of link-condition changes, applied incrementally as
/// the simulation advances.
#[derive(Debug, Clone, Default)]
pub struct MobilityTrace {
    events: Vec<TraceEvent>,
    next: usize,
}

impl MobilityTrace {
    /// Build a trace from events (sorted by time internally).
    pub fn new(mut events: Vec<TraceEvent>) -> Self {
        events.sort_by_key(|e| e.at);
        Self { events, next: 0 }
    }

    /// The walk of Fig. 17, parameterized by the WiFi and 3G link ids:
    ///
    /// * 0–9 min: WiFi good (≈14 Mb/s, 1% loss); 3G congested (≈1 Mb/s);
    /// * 9–10.5 min: stairwell — WiFi outage, 3G improves to ≈2.5 Mb/s;
    /// * 10.5 min: new WiFi basestation acquired (≈10 Mb/s), 3G stays good.
    pub fn paper_walk(wifi: LinkId, three_g: LinkId) -> Self {
        let m = |min: f64| SimTime::from_secs_f64(min * 60.0);
        Self::new(vec![
            TraceEvent { at: m(0.0), link: wifi, condition: LinkCondition::rate_loss(14e6, 0.01) },
            TraceEvent { at: m(0.0), link: three_g, condition: LinkCondition::rate(1.0e6) },
            TraceEvent { at: m(9.0), link: wifi, condition: LinkCondition::outage() },
            TraceEvent { at: m(9.0), link: three_g, condition: LinkCondition::rate(2.5e6) },
            TraceEvent { at: m(10.5), link: wifi, condition: LinkCondition::restore(Some(10e6)) },
        ])
    }

    /// All events (for inspection / plotting).
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Apply every event with `at ≤ now` that has not yet been applied.
    /// Call after each `run_until` step; returns how many events fired.
    pub fn apply_due(&mut self, sim: &mut Simulator, now: SimTime) -> usize {
        let mut fired = 0;
        while self.next < self.events.len() && self.events[self.next].at <= now {
            let ev = self.events[self.next];
            if let Some(bps) = ev.condition.rate_bps {
                sim.set_link_rate_bps(ev.link, bps);
            }
            if let Some(p) = ev.condition.loss {
                sim.set_link_loss(ev.link, p);
            }
            if let Some(d) = ev.condition.down {
                sim.set_link_down(ev.link, d);
            }
            self.next += 1;
            fired += 1;
        }
        fired
    }

    /// Whether every event has been applied.
    pub fn exhausted(&self) -> bool {
        self.next >= self.events.len()
    }

    /// Re-express the trace as a declarative [`FaultPlan`] executed through
    /// the simulator's own event queue.
    ///
    /// Unlike [`apply_due`](Self::apply_due), which only takes effect at
    /// whatever granularity the caller steps `run_until`, a fault plan fires
    /// at the *exact* trace timestamps regardless of stepping — so results
    /// are identical whether the driver steps every 100 ms or every second.
    /// Within one timestamp the rate change is queued before the loss change
    /// before the up/down change, matching `apply_due`'s in-event ordering.
    pub fn to_fault_plan(&self) -> FaultPlan {
        let mut plan = FaultPlan::new();
        for ev in &self.events {
            if let Some(bps) = ev.condition.rate_bps {
                plan.push(ev.at, FaultAction::SetRate { link: ev.link, bps });
            }
            if let Some(p) = ev.condition.loss {
                plan.push(ev.at, FaultAction::SetLoss { link: ev.link, p });
            }
            if let Some(down) = ev.condition.down {
                let action = if down {
                    FaultAction::Down { link: ev.link }
                } else {
                    FaultAction::Up { link: ev.link }
                };
                plan.push(ev.at, action);
            }
        }
        plan
    }

    /// Re-express the trace as explicit path-management signaling for
    /// `conn`: the same physical link changes as
    /// [`to_fault_plan`](Self::to_fault_plan) — identical rates, losses and
    /// up/down timeline — plus ADD_ADDR/REMOVE_ADDR at every coverage edge
    /// of a link listed in `subflow_of` (pairs of `(link, subflow index)`;
    /// each link must be the first hop of its subflow's path, which is what
    /// routes the signal in a sharded world).
    ///
    /// This is the mobile host *telling* the scheduler about the handover
    /// instead of leaving it to discover the outage by retransmission
    /// timeouts: losing coverage signals the withdrawal **before** the link
    /// goes down (the subflow closes gracefully and strands nothing), and
    /// reacquisition brings the link up **before** the re-advertisement
    /// rejoins it. Links not listed keep fault-plan behavior.
    pub fn to_signal_plan(&self, conn: ConnId, subflow_of: &[(LinkId, usize)]) -> FaultPlan {
        let sub = |link: LinkId| subflow_of.iter().find(|&&(l, _)| l == link).map(|&(_, s)| s);
        let mut plan = FaultPlan::new();
        for ev in &self.events {
            if let Some(bps) = ev.condition.rate_bps {
                plan.push(ev.at, FaultAction::SetRate { link: ev.link, bps });
            }
            if let Some(p) = ev.condition.loss {
                plan.push(ev.at, FaultAction::SetLoss { link: ev.link, p });
            }
            if let Some(down) = ev.condition.down {
                if down {
                    if let Some(s) = sub(ev.link) {
                        plan.push(ev.at, FaultAction::AddrRemove { link: ev.link, conn, sub: s });
                    }
                    plan.push(ev.at, FaultAction::Down { link: ev.link });
                } else {
                    plan.push(ev.at, FaultAction::Up { link: ev.link });
                    if let Some(s) = sub(ev.link) {
                        plan.push(ev.at, FaultAction::AddrAdd { link: ev.link, conn, sub: s });
                    }
                }
            }
        }
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mptcp_netsim::LinkSpec;

    #[test]
    fn events_apply_in_time_order_once() {
        let mut sim = Simulator::new(0);
        let wifi = sim.add_link(LinkSpec::mbps(14.0, SimTime::from_millis(5), 20));
        let mut trace = MobilityTrace::new(vec![
            TraceEvent {
                at: SimTime::from_secs(10),
                link: wifi,
                condition: LinkCondition::rate(5e6),
            },
            TraceEvent {
                at: SimTime::from_secs(5),
                link: wifi,
                condition: LinkCondition::rate(7e6),
            },
        ]);
        assert_eq!(trace.apply_due(&mut sim, SimTime::from_secs(6)), 1);
        assert!((sim.link_spec(wifi).rate_bps - 7e6).abs() < 1.0);
        assert_eq!(trace.apply_due(&mut sim, SimTime::from_secs(6)), 0, "no double apply");
        assert_eq!(trace.apply_due(&mut sim, SimTime::from_secs(20)), 1);
        assert!((sim.link_spec(wifi).rate_bps - 5e6).abs() < 1.0);
        assert!(trace.exhausted());
    }

    #[test]
    fn paper_walk_toggles_wifi_coverage() {
        let mut sim = Simulator::new(1);
        let wifi = sim.add_link(LinkSpec::mbps(14.0, SimTime::from_millis(5), 20));
        let tg = sim.add_link(LinkSpec::mbps(2.0, SimTime::from_millis(75), 200));
        let mut trace = MobilityTrace::paper_walk(wifi, tg);
        trace.apply_due(&mut sim, SimTime::from_secs_f64(9.5 * 60.0));
        // During the stairwell the WiFi link is down; verified via behavior:
        // bring up a flow and check nothing flows (cheaper: check spec-level
        // by sending one more event).
        assert!(!trace.exhausted());
        trace.apply_due(&mut sim, SimTime::from_secs_f64(11.0 * 60.0));
        assert!(trace.exhausted());
        assert!((sim.link_spec(wifi).rate_bps - 10e6).abs() < 1.0, "new basestation rate");
    }

    #[test]
    fn one_apply_due_straddling_many_events_fires_each_exactly_once() {
        // A coarse driver may step `run_until` right over several trace
        // events; one `apply_due` call must fire each of them exactly once,
        // in time order, ending on the last event's state.
        let mut sim = Simulator::new(3);
        let wifi = sim.add_link(LinkSpec::mbps(14.0, SimTime::from_millis(5), 20));
        let mut trace = MobilityTrace::new(vec![
            TraceEvent { at: SimTime::from_secs(1), link: wifi, condition: LinkCondition::rate(5e6) },
            TraceEvent { at: SimTime::from_secs(2), link: wifi, condition: LinkCondition::outage() },
            TraceEvent {
                at: SimTime::from_secs(3),
                link: wifi,
                condition: LinkCondition::restore(Some(7e6)),
            },
        ]);
        assert_eq!(trace.apply_due(&mut sim, SimTime::from_secs(10)), 3);
        assert!(trace.exhausted());
        assert!((sim.link_spec(wifi).rate_bps - 7e6).abs() < 1.0, "last event wins");
        assert_eq!(trace.apply_due(&mut sim, SimTime::from_secs(20)), 0, "no re-fire");
    }

    #[test]
    fn to_fault_plan_preserves_times_and_per_event_ordering() {
        use mptcp_netsim::FaultAction;
        let plan = MobilityTrace::paper_walk(0, 1).to_fault_plan();
        // 5 trace events expand to 7 actions: rate+loss, rate, down, rate,
        // rate+up — with rate ordered before loss before up/down at each
        // timestamp, exactly as `apply_due` applies them.
        assert_eq!(plan.len(), 7);
        let kinds: Vec<&str> = plan
            .actions()
            .iter()
            .map(|(_, a)| match a {
                FaultAction::SetRate { .. } => "rate",
                FaultAction::SetLoss { .. } => "loss",
                FaultAction::Down { .. } => "down",
                FaultAction::Up { .. } => "up",
                _ => "other",
            })
            .collect();
        assert_eq!(kinds, ["rate", "loss", "rate", "down", "rate", "rate", "up"]);
        assert!(plan.actions().windows(2).all(|w| w[0].0 <= w[1].0), "time-sorted");
        assert_eq!(plan.actions()[3].0, SimTime::from_secs_f64(9.0 * 60.0));
    }

    /// Drive the paper walk as a fault plan under two different outer
    /// stepping granularities and return the recorder samples.
    fn walk_samples(outer_step: SimTime) -> Vec<mptcp_netsim::Sample> {
        use mptcp_cc::AlgorithmKind;
        use mptcp_netsim::Recorder;
        use mptcp_topology::{AccessLink, WirelessClient};

        let mut sim = Simulator::new(81);
        let w = WirelessClient::build(&mut sim, AccessLink::wifi(), AccessLink::three_g());
        let conn = w.add_multipath(&mut sim, AlgorithmKind::Mptcp, SimTime::ZERO);
        let plan = MobilityTrace::paper_walk(w.link1, w.link2).to_fault_plan();
        sim.install_fault_plan(&plan);
        let mut rec = Recorder::new(&sim, SimTime::from_secs(15), vec![conn], vec![w.link1]);
        let horizon = SimTime::from_secs(11 * 60);
        let mut now = SimTime::ZERO;
        while now < horizon {
            now = (now + outer_step).min(horizon);
            rec.advance_to(&mut sim, now);
        }
        rec.samples().to_vec()
    }

    #[test]
    fn signal_plan_pins_the_fault_plan_link_availability_timeline() {
        // Differential pin: signaling mode changes *who learns what when*,
        // never the physics. Both plans must encode the identical
        // link-availability timeline, with the ADD_ADDR/REMOVE_ADDR
        // signals riding exactly on the coverage edges — withdrawal before
        // the link drops, re-advertisement after it returns.
        let trace = MobilityTrace::paper_walk(0, 1);
        let fault = trace.to_fault_plan();
        let signal = trace.to_signal_plan(0, &[(0, 0), (1, 1)]);
        let availability = |plan: &FaultPlan| -> Vec<(SimTime, LinkId, bool)> {
            plan.actions()
                .iter()
                .filter_map(|&(at, a)| match a {
                    FaultAction::Down { link } => Some((at, link, false)),
                    FaultAction::Up { link } => Some((at, link, true)),
                    _ => None,
                })
                .collect()
        };
        assert_eq!(availability(&fault), availability(&signal));
        let physical = |plan: &FaultPlan| -> Vec<(SimTime, FaultAction)> {
            plan.actions()
                .iter()
                .filter(|(_, a)| {
                    !matches!(a, FaultAction::AddrRemove { .. } | FaultAction::AddrAdd { .. })
                })
                .copied()
                .collect()
        };
        assert_eq!(physical(&fault), physical(&signal), "identical physics, signals aside");
        let signals: Vec<(SimTime, FaultAction)> = signal
            .actions()
            .iter()
            .filter(|(_, a)| matches!(a, FaultAction::AddrRemove { .. } | FaultAction::AddrAdd { .. }))
            .copied()
            .collect();
        assert_eq!(signals.len(), 2, "one withdrawal, one re-advertisement: {signals:?}");
        let m = |min: f64| SimTime::from_secs_f64(min * 60.0);
        assert!(matches!(signals[0], (at, FaultAction::AddrRemove { conn: 0, sub: 0, .. }) if at == m(9.0)));
        assert!(matches!(signals[1], (at, FaultAction::AddrAdd { conn: 0, sub: 0, .. }) if at == m(10.5)));
    }

    #[test]
    fn signaled_walk_spares_the_wifi_subflow_its_timeouts() {
        // Behavioral differential: under the fault plan the scheduler
        // discovers the stairwell outage by RTO probing on the dead WiFi
        // subflow; under the signal plan it is told, closes the subflow,
        // and probes nothing. Same walk, strictly fewer WiFi timeouts.
        use mptcp_cc::AlgorithmKind;
        use mptcp_topology::{AccessLink, WirelessClient};

        let run = |signaled: bool| {
            let mut sim = Simulator::new(81);
            let w = WirelessClient::build(&mut sim, AccessLink::wifi(), AccessLink::three_g());
            let conn = w.add_multipath(&mut sim, AlgorithmKind::Mptcp, SimTime::ZERO);
            let trace = MobilityTrace::paper_walk(w.link1, w.link2);
            let plan = if signaled {
                trace.to_signal_plan(conn, &[(w.link1, 0), (w.link2, 1)])
            } else {
                trace.to_fault_plan()
            };
            sim.install_fault_plan(&plan);
            sim.run_until(SimTime::from_secs(11 * 60));
            sim.connection_stats(conn)
        };
        let faulted = run(false);
        let signaled = run(true);
        assert_eq!(signaled.subflows_closed, 1, "the stairwell withdraws WiFi once");
        assert_eq!(signaled.subflows_joined, 1, "the new basestation rejoins it");
        assert_eq!(faulted.subflows_closed, 0, "fault mode signals nothing");
        assert!(
            signaled.subflows[0].timeouts < faulted.subflows[0].timeouts,
            "signaling must spare the dead-path RTO probing: {} vs {}",
            signaled.subflows[0].timeouts,
            faulted.subflows[0].timeouts
        );
        assert!(!signaled.subflows[0].closed, "WiFi is open again after the walk");
        // Both modes keep moving data across the whole walk.
        assert!(faulted.data_delivered > 10_000 && signaled.data_delivered > 10_000);
    }

    #[test]
    fn paper_walk_fault_plan_is_stepping_granularity_invariant() {
        // Faults fire from the event queue at their exact timestamps, so
        // how coarsely the driver slices `run_until` cannot change the
        // physics: 100 ms steps and 1 s steps must agree bit-for-bit.
        let fine = walk_samples(SimTime::from_millis(100));
        let coarse = walk_samples(SimTime::from_secs(1));
        assert_eq!(fine.len(), coarse.len());
        for (a, b) in fine.iter().zip(&coarse) {
            assert_eq!(a.at, b.at);
            assert_eq!(a.conn_subflow_bps, b.conn_subflow_bps, "goodput differs at {:?}", a.at);
            assert_eq!(a.conn_cwnd, b.conn_cwnd, "cwnd differs at {:?}", a.at);
            assert_eq!(a.link_loss, b.link_loss, "loss differs at {:?}", a.at);
        }
    }
}
