//! The §4 data-center traffic patterns (TP1, TP2, TP3).

use rand::seq::SliceRandom;
use rand::Rng;

/// **TP1** — random permutation traffic: every host sends to exactly one
/// destination and receives from exactly one source, never itself. "For
/// FatTree, this is the least amount of traffic that can fully utilize the
/// network and is a good test for overall utilization."
///
/// Returns `(src, dst)` pairs, one per host.
///
/// # Panics
/// Panics if `hosts < 2`.
pub fn random_permutation_pairs<R: Rng>(hosts: usize, rng: &mut R) -> Vec<(usize, usize)> {
    assert!(hosts >= 2, "a permutation without fixed points needs ≥ 2 hosts");
    let mut dst: Vec<usize> = (0..hosts).collect();
    dst.shuffle(rng);
    // Remove fixed points by swapping with a neighbor (always possible for
    // hosts ≥ 2; the result stays a permutation).
    for i in 0..hosts {
        if dst[i] == i {
            let j = (i + 1) % hosts;
            dst.swap(i, j);
        }
    }
    // A final pass in case the last swap re-introduced a fixed point at 0.
    for i in 0..hosts {
        if dst[i] == i {
            let j = (i + 1) % hosts;
            dst.swap(i, j);
        }
    }
    (0..hosts).map(|s| (s, dst[s])).collect()
}

/// **TP2** for FatTree — one-to-many: "each host opens 12 flows to 12
/// destination hosts … in FatTree we choose 12 random destinations"
/// (distinct, and never the host itself).
///
/// Returns `(src, dst)` pairs (`hosts × fanout` of them).
///
/// # Panics
/// Panics if `fanout ≥ hosts`.
pub fn one_to_many_random<R: Rng>(
    hosts: usize,
    fanout: usize,
    rng: &mut R,
) -> Vec<(usize, usize)> {
    assert!(fanout < hosts, "fanout must leave room for distinct destinations");
    let mut pairs = Vec::with_capacity(hosts * fanout);
    let mut others: Vec<usize> = Vec::with_capacity(hosts - 1);
    for src in 0..hosts {
        others.clear();
        others.extend((0..hosts).filter(|&h| h != src));
        others.shuffle(rng);
        for &dst in others.iter().take(fanout) {
            pairs.push((src, dst));
        }
    }
    pairs
}

/// **TP3** — sparse traffic: "30% of the hosts open one flow to a single
/// destination chosen uniformly at random". Sources are a random 30%
/// subset; destinations are uniform over the other hosts.
pub fn sparse_pairs<R: Rng>(hosts: usize, fraction: f64, rng: &mut R) -> Vec<(usize, usize)> {
    assert!((0.0..=1.0).contains(&fraction));
    assert!(hosts >= 2);
    let n_src = ((hosts as f64) * fraction).round() as usize;
    let mut all: Vec<usize> = (0..hosts).collect();
    all.shuffle(rng);
    all.truncate(n_src);
    all.into_iter()
        .map(|src| {
            let mut dst = rng.gen_range(0..hosts - 1);
            if dst >= src {
                dst += 1;
            }
            (src, dst)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn tp1_is_a_fixed_point_free_permutation() {
        let mut rng = StdRng::seed_from_u64(0);
        for hosts in [2, 3, 5, 16, 128] {
            let pairs = random_permutation_pairs(hosts, &mut rng);
            assert_eq!(pairs.len(), hosts);
            let mut seen_dst = vec![false; hosts];
            for &(s, d) in &pairs {
                assert_ne!(s, d, "fixed point at {s}");
                assert!(!seen_dst[d], "destination {d} receives twice");
                seen_dst[d] = true;
            }
        }
    }

    #[test]
    fn tp1_varies_with_seed() {
        let a = random_permutation_pairs(64, &mut StdRng::seed_from_u64(1));
        let b = random_permutation_pairs(64, &mut StdRng::seed_from_u64(2));
        assert_ne!(a, b);
    }

    #[test]
    fn tp2_gives_each_host_distinct_destinations() {
        let mut rng = StdRng::seed_from_u64(3);
        let pairs = one_to_many_random(16, 12, &mut rng);
        assert_eq!(pairs.len(), 16 * 12);
        for src in 0..16 {
            let dsts: Vec<usize> =
                pairs.iter().filter(|&&(s, _)| s == src).map(|&(_, d)| d).collect();
            assert_eq!(dsts.len(), 12);
            let mut uniq = dsts.clone();
            uniq.sort_unstable();
            uniq.dedup();
            assert_eq!(uniq.len(), 12, "duplicate destinations for {src}");
            assert!(!dsts.contains(&src));
        }
    }

    #[test]
    fn tp3_selects_the_right_fraction() {
        let mut rng = StdRng::seed_from_u64(4);
        let pairs = sparse_pairs(100, 0.3, &mut rng);
        assert_eq!(pairs.len(), 30);
        let mut srcs: Vec<usize> = pairs.iter().map(|&(s, _)| s).collect();
        srcs.sort_unstable();
        srcs.dedup();
        assert_eq!(srcs.len(), 30, "sources must be distinct hosts");
        for &(s, d) in &pairs {
            assert_ne!(s, d);
            assert!(d < 100);
        }
    }

    #[test]
    #[should_panic]
    fn tp2_fanout_too_large_rejected() {
        let mut rng = StdRng::seed_from_u64(5);
        let _ = one_to_many_random(8, 8, &mut rng);
    }
}
