//! Poisson flow arrivals with Pareto-distributed sizes (§3's second server
//! load-balancing experiment).

use mptcp_netsim::SimTime;
use rand::Rng;

/// One generated flow arrival.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlowArrival {
    /// When the flow starts.
    pub start: SimTime,
    /// Transfer size in packets.
    pub size_pkts: u64,
}

/// Pareto file-size distribution. The paper: "file sizes drawn from a
/// Pareto distribution with mean 200 kB". We use shape α = 1.5 (a common
/// heavy-tail choice for flow sizes; the paper does not state α) and set
/// the scale so the mean matches: mean = α·x_m/(α−1) ⇒ x_m = mean/3·(α−1)·…
/// concretely x_m = mean·(α−1)/α. Samples are truncated at `max_bytes` so a
/// single elephant cannot dominate an entire finite run.
#[derive(Debug, Clone, Copy)]
pub struct ParetoSizes {
    /// Shape parameter α > 1.
    pub alpha: f64,
    /// Scale (minimum value), bytes.
    pub x_m: f64,
    /// Truncation, bytes.
    pub max_bytes: f64,
    /// Packet size used to convert bytes to packets.
    pub packet_size: u32,
}

impl ParetoSizes {
    /// The paper's configuration: mean 200 kB (α = 1.5, truncated at 50 MB).
    pub fn paper_mean_200kb() -> Self {
        Self::with_mean(200_000.0, 1.5)
    }

    /// A Pareto with the given mean (bytes) and shape α > 1.
    ///
    /// # Panics
    /// Panics unless `alpha > 1` and `mean_bytes > 0`.
    pub fn with_mean(mean_bytes: f64, alpha: f64) -> Self {
        assert!(alpha > 1.0, "Pareto mean requires α > 1");
        assert!(mean_bytes > 0.0);
        Self {
            alpha,
            x_m: mean_bytes * (alpha - 1.0) / alpha,
            max_bytes: 50e6,
            packet_size: 1500,
        }
    }

    /// Draw one size, in packets (≥ 1).
    pub fn sample_pkts<R: Rng>(&self, rng: &mut R) -> u64 {
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        let bytes = (self.x_m / u.powf(1.0 / self.alpha)).min(self.max_bytes);
        ((bytes / self.packet_size as f64).ceil() as u64).max(1)
    }
}

/// Poisson arrivals whose rate alternates between two levels with a fixed
/// phase length (§3: "rate alternating between 10/s (light load) and 60/s
/// (heavy load)"; the paper does not give the phase length — we default to
/// 30 s phases and expose it).
#[derive(Debug, Clone, Copy)]
pub struct AlternatingPoisson {
    /// Arrival rate in phase A, flows/s.
    pub rate_a: f64,
    /// Arrival rate in phase B, flows/s.
    pub rate_b: f64,
    /// Length of each phase.
    pub phase: SimTime,
}

impl AlternatingPoisson {
    /// The paper's 10/s ↔ 60/s alternation with 30 s phases.
    pub fn paper() -> Self {
        Self { rate_a: 10.0, rate_b: 60.0, phase: SimTime::from_secs(30) }
    }

    /// Generate all arrivals in `[0, until)` with sizes from `sizes`.
    pub fn generate<R: Rng>(
        &self,
        until: SimTime,
        sizes: &ParetoSizes,
        rng: &mut R,
    ) -> Vec<FlowArrival> {
        assert!(self.rate_a > 0.0 && self.rate_b > 0.0);
        let mut out = Vec::new();
        let mut t = 0.0_f64;
        let until_s = until.as_secs_f64();
        let phase_s = self.phase.as_secs_f64();
        while t < until_s {
            let in_a = ((t / phase_s) as u64).is_multiple_of(2);
            let rate = if in_a { self.rate_a } else { self.rate_b };
            let u: f64 = rng.gen_range(f64::EPSILON..1.0);
            t += -u.ln() / rate;
            if t >= until_s {
                break;
            }
            out.push(FlowArrival {
                start: SimTime::from_secs_f64(t),
                size_pkts: sizes.sample_pkts(rng),
            });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn pareto_mean_is_roughly_200kb() {
        let sizes = ParetoSizes::paper_mean_200kb();
        let mut rng = StdRng::seed_from_u64(0);
        let n = 200_000;
        let total: u64 = (0..n).map(|_| sizes.sample_pkts(&mut rng)).sum();
        let mean_bytes = total as f64 * 1500.0 / n as f64;
        // Truncation biases the mean slightly down; accept 150–250 kB.
        assert!(
            (120_000.0..260_000.0).contains(&mean_bytes),
            "empirical mean {mean_bytes}"
        );
    }

    #[test]
    fn pareto_minimum_is_at_least_one_packet() {
        let sizes = ParetoSizes::with_mean(2000.0, 1.5);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            assert!(sizes.sample_pkts(&mut rng) >= 1);
        }
    }

    #[test]
    fn arrivals_alternate_between_rates() {
        let gen = AlternatingPoisson::paper();
        let sizes = ParetoSizes::paper_mean_200kb();
        let mut rng = StdRng::seed_from_u64(2);
        let arrivals = gen.generate(SimTime::from_secs(120), &sizes, &mut rng);
        // Phases: [0,30) light, [30,60) heavy, [60,90) light, [90,120) heavy.
        let count_in = |a: u64, b: u64| {
            arrivals
                .iter()
                .filter(|f| f.start >= SimTime::from_secs(a) && f.start < SimTime::from_secs(b))
                .count() as f64
        };
        let light = (count_in(0, 30) + count_in(60, 90)) / 60.0;
        let heavy = (count_in(30, 60) + count_in(90, 120)) / 60.0;
        assert!((6.0..14.0).contains(&light), "light-phase rate {light}");
        assert!((48.0..72.0).contains(&heavy), "heavy-phase rate {heavy}");
    }

    #[test]
    fn arrivals_are_sorted_and_bounded() {
        let gen = AlternatingPoisson { rate_a: 5.0, rate_b: 5.0, phase: SimTime::from_secs(10) };
        let sizes = ParetoSizes::with_mean(10_000.0, 2.0);
        let mut rng = StdRng::seed_from_u64(3);
        let arrivals = gen.generate(SimTime::from_secs(50), &sizes, &mut rng);
        for w in arrivals.windows(2) {
            assert!(w[0].start <= w[1].start);
        }
        assert!(arrivals.iter().all(|f| f.start < SimTime::from_secs(50)));
    }
}
