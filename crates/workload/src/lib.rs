//! # mptcp-workload — traffic and scenario generators
//!
//! The workloads the paper's evaluation runs:
//!
//! * [`patterns`] — the §4 data-center traffic patterns: **TP1** (random
//!   permutation: "each host opens a flow to a single destination chosen
//!   uniformly at random, such that each host has a single incoming
//!   flow"), **TP2** (one-to-many: "each host opens 12 flows to 12
//!   destination hosts"), **TP3** (sparse: "30% of the hosts open one flow
//!   to a single destination chosen uniformly at random");
//! * [`arrivals`] — the §3 server-load-balancing workload: "Poisson
//!   arrivals of TCP flows with rate alternating between 10/s (light load)
//!   and 60/s (heavy load), with file sizes drawn from a Pareto
//!   distribution with mean 200 kB";
//! * [`mobility`] — the §5 walk-about-the-building connectivity trace for
//!   Fig. 17 (WiFi coverage lost on the stairwell, 3G improving, a new
//!   basestation acquired);
//! * [`churn`] — a deterministic burst-then-trickle flow-churn shape (no
//!   paper counterpart): the stress workload for the flow arena's
//!   allocation-free open/close path, used by the `flow_churn` bench.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arrivals;
pub mod churn;
pub mod mobility;
pub mod patterns;

pub use arrivals::{AlternatingPoisson, FlowArrival, ParetoSizes};
pub use churn::ChurnSchedule;
pub use mobility::{LinkCondition, MobilityTrace, TraceEvent};
pub use patterns::{one_to_many_random, random_permutation_pairs, sparse_pairs};
