//! A parallel experiment runner.
//!
//! The paper's evaluation sweeps (algorithm × parameter × seed) over many
//! independent simulations; each simulation is single-threaded and fully
//! deterministic, so the sweep is embarrassingly parallel. [`run_parallel`]
//! fans the jobs out over a worker pool and returns results **in job
//! order**, so converting a serial `for` loop to the runner changes wall
//! time only — the output bytes are identical (determinism is per-job, via
//! each job's own seed; nothing is shared between jobs).
//!
//! The pool uses `std::thread::scope` workers pulling job indices from an
//! atomic counter — no external dependencies. Thread count defaults to the
//! number of available cores, capped by the job count, and can be pinned
//! with `MPTCP_JOBS=<n>` (`MPTCP_JOBS=1` gives a serial run for A/B
//! checking the determinism claim).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Number of worker threads to use for `n_jobs` jobs: `MPTCP_JOBS` if set,
/// else the available parallelism, capped by the job count.
pub fn worker_count(n_jobs: usize) -> usize {
    let def = || std::thread::available_parallelism().map_or(1, |n| n.get());
    let n = match std::env::var("MPTCP_JOBS") {
        Ok(v) => v.trim().parse::<usize>().map_or_else(|_| def(), |n| n.max(1)),
        Err(_) => def(),
    };
    n.min(n_jobs).max(1)
}

/// Run `f` over every job, in parallel, returning results in job order.
///
/// `f` must be a pure function of the job (plus its own internal seeds) for
/// the sequential/parallel equivalence to hold; all the experiment runners
/// in this crate are.
pub fn run_parallel<I, R, F>(jobs: &[I], f: F) -> Vec<R>
where
    I: Sync,
    R: Send,
    F: Fn(&I) -> R + Sync,
{
    let workers = worker_count(jobs.len());
    if workers <= 1 {
        return jobs.iter().map(&f).collect();
    }
    let next = AtomicUsize::new(0);
    let results: Vec<Mutex<Option<R>>> =
        jobs.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(job) = jobs.get(i) else { break };
                let r = f(job);
                *results[i].lock().expect("result slot poisoned") = Some(r);
            });
        }
    });
    results
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("worker completed every claimed job")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_job_order() {
        let jobs: Vec<u64> = (0..64).collect();
        let out = run_parallel(&jobs, |&j| {
            // Unequal job durations scramble completion order.
            std::thread::sleep(std::time::Duration::from_micros(1 + (j % 7) * 50));
            j * 10
        });
        assert_eq!(out, (0..64).map(|j| j * 10).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_matches_serial() {
        let jobs: Vec<u64> = (0..40).collect();
        let f = |&j: &u64| j.wrapping_mul(0x9e3779b97f4a7c15).rotate_left(17);
        let serial: Vec<u64> = jobs.iter().map(f).collect();
        assert_eq!(run_parallel(&jobs, f), serial);
    }

    #[test]
    fn empty_job_list() {
        let out: Vec<u64> = run_parallel(&[] as &[u64], |&j| j);
        assert!(out.is_empty());
    }

    #[test]
    fn worker_count_respects_job_cap() {
        assert_eq!(worker_count(1), 1);
        assert!(worker_count(1000) >= 1);
    }
}
