//! Fluid-model differential oracle: the packet-level simulator and the
//! fluid balance equations must agree on equilibrium windows.
//!
//! The paper's whole argument runs through the fluid model (§2): every
//! algorithm is a pair of window rules whose balance point the paper
//! derives analytically, then checks against its packet-level simulator.
//! This module automates that cross-check. For a scenario we
//!
//! 1. run the packet-level simulator with telemetry probes enabled,
//! 2. measure the **time-averaged** per-subflow congestion window, smoothed
//!    RTT and per-path loss rate over a post-warmup window,
//! 3. feed the *measured* `(p_r, RTT_r)` into the generic fluid solver
//!    [`mptcp_cc::fluid::equilibrium`] for the same algorithm, and
//! 4. assert that measured and predicted windows agree within a documented
//!    tolerance.
//!
//! Because the fluid solver and the simulator share nothing but the
//! [`MultipathCc`] rule objects themselves, a drift between the
//! implementation and the model — a misscaled increase, a wrong decrease
//! denominator — shows up as a disagreement here even when every
//! conventional unit test still passes (see
//! `fluid_check_with_model` and the perturbation tests).
//!
//! ## Tolerances
//!
//! The comparison can never be exact, for well-understood reasons:
//!
//! * **Sawtooth mean vs fixed point.** The fluid equilibrium is the balance
//!   point of the rules; a real AIMD sender oscillates around it. For a
//!   halving sawtooth the time-average sits at `√(3/(2p)) / √(2/p) ≈ 0.87`
//!   of the fluid fixed point, so predictions are scaled by
//!   [`SAWTOOTH_MEAN_FACTOR`] before comparison.
//! * **Loss model.** The fluid model assumes independent per-packet loss.
//!   The two-path scenarios use Bernoulli-loss links with empty queues to
//!   match that assumption tightly; the torus scenario keeps the paper's
//!   drop-tail buffers, whose synchronized losses and queueing delay widen
//!   the spread — its tolerance is correspondingly looser.
//! * **COUPLED's split is not unique.** With equal measured loss rates the
//!   COUPLED balance equations pin the *total* window but barely constrain
//!   the split (the paper's "flappiness", §2.3), so for COUPLED only the
//!   total is checked against tolerance. OLIA inherits the same exemption:
//!   its base term is COUPLED-shaped, and its ε steering resolves the
//!   split from loss-rate differences at measurement-noise scale.

use mptcp_cc::fluid::{equilibrium_with, EquilibriumOptions};
use mptcp_cc::{AlgorithmKind, MultipathCc, SubflowSnapshot};
use mptcp_netsim::{ConnId, ConnectionSpec, LinkId, LinkSpec, ProbeSpec, SimTime, Simulator};
use mptcp_topology::Torus;

/// Time-average of a halving sawtooth relative to its fluid fixed point:
/// `√(3/(2p)) / √(2/p) = √3/2`.
pub const SAWTOOTH_MEAN_FACTOR: f64 = 0.866;

/// The scenarios the oracle runs (one per row of the paper's core story).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scenario {
    /// Two equal 10 Mb/s paths, 40 ms RTT each, 1% Bernoulli loss: the §2
    /// baseline where every algorithm has a clean equilibrium.
    TwoPath,
    /// Same loss on both paths but RTTs of 20 ms vs 200 ms: the §2.2 RTT
    /// mismatch that separates the algorithms.
    RttMismatch,
    /// The Fig. 7 five-link torus (drop-tail, 100 ms RTT): flow 0's
    /// windows are checked against the fluid solution for the measured
    /// loss on its two links.
    Torus,
}

impl Scenario {
    /// All scenarios, in presentation order.
    pub fn all() -> [Scenario; 3] {
        [Scenario::TwoPath, Scenario::RttMismatch, Scenario::Torus]
    }

    /// Stable name for reports and `BENCH_sim.json` sources.
    pub fn name(self) -> &'static str {
        match self {
            Scenario::TwoPath => "two_path",
            Scenario::RttMismatch => "rtt_mismatch",
            Scenario::Torus => "torus",
        }
    }

    /// `(total, split)` relative tolerances (see module docs).
    pub fn tolerances(self) -> (f64, f64) {
        match self {
            Scenario::TwoPath => (0.25, 0.30),
            Scenario::RttMismatch => (0.25, 0.30),
            Scenario::Torus => (0.35, 0.45),
        }
    }
}

/// One subflow's measured-vs-predicted comparison.
#[derive(Debug, Clone, Copy)]
pub struct PathCheck {
    /// Time-averaged congestion window from the probe series, packets.
    pub measured_w: f64,
    /// Fluid equilibrium window scaled by [`SAWTOOTH_MEAN_FACTOR`], packets.
    pub predicted_w: f64,
    /// Measured loss rate fed to the solver.
    pub loss: f64,
    /// Measured mean smoothed RTT fed to the solver, seconds.
    pub rtt: f64,
}

/// The oracle's verdict for one `(algorithm, scenario)` cell.
#[derive(Debug, Clone)]
pub struct OracleReport {
    /// Algorithm checked.
    pub algorithm: AlgorithmKind,
    /// Model the prediction came from (normally the same algorithm).
    pub model_name: &'static str,
    /// Scenario run.
    pub scenario: Scenario,
    /// Per-subflow comparison.
    pub paths: Vec<PathCheck>,
    /// `|Σ measured − Σ predicted| / Σ predicted`.
    pub total_dev: f64,
    /// `max_r |measured_r − predicted_r| / Σ predicted`.
    pub split_dev: f64,
    /// Tolerance applied to `total_dev`.
    pub tol_total: f64,
    /// Tolerance applied to `split_dev` (∞ when the split is unchecked).
    pub tol_split: f64,
    /// Whether both deviations sit within tolerance.
    pub pass: bool,
}

impl std::fmt::Display for OracleReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "fluid_check {:?} on {}: {} (model {}, total_dev {:.3} ≤ {:.2}, split_dev {:.3} ≤ {:.2})",
            self.algorithm,
            self.scenario.name(),
            if self.pass { "PASS" } else { "FAIL" },
            self.model_name,
            self.total_dev,
            self.tol_total,
            self.split_dev,
            self.tol_split,
        )?;
        for (r, p) in self.paths.iter().enumerate() {
            writeln!(
                f,
                "  path {r}: measured {:7.2} pkts vs predicted {:7.2} pkts  (p {:.4}, rtt {:.1} ms)",
                p.measured_w,
                p.predicted_w,
                p.loss,
                p.rtt * 1e3,
            )?;
        }
        Ok(())
    }
}

/// What the simulator measured for one connection: per-path time-averaged
/// windows, RTTs and loss rates.
struct Measured {
    windows: Vec<f64>,
    rtts: Vec<f64>,
    losses: Vec<f64>,
}

/// Simulated durations: long enough for hundreds of loss events per path,
/// short enough for tier-1 test budgets.
const WARMUP: SimTime = SimTime(20_000_000_000);
const WINDOW: SimTime = SimTime(60_000_000_000);

fn measure(sim: &mut Simulator, conn: ConnId, links: &[LinkId]) -> Measured {
    sim.enable_probe(ProbeSpec::every(SimTime::from_millis(25)).conns(vec![conn]));
    sim.run_until(sim.now() + WARMUP);
    let from = sim.now();
    sim.reset_link_stats();
    sim.run_until(sim.now() + WINDOW);
    let log = sim.disable_probe().expect("probe enabled above");
    let n = sim.connection_stats(conn).subflows.len();
    assert_eq!(n, links.len(), "one bottleneck link per subflow");
    let mut m = Measured { windows: Vec::new(), rtts: Vec::new(), losses: Vec::new() };
    for (r, &l) in links.iter().enumerate() {
        m.windows.push(log.mean_cwnd(conn, r, from).expect("samples recorded"));
        m.rtts.push(log.mean_srtt(conn, r, from).expect("srtt sampled"));
        // Defensive clamp: the solver needs p ∈ (0, 1], and a pathological
        // run with zero observed drops would otherwise divide by zero.
        m.losses.push(sim.link_stats(l).loss_rate().clamp(1e-5, 0.5));
    }
    m
}

fn run_scenario(kind: AlgorithmKind, scenario: Scenario) -> Measured {
    match scenario {
        Scenario::TwoPath => {
            let mut sim = Simulator::new(7);
            let a = sim
                .add_link(LinkSpec::mbps(10.0, SimTime::from_millis(20), 50).with_loss(0.01));
            let b = sim
                .add_link(LinkSpec::mbps(10.0, SimTime::from_millis(20), 50).with_loss(0.01));
            let c = sim
                .add_connection(ConnectionSpec::bulk(kind).path(vec![a]).path(vec![b]));
            measure(&mut sim, c, &[a, b])
        }
        Scenario::RttMismatch => {
            let mut sim = Simulator::new(7);
            let fast = sim
                .add_link(LinkSpec::mbps(20.0, SimTime::from_millis(10), 50).with_loss(0.01));
            let slow = sim
                .add_link(LinkSpec::mbps(20.0, SimTime::from_millis(100), 50).with_loss(0.01));
            let c = sim
                .add_connection(ConnectionSpec::bulk(kind).path(vec![fast]).path(vec![slow]));
            measure(&mut sim, c, &[fast, slow])
        }
        Scenario::Torus => {
            let mut sim = Simulator::new(7);
            let t = Torus::build(&mut sim, [1000.0; 5], kind);
            measure(&mut sim, t.flows[0], &[t.links[0], t.links[1]])
        }
    }
}

/// Run the oracle for `kind` on `scenario`, predicting with the
/// algorithm's own fluid model (the normal differential check).
///
/// The measurement runs **first**: stateful kinds (OLIA) have fluid
/// models parameterized by the measured loss rates
/// ([`AlgorithmKind::fluid_model`]), so the model cannot exist until the
/// packet-level run has produced them.
///
/// # Panics
/// Panics for kinds outside the loss-driven fluid solver's reach (CUBIC,
/// wVegas) — those never appear in [`checked_cells`].
pub fn fluid_check(kind: AlgorithmKind, scenario: Scenario) -> OracleReport {
    let m = run_scenario(kind, scenario);
    let model = kind
        .fluid_model(&m.losses)
        .unwrap_or_else(|| panic!("{kind:?} has no loss-driven fluid model"));
    report_from(kind, scenario, &m, model.as_ref())
}

/// Run the oracle with an explicit model. The simulator runs `kind`; the
/// prediction comes from `model`. Handing in a perturbed model (or running
/// a perturbed implementation against the clean model) must make the check
/// fail — that is the oracle's reason to exist, and the negative tests in
/// `tests/fluid_oracle.rs` pin it.
pub fn fluid_check_with_model(
    kind: AlgorithmKind,
    scenario: Scenario,
    model: &dyn MultipathCc,
) -> OracleReport {
    let m = run_scenario(kind, scenario);
    report_from(kind, scenario, &m, model)
}

fn report_from(
    kind: AlgorithmKind,
    scenario: Scenario,
    m: &Measured,
    model: &dyn MultipathCc,
) -> OracleReport {
    // Integrate with the *sender's* probing floor, not the analytical one:
    // the measured side of this comparison is a packet sender that holds
    // every window ≥ `min_window` (paper footnote 5 — the analysis drops
    // the floor, the implementation keeps it). For the interior equilibria
    // the floor is inert; for the corner equilibria (COUPLED's abandoned
    // path, OLIA's ε-steered loser) it is the difference between
    // predicting 0 and predicting what the sender actually does.
    let opts = EquilibriumOptions { window_floor: model.min_window(), ..Default::default() };
    let predicted_raw = equilibrium_with(model, &m.losses, &m.rtts, opts);
    let paths: Vec<PathCheck> = (0..m.windows.len())
        .map(|r| PathCheck {
            measured_w: m.windows[r],
            predicted_w: SAWTOOTH_MEAN_FACTOR * predicted_raw[r],
            loss: m.losses[r],
            rtt: m.rtts[r],
        })
        .collect();
    let meas_total: f64 = paths.iter().map(|p| p.measured_w).sum();
    let pred_total: f64 = paths.iter().map(|p| p.predicted_w).sum();
    let total_dev = (meas_total - pred_total).abs() / pred_total;
    let split_dev = paths
        .iter()
        .map(|p| (p.measured_w - p.predicted_w).abs() / pred_total)
        .fold(0.0_f64, f64::max);
    let (tol_total, mut tol_split) = scenario.tolerances();
    if kind == AlgorithmKind::Coupled || kind == AlgorithmKind::Olia {
        // Split not unique; total only. COUPLED: the paper's "flappiness"
        // (§2.3). OLIA: its base coupling term is COUPLED-shaped, so with
        // near-equal paths the equations pin the total while the ε terms
        // pick a winner from measurement-noise-sized loss differences —
        // the packet sender's live counters average over both orderings.
        tol_split = f64::INFINITY;
    }
    OracleReport {
        algorithm: kind,
        model_name: model.name(),
        scenario,
        paths,
        total_dev,
        split_dev,
        tol_total,
        tol_split,
        pass: total_dev <= tol_total && split_dev <= tol_split,
    }
}

/// A deliberately broken model: the inner algorithm's increase rule scaled
/// by a constant factor. Used to demonstrate the oracle *fails* when the
/// implementation and the model drift apart — exactly the class of bug
/// (misscaled aggressiveness) the paper's eq. (1) derivation is about.
pub struct ScaledIncrease {
    inner: Box<dyn MultipathCc>,
    factor: f64,
}

impl ScaledIncrease {
    /// Wrap `inner`, multiplying every per-ACK increase by `factor`.
    pub fn new(inner: Box<dyn MultipathCc>, factor: f64) -> Self {
        assert!(factor.is_finite() && factor > 0.0);
        Self { inner, factor }
    }
}

impl MultipathCc for ScaledIncrease {
    fn name(&self) -> &'static str {
        "SCALED"
    }

    fn increase_per_ack(&self, r: usize, subs: &[SubflowSnapshot]) -> f64 {
        self.factor * self.inner.increase_per_ack(r, subs)
    }

    fn window_after_loss(&self, r: usize, subs: &[SubflowSnapshot]) -> f64 {
        self.inner.window_after_loss(r, subs)
    }
}

/// The five algorithms of the paper's core comparison (RFC 6356 is a
/// restatement of MPTCP and adds nothing to the oracle's coverage).
pub fn checked_algorithms() -> [AlgorithmKind; 5] {
    [
        AlgorithmKind::Uncoupled,
        AlgorithmKind::Ewtcp,
        AlgorithmKind::Coupled,
        AlgorithmKind::SemiCoupled,
        AlgorithmKind::Mptcp,
    ]
}

/// Every `(algorithm, scenario)` cell the oracle gate covers.
///
/// The paper's five core algorithms run all three scenarios. The
/// post-paper successors with loss-driven fluid models (OLIA with its
/// `ℓ_p = 1/p_p` steady state, BALIA per Peng et al., arXiv:1308.3119)
/// run the two Bernoulli-loss scenarios, where the independent-loss
/// assumption behind their derivations holds; the torus's synchronized
/// drop-tail losses sit outside those derivations, so that cell is
/// deliberately absent. CUBIC and wVegas have no loss-driven fluid model
/// at all ([`AlgorithmKind::fluid_model`]) and are covered by `cc_micro`
/// and the behavioral sweeps instead.
pub fn checked_cells() -> Vec<(AlgorithmKind, Scenario)> {
    let mut cells = Vec::new();
    for kind in checked_algorithms() {
        for scenario in Scenario::all() {
            cells.push((kind, scenario));
        }
    }
    for kind in [AlgorithmKind::Olia, AlgorithmKind::Balia] {
        for scenario in [Scenario::TwoPath, Scenario::RttMismatch] {
            cells.push((kind, scenario));
        }
    }
    cells
}
