//! Shared machinery for the §4 data-center experiments (FatTree & BCube).

use mptcp_cc::AlgorithmKind;
use mptcp_netsim::{ConnId, ConnectionSpec, LinkSpec, QueueBackend, SimPerf, SimTime, Simulator};
use mptcp_topology::{BCube, FatTree};
use mptcp_workload::{one_to_many_random, random_permutation_pairs, sparse_pairs};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The three §4 traffic patterns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tp {
    /// TP1: random permutation.
    Permutation,
    /// TP2: one-to-many (12 flows per host).
    OneToMany,
    /// TP3: sparse (30% of hosts).
    Sparse,
}

/// How flows route.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Routing {
    /// Single-path TCP over a random shortest path (the ECMP mimic).
    SinglePath,
    /// Multipath with `n_paths` subflows under the given algorithm.
    Multipath(AlgorithmKind, usize),
}

/// Result of one data-center run.
pub struct DcResult {
    /// Goodput per source host, bits/s (sum of its flows).
    pub per_host_bps: Vec<f64>,
    /// Goodput per flow, bits/s.
    pub per_flow_bps: Vec<f64>,
    /// Loss rate of every core link over the measurement window.
    pub core_loss: Vec<f64>,
    /// Loss rate of every access link over the measurement window.
    pub access_loss: Vec<f64>,
}

impl DcResult {
    /// Mean per-host goodput in Mb/s (the paper's table unit).
    pub fn mean_host_mbps(&self) -> f64 {
        let active: Vec<&f64> = self.per_host_bps.iter().filter(|&&b| b > 0.0).collect();
        if active.is_empty() {
            return 0.0;
        }
        active.iter().copied().sum::<f64>() / active.len() as f64 / 1e6
    }
}

/// The link spec used for every data-center link: 100 Mb/s, 10 µs
/// propagation, 100-packet buffers.
pub fn dc_link() -> LinkSpec {
    LinkSpec::mbps(100.0, SimTime::from_micros(10), 100)
}

fn host_pairs(tp: Tp, hosts: usize, rng: &mut StdRng) -> Vec<(usize, usize)> {
    match tp {
        Tp::Permutation => random_permutation_pairs(hosts, rng),
        Tp::OneToMany => one_to_many_random(hosts, 12, rng),
        Tp::Sparse => sparse_pairs(hosts, 0.3, rng),
    }
}

fn finish(
    sim: &mut Simulator,
    conns: &[(usize, ConnId)],
    hosts: usize,
    warmup: SimTime,
    window: SimTime,
    core: &[usize],
    access: &[usize],
) -> DcResult {
    let ids: Vec<ConnId> = conns.iter().map(|&(_, c)| c).collect();
    let flows = crate::measure_goodput_bps(sim, &ids, warmup, window);
    let mut per_host = vec![0.0; hosts];
    for (&(src, _), &bps) in conns.iter().zip(&flows) {
        per_host[src] += bps;
    }
    DcResult {
        per_host_bps: per_host,
        per_flow_bps: flows,
        core_loss: core.iter().map(|&l| sim.link_stats(l).loss_rate()).collect(),
        access_loss: access.iter().map(|&l| sim.link_stats(l).loss_rate()).collect(),
    }
}

/// Run one FatTree experiment.
pub fn run_fattree(
    k: usize,
    tp: Tp,
    routing: Routing,
    seed: u64,
    warmup: SimTime,
    window: SimTime,
) -> DcResult {
    run_fattree_with(k, tp, routing, seed, warmup, window, QueueBackend::default()).0
}

/// [`run_fattree`] on an explicit event-queue backend, also returning the
/// simulator's [`SimPerf`] counters — the hook the scheduler benchmarks use
/// to compare the timer wheel against the reference heap on an identical
/// workload.
#[allow(clippy::too_many_arguments)]
pub fn run_fattree_with(
    k: usize,
    tp: Tp,
    routing: Routing,
    seed: u64,
    warmup: SimTime,
    window: SimTime,
    backend: QueueBackend,
) -> (DcResult, SimPerf) {
    let mut sim = Simulator::with_backend(seed, backend);
    let ft = FatTree::build(&mut sim, k, dc_link());
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed);
    let pairs = host_pairs(tp, ft.host_count(), &mut rng);
    let conns: Vec<(usize, ConnId)> = pairs
        .iter()
        .map(|&(s, d)| {
            let conn = match routing {
                Routing::SinglePath => sim.add_connection(
                    ConnectionSpec::bulk(AlgorithmKind::Uncoupled)
                        .path(ft.ecmp_path(s, d, &mut rng)),
                ),
                Routing::Multipath(alg, n) => {
                    let mut spec = ConnectionSpec::bulk(alg);
                    for p in ft.random_paths(s, d, n, &mut rng) {
                        spec = spec.path(p);
                    }
                    sim.add_connection(spec)
                }
            };
            (s, conn)
        })
        .collect();
    let core = ft.core_links();
    let access = ft.access_links();
    let res = finish(&mut sim, &conns, ft.host_count(), warmup, window, &core, &access);
    (res, sim.perf())
}

/// Run one BCube experiment.
pub fn run_bcube(
    n: usize,
    levels_k: usize,
    tp: Tp,
    routing: Routing,
    seed: u64,
    warmup: SimTime,
    window: SimTime,
) -> DcResult {
    let mut sim = Simulator::new(seed);
    let bc = BCube::build(&mut sim, n, levels_k, dc_link());
    let mut rng = StdRng::seed_from_u64(seed ^ 0xbcbe);
    let hosts = bc.host_count();
    // TP2 in BCube: "the destinations are the host's neighbors in the
    // three levels".
    let pairs: Vec<(usize, usize)> = match tp {
        Tp::OneToMany => (0..hosts)
            .flat_map(|h| bc.level_neighbors(h).into_iter().map(move |d| (h, d)))
            .collect(),
        other => host_pairs(other, hosts, &mut rng),
    };
    let conns: Vec<(usize, ConnId)> = pairs
        .iter()
        .map(|&(s, d)| {
            let conn = match routing {
                Routing::SinglePath => sim.add_connection(
                    ConnectionSpec::bulk(AlgorithmKind::Uncoupled).path(bc.single_path(s, d)),
                ),
                Routing::Multipath(alg, _) => {
                    let mut spec = ConnectionSpec::bulk(alg);
                    for p in bc.path_set(s, d, &mut rng) {
                        spec = spec.path(p);
                    }
                    sim.add_connection(spec)
                }
            };
            (s, conn)
        })
        .collect();
    // All links in BCube are host↔switch; treat them all as "core" for the
    // loss distribution and also as access (they are NIC links).
    let all: Vec<usize> = (0..sim.link_count()).collect();
    finish(&mut sim, &conns, hosts, warmup, window, &all, &[])
}
