//! Shared machinery for the §4 data-center experiments (FatTree & BCube).

use mptcp_cc::AlgorithmKind;
use mptcp_netsim::{
    ConnId, ConnectionSpec, LinkSpec, QueueBackend, ShardedSimulator, SimPerf, SimTime, Simulator,
};
use mptcp_topology::{BCube, FatTree};
use mptcp_workload::{one_to_many_random, random_permutation_pairs, sparse_pairs};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The three §4 traffic patterns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tp {
    /// TP1: random permutation.
    Permutation,
    /// TP2: one-to-many (12 flows per host).
    OneToMany,
    /// TP3: sparse (30% of hosts).
    Sparse,
}

/// How flows route.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Routing {
    /// Single-path TCP over a random shortest path (the ECMP mimic).
    SinglePath,
    /// Multipath with `n_paths` subflows under the given algorithm.
    Multipath(AlgorithmKind, usize),
}

/// Result of one data-center run.
pub struct DcResult {
    /// Goodput per source host, bits/s (sum of its flows).
    pub per_host_bps: Vec<f64>,
    /// Goodput per flow, bits/s.
    pub per_flow_bps: Vec<f64>,
    /// Loss rate of every core link over the measurement window.
    pub core_loss: Vec<f64>,
    /// Loss rate of every access link over the measurement window.
    pub access_loss: Vec<f64>,
}

impl DcResult {
    /// Mean per-host goodput in Mb/s (the paper's table unit).
    pub fn mean_host_mbps(&self) -> f64 {
        let active: Vec<&f64> = self.per_host_bps.iter().filter(|&&b| b > 0.0).collect();
        if active.is_empty() {
            return 0.0;
        }
        active.iter().copied().sum::<f64>() / active.len() as f64 / 1e6
    }
}

/// The link spec used for every data-center link: 100 Mb/s, 10 µs
/// propagation, 100-packet buffers.
pub fn dc_link() -> LinkSpec {
    LinkSpec::mbps(100.0, SimTime::from_micros(10), 100)
}

fn host_pairs(tp: Tp, hosts: usize, rng: &mut StdRng) -> Vec<(usize, usize)> {
    match tp {
        Tp::Permutation => random_permutation_pairs(hosts, rng),
        Tp::OneToMany => one_to_many_random(hosts, 12, rng),
        Tp::Sparse => sparse_pairs(hosts, 0.3, rng),
    }
}

fn finish(
    sim: &mut Simulator,
    conns: &[(usize, ConnId)],
    hosts: usize,
    warmup: SimTime,
    window: SimTime,
    core: &[usize],
    access: &[usize],
) -> DcResult {
    let ids: Vec<ConnId> = conns.iter().map(|&(_, c)| c).collect();
    let flows = crate::measure_goodput_bps(sim, &ids, warmup, window);
    let mut per_host = vec![0.0; hosts];
    for (&(src, _), &bps) in conns.iter().zip(&flows) {
        per_host[src] += bps;
    }
    DcResult {
        per_host_bps: per_host,
        per_flow_bps: flows,
        core_loss: core.iter().map(|&l| sim.link_stats(l).loss_rate()).collect(),
        access_loss: access.iter().map(|&l| sim.link_stats(l).loss_rate()).collect(),
    }
}

/// Run one FatTree experiment.
pub fn run_fattree(
    k: usize,
    tp: Tp,
    routing: Routing,
    seed: u64,
    warmup: SimTime,
    window: SimTime,
) -> DcResult {
    run_fattree_with(k, tp, routing, seed, warmup, window, QueueBackend::default()).0
}

/// [`run_fattree`] on an explicit event-queue backend, also returning the
/// simulator's [`SimPerf`] counters — the hook the scheduler benchmarks use
/// to compare the timer wheel against the reference heap on an identical
/// workload.
#[allow(clippy::too_many_arguments)]
pub fn run_fattree_with(
    k: usize,
    tp: Tp,
    routing: Routing,
    seed: u64,
    warmup: SimTime,
    window: SimTime,
    backend: QueueBackend,
) -> (DcResult, SimPerf) {
    let mut sim = Simulator::with_backend(seed, backend);
    let ft = FatTree::build(&mut sim, k, dc_link());
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed);
    let pairs = host_pairs(tp, ft.host_count(), &mut rng);
    let conns: Vec<(usize, ConnId)> = pairs
        .iter()
        .map(|&(s, d)| {
            let conn = match routing {
                Routing::SinglePath => sim.add_connection(
                    ConnectionSpec::bulk(AlgorithmKind::Uncoupled)
                        .path(ft.ecmp_path(s, d, &mut rng)),
                ),
                Routing::Multipath(alg, n) => {
                    let mut spec = ConnectionSpec::bulk(alg);
                    for p in ft.random_paths(s, d, n, &mut rng) {
                        spec = spec.path(p);
                    }
                    sim.add_connection(spec)
                }
            };
            (s, conn)
        })
        .collect();
    let core = ft.core_links();
    let access = ft.access_links();
    let res = finish(&mut sim, &conns, ft.host_count(), warmup, window, &core, &access);
    (res, sim.perf())
}

/// Result of one sharded FatTree run: the usual [`DcResult`], the merged
/// perf counters for the whole run, and warm-up-excluded measurement-window
/// deltas so steady-state events/sec can be reported without the
/// connection-setup transient.
pub struct ShardedDcRun {
    /// Goodput results over the measurement window.
    pub res: DcResult,
    /// Merged perf counters for the whole run (warm-up included).
    pub perf: SimPerf,
    /// Events fired during the measurement window only.
    pub window_events: u64,
    /// Wall-clock time spent simulating the measurement window only.
    pub window_wall: std::time::Duration,
    /// Deterministic digest of the final state (per-connection stats +
    /// per-shard perf), for jobs-invariance checks.
    pub digest: u64,
}

/// [`run_fattree`] on a [`ShardedSimulator`]: the same topology, workload
/// rng and path selection, but partitioned pod-by-pod over `num_shards`
/// shards advanced by `jobs` worker threads. The merged deterministic
/// history is independent of `jobs`.
#[allow(clippy::too_many_arguments)]
pub fn run_fattree_sharded(
    k: usize,
    tp: Tp,
    routing: Routing,
    seed: u64,
    warmup: SimTime,
    window: SimTime,
    num_shards: usize,
    jobs: usize,
) -> ShardedDcRun {
    let mut sim = ShardedSimulator::new(seed, num_shards);
    let ft = FatTree::build_sharded(&mut sim, k, dc_link());
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed);
    let pairs = host_pairs(tp, ft.host_count(), &mut rng);
    let conns: Vec<(usize, ConnId)> = pairs
        .iter()
        .map(|&(s, d)| {
            let conn = match routing {
                Routing::SinglePath => sim.add_connection(
                    ConnectionSpec::bulk(AlgorithmKind::Uncoupled)
                        .path(ft.ecmp_path(s, d, &mut rng)),
                ),
                Routing::Multipath(alg, n) => {
                    let mut spec = ConnectionSpec::bulk(alg);
                    for p in ft.random_paths(s, d, n, &mut rng) {
                        spec = spec.path(p);
                    }
                    sim.add_connection(spec)
                }
            };
            (s, conn)
        })
        .collect();
    sim.set_jobs(jobs);
    sim.run_until(warmup);
    sim.reset_link_stats();
    let perf_before = sim.perf();
    let before: Vec<u64> =
        conns.iter().map(|&(_, c)| sim.connection_stats(c).delivered_pkts()).collect();
    sim.run_until(warmup + window);
    let perf = sim.perf();
    let secs = window.as_secs_f64();
    let per_flow_bps: Vec<f64> = conns
        .iter()
        .zip(&before)
        .map(|(&(_, c), &b)| {
            let st = sim.connection_stats(c);
            (st.delivered_pkts() - b) as f64 * st.packet_size as f64 * 8.0 / secs
        })
        .collect();
    let mut per_host = vec![0.0; ft.host_count()];
    for (&(src, _), &bps) in conns.iter().zip(&per_flow_bps) {
        per_host[src] += bps;
    }
    let res = DcResult {
        per_host_bps: per_host,
        per_flow_bps,
        core_loss: ft.core_links().iter().map(|&l| sim.link_stats(l).loss_rate()).collect(),
        access_loss: ft.access_links().iter().map(|&l| sim.link_stats(l).loss_rate()).collect(),
    };
    ShardedDcRun {
        res,
        window_events: perf.events_fired - perf_before.events_fired,
        window_wall: perf.wall.saturating_sub(perf_before.wall),
        digest: sim.det_digest(),
        perf,
    }
}

/// Run one BCube experiment.
pub fn run_bcube(
    n: usize,
    levels_k: usize,
    tp: Tp,
    routing: Routing,
    seed: u64,
    warmup: SimTime,
    window: SimTime,
) -> DcResult {
    let mut sim = Simulator::new(seed);
    let bc = BCube::build(&mut sim, n, levels_k, dc_link());
    let mut rng = StdRng::seed_from_u64(seed ^ 0xbcbe);
    let hosts = bc.host_count();
    // TP2 in BCube: "the destinations are the host's neighbors in the
    // three levels".
    let pairs: Vec<(usize, usize)> = match tp {
        Tp::OneToMany => (0..hosts)
            .flat_map(|h| bc.level_neighbors(h).into_iter().map(move |d| (h, d)))
            .collect(),
        other => host_pairs(other, hosts, &mut rng),
    };
    let conns: Vec<(usize, ConnId)> = pairs
        .iter()
        .map(|&(s, d)| {
            let conn = match routing {
                Routing::SinglePath => sim.add_connection(
                    ConnectionSpec::bulk(AlgorithmKind::Uncoupled).path(bc.single_path(s, d)),
                ),
                Routing::Multipath(alg, _) => {
                    let mut spec = ConnectionSpec::bulk(alg);
                    for p in bc.path_set(s, d, &mut rng) {
                        spec = spec.path(p);
                    }
                    sim.add_connection(spec)
                }
            };
            (s, conn)
        })
        .collect();
    // All links in BCube are host↔switch; treat them all as "core" for the
    // loss distribution and also as access (they are NIC links).
    let all: Vec<usize> = (0..sim.link_count()).collect();
    finish(&mut sim, &conns, hosts, warmup, window, &all, &[])
}
