//! Machine-readable benchmark output (`BENCH_sim.json`).
//!
//! Performance claims in this repo are backed by numbers checked into
//! `BENCH_sim.json` at the workspace root. Each record is one JSON object
//! on its own line inside a JSON array; records carry a `"source"` key
//! (e.g. `"sim_micro/two_tcps"`) and re-running a bench replaces its own
//! records while leaving the others in place, so the file accumulates the
//! latest result from every source.
//!
//! JSON is emitted by hand (the workspace builds offline, with no serde);
//! the format is deliberately one-object-per-line so the merge can work
//! textually without a JSON parser.

use std::fmt::Write as _;
use std::path::PathBuf;

use mptcp_netsim::{ProbeLog, TraceWriter};

/// A JSON value in a [`Record`].
#[derive(Debug, Clone)]
pub enum Json {
    /// A float, serialized with enough precision to round-trip.
    Num(f64),
    /// An unsigned integer.
    Int(u64),
    /// A string.
    Str(String),
    /// A boolean.
    Bool(bool),
}

impl From<f64> for Json {
    fn from(v: f64) -> Self {
        Json::Num(v)
    }
}
impl From<u64> for Json {
    fn from(v: u64) -> Self {
        Json::Int(v)
    }
}
impl From<&str> for Json {
    fn from(v: &str) -> Self {
        Json::Str(v.to_string())
    }
}
impl From<String> for Json {
    fn from(v: String) -> Self {
        Json::Str(v)
    }
}
impl From<bool> for Json {
    fn from(v: bool) -> Self {
        Json::Bool(v)
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// One benchmark record: a `source` identity plus measured fields.
#[derive(Debug, Clone)]
pub struct Record {
    source: String,
    fields: Vec<(String, Json)>,
}

impl Record {
    /// Start a record for `source` (the merge key).
    pub fn new(source: impl Into<String>) -> Self {
        Record { source: source.into(), fields: Vec::new() }
    }

    /// Add a field (builder style).
    pub fn field(mut self, key: &str, value: impl Into<Json>) -> Self {
        self.fields.push((key.to_string(), value.into()));
        self
    }

    /// Serialize as a single JSON object line.
    pub fn to_json_line(&self) -> String {
        let mut out = format!("{{\"source\":\"{}\"", escape(&self.source));
        for (k, v) in &self.fields {
            let _ = match v {
                Json::Num(x) if x.is_finite() => write!(out, ",\"{}\":{}", escape(k), x),
                Json::Num(_) => write!(out, ",\"{}\":null", escape(k)),
                Json::Int(x) => write!(out, ",\"{}\":{}", escape(k), x),
                Json::Str(s) => write!(out, ",\"{}\":\"{}\"", escape(k), escape(s)),
                Json::Bool(b) => write!(out, ",\"{}\":{}", escape(k), b),
            };
        }
        out.push('}');
        out
    }
}

/// The number of logical cores on the machine running the bench, as seen
/// by the standard library (1 when the query fails). Benches stamp this
/// into their records as `host_cores` so `cargo xtask bench-check` can
/// tell a genuine per-core regression from a baseline that was simply
/// recorded on a machine with a different core count — per-core
/// comparisons are skipped (with a note) when the counts differ.
pub fn host_cores() -> u64 {
    std::thread::available_parallelism().map(|n| n.get() as u64).unwrap_or(1)
}

/// Where `BENCH_sim.json` lives: the workspace root.
pub fn bench_sim_path() -> PathBuf {
    PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sim.json"))
}

fn source_of_line(line: &str) -> Option<&str> {
    let rest = line.trim_start().strip_prefix("{\"source\":\"")?;
    Some(&rest[..rest.find('"')?])
}

/// Merge `records` into `BENCH_sim.json`: existing records whose source
/// starts with `source_prefix` are dropped, the new ones appended.
///
/// Uses a prefix so one bench target can own a family of sources (e.g.
/// `sim_micro/` covers `sim_micro/two_tcps` and `sim_micro/mptcp4`).
pub fn merge_bench_sim(source_prefix: &str, records: &[Record]) {
    let path = bench_sim_path();
    let existing = std::fs::read_to_string(&path).unwrap_or_default();
    let mut lines: Vec<String> = existing
        .lines()
        .filter(|l| {
            source_of_line(l).is_some_and(|s| !s.starts_with(source_prefix))
        })
        .map(|l| l.trim_end_matches(',').to_string())
        .collect();
    lines.extend(records.iter().map(Record::to_json_line));
    let mut out = String::from("[\n");
    out.push_str(&lines.join(",\n"));
    out.push_str("\n]\n");
    if let Err(e) = std::fs::write(&path, out) {
        eprintln!("warning: could not write {}: {e}", path.display());
    } else {
        println!("  wrote {} record(s) to {}", records.len(), path.display());
    }
}

/// Read one numeric field of one record back out of `BENCH_sim.json`
/// (textually, like the merge — no JSON parser in the offline workspace).
/// Returns `None` when the file, record or field is missing.
///
/// This is how benches compare a fresh run against the checked-in
/// baseline *before* overwriting it (see the probe-overhead guard in
/// `benches/sim_micro.rs`).
pub fn read_bench_field(source: &str, field: &str) -> Option<f64> {
    let text = std::fs::read_to_string(bench_sim_path()).ok()?;
    let line = text
        .lines()
        .find(|l| source_of_line(l) == Some(source))?;
    let key = format!("\"{}\":", escape(field));
    let rest = &line[line.find(&key)? + key.len()..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

/// Where exported probe traces live: `target/traces/` at the workspace
/// root (regenerated artifacts, not checked in).
pub fn trace_dir() -> PathBuf {
    PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../../target/traces"))
}

/// Export a probe log as JSONL to `target/traces/<name>.jsonl` and return
/// the path. The format is one object per line with a `"kind"` field of
/// `"subflow"`, `"link"` or `"transition"` — see
/// [`TraceWriter`] and the plotting recipe in `EXPERIMENTS.md`.
pub fn export_trace(name: &str, log: &ProbeLog) -> std::io::Result<PathBuf> {
    let dir = trace_dir();
    std::fs::create_dir_all(&dir)?;
    let path = dir.join(format!("{name}.jsonl"));
    let file = std::fs::File::create(&path)?;
    let mut out = TraceWriter::new(std::io::BufWriter::new(file)).write_log(log)?;
    std::io::Write::flush(&mut out)?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_serializes_to_one_json_object_line() {
        let r = Record::new("sim_micro/x")
            .field("events_per_sec", 1.5e6)
            .field("events", 1234u64)
            .field("backend", "wheel")
            .field("quick", false);
        let line = r.to_json_line();
        let want = concat!(
            "{\"source\":\"sim_micro/x\",\"events_per_sec\":1500000,",
            "\"events\":1234,\"backend\":\"wheel\",\"quick\":false}",
        );
        assert_eq!(line, want);
        assert!(!line.contains('\n'));
    }

    #[test]
    fn escaping_handles_quotes_and_controls() {
        let r = Record::new("a\"b\\c\nd");
        let line = r.to_json_line();
        assert!(line.contains("a\\\"b\\\\c\\nd"));
    }

    #[test]
    fn source_extraction() {
        let r = Record::new("tab_fattree/wheel").field("x", 1u64);
        assert_eq!(source_of_line(&r.to_json_line()), Some("tab_fattree/wheel"));
        assert_eq!(source_of_line("not json"), None);
    }

    #[test]
    fn host_cores_is_positive_and_stable() {
        let a = host_cores();
        assert!(a >= 1);
        assert_eq!(a, host_cores());
    }

    #[test]
    fn nan_serializes_as_null() {
        let r = Record::new("s").field("bad", f64::NAN);
        assert!(r.to_json_line().contains("\"bad\":null"));
    }

    #[test]
    fn read_bench_field_round_trips_through_the_real_file() {
        // BENCH_sim.json is checked in; every record has a numeric field.
        // Field extraction itself is pinned on a synthetic line.
        let line = Record::new("x/y").field("eps", 123.5).field("n", 7u64).to_json_line();
        let key = "\"eps\":";
        let rest = &line[line.find(key).unwrap() + key.len()..];
        let end = rest.find([',', '}']).unwrap();
        assert_eq!(rest[..end].parse::<f64>().unwrap(), 123.5);
        // Missing source/field answer None, not a panic.
        assert_eq!(read_bench_field("no/such/source", "eps"), None);
    }
}
