//! # mptcp-bench — the experiment harness
//!
//! Shared measurement and reporting utilities for the per-figure/per-table
//! bench targets (see `benches/`). Each bench target prints the same rows
//! or series the paper reports, side by side with the paper's numbers, and
//! `EXPERIMENTS.md` records a captured run.
//!
//! Durations: every experiment honors the `MPTCP_QUICK` environment
//! variable — when set, simulated durations shrink (useful for smoke
//! tests); the recorded results in `EXPERIMENTS.md` come from full runs.
//! `MPTCP_QUICK=<n>` picks the scale factor (default 8), and sweeps fan
//! out over threads via [`runner::run_parallel`] (`MPTCP_JOBS` pins the
//! worker count).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod datacenter;
pub mod oracle;
pub mod plot;
pub mod report;
pub mod runner;

use mptcp_netsim::{ConnId, SimTime, Simulator};

/// Whether quick mode is requested (shorter simulated durations).
pub fn quick_mode() -> bool {
    std::env::var_os("MPTCP_QUICK").is_some()
}

/// The quick-mode scale factor: `None` when `MPTCP_QUICK` is unset,
/// `Some(n)` when set to a number `n ≥ 1`, `Some(8)` when set to anything
/// else (`MPTCP_QUICK=1` gives full durations while still marking the run
/// as quick).
pub fn quick_factor() -> Option<u64> {
    let v = std::env::var_os("MPTCP_QUICK")?;
    Some(v.to_str().and_then(|s| s.trim().parse::<u64>().ok()).map_or(8, |n| n.max(1)))
}

/// Scale a duration down by the [`quick_factor`] in quick mode.
pub fn scaled(full: SimTime) -> SimTime {
    match quick_factor() {
        Some(f) => SimTime(full.as_nanos() / f),
        None => full,
    }
}

/// Run `sim` through a warm-up period, then a measurement window, and
/// return each connection's goodput **in bits/s** over the window only.
///
/// Link statistics are reset at the start of the window so
/// [`Simulator::link_stats`] afterwards also reflects the window.
pub fn measure_goodput_bps(
    sim: &mut Simulator,
    conns: &[ConnId],
    warmup: SimTime,
    window: SimTime,
) -> Vec<f64> {
    sim.run_until(sim.now() + warmup);
    sim.reset_link_stats();
    let before: Vec<u64> =
        conns.iter().map(|&c| sim.connection_stats(c).delivered_pkts()).collect();
    sim.run_until(sim.now() + window);
    let secs = window.as_secs_f64();
    conns
        .iter()
        .zip(before)
        .map(|(&c, b)| {
            let st = sim.connection_stats(c);
            (st.delivered_pkts() - b) as f64 * st.packet_size as f64 * 8.0 / secs
        })
        .collect()
}

/// Same as [`measure_goodput_bps`] but in packets/s.
pub fn measure_goodput_pps(
    sim: &mut Simulator,
    conns: &[ConnId],
    warmup: SimTime,
    window: SimTime,
) -> Vec<f64> {
    let bps = measure_goodput_bps(sim, conns, warmup, window);
    conns
        .iter()
        .zip(bps)
        .map(|(&c, b)| b / (sim.connection_stats(c).packet_size as f64 * 8.0))
        .collect()
}

/// A minimal fixed-width table printer for experiment output.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with column headers.
    pub fn new(headers: &[&str]) -> Self {
        Self { headers: headers.iter().map(|s| s.to_string()).collect(), rows: Vec::new() }
    }

    /// Append a row (stringified cells).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Print with aligned columns.
    pub fn print(&self) {
        let mut width: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                width[i] = width[i].max(c.len());
            }
        }
        let line = |cells: &[String]| {
            let joined: Vec<String> =
                cells.iter().enumerate().map(|(i, c)| format!("{:>w$}", c, w = width[i])).collect();
            println!("  {}", joined.join("  "));
        };
        line(&self.headers);
        let total: usize = width.iter().sum::<usize>() + 2 * width.len();
        println!("  {}", "-".repeat(total));
        for row in &self.rows {
            line(row);
        }
    }
}

/// Print a banner for an experiment.
pub fn banner(id: &str, what: &str) {
    println!();
    println!("=== {id} — {what} ===");
    println!();
}

/// Format bits/s as Mb/s with two decimals.
pub fn mbps(bps: f64) -> String {
    format!("{:.2}", bps / 1e6)
}

/// Format a plain float with one decimal.
pub fn f1(x: f64) -> String {
    format!("{x:.1}")
}

/// Format a plain float with two decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use mptcp_cc::AlgorithmKind;
    use mptcp_netsim::{ConnectionSpec, LinkSpec};

    #[test]
    fn measured_window_excludes_warmup() {
        let mut sim = Simulator::new(1);
        let l = sim.add_link(LinkSpec::mbps(10.0, SimTime::from_millis(10), 25));
        let c = sim.add_connection(ConnectionSpec::bulk(AlgorithmKind::Uncoupled).path(vec![l]));
        let bps =
            measure_goodput_bps(&mut sim, &[c], SimTime::from_secs(5), SimTime::from_secs(10));
        assert!(bps[0] > 9e6, "steady-state goodput after warmup: {}", bps[0]);
    }

    #[test]
    fn pps_and_bps_agree() {
        let mut sim = Simulator::new(1);
        let l = sim.add_link(LinkSpec::pkts_per_sec(500.0, SimTime::from_millis(50), 25));
        let c = sim.add_connection(ConnectionSpec::bulk(AlgorithmKind::Mptcp).path(vec![l]));
        let pps =
            measure_goodput_pps(&mut sim, &[c], SimTime::from_secs(5), SimTime::from_secs(10));
        assert!((400.0..=505.0).contains(&pps[0]), "≈500 pkt/s, got {}", pps[0]);
    }

    #[test]
    #[should_panic]
    fn table_rejects_ragged_rows() {
        Table::new(&["a", "b"]).row(vec!["1".into()]);
    }

    #[test]
    fn quick_factor_parses_the_env_var() {
        // One test covers all MPTCP_QUICK shapes so the env mutation never
        // races another test in this binary.
        std::env::remove_var("MPTCP_QUICK");
        assert_eq!(quick_factor(), None);
        assert_eq!(scaled(SimTime::from_secs(8)), SimTime::from_secs(8));
        std::env::set_var("MPTCP_QUICK", "1");
        assert_eq!(quick_factor(), Some(1));
        assert_eq!(scaled(SimTime::from_secs(8)), SimTime::from_secs(8));
        std::env::set_var("MPTCP_QUICK", "16");
        assert_eq!(quick_factor(), Some(16));
        assert_eq!(scaled(SimTime::from_secs(8)), SimTime::from_millis(500));
        std::env::set_var("MPTCP_QUICK", "yes");
        assert_eq!(quick_factor(), Some(8), "non-numeric keeps the default");
        std::env::set_var("MPTCP_QUICK", "0");
        assert_eq!(quick_factor(), Some(1), "factor is clamped to >= 1");
        std::env::remove_var("MPTCP_QUICK");
    }
}
