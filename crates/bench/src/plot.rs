//! Minimal ASCII plotting for the figure benches.
//!
//! The paper's figures are line/rank/band plots; these helpers render the
//! same series as terminal graphics so `cargo bench` output *looks like*
//! the figure being reproduced, not just a table.

/// Render one or more named series as an ASCII line chart. Each series is
/// sampled at the same x positions (whatever order the values come in).
pub struct Chart {
    width: usize,
    height: usize,
    series: Vec<(char, Vec<f64>)>,
    y_label: String,
}

impl Chart {
    /// A chart `width` columns wide and `height` rows tall.
    pub fn new(width: usize, height: usize, y_label: &str) -> Self {
        assert!(width >= 10 && height >= 3, "chart too small to be legible");
        Self { width, height, series: Vec::new(), y_label: y_label.to_string() }
    }

    /// Add a series drawn with marker `marker`.
    pub fn series(mut self, marker: char, values: &[f64]) -> Self {
        self.series.push((marker, values.to_vec()));
        self
    }

    /// Render to a string (rows top to bottom, y axis labelled at both
    /// extremes).
    pub fn render(&self) -> String {
        let max = self
            .series
            .iter()
            .flat_map(|(_, v)| v.iter().copied())
            .fold(f64::MIN, f64::max)
            .max(1e-12);
        let min = self
            .series
            .iter()
            .flat_map(|(_, v)| v.iter().copied())
            .fold(f64::MAX, f64::min)
            .min(0.0);
        let span = (max - min).max(1e-12);
        let mut grid = vec![vec![' '; self.width]; self.height];
        for (marker, values) in &self.series {
            if values.is_empty() {
                continue;
            }
            for (i, &v) in values.iter().enumerate() {
                let x = if values.len() == 1 {
                    0
                } else {
                    i * (self.width - 1) / (values.len() - 1)
                };
                let frac = (v - min) / span;
                let y = ((1.0 - frac) * (self.height - 1) as f64).round() as usize;
                let y = y.min(self.height - 1);
                grid[y][x] = *marker;
            }
        }
        let mut out = String::new();
        for (row_idx, row) in grid.iter().enumerate() {
            let label = if row_idx == 0 {
                format!("{max:9.1}")
            } else if row_idx == self.height - 1 {
                format!("{min:9.1}")
            } else {
                " ".repeat(9)
            };
            out.push_str(&format!("  {label} |"));
            out.extend(row.iter());
            out.push('\n');
        }
        out.push_str(&format!("  {:>9} +{}\n", self.y_label, "-".repeat(self.width)));
        out
    }

    /// Print the chart and a legend.
    pub fn print(&self, legend: &[(char, &str)]) {
        print!("{}", self.render());
        let items: Vec<String> =
            legend.iter().map(|(m, name)| format!("{m} = {name}")).collect();
        println!("  legend: {}", items.join(", "));
    }
}

/// Sort values descending — "rank of flow/link" as in Fig. 13's x axes.
///
/// Uses `total_cmp` (determinism policy, DESIGN.md §3.2d): a NaN slipping
/// into a measurement series must sort to a stable position, not panic an
/// `unwrap` or — worse — produce an ordering that varies with input order.
pub fn ranked(values: &[f64]) -> Vec<f64> {
    let mut v = values.to_vec();
    v.sort_by(|a, b| b.total_cmp(a));
    v
}

/// Deciles (0th..=100th percentile in steps of 10) of a sample, sorted
/// ascending with `total_cmp`. Empty input yields eleven zeros.
pub fn deciles(mut xs: Vec<f64>) -> Vec<f64> {
    xs.sort_by(|a, b| a.total_cmp(b));
    if xs.is_empty() {
        return vec![0.0; 11];
    }
    (0..=10).map(|d| xs[(d * (xs.len() - 1)) / 10]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chart_renders_expected_shape() {
        let chart = Chart::new(20, 5, "y").series('*', &[0.0, 5.0, 10.0]);
        let s = chart.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 6, "5 rows + axis");
        // The max value appears in the top row, the min in the bottom row.
        assert!(lines[0].contains('*'), "top row has the max point: {s}");
        assert!(lines[4].contains('*'), "bottom row has the min point: {s}");
    }

    #[test]
    fn multiple_series_coexist() {
        let chart = Chart::new(30, 8, "pkt/s")
            .series('a', &[1.0, 2.0, 3.0])
            .series('b', &[3.0, 2.0, 1.0]);
        let s = chart.render();
        assert!(s.contains('a') && s.contains('b'));
    }

    #[test]
    fn ranked_sorts_descending() {
        assert_eq!(ranked(&[1.0, 3.0, 2.0]), vec![3.0, 2.0, 1.0]);
    }

    #[test]
    fn ranked_is_total_on_nan_adjacent_inputs() {
        // NaN-adjacent: NaN itself, ±inf, ±0.0 — must not panic, and the
        // finite values must still come out in descending order with NaN
        // at a stable (total-order) position: +NaN sorts above +inf.
        let v = ranked(&[1.0, f64::NAN, -f64::INFINITY, 3.0, 0.0, -0.0, f64::INFINITY]);
        assert!(v[0].is_nan(), "positive NaN ranks first under total_cmp: {v:?}");
        assert_eq!(&v[1..], &[f64::INFINITY, 3.0, 1.0, 0.0, -0.0, -f64::INFINITY]);
        // total_cmp puts -0.0 after +0.0 in descending order.
        assert!(v[4].is_sign_positive() && v[5].is_sign_negative());
        // Stable across permutations of the same multiset.
        let w = ranked(&[f64::INFINITY, -0.0, 0.0, 3.0, -f64::INFINITY, f64::NAN, 1.0]);
        assert_eq!(v.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                   w.iter().map(|x| x.to_bits()).collect::<Vec<_>>());
    }

    #[test]
    fn deciles_cover_min_and_max() {
        let d = deciles((0..=100).map(f64::from).collect());
        assert_eq!(d.len(), 11);
        assert_eq!(d[0], 0.0);
        assert_eq!(d[5], 50.0);
        assert_eq!(d[10], 100.0);
        assert_eq!(deciles(Vec::new()), vec![0.0; 11]);
    }

    #[test]
    fn deciles_are_total_on_nan_adjacent_inputs() {
        // A NaN sample must not panic the sort; under total_cmp it lands
        // at the top decile (above +inf), leaving the rest well-ordered.
        let d = deciles(vec![2.0, f64::NAN, 1.0, f64::INFINITY, -1.0]);
        assert_eq!(d[0], -1.0);
        assert!(d[10].is_nan(), "{d:?}");
    }

    #[test]
    fn constant_series_does_not_panic() {
        let chart = Chart::new(12, 3, "x").series('c', &[5.0; 4]);
        let _ = chart.render();
    }

    #[test]
    #[should_panic]
    fn tiny_chart_rejected() {
        let _ = Chart::new(2, 1, "y");
    }
}
