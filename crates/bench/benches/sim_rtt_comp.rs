//! **§5 RTT-compensation simulation** — the wired two-link check.
//!
//! Fig. 14 topology with wired links: C1 = 250 pkt/s with RTT1 = 500 ms,
//! C2 = 500 pkt/s with RTT2 = 50 ms; single-path TCP flows S1 on link 1
//! and S2 on link 2, multipath flow M (MPTCP) on both.
//!
//! Paper outcome: S1 ≈ 130 pkt/s, S2 ≈ 315 pkt/s, M ≈ 305 pkt/s, with
//! drop probabilities p1 ≈ 0.22%, p2 ≈ 0.28% — M matches what a
//! single-path TCP would get on path 2 under the *current* loss rate
//! (§2.5's fairness goal), not the naive 250 pkt/s equal split.

use mptcp_bench::{banner, f1, measure_goodput_pps, scaled, Table};
use mptcp_cc::AlgorithmKind;
use mptcp_netsim::{ConnectionSpec, LinkSpec, SimTime, Simulator};

fn main() {
    banner("SIM_RTTCOMP", "§5 wired simulation: C1=250pkt/s/500ms, C2=500pkt/s/50ms");
    let mut sim = Simulator::new(61);
    // One-way propagation = RTT/2; buffers of one bandwidth-delay product.
    let l1 = sim.add_link(LinkSpec::pkts_per_sec(250.0, SimTime::from_millis(250), 125));
    let l2 = sim.add_link(LinkSpec::pkts_per_sec(500.0, SimTime::from_millis(25), 25));
    let s1 = sim.add_connection(ConnectionSpec::bulk(AlgorithmKind::Uncoupled).path(vec![l1]));
    let s2 = sim.add_connection(ConnectionSpec::bulk(AlgorithmKind::Uncoupled).path(vec![l2]));
    let m = sim
        .add_connection(ConnectionSpec::bulk(AlgorithmKind::Mptcp).path(vec![l1]).path(vec![l2]));
    let rates = measure_goodput_pps(
        &mut sim,
        &[s1, s2, m],
        scaled(SimTime::from_secs(100)),
        scaled(SimTime::from_secs(400)),
    );
    let mut t = Table::new(&["flow", "paper pkt/s", "measured pkt/s"]);
    t.row(vec!["S1 (link 1)".into(), "130".into(), f1(rates[0])]);
    t.row(vec!["S2 (link 2)".into(), "315".into(), f1(rates[1])]);
    t.row(vec!["M (multipath)".into(), "305".into(), f1(rates[2])]);
    t.print();
    println!(
        "\n  measured loss rates: p1 = {:.2}%  p2 = {:.2}%  (paper: 0.22% / 0.28%)",
        100.0 * sim.link_stats(l1).loss_rate(),
        100.0 * sim.link_stats(l2).loss_rate()
    );
    println!("\n  paper shape: M ≈ S2 ≫ 250 (M matches the best path under current loss,");
    println!("  instead of the naive equal split), and S1 is squeezed but not starved.");
}
