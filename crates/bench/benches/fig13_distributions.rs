//! **Fig. 13 (§4)** — distributions of per-flow throughput and per-link
//! loss rate in the 128-host FatTree under TP1.
//!
//! The paper plots rank distributions: MPTCP allocates throughput more
//! fairly than EWTCP (flatter throughput curve, no starved flows) and
//! balances congestion better (flatter loss-rate curve on core links).
//! We print deciles of both distributions for the three schemes.

use mptcp_bench::datacenter::{run_fattree, DcResult, Routing, Tp};
use mptcp_bench::plot::{deciles, ranked, Chart};
use mptcp_bench::runner::run_parallel;
use mptcp_bench::{banner, scaled, Table};
use mptcp_cc::fluid::fairness::jains_index;
use mptcp_cc::AlgorithmKind;
use mptcp_netsim::SimTime;

fn main() {
    banner("FIG13", "FatTree(k=8) TP1: flow-throughput and link-loss distributions");
    let warmup = scaled(SimTime::from_secs(2));
    let window = scaled(SimTime::from_secs(5));
    // Three independent runs fanned out over the parallel runner.
    let schemes: [(&str, Routing); 3] = [
        ("SinglePath", Routing::SinglePath),
        ("EWTCP", Routing::Multipath(AlgorithmKind::Ewtcp, 8)),
        ("MPTCP", Routing::Multipath(AlgorithmKind::Mptcp, 8)),
    ];
    let runs: Vec<(&str, DcResult)> = schemes
        .iter()
        .map(|&(name, _)| name)
        .zip(run_parallel(&schemes, |&(_, routing)| {
            run_fattree(8, Tp::Permutation, routing, 17, warmup, window)
        }))
        .collect();

    println!("  flow throughput deciles (Mb/s), worst flow → best flow:");
    let mut t = Table::new(&[
        "scheme", "p0", "p10", "p20", "p30", "p40", "p50", "p60", "p70", "p80", "p90", "p100",
        "Jain",
    ]);
    for (name, res) in &runs {
        let d = deciles(res.per_flow_bps.clone());
        let mut cells = vec![name.to_string()];
        cells.extend(d.iter().map(|x| format!("{:.0}", x / 1e6)));
        cells.push(format!("{:.3}", jains_index(&res.per_flow_bps)));
        t.row(cells);
    }
    t.print();

    println!("\n  core-link loss-rate deciles (%), least → most congested link:");
    let mut t = Table::new(&[
        "scheme", "p0", "p10", "p20", "p30", "p40", "p50", "p60", "p70", "p80", "p90", "p100",
    ]);
    for (name, res) in &runs {
        let d = deciles(res.core_loss.clone());
        let mut cells = vec![name.to_string()];
        cells.extend(d.iter().map(|x| format!("{:.2}", x * 100.0)));
        t.row(cells);
    }
    t.print();

    println!("\n  flow-throughput rank plot (Mb/s vs rank of flow, best → worst):");
    let mut chart = Chart::new(60, 12, "Mb/s");
    for ((_, res), marker) in runs.iter().zip(['s', 'e', 'm']) {
        let series: Vec<f64> =
            ranked(&res.per_flow_bps).iter().map(|x| x / 1e6).collect();
        chart = chart.series(marker, &series);
    }
    chart.print(&[('s', "SinglePath"), ('e', "EWTCP"), ('m', "MPTCP")]);

    println!("\n  core-link loss rank plot (% vs rank of link, most → least congested):");
    let mut chart = Chart::new(60, 10, "% loss");
    for ((_, res), marker) in runs.iter().zip(['s', 'e', 'm']) {
        let series: Vec<f64> = ranked(&res.core_loss).iter().map(|x| x * 100.0).collect();
        chart = chart.series(marker, &series);
    }
    chart.print(&[('s', "SinglePath"), ('e', "EWTCP"), ('m', "MPTCP")]);

    println!("\n  paper shape: MPTCP's throughput curve is flatter (fairer) than");
    println!("  EWTCP's and far above single-path; its loss curve shows fewer");
    println!("  heavily-congested core links.");
}
