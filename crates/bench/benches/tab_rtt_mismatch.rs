//! **§2.3 worked example** — RTT mismatch: WiFi (10 ms RTT, 4% loss) vs 3G
//! (100 ms RTT, 1% loss), fixed loss rates.
//!
//! Paper predictions (pkt/s): single-path WiFi 707, single-path 3G 141,
//! EWTCP (707+141)/2 = 424, COUPLED 141 (all traffic on the less congested
//! 3G path). MPTCP's goals require ≥ 707 — the best single path.
//!
//! Also prints §2.4's SEMICOUPLED weight-split example (1%/1%/5% loss →
//! 45%/45%/10%), and the same worked example for the post-paper
//! successors with loss-driven fluid models (OLIA, BALIA) — no paper
//! column for those, but the same ≥-best-single-path yardstick applies.

use mptcp_bench::{banner, f1, Table};
use mptcp_cc::fluid::{equilibrium, tcp_rate};
use mptcp_cc::{
    semicoupled_equilibrium, AlgorithmKind, Coupled, Ewtcp, Mptcp, MultipathCc, SemiCoupled,
};

const LOSS: [f64; 2] = [0.04, 0.01];
const RTT: [f64; 2] = [0.010, 0.100];

fn total_rate(cc: &dyn MultipathCc) -> f64 {
    let w = equilibrium(cc, &LOSS, &RTT);
    w.iter().zip(RTT.iter()).map(|(wr, rtt)| wr / rtt).sum()
}

fn main() {
    banner("TAB_RTT", "§2.3 RTT-mismatch example (fluid model, fixed loss rates)");
    let wifi = tcp_rate(LOSS[0], RTT[0]);
    let threeg = tcp_rate(LOSS[1], RTT[1]);
    let mut t = Table::new(&["flow", "paper pkt/s", "measured pkt/s"]);
    t.row(vec!["single-path WiFi".into(), "707".into(), f1(wifi)]);
    t.row(vec!["single-path 3G".into(), "141".into(), f1(threeg)]);
    t.row(vec!["EWTCP".into(), "424".into(), f1(total_rate(&Ewtcp::equal_split(2)))]);
    t.row(vec!["COUPLED".into(), "141".into(), f1(total_rate(&Coupled::new()))]);
    t.row(vec!["MPTCP".into(), "≥707".into(), f1(total_rate(&Mptcp::new()))]);
    // Post-paper successors, same worked example. OLIA's model is pinned
    // to the scenario's loss rates (ℓ_p = 1/p_p); BALIA's rule is its own
    // model. CUBIC/wVegas have no loss-driven fluid model and are absent.
    for kind in [AlgorithmKind::Olia, AlgorithmKind::Balia] {
        let model = kind.fluid_model(&LOSS).expect("loss-driven fluid model");
        t.row(vec![format!("{kind:?}"), "—".into(), f1(total_rate(model.as_ref()))]);
    }
    t.print();

    banner("SEMICOUPLED", "§2.4 weight-split example (losses 1%, 1%, 5%)");
    let w = semicoupled_equilibrium(1.0, &[0.01, 0.01, 0.05]);
    let total: f64 = w.iter().sum();
    let mut t = Table::new(&["path", "paper share", "measured share"]);
    for (i, paper) in [(0, "45%"), (1, "45%"), (2, "10%")] {
        t.row(vec![format!("path {i}"), paper.into(), format!("{:.1}%", 100.0 * w[i] / total)]);
    }
    t.print();

    // Cross-check the closed form against the generic solver.
    let solver = equilibrium(&SemiCoupled::new(), &[0.01, 0.01, 0.05], &[0.1, 0.1, 0.1]);
    let solver_total: f64 = solver.iter().sum();
    println!(
        "\n  (generic-solver shares: {:.1}% / {:.1}% / {:.1}%)",
        100.0 * solver[0] / solver_total,
        100.0 * solver[1] / solver_total,
        100.0 * solver[2] / solver_total
    );
}
