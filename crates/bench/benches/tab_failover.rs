//! **Path-management failover** (§5 robustness) — WiFi primary with a 3G
//! backup subflow through a 15-second WiFi blackout.
//!
//! The backup subflow is negotiated up front (MP_JOIN `B` bit) and kept
//! warm but carries no data while WiFi is healthy. When the blackout
//! strikes, the primary's retransmission timers back it off to
//! potentially-failed, the failover state machine engages the backup, and
//! the connection retains 3G-level goodput instead of stalling; when WiFi
//! returns, the backup stands down. A single-path TCP on WiFi runs the
//! same gauntlet as the control: it simply goes dark for the blackout.
//!
//! Recorded in `BENCH_sim.json` under `tab_failover/*`: per-phase goodput
//! (`*_bits_per_sec`, gated by `cargo xtask bench-check`), the measured
//! failover latency, the 2×RTO bound it must stay within, and the goodput
//! retention through the blackout.

use mptcp_bench::report::{merge_bench_sim, Record};
use mptcp_bench::{banner, f2, mbps, quick_mode, scaled, Table};
use mptcp_cc::AlgorithmKind;
use mptcp_netsim::{ConnectionStats, FaultPlan, SimTime, Simulator};
use mptcp_topology::{AccessLink, WirelessClient};

struct PhaseGoodput {
    healthy_bps: f64,
    blackout_bps: f64,
    recovered_bps: f64,
    stats: ConnectionStats,
    rto_before_s: f64,
}

/// Run one flow through healthy → blackout → recovered phases and return
/// its per-phase goodput. `backup` picks the MPTCP-with-3G-backup flow;
/// otherwise a single-path TCP on WiFi runs as the control.
fn run_gauntlet(backup: bool, healthy: SimTime, blackout: SimTime, recovery: SimTime) -> PhaseGoodput {
    let mut sim = Simulator::new(171);
    let w = WirelessClient::build(&mut sim, AccessLink::wifi(), AccessLink::three_g());
    let conn = if backup {
        w.add_multipath_backup(&mut sim, AlgorithmKind::Mptcp, SimTime::ZERO)
    } else {
        w.add_single_path_1(&mut sim, SimTime::ZERO)
    };
    sim.install_fault_plan(&FaultPlan::new().outage(w.link1, healthy, healthy + blackout));

    let delivered = |sim: &Simulator| {
        let st = sim.connection_stats(conn);
        st.data_delivered as f64 * st.packet_size as f64 * 8.0
    };
    let bps = |bits: f64, window: SimTime| bits / window.as_secs_f64();

    sim.run_until(healthy);
    let at_blackout = delivered(&sim);
    let rto_before_s = sim.connection_stats(conn).subflows[0].rto;
    sim.run_until(healthy + blackout);
    let at_restore = delivered(&sim);
    sim.run_until(healthy + blackout + recovery);
    let at_end = delivered(&sim);
    PhaseGoodput {
        healthy_bps: bps(at_blackout, healthy),
        blackout_bps: bps(at_restore - at_blackout, blackout),
        recovered_bps: bps(at_end - at_restore, recovery),
        stats: sim.connection_stats(conn),
        rto_before_s,
    }
}

fn main() {
    banner("TAB_FAILOVER", "WiFi primary + 3G backup through a 15 s WiFi blackout");
    let healthy = scaled(SimTime::from_secs(30));
    let blackout = scaled(SimTime::from_secs(15));
    let recovery = scaled(SimTime::from_secs(30));

    let m = run_gauntlet(true, healthy, blackout, recovery);
    let tcp = run_gauntlet(false, healthy, blackout, recovery);

    let mut t = Table::new(&["flow", "healthy Mb/s", "blackout Mb/s", "recovered Mb/s"]);
    t.row(vec![
        "MPTCP + 3G backup".into(),
        mbps(m.healthy_bps),
        mbps(m.blackout_bps),
        mbps(m.recovered_bps),
    ]);
    t.row(vec![
        "TCP WiFi only".into(),
        mbps(tcp.healthy_bps),
        mbps(tcp.blackout_bps),
        mbps(tcp.recovered_bps),
    ]);
    t.print();

    let latency_s =
        m.stats.failover_latency.map(|l| l.as_secs_f64()).unwrap_or(f64::NAN);
    // The failover clock runs from the primary's first unanswered RTO to
    // the potentially-failed threshold engaging the backup: one backed-off
    // interval, i.e. at most twice the pre-blackout RTO.
    let rto_bound_s = 2.0 * m.rto_before_s;
    let within_two_rto = latency_s <= rto_bound_s;
    let retention = m.blackout_bps / m.healthy_bps;
    println!();
    println!(
        "  backup activations: {} (engaged {}, stood down {})",
        m.stats.backup_activations,
        if m.stats.backup_activations > 0 { "during the blackout" } else { "never" },
        if m.stats.backup_active { "NOT yet" } else { "after restore" },
    );
    println!(
        "  failover latency: {} s (bound 2 x RTO = {} s) -> {}",
        f2(latency_s),
        f2(rto_bound_s),
        if within_two_rto { "within bound" } else { "EXCEEDED" },
    );
    println!(
        "  goodput retention through blackout: {} of healthy (TCP control: {})",
        f2(retention),
        f2(tcp.blackout_bps / tcp.healthy_bps),
    );
    println!("\n  paper shape: the backup carries nothing while WiFi is healthy, picks up");
    println!("  the connection within two RTOs of the blackout, and stands down when the");
    println!("  primary returns; single-path TCP goes dark for the whole outage.");

    merge_bench_sim(
        "tab_failover/",
        &[
            Record::new("tab_failover/mptcp_backup")
                .field("healthy_bits_per_sec", m.healthy_bps)
                .field("blackout_bits_per_sec", m.blackout_bps)
                .field("recovered_bits_per_sec", m.recovered_bps)
                .field("failover_latency_s", latency_s)
                .field("rto_bound_s", rto_bound_s)
                .field("within_two_rto", within_two_rto)
                .field("goodput_retention", retention)
                .field("backup_activations", m.stats.backup_activations)
                .field("quick", quick_mode()),
            Record::new("tab_failover/tcp_wifi_control")
                .field("healthy_bits_per_sec", tcp.healthy_bps)
                .field("blackout_bits_per_sec", tcp.blackout_bps)
                .field("recovered_bits_per_sec", tcp.recovered_bps)
                .field("quick", quick_mode()),
        ],
    );
}
