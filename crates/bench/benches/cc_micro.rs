//! Criterion micro-benchmarks for the congestion-control hot path.
//!
//! The eq. (1) increase runs on every ACK in a live stack, so its cost
//! matters. The appendix's linear search should beat the exhaustive
//! subset enumeration decisively as the path count grows.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use mptcp_cc::{
    lia_increase_exhaustive, lia_increase_linear, Coupled, Ewtcp, Mptcp, MultipathCc,
    SemiCoupled, SubflowSnapshot, UncoupledReno,
};

fn subflows(n: usize) -> Vec<SubflowSnapshot> {
    (0..n)
        .map(|i| SubflowSnapshot::new(4.0 + (i as f64) * 7.3, 0.01 + (i as f64) * 0.037))
        .collect()
}

fn bench_lia_linear_vs_exhaustive(c: &mut Criterion) {
    let mut g = c.benchmark_group("lia_increase");
    for &n in &[2usize, 4, 8, 12, 16] {
        let subs = subflows(n);
        g.bench_with_input(BenchmarkId::new("linear", n), &subs, |b, subs| {
            b.iter(|| lia_increase_linear(black_box(0), black_box(subs)))
        });
        if n <= 12 {
            g.bench_with_input(BenchmarkId::new("exhaustive", n), &subs, |b, subs| {
                b.iter(|| lia_increase_exhaustive(black_box(0), black_box(subs)))
            });
        }
    }
    g.finish();
}

fn bench_all_algorithms(c: &mut Criterion) {
    let subs = subflows(4);
    let ccs: Vec<Box<dyn MultipathCc>> = vec![
        Box::new(UncoupledReno::new()),
        Box::new(Ewtcp::equal_split(4)),
        Box::new(Coupled::new()),
        Box::new(SemiCoupled::new()),
        Box::new(Mptcp::new()),
    ];
    let mut g = c.benchmark_group("increase_per_ack_4paths");
    for cc in &ccs {
        g.bench_function(cc.name(), |b| {
            b.iter(|| cc.increase_per_ack(black_box(1), black_box(&subs)))
        });
    }
    g.finish();
}

fn bench_fluid_equilibrium(c: &mut Criterion) {
    let loss = [0.04, 0.01];
    let rtt = [0.010, 0.100];
    c.bench_function("fluid_equilibrium_mptcp_2paths", |b| {
        b.iter(|| mptcp_cc::fluid::equilibrium(&Mptcp::new(), black_box(&loss), black_box(&rtt)))
    });
}

criterion_group!(
    benches,
    bench_lia_linear_vs_exhaustive,
    bench_all_algorithms,
    bench_fluid_equilibrium
);
criterion_main!(benches);
