//! Criterion micro-benchmarks for the congestion-control hot path.
//!
//! The eq. (1) increase runs on every ACK in a live stack, so its cost
//! matters. The appendix's linear search should beat the exhaustive
//! subset enumeration decisively as the path count grows.
//!
//! Besides the criterion groups, the bench times one ACK through the
//! [`CcDriver`] for MPTCP and every post-paper controller
//! ([`AlgorithmKind::zoo`]) and records `acks_per_sec` rows in
//! `BENCH_sim.json` under `cc_micro/` — throughput fields the
//! `cargo xtask bench-check` gate compares, so a controller whose per-ACK
//! cost regresses is caught like any simulator slowdown. Under
//! `MPTCP_QUICK` only these rows run (criterion is skipped).

use criterion::{black_box, criterion_group, BenchmarkId, Criterion};
use mptcp_bench::report::{merge_bench_sim, Record};
use mptcp_bench::{quick_factor, quick_mode};
use mptcp_cc::{
    lia_increase_exhaustive, lia_increase_linear, AlgorithmKind, CcDriver, Coupled, Ewtcp,
    Mptcp, MultipathCc, SemiCoupled, SubflowSnapshot, UncoupledReno,
};

fn subflows(n: usize) -> Vec<SubflowSnapshot> {
    (0..n)
        .map(|i| SubflowSnapshot::new(4.0 + (i as f64) * 7.3, 0.01 + (i as f64) * 0.037))
        .collect()
}

fn bench_lia_linear_vs_exhaustive(c: &mut Criterion) {
    let mut g = c.benchmark_group("lia_increase");
    for &n in &[2usize, 4, 8, 12, 16] {
        let subs = subflows(n);
        g.bench_with_input(BenchmarkId::new("linear", n), &subs, |b, subs| {
            b.iter(|| lia_increase_linear(black_box(0), black_box(subs)))
        });
        if n <= 12 {
            g.bench_with_input(BenchmarkId::new("exhaustive", n), &subs, |b, subs| {
                b.iter(|| lia_increase_exhaustive(black_box(0), black_box(subs)))
            });
        }
    }
    g.finish();
}

fn bench_all_algorithms(c: &mut Criterion) {
    let subs = subflows(4);
    let ccs: Vec<Box<dyn MultipathCc>> = vec![
        Box::new(UncoupledReno::new()),
        Box::new(Ewtcp::equal_split(4)),
        Box::new(Coupled::new()),
        Box::new(SemiCoupled::new()),
        Box::new(Mptcp::new()),
    ];
    let mut g = c.benchmark_group("increase_per_ack_4paths");
    for cc in &ccs {
        g.bench_function(cc.name(), |b| {
            b.iter(|| cc.increase_per_ack(black_box(1), black_box(&subs)))
        });
    }
    g.finish();
}

fn bench_fluid_equilibrium(c: &mut Criterion) {
    let loss = [0.04, 0.01];
    let rtt = [0.010, 0.100];
    c.bench_function("fluid_equilibrium_mptcp_2paths", |b| {
        b.iter(|| mptcp_cc::fluid::equilibrium(&Mptcp::new(), black_box(&loss), black_box(&rtt)))
    });
}

/// Time `iters` ACKs through the driver in congestion avoidance and
/// return the achieved rate. Pure kinds exercise `increase_per_ack`
/// directly; stateful kinds pay their full bookkeeping (CUBIC's epoch
/// arithmetic, OLIA's counters, wVegas's base-RTT filter) per call, which
/// is exactly the per-ACK cost a live sender pays.
fn acks_per_sec(kind: AlgorithmKind, iters: u64) -> f64 {
    let subs = subflows(4);
    let mut drv = kind.build_cc(4);
    let mut acc = 0.0_f64;
    let start = mptcp_netsim::wall_clock();
    match &mut drv {
        CcDriver::Pure(cc) => {
            for i in 0..iters {
                acc += cc.increase_per_ack((i % 4) as usize, black_box(&subs));
            }
        }
        CcDriver::Stateful(cc) => {
            let mut now = 0.0_f64;
            for i in 0..iters {
                now += 1e-4;
                acc += cc.on_ack((i % 4) as usize, black_box(&subs), now, false).grow;
            }
        }
    }
    let dt = start.elapsed().as_secs_f64();
    black_box(acc);
    iters as f64 / dt
}

fn record_per_ack_costs() {
    let iters = 2_000_000 / quick_factor().unwrap_or(1).max(1);
    let mut records = Vec::new();
    println!("per-ACK driver cost ({iters} ACKs each):");
    for kind in std::iter::once(AlgorithmKind::Mptcp).chain(AlgorithmKind::zoo()) {
        let rate = acks_per_sec(kind, iters);
        println!("  {kind:?}: {:.1} M acks/s", rate / 1e6);
        records.push(
            Record::new(format!("cc_micro/{kind:?}_per_ack"))
                .field("iters", iters as f64)
                .field("acks_per_sec", rate)
                .field("quick", quick_mode()),
        );
    }
    merge_bench_sim("cc_micro/", &records);
}

criterion_group!(
    benches,
    bench_lia_linear_vs_exhaustive,
    bench_all_algorithms,
    bench_fluid_equilibrium
);

fn main() {
    if !quick_mode() {
        benches();
    }
    record_per_ack_costs();
}
