//! **Fig. 2 + Fig. 3 (§2.2)** — choosing efficient paths and balancing
//! congestion, in the fluid model.
//!
//! Fig. 2: three 12 Mb/s links in a triangle; each of three flows has a
//! one-hop path and a two-hop path. Paper: an even split gets 8 Mb/s per
//! flow, EWTCP ≈ 8.5 Mb/s, the optimal (one-hop only, COUPLED's choice)
//! gets 12 Mb/s.
//!
//! Fig. 3: three flows over links of unequal capacity. Paper: under EWTCP
//! flows get (11, 11, 8) Mb/s with unbalanced loss rates; under COUPLED
//! all flows get 10 Mb/s and all links have equal loss rate.

use mptcp_bench::{banner, f2, Table};
use mptcp_cc::fluid::fairness::jains_index;
use mptcp_cc::fluid::network::{FluidNetwork, FluidSubflow};
use mptcp_cc::AlgorithmKind;

/// Build the Fig. 2 triangle: flow i = one-hop over link i, two-hop over
/// links (i+1, i+2). Capacities in pkt/s with 1000 pkt/s ≈ 12 Mb/s.
fn fig2(alg: AlgorithmKind) -> FluidNetwork {
    let mut net = FluidNetwork::new();
    let l: Vec<usize> = (0..3).map(|_| net.add_link(1000.0)).collect();
    for i in 0..3 {
        net.add_flow(
            alg,
            vec![
                FluidSubflow { links: vec![l[i]], rtt: 0.1 },
                FluidSubflow { links: vec![l[(i + 1) % 3], l[(i + 2) % 3]], rtt: 0.1 },
            ],
        );
    }
    net
}

/// Build the Fig. 3 ring: three flows, each with two one-hop subflows over
/// adjacent links; capacities sum to 30 (→ 10 per flow when balanced).
fn fig3(alg: AlgorithmKind) -> FluidNetwork {
    let mut net = FluidNetwork::new();
    let caps = [500.0, 1200.0, 1300.0];
    let l: Vec<usize> = caps.iter().map(|&c| net.add_link(c)).collect();
    for i in 0..3 {
        net.add_flow(
            alg,
            vec![
                FluidSubflow { links: vec![l[i]], rtt: 0.1 },
                FluidSubflow { links: vec![l[(i + 1) % 3]], rtt: 0.1 },
            ],
        );
    }
    net
}

fn main() {
    banner("FIG2", "efficient path choice in the §2.2 triangle (fluid model)");
    let mut t = Table::new(&["algorithm", "per-flow Mb/s (paper)", "per-flow Mb/s (measured)"]);
    // 1000 pkt/s of 1500 B packets = 12 Mb/s; report in Mb/s equivalents.
    let to_mbps = 12.0 / 1000.0;
    for (alg, paper) in [
        (AlgorithmKind::Ewtcp, "8.5"),
        (AlgorithmKind::Coupled, "12"),
        (AlgorithmKind::Mptcp, "(between)"),
    ] {
        let sol = fig2(alg).solve();
        let mean: f64 = (0..3).map(|f| sol.flow_rate(f)).sum::<f64>() / 3.0;
        t.row(vec![format!("{alg:?}"), paper.into(), f2(mean * to_mbps)]);
    }
    t.print();

    banner("FIG3", "congestion balancing in the §2.2 ring (fluid model)");
    let mut t = Table::new(&[
        "algorithm",
        "flow rates Mb/s",
        "Jain",
        "max/min link loss",
        "paper",
    ]);
    for (alg, paper) in [
        (AlgorithmKind::Ewtcp, "unequal rates & losses"),
        (AlgorithmKind::Coupled, "all 10 Mb/s, equal loss"),
        (AlgorithmKind::Mptcp, "(between)"),
    ] {
        let sol = fig3(alg).solve();
        let rates: Vec<f64> = (0..3).map(|f| sol.flow_rate(f) * to_mbps).collect();
        let jain = jains_index(&rates);
        let max_p = sol.link_loss.iter().cloned().fold(f64::MIN, f64::max);
        let min_p = sol.link_loss.iter().cloned().fold(f64::MAX, f64::min);
        t.row(vec![
            format!("{alg:?}"),
            format!("{:.1}/{:.1}/{:.1}", rates[0], rates[1], rates[2]),
            f2(jain),
            f2(max_p / min_p),
            paper.into(),
        ]);
    }
    t.print();
}
