//! **Flow churn** — allocation-free open/close of short flows at scale.
//!
//! The struct-of-arrays flow arena exists so a simulator that opens and
//! retires flows mid-run stays allocation-free in steady state: a retiring
//! flow's hot subflow window, scoreboard rings and scratch vectors are
//! recycled into the next admission instead of round-tripping through the
//! allocator. This bench is the payoff measurement, on a FatTree k = 16
//! (1024 hosts, 8 pod-sharded shards) under the
//! [`ChurnSchedule`](mptcp_workload::ChurnSchedule) stress shape:
//!
//! 1. **Burst**: 110,000 short 2-subflow MPTCP flows arrive inside a
//!    100 ms window — shorter than any flow's retirement grace, so every
//!    burst flow is *resident at once* and the arena's high-water mark
//!    proves ≥ 100k concurrent flows (the quick-mode run scales the count
//!    down and skips that assertion).
//! 2. **Trickle**: long after the burst has drained and retired, a steady
//!    trickle of late flows arrives. Every one must re-tenant a recycled
//!    window (`arena_hot_reuses ≥ trickle flows`) and the merged
//!    `hot_allocs` counter must not move at all across the trickle —
//!    steady-state churn performs **zero** hot-path allocations.
//!
//! `BENCH_sim.json` gets one `flow_churn/k16` record with the end-to-end
//! events/sec, the flow-churn rate (admissions handled per wall-second)
//! and peak RSS, all gated by `cargo xtask bench-check`.

use mptcp_bench::datacenter::dc_link;
use mptcp_bench::report::{host_cores, merge_bench_sim, Record};
use mptcp_bench::{banner, f1, f2, quick_factor, quick_mode, Table};
use mptcp_cc::AlgorithmKind;
use mptcp_netsim::{ConnectionSpec, ShardedSimulator, SimTime};
use mptcp_topology::FatTree;
use mptcp_workload::ChurnSchedule;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The process's peak resident set size in bytes (`VmHWM`); `None` off
/// Linux.
fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb * 1024)
}

fn main() {
    banner("FLOW_CHURN", "100k+ concurrent short flows: arena recycling keeps churn allocation-free");
    let quick = quick_mode();
    let f = quick_factor().unwrap_or(1) as usize;

    let sched = ChurnSchedule {
        burst_flows: 110_000 / f,
        burst_window: SimTime::from_millis(100),
        trickle_flows: 2_000 / f.min(4),
        trickle_start: SimTime::from_secs(5),
        trickle_spacing: SimTime::from_micros(100),
        min_pkts: 4,
        max_pkts: 20,
    };

    let seed = 11u64;
    let mut sim = ShardedSimulator::new(seed, 8);
    sim.set_flow_lifecycle(true);
    let ft = FatTree::build_sharded(&mut sim, 16, dc_link());
    let hosts = ft.host_count();
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed);

    // Deterministic src/dst spread: a coprime stride walks every host;
    // destinations land in other pods so paths cross shards.
    let arrivals = sched.arrivals();
    for (i, a) in arrivals.iter().enumerate() {
        let src = (i * 9973) % hosts;
        let dst = (src + hosts / 2 + (i * 31) % (hosts / 2 - 1) + 1) % hosts;
        let mut spec =
            ConnectionSpec::sized(AlgorithmKind::Mptcp, a.size_pkts).start(a.start);
        for p in ft.random_paths(src, dst, 2, &mut rng) {
            spec = spec.path(p);
        }
        sim.add_connection(spec);
    }
    sim.set_jobs(8);

    // Phase 1: the burst arrives, drains and retires. By `trickle_start`
    // the arena holds a free list the size of the whole burst. Stop one
    // tick short: the first trickle flow starts *at* `trickle_start` and
    // `run_until` is inclusive, so its reuse must not leak into the
    // baseline counters.
    let wall0 = mptcp_netsim::wall_clock();
    sim.run_until(SimTime(sched.trickle_start.as_nanos() - 1));
    let peak_slots = sim.arena_hot_slots();
    let peak_flows = peak_slots / 2; // two subflows per flow
    let allocs_before = sim.perf().hot_allocs;
    let reuses_before = sim.arena_hot_reuses();

    // Phase 2: the trickle re-tenants retired windows. Half a second of
    // settle margin after the last arrival lets stragglers finish (flow
    // service time plus the ~150 ms retirement grace).
    let trickle_span = SimTime(sched.trickle_spacing.as_nanos() * sched.trickle_flows as u64);
    sim.run_until(sched.trickle_start + trickle_span + SimTime::from_millis(500));
    let wall = wall0.elapsed();
    let perf = sim.perf();
    assert!(perf.is_consistent(), "perf counters out of balance: {perf:?}");

    let trickle_allocs = perf.hot_allocs - allocs_before;
    let trickle_reuses = sim.arena_hot_reuses() - reuses_before;
    let flows = arrivals.len();
    assert_eq!(
        trickle_allocs, 0,
        "steady-state churn must be allocation-free: {trickle_allocs} hot allocs \
         across {} trickle flows",
        sched.trickle_flows
    );
    assert!(
        trickle_reuses >= sched.trickle_flows as u64,
        "every trickle flow must recycle a retired window: {trickle_reuses} reuses \
         for {} flows",
        sched.trickle_flows
    );
    if !quick {
        assert!(
            peak_flows >= 100_000,
            "full mode must demonstrate >= 100k concurrent flows, saw {peak_flows}"
        );
    }

    let eps = perf.events_fired as f64 / wall.as_secs_f64();
    let churn_per_sec = flows as f64 / wall.as_secs_f64();
    let rss = peak_rss_bytes();
    let mut t = Table::new(&[
        "flows", "peak conc", "events", "Mev/s", "churn/s", "trickle allocs", "reuses", "peak RSS MiB",
    ]);
    t.row(vec![
        flows.to_string(),
        peak_flows.to_string(),
        perf.events_fired.to_string(),
        f2(eps / 1e6),
        f1(churn_per_sec),
        trickle_allocs.to_string(),
        trickle_reuses.to_string(),
        rss.map_or("-".into(), |b| f1(b as f64 / (1 << 20) as f64)),
    ]);
    t.print();

    merge_bench_sim(
        "flow_churn/",
        &[Record::new("flow_churn/k16")
            .field("flows", flows as u64)
            .field("peak_concurrent_flows", peak_flows as u64)
            .field("jobs", 8u64)
            .field("events", perf.events_fired)
            .field("events_per_sec", eps)
            // Divided by cores actually occupied, not worker threads — see
            // the same convention in `scale_sweep`.
            .field("events_per_sec_per_core", eps / 8.0f64.min(host_cores() as f64))
            .field("flow_churn_per_sec", churn_per_sec)
            .field("trickle_hot_allocs", trickle_allocs)
            .field("arena_hot_reuses", trickle_reuses)
            .field("peak_rss_bytes", rss.unwrap_or(0))
            .field("host_cores", host_cores())
            .field("quick", quick)],
    );
}
