//! **Fig. 17 (§5)** — the mobile walk: multipath and regular TCP over
//! varying 3G and WiFi connectivity.
//!
//! One regular TCP on WiFi, one on 3G, and one MPTCP flow over both, while
//! the subject walks around the building for ~12 minutes (the scripted
//! [`MobilityTrace::paper_walk`]): WiFi good for 9 minutes, lost on the
//! stairwell while 3G improves, then a new WiFi basestation.
//!
//! Output: per-30-second goodput of each flow and of each MPTCP subflow —
//! the figure's bands. Paper shape: MPTCP rides WiFi while it lasts,
//! shifts seamlessly to 3G on the stairwell, and grabs the new basestation
//! quickly, never starving the single-path competitors.

use mptcp_bench::{banner, mbps, Table};
use mptcp_cc::AlgorithmKind;
use mptcp_netsim::{SimTime, Simulator};
use mptcp_topology::{AccessLink, WirelessClient};
use mptcp_workload::MobilityTrace;

fn main() {
    banner("FIG17", "mobile walk: MPTCP + one TCP per radio over 12 minutes");
    let mut sim = Simulator::new(81);
    let w = WirelessClient::build(&mut sim, AccessLink::wifi(), AccessLink::three_g());
    let tcp_wifi = w.add_single_path_1(&mut sim, SimTime::ZERO);
    let tcp_3g = w.add_single_path_2(&mut sim, SimTime::ZERO);
    let m = w.add_multipath(&mut sim, AlgorithmKind::Mptcp, SimTime::ZERO);
    // The walk runs as a declarative fault plan through the simulator's own
    // event queue, so the link changes land at their exact trace times no
    // matter how coarsely this loop steps.
    let plan = MobilityTrace::paper_walk(w.link1, w.link2).to_fault_plan();
    sim.install_fault_plan(&plan);

    let step = SimTime::from_secs(30);
    let total = SimTime::from_secs(12 * 60);
    let mut t = Table::new(&[
        "t (min)",
        "TCP-WiFi Mb/s",
        "TCP-3G Mb/s",
        "MPTCP Mb/s",
        "MPTCP wifi-part",
        "MPTCP 3g-part",
    ]);
    let snap = |sim: &Simulator| {
        let sm = sim.connection_stats(m);
        (
            sim.connection_stats(tcp_wifi).delivered_pkts(),
            sim.connection_stats(tcp_3g).delivered_pkts(),
            sm.subflows[0].delivered_pkts,
            sm.subflows[1].delivered_pkts,
        )
    };
    let mut prev = snap(&sim);
    let mut now = SimTime::ZERO;
    while now < total {
        now += step;
        sim.run_until(now);
        let cur = snap(&sim);
        let secs = step.as_secs_f64();
        let to_bps = |d: u64| d as f64 * 1500.0 * 8.0 / secs;
        t.row(vec![
            format!("{:.1}", now.as_secs_f64() / 60.0),
            mbps(to_bps(cur.0 - prev.0)),
            mbps(to_bps(cur.1 - prev.1)),
            mbps(to_bps((cur.2 - prev.2) + (cur.3 - prev.3))),
            mbps(to_bps(cur.2 - prev.2)),
            mbps(to_bps(cur.3 - prev.3)),
        ]);
        prev = cur;
    }
    t.print();
    println!("\n  paper shape: minutes 0–9 MPTCP mostly rides WiFi (3G is congested but");
    println!("  fairness caps its share there); minutes 9–10.5 WiFi is gone and MPTCP's");
    println!("  3G subflow carries the connection; after 10.5 the new basestation is");
    println!("  picked up quickly. The single-path flows are never starved.");

    banner("FIG17b", "the same walk with explicit path-management signaling");
    // Second mode: the mobile host *signals* the handover — REMOVE_ADDR as
    // WiFi coverage is lost on the stairwell, ADD_ADDR when the new
    // basestation is acquired — instead of leaving the scheduler to
    // discover the outage by RTO probing on a dead subflow. The physical
    // link timeline is identical (pinned by the differential test in
    // `mptcp-workload`); only who-learns-what-when changes.
    let run_walk = |signaled: bool| {
        let mut sim = Simulator::new(81);
        let w = WirelessClient::build(&mut sim, AccessLink::wifi(), AccessLink::three_g());
        let conn = w.add_multipath(&mut sim, AlgorithmKind::Mptcp, SimTime::ZERO);
        let trace = MobilityTrace::paper_walk(w.link1, w.link2);
        let plan = if signaled {
            trace.to_signal_plan(conn, &[(w.link1, 0), (w.link2, 1)])
        } else {
            trace.to_fault_plan()
        };
        sim.install_fault_plan(&plan);
        // Stairwell goodput: minutes 9–10.5, the window where the modes
        // can differ (discovery by timeout vs told up front).
        sim.run_until(SimTime::from_secs(9 * 60));
        let before = sim.connection_stats(conn).data_delivered;
        sim.run_until(SimTime::from_secs_f64(10.5 * 60.0));
        let stair = sim.connection_stats(conn).data_delivered - before;
        sim.run_until(total);
        (sim.connection_stats(conn), stair as f64 * 1500.0 * 8.0 / 90.0)
    };
    let (faulted, faulted_stair) = run_walk(false);
    let (signaled, signaled_stair) = run_walk(true);
    let mut t = Table::new(&[
        "mode",
        "stairwell Mb/s",
        "total MB",
        "wifi timeouts",
        "closed/joined",
    ]);
    let mb = |st: &mptcp_netsim::ConnectionStats| {
        format!("{:.1}", st.data_delivered as f64 * 1500.0 / 1e6)
    };
    t.row(vec![
        "fault plan (discovered)".into(),
        mbps(faulted_stair),
        mb(&faulted),
        faulted.subflows[0].timeouts.to_string(),
        format!("{}/{}", faulted.subflows_closed, faulted.subflows_joined),
    ]);
    t.row(vec![
        "signal plan (ADD/REMOVE_ADDR)".into(),
        mbps(signaled_stair),
        mb(&signaled),
        signaled.subflows[0].timeouts.to_string(),
        format!("{}/{}", signaled.subflows_closed, signaled.subflows_joined),
    ]);
    t.print();
    println!("\n  paper shape: signaling closes the WiFi subflow at the stairwell door —");
    println!("  no dead-path RTO probing, stranded data reinjected onto 3G at once —");
    println!("  and rejoins it on the new basestation; the physics are identical.");
}
