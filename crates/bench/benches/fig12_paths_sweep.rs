//! **Fig. 12 (§4)** — "Multipath needs 8 paths to get good utilization in
//! FatTree": throughput (% of optimal) as a function of paths used, TP1.
//!
//! Paper shape: single-path TCP sits around 50%; MPTCP climbs steeply with
//! path count and reaches ≈90% of optimal by 8 paths.

use mptcp_bench::datacenter::{run_fattree, Routing, Tp};
use mptcp_bench::runner::run_parallel;
use mptcp_bench::{banner, f1, scaled, Table};
use mptcp_cc::AlgorithmKind;
use mptcp_netsim::SimTime;

fn main() {
    banner("FIG12", "FatTree(k=8) TP1: throughput vs number of paths");
    let warmup = scaled(SimTime::from_secs(2));
    let window = scaled(SimTime::from_secs(5));
    // "Optimal" = every host saturates its 100 Mb/s NIC.
    let optimal = 100.0;
    // The whole sweep is independent runs: single-path plus one multipath
    // run per path count, fanned out over the parallel runner.
    let path_counts = [1usize, 2, 3, 4, 6, 8];
    let jobs: Vec<Routing> = std::iter::once(Routing::SinglePath)
        .chain(path_counts.iter().map(|&n| Routing::Multipath(AlgorithmKind::Mptcp, n)))
        .collect();
    let pcts = run_parallel(&jobs, |&routing| {
        let res = run_fattree(8, Tp::Permutation, routing, 13, warmup, window);
        100.0 * res.mean_host_mbps() / optimal
    });
    let single_pct = pcts[0];
    let mut t = Table::new(&["paths", "TCP (% optimal)", "MPTCP (% optimal)"]);
    for (n, mp_pct) in path_counts.iter().zip(&pcts[1..]) {
        t.row(vec![n.to_string(), f1(single_pct), f1(*mp_pct)]);
    }
    t.print();
    println!("\n  paper shape: MPTCP rises with path count, ≈90% by 8 paths;");
    println!("  single-path TCP stays ≈50% regardless.");
}
