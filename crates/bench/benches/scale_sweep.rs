//! **Scale sweep** — end-to-end simulator throughput vs world size.
//!
//! The hot-path work (timer-wheel queue, bitmap scoreboards, pooled ACK
//! scratch) is justified by how the simulator behaves as the world grows,
//! not by any single scenario. This bench runs the §4 FatTree MPTCP
//! workload at three rungs — k = 4 (16 hosts), k = 8 (128 hosts, the
//! `tab_fattree` scale) and k = 16 (1024 hosts) — and records events/sec
//! plus the process peak RSS for each rung in `BENCH_sim.json` under
//! `scale_sweep/*`, so both time *and* memory regressions at scale are
//! visible to `cargo xtask bench-check`.
//!
//! Simulated durations shrink as k grows so every rung retires a
//! comparable event count (event rate scales roughly linearly with hosts);
//! `MPTCP_QUICK` shrinks them further. Peak RSS is read from
//! `/proc/self/status` (`VmHWM`) and is a process-wide high-water mark:
//! rungs run in ascending size order, so each reading is dominated by the
//! largest world built so far.

use mptcp_bench::datacenter::{run_fattree_with, Routing, Tp};
use mptcp_bench::report::{merge_bench_sim, Record};
use mptcp_bench::{banner, f1, f2, quick_mode, scaled, Table};
use mptcp_cc::AlgorithmKind;
use mptcp_netsim::{QueueBackend, SimTime};

/// The process's peak resident set size in bytes (`VmHWM`), or `None` off
/// Linux or if the field is missing — the record then carries 0 and the
/// table a dash, rather than failing the bench.
fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb * 1024)
}

fn main() {
    banner("SCALE_SWEEP", "FatTree MPTCP events/sec and peak RSS vs host count");
    let quick = quick_mode();

    // (k, warmup, window): durations shrink with k so each rung fires a
    // comparable number of events. All durations also honor MPTCP_QUICK.
    let rungs: [(usize, SimTime, SimTime); 3] = [
        (4, SimTime::from_secs(2), SimTime::from_secs(6)),
        (8, SimTime::from_secs(1), SimTime::from_secs(2)),
        (16, SimTime::from_millis(250), SimTime::from_millis(750)),
    ];

    let mut t = Table::new(&[
        "k", "hosts", "sim s", "events", "Mev/s", "peak RSS MiB", "host Mb/s",
    ]);
    let mut records = Vec::new();
    for (k, warmup, window) in rungs {
        let (warmup, window) = (scaled(warmup), scaled(window));
        let (res, perf) = run_fattree_with(
            k,
            Tp::Permutation,
            Routing::Multipath(AlgorithmKind::Mptcp, 8),
            11,
            warmup,
            window,
            QueueBackend::TimerWheel,
        );
        assert!(perf.is_consistent(), "perf counters out of balance: {perf:?}");
        let hosts = k * k * k / 4;
        let eps = perf.events_per_wall_sec();
        let rss = peak_rss_bytes();
        let sim_s = (warmup + window).as_secs_f64();
        t.row(vec![
            k.to_string(),
            hosts.to_string(),
            f2(sim_s),
            perf.events_fired.to_string(),
            f2(eps / 1e6),
            rss.map_or("-".into(), |b| f1(b as f64 / (1 << 20) as f64)),
            f1(res.mean_host_mbps()),
        ]);
        records.push(
            Record::new(format!("scale_sweep/fattree_k{k}"))
                .field("hosts", hosts as u64)
                .field("sim_seconds", sim_s)
                .field("events", perf.events_fired)
                .field("peak_pending", perf.peak_pending)
                .field("events_per_sec", eps)
                .field("peak_rss_bytes", rss.unwrap_or(0))
                .field("mean_host_mbps", res.mean_host_mbps())
                .field("quick", quick),
        );
    }
    t.print();
    merge_bench_sim("scale_sweep/", &records);
}
