//! **Scale sweep** — end-to-end simulator throughput vs world size.
//!
//! The hot-path work (timer-wheel queue, bitmap scoreboards, pooled ACK
//! scratch, the struct-of-arrays subflow arena and the sharded parallel
//! engine) is justified by how the simulator behaves as the world grows,
//! not by any single scenario. This bench runs the §4 FatTree MPTCP
//! workload at five rungs — k = 4 (16 hosts) and k = 8 (128 hosts, the
//! `tab_fattree` scale) on the serial engine, then k = 16 (1024 hosts),
//! k = 32 (8192 hosts) and k = 48 (27,648 hosts) on the sharded engine —
//! and records events/sec,
//! events/sec *per core* (per core actually occupied — `jobs` capped at
//! the host's core count), the `jobs` column and the process peak RSS for
//! each rung in `BENCH_sim.json` under `scale_sweep/*`, so time, per-core
//! and memory regressions at scale are all visible to
//! `cargo xtask bench-check`.
//!
//! The k = 16 rung runs twice on the same binary and topology — jobs = 1
//! and jobs = 8 (`scale_sweep/fattree_k16` vs `…_k16_par`) — and the two
//! runs must produce the same merged `DetDigest`: thread count may only
//! change wall time, never the history. Sharded-rung throughput is
//! measured over the warm-up-excluded steady-state window only, so the
//! number is not dominated by connection-setup transients.
//!
//! Simulated durations shrink as k grows so every rung retires a
//! comparable event count (event rate scales roughly linearly with hosts);
//! `MPTCP_QUICK` shrinks them further. Peak RSS is read from
//! `/proc/self/status` (`VmHWM`) and is a process-wide high-water mark:
//! rungs run in ascending size order, so each reading is dominated by the
//! largest world built so far.

use mptcp_bench::datacenter::{run_fattree_sharded, run_fattree_with, Routing, Tp};
use mptcp_bench::report::{merge_bench_sim, Record};
use mptcp_bench::{banner, f1, f2, quick_mode, scaled, Table};
use mptcp_cc::AlgorithmKind;
use mptcp_netsim::{QueueBackend, SimTime};

/// The process's peak resident set size in bytes (`VmHWM`), or `None` off
/// Linux or if the field is missing — the record then carries 0 and the
/// table a dash, rather than failing the bench.
fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb * 1024)
}

const MPTCP8: Routing = Routing::Multipath(AlgorithmKind::Mptcp, 8);

fn main() {
    banner("SCALE_SWEEP", "FatTree MPTCP events/sec (total and per core) and peak RSS vs host count");
    let quick = quick_mode();

    let mut t = Table::new(&[
        "k", "hosts", "jobs", "sim s", "events", "Mev/s", "Mev/s/core", "peak RSS MiB", "host Mb/s",
    ]);
    let mut records = Vec::new();
    let mut push = |t: &mut Table,
                    name: String,
                    k: usize,
                    jobs: usize,
                    sim_s: f64,
                    events: u64,
                    eps: f64,
                    peak_pending: u64,
                    mean_mbps: f64| {
        let hosts = k * k * k / 4;
        let rss = peak_rss_bytes();
        // Per-core divides by the cores the run can actually occupy: on a
        // host with fewer cores than worker threads, the threads share
        // cores and dividing by `jobs` would count each core many times.
        let cores_used = (jobs as u64).min(mptcp_bench::report::host_cores());
        let per_core = eps / cores_used as f64;
        t.row(vec![
            k.to_string(),
            hosts.to_string(),
            jobs.to_string(),
            f2(sim_s),
            events.to_string(),
            f2(eps / 1e6),
            f2(per_core / 1e6),
            rss.map_or("-".into(), |b| f1(b as f64 / (1 << 20) as f64)),
            f1(mean_mbps),
        ]);
        records.push(
            Record::new(name)
                .field("hosts", hosts as u64)
                .field("jobs", jobs as u64)
                .field("sim_seconds", sim_s)
                .field("events", events)
                .field("peak_pending", peak_pending)
                .field("events_per_sec", eps)
                .field("events_per_sec_per_core", per_core)
                .field("peak_rss_bytes", rss.unwrap_or(0))
                .field("mean_host_mbps", mean_mbps)
                .field("host_cores", mptcp_bench::report::host_cores())
                .field("quick", quick),
        );
    };

    // Serial rungs: the single-queue engine, whole-run events/sec.
    for (k, warmup, window) in
        [(4, SimTime::from_secs(2), SimTime::from_secs(6)), (8, SimTime::from_secs(1), SimTime::from_secs(2))]
    {
        let (warmup, window) = (scaled(warmup), scaled(window));
        let (res, perf) =
            run_fattree_with(k, Tp::Permutation, MPTCP8, 11, warmup, window, QueueBackend::TimerWheel);
        assert!(perf.is_consistent(), "perf counters out of balance: {perf:?}");
        let sim_s = (warmup + window).as_secs_f64();
        push(
            &mut t,
            format!("scale_sweep/fattree_k{k}"),
            k,
            1,
            sim_s,
            perf.events_fired,
            perf.events_per_wall_sec(),
            perf.peak_pending,
            res.mean_host_mbps(),
        );
    }

    // Sharded rungs: 8 pod-partitioned shards, steady-state (window-only)
    // events/sec. k=16 runs at jobs=1 and jobs=8 on the same topology; the
    // merged digests must match — threads change wall time, not history.
    let (w16, m16) = (scaled(SimTime::from_secs(1)), scaled(SimTime::from_secs(2)));
    let mut digests = [0u64; 2];
    for (i, (jobs, name)) in [(1, "scale_sweep/fattree_k16"), (8, "scale_sweep/fattree_k16_par")]
        .into_iter()
        .enumerate()
    {
        let run = run_fattree_sharded(16, Tp::Permutation, MPTCP8, 11, w16, m16, 8, jobs);
        assert!(run.perf.is_consistent(), "perf counters out of balance: {:?}", run.perf);
        digests[i] = run.digest;
        let eps = run.window_events as f64 / run.window_wall.as_secs_f64();
        push(
            &mut t,
            name.to_string(),
            16,
            jobs,
            (w16 + m16).as_secs_f64(),
            run.window_events,
            eps,
            run.perf.peak_pending,
            run.res.mean_host_mbps(),
        );
    }
    assert_eq!(digests[0], digests[1], "k16 digests diverged between jobs=1 and jobs=8");

    // The top rungs keep shrinking the simulated horizon: event rate grows
    // roughly linearly with hosts, so k=48 covers ~27k hosts in tens of
    // milliseconds of simulated time without dwarfing the smaller rungs.
    for (k, warmup, window) in [
        (32, SimTime::from_millis(100), SimTime::from_millis(150)),
        (48, SimTime::from_millis(50), SimTime::from_millis(100)),
    ] {
        let (w, m) = (scaled(warmup), scaled(window));
        let run = run_fattree_sharded(k, Tp::Permutation, MPTCP8, 11, w, m, 8, 8);
        assert!(run.perf.is_consistent(), "perf counters out of balance: {:?}", run.perf);
        let eps = run.window_events as f64 / run.window_wall.as_secs_f64();
        push(
            &mut t,
            format!("scale_sweep/fattree_k{k}"),
            k,
            8,
            (w + m).as_secs_f64(),
            run.window_events,
            eps,
            run.perf.peak_pending,
            run.res.mean_host_mbps(),
        );
    }

    t.print();
    merge_bench_sim("scale_sweep/", &records);
}
