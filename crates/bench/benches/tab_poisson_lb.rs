//! **§3 Poisson-arrivals table** — dynamic server load balancing.
//!
//! Dual-homed server. Link 1 carries Poisson arrivals of finite TCP flows
//! with rate alternating between 10/s (light) and 60/s (heavy), file sizes
//! Pareto with mean 200 kB. Link 2 carries one long-lived TCP flow. All
//! three multipath algorithms run simultaneously, able to use both links.
//!
//! Paper average throughputs: MPTCP 61, COUPLED 54, EWTCP 47 Mb/s.
//! "In heavy load EWTCP did worst because it did not move as much traffic
//! onto the less congested path. In light load COUPLED did worst because
//! bursts of traffic on link 1 pushed it onto link 2, where it remained
//! 'trapped'."

use mptcp_bench::{banner, mbps, scaled, Table};
use mptcp_cc::AlgorithmKind;
use mptcp_netsim::{SimTime, Simulator};
use mptcp_topology::DualHomedServer;
use mptcp_workload::{AlternatingPoisson, ParetoSizes};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    banner("TAB_POISSON", "§3 Poisson arrivals + one long flow; 3 multipath algorithms");
    let mut sim = Simulator::new(33);
    let srv = DualHomedServer::build(&mut sim, [100.0, 100.0], SimTime::from_millis(10), 100);

    let duration = scaled(SimTime::from_secs(300));
    // Background workload: finite flows on link 1, a long flow on link 2.
    let mut rng = StdRng::seed_from_u64(4);
    let arrivals =
        AlternatingPoisson::paper().generate(duration, &ParetoSizes::paper_mean_200kb(), &mut rng);
    println!("  generated {} finite flows on link 1", arrivals.len());
    for a in &arrivals {
        srv.add_single_path_transfer(&mut sim, 0, a.size_pkts, a.start);
    }
    srv.add_single_path_client(&mut sim, 1, SimTime::ZERO);

    // The three multipath algorithms side by side, as in the paper.
    let algs = [AlgorithmKind::Mptcp, AlgorithmKind::Coupled, AlgorithmKind::Ewtcp];
    let conns: Vec<_> = algs
        .iter()
        .map(|&alg| srv.add_multipath_client(&mut sim, alg, SimTime::ZERO))
        .collect();

    sim.run_until(duration);
    let mut t = Table::new(&["algorithm", "paper Mb/s", "measured Mb/s"]);
    for ((alg, &conn), paper) in algs.iter().zip(&conns).zip(["61", "54", "47"]) {
        let st = sim.connection_stats(conn);
        t.row(vec![format!("{alg:?}"), paper.into(), mbps(st.throughput_bps(sim.now()))]);
    }
    t.print();
    println!("\n  paper shape: MPTCP > COUPLED > EWTCP.");
}
