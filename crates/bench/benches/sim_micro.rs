//! Criterion micro-benchmarks for the packet-level simulator.
//!
//! The paper's simulator is described as "high-speed"; these benches track
//! event throughput so regressions in the hot path (event queue, link
//! service, ACK processing) are visible.

use criterion::{criterion_group, criterion_main, Criterion};
use mptcp_cc::AlgorithmKind;
use mptcp_netsim::{ConnectionSpec, LinkSpec, SimTime, Simulator};

/// One bottleneck, two competing TCPs, one simulated second.
fn run_duel() -> u64 {
    let mut sim = Simulator::new(1);
    let l = sim.add_link(LinkSpec::mbps(100.0, SimTime::from_millis(5), 100));
    sim.add_connection(ConnectionSpec::bulk(AlgorithmKind::Uncoupled).path(vec![l]));
    sim.add_connection(ConnectionSpec::bulk(AlgorithmKind::Uncoupled).path(vec![l]));
    sim.run_until(SimTime::from_secs(1));
    sim.events_processed()
}

/// A 4-subflow MPTCP connection across four lossy links, one simulated
/// second — exercises the coupled-increase path.
fn run_multipath() -> u64 {
    let mut sim = Simulator::new(2);
    let mut spec = ConnectionSpec::bulk(AlgorithmKind::Mptcp);
    for i in 0..4 {
        let l = sim.add_link(
            LinkSpec::mbps(50.0, SimTime::from_millis(5 + 10 * i), 50).with_loss(0.001),
        );
        spec = spec.path(vec![l]);
    }
    sim.add_connection(spec);
    sim.run_until(SimTime::from_secs(1));
    sim.events_processed()
}

fn bench_sim(c: &mut Criterion) {
    let events = run_duel();
    let mut g = c.benchmark_group("simulator");
    g.throughput(criterion::Throughput::Elements(events));
    g.bench_function("two_tcps_100mbps_1s", |b| b.iter(run_duel));
    let events = run_multipath();
    g.throughput(criterion::Throughput::Elements(events));
    g.bench_function("mptcp_4subflows_1s", |b| b.iter(run_multipath));
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_sim
}
criterion_main!(benches);
