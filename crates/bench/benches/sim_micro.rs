//! Micro-benchmarks for the packet-level simulator's hot path.
//!
//! The paper's simulator is described as "high-speed"; this bench tracks
//! event throughput so regressions in the hot path (event queue, link
//! service, ACK processing) stay visible. Every scenario runs on **both**
//! event-queue backends in the same process — the timer wheel and the
//! reference binary heap — and the results land in `BENCH_sim.json`:
//!
//! * `queue_churn` isolates the scheduler itself (pop + re-push with a
//!   large resident event set), where the wheel's O(1) beats the heap's
//!   O(log n) directly;
//! * `two_tcps` / `mptcp4` are end-to-end simulations, where per-event
//!   TCP processing dilutes the queue's share of the wall time.
//!
//! The end-to-end runs also double as a determinism check: both backends
//! must process the exact same number of events.

use mptcp_bench::report::{merge_bench_sim, read_bench_field, Record};
use mptcp_bench::{banner, f2, quick_mode, Table};
use mptcp_cc::AlgorithmKind;
use mptcp_netsim::{
    queue_churn, scoreboard_churn, ConnectionSpec, LinkSpec, ProbeSpec, QueueBackend,
    ScoreboardKind, SimPerf, SimTime, Simulator,
};

const WHEEL: QueueBackend = QueueBackend::TimerWheel;
const HEAP: QueueBackend = QueueBackend::BinaryHeap;

/// One bottleneck, two competing TCPs, one simulated second.
fn run_duel(backend: QueueBackend) -> SimPerf {
    let mut sim = Simulator::with_backend(1, backend);
    let l = sim.add_link(LinkSpec::mbps(100.0, SimTime::from_millis(5), 100));
    sim.add_connection(ConnectionSpec::bulk(AlgorithmKind::Uncoupled).path(vec![l]));
    sim.add_connection(ConnectionSpec::bulk(AlgorithmKind::Uncoupled).path(vec![l]));
    sim.run_until(SimTime::from_secs(1));
    sim.perf()
}

/// A 4-subflow MPTCP connection across four lossy links, one simulated
/// second — exercises the coupled-increase path.
fn run_multipath(backend: QueueBackend) -> SimPerf {
    let mut sim = Simulator::with_backend(2, backend);
    let mut spec = ConnectionSpec::bulk(AlgorithmKind::Mptcp);
    for i in 0..4 {
        let l = sim.add_link(
            LinkSpec::mbps(50.0, SimTime::from_millis(5 + 10 * i), 50).with_loss(0.001),
        );
        spec = spec.path(vec![l]);
    }
    sim.add_connection(spec);
    sim.run_until(SimTime::from_secs(1));
    sim.perf()
}

/// The multipath scenario once more, with a 1 ms telemetry probe enabled —
/// the worst realistic sampling rate. Returns perf plus a packet-history
/// fingerprint for the neutrality assertion.
fn run_multipath_probed(probe: bool) -> (SimPerf, Vec<(u64, u64, u64, u64)>) {
    let mut sim = Simulator::with_backend(2, WHEEL);
    let mut spec = ConnectionSpec::bulk(AlgorithmKind::Mptcp);
    for i in 0..4 {
        let l = sim.add_link(
            LinkSpec::mbps(50.0, SimTime::from_millis(5 + 10 * i), 50).with_loss(0.001),
        );
        spec = spec.path(vec![l]);
    }
    let conn = sim.add_connection(spec);
    if probe {
        sim.enable_probe(ProbeSpec::every(SimTime::from_millis(1)));
    }
    sim.run_until(SimTime::from_secs(1));
    let fp = sim
        .connection_stats(conn)
        .subflows
        .iter()
        .map(|s| (s.delivered_pkts, s.retransmits, s.timeouts, s.cwnd.to_bits()))
        .collect();
    (sim.perf(), fp)
}

/// Best (highest events/wall-s) of `reps` runs — minimum wall time is the
/// standard low-noise estimator for micro-benchmarks.
fn best_eps(reps: usize, run: impl Fn() -> SimPerf) -> (SimPerf, f64) {
    let mut best: Option<(SimPerf, f64)> = None;
    for _ in 0..reps {
        let perf = run();
        assert!(perf.is_consistent(), "perf counters out of balance: {perf:?}");
        let eps = perf.events_per_wall_sec();
        if best.as_ref().is_none_or(|&(_, b)| eps > b) {
            best = Some((perf, eps));
        }
    }
    best.expect("reps >= 1")
}

fn main() {
    banner("SIM_MICRO", "simulator hot-path: timer wheel vs binary heap");
    let quick = quick_mode();
    let reps = if quick { 3 } else { 10 };
    let mut records = Vec::new();
    let mut t = Table::new(&["scenario", "events", "wheel Mev/s", "heap Mev/s", "speedup"]);

    // Scheduler-only churn: a large resident event set is where the heap's
    // O(log n) hurts most; sized near the peak_pending of the big §4 runs.
    let pending = 1 << 16;
    let ops: u64 = if quick { 400_000 } else { 4_000_000 };
    let mut wheel_best = f64::INFINITY;
    let mut heap_best = f64::INFINITY;
    for _ in 0..reps {
        wheel_best = wheel_best.min(queue_churn(WHEEL, pending, ops).as_secs_f64());
        heap_best = heap_best.min(queue_churn(HEAP, pending, ops).as_secs_f64());
    }
    let wheel_eps = ops as f64 / wheel_best;
    let heap_eps = ops as f64 / heap_best;
    t.row(vec![
        format!("queue_churn({pending} pending)"),
        ops.to_string(),
        f2(wheel_eps / 1e6),
        f2(heap_eps / 1e6),
        format!("{:.2}x", wheel_eps / heap_eps),
    ]);
    records.push(
        Record::new("sim_micro/queue_churn")
            .field("pending", pending as u64)
            .field("ops", ops)
            .field("wheel_events_per_sec", wheel_eps)
            .field("heap_events_per_sec", heap_eps)
            .field("speedup", wheel_eps / heap_eps)
            .field("quick", quick),
    );

    // Small-pending crossover: the wheel pays a constant per-op cost
    // (hash into a slot, occasional cascade/scan for the next occupied
    // slot) that the heap's O(log n) undercuts while the resident set is
    // small — log2(92) ≈ 6.5 sift steps on a cache-hot array beat the
    // wheel's slot walk. Sweep the resident size to pin where the lines
    // cross, and record the row at pending = 92 — `two_tcps`' measured
    // peak_pending — so the end-to-end ~0.8x there keeps its
    // scheduler-level explanation gated (see DESIGN.md §3.2, "Scheduler
    // performance", small-pending crossover).
    let sweep_ops: u64 = if quick { 200_000 } else { 2_000_000 };
    let mut small_row = None;
    for pending in [16usize, 92, 256, 1024, 4096] {
        let (mut w, mut h) = (f64::INFINITY, f64::INFINITY);
        for _ in 0..reps.min(5) {
            w = w.min(queue_churn(WHEEL, pending, sweep_ops).as_secs_f64());
            h = h.min(queue_churn(HEAP, pending, sweep_ops).as_secs_f64());
        }
        let (weps, heps) = (sweep_ops as f64 / w, sweep_ops as f64 / h);
        t.row(vec![
            format!("queue_churn({pending} pending)"),
            sweep_ops.to_string(),
            f2(weps / 1e6),
            f2(heps / 1e6),
            format!("{:.2}x", weps / heps),
        ]);
        if pending == 92 {
            small_row = Some((weps, heps));
        }
    }
    let (weps, heps) = small_row.expect("sweep includes pending=92");
    records.push(
        Record::new("sim_micro/queue_churn_small")
            .field("pending", 92u64)
            .field("ops", sweep_ops)
            .field("wheel_events_per_sec", weps)
            .field("heap_events_per_sec", heps)
            .field("speedup", weps / heps)
            .field("quick", quick),
    );

    // Scoreboard-only churn: the structure the per-ACK path spends its
    // time in, isolated from the event loop — the rotating bitmap vs the
    // BTreeSet reference it replaced, driven through the identical
    // synthetic SACK/loss/retransmit cycle (see
    // `mptcp_netsim::scoreboard_churn`).
    let sb_window = 512u64;
    let sb_ops: u64 = if quick { 400_000 } else { 4_000_000 };
    let mut bitmap_best = f64::INFINITY;
    let mut btree_best = f64::INFINITY;
    for _ in 0..reps {
        bitmap_best = bitmap_best
            .min(scoreboard_churn(ScoreboardKind::Bitmap, sb_window, sb_ops).as_secs_f64());
        btree_best = btree_best
            .min(scoreboard_churn(ScoreboardKind::BTree, sb_window, sb_ops).as_secs_f64());
    }
    let bitmap_ops = sb_ops as f64 / bitmap_best;
    let btree_ops = sb_ops as f64 / btree_best;
    println!(
        "  scoreboard churn (window {sb_window}): bitmap {} Mop/s vs btree {} Mop/s ({}x)",
        f2(bitmap_ops / 1e6),
        f2(btree_ops / 1e6),
        f2(bitmap_ops / btree_ops),
    );
    records.push(
        Record::new("sim_micro/scoreboard_churn")
            .field("window", sb_window)
            .field("ops", sb_ops)
            .field("bitmap_ops_per_sec", bitmap_ops)
            .field("btree_ops_per_sec", btree_ops)
            .field("speedup", bitmap_ops / btree_ops)
            .field("quick", quick),
    );

    // End-to-end scenarios: same simulation on both backends.
    let scenarios: [(&str, fn(QueueBackend) -> SimPerf); 2] =
        [("two_tcps", run_duel), ("mptcp4", run_multipath)];
    for (name, run) in scenarios {
        let (wp, weps) = best_eps(reps, || run(WHEEL));
        let (hp, heps) = best_eps(reps, || run(HEAP));
        assert_eq!(
            wp.events_fired, hp.events_fired,
            "{name}: backends diverged — determinism contract broken"
        );
        t.row(vec![
            name.to_string(),
            wp.events_fired.to_string(),
            f2(weps / 1e6),
            f2(heps / 1e6),
            format!("{:.2}x", weps / heps),
        ]);
        records.push(
            Record::new(format!("sim_micro/{name}"))
                .field("events", wp.events_fired)
                .field("peak_pending", wp.peak_pending)
                .field("wheel_events_per_sec", weps)
                .field("heap_events_per_sec", heps)
                .field("speedup", weps / heps)
                .field("quick", quick),
        );
    }

    // --- telemetry probe guard ---------------------------------------
    // The probe subsystem must (a) never perturb the simulated packet
    // history and (b) cost nothing on the hot path while disabled. (a) is
    // asserted unconditionally: probed and unprobed runs must produce the
    // identical per-subflow history. For (b), the disabled run above
    // (`mptcp4`) is compared against the baseline checked into
    // BENCH_sim.json; wall-clock comparisons across machines are noise, so
    // the hard <2% assertion only arms under MPTCP_PERF_GUARD=1 (set it
    // when re-validating on the machine that recorded the baseline).
    let (plain_perf, plain_fp) = run_multipath_probed(false);
    let probed_reps = if quick { 3 } else { 5 };
    let mut probed_best = f64::INFINITY;
    let mut probed_fp = Vec::new();
    for _ in 0..probed_reps {
        let (perf, fp) = run_multipath_probed(true);
        probed_best = probed_best.min(perf.wall.as_secs_f64());
        probed_fp = fp;
    }
    assert_eq!(
        plain_fp, probed_fp,
        "probe guard: telemetry sampling perturbed the packet history"
    );
    let (disabled_perf, disabled_eps) = best_eps(reps, || run_multipath_probed(false).0);
    assert_eq!(plain_perf.events_fired, disabled_perf.events_fired);
    let probed_eps = disabled_perf.events_fired as f64 / probed_best;
    let overhead = disabled_eps / probed_eps - 1.0;
    println!(
        "  probe guard: history identical; probing at 1 ms costs {:.1}% \
         ({:.2} vs {:.2} Mev/s disabled)",
        overhead * 100.0,
        probed_eps / 1e6,
        disabled_eps / 1e6,
    );
    let baseline = read_bench_field("sim_micro/mptcp4", "wheel_events_per_sec");
    if let Some(base) = baseline {
        let regression = 1.0 - disabled_eps / base;
        println!(
            "  probe guard: probes-disabled run at {:.1}% of the recorded baseline",
            100.0 * disabled_eps / base
        );
        if std::env::var_os("MPTCP_PERF_GUARD").is_some() {
            assert!(
                regression < 0.02,
                "probes-disabled hot path regressed {:.1}% vs BENCH_sim.json \
                 (baseline {base:.0} ev/s, now {disabled_eps:.0} ev/s)",
                regression * 100.0
            );
        }
    }
    records.push(
        Record::new("sim_micro/probe_guard")
            .field("probe_interval_ms", 1u64)
            .field("disabled_events_per_sec", disabled_eps)
            .field("probed_events_per_sec", probed_eps)
            .field("probe_overhead", overhead)
            .field("identical_history", true)
            .field("quick", quick),
    );

    t.print();
    println!();
    merge_bench_sim("sim_micro/", &records);
}
