//! **Fig. 10 (§3)** — server load balancing with MPTCP, testbed scenario.
//!
//! A dual-homed server with two 100 Mb/s links, 10 ms added latency.
//! 5 single-path clients on link 1, 15 on link 2 (link 2 is congested).
//! At t = 60 s, 10 multipath flows start, able to use both links. Perfect
//! balancing would move them entirely onto link 1 (then 15 flows per
//! link); the paper observes substantial but imperfect balancing.
//!
//! Output: a per-10-second timeline of mean per-flow goodput on each link,
//! like the figure's two bands, plus the multipath flows' split.

use mptcp_bench::{banner, f2, mbps, scaled, Table};
use mptcp_cc::AlgorithmKind;
use mptcp_netsim::{SimTime, Simulator};
use mptcp_topology::DualHomedServer;

fn main() {
    banner("FIG10", "dual-homed server: 5 vs 15 clients, +10 MPTCP flows at t=60 s");
    let mut sim = Simulator::new(21);
    let srv = DualHomedServer::build(&mut sim, [100.0, 100.0], SimTime::from_millis(10), 100);
    let link1: Vec<_> =
        (0..5).map(|_| srv.add_single_path_client(&mut sim, 0, SimTime::ZERO)).collect();
    let link2: Vec<_> =
        (0..15).map(|_| srv.add_single_path_client(&mut sim, 1, SimTime::ZERO)).collect();
    let start_mp = scaled(SimTime::from_secs(60));
    let mp: Vec<_> = (0..10)
        .map(|_| srv.add_multipath_client(&mut sim, AlgorithmKind::Mptcp, start_mp))
        .collect();

    let step = scaled(SimTime::from_secs(10));
    let total = scaled(SimTime::from_secs(180));
    let mut t = Table::new(&[
        "t (s)",
        "link1 TCP Mb/s/flow",
        "link2 TCP Mb/s/flow",
        "MPTCP Mb/s/flow",
        "MPTCP share on link1",
    ]);
    let snapshot = |sim: &Simulator| -> Vec<(u64, u64)> {
        link1
            .iter()
            .chain(&link2)
            .map(|&c| (sim.connection_stats(c).delivered_pkts(), 0))
            .chain(mp.iter().map(|&c| {
                let st = sim.connection_stats(c);
                (st.subflows[0].delivered_pkts, st.subflows[1].delivered_pkts)
            }))
            .collect()
    };
    let mut prev = snapshot(&sim);
    let mut now = SimTime::ZERO;
    while now < total {
        now += step;
        sim.run_until(now);
        let cur = snapshot(&sim);
        let secs = step.as_secs_f64();
        let pkt_bits = 1500.0 * 8.0;
        let mean = |range: std::ops::Range<usize>| -> f64 {
            let n = range.len() as f64;
            range
                .map(|i| ((cur[i].0 + cur[i].1) - (prev[i].0 + prev[i].1)) as f64 * pkt_bits / secs)
                .sum::<f64>()
                / n
        };
        let l1 = mean(0..5);
        let l2 = mean(5..20);
        let m = mean(20..30);
        let mp_l1: u64 = (20..30).map(|i| cur[i].0 - prev[i].0).sum();
        let mp_l2: u64 = (20..30).map(|i| cur[i].1 - prev[i].1).sum();
        let share = if mp_l1 + mp_l2 == 0 {
            f64::NAN
        } else {
            mp_l1 as f64 / (mp_l1 + mp_l2) as f64
        };
        t.row(vec![
            format!("{:.0}", now.as_secs_f64()),
            mbps(l1),
            mbps(l2),
            if now > start_mp { mbps(m) } else { "-".into() },
            if now > start_mp { f2(share) } else { "-".into() },
        ]);
        prev = cur;
    }
    t.print();
    println!("\n  paper shape: before t=60 s link1 flows get ~20 Mb/s, link2 flows ~6.7 Mb/s;");
    println!("  after the 10 MPTCP flows join they shift most traffic to link1,");
    println!("  pulling per-flow rates on the two links much closer together.");
}
