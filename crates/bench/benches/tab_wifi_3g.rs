//! **§5 static wireless experiments (Fig. 15)** — WiFi + 3G client.
//!
//! Two experiments from §5:
//!
//! 1. **Single flow, no competition**: single-path TCP on WiFi got
//!    14.4 Mb/s, on 3G 2.1 Mb/s, and MPTCP 17.3 Mb/s ≈ the sum of both.
//! 2. **Competing flows** (Fig. 14/15): one single-path TCP on each access
//!    link plus one multipath flow on both. Long-run averages (Mb/s):
//!
//!    |          | multipath | TCP-WiFi | TCP-3G |
//!    |----------|----------:|---------:|-------:|
//!    | EWTCP    |      1.66 |     3.11 |   1.20 |
//!    | COUPLED  |      1.41 |     3.49 |   0.97 |
//!    | MPTCP    |      2.21 |     2.56 |   0.65 |
//!
//!    Only MPTCP gives the multipath flow throughput comparable to the
//!    best single-path flow (RTT compensation, §2.5). Absolute numbers
//!    depend on radio conditions the paper could not control; the *shape*
//!    (MPTCP > EWTCP > COUPLED for the multipath flow) is the claim.
//!
//! A third table reruns experiment 2 for the post-paper controller zoo
//! ([`AlgorithmKind::zoo`]: CUBIC, OLIA, BALIA, wVegas) against the
//! paper's yardstick — multipath ≥ best single path, nobody starved.

use mptcp_bench::{banner, f2, measure_goodput_bps, mbps, scaled, Table};
use mptcp_cc::AlgorithmKind;
use mptcp_netsim::{SimTime, Simulator};
use mptcp_topology::WirelessClient;

fn main() {
    banner("TAB_STATIC1", "§5 static, single flow at a time (no competition)");
    let warmup = scaled(SimTime::from_secs(10));
    let window = scaled(SimTime::from_secs(20));
    let mut t = Table::new(&["flow", "paper Mb/s", "measured Mb/s"]);
    for (name, paper, which) in
        [("TCP on WiFi", "14.4", 0), ("TCP on 3G", "2.1", 1), ("MPTCP on both", "17.3", 2)]
    {
        let mut sim = Simulator::new(51);
        let w = WirelessClient::build_wifi_3g(&mut sim);
        let conn = match which {
            0 => w.add_single_path_1(&mut sim, SimTime::ZERO),
            1 => w.add_single_path_2(&mut sim, SimTime::ZERO),
            _ => w.add_multipath(&mut sim, AlgorithmKind::Mptcp, SimTime::ZERO),
        };
        let bps = measure_goodput_bps(&mut sim, &[conn], warmup, window)[0];
        t.row(vec![name.into(), paper.into(), mbps(bps)]);
    }
    t.print();
    println!("\n  paper shape: MPTCP alone ≈ WiFi + 3G (sum of access links).");

    banner("FIG15", "§5 static, competing single-path flow on each access link");
    let mut t = Table::new(&[
        "algorithm",
        "multipath paper",
        "multipath",
        "TCP-WiFi paper",
        "TCP-WiFi",
        "TCP-3G paper",
        "TCP-3G",
    ]);
    let mut measured = Vec::new();
    for (alg, mp_p, wifi_p, tg_p) in [
        (AlgorithmKind::Ewtcp, "1.66", "3.11", "1.20"),
        (AlgorithmKind::Coupled, "1.41", "3.49", "0.97"),
        (AlgorithmKind::Mptcp, "2.21", "2.56", "0.65"),
    ] {
        let mut sim = Simulator::new(52);
        let w = WirelessClient::build_wifi_3g(&mut sim);
        let s1 = w.add_single_path_1(&mut sim, SimTime::ZERO);
        let s2 = w.add_single_path_2(&mut sim, SimTime::ZERO);
        let m = w.add_multipath(&mut sim, alg, SimTime::ZERO);
        let bps = measure_goodput_bps(
            &mut sim,
            &[m, s1, s2],
            scaled(SimTime::from_secs(30)),
            scaled(SimTime::from_secs(300)),
        );
        measured.push((alg, bps[0]));
        t.row(vec![
            format!("{alg:?}"),
            mp_p.into(),
            mbps(bps[0]),
            wifi_p.into(),
            mbps(bps[1]),
            tg_p.into(),
            mbps(bps[2]),
        ]);
    }
    t.print();
    let ratio = |a: usize, b: usize| measured[a].1 / measured[b].1;
    println!("\n  paper shape: multipath(MPTCP) > multipath(EWTCP) > multipath(COUPLED);");
    println!(
        "  measured ratios MPTCP/EWTCP = {}, MPTCP/COUPLED = {}",
        f2(ratio(2, 0)),
        f2(ratio(2, 1))
    );

    banner("FIG15-ZOO", "same competition, post-paper controllers (no paper column)");
    let mut t = Table::new(&["algorithm", "multipath", "TCP-WiFi", "TCP-3G", "mp / best-TCP"]);
    for alg in AlgorithmKind::zoo() {
        let mut sim = Simulator::new(52);
        let w = WirelessClient::build_wifi_3g(&mut sim);
        let s1 = w.add_single_path_1(&mut sim, SimTime::ZERO);
        let s2 = w.add_single_path_2(&mut sim, SimTime::ZERO);
        let m = w.add_multipath(&mut sim, alg, SimTime::ZERO);
        let bps = measure_goodput_bps(
            &mut sim,
            &[m, s1, s2],
            scaled(SimTime::from_secs(30)),
            scaled(SimTime::from_secs(300)),
        );
        t.row(vec![
            format!("{alg:?}"),
            mbps(bps[0]),
            mbps(bps[1]),
            mbps(bps[2]),
            f2(bps[0] / bps[1].max(bps[2])),
        ]);
    }
    t.print();
    println!("\n  yardstick: the paper's goal for any multipath controller is");
    println!("  mp / best-TCP ≥ 1 without starving either single-path flow.");
}
