//! **Ablations** — executable justifications for the design choices the
//! paper argues for in §2:
//!
//! 1. **The 1/w_r cap** (§2.5): MPTCP without the cap (i.e. SEMICOUPLED
//!    with a recomputed `a`) can out-compete a single-path TCP on one of
//!    its paths; the capped algorithm cannot.
//! 2. **The probing floor** (§2.4): COUPLED's 1-packet floor is what lets
//!    it *eventually* rediscover a path; shrinking the effective probe
//!    (larger decrease on the probe path) slows rediscovery — measured via
//!    the bursty-CBR scenario's top-link throughput.
//! 3. **Smoothed vs instantaneous windows in eq. (5)** (§2.5): "the
//!    formula technically requires ŵ_r, the equilibrium window … we have
//!    used the instantaneous window size instead. The experiments indicate
//!    that this does not cause problems" — we verify the fluid equilibrium
//!    matches between the two (they coincide at the fixed point).

use mptcp_bench::{banner, f1, f2, measure_goodput_pps, scaled, Table};
use mptcp_cc::fluid::equilibrium;
use mptcp_cc::{Mptcp, MultipathCc, SemiCoupled, SubflowSnapshot};
use mptcp_netsim::{ConnectionSpec, LinkSpec, SimTime, Simulator};

/// MPTCP with the 1/w_r cap removed: the §2.5 increase `a/w_total` with
/// `a` recomputed from eq. (5) each ACK, but NOT capped at `1/w_r`.
#[derive(Debug, Clone, Copy)]
struct UncappedMptcp;

impl MultipathCc for UncappedMptcp {
    fn name(&self) -> &'static str {
        "MPTCP-NOCAP"
    }

    fn increase_per_ack(&self, _r: usize, subs: &[SubflowSnapshot]) -> f64 {
        // a/w_total with a from eq. (5) evaluated on instantaneous windows.
        let w_total: f64 = subs.iter().map(|s| s.cwnd).sum();
        let max_term =
            subs.iter().map(|s| s.cwnd / (s.rtt * s.rtt)).fold(0.0_f64, f64::max);
        let sum: f64 = subs.iter().map(|s| s.cwnd / s.rtt).sum();
        let a = w_total * max_term / (sum * sum);
        a / w_total
    }

    fn window_after_loss(&self, r: usize, subs: &[SubflowSnapshot]) -> f64 {
        subs[r].cwnd / 2.0
    }
}

fn main() {
    // ----- Ablation 1: the 1/w_r cap --------------------------------
    banner("ABL1", "removing the 1/w_r cap lets MPTCP harm a single-path TCP");
    // The cap binds when a long-RTT path carries a LARGER window than the
    // short path: there, eq. (5)'s a/w_total exceeds 1/w_r and an uncapped
    // sender grows its long-path window faster than a competing TCP may.
    // Scenario: big long-RTT pipe (BDP ≈ 200 pkts) shared with one TCP,
    // plus a small short-RTT side path.
    let run = |capped: bool| -> (f64, f64) {
        let mut sim = Simulator::new(91);
        let slow = sim.add_link(LinkSpec::pkts_per_sec(1000.0, SimTime::from_millis(100), 200));
        let fast = sim.add_link(LinkSpec::pkts_per_sec(500.0, SimTime::from_millis(5), 10));
        let tcp = sim
            .add_connection(ConnectionSpec::bulk(mptcp_cc::AlgorithmKind::Uncoupled).path(vec![slow]));
        let spec = if capped {
            ConnectionSpec::bulk(mptcp_cc::AlgorithmKind::Mptcp)
        } else {
            ConnectionSpec::custom(Box::new(UncappedMptcp))
        };
        let m = sim.add_connection(spec.path(vec![slow]).path(vec![fast]));
        let r = measure_goodput_pps(
            &mut sim,
            &[tcp, m],
            scaled(SimTime::from_secs(60)),
            scaled(SimTime::from_secs(240)),
        );
        (r[0], r[1])
    };
    let (tcp_c, m_c) = run(true);
    let (tcp_u, m_u) = run(false);
    let mut t = Table::new(&["variant", "TCP on big slow link", "multipath total"]);
    t.row(vec!["MPTCP (capped)".into(), f1(tcp_c), f1(m_c)]);
    t.row(vec!["no 1/w_r cap".into(), f1(tcp_u), f1(m_u)]);
    t.print();
    println!("\n  expected: without the cap the multipath flow over-drives the slow");
    println!("  path and squeezes the competing TCP; the cap keeps it at ≤ one");
    println!("  TCP's aggressiveness there (§2.5's horizontal/vertical constraints).");

    // ----- Ablation 2: the probing floor ----------------------------
    banner("ABL2", "probe traffic and rediscovery after bursts (§2.4)");
    // SEMICOUPLED keeps real probe traffic; COUPLED keeps only the
    // 1-packet floor. Compare top-link usage under bursty CBR.
    let run = |alg: mptcp_cc::AlgorithmKind| -> f64 {
        let mut sim = Simulator::new(92);
        let top = sim.add_link(LinkSpec::mbps(100.0, SimTime::from_millis(5), 50));
        let bottom = sim.add_link(LinkSpec::mbps(100.0, SimTime::from_millis(5), 50));
        let conn =
            sim.add_connection(ConnectionSpec::bulk(alg).path(vec![top]).path(vec![bottom]));
        sim.add_cbr(
            mptcp_netsim::CbrSpec::constant(vec![top], 100e6)
                .onoff(SimTime::from_millis(10), SimTime::from_millis(100)),
        );
        sim.run_until(scaled(SimTime::from_secs(20)));
        let before = sim.connection_stats(conn).subflows[0].delivered_pkts;
        sim.run_until(scaled(SimTime::from_secs(140)));
        let after = sim.connection_stats(conn).subflows[0].delivered_pkts;
        (after - before) as f64 * 1500.0 * 8.0 / scaled(SimTime::from_secs(120)).as_secs_f64()
            / 1e6
    };
    let mut t = Table::new(&["algorithm", "top-link Mb/s under bursts"]);
    for alg in [
        mptcp_cc::AlgorithmKind::Coupled,
        mptcp_cc::AlgorithmKind::SemiCoupled,
        mptcp_cc::AlgorithmKind::Mptcp,
    ] {
        t.row(vec![format!("{alg:?}"), f1(run(alg))]);
    }
    t.print();
    println!("\n  expected: COUPLED lowest (trapped); SEMICOUPLED/MPTCP rediscover fast.");

    // ----- Ablation 3: instantaneous vs equilibrium windows ---------
    banner("ABL3", "eq. (5) on instantaneous windows has the intended fixed point");
    // At the fluid fixed point, eq. (1) (instantaneous) and the §2.5
    // two-path construction with equilibrium ŵ agree; check the resulting
    // aggregate matches the incentive target max(ŵ_TCP_r/RTT_r).
    let loss = [0.04, 0.01];
    let rtt = [0.010, 0.100];
    let w = equilibrium(&Mptcp::new(), &loss, &rtt);
    let rate: f64 = w.iter().zip(&rtt).map(|(wr, t)| wr / t).sum();
    let target = (2.0_f64 / loss[0]).sqrt() / rtt[0];
    let mut t = Table::new(&["quantity", "value"]);
    t.row(vec!["Σ ŵ_r/RTT_r (eq. 1 equilibrium)".into(), f1(rate)]);
    t.row(vec!["max_r ŵ_TCP_r/RTT_r (target)".into(), f1(target)]);
    t.row(vec!["ratio".into(), f2(rate / target)]);
    t.print();
    println!("\n  expected: ratio ≈ 1 — using instantaneous windows is harmless,");
    println!("  as the paper observes experimentally.");

    // Sanity cross-reference: SEMICOUPLED with the 'wrong' fixed a misses
    // the target under RTT mismatch.
    let w_sc = equilibrium(&SemiCoupled::new(), &loss, &rtt);
    let rate_sc: f64 = w_sc.iter().zip(&rtt).map(|(wr, t)| wr / t).sum();
    println!(
        "  (SEMICOUPLED with fixed a=1 reaches only {:.2}× the target)",
        rate_sc / target
    );
}
