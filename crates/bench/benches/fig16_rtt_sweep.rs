//! **Fig. 16 (§5)** — RTT-compensation sweep.
//!
//! Fig. 14 topology with C1 = 400 pkt/s, RTT1 = 100 ms fixed, sweeping
//! link 2 over C2 ∈ {400, 800, 1600, 3200} pkt/s and RTT2 ∈ {12…800} ms.
//! The figure plots the ratio of flow M's throughput to the better of S1
//! and S2.
//!
//! Paper shape: the ratio is within a few percent of 1.0 everywhere except
//! when link 2's bandwidth-delay product is very small (timeout trouble);
//! M always beats what it would get on the better link alone (average
//! improvement 15%).

use mptcp_bench::runner::run_parallel;
use mptcp_bench::{banner, f2, measure_goodput_pps, scaled, Table};
use mptcp_cc::AlgorithmKind;
use mptcp_netsim::{ConnectionSpec, LinkSpec, SimTime, Simulator};

fn run(c2: f64, rtt2_ms: u64, seed: u64) -> f64 {
    let mut sim = Simulator::new(seed);
    let bdp1 = (400.0_f64 * 0.1).round() as usize;
    let bdp2 = ((c2 * rtt2_ms as f64 / 1000.0).round() as usize).max(4);
    let l1 = sim.add_link(LinkSpec::pkts_per_sec(400.0, SimTime::from_millis(50), bdp1));
    let l2 = sim.add_link(LinkSpec::pkts_per_sec(c2, SimTime::from_millis(rtt2_ms / 2), bdp2));
    let s1 = sim.add_connection(ConnectionSpec::bulk(AlgorithmKind::Uncoupled).path(vec![l1]));
    let s2 = sim.add_connection(ConnectionSpec::bulk(AlgorithmKind::Uncoupled).path(vec![l2]));
    let m = sim
        .add_connection(ConnectionSpec::bulk(AlgorithmKind::Mptcp).path(vec![l1]).path(vec![l2]));
    let r = measure_goodput_pps(
        &mut sim,
        &[s1, s2, m],
        scaled(SimTime::from_secs(60)),
        scaled(SimTime::from_secs(240)),
    );
    r[2] / r[0].max(r[1])
}

fn main() {
    banner("FIG16", "ratio of M's throughput to the better of S1/S2 (paper: ≈1.0)");
    let rtts: [u64; 7] = [12, 25, 50, 100, 200, 400, 800];
    let caps = [400.0, 800.0, 1600.0, 3200.0];
    // 28 independent (RTT2, C2) cells — fan out over the parallel runner;
    // job order matches the table's row-major order, so output is identical
    // to the serial loop.
    let jobs: Vec<(u64, f64)> =
        rtts.iter().flat_map(|&rtt2| caps.iter().map(move |&c2| (rtt2, c2))).collect();
    let ratios = run_parallel(&jobs, |&(rtt2, c2)| run(c2, rtt2, 71));
    let mut t = Table::new(&["RTT2 (ms)", "C2=400", "C2=800", "C2=1600", "C2=3200"]);
    for (i, &rtt2) in rtts.iter().enumerate() {
        let mut cells = vec![rtt2.to_string()];
        cells.extend(ratios[i * caps.len()..(i + 1) * caps.len()].iter().map(|&r| f2(r)));
        t.row(cells);
    }
    t.print();
    println!("\n  paper shape: ≈1.0 across the sweep; dips only where link 2's");
    println!("  bandwidth-delay product is tiny (small C2·RTT2 ⇒ timeouts).");
}
