//! FLUID_CHECK — the differential oracle as a runnable report.
//!
//! Sweeps every `checked_cells` entry — the core algorithms over the
//! oracle's three scenarios (two equal paths, RTT mismatch, Fig. 7
//! torus) plus OLIA/BALIA on the Bernoulli-loss scenarios — printing
//! measured vs fluid-predicted equilibrium windows and recording the
//! deviations in `BENCH_sim.json` under
//! `fluid_check/<algorithm>_<scenario>`.
//!
//! Also exports one full probe trace (MPTCP on the two-path scenario) as
//! JSONL under `target/traces/` — the raw material for the cwnd/queue
//! time-series plots described in `EXPERIMENTS.md`.
//!
//! Exits non-zero if any cell fails, so CI can run it as a check. The
//! same check also runs as a tier-1 test (`tests/fluid_oracle.rs`); this
//! bench exists for the human-readable sweep and the trace artifact.

use mptcp_bench::oracle::{checked_cells, fluid_check};
use mptcp_bench::report::{export_trace, merge_bench_sim, Record};
use mptcp_bench::{banner, f2, quick_mode, Table};
use mptcp_cc::AlgorithmKind;
use mptcp_netsim::{ConnectionSpec, LinkSpec, ProbeSpec, SimTime, Simulator};

fn export_demo_trace() {
    let mut sim = Simulator::new(7);
    let a = sim.add_link(LinkSpec::mbps(10.0, SimTime::from_millis(20), 50).with_loss(0.01));
    let b = sim.add_link(LinkSpec::mbps(10.0, SimTime::from_millis(20), 50).with_loss(0.01));
    sim.add_connection(ConnectionSpec::bulk(AlgorithmKind::Mptcp).path(vec![a]).path(vec![b]));
    sim.enable_probe(ProbeSpec::every(SimTime::from_millis(50)));
    sim.run_until(SimTime::from_secs(30));
    let log = sim.disable_probe().expect("probe enabled");
    match export_trace("fluid_check_mptcp_two_path", &log) {
        Ok(path) => println!("  exported probe trace to {}", path.display()),
        Err(e) => eprintln!("warning: trace export failed: {e}"),
    }
}

fn main() {
    banner("FLUID_CHECK", "packet-level simulator vs fluid balance equations");
    let quick = quick_mode();
    let mut t = Table::new(&[
        "algorithm",
        "scenario",
        "measured Σw",
        "predicted Σw",
        "total_dev",
        "split_dev",
        "verdict",
    ]);
    let mut records = Vec::new();
    let mut failures = Vec::new();
    for (kind, scenario) in checked_cells() {
        let r = fluid_check(kind, scenario);
        let meas: f64 = r.paths.iter().map(|p| p.measured_w).sum();
        let pred: f64 = r.paths.iter().map(|p| p.predicted_w).sum();
        t.row(vec![
            format!("{kind:?}"),
            scenario.name().to_string(),
            f2(meas),
            f2(pred),
            format!("{:.3}", r.total_dev),
            format!("{:.3}", r.split_dev),
            if r.pass { "PASS".into() } else { "FAIL".into() },
        ]);
        records.push(
            Record::new(format!("fluid_check/{kind:?}_{}", scenario.name()))
                .field("measured_total_w", meas)
                .field("predicted_total_w", pred)
                .field("total_dev", r.total_dev)
                .field("split_dev", r.split_dev)
                .field("tol_total", r.tol_total)
                .field("pass", r.pass)
                .field("quick", quick),
        );
        if !r.pass {
            failures.push(r);
        }
    }
    t.print();
    println!();
    export_demo_trace();
    merge_bench_sim("fluid_check/", &records);
    if !failures.is_empty() {
        eprintln!("\nfluid oracle FAILURES:");
        for r in &failures {
            eprint!("{r}");
        }
        std::process::exit(1);
    }
}
