//! Chaos smoke — fixed-seed fault schedules on the torus and a dual-homed
//! client, run through the parallel experiment runner.
//!
//! This is the CI gate for the fault subsystem: a handful of known seeds
//! expand into [`FaultPlan::randomized`] schedules (flaps, brownouts,
//! queue squeezes, Gilbert–Elliott bursts), every sized flow must survive
//! them with exactly-once delivery, and the whole batch must produce
//! **bit-identical digests under `MPTCP_JOBS=1` and `MPTCP_JOBS=4`** —
//! the determinism claim of the runner extended to fault execution.
//! Any divergence or a lost flow aborts the process with a nonzero exit.
//!
//! Two scenarios run on the **sharded engine** ([`ShardedSimulator`]) with
//! their intra-sim worker count tied to `MPTCP_JOBS`, so the same batch
//! comparison also proves the stronger claim: a *single* sharded
//! simulation's merged `DetDigest` is bit-identical at jobs = 1 vs
//! jobs = N (DESIGN.md §3.2f).

use mptcp_bench::runner::{run_parallel, worker_count};
use mptcp_bench::{banner, scaled, Table};
use mptcp_cc::AlgorithmKind;
use mptcp_netsim::{
    ConnectionSpec, DetDigest, DigestWriter, FaultPlan, LinkSpec, ShardedSimulator, SimPerf,
    SimTime, Simulator, TcpParams,
};
use mptcp_topology::Torus;

/// One scenario's reproducible outcome; compared bit-for-bit across runs.
#[derive(Debug, Clone, PartialEq)]
struct Digest {
    label: String,
    events: u64,
    faults: u64,
    delivered: Vec<u64>,
    dups: Vec<u64>,
    reinjected: Vec<u64>,
    finished: Vec<bool>,
    /// Structural [`DetDigest`] fold over every connection's full
    /// [`ConnectionStats`](mptcp_netsim::ConnectionStats) and the run's
    /// `SimPerf` — the whole digest-surface, not just the hand-picked
    /// columns above. New sim-state fields enter this digest automatically
    /// (the `impl_det_digest!` destructuring is exhaustive, and `cargo
    /// xtask lint` requires the impl for every digest-surface struct).
    state: u64,
}

#[derive(Clone, Copy)]
enum Scenario {
    Torus { seed: u64 },
    DualHomed { seed: u64, pkts: u64 },
    /// The torus, partitioned over 3 shards with the worker count tied to
    /// `MPTCP_JOBS` — the intra-sim jobs=1 vs jobs=N bit-identity gate.
    ShardedTorus { seed: u64 },
    /// The dual-homed download, its two access links on different shards.
    ShardedDualHomed { seed: u64, pkts: u64 },
}

fn run_one(sc: &Scenario) -> Digest {
    let horizon = scaled(SimTime::from_secs(60));
    match *sc {
        Scenario::Torus { seed } => {
            let mut sim = Simulator::new(seed);
            let t = Torus::build(&mut sim, [1000.0; 5], AlgorithmKind::Mptcp);
            let plan = FaultPlan::randomized(seed ^ 0xFA17, &t.links, horizon);
            sim.install_fault_plan(&plan);
            sim.run_until(horizon);
            digest(format!("torus/{seed}"), &sim, &t.flows)
        }
        Scenario::DualHomed { seed, pkts } => {
            let mut sim = Simulator::new(seed);
            let l1 = sim.add_link(LinkSpec::mbps(12.0, SimTime::from_millis(8), 25));
            let l2 = sim.add_link(LinkSpec::mbps(4.0, SimTime::from_millis(30), 25));
            let conn = sim.add_connection(
                ConnectionSpec::sized(AlgorithmKind::Mptcp, pkts)
                    .path(vec![l1])
                    .path(vec![l2])
                    .tcp(TcpParams { max_rto: SimTime::from_secs(4), ..TcpParams::default() }),
            );
            let plan = FaultPlan::randomized(seed ^ 0xD0A1, &[l1, l2], horizon);
            sim.install_fault_plan(&plan);
            sim.run_until(horizon);
            digest(format!("dual/{seed}"), &sim, &[conn])
        }
        Scenario::ShardedTorus { seed } => {
            let mut sim = ShardedSimulator::new(seed, 3);
            let t = Torus::build_sharded(&mut sim, [1000.0; 5], AlgorithmKind::Mptcp);
            let plan = FaultPlan::randomized(seed ^ 0xFA17, &t.links, horizon);
            sim.install_fault_plan(&plan);
            sim.set_jobs(worker_count(8));
            sim.run_until(horizon);
            let stats: Vec<_> = t.flows.iter().map(|&c| sim.connection_stats(c)).collect();
            digest_parts(format!("storus/{seed}"), stats, sim.perf())
        }
        Scenario::ShardedDualHomed { seed, pkts } => {
            let mut sim = ShardedSimulator::new(seed, 2);
            let l1 = sim.add_link(0, LinkSpec::mbps(12.0, SimTime::from_millis(8), 25));
            let l2 = sim.add_link(1, LinkSpec::mbps(4.0, SimTime::from_millis(30), 25));
            // Both subflows enter on shard 0 (the owner) via uncongested
            // 1 ms ingress stubs, then cross to their access links.
            let stub = LinkSpec::pkts_per_sec(100_000.0, SimTime::from_millis(1), 10_000);
            let s1 = sim.add_link(0, stub);
            let s2 = sim.add_link(0, stub);
            let conn = sim.add_connection(
                ConnectionSpec::sized(AlgorithmKind::Mptcp, pkts)
                    .path(vec![s1, l1])
                    .path(vec![s2, l2])
                    .tcp(TcpParams { max_rto: SimTime::from_secs(4), ..TcpParams::default() }),
            );
            let plan = FaultPlan::randomized(seed ^ 0xD0A1, &[l1, l2], horizon);
            sim.install_fault_plan(&plan);
            sim.set_jobs(worker_count(8));
            sim.run_until(horizon);
            digest_parts(format!("sdual/{seed}"), vec![sim.connection_stats(conn)], sim.perf())
        }
    }
}

fn digest(label: String, sim: &Simulator, conns: &[usize]) -> Digest {
    // `events_processed() == perf().events_fired`, so serial and sharded
    // digests share one constructor.
    let stats: Vec<_> = conns.iter().map(|&c| sim.connection_stats(c)).collect();
    digest_parts(label, stats, sim.perf())
}

fn digest_parts(label: String, stats: Vec<mptcp_netsim::ConnectionStats>, perf: SimPerf) -> Digest {
    let mut w = DigestWriter::new();
    stats.det_digest(&mut w);
    perf.det_digest(&mut w);
    let state = w.finish();
    Digest {
        label,
        events: perf.events_fired,
        faults: perf.faults_applied,
        delivered: stats.iter().map(|s| s.data_delivered).collect(),
        dups: stats.iter().map(|s| s.dup_data_arrivals).collect(),
        reinjected: stats.iter().map(|s| s.reinjections_sent).collect(),
        finished: stats.iter().map(|s| s.finished_at.is_some()).collect(),
        state,
    }
}

fn run_batch(jobs: &[Scenario]) -> Vec<Digest> {
    run_parallel(jobs, run_one)
}

fn main() {
    banner("CHAOS", "fixed-seed fault schedules: survival + runner determinism");
    let mut jobs = Vec::new();
    for seed in [11, 23, 47] {
        jobs.push(Scenario::Torus { seed });
    }
    for seed in [5, 17, 29, 61] {
        jobs.push(Scenario::DualHomed { seed, pkts: 4_000 });
    }
    for seed in [11, 23] {
        jobs.push(Scenario::ShardedTorus { seed });
    }
    for seed in [5, 17] {
        jobs.push(Scenario::ShardedDualHomed { seed, pkts: 4_000 });
    }

    std::env::set_var("MPTCP_JOBS", "1");
    let serial = run_batch(&jobs);
    std::env::set_var("MPTCP_JOBS", "4");
    let parallel = run_batch(&jobs);
    assert_eq!(serial, parallel, "MPTCP_JOBS=1 and MPTCP_JOBS=4 runs must be bit-identical");

    // Persist the digests so CI can `diff` them across feature builds: the
    // bitmap and `btree-scoreboard` flow-state layouts must produce the
    // same history down to the event count (DESIGN.md §3.2e).
    {
        use std::fmt::Write as _;
        let dir = mptcp_bench::report::trace_dir();
        std::fs::create_dir_all(&dir).expect("create trace dir");
        let path = dir.join("chaos_digest.txt");
        let mut body = String::new();
        for d in &serial {
            writeln!(body, "{} events={} faults={} state={:016x}", d.label, d.events, d.faults, d.state)
                .expect("format digest line");
        }
        std::fs::write(&path, body).expect("write chaos digest");
        println!("  digest file for cross-feature comparison: {}", path.display());
    }

    let mut t = Table::new(&["scenario", "events", "faults", "delivered", "reinject", "dups", "done"]);
    let mut all_ok = true;
    for d in &serial {
        let sized = d.label.contains("dual");
        let ok = !sized || d.finished.iter().all(|&f| f);
        all_ok &= ok;
        t.row(vec![
            d.label.clone(),
            d.events.to_string(),
            d.faults.to_string(),
            d.delivered.iter().sum::<u64>().to_string(),
            d.reinjected.iter().sum::<u64>().to_string(),
            d.dups.iter().sum::<u64>().to_string(),
            if sized {
                if ok { "yes".into() } else { "NO".into() }
            } else {
                "bulk".into()
            },
        ]);
    }
    t.print();
    assert!(all_ok, "every sized flow must complete under its fault schedule");
    println!("\n  parallel (MPTCP_JOBS=4) and serial (MPTCP_JOBS=1) digests identical over");
    println!("  {} scenarios — fault execution is part of the deterministic history,", jobs.len());
    println!("  and the sharded scenarios (storus/sdual) tie their intra-sim worker count");
    println!("  to MPTCP_JOBS, so jobs=1 vs jobs=N on a single sharded sim is gated too.");
}
