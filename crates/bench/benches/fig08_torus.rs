//! **Fig. 8 (§3)** — congestion balancing on the five-link torus.
//!
//! Five links of 1000 pkt/s (link C swept from 100 to 1000), RTT 100 ms,
//! buffers of one bandwidth-delay product, two 2-path flows per link. The
//! figure plots the loss-rate ratio p_A/p_C per algorithm; perfectly
//! balanced congestion means a ratio of 1.
//!
//! Paper shape: COUPLED balances best (ratio nearest 1), EWTCP worst,
//! MPTCP in between; at C = 100 pkt/s Jain's fairness index of the flow
//! rates is 0.99 (COUPLED), 0.986 (MPTCP), 0.92 (EWTCP).
//!
//! A final table reruns the hardest point (C = 100 pkt/s) for the
//! post-paper controller zoo ([`AlgorithmKind::zoo`]) — the coupled
//! successors (OLIA, BALIA) should balance like MPTCP or better, while
//! uncoupled CUBIC congests everything rather than balancing.

use mptcp_bench::{banner, f2, measure_goodput_pps, scaled, Table};
use mptcp_cc::fluid::fairness::jains_index;
use mptcp_cc::AlgorithmKind;
use mptcp_netsim::{SimTime, Simulator};
use mptcp_topology::Torus;

fn run_one(c_cap: f64, alg: AlgorithmKind, seed: u64) -> (f64, f64) {
    let mut sim = Simulator::new(seed);
    let caps = [1000.0, 1000.0, c_cap, 1000.0, 1000.0];
    let torus = Torus::build(&mut sim, caps, alg);
    let warmup = scaled(SimTime::from_secs(60));
    let window = scaled(SimTime::from_secs(240));
    let rates = measure_goodput_pps(&mut sim, &torus.flows, warmup, window);
    let ratio = torus.loss_ratio_a_over_c(&sim);
    (ratio, jains_index(&rates))
}

/// Loss-rate estimates are stochastic; average a few seeds per cell.
fn run(c_cap: f64, alg: AlgorithmKind, seed: u64) -> (f64, f64) {
    let runs: Vec<(f64, f64)> =
        (0..3).map(|k| run_one(c_cap, alg, seed + 100 * k)).collect();
    let n = runs.len() as f64;
    (
        runs.iter().map(|r| r.0).filter(|x| x.is_finite()).sum::<f64>() / n,
        runs.iter().map(|r| r.1).sum::<f64>() / n,
    )
}

fn main() {
    banner("FIG8", "torus loss-rate ratio p_A/p_C vs capacity of link C");
    let algs = [AlgorithmKind::Ewtcp, AlgorithmKind::Mptcp, AlgorithmKind::Coupled];
    let mut t = Table::new(&["C (pkt/s)", "EWTCP", "MPTCP", "COUPLED"]);
    let mut jain_at_100 = [0.0f64; 3];
    for (ci, &c) in [100.0, 250.0, 500.0, 750.0, 1000.0].iter().enumerate() {
        let mut cells = vec![format!("{c:.0}")];
        for (i, &alg) in algs.iter().enumerate() {
            let (ratio, jain) = run(c, alg, 42 + i as u64);
            if ci == 0 {
                // The C = 100 pkt/s column is the paper's Jain's-index row.
                jain_at_100[i] = jain;
            }
            cells.push(f2(ratio));
        }
        t.row(cells);
    }
    t.print();
    println!(
        "\n  paper shape: ratio(EWTCP) < ratio(MPTCP) < ratio(COUPLED) ≤ 1 as C shrinks"
    );
    println!("  (smaller C ⇒ C more congested ⇒ p_A/p_C < 1; closer to 1 = better balancing)");

    banner("FIG8-JAIN", "Jain's fairness index of flow rates at C = 100 pkt/s");
    let mut t = Table::new(&["algorithm", "paper", "measured"]);
    for (i, (alg, paper)) in
        [(algs[0], "0.92"), (algs[1], "0.986"), (algs[2], "0.99")].iter().enumerate()
    {
        t.row(vec![format!("{alg:?}"), paper.to_string(), f2(jain_at_100[i])]);
    }
    t.print();

    banner("FIG8-ZOO", "post-paper controllers at C = 100 pkt/s (no paper column)");
    let mut t = Table::new(&["algorithm", "p_A/p_C", "Jain"]);
    for (i, alg) in AlgorithmKind::zoo().into_iter().enumerate() {
        let (ratio, jain) = run(100.0, alg, 45 + i as u64);
        t.row(vec![format!("{alg:?}"), f2(ratio), f2(jain)]);
    }
    t.print();
    println!("\n  expected shape: coupled successors (OLIA, BALIA) balance like MPTCP or");
    println!("  better and lead on Jain; uncoupled CUBIC does not balance (ratio far from");
    println!("  1 on the high side); wVegas may see ~zero loss (delay-based), making its");
    println!("  ratio noise.");
}
