//! **§3 dynamic-load table (Fig. 9 scenario)** — adapting to bursty load.
//!
//! Two 100 Mb/s links (buffer 50 pkts, 10 ms RTT paths); one multipath
//! flow over both; on the top link a bursty CBR source sends at 100 Mb/s
//! for exponential on-periods of mean 10 ms, silent for mean 100 ms.
//!
//! Paper throughputs (Mb/s):
//!
//! |          | top link | bottom link |
//! |----------|---------:|------------:|
//! | EWTCP    |       85 |         100 |
//! | MPTCP    |       83 |        99.8 |
//! | COUPLED  |       55 |        99.4 |
//!
//! COUPLED does badly on the top link: once the burst pushes it off, its
//! probe traffic (1 pkt windows) rediscovers the free capacity too slowly
//! (§2.4's "trapped" pathology).

use mptcp_bench::{banner, mbps, scaled, Table};
use mptcp_cc::AlgorithmKind;
use mptcp_netsim::{CbrSpec, ConnectionSpec, LinkSpec, SimTime, Simulator};

fn run(alg: AlgorithmKind, seed: u64) -> (f64, f64) {
    let mut sim = Simulator::new(seed);
    let top = sim.add_link(LinkSpec::mbps(100.0, SimTime::from_millis(5), 50));
    let bottom = sim.add_link(LinkSpec::mbps(100.0, SimTime::from_millis(5), 50));
    let conn = sim.add_connection(ConnectionSpec::bulk(alg).path(vec![top]).path(vec![bottom]));
    sim.add_cbr(
        CbrSpec::constant(vec![top], 100e6)
            .onoff(SimTime::from_millis(10), SimTime::from_millis(100)),
    );
    let warmup = scaled(SimTime::from_secs(20));
    let window = scaled(SimTime::from_secs(120));
    sim.run_until(warmup);
    let before = sim.connection_stats(conn);
    let b0 = before.subflows[0].delivered_pkts;
    let b1 = before.subflows[1].delivered_pkts;
    sim.run_until(warmup + window);
    let after = sim.connection_stats(conn);
    let secs = window.as_secs_f64();
    let pkt_bits = after.packet_size as f64 * 8.0;
    (
        (after.subflows[0].delivered_pkts - b0) as f64 * pkt_bits / secs,
        (after.subflows[1].delivered_pkts - b1) as f64 * pkt_bits / secs,
    )
}

fn main() {
    banner("TAB_DYN", "§3 bursty-CBR adaptation (Fig. 9 scenario)");
    let mut t = Table::new(&[
        "algorithm",
        "top paper",
        "top measured",
        "bottom paper",
        "bottom measured",
    ]);
    for (alg, top_p, bot_p) in [
        (AlgorithmKind::Ewtcp, "85", "100"),
        (AlgorithmKind::Mptcp, "83", "99.8"),
        (AlgorithmKind::Coupled, "55", "99.4"),
    ] {
        let (top, bottom) = run(alg, 7);
        t.row(vec![
            format!("{alg:?}"),
            top_p.into(),
            mbps(top),
            bot_p.into(),
            mbps(bottom),
        ]);
    }
    t.print();
    println!("\n  paper shape: COUPLED clearly worst on the bursty top link;");
    println!("  EWTCP and MPTCP both track the free capacity closely.");
    println!("  (CBR mean load on top link ≈ 9 Mb/s, so ~91 Mb/s is attainable there.)");
}
