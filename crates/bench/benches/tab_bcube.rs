//! **§4 BCube table** — per-host throughput under TP1/TP2/TP3.
//!
//! BCube(n=5, k=2): 125 hosts × 3 interfaces, 25 five-port switches per
//! level; multipath uses the 3 edge-disjoint BCube paths, single-path the
//! BCube shortest route.
//!
//! Paper per-host throughputs (Mb/s):
//!
//! |             |  TP1 |  TP2 | TP3 |
//! |-------------|-----:|-----:|----:|
//! | SINGLE-PATH | 64.5 |  297 |  78 |
//! | EWTCP       |   84 |  229 | 139 |
//! | MPTCP       | 86.5 |  272 | 135 |
//!
//! Three phenomena (§4): multipath can use all three interfaces (clearest
//! in TP3); EWTCP fails to avoid congested longer paths (clearest in TP2);
//! shortest-hop single-path wins TP2 because the least-congested paths
//! happen to be shortest there.

use mptcp_bench::datacenter::{run_bcube, Routing, Tp};
use mptcp_bench::runner::run_parallel;
use mptcp_bench::{banner, f1, scaled, Table};
use mptcp_cc::AlgorithmKind;
use mptcp_netsim::SimTime;

fn main() {
    banner("TAB_BCUBE", "§4 BCube(n=5,k=2) per-host throughput, Mb/s");
    let warmup = scaled(SimTime::from_secs(2));
    let window = scaled(SimTime::from_secs(5));
    let rows: [(&str, Routing, [&str; 3]); 3] = [
        ("SINGLE-PATH", Routing::SinglePath, ["64.5", "297", "78"]),
        ("EWTCP", Routing::Multipath(AlgorithmKind::Ewtcp, 3), ["84", "229", "139"]),
        ("MPTCP", Routing::Multipath(AlgorithmKind::Mptcp, 3), ["86.5", "272", "135"]),
    ];
    let tps = [Tp::Permutation, Tp::OneToMany, Tp::Sparse];
    // Nine independent cells, fanned out over the parallel runner in
    // row-major order (results come back in job order).
    let jobs: Vec<(Routing, Tp)> =
        rows.iter().flat_map(|&(_, routing, _)| tps.map(|tp| (routing, tp))).collect();
    let results = run_parallel(&jobs, |&(routing, tp)| {
        run_bcube(5, 2, tp, routing, 19, warmup, window).mean_host_mbps()
    });
    let mut t = Table::new(&[
        "scheme", "TP1 paper", "TP1", "TP2 paper", "TP2", "TP3 paper", "TP3",
    ]);
    for (r, (name, _, paper)) in rows.iter().enumerate() {
        let mut cells = vec![name.to_string()];
        for (c, p) in paper.iter().enumerate() {
            cells.push(p.to_string());
            cells.push(f1(results[r * tps.len() + c]));
        }
        t.row(cells);
    }
    t.print();
    println!("\n  paper shape: multipath beats single-path on TP1 and (strongly) TP3");
    println!("  by using all three interfaces; on TP2 shortest-hop single-path wins;");
    println!("  MPTCP ≥ EWTCP on TP1/TP2 (congestion-aware path usage).");
}
