//! **§4 FatTree table** — per-host throughput under TP1/TP2/TP3.
//!
//! FatTree with k = 8 (128 hosts, 80 eight-port switches), 100 Mb/s links,
//! 8 random paths for multipath, random-shortest-path (ECMP mimic) for
//! single-path.
//!
//! Paper per-host throughputs (Mb/s):
//!
//! |             | TP1 | TP2  | TP3 |
//! |-------------|----:|-----:|----:|
//! | SINGLE-PATH |  51 |  94  |  60 |
//! | EWTCP       |  92 |  92.5|  99 |
//! | MPTCP       |  95 |  97  |  99 |

use mptcp_bench::datacenter::{run_fattree, Routing, Tp};
use mptcp_bench::{banner, f1, scaled, Table};
use mptcp_cc::AlgorithmKind;
use mptcp_netsim::SimTime;

fn main() {
    banner("TAB_FATTREE", "§4 FatTree(k=8) per-host throughput, Mb/s");
    let warmup = scaled(SimTime::from_secs(2));
    let window = scaled(SimTime::from_secs(5));
    let rows: [(&str, Routing, [&str; 3]); 3] = [
        ("SINGLE-PATH", Routing::SinglePath, ["51", "94", "60"]),
        ("EWTCP", Routing::Multipath(AlgorithmKind::Ewtcp, 8), ["92", "92.5", "99"]),
        ("MPTCP", Routing::Multipath(AlgorithmKind::Mptcp, 8), ["95", "97", "99"]),
    ];
    let tps = [Tp::Permutation, Tp::OneToMany, Tp::Sparse];
    let mut t = Table::new(&[
        "scheme", "TP1 paper", "TP1", "TP2 paper", "TP2", "TP3 paper", "TP3",
    ]);
    for (name, routing, paper) in rows {
        let mut cells = vec![name.to_string()];
        for (tp, p) in tps.iter().zip(paper) {
            let res = run_fattree(8, *tp, routing, 11, warmup, window);
            cells.push(p.to_string());
            cells.push(f1(res.mean_host_mbps()));
        }
        t.row(cells);
    }
    t.print();
    println!("\n  paper shape: multipath ≫ single-path on TP1 and TP3;");
    println!("  TP2 is NIC-bound so all schemes are close; MPTCP ≥ EWTCP throughout.");
}
