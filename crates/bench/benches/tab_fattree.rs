//! **§4 FatTree table** — per-host throughput under TP1/TP2/TP3.
//!
//! FatTree with k = 8 (128 hosts, 80 eight-port switches), 100 Mb/s links,
//! 8 random paths for multipath, random-shortest-path (ECMP mimic) for
//! single-path.
//!
//! Paper per-host throughputs (Mb/s):
//!
//! |             | TP1 | TP2  | TP3 |
//! |-------------|----:|-----:|----:|
//! | SINGLE-PATH |  51 |  94  |  60 |
//! | EWTCP       |  92 |  92.5|  99 |
//! | MPTCP       |  95 |  97  |  99 |
//!
//! The nine cells are independent simulations, so they fan out over the
//! parallel runner (`MPTCP_JOBS` pins the worker count; results come back
//! in job order, so the table is byte-identical to a serial run). Every
//! cell runs on **both** event-queue backends: the heap result must match
//! the wheel result bit-for-bit (determinism check), and the aggregate
//! events-per-wall-second comparison lands in `BENCH_sim.json`.

use mptcp_bench::datacenter::{run_fattree_with, DcResult, Routing, Tp};
use mptcp_bench::report::{merge_bench_sim, Record};
use mptcp_bench::runner::run_parallel;
use mptcp_bench::{banner, f1, f2, quick_mode, scaled, Table};
use mptcp_cc::AlgorithmKind;
use mptcp_netsim::{queue_churn, QueueBackend, SimPerf, SimTime};

fn main() {
    banner("TAB_FATTREE", "§4 FatTree(k=8) per-host throughput, Mb/s");
    let warmup = scaled(SimTime::from_secs(2));
    let window = scaled(SimTime::from_secs(5));
    let rows: [(&str, Routing, [&str; 3]); 3] = [
        ("SINGLE-PATH", Routing::SinglePath, ["51", "94", "60"]),
        ("EWTCP", Routing::Multipath(AlgorithmKind::Ewtcp, 8), ["92", "92.5", "99"]),
        ("MPTCP", Routing::Multipath(AlgorithmKind::Mptcp, 8), ["95", "97", "99"]),
    ];
    let tps = [Tp::Permutation, Tp::OneToMany, Tp::Sparse];

    // One job per (scheme, traffic pattern, backend): 9 cells × 2 backends.
    let jobs: Vec<(usize, usize, QueueBackend)> = (0..rows.len())
        .flat_map(|r| {
            (0..tps.len()).flat_map(move |c| {
                [QueueBackend::TimerWheel, QueueBackend::BinaryHeap]
                    .map(move |b| (r, c, b))
            })
        })
        .collect();
    let results: Vec<(DcResult, SimPerf)> = run_parallel(&jobs, |&(r, c, backend)| {
        run_fattree_with(8, tps[c], rows[r].1, 11, warmup, window, backend)
    });

    let mut t = Table::new(&[
        "scheme", "TP1 paper", "TP1", "TP2 paper", "TP2", "TP3 paper", "TP3",
    ]);
    let mut perf = [SimPerf::default(); 2]; // [wheel, heap] aggregates
    for (r, (name, _, paper)) in rows.iter().enumerate() {
        let mut cells = vec![name.to_string()];
        for (c, p) in paper.iter().enumerate() {
            let (wheel, wp) = &results[(r * tps.len() + c) * 2];
            let (heap, hp) = &results[(r * tps.len() + c) * 2 + 1];
            assert_eq!(
                wheel.per_flow_bps, heap.per_flow_bps,
                "{name}/TP{}: wheel and heap runs diverged — determinism broken",
                c + 1
            );
            for (agg, run) in perf.iter_mut().zip([wp, hp]) {
                agg.events_fired += run.events_fired;
                agg.wall += run.wall;
            }
            cells.push(p.to_string());
            cells.push(f1(wheel.mean_host_mbps()));
        }
        t.row(cells);
    }
    t.print();

    let eps = |p: &SimPerf| p.events_fired as f64 / p.wall.as_secs_f64();
    let (wheel_eps, heap_eps) = (eps(&perf[0]), eps(&perf[1]));
    println!("\n  paper shape: multipath ≫ single-path on TP1 and TP3;");
    println!("  TP2 is NIC-bound so all schemes are close; MPTCP ≥ EWTCP throughout.");
    println!(
        "\n  end-to-end: wheel {} Mev/s vs heap {} Mev/s over {} events ({}x)",
        f2(wheel_eps / 1e6),
        f2(heap_eps / 1e6),
        perf[0].events_fired,
        f2(wheel_eps / heap_eps),
    );

    // Scheduler-isolated comparison at this experiment's scale: churn the
    // bare queue with the largest pending set any cell actually reached.
    // The end-to-end ratio above dilutes the queue with per-event TCP work;
    // this one measures the data structure the tentpole replaced.
    let peak = results.iter().map(|(_, p)| p.peak_pending).max().unwrap_or(0).max(1024);
    let ops: u64 = 2_000_000;
    let wheel_q =
        ops as f64 / queue_churn(QueueBackend::TimerWheel, peak as usize, ops).as_secs_f64();
    let heap_q =
        ops as f64 / queue_churn(QueueBackend::BinaryHeap, peak as usize, ops).as_secs_f64();
    println!(
        "  queue only ({peak} pending): wheel {} Mev/s vs heap {} Mev/s ({}x)",
        f2(wheel_q / 1e6),
        f2(heap_q / 1e6),
        f2(wheel_q / heap_q),
    );
    merge_bench_sim(
        "tab_fattree/",
        &[
            // Each cell is one single-threaded simulation (the fan-out is
            // across cells) and `wall` sums per-cell walls, so the
            // aggregate events/sec here is per-core by construction:
            // jobs = 1 and the per-core field equals the aggregate.
            Record::new("tab_fattree/scheduler")
                .field("events", perf[0].events_fired)
                .field("peak_pending", peak)
                .field("jobs", 1u64)
                .field("wheel_events_per_sec", wheel_eps)
                .field("wheel_events_per_sec_per_core", wheel_eps)
                .field("heap_events_per_sec", heap_eps)
                .field("heap_events_per_sec_per_core", heap_eps)
                .field("speedup", wheel_eps / heap_eps)
                .field("quick", quick_mode()),
            Record::new("tab_fattree/queue_churn")
                .field("pending", peak)
                .field("ops", ops)
                .field("jobs", 1u64)
                .field("wheel_events_per_sec", wheel_q)
                .field("wheel_events_per_sec_per_core", wheel_q)
                .field("heap_events_per_sec", heap_q)
                .field("heap_events_per_sec_per_core", heap_q)
                .field("speedup", wheel_q / heap_q)
                .field("quick", quick_mode()),
        ],
    );
}
