//! Chaos tests for the userspace protocol stack: randomized lossy,
//! jittery and partitioned wires must never corrupt the stream and must
//! never hang `transfer`.
//!
//! The contract mirrors the simulator's fault chaos suite
//! (`crates/netsim/tests/fault_chaos.rs`) one layer up: whatever the
//! wires do — short of blacking out *every* path — the byte stream
//! arrives exactly once and in order, because loss detection, reinjection
//! and reassembly all work in the data sequence space. Case counts scale
//! with `MPTCP_CHAOS_CASES` for the nightly CI job.

use mptcp_proto::{EndpointConfig, Harness, Wire, WireFault};
use proptest::prelude::*;

fn chaos_cases() -> u32 {
    std::env::var("MPTCP_CHAOS_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(12)
}

fn payload(n: usize) -> Vec<u8> {
    (0..n).map(|i| (i % 251) as u8).collect()
}

#[derive(Debug, Clone)]
struct WirePlan {
    key: u64,
    seed0: u64,
    seed1: u64,
    delay0: u64,
    delay1: u64,
    /// Primary-path loss. Kept moderate so the handshake and the stream
    /// always have one usable path (an RTO marks the whole in-flight queue
    /// retransmitted, so under sustained heavy loss Karn's rule starves the
    /// RTT estimator and the backed-off RTO pushes completion times toward
    /// minutes); the secondary may be arbitrarily bad.
    loss0: f64,
    loss1: f64,
    jitter1: u64,
    /// Black-hole the secondary entirely from t = 0 (its SYN/JOIN never
    /// arrives — the connection must simply not use it).
    black1: bool,
    /// Strip MPTCP options on the secondary (middlebox): join fails,
    /// stream continues single-path.
    strip1: bool,
    size: usize,
}

fn wire_plan() -> impl Strategy<Value = WirePlan> {
    (
        (1_u64..1_000, 0_u64..1_000, 0_u64..1_000),
        (500_u64..8_000, 500_u64..12_000),
        (0.0_f64..0.12, 0.0_f64..0.9, 0_u64..4_000),
        any::<bool>(),
        any::<bool>(),
        8_000_usize..30_000,
    )
        .prop_map(|((key, seed0, seed1), (delay0, delay1), (loss0, loss1, jitter1), black1, strip1, size)| {
            WirePlan { key, seed0, seed1, delay0, delay1, loss0, loss1, jitter1, black1, strip1, size }
        })
}

fn build(plan: &WirePlan) -> Harness {
    let w0 = Wire::new(plan.delay0, plan.seed0).with_fault(WireFault::Loss(plan.loss0));
    let mut w1 = Wire::new(plan.delay1, plan.seed1)
        .with_fault(WireFault::Jitter(plan.jitter1))
        .with_fault(WireFault::Loss(if plan.black1 { 1.0 - 1e-12 } else { plan.loss1 }));
    if plan.strip1 {
        w1 = w1.with_fault(WireFault::StripOptions);
    }
    Harness::new(EndpointConfig::default(), vec![w0, w1], plan.key)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(chaos_cases()))]

    /// Whatever the wires do, `transfer` terminates with the exact byte
    /// stream — lossy handshakes retry, dead or stripped secondaries are
    /// simply not used, reinjection repairs stranded data.
    #[test]
    fn transfer_is_exactly_once_in_order_under_wire_chaos(plan in wire_plan()) {
        let mut h = build(&plan);
        let data = payload(plan.size);
        let got = h.transfer(&data, 4_000_000);
        prop_assert!(got.is_some(), "transfer hung under {:?}", plan);
        let got = got.unwrap();
        prop_assert_eq!(got.len(), data.len(), "no loss, no duplication");
        prop_assert_eq!(got, data, "stream must be byte-exact and in order");
    }

    /// Mid-transfer blackout of one path: the stream finishes on the
    /// survivor via reinjection, still exactly once and in order.
    #[test]
    fn mid_transfer_blackout_is_survived(
        key in 1_u64..1_000,
        seed in 0_u64..1_000,
        size in 60_000_usize..120_000,
        kill_at in 10_000_u64..30_000,
    ) {
        let cfg = EndpointConfig::default();
        let mut h = Harness::new(
            cfg,
            vec![Wire::new(3_000, seed), Wire::new(3_000, seed.wrapping_add(1))],
            key,
        );
        let data = payload(size);
        let mut received = Vec::new();
        let mut buf = [0u8; 4096];
        let mut written = 0;
        // Warm up until both subflows carry data, then cut the secondary.
        let mut warm = false;
        for _ in 0..1_000_000 {
            if h.client.peer_data_acked() >= kill_at {
                warm = true;
                break;
            }
            if written < data.len() {
                written += h.client.write(&data[written..]);
            }
            h.step();
            loop {
                let n = h.server.read(&mut buf);
                if n == 0 { break; }
                received.extend_from_slice(&buf[..n]);
            }
        }
        prop_assert!(warm, "warmup must make progress on clean wires");
        h.wires[1] = Wire::new(3_000, seed.wrapping_add(2))
            .with_fault(WireFault::Loss(1.0 - 1e-12));
        let mut closed = false;
        let done = (0..2_000_000).any(|_| {
            if written < data.len() {
                written += h.client.write(&data[written..]);
            } else if !closed {
                h.client.close();
                closed = true;
            }
            h.step();
            loop {
                let n = h.server.read(&mut buf);
                if n == 0 { break; }
                received.extend_from_slice(&buf[..n]);
            }
            closed && h.server.at_eof()
        });
        prop_assert!(done, "stream must survive the blackout");
        prop_assert_eq!(received, data, "exactly-once, in-order despite reinjection");
    }
}

/// Options stripped on *both* wires: the handshake can never negotiate
/// multipath. The endpoints must settle into regular-TCP fallback and
/// complete — a hang here would mean fallback detection leaks into the
/// steady state.
#[test]
fn fully_stripped_handshake_falls_back_and_completes() {
    let wires = vec![
        Wire::new(3_000, 1).with_fault(WireFault::StripOptions),
        Wire::new(3_000, 2).with_fault(WireFault::StripOptions),
    ];
    let mut h = Harness::new(EndpointConfig::default(), wires, 9);
    let data = payload(30_000);
    let got = h.transfer(&data, 300_000).expect("fallback transfer completes");
    assert_eq!(got, data);
    assert!(h.client.is_fallback() && h.server.is_fallback());
}
