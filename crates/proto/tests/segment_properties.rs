//! Property tests on the wire format: roundtrips, decoder robustness.

use mptcp_proto::{DecodeError, MptcpOption, SegFlags, Segment};
use proptest::prelude::*;

fn arb_option() -> impl Strategy<Value = MptcpOption> {
    prop_oneof![
        any::<u64>().prop_map(|key| MptcpOption::MpCapable { key }),
        (any::<u64>(), any::<bool>())
            .prop_map(|(token, backup)| MptcpOption::MpJoin { token, backup }),
        (prop::option::of(any::<u64>()), prop::option::of(any::<u64>()))
            .prop_map(|(data_seq, data_ack)| MptcpOption::Dss { data_seq, data_ack }),
        (any::<u8>(), any::<bool>(), any::<bool>()).prop_map(|(addr_id, backup, echo)| {
            MptcpOption::AddAddr { addr_id, backup, echo }
        }),
        (any::<u8>(), any::<bool>())
            .prop_map(|(addr_id, echo)| MptcpOption::RemoveAddr { addr_id, echo }),
    ]
}

fn arb_segment() -> impl Strategy<Value = Segment> {
    (
        any::<u32>(),
        any::<u32>(),
        any::<bool>(),
        any::<bool>(),
        any::<bool>(),
        any::<u32>(),
        prop::collection::vec(arb_option(), 0..4),
        prop::collection::vec(any::<u8>(), 0..2000),
    )
        .prop_map(|(seq, ack, syn, a, fin, window, options, payload)| Segment {
            subflow_seq: seq,
            subflow_ack: ack,
            flags: SegFlags { syn, ack: a, fin },
            window,
            options,
            payload,
        })
}

proptest! {
    /// Every well-formed segment encodes and decodes to itself.
    #[test]
    fn encode_decode_roundtrip(seg in arb_segment()) {
        let bytes = seg.encode();
        prop_assert_eq!(Segment::decode(&bytes).unwrap(), seg);
    }

    /// The decoder never panics on arbitrary bytes — it returns a typed
    /// error or a valid segment.
    #[test]
    fn decoder_is_total(bytes in prop::collection::vec(any::<u8>(), 0..4000)) {
        match Segment::decode(&bytes) {
            Ok(seg) => {
                // If it decoded, re-encoding must reproduce the input.
                prop_assert_eq!(seg.encode(), bytes);
            }
            Err(
                DecodeError::Truncated
                | DecodeError::BadFlags(_)
                | DecodeError::BadOption(_)
                | DecodeError::TrailingBytes(_),
            ) => {}
        }
    }

    /// Any prefix of a valid encoding fails to decode (no silent
    /// truncation).
    #[test]
    fn prefixes_are_rejected(seg in arb_segment(), cut_frac in 0.0_f64..1.0) {
        let bytes = seg.encode();
        let cut = ((bytes.len() as f64) * cut_frac) as usize;
        if cut < bytes.len() {
            prop_assert!(Segment::decode(&bytes[..cut]).is_err());
        }
    }

    /// Flipping one byte never panics the decoder.
    #[test]
    fn single_byte_corruption_is_safe(
        seg in arb_segment(),
        pos_frac in 0.0_f64..1.0,
        xor in 1_u8..=255,
    ) {
        let mut bytes = seg.encode();
        let pos = ((bytes.len() - 1) as f64 * pos_frac) as usize;
        bytes[pos] ^= xor;
        let _ = Segment::decode(&bytes); // must not panic
    }

    /// Truncating or garbling a segment that carries path-manager options
    /// (`ADD_ADDR`/`REMOVE_ADDR`) yields a clean decode error, never a
    /// panic or a silently different option. A wire that fails to decode a
    /// mangled segment simply drops it, so the connection degrades along
    /// the existing fallback/retransmit paths.
    #[test]
    fn garbled_path_options_error_cleanly(
        addr_id in any::<u8>(),
        backup in any::<bool>(),
        echo in any::<bool>(),
        remove in any::<bool>(),
        cut_frac in 0.0_f64..1.0,
        xor in 1_u8..=255,
        pos_frac in 0.0_f64..1.0,
    ) {
        let opt = if remove {
            MptcpOption::RemoveAddr { addr_id, echo }
        } else {
            MptcpOption::AddAddr { addr_id, backup, echo }
        };
        let seg = Segment { options: vec![opt], ..Segment::new() };
        let bytes = seg.encode();
        // Truncation anywhere inside the encoding must error.
        let cut = ((bytes.len() as f64) * cut_frac) as usize;
        if cut < bytes.len() {
            prop_assert!(Segment::decode(&bytes[..cut]).is_err());
        }
        // Arbitrary single-byte garbling must not panic; if it still
        // decodes, re-encoding reproduces the mangled bytes (no aliasing).
        let mut mangled = bytes.clone();
        let pos = ((mangled.len() - 1) as f64 * pos_frac) as usize;
        mangled[pos] ^= xor;
        if let Ok(decoded) = Segment::decode(&mangled) {
            prop_assert_eq!(decoded.encode(), mangled);
        }
    }
}
