//! Acceptance test for backup-path semantics (ISSUE PR 7, satellite 3).
//!
//! A dual-homed client runs one primary subflow (wire 0) and one backup
//! subflow (wire 1, negotiated at backup priority in the `MP_JOIN`). The
//! backup must stay warm but carry **zero data** while the primary is
//! healthy; when the primary blacks out for 15 s it must activate within
//! two RTOs of the failure clock starting, keep the stream moving, and
//! stand down once the primary revives — with exactly-once delivery
//! throughout.

use mptcp_proto::{Endpoint, EndpointConfig, Micros, Wire, WireFault};

const STEP_US: Micros = 500;
/// App-limited write rate: bytes offered per driver step.
const WRITE_PER_STEP: usize = 600;

struct Driver {
    client: Endpoint,
    server: Endpoint,
    wires: Vec<Wire>,
    now: Micros,
    data: Vec<u8>,
    written: usize,
    received: Vec<u8>,
    writing: bool,
    closed: bool,
}

impl Driver {
    fn new(cfg: EndpointConfig) -> Self {
        let mut client = Endpoint::client(cfg, 2, 7);
        let server = Endpoint::server(cfg, 2, 7);
        // Subflow 1 joins at backup priority from the start.
        client.defer_join(1);
        client.join_subflow(1, true);
        Driver {
            client,
            server,
            wires: vec![Wire::new(2_000, 1), Wire::new(3_000, 2)],
            now: 0,
            data: Vec::new(),
            written: 0,
            received: Vec::new(),
            writing: true,
            closed: false,
        }
    }

    fn step(&mut self) {
        self.now += STEP_US;
        if self.writing {
            let fresh: Vec<u8> = (self.data.len()..self.data.len() + WRITE_PER_STEP)
                .map(|i| (i % 251) as u8)
                .collect();
            self.data.extend_from_slice(&fresh);
        }
        if self.written < self.data.len() {
            self.written += self.client.write(&self.data[self.written..]);
        } else if !self.writing && !self.closed {
            self.client.close();
            self.closed = true;
        }
        for (i, w) in self.wires.iter_mut().enumerate() {
            for seg in w.recv_a(self.now) {
                self.client.on_segment(self.now, i, seg);
            }
            for seg in w.recv_b(self.now) {
                self.server.on_segment(self.now, i, seg);
            }
        }
        for (sub, seg) in self.client.poll(self.now) {
            self.wires[sub].send_a(self.now, seg);
        }
        for (sub, seg) in self.server.poll(self.now) {
            self.wires[sub].send_b(self.now, seg);
        }
        let mut buf = [0u8; 4096];
        loop {
            let n = self.server.read(&mut buf);
            if n == 0 {
                break;
            }
            self.received.extend_from_slice(&buf[..n]);
        }
    }

    fn run(&mut self, steps: usize) {
        for _ in 0..steps {
            self.step();
        }
    }
}

#[test]
fn backup_stays_cold_activates_on_blackout_stands_down_on_revival() {
    let cfg = EndpointConfig::default();
    let mut d = Driver::new(cfg);

    // --- Phase A: 2 s healthy. Backup established but carries no data. ---
    d.run(4_000);
    let cs = d.client.stats();
    assert!(cs.subflows[0].established && cs.subflows[1].established);
    assert!(cs.subflows[1].backup, "subflow 1 negotiated as backup");
    assert!(d.server.stats().subflows[1].backup, "server learned backup priority");
    assert_eq!(
        cs.subflows[1].data_bytes_sent, 0,
        "backup must carry zero data while primaries are healthy"
    );
    assert!(!d.client.backup_active());
    assert!(cs.subflows[0].data_bytes_sent > 0, "primary carries the stream");
    let received_pre_blackout = d.received.len();

    // --- Phase B: primary blacks out for 15 s. ---
    d.wires[0] = Wire::new(2_000, 101).with_fault(WireFault::Loss(1.0 - 1e-12));
    d.run(30_000);
    let cs = d.client.stats();
    assert!(d.client.backup_active(), "failover must engage during the blackout");
    assert_eq!(cs.backup_activations, 1, "exactly one activation");
    assert!(cs.subflows[1].data_bytes_sent > 0, "backup now carries the stream");
    let lat = cs.failover_latency_us.expect("failover latency recorded");
    // The failure clock starts at the first unanswered primary RTO; the
    // subflow is potentially-failed at the second (backed-off) RTO, so the
    // latency is bounded by two minimum RTOs plus a step of slack.
    assert!(
        lat <= 2 * cfg.min_rto + 2 * STEP_US,
        "failover latency {lat} µs exceeds two RTOs"
    );
    assert!(
        d.received.len() > received_pre_blackout + 1_000_000,
        "the stream must keep moving on the backup during the blackout"
    );

    // --- Phase C: primary revives; backups stand down. The revival is
    // detected by the primary's own backed-off RTO retransmit, which after
    // a 15 s blackout can sit up to ~11 s out — give it 13 s. ---
    d.wires[0] = Wire::new(2_000, 102);
    d.run(26_000);
    let cs = d.client.stats();
    assert!(!d.client.backup_active(), "backups stand down once a primary revives");
    assert_eq!(cs.backup_activations, 1, "revival must not re-count activations");
    assert!(!cs.subflows[0].potentially_failed, "primary is healthy again");

    // --- Drain: finish the stream, assert exactly-once delivery. ---
    d.writing = false;
    for _ in 0..400_000 {
        d.step();
        if d.closed && d.server.at_eof() && d.client.send_complete() {
            break;
        }
    }
    assert!(
        d.closed && d.server.at_eof(),
        "transfer must complete after recovery: closed={} written={}/{} recvd={} client={:?} server={:?}",
        d.closed,
        d.written,
        d.data.len(),
        d.received.len(),
        d.client.stats(),
        d.server.stats()
    );
    assert_eq!(d.received, d.data, "byte-exact, zero duplicate deliveries");
    assert_eq!(
        d.server.stats().data_received as usize,
        d.data.len(),
        "exactly-once accounting on the receiver"
    );
}
