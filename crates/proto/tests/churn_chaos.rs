//! Chaos tests for runtime path management: seeded randomized endpoint
//! churn — addresses advertised and withdrawn, subflows joined and torn
//! down at either end, wires blacked out and restored — interleaved with
//! an ongoing transfer must deliver the stream byte-exact and exactly
//! once, never hang, and reproduce the same wire digest run over run.
//!
//! The generator keeps the schedules live by construction: address 0
//! (the initial subflow) is never withdrawn and wire 0 never faulted, and
//! every blackout of a secondary wire is paired with a restore a bounded
//! number of steps later. Within that envelope anything goes, in any
//! order, including withdrawing addresses that were never advertised and
//! re-joining subflows that are mid-teardown. Case counts scale with
//! `MPTCP_CHAOS_CASES` for the nightly CI job.

use mptcp_proto::scenarios::{run_endpoint_churn, ChurnAction, ChurnEvent};
use mptcp_proto::EndpointConfig;
use proptest::prelude::*;

fn chaos_cases() -> u32 {
    std::env::var("MPTCP_CHAOS_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(12)
}

/// One raw generated action; `expand` turns it into live-safe events.
#[derive(Debug, Clone, Copy)]
enum RawAction {
    Advertise { addr_id: u8, backup: bool },
    Withdraw { addr_id: u8 },
    ClientClose { addr_id: u8 },
    ClientJoin { addr_id: u8, backup: bool },
    /// Blackout of wire `wire`, restored `gap` steps later.
    Outage { wire: u8, gap: u16, delay_us: u16 },
}

#[derive(Debug, Clone)]
struct ChurnPlan {
    n_wires: usize,
    data_len: usize,
    events: Vec<ChurnEvent>,
}

fn raw_action(n_wires: u8) -> impl Strategy<Value = RawAction> {
    // Secondary addresses/wires only: index 0 stays untouched for liveness.
    let addr = 1..n_wires;
    prop_oneof![
        (addr.clone(), any::<bool>())
            .prop_map(|(addr_id, backup)| RawAction::Advertise { addr_id, backup }),
        addr.clone().prop_map(|addr_id| RawAction::Withdraw { addr_id }),
        addr.clone().prop_map(|addr_id| RawAction::ClientClose { addr_id }),
        (addr.clone(), any::<bool>())
            .prop_map(|(addr_id, backup)| RawAction::ClientJoin { addr_id, backup }),
        (addr, 200_u16..1_200, 100_u16..8_000)
            .prop_map(|(wire, gap, delay_us)| RawAction::Outage { wire, gap, delay_us }),
    ]
}

fn churn_plan() -> impl Strategy<Value = ChurnPlan> {
    (2_u8..4).prop_flat_map(|n_wires| {
        (
            30_000_usize..80_000,
            prop::collection::vec((0_usize..1_000, raw_action(n_wires)), 1..8),
        )
            .prop_map(move |(data_len, raw)| {
                let mut events = Vec::new();
                for (at_step, action) in raw {
                    match action {
                        RawAction::Advertise { addr_id, backup } => events.push(ChurnEvent {
                            at_step,
                            action: ChurnAction::Advertise { addr_id, backup },
                        }),
                        RawAction::Withdraw { addr_id } => events.push(ChurnEvent {
                            at_step,
                            action: ChurnAction::Withdraw { addr_id },
                        }),
                        RawAction::ClientClose { addr_id } => events.push(ChurnEvent {
                            at_step,
                            action: ChurnAction::ClientClose { addr_id },
                        }),
                        RawAction::ClientJoin { addr_id, backup } => events.push(ChurnEvent {
                            at_step,
                            action: ChurnAction::ClientJoin { addr_id, backup },
                        }),
                        RawAction::Outage { wire, gap, delay_us } => {
                            events.push(ChurnEvent {
                                at_step,
                                action: ChurnAction::Blackout { wire: wire as usize },
                            });
                            events.push(ChurnEvent {
                                at_step: at_step + gap as usize,
                                action: ChurnAction::Restore {
                                    wire: wire as usize,
                                    delay_us: delay_us as u64,
                                },
                            });
                        }
                    }
                }
                ChurnPlan { n_wires: n_wires as usize, data_len, events }
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(chaos_cases()))]

    /// Whatever the churn schedule does, the transfer terminates with the
    /// exact byte stream, accounted exactly once, and the whole run —
    /// every segment on every wire — is digest-reproducible.
    #[test]
    fn churn_is_exactly_once_and_reproducible(plan in churn_plan()) {
        // 100 B/step app-limits the sender, so a 30–80 kB stream spans
        // 300–800 steps and the schedule lands while data is in flight.
        let run = || run_endpoint_churn(
            EndpointConfig::default(),
            plan.n_wires,
            &plan.events,
            plan.data_len,
            100,
            600_000,
        );
        let a = run();
        prop_assert!(a.completed, "transfer hung under churn {:?}: {:?}", plan, a.steps);
        prop_assert!(a.byte_exact, "stream corrupted under churn {:?}", plan);
        prop_assert_eq!(
            a.server.data_received as usize, plan.data_len,
            "exactly-once accounting violated under churn"
        );
        let b = run();
        prop_assert_eq!(a, b, "churn replay must be digest-identical");
    }
}
