//! The path manager: runtime address advertisement and subflow lifecycle.
//!
//! Real MPTCP stacks do not fix their subflows at connect time: a *path
//! manager* advertises additional addresses (`ADD_ADDR`), withdraws them
//! (`REMOVE_ADDR`), and joins or tears down subflows while the connection
//! runs — the `ip mptcp` endpoint model of the Linux kernel. This module
//! implements that surface for the userspace endpoint:
//!
//! * an **endpoint table** of [`PathEndpoint`]s with the kernel's flags
//!   (`signal` / `subflow` / `backup` / `fullmesh`) and a per-connection
//!   subflow limit;
//! * deterministic **advertisement retransmission**: every `ADD_ADDR` and
//!   `REMOVE_ADDR` carries an echo bit and is retransmitted on a fixed
//!   [`ADVERT_RTO`] until the peer's echo arrives (RFC 8684 echoes
//!   `ADD_ADDR` only; we extend the rule to `REMOVE_ADDR` so withdrawals
//!   are equally loss-proof — the difference is documented on
//!   [`crate::segment::MptcpOption::RemoveAddr`]);
//! * a [`PathEvent`] stream telling the owning [`crate::Endpoint`] which
//!   joins and teardowns a received option implies.
//!
//! Addresses are identified by `addr_id`, which in this flat model is the
//! wire/subflow index shared by both ends — there is no address rewriting
//! between the endpoints, so no token-to-address indirection is needed.

use crate::segment::MptcpOption;
use crate::Micros;

/// Retransmission interval for unacknowledged `ADD_ADDR`/`REMOVE_ADDR`
/// advertisements (same fixed timer as the handshake's SYN retransmit).
pub const ADVERT_RTO: Micros = 500_000;

/// Endpoint flags, mirroring `ip mptcp endpoint add … [signal|subflow|
/// backup|fullmesh]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PathFlags {
    /// Advertise this endpoint to the peer via `ADD_ADDR`.
    pub signal: bool,
    /// Initiate a subflow from this endpoint at connect time.
    pub subflow: bool,
    /// Subflows on this endpoint run at backup priority: kept warm at the
    /// SYN/ACK level but carrying no data while any non-backup subflow is
    /// healthy.
    pub backup: bool,
    /// Join this endpoint against every address the peer advertises (in
    /// the flat wire model this collapses to "always willing to join").
    pub fullmesh: bool,
}

/// One row of the endpoint table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PathEndpoint {
    /// Stable identifier; equals the wire/subflow index in this model.
    pub addr_id: u8,
    /// Behavior flags.
    pub flags: PathFlags,
}

/// What kind of advertisement is pending.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AdvertKind {
    Add { backup: bool },
    Remove,
}

/// A signed advertisement awaiting the peer's echo.
#[derive(Debug, Clone, Copy)]
struct Advert {
    addr_id: u8,
    kind: AdvertKind,
    /// Last transmission time (`None` = never sent).
    sent_at: Option<Micros>,
    echoed: bool,
}

/// Action a received path-manager option implies for the owning endpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PathEvent {
    /// Peer advertised `addr_id`: join a subflow there (subject to the
    /// local subflow limit and role).
    Join {
        /// Advertised address identifier.
        addr_id: u8,
        /// Join at backup priority.
        backup: bool,
    },
    /// Peer withdrew `addr_id`: tear the corresponding subflow down.
    Close {
        /// Withdrawn address identifier.
        addr_id: u8,
    },
}

/// Per-connection path-management state: the endpoint table, the subflow
/// limit, and the advertisement retransmission machinery.
#[derive(Debug)]
pub struct PathManager {
    endpoints: Vec<PathEndpoint>,
    subflow_limit: usize,
    adverts: Vec<Advert>,
    /// Echoes owed to the peer, sent on the next outgoing opportunity.
    pending_echo: Vec<MptcpOption>,
    /// Distinct `ADD_ADDR` advertisements first transmitted.
    addr_advertised: u64,
}

impl PathManager {
    /// A manager allowing up to `subflow_limit` concurrent subflows.
    pub fn new(subflow_limit: usize) -> Self {
        assert!(subflow_limit >= 1, "need at least one subflow");
        Self {
            endpoints: Vec::new(),
            subflow_limit,
            adverts: Vec::new(),
            pending_echo: Vec::new(),
            addr_advertised: 0,
        }
    }

    /// Register an endpoint in the table (replaces an existing row with
    /// the same `addr_id`).
    pub fn add_endpoint(&mut self, ep: PathEndpoint) {
        if let Some(row) = self.endpoints.iter_mut().find(|e| e.addr_id == ep.addr_id) {
            *row = ep;
        } else {
            self.endpoints.push(ep);
        }
    }

    /// The endpoint table.
    pub fn endpoints(&self) -> &[PathEndpoint] {
        &self.endpoints
    }

    /// Table row for `addr_id`, if registered.
    pub fn endpoint(&self, addr_id: u8) -> Option<&PathEndpoint> {
        self.endpoints.iter().find(|e| e.addr_id == addr_id)
    }

    /// Maximum concurrent subflows this connection may run.
    pub fn subflow_limit(&self) -> usize {
        self.subflow_limit
    }

    /// Distinct `ADD_ADDR` advertisements transmitted at least once.
    pub fn addr_advertised(&self) -> u64 {
        self.addr_advertised
    }

    /// Queue an `ADD_ADDR` advertisement for `addr_id`. Supersedes any
    /// pending withdrawal of the same address.
    pub fn advertise(&mut self, addr_id: u8, backup: bool) {
        self.adverts.retain(|a| a.addr_id != addr_id);
        self.adverts.push(Advert {
            addr_id,
            kind: AdvertKind::Add { backup },
            sent_at: None,
            echoed: false,
        });
    }

    /// Queue a `REMOVE_ADDR` withdrawal for `addr_id`. Supersedes any
    /// pending advertisement of the same address.
    pub fn withdraw(&mut self, addr_id: u8) {
        self.adverts.retain(|a| a.addr_id != addr_id);
        self.adverts.push(Advert { addr_id, kind: AdvertKind::Remove, sent_at: None, echoed: false });
    }

    /// Whether any advertisement or echo still needs to go out (or be
    /// retransmitted).
    pub fn has_pending(&self) -> bool {
        !self.pending_echo.is_empty() || self.adverts.iter().any(|a| !a.echoed)
    }

    /// Earliest time an unacknowledged advertisement becomes due again
    /// (`None` when nothing is pending; `Some(0)` when something is due
    /// immediately).
    pub fn next_deadline(&self) -> Option<Micros> {
        if !self.pending_echo.is_empty() {
            return Some(0);
        }
        self.adverts
            .iter()
            .filter(|a| !a.echoed)
            .map(|a| a.sent_at.map_or(0, |t| t + ADVERT_RTO))
            .min()
    }

    /// Options due for transmission at `now`: owed echoes plus every
    /// unacknowledged advertisement never sent or silent for
    /// [`ADVERT_RTO`]. Transmission times are stamped here, so only call
    /// when the options will actually be put on a wire.
    pub fn due_options(&mut self, now: Micros) -> Vec<MptcpOption> {
        let mut out = std::mem::take(&mut self.pending_echo);
        for a in &mut self.adverts {
            if a.echoed {
                continue;
            }
            let due = a.sent_at.is_none_or(|t| now >= t + ADVERT_RTO);
            if !due {
                continue;
            }
            if a.sent_at.is_none() {
                if let AdvertKind::Add { .. } = a.kind {
                    self.addr_advertised += 1;
                }
            }
            a.sent_at = Some(now);
            out.push(match a.kind {
                AdvertKind::Add { backup } => {
                    MptcpOption::AddAddr { addr_id: a.addr_id, backup, echo: false }
                }
                AdvertKind::Remove => MptcpOption::RemoveAddr { addr_id: a.addr_id, echo: false },
            });
        }
        out
    }

    /// Ingest one received option. Non-echo advertisements queue the owed
    /// echo and return the implied action; echoes retire the matching
    /// pending advertisement.
    pub fn on_option(&mut self, opt: &MptcpOption) -> Option<PathEvent> {
        match *opt {
            MptcpOption::AddAddr { addr_id, backup, echo: false } => {
                self.pending_echo.push(MptcpOption::AddAddr { addr_id, backup, echo: true });
                Some(PathEvent::Join { addr_id, backup })
            }
            MptcpOption::AddAddr { addr_id, echo: true, .. } => {
                self.mark_echoed(addr_id, true);
                None
            }
            MptcpOption::RemoveAddr { addr_id, echo: false } => {
                self.pending_echo.push(MptcpOption::RemoveAddr { addr_id, echo: true });
                Some(PathEvent::Close { addr_id })
            }
            MptcpOption::RemoveAddr { addr_id, echo: true } => {
                self.mark_echoed(addr_id, false);
                None
            }
            _ => None,
        }
    }

    fn mark_echoed(&mut self, addr_id: u8, add: bool) {
        for a in &mut self.adverts {
            let matches = a.addr_id == addr_id
                && match a.kind {
                    AdvertKind::Add { .. } => add,
                    AdvertKind::Remove => !add,
                };
            if matches {
                a.echoed = true;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advert_retransmits_until_echoed() {
        let mut pm = PathManager::new(4);
        pm.advertise(1, false);
        let first = pm.due_options(1_000);
        assert_eq!(first, vec![MptcpOption::AddAddr { addr_id: 1, backup: false, echo: false }]);
        assert!(pm.due_options(1_000 + ADVERT_RTO - 1).is_empty(), "not due yet");
        let again = pm.due_options(1_000 + ADVERT_RTO);
        assert_eq!(again.len(), 1, "unacknowledged advert must retransmit");
        assert_eq!(pm.addr_advertised(), 1, "retransmit is not a new advertisement");
        pm.on_option(&MptcpOption::AddAddr { addr_id: 1, backup: false, echo: true });
        assert!(pm.due_options(10 * ADVERT_RTO).is_empty(), "echo stops the retransmit");
        assert!(!pm.has_pending());
    }

    #[test]
    fn received_advert_queues_echo_and_join_event() {
        let mut pm = PathManager::new(4);
        let ev = pm.on_option(&MptcpOption::AddAddr { addr_id: 2, backup: true, echo: false });
        assert_eq!(ev, Some(PathEvent::Join { addr_id: 2, backup: true }));
        let out = pm.due_options(0);
        assert_eq!(out, vec![MptcpOption::AddAddr { addr_id: 2, backup: true, echo: true }]);
    }

    #[test]
    fn withdrawal_supersedes_advert_and_is_echoed_separately() {
        let mut pm = PathManager::new(4);
        pm.advertise(3, false);
        pm.withdraw(3);
        let out = pm.due_options(0);
        assert_eq!(out, vec![MptcpOption::RemoveAddr { addr_id: 3, echo: false }]);
        // An AddAddr echo must not retire the pending withdrawal.
        pm.on_option(&MptcpOption::AddAddr { addr_id: 3, backup: false, echo: true });
        assert!(pm.has_pending());
        pm.on_option(&MptcpOption::RemoveAddr { addr_id: 3, echo: true });
        assert!(!pm.has_pending());
        let ev = pm.on_option(&MptcpOption::RemoveAddr { addr_id: 3, echo: false });
        assert_eq!(ev, Some(PathEvent::Close { addr_id: 3 }));
    }

    #[test]
    fn endpoint_table_replaces_by_addr_id() {
        let mut pm = PathManager::new(2);
        pm.add_endpoint(PathEndpoint {
            addr_id: 1,
            flags: PathFlags { subflow: true, ..Default::default() },
        });
        pm.add_endpoint(PathEndpoint {
            addr_id: 1,
            flags: PathFlags { backup: true, ..Default::default() },
        });
        assert_eq!(pm.endpoints().len(), 1);
        assert!(pm.endpoint(1).unwrap().flags.backup);
        assert_eq!(pm.subflow_limit(), 2);
    }
}
