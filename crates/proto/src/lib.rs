//! # mptcp-proto — the Multipath TCP protocol layer of §6
//!
//! The paper's §6 describes the protocol changes TCP needs to carry one
//! data stream over several subflows, and argues that "careful
//! consideration of corner cases forced us to our specific implementation".
//! This crate implements that design as a userspace endpoint, and also
//! implements the *rejected* design alternatives behind feature switches so
//! the corner cases can be demonstrated as executable tests:
//!
//! * **Dual sequence spaces** — subflow sequence numbers in the header for
//!   loss detection and fast retransmission, plus a 64-bit **data sequence
//!   number** carried in a TCP-option-like structure ([`segment::MptcpOption::Dss`])
//!   for stream reassembly. A middlebox that rewrites one subflow's initial
//!   sequence number (the `pf` firewall example) therefore cannot corrupt
//!   the stream — see [`wire::WireFault::RewriteIsn`] and the tests.
//! * **Explicit data ACKs** as options, not inferred from subflow ACKs and
//!   not embedded in the payload. The §6 inference counterexample (ACK
//!   reordering makes the receive-window's trailing edge unrecoverable) and
//!   the payload-encoding deadlock are both reproduced in tests.
//! * **A single shared receive buffer**, with the advertised window
//!   measured from the data-level cumulative ACK. The per-subflow-buffer
//!   deadlock (subflow 1 stalls, subflow 2's buffer fills, the missing
//!   packet can no longer be delivered) is reproduced with the
//!   per-subflow-buffer mode switched on.
//! * **Subflow establishment** with `MP_CAPABLE`/`MP_JOIN`-style options and
//!   graceful **fallback to regular TCP** when a middlebox strips them.
//! * **Reinjection**: data unacknowledged at the data level may be
//!   retransmitted on a different subflow after a subflow RTO, so one dead
//!   path cannot stall the connection.
//!
//! Congestion control is pluggable via [`mptcp_cc::MultipathCc`]; the
//! endpoint drives it with the same ACK/loss events the simulator uses.
//!
//! Everything is poll-based (smoltcp-style): [`endpoint::Endpoint::poll`]
//! returns segments to transmit, [`endpoint::Endpoint::on_segment`] ingests
//! arrivals, and [`wire::Wire`] provides a deterministic lossy/reordering
//! in-memory path for tests and examples.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod endpoint;
pub mod harness;
pub mod path;
pub mod scenarios;
pub mod segment;
pub mod wire;

pub use endpoint::{Endpoint, EndpointConfig, EndpointStats, RecvBufferMode, SubflowStats};
pub use path::{PathEndpoint, PathEvent, PathFlags, PathManager, ADVERT_RTO};
pub use harness::Harness;
pub use segment::{DecodeError, MptcpOption, SegFlags, Segment};
pub use wire::{Wire, WireFault};

/// Protocol time: microseconds since an arbitrary origin. The protocol
/// layer is driven explicitly (poll-based), so this is just a number the
/// harness advances.
pub type Micros = u64;
