//! A deterministic in-memory path with middlebox misbehaviour.
//!
//! One `Wire` carries one subflow's segments in one direction…no — both
//! directions: each direction has its own queue. Faults model the §6
//! middleboxes: random loss, reordering, option stripping (a firewall that
//! does not understand MPTCP options), and initial-sequence-number
//! rewriting (the `pf` example: "the pf firewall can re-write TCP sequence
//! numbers to improve the randomness of the initial sequence number").

use crate::segment::Segment;
use crate::Micros;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BinaryHeap;

/// Middlebox / path misbehaviours a wire can apply.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WireFault {
    /// Drop each segment with this probability.
    Loss(f64),
    /// Delay each segment by an extra uniform amount in `[0, max_us]`,
    /// which reorders segments relative to each other.
    Jitter(Micros),
    /// Strip every MPTCP option (firewall that sanitizes unknown options).
    /// SYN segments lose their capability/join options → fallback.
    StripOptions,
    /// Rewrite endpoint A's initial sequence number by a fixed offset, as
    /// `pf` does when randomizing ISNs: segments A→B get `seq += offset`,
    /// and the ACK numbers B→A (which reference A's space) get
    /// `ack -= offset`, so the rewrite is transparent to both plain-TCP
    /// endpoints. The data sequence numbers in options are untouched —
    /// which is precisely why MPTCP carries them separately: a design that
    /// striped ONE sequence space across subflows could not survive this
    /// middlebox (§6 "Loss Detection and Stream Reassembly").
    RewriteIsn(u32),
}

#[derive(Debug)]
struct InFlight {
    deliver_at: Micros,
    tie: u64,
    seg: Segment,
}

impl PartialEq for InFlight {
    fn eq(&self, other: &Self) -> bool {
        self.deliver_at == other.deliver_at && self.tie == other.tie
    }
}
impl Eq for InFlight {}
impl PartialOrd for InFlight {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for InFlight {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Min-heap: earliest delivery first.
        other.deliver_at.cmp(&self.deliver_at).then(other.tie.cmp(&self.tie))
    }
}

/// One direction of a subflow path.
#[derive(Debug)]
struct Direction {
    queue: BinaryHeap<InFlight>,
    tie: u64,
}

impl Direction {
    fn new() -> Self {
        Self { queue: BinaryHeap::new(), tie: 0 }
    }
}

/// A bidirectional, faulty, deterministic in-memory path.
#[derive(Debug)]
pub struct Wire {
    /// Base one-way delay.
    pub delay: Micros,
    faults: Vec<WireFault>,
    a_to_b: Direction,
    b_to_a: Direction,
    rng: StdRng,
    /// Segments dropped so far (both directions).
    pub dropped: u64,
    /// Segments carried so far (both directions).
    pub carried: u64,
}

impl Wire {
    /// A clean wire with the given one-way delay.
    pub fn new(delay: Micros, seed: u64) -> Self {
        Self {
            delay,
            faults: Vec::new(),
            a_to_b: Direction::new(),
            b_to_a: Direction::new(),
            rng: StdRng::seed_from_u64(seed),
            dropped: 0,
            carried: 0,
        }
    }

    /// Add a fault.
    pub fn with_fault(mut self, fault: WireFault) -> Self {
        self.faults.push(fault);
        self
    }

    /// Send a segment from endpoint A toward endpoint B at time `now`.
    pub fn send_a(&mut self, now: Micros, seg: Segment) {
        self.send(true, now, seg);
    }

    /// Send a segment from endpoint B toward endpoint A at time `now`.
    pub fn send_b(&mut self, now: Micros, seg: Segment) {
        self.send(false, now, seg);
    }

    fn send(&mut self, from_a: bool, now: Micros, mut seg: Segment) {
        self.carried += 1;
        let mut deliver_at = now + self.delay;
        for fault in &self.faults {
            match *fault {
                WireFault::Loss(p) => {
                    if self.rng.gen::<f64>() < p {
                        self.dropped += 1;
                        return;
                    }
                }
                WireFault::Jitter(max_us) => {
                    deliver_at += self.rng.gen_range(0..=max_us);
                }
                WireFault::StripOptions => {
                    seg.options.clear();
                }
                WireFault::RewriteIsn(offset) => {
                    if from_a {
                        seg.subflow_seq = seg.subflow_seq.wrapping_add(offset);
                    } else if seg.flags.ack {
                        seg.subflow_ack = seg.subflow_ack.wrapping_sub(offset);
                    }
                }
            }
        }
        // Model the middlebox at byte level: encode/decode roundtrip keeps
        // the wire format honest.
        let seg = Segment::decode(&seg.encode()).expect("wire format roundtrips");
        let dir = if from_a { &mut self.a_to_b } else { &mut self.b_to_a };
        dir.tie += 1;
        dir.queue.push(InFlight { deliver_at, tie: dir.tie, seg });
    }

    /// Segments due at endpoint B by `now` (sent by A).
    pub fn recv_b(&mut self, now: Micros) -> Vec<Segment> {
        Self::drain(&mut self.a_to_b, now)
    }

    /// Segments due at endpoint A by `now` (sent by B).
    pub fn recv_a(&mut self, now: Micros) -> Vec<Segment> {
        Self::drain(&mut self.b_to_a, now)
    }

    fn drain(dir: &mut Direction, now: Micros) -> Vec<Segment> {
        let mut out = Vec::new();
        while dir.queue.peek().is_some_and(|f| f.deliver_at <= now) {
            out.push(dir.queue.pop().unwrap().seg);
        }
        out
    }

    /// Whether anything is still in flight.
    pub fn idle(&self) -> bool {
        self.a_to_b.queue.is_empty() && self.b_to_a.queue.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::segment::{MptcpOption, SegFlags};

    fn seg(seq: u32) -> Segment {
        Segment {
            subflow_seq: seq,
            flags: SegFlags { ack: true, ..Default::default() },
            subflow_ack: 7,
            options: vec![MptcpOption::Dss { data_seq: Some(seq as u64), data_ack: None }],
            payload: vec![1, 2, 3],
            ..Segment::new()
        }
    }

    #[test]
    fn delivers_after_delay_in_order() {
        let mut w = Wire::new(1000, 0);
        w.send_a(0, seg(1));
        w.send_a(10, seg(2));
        assert!(w.recv_b(999).is_empty());
        let got = w.recv_b(1010);
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].subflow_seq, 1);
        assert_eq!(got[1].subflow_seq, 2);
        assert!(w.idle());
    }

    #[test]
    fn directions_are_independent() {
        let mut w = Wire::new(100, 0);
        w.send_a(0, seg(1));
        w.send_b(0, seg(2));
        assert_eq!(w.recv_a(100).len(), 1);
        assert_eq!(w.recv_b(100).len(), 1);
    }

    #[test]
    fn loss_fault_drops_deterministically() {
        let run = |seed| {
            let mut w = Wire::new(10, seed).with_fault(WireFault::Loss(0.5));
            for i in 0..100 {
                w.send_a(i, seg(i as u32));
            }
            w.dropped
        };
        assert_eq!(run(1), run(1), "same seed, same drops");
        let d = run(1);
        assert!((20..80).contains(&d), "about half dropped: {d}");
    }

    #[test]
    fn strip_options_removes_mptcp_signalling() {
        let mut w = Wire::new(10, 0).with_fault(WireFault::StripOptions);
        w.send_a(0, seg(5));
        let got = w.recv_b(10);
        assert!(!got[0].has_mptcp_options());
        assert_eq!(got[0].payload, vec![1, 2, 3], "payload untouched");
    }

    #[test]
    fn rewrite_isn_shifts_subflow_numbers_only() {
        let mut w = Wire::new(10, 0).with_fault(WireFault::RewriteIsn(1000));
        w.send_a(0, seg(5));
        let got = w.recv_b(10);
        assert_eq!(got[0].subflow_seq, 1005, "A→B data seq shifted");
        assert_eq!(got[0].subflow_ack, 7, "A→B ack (B's space) untouched");
        // Data sequence numbers in options are not visible to the firewall.
        assert_eq!(got[0].dss(), Some((Some(5), None)));
        // B acks what it saw (1005-based); the middlebox translates back.
        let mut reply = seg(0);
        reply.subflow_ack = 1008;
        w.send_b(20, reply);
        let back = w.recv_a(30);
        assert_eq!(back[0].subflow_ack, 8, "B→A ack translated into A's space");
        assert_eq!(back[0].subflow_seq, 0, "B→A seq (B's space) untouched");
    }

    #[test]
    fn jitter_can_reorder() {
        let mut w = Wire::new(100, 3).with_fault(WireFault::Jitter(1000));
        for i in 0..50 {
            w.send_a(i, seg(i as u32));
        }
        let got = w.recv_b(10_000);
        assert_eq!(got.len(), 50);
        let in_order = got.windows(2).all(|p| p[0].subflow_seq < p[1].subflow_seq);
        assert!(!in_order, "jitter should reorder at least one pair");
    }
}
