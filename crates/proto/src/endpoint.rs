//! The MPTCP endpoint: the §6 design, executable.
//!
//! An [`Endpoint`] is one side of a multipath connection. It is entirely
//! poll-based: the caller feeds arriving segments in with
//! [`Endpoint::on_segment`] and collects segments to transmit with
//! [`Endpoint::poll`]; time is a number the caller advances. The design
//! points follow §6 exactly:
//!
//! * subflow sequence numbers (per subflow, in bytes) drive loss detection
//!   and fast retransmission;
//! * every payload is mapped into the data stream by a 64-bit data
//!   sequence number in a DSS option;
//! * the receive buffer is a **single shared pool**, and the advertised
//!   window is measured from the **data-level** cumulative ACK (the
//!   per-subflow alternative is implemented behind
//!   [`RecvBufferMode::PerSubflow`] purely so its deadlock can be
//!   demonstrated in tests);
//! * data ACKs are explicit, in options, on every segment;
//! * after a subflow's retransmission timer fires, its unacknowledged data
//!   is **reinjected** on another subflow, so a dead path cannot stall the
//!   stream.

use crate::path::{PathEndpoint, PathEvent, PathFlags, PathManager};
use crate::segment::{MptcpOption, SegFlags, Segment};
use crate::Micros;
use mptcp_cc::{AlgorithmKind, CcDriver, SubflowSnapshot};
use std::collections::BTreeMap;
use std::collections::VecDeque;

/// Which side initiates subflows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// Initiates the connection and all additional subflows.
    Client,
    /// Accepts the connection.
    Server,
}

/// Receive-buffer accounting mode (§6 "Flow Control": "Two choices seem
/// feasible…"). `Shared` is the paper's chosen design; `PerSubflow` is the
/// rejected one, kept so the deadlock is demonstrable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvBufferMode {
    /// "a single buffer pool is maintained at the receiver, and its
    /// occupancy is signalled relative to the data sequence space".
    Shared,
    /// "separate buffer pools are maintained at the receiver for each
    /// subflow" — suffers deadlock when one subflow stalls.
    PerSubflow,
}

/// Endpoint configuration.
#[derive(Debug, Clone, Copy)]
pub struct EndpointConfig {
    /// Maximum payload bytes per segment.
    pub mss: usize,
    /// Send-buffer capacity, bytes (data kept until data-level ACK).
    pub send_buf: usize,
    /// Receive-buffer capacity, bytes (total for `Shared`; per subflow for
    /// `PerSubflow`).
    pub recv_buf: usize,
    /// Buffer accounting mode.
    pub recv_mode: RecvBufferMode,
    /// Congestion-control algorithm for the subflow windows.
    pub algorithm: AlgorithmKind,
    /// Reinject timed-out data on other subflows.
    pub reinject: bool,
    /// Minimum retransmission timeout, µs.
    pub min_rto: Micros,
    /// Initial congestion window, in MSS units.
    pub initial_cwnd: f64,
}

impl Default for EndpointConfig {
    fn default() -> Self {
        Self {
            mss: 1200,
            send_buf: 64 * 1024,
            recv_buf: 64 * 1024,
            recv_mode: RecvBufferMode::Shared,
            algorithm: AlgorithmKind::Mptcp,
            reinject: true,
            min_rto: 200_000,
            initial_cwnd: 2.0,
        }
    }
}

/// Diagnostic snapshot of one subflow (see [`Endpoint::stats`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SubflowStats {
    /// Handshake completed.
    pub established: bool,
    /// Congestion window, bytes.
    pub cwnd_bytes: f64,
    /// Smoothed RTT, µs (None before the first sample).
    pub srtt_us: Option<f64>,
    /// Unacknowledged bytes outstanding.
    pub bytes_in_flight: u32,
    /// Retransmissions performed.
    pub retransmits: u64,
    /// Retransmission timeouts suffered.
    pub timeouts: u64,
    /// In repeated RTO backoff: probing only, no new data mappings.
    pub potentially_failed: bool,
    /// Negotiated at backup priority: warm but carrying no data while any
    /// non-backup subflow is healthy.
    pub backup: bool,
    /// Torn down by the path manager (may be rejoined later).
    pub closed: bool,
    /// Data payload bytes ever mapped onto this subflow.
    pub data_bytes_sent: u64,
}

/// Diagnostic snapshot of a connection (see [`Endpoint::stats`]).
#[derive(Debug, Clone, PartialEq)]
pub struct EndpointStats {
    /// Handshake outcome (None = unresolved; Some(false) = fallback).
    pub mp_enabled: Option<bool>,
    /// Data bytes mapped onto subflows so far.
    pub data_sent: u64,
    /// Peer's data-level cumulative ACK.
    pub data_acked: u64,
    /// In-order data bytes received.
    pub data_received: u64,
    /// Bytes waiting in the send buffer.
    pub send_buffered: usize,
    /// In-order bytes the application has not read yet.
    pub recv_buffered: usize,
    /// Bytes held out of order awaiting reassembly.
    pub recv_out_of_order: usize,
    /// Reinjections waiting for a subflow with window space.
    pub reinjections_queued: usize,
    /// Distinct data ranges ever reinjected.
    pub reinjections_total: usize,
    /// Zero-window persist probes sent.
    pub persist_probes: u64,
    /// Times the failover state machine moved data onto backup subflows
    /// (every non-backup subflow potentially failed).
    pub backup_activations: u64,
    /// Distinct `ADD_ADDR` advertisements transmitted.
    pub addr_advertised: u64,
    /// Subflows that completed a join handshake (initial joins included).
    pub subflows_joined: u64,
    /// Subflows torn down by the path manager.
    pub subflows_closed: u64,
    /// Most recent failover latency: µs from the first unanswered primary
    /// RTO to data moving onto a backup subflow.
    pub failover_latency_us: Option<Micros>,
    /// Per-subflow snapshots.
    pub subflows: Vec<SubflowStats>,
}

/// A segment the sender still holds for possible retransmission.
#[derive(Debug, Clone)]
struct SentSeg {
    sub_seq: u32,
    data_seq: u64,
    payload: Vec<u8>,
    sent_at: Micros,
    retransmitted: bool,
    /// A FIN occupies one subflow sequence number and is retransmitted by
    /// the same machinery as data.
    is_fin: bool,
}

impl SentSeg {
    /// Subflow sequence space this segment occupies.
    fn seq_len(&self) -> u32 {
        if self.is_fin {
            1
        } else {
            self.payload.len() as u32
        }
    }
}

/// Per-subflow state.
#[derive(Debug)]
struct Subflow {
    established: bool,
    syn_sent: bool,
    /// Backup priority (negotiated in the `MP_JOIN` backup bit).
    backup: bool,
    /// Torn down by the path manager; stays closed until rejoined.
    closed: bool,
    /// Client-side: initiate a join on this subflow when possible.
    want_join: bool,
    /// Data payload bytes ever mapped onto this subflow (diagnostics; the
    /// backup-semantics tests assert this stays zero while primaries are
    /// healthy).
    data_bytes_sent: u64,
    /// When the last SYN / SYN-ACK went out (they are retransmitted on a
    /// fixed timer until the handshake completes — a lost SYN must not
    /// wedge the connection).
    syn_sent_at: Micros,
    // --- sender ---
    snd_next: u32,
    snd_una: u32,
    inflight: VecDeque<SentSeg>,
    dup_acks: u32,
    in_recovery: bool,
    recovery_point: u32,
    cwnd_bytes: f64,
    ssthresh_bytes: f64,
    srtt_us: Option<f64>,
    rttvar_us: f64,
    rto_us: Micros,
    rto_deadline: Option<Micros>,
    /// Peer's advertised window as last seen on this subflow (meaning
    /// depends on the receive mode).
    peer_window: u32,
    /// Consecutive RTOs with no forward progress. Two or more marks the
    /// subflow "potentially failed": it keeps probing with retransmissions
    /// but receives no new data mappings until an ACK arrives.
    rto_backoffs: u32,
    retransmits: u64,
    timeouts: u64,
    // --- receiver (subflow level) ---
    rcv_next: u32,
    /// Received subflow byte ranges beyond `rcv_next` (start → end).
    rcv_ranges: BTreeMap<u32, u32>,
    ack_pending: bool,
    /// Bytes held in the receive buffer attributed to this subflow
    /// (PerSubflow mode accounting).
    held_bytes: usize,
}

impl Subflow {
    fn new(cfg: &EndpointConfig) -> Self {
        Self {
            established: false,
            syn_sent: false,
            backup: false,
            closed: false,
            want_join: true,
            data_bytes_sent: 0,
            syn_sent_at: 0,
            snd_next: 0,
            snd_una: 0,
            inflight: VecDeque::new(),
            dup_acks: 0,
            in_recovery: false,
            recovery_point: 0,
            cwnd_bytes: cfg.initial_cwnd * cfg.mss as f64,
            ssthresh_bytes: f64::INFINITY,
            srtt_us: None,
            rttvar_us: 0.0,
            rto_us: 1_000_000,
            rto_deadline: None,
            peer_window: u32::MAX,
            rto_backoffs: 0,
            retransmits: 0,
            timeouts: 0,
            rcv_next: 0,
            rcv_ranges: BTreeMap::new(),
            ack_pending: false,
            held_bytes: 0,
        }
    }

    fn bytes_in_flight(&self) -> u32 {
        self.snd_next.wrapping_sub(self.snd_una)
    }

    fn rtt_sample(&mut self, sample_us: f64, min_rto: Micros) {
        match self.srtt_us {
            None => {
                self.srtt_us = Some(sample_us);
                self.rttvar_us = sample_us / 2.0;
            }
            Some(s) => {
                self.rttvar_us = 0.75 * self.rttvar_us + 0.25 * (s - sample_us).abs();
                self.srtt_us = Some(0.875 * s + 0.125 * sample_us);
            }
        }
        let rto = self.srtt_us.unwrap() + 4.0 * self.rttvar_us;
        self.rto_us = (rto as Micros).max(min_rto);
    }

    /// Record an incoming subflow byte range; returns whether `rcv_next`
    /// advanced (in-order progress).
    fn receive_range(&mut self, start: u32, len: u32) -> bool {
        if len == 0 {
            return false;
        }
        let end = start.wrapping_add(len);
        // Transfers in this userspace model stay < 4 GiB; compare directly.
        if end <= self.rcv_next {
            return false; // old duplicate
        }
        let start = start.max(self.rcv_next);
        self.rcv_ranges
            .entry(start)
            .and_modify(|e| *e = (*e).max(end))
            .or_insert(end);
        let before = self.rcv_next;
        // Merge contiguous ranges starting at rcv_next.
        while let Some((&s, &e)) = self.rcv_ranges.range(..=self.rcv_next).next_back() {
            self.rcv_ranges.remove(&s);
            if e > self.rcv_next {
                self.rcv_next = e;
            }
        }
        self.rcv_next != before
    }
}

/// One side of a multipath connection. See the module docs.
pub struct Endpoint {
    cfg: EndpointConfig,
    role: Role,
    key: u64,
    /// `None` until the handshake resolves; then whether MPTCP is in use
    /// (false = fallback to regular TCP on subflow 0).
    mp_enabled: Option<bool>,
    subs: Vec<Subflow>,
    cc: CcDriver,

    // --- data-level send state ---
    send_buf: VecDeque<u8>,
    /// Data seq of `send_buf[0]` (oldest un-data-acked byte).
    snd_data_base: u64,
    /// Next data seq to map onto a subflow.
    snd_data_next: u64,
    /// Peer's data-level cumulative ACK.
    data_acked: u64,
    /// Data ranges to reinject on another subflow (after a subflow RTO):
    /// `(data_seq, payload, is_fin)`.
    reinject_queue: VecDeque<(u64, Vec<u8>, bool)>,
    fin_queued: bool,
    /// Data sequence number the FIN occupies, once first sent.
    fin_seq: Option<u64>,
    /// Data sequence numbers already reinjected once (avoid duplicates).
    reinjected: std::collections::BTreeSet<u64>,

    // --- data-level receive state ---
    /// Next data seq expected in order.
    rcv_data_next: u64,
    /// Out-of-order data held (data_seq → (arrival subflow, bytes)).
    recv_ooo: BTreeMap<u64, (usize, Vec<u8>)>,
    /// Retransmissions produced during ACK processing, flushed by `poll`.
    pending_out: Vec<(usize, Segment)>,
    /// In-order data not yet read by the application.
    recv_app: VecDeque<u8>,
    /// FIFO attribution of buffered bytes to subflows (PerSubflow mode).
    recv_attribution: VecDeque<(usize, usize)>,
    /// Data seq of the peer's FIN, once seen.
    peer_fin: Option<u64>,

    // --- zero-window persist (RFC 9293 §3.8.6.1) ---
    /// Armed when data is queued but every subflow is flow-control-blocked
    /// with nothing in flight: no ACK can ever arrive to reopen the window
    /// (the reopening window update is a pure ACK, which is never
    /// retransmitted), so without this timer a single lost window update
    /// would deadlock the connection.
    persist_deadline: Option<Micros>,
    /// Zero-window probes sent (diagnostics).
    persist_probes: u64,

    // --- path management & failover (graceful-degradation state machine:
    // active → degraded → failover → recovered) ---
    /// Endpoint table, subflow limit and advertisement retransmit state.
    path: PathManager,
    /// Data is currently carried by backup subflows (failover state).
    backup_active: bool,
    /// When the primaries stopped making progress: stamped at the first
    /// unanswered primary RTO, cleared by any primary cumulative ACK.
    primary_down_since: Option<Micros>,
    /// Most recent failover latency (µs from `primary_down_since` to the
    /// first poll that moved data onto a backup).
    failover_latency_us: Option<Micros>,
    /// Times the failover state machine activated the backups.
    backup_activations: u64,
    /// Subflows that completed a join handshake.
    subflows_joined: u64,
    /// Subflows torn down by the path manager.
    subflows_closed: u64,

    /// Total application bytes received in order (diagnostics).
    pub total_received: u64,
}

impl Endpoint {
    /// Create a client endpoint with `n_subflows` paths.
    pub fn client(cfg: EndpointConfig, n_subflows: usize, key: u64) -> Self {
        Self::new(cfg, Role::Client, n_subflows, key)
    }

    /// Create a server endpoint able to accept `n_subflows` paths.
    pub fn server(cfg: EndpointConfig, n_subflows: usize, key: u64) -> Self {
        Self::new(cfg, Role::Server, n_subflows, key)
    }

    fn new(cfg: EndpointConfig, role: Role, n_subflows: usize, key: u64) -> Self {
        assert!(n_subflows >= 1, "need at least one subflow");
        assert!(cfg.mss > 0 && cfg.send_buf >= cfg.mss && cfg.recv_buf >= cfg.mss);
        let cc = cfg.algorithm.build_cc(n_subflows);
        let mut path = PathManager::new(n_subflows);
        for i in 0..n_subflows {
            path.add_endpoint(PathEndpoint {
                addr_id: i as u8,
                flags: PathFlags { subflow: true, ..Default::default() },
            });
        }
        Self {
            cfg,
            role,
            key,
            mp_enabled: None,
            subs: (0..n_subflows).map(|_| Subflow::new(&cfg)).collect(),
            cc,
            send_buf: VecDeque::new(),
            snd_data_base: 0,
            snd_data_next: 0,
            data_acked: 0,
            reinject_queue: VecDeque::new(),
            fin_queued: false,
            fin_seq: None,
            reinjected: std::collections::BTreeSet::new(),
            rcv_data_next: 0,
            recv_ooo: BTreeMap::new(),
            pending_out: Vec::new(),
            recv_app: VecDeque::new(),
            recv_attribution: VecDeque::new(),
            peer_fin: None,
            persist_deadline: None,
            persist_probes: 0,
            path,
            backup_active: false,
            primary_down_since: None,
            failover_latency_us: None,
            backup_activations: 0,
            subflows_joined: 0,
            subflows_closed: 0,
            total_received: 0,
        }
    }

    // ------------------------------------------------------------------
    // Application interface
    // ------------------------------------------------------------------

    /// Queue application data; returns how many bytes were accepted
    /// (bounded by send-buffer space). Data is retained until the peer's
    /// data-level cumulative ACK covers it.
    pub fn write(&mut self, data: &[u8]) -> usize {
        assert!(!self.fin_queued, "write after close");
        let space = self.cfg.send_buf.saturating_sub(self.send_buf.len());
        let n = space.min(data.len());
        self.send_buf.extend(&data[..n]);
        n
    }

    /// Signal end of stream once all queued data has been sent.
    pub fn close(&mut self) {
        self.fin_queued = true;
    }

    /// Read in-order received data into `buf`; returns bytes read.
    pub fn read(&mut self, buf: &mut [u8]) -> usize {
        let window_before: Vec<u32> =
            (0..self.subs.len()).map(|i| self.advertised_window(i)).collect();
        let n = buf.len().min(self.recv_app.len());
        for b in buf.iter_mut().take(n) {
            *b = self.recv_app.pop_front().expect("length checked");
        }
        // Release attribution FIFO (PerSubflow accounting).
        let mut remaining = n;
        while remaining > 0 {
            let Some((sub, len)) = self.recv_attribution.front_mut() else { break };
            let take = remaining.min(*len);
            *len -= take;
            remaining -= take;
            self.subs[*sub].held_bytes -= take;
            if *len == 0 {
                self.recv_attribution.pop_front();
            }
        }
        // Window update: if reading reopened a window that had closed below
        // one MSS, tell the peer — otherwise a sender blocked on a zero
        // window would deadlock (TCP's window-update rule).
        if n > 0 {
            let mss = self.cfg.mss as u32;
            for (i, &before) in window_before.iter().enumerate() {
                if self.subs[i].established && before < mss && self.advertised_window(i) >= mss {
                    self.subs[i].ack_pending = true;
                }
            }
        }
        n
    }

    /// Whether the peer closed and every byte has been read.
    pub fn at_eof(&self) -> bool {
        self.peer_fin.is_some_and(|f| self.rcv_data_next > f) && self.recv_app.is_empty()
    }

    /// Whether everything written (and the FIN, if closed) has been
    /// data-acknowledged by the peer. The FIN occupies one data sequence
    /// number, so "acknowledged" is observable.
    pub fn send_complete(&self) -> bool {
        let data_done = self.send_buf.is_empty() && self.snd_data_next == self.snd_data_base;
        let fin_done =
            !self.fin_queued || self.fin_seq.is_some_and(|f| self.data_acked > f);
        data_done && fin_done
    }

    /// Whether the connection fell back to regular TCP (options stripped).
    pub fn is_fallback(&self) -> bool {
        self.mp_enabled == Some(false)
    }

    /// Whether subflow `i` completed its handshake.
    pub fn subflow_established(&self, i: usize) -> bool {
        self.subs[i].established
    }

    /// Data-level cumulative ACK received from the peer.
    pub fn peer_data_acked(&self) -> u64 {
        self.data_acked
    }

    /// Retransmission counters per subflow (diagnostics).
    pub fn subflow_retransmits(&self, i: usize) -> (u64, u64) {
        (self.subs[i].retransmits, self.subs[i].timeouts)
    }

    // ------------------------------------------------------------------
    // Path management (the `ip mptcp` endpoint surface)
    // ------------------------------------------------------------------

    /// The connection's path manager (endpoint table, subflow limit,
    /// advertisement state).
    pub fn path_manager(&self) -> &PathManager {
        &self.path
    }

    /// Whether data is currently carried by backup subflows (the failover
    /// state of the graceful-degradation machine).
    pub fn backup_active(&self) -> bool {
        self.backup_active
    }

    /// Mark subflow `sub` as backup priority before it joins: its `MP_JOIN`
    /// will carry the backup bit and it will carry no data while any
    /// non-backup subflow is healthy.
    pub fn set_backup(&mut self, sub: usize, backup: bool) {
        self.subs[sub].backup = backup;
        self.path.add_endpoint(PathEndpoint {
            addr_id: sub as u8,
            flags: PathFlags { subflow: true, backup, ..Default::default() },
        });
    }

    /// Stop subflow `sub` from joining automatically; it joins only when
    /// the peer advertises the address or [`Endpoint::join_subflow`] is
    /// called.
    pub fn defer_join(&mut self, sub: usize) {
        assert!(sub > 0, "the initial subflow cannot be deferred");
        self.subs[sub].want_join = false;
    }

    /// Client-side: initiate (or re-initiate) a join on subflow `sub` at
    /// the given priority.
    pub fn join_subflow(&mut self, sub: usize, backup: bool) {
        assert!(sub > 0 && sub < self.subs.len(), "unknown subflow {sub}");
        let s = &mut self.subs[sub];
        s.closed = false;
        s.want_join = true;
        s.backup = backup;
        s.syn_sent = false; // SYN promptly on the next poll
    }

    /// Advertise local address `addr_id` to the peer via `ADD_ADDR`
    /// (retransmitted until echoed). The peer joins it at the given
    /// priority, subject to its subflow limit.
    pub fn advertise_addr(&mut self, addr_id: u8, backup: bool) {
        self.path.add_endpoint(PathEndpoint {
            addr_id,
            flags: PathFlags { signal: true, subflow: true, backup, ..Default::default() },
        });
        self.path.advertise(addr_id, backup);
    }

    /// Withdraw address `addr_id`: tear the local subflow down (stranded
    /// in-flight data is reinjected exactly once) and signal `REMOVE_ADDR`
    /// so the peer tears its side down too.
    pub fn withdraw_addr(&mut self, addr_id: u8) {
        self.path.withdraw(addr_id);
        self.teardown_subflow(addr_id as usize);
    }

    /// Tear down subflow `sub` and notify the peer (equivalent to
    /// [`Endpoint::withdraw_addr`] with the subflow's address id).
    pub fn close_subflow(&mut self, sub: usize) {
        assert!(sub < self.subs.len(), "unknown subflow {sub}");
        self.withdraw_addr(sub as u8);
    }

    /// Graceful teardown: strand this subflow's unacknowledged in-flight
    /// data into the reinjection queue (each data range requeued at most
    /// once per teardown; the receiver's data-level reassembly discards
    /// any copy that still arrives twice), silence its timers, and mark it
    /// closed. The subflow sequence space is *not* rolled back: a later
    /// rejoin resumes at `snd_next`, carried as the SYN's sequence number,
    /// and the peer jumps its receive cursor forward — so segments from
    /// the old incarnation can never alias new data.
    fn teardown_subflow(&mut self, sub: usize) {
        if sub == 0 || sub >= self.subs.len() {
            return; // the initial subflow carries the connection
        }
        if self.subs[sub].closed {
            return; // idempotent (duplicate REMOVE_ADDR)
        }
        let was_established = self.subs[sub].established;
        let s = &mut self.subs[sub];
        let stranded: Vec<SentSeg> = s.inflight.drain(..).collect();
        s.snd_una = s.snd_next;
        s.established = false;
        s.syn_sent = false;
        s.want_join = false;
        s.closed = true;
        s.rto_deadline = None;
        s.rto_backoffs = 0;
        s.dup_acks = 0;
        s.in_recovery = false;
        s.ack_pending = false;
        s.rto_us = 1_000_000;
        s.cwnd_bytes = self.cfg.initial_cwnd * self.cfg.mss as f64;
        s.ssthresh_bytes = f64::INFINITY;
        if was_established {
            self.subflows_closed += 1;
        }
        if self.mp_enabled == Some(true) {
            for h in stranded {
                let len = (h.payload.len() as u64).max(1);
                if h.data_seq + len <= self.data_acked {
                    continue; // already data-acked: nothing to save
                }
                if self.reinject_queue.iter().any(|(d, _, _)| *d == h.data_seq) {
                    continue; // already queued once
                }
                self.reinjected.insert(h.data_seq);
                self.reinject_queue.push_back((h.data_seq, h.payload, h.is_fin));
            }
        }
    }

    /// A diagnostic snapshot of the connection.
    pub fn stats(&self) -> EndpointStats {
        EndpointStats {
            mp_enabled: self.mp_enabled,
            data_sent: self.snd_data_next,
            data_acked: self.data_acked,
            data_received: self.total_received,
            send_buffered: self.send_buf.len(),
            recv_buffered: self.recv_app.len(),
            recv_out_of_order: self.recv_ooo.values().map(|(_, v)| v.len()).sum(),
            reinjections_queued: self.reinject_queue.len(),
            reinjections_total: self.reinjected.len(),
            persist_probes: self.persist_probes,
            backup_activations: self.backup_activations,
            addr_advertised: self.path.addr_advertised(),
            subflows_joined: self.subflows_joined,
            subflows_closed: self.subflows_closed,
            failover_latency_us: self.failover_latency_us,
            subflows: self
                .subs
                .iter()
                .map(|s| SubflowStats {
                    established: s.established,
                    cwnd_bytes: s.cwnd_bytes,
                    srtt_us: s.srtt_us,
                    bytes_in_flight: s.bytes_in_flight(),
                    retransmits: s.retransmits,
                    timeouts: s.timeouts,
                    potentially_failed: s.rto_backoffs >= mptcp_cc::POTENTIALLY_FAILED_RTO_BACKOFFS,
                    backup: s.backup,
                    closed: s.closed,
                    data_bytes_sent: s.data_bytes_sent,
                })
                .collect(),
        }
    }

    // ------------------------------------------------------------------
    // Receive-buffer accounting
    // ------------------------------------------------------------------

    /// Advertised window for segments sent on subflow `sub`.
    ///
    /// * `Shared` (the paper's design): capacity minus in-order unread
    ///   bytes, measured **from the data-level cumulative ACK**. Data held
    ///   out of order lives *inside* this allowance, so a retransmission of
    ///   the missing data at the cumulative point is always admissible —
    ///   this is exactly what makes the design deadlock-free (§6).
    /// * `PerSubflow` (the rejected design): capacity minus the bytes this
    ///   subflow has delivered that the application has not read, measured
    ///   from the *subflow* ACK. A stalled sibling subflow lets this
    ///   allowance fill up with data beyond the stream hole, wedging the
    ///   connection.
    fn advertised_window(&self, sub: usize) -> u32 {
        match self.cfg.recv_mode {
            RecvBufferMode::Shared => {
                self.cfg.recv_buf.saturating_sub(self.recv_app.len()) as u32
            }
            RecvBufferMode::PerSubflow => {
                self.cfg.recv_buf.saturating_sub(self.subs[sub].held_bytes) as u32
            }
        }
    }

    /// Whether an arriving payload is within the window this receiver has
    /// advertised (a segment beyond it is dropped as the network would drop
    /// it; the admission rule is the crux of the §6 deadlock argument).
    fn admissible(&self, sub: usize, seg: &Segment, len: usize) -> bool {
        if len == 0 {
            return true;
        }
        match self.cfg.recv_mode {
            RecvBufferMode::Shared => {
                let Some((Some(dseq), _)) = seg.dss() else {
                    // Fallback mode: the subflow stream is the data stream.
                    let end = seg.subflow_seq as u64 + len as u64;
                    return end
                        <= self.rcv_data_next + self.advertised_window(sub) as u64;
                };
                dseq + (len as u64)
                    <= self.rcv_data_next + self.advertised_window(sub) as u64
            }
            RecvBufferMode::PerSubflow => {
                let end = seg.subflow_seq.wrapping_add(len as u32);
                end as u64
                    <= self.subs[sub].rcv_next as u64 + self.advertised_window(sub) as u64
            }
        }
    }

    // ------------------------------------------------------------------
    // Segment ingestion
    // ------------------------------------------------------------------

    /// Process a segment arriving on subflow `sub` at time `now`.
    pub fn on_segment(&mut self, now: Micros, sub: usize, seg: Segment) {
        assert!(sub < self.subs.len(), "unknown subflow {sub}");
        if seg.flags.syn {
            self.on_syn(sub, &seg);
            // SYN segments may still carry an ACK (SYN-ACK) but no data.
            if seg.flags.ack {
                self.on_subflow_ack(now, sub, &seg);
            }
            return;
        }
        if !self.subs[sub].established {
            return; // segment on a dead subflow
        }
        if seg.flags.ack {
            self.on_subflow_ack(now, sub, &seg);
        }
        if let Some((_, Some(dack))) = seg.dss() {
            self.on_data_ack(dack);
        }
        // Path-manager options (only meaningful with MPTCP in use; in
        // fallback mode a stray advertisement is ignored, keeping the
        // connection a plain TCP stream).
        if self.mp_enabled == Some(true) {
            for i in 0..seg.options.len() {
                let opt = seg.options[i];
                self.on_path_option(&opt);
            }
        }
        if !seg.payload.is_empty() || seg.flags.fin {
            self.on_data(sub, &seg);
        }
    }

    /// Act on one received `ADD_ADDR`/`REMOVE_ADDR` (other options are
    /// ignored by the path manager).
    fn on_path_option(&mut self, opt: &MptcpOption) {
        let Some(ev) = self.path.on_option(opt) else { return };
        match ev {
            PathEvent::Join { addr_id, backup } => {
                let i = addr_id as usize;
                // Joins are client-initiated in this model; the server just
                // echoes the advertisement.
                if !matches!(self.role, Role::Client) || i == 0 || i >= self.subs.len() {
                    return;
                }
                if self.subs[i].established {
                    self.subs[i].backup = backup; // priority update only
                    return;
                }
                let live = self
                    .subs
                    .iter()
                    .filter(|s| !s.closed && (s.established || s.want_join))
                    .count();
                let already_joining = self.subs[i].want_join && !self.subs[i].closed;
                if !already_joining && live >= self.path.subflow_limit() {
                    return; // at the per-connection subflow limit
                }
                self.join_subflow(i, backup);
            }
            PathEvent::Close { addr_id } => {
                self.teardown_subflow(addr_id as usize);
            }
        }
    }

    fn on_syn(&mut self, sub: usize, seg: &Segment) {
        let capable = seg
            .options
            .iter()
            .any(|o| matches!(o, MptcpOption::MpCapable { .. }));
        let join = seg.options.iter().find_map(|o| match o {
            MptcpOption::MpJoin { token, backup } => Some((*token, *backup)),
            _ => None,
        });
        match self.role {
            Role::Server => {
                if sub == 0 && !seg.flags.ack {
                    // First-subflow SYN: capability negotiation.
                    self.mp_enabled = Some(capable);
                    self.subs[0].established = true;
                    self.subs[0].ack_pending = true; // triggers SYN-ACK in poll
                    self.subs[0].syn_sent = false; // we owe a SYN-ACK
                } else if !seg.flags.ack {
                    // Additional-subflow SYN: must join with the right token
                    // and multipath must be enabled.
                    if self.mp_enabled == Some(true) && join.map(|(t, _)| t) == Some(self.key) {
                        let was_established = self.subs[sub].established;
                        let live = self.subs.iter().filter(|s| s.established).count();
                        if !was_established && live >= self.path.subflow_limit() {
                            return; // at the per-connection subflow limit
                        }
                        let s = &mut self.subs[sub];
                        if !was_established {
                            // (Re)join: the SYN carries the peer's resumed
                            // sequence number as its ISN; jump the receive
                            // cursor forward so segments from a previous
                            // incarnation can never alias new data.
                            if s.rcv_next < seg.subflow_seq {
                                s.rcv_next = seg.subflow_seq;
                            }
                            let cut = s.rcv_next;
                            s.rcv_ranges.retain(|_, e| *e > cut);
                        }
                        s.closed = false;
                        s.backup = join.map(|(_, b)| b).unwrap_or(false);
                        s.established = true;
                        s.ack_pending = true;
                        // A duplicate join SYN means our SYN-ACK was lost:
                        // emit another.
                        s.syn_sent = false;
                        if !was_established {
                            self.subflows_joined += 1;
                        }
                    }
                    // else: silently ignore (subflow never establishes).
                }
            }
            Role::Client => {
                if seg.flags.ack && self.subs[sub].syn_sent && !self.subs[sub].established {
                    // SYN-ACK.
                    if sub == 0 {
                        self.mp_enabled = Some(capable);
                    }
                    if sub == 0 || capable || join.is_some() {
                        let s = &mut self.subs[sub];
                        // Forward-only receive-cursor jump (rejoin; see the
                        // server side above).
                        if s.rcv_next < seg.subflow_seq {
                            s.rcv_next = seg.subflow_seq;
                        }
                        let cut = s.rcv_next;
                        s.rcv_ranges.retain(|_, e| *e > cut);
                        s.established = true;
                        if sub > 0 {
                            self.subflows_joined += 1;
                        }
                    }
                }
            }
        }
    }

    fn on_subflow_ack(&mut self, now: Micros, sub: usize, seg: &Segment) {
        let s = &mut self.subs[sub];
        s.peer_window = seg.window;
        let ack = seg.subflow_ack;
        if ack > s.snd_una {
            // Cumulative advance: RTT sample (Karn) from the newest fully
            // acked segment, drop acked segments, exit/continue recovery.
            let mut sample: Option<f64> = None;
            while let Some(front) = s.inflight.front() {
                let end = front.sub_seq.wrapping_add(front.seq_len());
                if end <= ack {
                    if !front.retransmitted {
                        sample = Some((now - front.sent_at) as f64);
                    }
                    s.inflight.pop_front();
                } else {
                    break;
                }
            }
            let newly = ack.wrapping_sub(s.snd_una);
            s.snd_una = ack;
            s.dup_acks = 0;
            s.rto_backoffs = 0;
            if let Some(us) = sample {
                s.rtt_sample(us, self.cfg.min_rto);
            } else if let Some(srtt) = s.srtt_us {
                // Cumulative progress collapses exponential RTO backoff even
                // when Karn's rule yields no sample (RFC 6298 §5.7): without
                // this, a subflow recovering from a long outage retransmits
                // its stranded window one segment per backed-off RTO (up to
                // 60 s each) and the connection is wedged for minutes.
                s.rto_us = ((srtt + 4.0 * s.rttvar_us) as Micros).max(self.cfg.min_rto);
            }
            let retransmit_head = if s.in_recovery {
                if s.snd_una >= s.recovery_point {
                    s.in_recovery = false;
                    false
                } else {
                    true // NewReno partial ACK
                }
            } else {
                false
            };
            // Window growth (not during recovery).
            if !s.in_recovery {
                let mss = self.cfg.mss as f64;
                let acked_pkts = newly as f64 / mss;
                match &mut self.cc {
                    CcDriver::Pure(cc) => {
                        let s = &mut self.subs[sub];
                        if s.cwnd_bytes < s.ssthresh_bytes {
                            s.cwnd_bytes += newly as f64; // slow start
                        } else {
                            let snaps = snapshots_of(&self.subs, mss);
                            let inc_pkts = cc.increase_per_ack(sub, &snaps);
                            self.subs[sub].cwnd_bytes += inc_pkts * acked_pkts * mss;
                        }
                    }
                    CcDriver::Stateful(cc) => {
                        // The stateful contract is per-ACKed-*packet*, so a
                        // cumulative advance of N·mss bytes is fed through
                        // `on_ack` in up-to-one-packet steps, each with a
                        // fresh snapshot (the hooks fire in slow start too:
                        // base-RTT filters and hybrid slow start watch
                        // every ACK).
                        let floor_bytes = cc.min_window() * mss;
                        let now_s = now as f64 / 1e6;
                        let mut remaining = acked_pkts;
                        while remaining > 0.0 {
                            let step = remaining.min(1.0);
                            let snaps = snapshots_of(&self.subs, mss);
                            let s = &mut self.subs[sub];
                            let in_ss = s.cwnd_bytes < s.ssthresh_bytes;
                            let act = cc.on_ack(sub, &snaps, now_s, in_ss);
                            s.cwnd_bytes += act.grow * step * mss;
                            if act.grow < 0.0 && s.cwnd_bytes < floor_bytes {
                                // Delay-based shrinks must not dig below
                                // the probing floor.
                                s.cwnd_bytes = floor_bytes;
                            }
                            if act.exit_slow_start && in_ss {
                                // Hybrid/Vegas slow-start exit: pin
                                // ssthresh to the current window.
                                s.ssthresh_bytes = s.cwnd_bytes.max(2.0 * mss);
                            }
                            remaining -= step;
                        }
                    }
                }
            }
            let s = &mut self.subs[sub];
            s.rto_deadline =
                if s.inflight.is_empty() { None } else { Some(now + s.rto_us) };
            if retransmit_head {
                self.retransmit_first_unacked(now, sub);
            }
            // In fallback mode the subflow stream *is* the data stream, so
            // the subflow cumulative ACK doubles as the data ACK.
            if self.is_fallback() && sub == 0 {
                self.on_data_ack(ack as u64);
            }
            // A primary making forward progress resets the failure clock
            // (the failover state machine's "recovered" edge is taken in
            // poll_data once the primary is usable again).
            if !self.subs[sub].backup {
                self.primary_down_since = None;
            }
        } else if ack == s.snd_una
            && seg.payload.is_empty()
            && !s.inflight.is_empty()
        {
            s.dup_acks += 1;
            if s.dup_acks == 3 && !s.in_recovery {
                // Fast retransmit + coupled multiplicative decrease (the
                // loss-epoch hook for stateful controllers).
                let snaps = self.snapshots();
                let mss = self.cfg.mss as f64;
                let new_pkts = self.cc.clamped_window_after_loss(sub, &snaps, now as f64 / 1e6);
                let s = &mut self.subs[sub];
                s.in_recovery = true;
                s.recovery_point = s.snd_next;
                s.cwnd_bytes = new_pkts * mss;
                s.ssthresh_bytes = s.cwnd_bytes.max(2.0 * mss);
                self.retransmit_first_unacked(now, sub);
            }
        }
    }

    fn on_data_ack(&mut self, dack: u64) {
        if dack > self.data_acked {
            self.data_acked = dack;
        }
        // Release send-buffer bytes the peer has at the data level.
        while self.snd_data_base < self.data_acked && !self.send_buf.is_empty() {
            self.send_buf.pop_front();
            self.snd_data_base += 1;
        }
        // Drop reinjections that are no longer needed (a FIN occupies one
        // data sequence number).
        self.reinject_queue
            .retain(|(seq, data, _)| seq + (data.len() as u64).max(1) > self.data_acked);
    }

    fn on_data(&mut self, sub: usize, seg: &Segment) {
        let len = seg.payload.len();
        // Buffer admission control: a receiver out of window drops the
        // payload as if the network had lost it — but it still owes the
        // peer an ACK carrying the current window (RFC 9293 §3.10.7.4:
        // an unacceptable segment elicits an ACK). Without this, a
        // zero-window probe could never learn that the window reopened.
        if !self.admissible(sub, seg, len) {
            self.subs[sub].ack_pending = true;
            return;
        }
        // Subflow-level bookkeeping → drives the peer's loss detection.
        // A FIN consumes one subflow sequence number, like real TCP.
        let sub_len = len as u32 + u32::from(seg.flags.fin);
        let advanced = self.subs[sub].receive_range(seg.subflow_seq, sub_len);
        let _ = advanced;
        self.subs[sub].ack_pending = true;

        // Data-level reassembly.
        if let Some((Some(dseq), _)) = seg.dss() {
            if len > 0 {
                self.insert_data(sub, dseq, &seg.payload);
            }
            if seg.flags.fin {
                let fin_seq = dseq + len as u64;
                self.peer_fin = Some(self.peer_fin.map_or(fin_seq, |f| f.max(fin_seq)));
            }
        } else if self.is_fallback() && sub == 0 {
            // Fallback: the subflow stream *is* the data stream.
            if len > 0 {
                self.insert_data(sub, seg.subflow_seq as u64, &seg.payload);
            }
            if seg.flags.fin {
                self.peer_fin = Some(seg.subflow_seq as u64 + len as u64);
            }
        }
        // The FIN occupies one data sequence number: consume it once all
        // preceding data has been delivered, so the data ACK covers it.
        if self.peer_fin == Some(self.rcv_data_next) {
            self.rcv_data_next += 1;
        }
    }

    fn insert_data(&mut self, sub: usize, dseq: u64, payload: &[u8]) {
        let end = dseq + payload.len() as u64;
        if end <= self.rcv_data_next {
            return; // stale duplicate (e.g. a reinjected copy)
        }
        // Clip any prefix we already have.
        let skip = self.rcv_data_next.saturating_sub(dseq) as usize;
        let dseq = dseq + skip as u64;
        let payload = &payload[skip.min(payload.len())..];
        if payload.is_empty() {
            return;
        }
        if dseq == self.rcv_data_next {
            self.recv_app.extend(payload);
            self.recv_attribution.push_back((sub, payload.len()));
            self.subs[sub].held_bytes += payload.len();
            self.rcv_data_next += payload.len() as u64;
            self.total_received += payload.len() as u64;
            // Drain contiguous out-of-order data. Its buffer charge was
            // taken at insert time; only the attribution FIFO entry and the
            // cumulative counters move here.
            while let Some((&s, _)) = self.recv_ooo.iter().next() {
                if s > self.rcv_data_next {
                    break;
                }
                let (s, (src, v)) = self.recv_ooo.pop_first().expect("peeked");
                let skip = (self.rcv_data_next - s) as usize;
                if skip < v.len() {
                    let rest = &v[skip..];
                    self.recv_app.extend(rest);
                    self.recv_attribution.push_back((src, rest.len()));
                    self.rcv_data_next += rest.len() as u64;
                    self.total_received += rest.len() as u64;
                    // The charge for the skipped (duplicate) prefix is
                    // released now.
                    self.subs[src].held_bytes -= skip;
                } else {
                    self.subs[src].held_bytes -= v.len();
                }
            }
        } else if let std::collections::btree_map::Entry::Vacant(e) = self.recv_ooo.entry(dseq) {
            // Out-of-order bytes occupy the buffer from arrival; charge the
            // arrival subflow now and release when drained or read.
            self.subs[sub].held_bytes += payload.len();
            e.insert((sub, payload.to_vec()));
        }
    }

    // ------------------------------------------------------------------
    // Transmission
    // ------------------------------------------------------------------

    /// Collect segments to transmit at time `now`. Also fires due
    /// retransmission timers.
    pub fn poll(&mut self, now: Micros) -> Vec<(usize, Segment)> {
        let mut out: Vec<(usize, Segment)> = Vec::new();
        self.poll_handshake(now, &mut out);
        self.poll_path(now, &mut out);
        self.poll_timers(now, &mut out);
        self.poll_data(now, &mut out);
        self.poll_persist(now, &mut out);
        self.poll_acks(&mut out);
        out
    }

    /// Retransmission interval for SYN / SYN-ACK segments.
    const SYN_RTO: Micros = 500_000;

    /// The earliest timer deadline, if any (for event-driven harnesses).
    pub fn next_deadline(&self) -> Option<Micros> {
        self.subs
            .iter()
            .filter_map(|s| s.rto_deadline)
            .chain(self.persist_deadline)
            .min()
    }

    /// Zero-window persist timer. After `poll_data`, if the connection
    /// still has work queued but *nothing in flight on any subflow*, no ACK
    /// will ever arrive: the peer's window-reopening update is a pure ACK
    /// and pure ACKs are not retransmitted, so its loss would wedge the
    /// connection forever. Arm a timer; when it fires, force one byte of
    /// data out past the flow-control limit. The probe either gets accepted
    /// (the window really had reopened) or is dropped by the receiver's
    /// admission control — which still elicits an ACK carrying the current
    /// window. Either way the probe sits in `inflight`, so the ordinary RTO
    /// machinery provides the exponential persist backoff for free.
    fn poll_persist(&mut self, now: Micros, out: &mut Vec<(usize, Segment)>) {
        if self.mp_enabled.is_none() {
            return; // handshake unresolved; SYN timers own liveness
        }
        let unsent = (self.snd_data_base + self.send_buf.len() as u64)
            .saturating_sub(self.snd_data_next);
        let work = unsent > 0 || !self.reinject_queue.is_empty();
        let idle = self.subs.iter().all(|s| s.inflight.is_empty());
        // Probe on a healthy primary when one exists; fall back to any
        // established subflow (a lone backup is better than deadlock).
        let Some(sub) = self
            .subs
            .iter()
            .position(|s| s.established && !s.closed && !s.backup)
            .or_else(|| self.subs.iter().position(|s| s.established && !s.closed))
        else {
            return;
        };
        if !(work && idle) {
            self.persist_deadline = None;
            return;
        }
        match self.persist_deadline {
            None => self.persist_deadline = Some(now + self.subs[sub].rto_us),
            Some(d) if d <= now => {
                self.persist_deadline = None;
                self.persist_probes += 1;
                if unsent > 0 {
                    let off = (self.snd_data_next - self.snd_data_base) as usize;
                    let byte = self.send_buf[off];
                    let dseq = self.snd_data_next;
                    self.snd_data_next += 1;
                    self.transmit_mapped(now, sub, dseq, vec![byte], false, out);
                } else if let Some((dseq, data, is_fin)) = self.reinject_queue.pop_front() {
                    // A stranded reinjection with nothing in flight is the
                    // same trap: force it out on the probe subflow.
                    self.transmit_mapped(now, sub, dseq, data, is_fin, out);
                }
            }
            Some(_) => {}
        }
    }

    fn poll_handshake(&mut self, now: Micros, out: &mut Vec<(usize, Segment)>) {
        // A SYN is (re)sent when never sent, or when unanswered for
        // SYN_RTO (a lost handshake segment must not wedge the subflow).
        let needs_syn = |s: &Subflow| {
            !s.established && (!s.syn_sent || now >= s.syn_sent_at + Self::SYN_RTO)
        };
        match self.role {
            Role::Client => {
                // First subflow SYN.
                if needs_syn(&self.subs[0]) {
                    self.subs[0].syn_sent = true;
                    self.subs[0].syn_sent_at = now;
                    out.push((
                        0,
                        Segment {
                            flags: SegFlags { syn: true, ..Default::default() },
                            options: vec![MptcpOption::MpCapable { key: self.key }],
                            window: self.advertised_window(0),
                            ..Segment::new()
                        },
                    ));
                }
                // Joins once multipath is confirmed. A join SYN carries the
                // subflow's resumed sequence number as its ISN so a rejoin
                // after teardown cannot alias the old incarnation.
                if self.mp_enabled == Some(true) {
                    for i in 1..self.subs.len() {
                        if self.subs[i].want_join
                            && !self.subs[i].closed
                            && needs_syn(&self.subs[i])
                        {
                            self.subs[i].syn_sent = true;
                            self.subs[i].syn_sent_at = now;
                            out.push((
                                i,
                                Segment {
                                    flags: SegFlags { syn: true, ..Default::default() },
                                    subflow_seq: self.subs[i].snd_next,
                                    options: vec![MptcpOption::MpJoin {
                                        token: self.key,
                                        backup: self.subs[i].backup,
                                    }],
                                    window: self.advertised_window(i),
                                    ..Segment::new()
                                },
                            ));
                        }
                    }
                }
            }
            Role::Server => {
                // SYN-ACK replies are produced in poll_acks (ack_pending on
                // a just-established subflow that hasn't SYN-ACKed yet).
                for i in 0..self.subs.len() {
                    if self.subs[i].established && !self.subs[i].syn_sent {
                        self.subs[i].syn_sent = true;
                        self.subs[i].syn_sent_at = now;
                        let mut options = Vec::new();
                        if self.mp_enabled == Some(true) {
                            options.push(if i == 0 {
                                MptcpOption::MpCapable { key: self.key }
                            } else {
                                MptcpOption::MpJoin {
                                    token: self.key,
                                    backup: self.subs[i].backup,
                                }
                            });
                        }
                        out.push((
                            i,
                            Segment {
                                flags: SegFlags { syn: true, ack: true, fin: false },
                                subflow_seq: self.subs[i].snd_next,
                                subflow_ack: self.subs[i].rcv_next,
                                options,
                                window: self.advertised_window(i),
                                ..Segment::new()
                            },
                        ));
                        self.subs[i].ack_pending = false;
                    }
                }
            }
        }
    }

    /// Emit due path-manager signaling: owed `ADD_ADDR`/`REMOVE_ADDR`
    /// echoes plus unacknowledged advertisements (first transmission or
    /// [`crate::path::ADVERT_RTO`] retransmit), carried on a pure ACK on
    /// the first open subflow.
    fn poll_path(&mut self, now: Micros, out: &mut Vec<(usize, Segment)>) {
        if self.mp_enabled != Some(true) || !self.path.has_pending() {
            return;
        }
        let Some(sub) = self.subs.iter().position(|s| s.established && !s.closed) else {
            return; // no carrier yet; advertisements stay queued
        };
        let mut options = self.path.due_options(now);
        if options.is_empty() {
            return;
        }
        options.push(MptcpOption::Dss { data_seq: None, data_ack: Some(self.rcv_data_next) });
        let window = self.advertised_window(sub);
        let s = &mut self.subs[sub];
        s.ack_pending = false; // this segment is itself an ACK
        out.push((
            sub,
            Segment {
                subflow_seq: s.snd_next,
                subflow_ack: s.rcv_next,
                flags: SegFlags { ack: true, ..Default::default() },
                window,
                options,
                payload: Vec::new(),
            },
        ));
    }

    fn poll_timers(&mut self, now: Micros, out: &mut Vec<(usize, Segment)>) {
        for sub in 0..self.subs.len() {
            let due = self.subs[sub]
                .rto_deadline
                .is_some_and(|d| d <= now);
            if !due {
                continue;
            }
            let s = &mut self.subs[sub];
            if s.inflight.is_empty() {
                s.rto_deadline = None;
                continue;
            }
            s.timeouts += 1;
            s.rto_backoffs += 1;
            s.rto_us = (s.rto_us * 2).min(60_000_000);
            s.rto_deadline = Some(now + s.rto_us);
            // Failure clock for the failover state machine: stamped at the
            // first unanswered primary RTO, cleared by primary progress.
            let is_primary = !s.backup;
            if is_primary && !self.backup_active && self.primary_down_since.is_none() {
                self.primary_down_since = Some(now);
            }
            // Collapse to one MSS, slow-start back (standard RTO response).
            // The threshold level comes from the controller: halving for
            // the pure rules (as before), the per-controller loss rule for
            // stateful ones — which is also their loss-epoch hook (CUBIC's
            // w_max, OLIA's counters must see RTO losses too).
            let mss = self.cfg.mss as f64;
            let level_pkts = match &mut self.cc {
                CcDriver::Pure(_) => self.subs[sub].cwnd_bytes / mss / 2.0,
                CcDriver::Stateful(cc) => {
                    let snaps = snapshots_of(&self.subs, mss);
                    cc.clamped_window_after_loss(sub, &snaps, now as f64 / 1e6)
                }
            };
            let s = &mut self.subs[sub];
            s.ssthresh_bytes = (level_pkts * mss).max(2.0 * mss);
            s.cwnd_bytes = mss;
            s.in_recovery = false;
            s.dup_acks = 0;
            for seg in &mut s.inflight {
                seg.retransmitted = true; // Karn
            }
            // Queue everything this subflow still holds for reinjection on
            // another subflow — a dead path must not stall the stream (§6).
            // Each data range is reinjected at most once; the receiver's
            // data-level reassembly discards whichever copy arrives second.
            // Only meaningful with MPTCP in use: in fallback mode there is
            // no DSS mapping, so a reinjected copy (with a fresh subflow
            // sequence number) would corrupt the stream.
            if self.cfg.reinject && self.mp_enabled == Some(true) && self.subs.len() > 1 {
                let pending: Vec<(u64, Vec<u8>, bool)> = self.subs[sub]
                    .inflight
                    .iter()
                    .filter(|h| {
                        h.data_seq + (h.payload.len() as u64).max(1) > self.data_acked
                            && !self.reinjected.contains(&h.data_seq)
                    })
                    .map(|h| (h.data_seq, h.payload.clone(), h.is_fin))
                    .collect();
                for (dseq, data, is_fin) in pending {
                    self.reinjected.insert(dseq);
                    self.reinject_queue.push_back((dseq, data, is_fin));
                }
            }
            self.retransmit_first_unacked_into(now, sub, out);
        }
    }

    /// Retransmit from ACK-processing context: buffered until the next
    /// `poll`, which keeps segment emission on a single channel.
    fn retransmit_first_unacked(&mut self, now: Micros, sub: usize) {
        let mut scratch = Vec::new();
        self.retransmit_first_unacked_into(now, sub, &mut scratch);
        self.pending_out.extend(scratch);
    }

    fn retransmit_first_unacked_into(
        &mut self,
        now: Micros,
        sub: usize,
        out: &mut Vec<(usize, Segment)>,
    ) {
        let window = self.advertised_window(sub);
        let dack = if self.mp_enabled == Some(true) {
            Some(self.rcv_data_next)
        } else {
            None
        };
        let s = &mut self.subs[sub];
        let Some(seg) = s.inflight.front_mut() else { return };
        seg.sent_at = now;
        seg.retransmitted = true;
        s.retransmits += 1;
        let mut options = Vec::new();
        if self.mp_enabled == Some(true) {
            options.push(MptcpOption::Dss { data_seq: Some(seg.data_seq), data_ack: dack });
        }
        out.push((
            sub,
            Segment {
                subflow_seq: seg.sub_seq,
                subflow_ack: s.rcv_next,
                flags: SegFlags { ack: true, fin: seg.is_fin, syn: false },
                window,
                options,
                payload: seg.payload.clone(),
            },
        ));
    }

    fn poll_data(&mut self, now: Micros, out: &mut Vec<(usize, Segment)>) {
        // Flush retransmissions queued from ACK processing first.
        out.append(&mut self.pending_out);
        if self.mp_enabled.is_none() {
            return; // handshake not finished
        }
        let usable: Vec<usize> = if self.is_fallback() {
            vec![0]
        } else {
            // A subflow in repeated RTO backoff is "potentially failed":
            // it keeps probing via its own retransmissions, but gets no
            // new data mappings and no reinjections until it recovers.
            let healthy = |s: &Subflow| {
                s.established
                    && !s.closed
                    && s.rto_backoffs < mptcp_cc::POTENTIALLY_FAILED_RTO_BACKOFFS
            };
            let primaries: Vec<usize> = (0..self.subs.len())
                .filter(|&i| !self.subs[i].backup && healthy(&self.subs[i]))
                .collect();
            if !primaries.is_empty() {
                // Recovered: a primary is usable, warm backups stand down.
                self.backup_active = false;
                primaries
            } else {
                // Failover: every non-backup subflow is potentially failed
                // or closed, so data moves onto the warm backups.
                let backups: Vec<usize> = (0..self.subs.len())
                    .filter(|&i| self.subs[i].backup && healthy(&self.subs[i]))
                    .collect();
                if !backups.is_empty() && !self.backup_active {
                    self.backup_active = true;
                    self.backup_activations += 1;
                    self.failover_latency_us =
                        Some(now - self.primary_down_since.unwrap_or(now));
                }
                backups
            }
        };
        if usable.is_empty() {
            return;
        }
        // Reinjections take priority: send each on the least-loaded usable
        // subflow with window space.
        while let Some((dseq, data, is_fin)) = self.reinject_queue.pop_front() {
            let Some(&sub) = usable
                .iter()
                .find(|&&i| {
                    (self.subs[i].bytes_in_flight() as f64) + (data.len() as f64)
                        <= self.subs[i].cwnd_bytes
                })
            else {
                self.reinject_queue.push_front((dseq, data, is_fin));
                break;
            };
            self.transmit_mapped(now, sub, dseq, data, is_fin, out);
        }
        // New data, striped round-robin over subflows with window space.
        loop {
            let mut progressed = false;
            for &sub in &usable {
                let mss = self.cfg.mss;
                let s = &self.subs[sub];
                let cwnd_space =
                    s.cwnd_bytes - s.bytes_in_flight() as f64 >= 1.0;
                // Peer flow control: in Shared mode the window is measured
                // from the peer's data-level cumulative ACK; in PerSubflow
                // mode from the subflow ACK.
                let fc_ok = match self.cfg.recv_mode {
                    RecvBufferMode::Shared => {
                        self.snd_data_next < self.data_acked + s.peer_window as u64
                    }
                    RecvBufferMode::PerSubflow => {
                        s.bytes_in_flight() < s.peer_window
                    }
                };
                let unsent = (self.snd_data_base + self.send_buf.len() as u64)
                    .saturating_sub(self.snd_data_next);
                if !cwnd_space || !fc_ok || unsent == 0 {
                    continue;
                }
                let fc_room = match self.cfg.recv_mode {
                    RecvBufferMode::Shared => {
                        (self.data_acked + s.peer_window as u64)
                            .saturating_sub(self.snd_data_next)
                    }
                    RecvBufferMode::PerSubflow => {
                        (s.peer_window - s.bytes_in_flight()) as u64
                    }
                };
                let len = (mss as u64).min(unsent).min(fc_room) as usize;
                if len == 0 {
                    continue;
                }
                let off = (self.snd_data_next - self.snd_data_base) as usize;
                let data: Vec<u8> =
                    self.send_buf.iter().skip(off).take(len).copied().collect();
                let dseq = self.snd_data_next;
                self.snd_data_next += len as u64;
                self.transmit_mapped(now, sub, dseq, data, false, out);
                progressed = true;
            }
            if !progressed {
                break;
            }
        }
        // FIN once everything is mapped. The FIN occupies one subflow
        // sequence number and is retransmitted by the normal RTO machinery
        // like any data segment, so its loss cannot wedge the teardown.
        let all_mapped =
            self.snd_data_next == self.snd_data_base + self.send_buf.len() as u64;
        if self.fin_queued && all_mapped && self.fin_seq.is_none() {
            let fin_seq = *self.fin_seq.get_or_insert(self.snd_data_next);
            let sub = usable[0];
            let window = self.advertised_window(sub);
            let mut options = Vec::new();
            if self.mp_enabled == Some(true) {
                options.push(MptcpOption::Dss {
                    data_seq: Some(fin_seq),
                    data_ack: Some(self.rcv_data_next),
                });
            }
            let s = &mut self.subs[sub];
            let sub_seq = s.snd_next;
            s.snd_next = s.snd_next.wrapping_add(1);
            s.inflight.push_back(SentSeg {
                sub_seq,
                data_seq: fin_seq,
                payload: Vec::new(),
                sent_at: now,
                retransmitted: false,
                is_fin: true,
            });
            if s.rto_deadline.is_none() {
                s.rto_deadline = Some(now + s.rto_us);
            }
            out.push((
                sub,
                Segment {
                    subflow_seq: sub_seq,
                    subflow_ack: s.rcv_next,
                    flags: SegFlags { ack: true, fin: true, syn: false },
                    window,
                    options,
                    payload: Vec::new(),
                },
            ));
        }
    }

    fn transmit_mapped(
        &mut self,
        now: Micros,
        sub: usize,
        dseq: u64,
        data: Vec<u8>,
        is_fin: bool,
        out: &mut Vec<(usize, Segment)>,
    ) {
        let window = self.advertised_window(sub);
        let dack = self.rcv_data_next;
        let mp = self.mp_enabled == Some(true);
        let s = &mut self.subs[sub];
        let sub_seq = s.snd_next;
        let seq_len = if is_fin { 1 } else { data.len() as u32 };
        s.snd_next = s.snd_next.wrapping_add(seq_len);
        s.data_bytes_sent += data.len() as u64;
        s.inflight.push_back(SentSeg {
            sub_seq,
            data_seq: dseq,
            payload: data.clone(),
            sent_at: now,
            retransmitted: false,
            is_fin,
        });
        if s.rto_deadline.is_none() {
            s.rto_deadline = Some(now + s.rto_us);
        }
        let mut options = Vec::new();
        if mp {
            options.push(MptcpOption::Dss { data_seq: Some(dseq), data_ack: Some(dack) });
        }
        out.push((
            sub,
            Segment {
                subflow_seq: sub_seq,
                subflow_ack: s.rcv_next,
                flags: SegFlags { ack: true, fin: is_fin, syn: false },
                window,
                options,
                payload: data,
            },
        ));
    }

    fn poll_acks(&mut self, out: &mut Vec<(usize, Segment)>) {
        for sub in 0..self.subs.len() {
            if !self.subs[sub].established || !self.subs[sub].ack_pending {
                continue;
            }
            let window = self.advertised_window(sub);
            let mut options = Vec::new();
            if self.mp_enabled == Some(true) {
                options.push(MptcpOption::Dss {
                    data_seq: None,
                    data_ack: Some(self.rcv_data_next),
                });
            }
            let s = &mut self.subs[sub];
            s.ack_pending = false;
            out.push((
                sub,
                Segment {
                    subflow_seq: s.snd_next,
                    subflow_ack: s.rcv_next,
                    flags: SegFlags { ack: true, ..Default::default() },
                    window,
                    options,
                    payload: Vec::new(),
                },
            ));
        }
    }

    fn snapshots(&self) -> Vec<SubflowSnapshot> {
        snapshots_of(&self.subs, self.cfg.mss as f64)
    }
}

/// Congestion-control snapshots of every subflow. A free function (not a
/// method) so ACK processing can call it while the controller field is
/// mutably borrowed. Closed subflows are marked inactive: they must not
/// count toward live-path weights (EWTCP's equal split, OLIA/BALIA's path
/// sums).
fn snapshots_of(subs: &[Subflow], mss: f64) -> Vec<SubflowSnapshot> {
    subs.iter()
        .map(|s| {
            SubflowSnapshot::new(
                (s.cwnd_bytes / mss).max(1e-6),
                s.srtt_us.unwrap_or(100_000.0) / 1e6,
            )
            .active(!s.closed)
        })
        .collect()
}


#[cfg(test)]
mod tests {
    use super::*;

    fn pair() -> (Endpoint, Endpoint) {
        let cfg = EndpointConfig::default();
        (Endpoint::client(cfg, 2, 7), Endpoint::server(cfg, 2, 7))
    }

    /// Shuttle every pending segment between the two endpoints once.
    fn exchange(now: Micros, a: &mut Endpoint, b: &mut Endpoint) {
        for (sub, seg) in a.poll(now) {
            b.on_segment(now, sub, seg);
        }
        for (sub, seg) in b.poll(now) {
            a.on_segment(now, sub, seg);
        }
    }

    #[test]
    fn handshake_establishes_all_subflows() {
        let (mut c, mut s) = pair();
        for t in 1..6 {
            exchange(t * 1000, &mut c, &mut s);
        }
        assert!(c.subflow_established(0) && c.subflow_established(1));
        assert!(s.subflow_established(0) && s.subflow_established(1));
        assert!(!c.is_fallback());
    }

    #[test]
    fn stripped_capability_triggers_fallback() {
        let (mut c, mut s) = pair();
        // Deliver the client's SYN with its options removed.
        let mut syns = c.poll(1000);
        assert_eq!(syns.len(), 1, "only the first subflow SYNs initially");
        let (sub, mut syn) = syns.remove(0);
        syn.options.clear();
        s.on_segment(1000, sub, syn);
        for t in 2..6 {
            exchange(t * 1000, &mut c, &mut s);
        }
        assert!(c.is_fallback() && s.is_fallback());
        assert!(!c.subflow_established(1), "no join after fallback");
    }

    #[test]
    fn join_with_wrong_token_is_ignored() {
        let cfg = EndpointConfig::default();
        let mut c = Endpoint::client(cfg, 2, 7);
        let mut s = Endpoint::server(cfg, 2, 1234); // different key
        for t in 1..8 {
            exchange(t * 1000, &mut c, &mut s);
        }
        // Subflow 0 negotiates MP (keys aren't checked on MP_CAPABLE in
        // this model) but the join token mismatch kills subflow 1.
        assert!(!s.subflow_established(1), "server must reject a bad join token");
    }

    #[test]
    fn write_respects_send_buffer_capacity() {
        let (mut c, _s) = pair();
        let big = vec![0u8; 1_000_000];
        let n = c.write(&big);
        assert_eq!(n, EndpointConfig::default().send_buf);
        assert_eq!(c.write(&big), 0, "buffer full");
    }

    #[test]
    fn data_flows_after_handshake_and_data_acks_free_the_buffer() {
        let (mut c, mut s) = pair();
        for t in 1..4 {
            exchange(t * 1000, &mut c, &mut s);
        }
        let data = vec![9u8; 5_000];
        assert_eq!(c.write(&data), 5_000);
        for t in 4..40 {
            exchange(t * 1000, &mut c, &mut s);
        }
        let mut buf = [0u8; 8_192];
        let n = s.read(&mut buf);
        assert_eq!(n, 5_000);
        assert!(buf[..n].iter().all(|&b| b == 9));
        assert_eq!(c.peer_data_acked(), 5_000, "data ACK must cover the stream");
        assert!(c.write(&vec![1u8; 1_000]) > 0, "buffer space freed");
    }

    /// Single subflow, a 2-MSS shared receive buffer, and a 10 kB stream:
    /// the sender must fill the window, stall, and resume cleanly when the
    /// application drains the buffer.
    fn small_window_pair() -> (Endpoint, Endpoint) {
        let cfg = EndpointConfig {
            mss: 1000,
            send_buf: 10_000,
            recv_buf: 2_000,
            initial_cwnd: 2.0,
            ..Default::default()
        };
        (Endpoint::client(cfg, 1, 7), Endpoint::server(cfg, 1, 7))
    }

    /// Drive a `small_window_pair` to the zero-window stall: 2 000 bytes
    /// buffered at the receiver, nothing in flight, 8 000 still queued.
    fn fill_to_zero_window(c: &mut Endpoint, s: &mut Endpoint) {
        for t in 1..4 {
            exchange(t * 1000, c, s);
        }
        assert_eq!(c.write(&vec![8u8; 10_000]), 10_000);
        for t in 4..50 {
            exchange(t * 1000, c, s);
        }
        assert_eq!(s.stats().recv_buffered, 2_000, "receive buffer must be full");
        assert_eq!(c.peer_data_acked(), 2_000);
        assert_eq!(c.stats().subflows[0].bytes_in_flight, 0, "all copies acked");
        assert_eq!(c.stats().send_buffered, 8_000);
    }

    #[test]
    fn zero_window_fill_drain_resume() {
        let (mut c, mut s) = small_window_pair();
        fill_to_zero_window(&mut c, &mut s);
        // Drain; the reader's window update lets the sender resume at once.
        let mut buf = [0u8; 4096];
        let mut total = s.read(&mut buf);
        assert_eq!(total, 2_000);
        for t in 50..1500 {
            exchange(t * 1000, &mut c, &mut s);
            total += s.read(&mut buf);
        }
        assert_eq!(total, 10_000, "stream must complete after the drain");
        assert_eq!(
            c.stats().persist_probes,
            0,
            "window update arrived promptly; no probe should have fired"
        );
    }

    #[test]
    fn lost_window_update_does_not_deadlock() {
        let (mut c, mut s) = small_window_pair();
        fill_to_zero_window(&mut c, &mut s);
        let mut buf = [0u8; 4096];
        let mut total = s.read(&mut buf);
        assert_eq!(total, 2_000);
        // The window-update ACK is a pure ACK: lose it. Pre-persist-timer,
        // this wedged the connection forever (sender flow-control-blocked
        // with an empty inflight has no timer left to fire).
        let lost = s.poll(50 * 1000);
        assert!(
            lost.iter().any(|(_, seg)| seg.flags.ack && seg.payload.is_empty()),
            "the drain must have produced a window update to lose: {lost:?}"
        );
        for t in 51..3000 {
            exchange(t * 1000, &mut c, &mut s);
            total += s.read(&mut buf);
        }
        assert_eq!(total, 10_000, "persist probe must rescue the transfer");
        assert!(
            c.stats().persist_probes >= 1,
            "recovery must have come from the zero-window probe"
        );
    }

    #[test]
    fn striping_uses_both_subflows() {
        let (mut c, mut s) = pair();
        for t in 1..4 {
            exchange(t * 1000, &mut c, &mut s);
        }
        c.write(&vec![3u8; 40_000]);
        let mut used = [false, false];
        for t in 4..200 {
            for (sub, seg) in c.poll(t * 1000) {
                if !seg.payload.is_empty() {
                    used[sub] = true;
                }
                s.on_segment(t * 1000, sub, seg);
            }
            for (sub, seg) in s.poll(t * 1000) {
                c.on_segment(t * 1000, sub, seg);
            }
            let mut buf = [0u8; 4096];
            while s.read(&mut buf) > 0 {}
        }
        assert!(used[0] && used[1], "data must be striped over both subflows: {used:?}");
    }

    #[test]
    fn lost_segment_is_fast_retransmitted() {
        let (mut c, mut s) = pair();
        for t in 1..4 {
            exchange(t * 1000, &mut c, &mut s);
        }
        c.write(&vec![5u8; 30_000]);
        let mut dropped_one = false;
        for t in 4..3000 {
            for (sub, seg) in c.poll(t * 1000) {
                // Drop the first data segment on subflow 0 only.
                if !dropped_one && sub == 0 && !seg.payload.is_empty() {
                    dropped_one = true;
                    continue;
                }
                s.on_segment(t * 1000, sub, seg);
            }
            for (sub, seg) in s.poll(t * 1000) {
                c.on_segment(t * 1000, sub, seg);
            }
            let mut buf = [0u8; 4096];
            while s.read(&mut buf) > 0 {}
        }
        let (retx, _) = c.subflow_retransmits(0);
        assert!(dropped_one);
        assert!(retx >= 1, "the hole must be retransmitted");
        assert_eq!(s.total_received, 30_000, "stream completes despite the drop");
    }

    #[test]
    fn fin_is_retransmitted_after_rto_until_acked() {
        let (mut c, mut s) = pair();
        for t in 1..4 {
            exchange(t * 1000, &mut c, &mut s);
        }
        c.close();
        // First FIN is lost (we just don't deliver it).
        let out = c.poll(10_000);
        assert!(out.iter().any(|(_, seg)| seg.flags.fin), "FIN emitted");
        assert!(!c.send_complete(), "FIN unacked");
        // After the retransmission timeout the FIN is re-sent and this
        // time delivered (it occupies a subflow sequence number, so the
        // ordinary RTO machinery owns it).
        let mut seen_fin_again = false;
        for t in 0..10 {
            let now = 1_200_000 + t * 100_000;
            for (sub, seg) in c.poll(now) {
                seen_fin_again |= seg.flags.fin;
                s.on_segment(now, sub, seg);
            }
            for (sub, seg) in s.poll(now) {
                c.on_segment(now, sub, seg);
            }
        }
        assert!(seen_fin_again, "FIN must be retransmitted");
        assert!(c.send_complete(), "FIN data-acked");
        assert!(s.at_eof());
    }

    #[test]
    fn stale_data_duplicates_are_discarded() {
        let (mut c, mut s) = pair();
        for t in 1..4 {
            exchange(t * 1000, &mut c, &mut s);
        }
        c.write(&vec![8u8; 2_000]);
        // Capture and deliver the data twice.
        let mut captured = Vec::new();
        for t in 4..20 {
            for (sub, seg) in c.poll(t * 1000) {
                if !seg.payload.is_empty() {
                    captured.push((sub, seg.clone()));
                }
                s.on_segment(t * 1000, sub, seg);
            }
            for (sub, seg) in s.poll(t * 1000) {
                c.on_segment(t * 1000, sub, seg);
            }
        }
        let before = s.total_received;
        for (sub, seg) in captured {
            s.on_segment(21_000, sub, seg);
        }
        assert_eq!(s.total_received, before, "duplicates must not re-deliver");
    }

    #[test]
    fn stats_reflect_connection_state() {
        let (mut c, mut s) = pair();
        for t in 1..4 {
            exchange(t * 1000, &mut c, &mut s);
        }
        c.write(&vec![1u8; 10_000]);
        for t in 4..60 {
            exchange(t * 1000, &mut c, &mut s);
        }
        let mut buf = [0u8; 16_384];
        let n = s.read(&mut buf);
        let cs = c.stats();
        let ss = s.stats();
        assert_eq!(cs.mp_enabled, Some(true));
        assert_eq!(cs.data_sent, 10_000);
        assert_eq!(cs.data_acked, 10_000);
        assert_eq!(ss.data_received, 10_000);
        assert_eq!(n, 10_000);
        assert_eq!(ss.recv_buffered, 0, "read drained the buffer");
        assert_eq!(cs.subflows.len(), 2);
        assert!(cs.subflows.iter().all(|f| f.established && !f.potentially_failed));
    }

    #[test]
    #[should_panic]
    fn write_after_close_panics() {
        let (mut c, _s) = pair();
        c.close();
        c.write(b"late");
    }

    #[test]
    #[should_panic]
    fn unknown_subflow_index_panics() {
        let (mut c, _s) = pair();
        c.on_segment(0, 5, Segment::new());
    }
}
