//! Segments and their wire encoding.
//!
//! The format mirrors how real MPTCP rides on TCP: a conventional header
//! (subflow sequence/ACK numbers, flags, advertised window) plus a list of
//! options. MPTCP-specific information — capability negotiation, join
//! tokens, data sequence mappings and data ACKs — travels **only** in
//! options, which is exactly what lets a middlebox strip them and the
//! endpoints fall back to regular TCP (§6).

/// TCP-style header flags.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SegFlags {
    /// Connection/subflow setup.
    pub syn: bool,
    /// The `subflow_ack` field is valid.
    pub ack: bool,
    /// Sender is done writing.
    pub fin: bool,
}

/// MPTCP options (§6 "Encoding": "Our implementation conveys data acks
/// using TCP options … we also encode data sequence numbers in TCP
/// options").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MptcpOption {
    /// First-subflow SYN: negotiate multipath capability.
    MpCapable {
        /// Key identifying the connection (simplified from the real
        /// crypto handshake).
        key: u64,
    },
    /// Additional-subflow SYN: "a TCP option in the SYN packets of the new
    /// subflows allows the recipient to tie the subflow into the existing
    /// connection".
    MpJoin {
        /// Token derived from the connection key.
        token: u64,
        /// Backup-priority bit: the subflow is negotiated and kept warm but
        /// must carry no data while any non-backup subflow is healthy.
        backup: bool,
    },
    /// Data Sequence Signal: maps this segment's payload into the data
    /// stream and/or carries the data-level cumulative ACK.
    Dss {
        /// Data sequence number of the first payload byte, if the segment
        /// carries a mapping.
        data_seq: Option<u64>,
        /// Data-level cumulative ACK ("an explicit data acknowledgment
        /// field in addition to the subflow acknowledgment field").
        data_ack: Option<u64>,
    },
    /// Path-manager advertisement: the sender has an additional address the
    /// peer may join a subflow to. `addr_id` names the endpoint (here: the
    /// wire/subflow index); `echo` turns the option into the peer's
    /// acknowledgment of a received advertisement, which stops the
    /// deterministic retransmit of the original.
    AddAddr {
        /// Stable identifier of the advertised endpoint.
        addr_id: u8,
        /// Advertised endpoint should be joined at backup priority.
        backup: bool,
        /// This option acknowledges a received `AddAddr` rather than
        /// advertising (mirrors the RFC 8684 echo bit).
        echo: bool,
    },
    /// Path-manager withdrawal: the address is gone; the peer must tear
    /// down any subflow using it. Carries an echo/ack bit like [`AddAddr`]
    /// so withdrawals are also retransmitted until acknowledged (a
    /// determinism-friendly extension of RFC 8684, which leaves
    /// `REMOVE_ADDR` unacknowledged).
    RemoveAddr {
        /// Identifier of the withdrawn endpoint.
        addr_id: u8,
        /// This option acknowledges a received `RemoveAddr`.
        echo: bool,
    },
}

/// A segment on a subflow. Sequence numbers are in **bytes**, like TCP.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Segment {
    /// Subflow sequence number of the first payload byte.
    pub subflow_seq: u32,
    /// Subflow-level cumulative ACK (valid when `flags.ack`).
    pub subflow_ack: u32,
    /// Header flags.
    pub flags: SegFlags,
    /// Advertised receive window in bytes. With the shared receive buffer
    /// this is measured relative to the data-level cumulative ACK (§6
    /// "Flow Control"); in the rejected per-subflow mode it is relative to
    /// the subflow ACK.
    pub window: u32,
    /// Options.
    pub options: Vec<MptcpOption>,
    /// Payload bytes.
    pub payload: Vec<u8>,
}

impl Segment {
    /// An empty segment template.
    pub fn new() -> Self {
        Self {
            subflow_seq: 0,
            subflow_ack: 0,
            flags: SegFlags::default(),
            window: 0,
            options: Vec::new(),
            payload: Vec::new(),
        }
    }

    /// The DSS option of this segment, if present.
    pub fn dss(&self) -> Option<(Option<u64>, Option<u64>)> {
        self.options.iter().find_map(|o| match o {
            MptcpOption::Dss { data_seq, data_ack } => Some((*data_seq, *data_ack)),
            _ => None,
        })
    }

    /// Whether this segment carries any MPTCP option (a middlebox that
    /// strips options turns this off — see [`crate::wire::WireFault`]).
    pub fn has_mptcp_options(&self) -> bool {
        !self.options.is_empty()
    }

    /// Serialize to bytes. The format is length-prefixed and versionless;
    /// it exists so that middlebox interference (byte-level rewriting) can
    /// be modelled faithfully and so the decoder's bounds checking is real.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(24 + self.payload.len());
        let mut flags = 0u8;
        if self.flags.syn {
            flags |= 0x01;
        }
        if self.flags.ack {
            flags |= 0x02;
        }
        if self.flags.fin {
            flags |= 0x04;
        }
        out.push(flags);
        out.extend_from_slice(&self.subflow_seq.to_be_bytes());
        out.extend_from_slice(&self.subflow_ack.to_be_bytes());
        out.extend_from_slice(&self.window.to_be_bytes());
        out.push(self.options.len() as u8);
        for opt in &self.options {
            match opt {
                MptcpOption::MpCapable { key } => {
                    out.push(0x01);
                    out.extend_from_slice(&key.to_be_bytes());
                }
                MptcpOption::MpJoin { token, backup } => {
                    out.push(0x02);
                    out.extend_from_slice(&token.to_be_bytes());
                    out.push(u8::from(*backup));
                }
                MptcpOption::Dss { data_seq, data_ack } => {
                    out.push(0x03);
                    let mut present = 0u8;
                    if data_seq.is_some() {
                        present |= 0x01;
                    }
                    if data_ack.is_some() {
                        present |= 0x02;
                    }
                    out.push(present);
                    if let Some(s) = data_seq {
                        out.extend_from_slice(&s.to_be_bytes());
                    }
                    if let Some(a) = data_ack {
                        out.extend_from_slice(&a.to_be_bytes());
                    }
                }
                MptcpOption::AddAddr { addr_id, backup, echo } => {
                    out.push(0x04);
                    out.push(*addr_id);
                    let mut bits = 0u8;
                    if *echo {
                        bits |= 0x01;
                    }
                    if *backup {
                        bits |= 0x02;
                    }
                    out.push(bits);
                }
                MptcpOption::RemoveAddr { addr_id, echo } => {
                    out.push(0x05);
                    out.push(*addr_id);
                    out.push(u8::from(*echo));
                }
            }
        }
        out.extend_from_slice(&(self.payload.len() as u32).to_be_bytes());
        out.extend_from_slice(&self.payload);
        out
    }

    /// Parse from bytes.
    pub fn decode(buf: &[u8]) -> Result<Segment, DecodeError> {
        let mut r = Reader { buf, pos: 0 };
        let flags = r.u8()?;
        let mut seg = Segment::new();
        seg.flags = SegFlags {
            syn: flags & 0x01 != 0,
            ack: flags & 0x02 != 0,
            fin: flags & 0x04 != 0,
        };
        if flags & !0x07 != 0 {
            return Err(DecodeError::BadFlags(flags));
        }
        seg.subflow_seq = r.u32()?;
        seg.subflow_ack = r.u32()?;
        seg.window = r.u32()?;
        let n_opts = r.u8()?;
        for _ in 0..n_opts {
            let kind = r.u8()?;
            let opt = match kind {
                0x01 => MptcpOption::MpCapable { key: r.u64()? },
                0x02 => {
                    let token = r.u64()?;
                    let bits = r.u8()?;
                    if bits & !0x01 != 0 {
                        return Err(DecodeError::BadOption(kind));
                    }
                    MptcpOption::MpJoin { token, backup: bits & 0x01 != 0 }
                }
                0x03 => {
                    let present = r.u8()?;
                    if present & !0x03 != 0 {
                        return Err(DecodeError::BadOption(kind));
                    }
                    let data_seq = if present & 0x01 != 0 { Some(r.u64()?) } else { None };
                    let data_ack = if present & 0x02 != 0 { Some(r.u64()?) } else { None };
                    MptcpOption::Dss { data_seq, data_ack }
                }
                0x04 => {
                    let addr_id = r.u8()?;
                    let bits = r.u8()?;
                    if bits & !0x03 != 0 {
                        return Err(DecodeError::BadOption(kind));
                    }
                    MptcpOption::AddAddr {
                        addr_id,
                        backup: bits & 0x02 != 0,
                        echo: bits & 0x01 != 0,
                    }
                }
                0x05 => {
                    let addr_id = r.u8()?;
                    let bits = r.u8()?;
                    if bits & !0x01 != 0 {
                        return Err(DecodeError::BadOption(kind));
                    }
                    MptcpOption::RemoveAddr { addr_id, echo: bits & 0x01 != 0 }
                }
                other => return Err(DecodeError::BadOption(other)),
            };
            seg.options.push(opt);
        }
        let len = r.u32()? as usize;
        let payload = r.bytes(len)?;
        seg.payload = payload.to_vec();
        if r.pos != buf.len() {
            return Err(DecodeError::TrailingBytes(buf.len() - r.pos));
        }
        Ok(seg)
    }
}

impl Default for Segment {
    fn default() -> Self {
        Self::new()
    }
}

/// Errors from [`Segment::decode`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// The buffer ended before the structure did.
    Truncated,
    /// Unknown flag bits set.
    BadFlags(u8),
    /// Unknown or malformed option kind.
    BadOption(u8),
    /// Bytes left over after the payload.
    TrailingBytes(usize),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "segment truncated"),
            DecodeError::BadFlags(b) => write!(f, "unknown flag bits {b:#04x}"),
            DecodeError::BadOption(k) => write!(f, "unknown option kind {k:#04x}"),
            DecodeError::TrailingBytes(n) => write!(f, "{n} trailing bytes"),
        }
    }
}

impl std::error::Error for DecodeError {}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn bytes(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.pos + n > self.buf.len() {
            return Err(DecodeError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.bytes(1)?[0])
    }
    fn u32(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_be_bytes(self.bytes(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> Result<u64, DecodeError> {
        Ok(u64::from_be_bytes(self.bytes(8)?.try_into().unwrap()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Segment {
        Segment {
            subflow_seq: 1000,
            subflow_ack: 555,
            flags: SegFlags { syn: false, ack: true, fin: false },
            window: 65535,
            options: vec![MptcpOption::Dss { data_seq: Some(1 << 40), data_ack: Some(777) }],
            payload: b"hello multipath world".to_vec(),
        }
    }

    #[test]
    fn roundtrip_data_segment() {
        let seg = sample();
        let bytes = seg.encode();
        assert_eq!(Segment::decode(&bytes).unwrap(), seg);
    }

    #[test]
    fn roundtrip_syn_with_capable() {
        let seg = Segment {
            flags: SegFlags { syn: true, ack: false, fin: false },
            options: vec![MptcpOption::MpCapable { key: 0xDEADBEEF }],
            ..Segment::new()
        };
        assert_eq!(Segment::decode(&seg.encode()).unwrap(), seg);
    }

    #[test]
    fn roundtrip_join_and_partial_dss() {
        for dss in [
            MptcpOption::Dss { data_seq: Some(9), data_ack: None },
            MptcpOption::Dss { data_seq: None, data_ack: Some(3) },
            MptcpOption::Dss { data_seq: None, data_ack: None },
        ] {
            let seg = Segment {
                options: vec![MptcpOption::MpJoin { token: 42, backup: false }, dss],
                ..Segment::new()
            };
            assert_eq!(Segment::decode(&seg.encode()).unwrap(), seg);
        }
    }

    #[test]
    fn roundtrip_path_manager_options() {
        for opt in [
            MptcpOption::MpJoin { token: 7, backup: true },
            MptcpOption::AddAddr { addr_id: 2, backup: false, echo: false },
            MptcpOption::AddAddr { addr_id: 3, backup: true, echo: true },
            MptcpOption::RemoveAddr { addr_id: 1, echo: false },
            MptcpOption::RemoveAddr { addr_id: 9, echo: true },
        ] {
            let seg = Segment { options: vec![opt], ..Segment::new() };
            assert_eq!(Segment::decode(&seg.encode()).unwrap(), seg);
        }
    }

    #[test]
    fn bad_option_bits_rejected() {
        // Reserved bits in the AddAddr/RemoveAddr/MpJoin flag bytes must
        // error, not silently decode to something else.
        for (opt, flag_bit) in [
            (MptcpOption::AddAddr { addr_id: 1, backup: false, echo: false }, 0x04u8),
            (MptcpOption::RemoveAddr { addr_id: 1, echo: false }, 0x02),
            (MptcpOption::MpJoin { token: 1, backup: false }, 0x02),
        ] {
            let seg = Segment { options: vec![opt], ..Segment::new() };
            let mut bytes = seg.encode();
            // The flag byte is the last option byte, just before the 4-byte
            // payload length (payload is empty).
            let idx = bytes.len() - 5;
            bytes[idx] |= flag_bit;
            assert!(
                matches!(Segment::decode(&bytes), Err(DecodeError::BadOption(_))),
                "reserved bit {flag_bit:#04x} in {opt:?} must be rejected"
            );
        }
    }

    #[test]
    fn truncated_inputs_error_cleanly() {
        let bytes = sample().encode();
        for cut in 0..bytes.len() {
            let res = Segment::decode(&bytes[..cut]);
            assert!(res.is_err(), "decode of {cut}-byte prefix should fail");
        }
    }

    #[test]
    fn trailing_garbage_rejected() {
        let mut bytes = sample().encode();
        bytes.push(0);
        assert_eq!(Segment::decode(&bytes), Err(DecodeError::TrailingBytes(1)));
    }

    #[test]
    fn unknown_option_rejected() {
        let mut seg = sample();
        seg.options.clear();
        let mut bytes = seg.encode();
        // Splice in a bogus option count/kind: set option count to 1 and
        // append kind 0x7F before the payload length. Easier: hand-craft.
        bytes[13] = 1; // option count offset: 1 flags + 4 + 4 + 4 = 13
        bytes.insert(14, 0x7F);
        assert!(matches!(Segment::decode(&bytes), Err(DecodeError::BadOption(0x7F))));
    }

    #[test]
    fn dss_accessor_finds_option() {
        let seg = sample();
        assert_eq!(seg.dss(), Some((Some(1 << 40), Some(777))));
        assert!(Segment::new().dss().is_none());
        assert!(seg.has_mptcp_options());
    }
}
