//! A deterministic two-endpoint test harness.
//!
//! Connects a client and a server endpoint over one [`Wire`] per subflow
//! and steps the world forward on a fixed tick, delivering due segments
//! and polling both endpoints. Used by the crate's tests and the
//! repository's examples; it is the userspace analogue of the paper's
//! testbed.

use crate::endpoint::{Endpoint, EndpointConfig};
use crate::wire::Wire;
use crate::Micros;

/// A client and server pair joined by per-subflow wires.
pub struct Harness {
    /// The initiating endpoint (sends data in the common tests).
    pub client: Endpoint,
    /// The accepting endpoint.
    pub server: Endpoint,
    /// One wire per subflow; `client` is side A.
    pub wires: Vec<Wire>,
    /// Current time, µs.
    pub now: Micros,
    /// Step size, µs.
    pub tick: Micros,
}

impl Harness {
    /// Build a harness with `wires.len()` subflows and the same config on
    /// both ends.
    pub fn new(cfg: EndpointConfig, wires: Vec<Wire>, key: u64) -> Self {
        let n = wires.len();
        assert!(n >= 1);
        Self {
            client: Endpoint::client(cfg, n, key),
            server: Endpoint::server(cfg, n, key),
            wires,
            now: 0,
            tick: 100,
        }
    }

    /// Advance one tick: deliver due segments, then poll both endpoints.
    pub fn step(&mut self) {
        self.now += self.tick;
        for (i, wire) in self.wires.iter_mut().enumerate() {
            for seg in wire.recv_a(self.now) {
                self.client.on_segment(self.now, i, seg);
            }
            for seg in wire.recv_b(self.now) {
                self.server.on_segment(self.now, i, seg);
            }
        }
        for (sub, seg) in self.client.poll(self.now) {
            self.wires[sub].send_a(self.now, seg);
        }
        for (sub, seg) in self.server.poll(self.now) {
            self.wires[sub].send_b(self.now, seg);
        }
    }

    /// Run until `cond` returns true or `max_ticks` elapse; returns whether
    /// the condition was met.
    pub fn run_until(&mut self, max_ticks: usize, mut cond: impl FnMut(&Harness) -> bool) -> bool {
        for _ in 0..max_ticks {
            if cond(self) {
                return true;
            }
            self.step();
        }
        cond(self)
    }

    /// Convenience: push `data` through client → server, reading at the
    /// server as it arrives; returns the received bytes, or `None` on
    /// timeout.
    pub fn transfer(&mut self, data: &[u8], max_ticks: usize) -> Option<Vec<u8>> {
        let mut written = 0;
        let mut received = Vec::new();
        let mut buf = [0u8; 4096];
        let mut closed = false;
        for _ in 0..max_ticks {
            if written < data.len() {
                written += self.client.write(&data[written..]);
            } else if !closed {
                self.client.close();
                closed = true;
            }
            self.step();
            loop {
                let n = self.server.read(&mut buf);
                if n == 0 {
                    break;
                }
                received.extend_from_slice(&buf[..n]);
            }
            if closed && self.server.at_eof() && self.client.send_complete() {
                return Some(received);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::endpoint::RecvBufferMode;
    use crate::wire::WireFault;

    fn payload(n: usize) -> Vec<u8> {
        (0..n).map(|i| (i % 251) as u8).collect()
    }

    #[test]
    fn clean_single_subflow_transfer() {
        let mut h = Harness::new(EndpointConfig::default(), vec![Wire::new(5_000, 1)], 7);
        let data = payload(50_000);
        let got = h.transfer(&data, 20_000).expect("transfer completes");
        assert_eq!(got, data);
    }

    #[test]
    fn clean_two_subflow_transfer_uses_both() {
        let cfg = EndpointConfig::default();
        let mut h =
            Harness::new(cfg, vec![Wire::new(5_000, 1), Wire::new(8_000, 2)], 7);
        let data = payload(200_000);
        let got = h.transfer(&data, 60_000).expect("transfer completes");
        assert_eq!(got, data);
        assert!(h.client.subflow_established(0));
        assert!(h.client.subflow_established(1));
    }

    #[test]
    fn lossy_reordering_paths_still_deliver_exactly() {
        let cfg = EndpointConfig::default();
        let wires = vec![
            Wire::new(3_000, 1)
                .with_fault(WireFault::Loss(0.03))
                .with_fault(WireFault::Jitter(2_000)),
            Wire::new(9_000, 2).with_fault(WireFault::Loss(0.05)),
        ];
        let mut h = Harness::new(cfg, wires, 7);
        let data = payload(120_000);
        let got = h.transfer(&data, 400_000).expect("transfer completes despite loss");
        assert_eq!(got, data, "stream must be byte-exact");
        let (r0, _) = h.client.subflow_retransmits(0);
        let (r1, _) = h.client.subflow_retransmits(1);
        assert!(r0 + r1 > 0, "losses must have forced retransmissions");
    }

    #[test]
    fn option_stripping_falls_back_to_single_path_tcp() {
        let cfg = EndpointConfig::default();
        let wires = vec![
            Wire::new(3_000, 1).with_fault(WireFault::StripOptions),
            Wire::new(3_000, 2),
        ];
        let mut h = Harness::new(cfg, wires, 7);
        let data = payload(30_000);
        let got = h.transfer(&data, 100_000).expect("fallback transfer completes");
        assert_eq!(got, data);
        assert!(h.client.is_fallback(), "client must detect the stripped options");
        assert!(h.server.is_fallback());
        assert!(
            !h.client.subflow_established(1),
            "no joins once fallen back to regular TCP"
        );
    }

    #[test]
    fn isn_rewriting_firewall_is_harmless_with_dual_sequence_spaces() {
        // The pf example of §6: one subflow's ISN is rewritten in flight.
        // Because reassembly uses data sequence numbers from options, the
        // stream survives byte-exact.
        let cfg = EndpointConfig::default();
        let wires = vec![
            Wire::new(3_000, 1).with_fault(WireFault::RewriteIsn(0x5A5A_0000)),
            Wire::new(5_000, 2),
        ];
        let mut h = Harness::new(cfg, wires, 7);
        let data = payload(80_000);
        let got = h.transfer(&data, 120_000).expect("transfer completes");
        assert_eq!(got, data);
        assert!(!h.client.is_fallback(), "multipath stays enabled");
    }

    #[test]
    fn dead_subflow_does_not_stall_the_stream() {
        // Subflow 1 goes down mid-transfer (100% loss). Reinjection after
        // the subflow RTO must keep the stream moving on subflow 0.
        let cfg = EndpointConfig::default();
        let mut h = Harness::new(cfg, vec![Wire::new(3_000, 1), Wire::new(3_000, 2)], 7);
        let data = payload(150_000);
        let mut received = Vec::new();
        let mut buf = [0u8; 4096];
        // Warm up with the app writing and reading continuously; stop as
        // soon as the stream is moving briskly, so both subflows still
        // have data in flight at kill time.
        let mut written = 0;
        while h.client.peer_data_acked() < 30_000 {
            if written < data.len() {
                written += h.client.write(&data[written..]);
            }
            h.step();
            loop {
                let n = h.server.read(&mut buf);
                if n == 0 {
                    break;
                }
                received.extend_from_slice(&buf[..n]);
            }
            assert!(h.now < 10_000_000, "warmup stalled");
        }
        // Kill subflow 1 by replacing its wire with a black hole; whatever
        // it holds in flight must be reinjected on subflow 0.
        h.wires[1] = Wire::new(3_000, 3).with_fault(WireFault::Loss(1.0 - 1e-12));
        let mut closed = false;
        let ok = (0..400_000).any(|_| {
            if written < data.len() {
                written += h.client.write(&data[written..]);
            } else if !closed {
                h.client.close();
                closed = true;
            }
            h.step();
            loop {
                let n = h.server.read(&mut buf);
                if n == 0 {
                    break;
                }
                received.extend_from_slice(&buf[..n]);
            }
            closed && h.server.at_eof()
        });
        assert!(ok, "stream stalled after subflow death");
        assert_eq!(received, data);
        let (_, timeouts) = h.client.subflow_retransmits(1);
        assert!(timeouts > 0, "the dead subflow must have timed out");
    }

    #[test]
    fn per_subflow_receive_buffers_deadlock_where_shared_does_not() {
        // §6's flow-control deadlock: subflow 0 stalls holding a data hole;
        // subflow 1 keeps delivering later data until its buffer fills. In
        // PerSubflow mode the retransmitted hole can never be buffered on
        // subflow 1 — the transfer wedges. In Shared mode the window is
        // measured from the data-level cumulative ACK and admits the hole.
        let run = |mode: RecvBufferMode| {
            let mut cfg = EndpointConfig::default();
            cfg.recv_mode = mode;
            cfg.recv_buf = 8 * 1024; // small buffer to hit the corner fast
            cfg.reinject = true;
            let wires = vec![
                // Subflow 0: long outage early on (drops a window of data),
                // then recovers.
                Wire::new(3_000, 5).with_fault(WireFault::Loss(0.25)),
                Wire::new(3_000, 6),
            ];
            let mut h = Harness::new(cfg, wires, 7);
            let data = payload(100_000);
            h.transfer(&data, 300_000).map(|got| got == data)
        };
        assert_eq!(run(RecvBufferMode::Shared), Some(true), "shared buffer completes");
        // The per-subflow variant may or may not wedge on a given seed, but
        // it must never corrupt data; and with the shared buffer the same
        // workload always completes. Deterministic wedging is demonstrated
        // in tests/deadlocks.rs with a crafted schedule.
        if let Some(ok) = run(RecvBufferMode::PerSubflow) {
            assert!(ok, "if it completes, data must be intact");
        }
    }
}
