//! Executable counterexamples for the protocol designs §6 rejects.
//!
//! The paper's §6 is an argument by corner case: each rejected design is
//! dismissed with a concrete failure schedule. This module makes those
//! schedules executable:
//!
//! 1. [`per_subflow_buffer_wedges`] — per-subflow receive buffers wedge
//!    when one subflow stalls while the other fills its pool (and the
//!    chosen shared-buffer design completes on the identical schedule);
//! 2. [`inferred_data_ack_drops_packet`] — inferring the data cumulative
//!    ACK from subflow ACKs mis-tracks the receive window's trailing edge
//!    when ACKs reorder across subflows (the paper's i–iv walkthrough),
//!    forcing the receiver to drop a packet the sender believed it could
//!    send;
//! 3. [`payload_encoded_data_acks_deadlock`] — carrying data ACKs inside
//!    the payload stream subjects them to flow control, producing the A/B
//!    pipelining deadlock.

use crate::endpoint::{Endpoint, EndpointConfig, EndpointStats, RecvBufferMode};
use crate::wire::{Wire, WireFault};
use crate::Micros;

/// Outcome of running one of the §6 schedules.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScenarioOutcome {
    /// Whether the transfer (or exchange) completed within the step budget.
    pub completed: bool,
    /// Steps executed before completion (or the full budget).
    pub steps: usize,
}

/// §6 "Flow Control", choice 1 vs choice 2.
///
/// Schedule: a two-subflow connection with a small receive buffer. After a
/// short warm-up, subflow 0's wire turns into a black hole *while a data
/// segment of the stream's next hole is in flight on it*. Subflow 1 keeps
/// delivering later data until the receiver's (per-subflow) allowance for
/// it is exhausted. The sender's RTO eventually reinjects the hole on
/// subflow 1:
///
/// * with **per-subflow buffers** the reinjection is outside subflow 1's
///   advertised window (the pool is full of post-hole data) → wedged;
/// * with the **shared buffer** the window is measured from the data-level
///   cumulative ACK, so the hole is always admissible → completes.
pub fn per_subflow_buffer_wedges(mode: RecvBufferMode, budget: usize) -> ScenarioOutcome {
    let cfg = EndpointConfig {
        recv_buf: 6_000, // 5 × MSS: small enough to fill quickly
        mss: 1200,
        min_rto: 20_000, // fast RTOs keep the schedule short
        recv_mode: mode,
        ..EndpointConfig::default()
    };
    let mut client = Endpoint::client(cfg, 2, 9);
    let mut server = Endpoint::server(cfg, 2, 9);
    let mut wires = [Wire::new(1_000, 1), Wire::new(1_000, 2)];
    let data = vec![0xAB_u8; 30_000];
    let mut written = 0;
    let mut closed = false;
    let mut received = 0_usize;
    let mut buf = [0u8; 4096];
    let mut now = 0;
    let mut sub0_dead = false;

    for step in 0..budget {
        now += 500;
        // Kill subflow 0 shortly after data starts flowing, so a hole is
        // stranded there. (The app also stops reading until the kill, to
        // let later data pile up — then reads freely.)
        if !sub0_dead && client.peer_data_acked() > 2_400 {
            wires[0] = Wire::new(1_000, 3).with_fault(crate::wire::WireFault::Loss(0.9999999));
            sub0_dead = true;
        }
        if written < data.len() {
            written += client.write(&data[written..]);
        } else if !closed {
            client.close();
            closed = true;
        }
        for (i, w) in wires.iter_mut().enumerate() {
            for seg in w.recv_a(now) {
                client.on_segment(now, i, seg);
            }
            for seg in w.recv_b(now) {
                server.on_segment(now, i, seg);
            }
        }
        for (sub, seg) in client.poll(now) {
            wires[sub].send_a(now, seg);
        }
        for (sub, seg) in server.poll(now) {
            wires[sub].send_b(now, seg);
        }
        // The application reads eagerly; the wedge (if any) is in the
        // transport, not the app.
        loop {
            let n = server.read(&mut buf);
            if n == 0 {
                break;
            }
            received += n;
        }
        if received == data.len() && server.at_eof() {
            return ScenarioOutcome { completed: true, steps: step + 1 };
        }
    }
    ScenarioOutcome { completed: false, steps: budget }
}

// ---------------------------------------------------------------------
// Scenario 2: inferring data ACKs from subflow ACKs (§6's i–iv schedule).
// ---------------------------------------------------------------------

/// What the §6 walkthrough produces under each design.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AckDesign {
    /// The sender infers the data cumulative ACK from subflow ACKs plus
    /// its own mapping records (the rejected design).
    Inferred,
    /// The receiver states the data cumulative ACK explicitly in an option
    /// (the paper's design).
    Explicit,
}

/// Replay §6's exact schedule: a receiver with buffer space for two
/// packets; data 1 on subflow 1, data 2 on subflow 2; the two ACKs arrive
/// in the opposite order because subflow 2's RTT is shorter. Each ACK
/// advertises the window **relative to its own reference point** (the
/// inferred data cumulative ACK at the receiver when it sent the ACK).
///
/// Returns `true` if the sender ends up transmitting packet 3 while the
/// receiver has no room for it — the drop the paper predicts. Under
/// [`AckDesign::Explicit`] this never happens.
pub fn inferred_data_ack_drops_packet(design: AckDesign) -> bool {
    // Receiver state: buffer for 2 packets, application reads nothing.
    let buffer_capacity = 2_u64;
    let mut buffered: u64 = 0; // packets held
    let mut rcv_data_cum: u64 = 0; // data packets received in order

    // The receiver gets data 1 (subflow 1, seq 10) and data 2 (subflow 2,
    // seq 20), in order. It emits two ACKs; each carries the subflow ack,
    // the window relative to the *current* data cumulative point, and —
    // in Explicit mode — that data cumulative point itself.
    struct Ack {
        subflow: usize,
        window_pkts: u64,
        data_cum: u64, // receiver's data cum when the ACK was generated
    }
    let mut acks: Vec<Ack> = Vec::new();
    for _data in [1_u64, 2] {
        rcv_data_cum += 1;
        buffered += 1;
        acks.push(Ack {
            subflow: if rcv_data_cum == 1 { 0 } else { 1 },
            window_pkts: buffer_capacity - buffered,
            data_cum: rcv_data_cum,
        });
    }
    // "Unfortunately the acks are reordered simply because the RTT on
    // path 2 is shorter than that on path 1."
    acks.reverse();

    // Sender state: it knows data 1 went on subflow 1 and data 2 on
    // subflow 2 (its scoreboard), and tracks an inferred data cum ack.
    let mut sub_acked = [false, false]; // subflow-level delivery knowledge
    let mut snd_data_cum: u64 = 0;
    let mut sent_packet_3_into_full_buffer = false;

    for ack in acks {
        sub_acked[ack.subflow] = true;
        // The window field is always taken from the newest ACK — that is
        // all TCP semantics allow. The question is what reference point
        // the sender adds it to.
        let latest_window = ack.window_pkts;
        let send_allowance = match design {
            AckDesign::Inferred => {
                // Infer the data cumulative ACK from which subflow ACKs
                // have arrived. The window from THIS ack gets added to a
                // cum reconstructed from a DIFFERENT instant — the paper's
                // "it is not possible to reliably infer the trailing edge".
                snd_data_cum =
                    if sub_acked[0] { if sub_acked[1] { 2 } else { 1 } } else { 0 };
                snd_data_cum + latest_window
            }
            AckDesign::Explicit => {
                // The explicit data ACK travels WITH its window: the pair
                // is consistent, so the trailing edge never overshoots.
                snd_data_cum = snd_data_cum.max(ack.data_cum);
                ack.data_cum + ack.window_pkts
            }
        };
        if send_allowance >= 3 {
            // Sender transmits packet 3. Does the receiver have room?
            if buffered >= buffer_capacity {
                sent_packet_3_into_full_buffer = true;
            }
        }
    }
    sent_packet_3_into_full_buffer
}

// ---------------------------------------------------------------------
// Scenario 3: data ACKs embedded in the payload stream (§6 "Encoding").
// ---------------------------------------------------------------------

/// A minimal model of two hosts whose data ACKs travel *inside* the data
/// stream (an SSL-like chunking design), and are therefore subject to the
/// peer's receive-window flow control.
///
/// Schedule (the paper's): B pipelines requests to A until **A's receive
/// buffer is full** (A's application will not read until it finishes
/// sending its response). A sends its response filling **B's send path**:
/// B wants to emit a data-ACK chunk so A can free its send buffer, but
/// B's chunk must enter the B→A stream, which A's zero receive window
/// blocks. Nobody can make progress.
///
/// Returns `true` if the exchange deadlocks within the step budget under
/// the payload-encoded design; with option-encoded ACKs (modelled by
/// letting ACK information bypass flow control) the same schedule
/// completes.
pub fn payload_encoded_data_acks_deadlock(acks_in_payload: bool, budget: usize) -> bool {
    // Byte-level toy model, two unidirectional streams with windows.
    const BUF: usize = 4; // tiny buffers, in chunks
    // A's state.
    let mut a_recv_used = BUF; // full: B pipelined requests A hasn't read
    let mut a_send_queue = 6; // response chunks A must deliver to B
    let mut a_send_buf_used = 0; // unacked chunks held in A's send buffer
    const A_SEND_BUF: usize = 3;
    // B's state.
    let mut b_recv_used = 0;
    let mut b_wants_to_ack = 0_usize; // data-ack chunks B owes A

    for _step in 0..budget {
        // A transmits response chunks while its send buffer has room and
        // B's receive buffer has room.
        if a_send_queue > 0 && a_send_buf_used < A_SEND_BUF && b_recv_used < BUF {
            a_send_queue -= 1;
            a_send_buf_used += 1;
            b_recv_used += 1;
            b_wants_to_ack += 1;
        }
        // B emits data ACKs.
        if b_wants_to_ack > 0 {
            let can_send = if acks_in_payload {
                // The ACK chunk is payload on the B→A stream: it needs
                // space in A's receive buffer.
                a_recv_used < BUF
            } else {
                // Option-encoded ACKs ride on pure TCP ACK segments,
                // exempt from flow control.
                true
            };
            if can_send {
                b_wants_to_ack -= 1;
                a_send_buf_used = a_send_buf_used.saturating_sub(1); // A frees acked response data
                if acks_in_payload {
                    a_recv_used += 1; // the chunk occupies A's buffer
                }
            }
        }
        // B's application consumes response chunks it has received.
        b_recv_used = b_recv_used.saturating_sub(1);
        // A's application reads its requests ONLY once it finished sending
        // the whole response (the paper's pipelining assumption).
        if a_send_queue == 0 && a_send_buf_used == 0 && a_recv_used > 0 {
            a_recv_used -= 1;
        }
        if a_send_queue == 0 && a_send_buf_used == 0 {
            return false; // response fully delivered and acked: no deadlock
        }
    }
    true
}

// ---------------------------------------------------------------------
// Endpoint churn: runtime path management under faults (PR 7 tentpole).
// ---------------------------------------------------------------------

/// One path-management or fault action in a churn schedule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ChurnAction {
    /// Server advertises address `addr_id` via `ADD_ADDR`; the client
    /// joins it (subject to its subflow limit).
    Advertise {
        /// Address (wire/subflow index) to advertise.
        addr_id: u8,
        /// Advertise at backup priority.
        backup: bool,
    },
    /// Server withdraws address `addr_id` via `REMOVE_ADDR`; both sides
    /// tear the subflow down, reinjecting stranded in-flight data.
    Withdraw {
        /// Address to withdraw.
        addr_id: u8,
    },
    /// Client tears subflow `addr_id` down locally (its `REMOVE_ADDR`
    /// flows client → server).
    ClientClose {
        /// Subflow to close.
        addr_id: u8,
    },
    /// Client (re)joins subflow `addr_id` directly.
    ClientJoin {
        /// Subflow to join.
        addr_id: u8,
        /// Join at backup priority.
        backup: bool,
    },
    /// Wire `wire` becomes a black hole (its in-flight segments are lost).
    Blackout {
        /// Wire index.
        wire: usize,
    },
    /// Wire `wire` is restored with delay `delay_us`.
    Restore {
        /// Wire index.
        wire: usize,
        /// One-way delay of the restored wire, µs.
        delay_us: Micros,
    },
}

/// A timed churn action (fires once when the driver reaches `at_step`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChurnEvent {
    /// Driver step at which the action fires.
    pub at_step: usize,
    /// What happens.
    pub action: ChurnAction,
}

/// Outcome of [`run_endpoint_churn`].
#[derive(Debug, Clone, PartialEq)]
pub struct ChurnOutcome {
    /// The transfer finished (client closed, server at EOF) in budget.
    pub completed: bool,
    /// Steps executed.
    pub steps: usize,
    /// The received stream was byte-identical to the sent one.
    pub byte_exact: bool,
    /// FNV-1a fold over every delivered segment (time, direction, subflow,
    /// wire bytes) — two runs of the same schedule must agree exactly.
    pub digest: u64,
    /// Client-side diagnostics at the end of the run.
    pub client: EndpointStats,
    /// Server-side diagnostics at the end of the run.
    pub server: EndpointStats,
}

fn fnv1a(digest: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *digest ^= b as u64;
        *digest = digest.wrapping_mul(0x0000_0100_0000_01B3);
    }
}

/// Drive a client/server pair over `n_wires` wires through a timed churn
/// schedule: addresses advertised and withdrawn, subflows joined and torn
/// down, wires blacked out and restored — all while a fixed-length stream
/// transfers client → server. The driver is fully deterministic: wire
/// seeds and restore seeds derive from the schedule, so the same inputs
/// produce the same [`ChurnOutcome::digest`] bit for bit.
///
/// Subflows beyond the first start *deferred* on the client: they join
/// only when the schedule advertises or joins them, so the schedule owns
/// the whole path-management lifecycle.
///
/// `write_per_step` app-limits the sender (0 = write as fast as the send
/// buffer drains). Throttling pins the transfer's duration to
/// `data_len / write_per_step` steps, so schedules reliably land while
/// data is in flight instead of racing a wide-open window.
pub fn run_endpoint_churn(
    cfg: EndpointConfig,
    n_wires: usize,
    events: &[ChurnEvent],
    data_len: usize,
    write_per_step: usize,
    budget: usize,
) -> ChurnOutcome {
    assert!(n_wires >= 1);
    let mut client = Endpoint::client(cfg, n_wires, 7);
    let mut server = Endpoint::server(cfg, n_wires, 7);
    for i in 1..n_wires {
        client.defer_join(i);
    }
    let mut wires: Vec<Wire> =
        (0..n_wires).map(|i| Wire::new(2_000 + 1_000 * i as Micros, i as u64 + 1)).collect();
    let mut events: Vec<ChurnEvent> = events.to_vec();
    events.sort_by_key(|e| e.at_step);
    let mut next_event = 0;
    let data: Vec<u8> = (0..data_len).map(|i| (i % 251) as u8).collect();
    let mut written = 0;
    let mut closed = false;
    let mut received: Vec<u8> = Vec::with_capacity(data_len);
    let mut buf = [0u8; 4096];
    let mut digest: u64 = 0xCBF2_9CE4_8422_2325;
    let mut restores: u64 = 0;
    let mut now: Micros = 0;

    for step in 0..budget {
        now += 500;
        while next_event < events.len() && events[next_event].at_step <= step {
            let ev = events[next_event];
            next_event += 1;
            match ev.action {
                ChurnAction::Advertise { addr_id, backup } => {
                    server.advertise_addr(addr_id, backup);
                }
                ChurnAction::Withdraw { addr_id } => server.withdraw_addr(addr_id),
                ChurnAction::ClientClose { addr_id } => {
                    client.close_subflow(addr_id as usize);
                }
                ChurnAction::ClientJoin { addr_id, backup } => {
                    client.join_subflow(addr_id as usize, backup);
                }
                ChurnAction::Blackout { wire } => {
                    wires[wire] = Wire::new(2_000, 1_000 + wire as u64)
                        .with_fault(WireFault::Loss(1.0 - 1e-12));
                }
                ChurnAction::Restore { wire, delay_us } => {
                    restores += 1;
                    wires[wire] = Wire::new(delay_us.max(100), 2_000 + restores);
                }
            }
        }
        if written < data.len() {
            let cap = if write_per_step == 0 {
                data.len()
            } else {
                (written + write_per_step).min(data.len())
            };
            written += client.write(&data[written..cap]);
        } else if !closed {
            client.close();
            closed = true;
        }
        for (i, w) in wires.iter_mut().enumerate() {
            for seg in w.recv_a(now) {
                fnv1a(&mut digest, &now.to_be_bytes());
                fnv1a(&mut digest, &[0, i as u8]);
                fnv1a(&mut digest, &seg.encode());
                client.on_segment(now, i, seg);
            }
            for seg in w.recv_b(now) {
                fnv1a(&mut digest, &now.to_be_bytes());
                fnv1a(&mut digest, &[1, i as u8]);
                fnv1a(&mut digest, &seg.encode());
                server.on_segment(now, i, seg);
            }
        }
        for (sub, seg) in client.poll(now) {
            wires[sub].send_a(now, seg);
        }
        for (sub, seg) in server.poll(now) {
            wires[sub].send_b(now, seg);
        }
        loop {
            let n = server.read(&mut buf);
            if n == 0 {
                break;
            }
            received.extend_from_slice(&buf[..n]);
        }
        if closed && server.at_eof() && client.send_complete() {
            let byte_exact = received == data;
            return ChurnOutcome {
                completed: true,
                steps: step + 1,
                byte_exact,
                digest,
                client: client.stats(),
                server: server.stats(),
            };
        }
    }
    ChurnOutcome {
        completed: false,
        steps: budget,
        byte_exact: received == data,
        digest,
        client: client.stats(),
        server: server.stats(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shared_buffer_completes_where_per_subflow_wedges() {
        let shared = per_subflow_buffer_wedges(RecvBufferMode::Shared, 400_000);
        assert!(shared.completed, "the paper's chosen design must not wedge");
        let per_subflow = per_subflow_buffer_wedges(RecvBufferMode::PerSubflow, 400_000);
        assert!(
            !per_subflow.completed,
            "the rejected design must wedge on this schedule (finished in {} steps)",
            per_subflow.steps
        );
    }

    #[test]
    fn inferred_data_acks_lose_the_window_trailing_edge() {
        assert!(
            inferred_data_ack_drops_packet(AckDesign::Inferred),
            "the i–iv schedule must force a drop under inference"
        );
        assert!(
            !inferred_data_ack_drops_packet(AckDesign::Explicit),
            "explicit data ACKs keep sender and receiver consistent"
        );
    }

    #[test]
    fn churn_schedule_completes_byte_exact_and_reproducibly() {
        // A full path-management lifecycle mid-transfer: the server
        // advertises address 1, the client joins it; the address is
        // withdrawn with data in flight (stranded ranges reinjected on
        // subflow 0); it is re-advertised and rejoined; a blackout hits
        // wire 1 and is restored. The stream must arrive byte-exact and
        // the whole run must be digest-reproducible.
        let events = [
            ChurnEvent { at_step: 4, action: ChurnAction::Advertise { addr_id: 1, backup: false } },
            ChurnEvent { at_step: 120, action: ChurnAction::Withdraw { addr_id: 1 } },
            ChurnEvent { at_step: 200, action: ChurnAction::Advertise { addr_id: 1, backup: false } },
            ChurnEvent { at_step: 300, action: ChurnAction::Blackout { wire: 1 } },
            ChurnEvent { at_step: 450, action: ChurnAction::Restore { wire: 1, delay_us: 3_000 } },
        ];
        let run = || {
            run_endpoint_churn(EndpointConfig::default(), 2, &events, 200_000, 400, 200_000)
        };
        let a = run();
        assert!(a.completed, "churn schedule must complete: {:?}", a.steps);
        assert!(a.steps > 450, "the transfer must outlast the schedule: {}", a.steps);
        assert!(a.byte_exact, "stream must be byte-exact under churn");
        assert_eq!(a.server.data_received, 200_000, "exactly-once delivery accounting");
        assert!(a.client.subflows_joined >= 2, "join, teardown, rejoin: {:?}", a.client);
        assert!(a.client.subflows_closed >= 1, "withdrawal must close the subflow");
        assert_eq!(a.server.addr_advertised, 2, "two distinct advertisements");
        let b = run();
        assert_eq!(a, b, "identical schedules must produce identical outcomes");
    }

    #[test]
    fn payload_acks_deadlock_option_acks_do_not() {
        assert!(
            payload_encoded_data_acks_deadlock(true, 10_000),
            "payload-encoded data ACKs must deadlock the pipelined exchange"
        );
        assert!(
            !payload_encoded_data_acks_deadlock(false, 10_000),
            "option-encoded data ACKs complete the same exchange"
        );
    }
}
