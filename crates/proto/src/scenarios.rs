//! Executable counterexamples for the protocol designs §6 rejects.
//!
//! The paper's §6 is an argument by corner case: each rejected design is
//! dismissed with a concrete failure schedule. This module makes those
//! schedules executable:
//!
//! 1. [`per_subflow_buffer_wedges`] — per-subflow receive buffers wedge
//!    when one subflow stalls while the other fills its pool (and the
//!    chosen shared-buffer design completes on the identical schedule);
//! 2. [`inferred_data_ack_drops_packet`] — inferring the data cumulative
//!    ACK from subflow ACKs mis-tracks the receive window's trailing edge
//!    when ACKs reorder across subflows (the paper's i–iv walkthrough),
//!    forcing the receiver to drop a packet the sender believed it could
//!    send;
//! 3. [`payload_encoded_data_acks_deadlock`] — carrying data ACKs inside
//!    the payload stream subjects them to flow control, producing the A/B
//!    pipelining deadlock.

use crate::endpoint::{Endpoint, EndpointConfig, RecvBufferMode};
use crate::wire::Wire;

/// Outcome of running one of the §6 schedules.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScenarioOutcome {
    /// Whether the transfer (or exchange) completed within the step budget.
    pub completed: bool,
    /// Steps executed before completion (or the full budget).
    pub steps: usize,
}

/// §6 "Flow Control", choice 1 vs choice 2.
///
/// Schedule: a two-subflow connection with a small receive buffer. After a
/// short warm-up, subflow 0's wire turns into a black hole *while a data
/// segment of the stream's next hole is in flight on it*. Subflow 1 keeps
/// delivering later data until the receiver's (per-subflow) allowance for
/// it is exhausted. The sender's RTO eventually reinjects the hole on
/// subflow 1:
///
/// * with **per-subflow buffers** the reinjection is outside subflow 1's
///   advertised window (the pool is full of post-hole data) → wedged;
/// * with the **shared buffer** the window is measured from the data-level
///   cumulative ACK, so the hole is always admissible → completes.
pub fn per_subflow_buffer_wedges(mode: RecvBufferMode, budget: usize) -> ScenarioOutcome {
    let cfg = EndpointConfig {
        recv_buf: 6_000, // 5 × MSS: small enough to fill quickly
        mss: 1200,
        min_rto: 20_000, // fast RTOs keep the schedule short
        recv_mode: mode,
        ..EndpointConfig::default()
    };
    let mut client = Endpoint::client(cfg, 2, 9);
    let mut server = Endpoint::server(cfg, 2, 9);
    let mut wires = [Wire::new(1_000, 1), Wire::new(1_000, 2)];
    let data = vec![0xAB_u8; 30_000];
    let mut written = 0;
    let mut closed = false;
    let mut received = 0_usize;
    let mut buf = [0u8; 4096];
    let mut now = 0;
    let mut sub0_dead = false;

    for step in 0..budget {
        now += 500;
        // Kill subflow 0 shortly after data starts flowing, so a hole is
        // stranded there. (The app also stops reading until the kill, to
        // let later data pile up — then reads freely.)
        if !sub0_dead && client.peer_data_acked() > 2_400 {
            wires[0] = Wire::new(1_000, 3).with_fault(crate::wire::WireFault::Loss(0.9999999));
            sub0_dead = true;
        }
        if written < data.len() {
            written += client.write(&data[written..]);
        } else if !closed {
            client.close();
            closed = true;
        }
        for (i, w) in wires.iter_mut().enumerate() {
            for seg in w.recv_a(now) {
                client.on_segment(now, i, seg);
            }
            for seg in w.recv_b(now) {
                server.on_segment(now, i, seg);
            }
        }
        for (sub, seg) in client.poll(now) {
            wires[sub].send_a(now, seg);
        }
        for (sub, seg) in server.poll(now) {
            wires[sub].send_b(now, seg);
        }
        // The application reads eagerly; the wedge (if any) is in the
        // transport, not the app.
        loop {
            let n = server.read(&mut buf);
            if n == 0 {
                break;
            }
            received += n;
        }
        if received == data.len() && server.at_eof() {
            return ScenarioOutcome { completed: true, steps: step + 1 };
        }
    }
    ScenarioOutcome { completed: false, steps: budget }
}

// ---------------------------------------------------------------------
// Scenario 2: inferring data ACKs from subflow ACKs (§6's i–iv schedule).
// ---------------------------------------------------------------------

/// What the §6 walkthrough produces under each design.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AckDesign {
    /// The sender infers the data cumulative ACK from subflow ACKs plus
    /// its own mapping records (the rejected design).
    Inferred,
    /// The receiver states the data cumulative ACK explicitly in an option
    /// (the paper's design).
    Explicit,
}

/// Replay §6's exact schedule: a receiver with buffer space for two
/// packets; data 1 on subflow 1, data 2 on subflow 2; the two ACKs arrive
/// in the opposite order because subflow 2's RTT is shorter. Each ACK
/// advertises the window **relative to its own reference point** (the
/// inferred data cumulative ACK at the receiver when it sent the ACK).
///
/// Returns `true` if the sender ends up transmitting packet 3 while the
/// receiver has no room for it — the drop the paper predicts. Under
/// [`AckDesign::Explicit`] this never happens.
pub fn inferred_data_ack_drops_packet(design: AckDesign) -> bool {
    // Receiver state: buffer for 2 packets, application reads nothing.
    let buffer_capacity = 2_u64;
    let mut buffered: u64 = 0; // packets held
    let mut rcv_data_cum: u64 = 0; // data packets received in order

    // The receiver gets data 1 (subflow 1, seq 10) and data 2 (subflow 2,
    // seq 20), in order. It emits two ACKs; each carries the subflow ack,
    // the window relative to the *current* data cumulative point, and —
    // in Explicit mode — that data cumulative point itself.
    struct Ack {
        subflow: usize,
        window_pkts: u64,
        data_cum: u64, // receiver's data cum when the ACK was generated
    }
    let mut acks: Vec<Ack> = Vec::new();
    for _data in [1_u64, 2] {
        rcv_data_cum += 1;
        buffered += 1;
        acks.push(Ack {
            subflow: if rcv_data_cum == 1 { 0 } else { 1 },
            window_pkts: buffer_capacity - buffered,
            data_cum: rcv_data_cum,
        });
    }
    // "Unfortunately the acks are reordered simply because the RTT on
    // path 2 is shorter than that on path 1."
    acks.reverse();

    // Sender state: it knows data 1 went on subflow 1 and data 2 on
    // subflow 2 (its scoreboard), and tracks an inferred data cum ack.
    let mut sub_acked = [false, false]; // subflow-level delivery knowledge
    let mut snd_data_cum: u64 = 0;
    let mut sent_packet_3_into_full_buffer = false;

    for ack in acks {
        sub_acked[ack.subflow] = true;
        // The window field is always taken from the newest ACK — that is
        // all TCP semantics allow. The question is what reference point
        // the sender adds it to.
        let latest_window = ack.window_pkts;
        let send_allowance = match design {
            AckDesign::Inferred => {
                // Infer the data cumulative ACK from which subflow ACKs
                // have arrived. The window from THIS ack gets added to a
                // cum reconstructed from a DIFFERENT instant — the paper's
                // "it is not possible to reliably infer the trailing edge".
                snd_data_cum =
                    if sub_acked[0] { if sub_acked[1] { 2 } else { 1 } } else { 0 };
                snd_data_cum + latest_window
            }
            AckDesign::Explicit => {
                // The explicit data ACK travels WITH its window: the pair
                // is consistent, so the trailing edge never overshoots.
                snd_data_cum = snd_data_cum.max(ack.data_cum);
                ack.data_cum + ack.window_pkts
            }
        };
        if send_allowance >= 3 {
            // Sender transmits packet 3. Does the receiver have room?
            if buffered >= buffer_capacity {
                sent_packet_3_into_full_buffer = true;
            }
        }
    }
    sent_packet_3_into_full_buffer
}

// ---------------------------------------------------------------------
// Scenario 3: data ACKs embedded in the payload stream (§6 "Encoding").
// ---------------------------------------------------------------------

/// A minimal model of two hosts whose data ACKs travel *inside* the data
/// stream (an SSL-like chunking design), and are therefore subject to the
/// peer's receive-window flow control.
///
/// Schedule (the paper's): B pipelines requests to A until **A's receive
/// buffer is full** (A's application will not read until it finishes
/// sending its response). A sends its response filling **B's send path**:
/// B wants to emit a data-ACK chunk so A can free its send buffer, but
/// B's chunk must enter the B→A stream, which A's zero receive window
/// blocks. Nobody can make progress.
///
/// Returns `true` if the exchange deadlocks within the step budget under
/// the payload-encoded design; with option-encoded ACKs (modelled by
/// letting ACK information bypass flow control) the same schedule
/// completes.
pub fn payload_encoded_data_acks_deadlock(acks_in_payload: bool, budget: usize) -> bool {
    // Byte-level toy model, two unidirectional streams with windows.
    const BUF: usize = 4; // tiny buffers, in chunks
    // A's state.
    let mut a_recv_used = BUF; // full: B pipelined requests A hasn't read
    let mut a_send_queue = 6; // response chunks A must deliver to B
    let mut a_send_buf_used = 0; // unacked chunks held in A's send buffer
    const A_SEND_BUF: usize = 3;
    // B's state.
    let mut b_recv_used = 0;
    let mut b_wants_to_ack = 0_usize; // data-ack chunks B owes A

    for _step in 0..budget {
        // A transmits response chunks while its send buffer has room and
        // B's receive buffer has room.
        if a_send_queue > 0 && a_send_buf_used < A_SEND_BUF && b_recv_used < BUF {
            a_send_queue -= 1;
            a_send_buf_used += 1;
            b_recv_used += 1;
            b_wants_to_ack += 1;
        }
        // B emits data ACKs.
        if b_wants_to_ack > 0 {
            let can_send = if acks_in_payload {
                // The ACK chunk is payload on the B→A stream: it needs
                // space in A's receive buffer.
                a_recv_used < BUF
            } else {
                // Option-encoded ACKs ride on pure TCP ACK segments,
                // exempt from flow control.
                true
            };
            if can_send {
                b_wants_to_ack -= 1;
                a_send_buf_used = a_send_buf_used.saturating_sub(1); // A frees acked response data
                if acks_in_payload {
                    a_recv_used += 1; // the chunk occupies A's buffer
                }
            }
        }
        // B's application consumes response chunks it has received.
        b_recv_used = b_recv_used.saturating_sub(1);
        // A's application reads its requests ONLY once it finished sending
        // the whole response (the paper's pipelining assumption).
        if a_send_queue == 0 && a_send_buf_used == 0 && a_recv_used > 0 {
            a_recv_used -= 1;
        }
        if a_send_queue == 0 && a_send_buf_used == 0 {
            return false; // response fully delivered and acked: no deadlock
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shared_buffer_completes_where_per_subflow_wedges() {
        let shared = per_subflow_buffer_wedges(RecvBufferMode::Shared, 400_000);
        assert!(shared.completed, "the paper's chosen design must not wedge");
        let per_subflow = per_subflow_buffer_wedges(RecvBufferMode::PerSubflow, 400_000);
        assert!(
            !per_subflow.completed,
            "the rejected design must wedge on this schedule (finished in {} steps)",
            per_subflow.steps
        );
    }

    #[test]
    fn inferred_data_acks_lose_the_window_trailing_edge() {
        assert!(
            inferred_data_ack_drops_packet(AckDesign::Inferred),
            "the i–iv schedule must force a drop under inference"
        );
        assert!(
            !inferred_data_ack_drops_packet(AckDesign::Explicit),
            "explicit data ACKs keep sender and receiver consistent"
        );
    }

    #[test]
    fn payload_acks_deadlock_option_acks_do_not() {
        assert!(
            payload_encoded_data_acks_deadlock(true, 10_000),
            "payload-encoded data ACKs must deadlock the pipelined exchange"
        );
        assert!(
            !payload_encoded_data_acks_deadlock(false, 10_000),
            "option-encoded data ACKs complete the same exchange"
        );
    }
}
