//! Path management and backup failover at the packet level: backup
//! subflows stay cold while primaries are healthy, engage when every
//! primary fails, stand down on recovery; ADD_ADDR/REMOVE_ADDR fault
//! actions close and reopen subflows at runtime with exactly-once
//! reinjection; and all of it stays digest-invariant across shard job
//! counts.

use mptcp_cc::AlgorithmKind;
use mptcp_netsim::{
    ConnectionSpec, FaultPlan, LinkSpec, ProbeSpec, ShardedSimulator, SimTime, Simulator,
    TcpParams, TransitionKind,
};

fn ms(v: u64) -> SimTime {
    SimTime::from_millis(v)
}

/// The paper's mobile scenario in miniature: a fast primary (WiFi) and a
/// slow backup (3G) that must carry nothing until the primary blacks out.
#[test]
fn backup_stays_cold_fails_over_and_stands_down() {
    let mut sim = Simulator::new(42);
    let wifi = sim.add_link(LinkSpec::mbps(10.0, ms(10), 25));
    let cell = sim.add_link(LinkSpec::mbps(2.0, ms(40), 25));
    let conn = sim.add_connection(
        ConnectionSpec::sized(AlgorithmKind::Mptcp, 30_000)
            .path(vec![wifi])
            .path(vec![cell])
            .backup()
            .tcp(TcpParams { max_rto: SimTime::from_secs(2), ..TcpParams::default() }),
    );
    sim.enable_probe(ProbeSpec::every(ms(100)));
    // Outage of the only primary from 10 s to 25 s.
    sim.install_fault_plan(&FaultPlan::new().outage(wifi, SimTime::from_secs(10), SimTime::from_secs(25)));

    // Phase A: primary healthy — the backup carries nothing.
    sim.run_until(SimTime::from_secs(10));
    let st = sim.connection_stats(conn);
    assert!(st.subflows[1].backup && !st.subflows[0].backup);
    assert_eq!(st.subflows[0].closed, false);
    assert_eq!(st.subflows[1].sent_pkts, 0, "backup sent data while primary healthy: {st:?}");
    assert!(!st.backup_active && st.backup_activations == 0);
    assert!(st.data_delivered > 1_000, "primary made no progress");

    // Phase B: blackout — the backup engages within a bounded latency.
    sim.run_until(SimTime::from_secs(25));
    let mid = sim.connection_stats(conn);
    assert!(mid.backup_active, "backup never activated during the blackout: {mid:?}");
    assert_eq!(mid.backup_activations, 1);
    assert!(mid.subflows[1].sent_pkts > 0, "active backup moved no data");
    let lat = mid.failover_latency.expect("activation stamps a latency");
    // The failover clock starts at the primary's first unanswered RTO and
    // stops when the potentially-failed threshold (2 backoffs) engages the
    // backup: at most two backed-off intervals of the capped RTO.
    assert!(
        lat > SimTime::ZERO && lat <= SimTime::from_secs(4),
        "failover latency out of range: {lat:?}"
    );

    // Phase C: the primary revives — backups stand down, transfer finishes.
    sim.run_until(SimTime::from_secs(120));
    let end = sim.connection_stats(conn);
    assert!(!end.backup_active, "backup must stand down once the primary revives: {end:?}");
    assert_eq!(end.backup_activations, 1, "no flapping on a single outage");
    assert!(end.finished_at.is_some(), "transfer must complete: {end:?}");
    assert_eq!(end.data_delivered, 30_000, "exactly-once delivery");
    assert_eq!(end.data_acked, 30_000, "exactly-once ack accounting");
    assert!(end.dup_data_arrivals <= end.reinjections_sent);

    let log = sim.disable_probe().expect("probe was enabled");
    let kinds: Vec<TransitionKind> =
        log.transitions_of(conn, 1).into_iter().map(|t| t.kind).collect();
    assert!(kinds.contains(&TransitionKind::BackupActivated), "missing activation: {kinds:?}");
    assert!(kinds.contains(&TransitionKind::BackupStoodDown), "missing stand-down: {kinds:?}");
}

/// REMOVE_ADDR closes a subflow mid-transfer (stranded data reinjected
/// exactly once onto the survivor); a later ADD_ADDR rejoins it and the
/// transfer finishes using both paths again.
#[test]
fn addr_remove_then_add_rejoins_the_subflow() {
    let mut sim = Simulator::new(7);
    let l1 = sim.add_link(LinkSpec::mbps(8.0, ms(10), 25));
    let l2 = sim.add_link(LinkSpec::mbps(8.0, ms(15), 25));
    let conn = sim.add_connection(
        ConnectionSpec::sized(AlgorithmKind::Mptcp, 20_000).path(vec![l1]).path(vec![l2]),
    );
    sim.install_fault_plan(
        &FaultPlan::new()
            .addr_remove(SimTime::from_secs(3), l1, conn, 0)
            .addr_add(SimTime::from_secs(8), l1, conn, 0),
    );

    sim.run_until(SimTime::from_secs(5));
    let mid = sim.connection_stats(conn);
    assert!(mid.subflows[0].closed, "subflow 0 must be closed after REMOVE_ADDR");
    assert_eq!(mid.subflows_closed, 1);
    let sent_while_closed = mid.subflows[0].sent_pkts;

    sim.run_until(SimTime::from_secs(120));
    let end = sim.connection_stats(conn);
    assert!(!end.subflows[0].closed, "ADD_ADDR must reopen the subflow");
    assert_eq!(end.addr_advertised, 1);
    assert_eq!(end.subflows_joined, 1);
    assert!(
        end.subflows[0].sent_pkts > sent_while_closed,
        "rejoined subflow must carry data again: {end:?}"
    );
    assert!(end.finished_at.is_some(), "transfer must complete: {end:?}");
    assert_eq!(end.data_delivered, 20_000, "exactly-once delivery");
    assert_eq!(end.data_acked, 20_000, "exactly-once ack accounting");
    assert!(end.dup_data_arrivals <= end.reinjections_sent);
}

/// Closing every subflow of a connection mid-transfer must not finish or
/// crash it — the world just goes quiet (and revives on a rejoin).
#[test]
fn closing_all_subflows_parks_the_connection() {
    let mut sim = Simulator::new(3);
    let l = sim.add_link(LinkSpec::mbps(8.0, ms(10), 25));
    let conn =
        sim.add_connection(ConnectionSpec::sized(AlgorithmKind::Mptcp, 50_000).path(vec![l]));
    sim.run_until(SimTime::from_secs(2));
    sim.admin_close_subflow(conn, 0);
    sim.run_until(SimTime::from_secs(10));
    let parked = sim.connection_stats(conn);
    assert!(parked.finished_at.is_none(), "a parked transfer is not a finished one");
    let frozen = parked.data_delivered;
    sim.admin_open_subflow(conn, 0);
    sim.run_until(SimTime::from_secs(180));
    let end = sim.connection_stats(conn);
    assert!(end.finished_at.is_some(), "rejoin must revive the transfer: {end:?}");
    assert!(end.data_delivered > frozen);
    assert_eq!(end.data_acked, 50_000);
}

/// Address churn — removes, re-adds, and a primary outage driving a backup
/// activation — is part of the deterministic event history: the world
/// digest is bit-identical across shard job counts. The top count defaults
/// to 4 and is swept by CI's nightly `MPTCP_SHARD_JOBS` matrix.
#[test]
fn addr_churn_is_jobs_invariant() {
    let world = || {
        let mut sim = ShardedSimulator::new(23, 2);
        let a0 = sim.add_link(0, LinkSpec::mbps(10.0, ms(10), 25));
        let a1 = sim.add_link(0, LinkSpec::mbps(8.0, ms(15), 25));
        let b0 = sim.add_link(1, LinkSpec::mbps(10.0, ms(10), 25));
        let b1 = sim.add_link(1, LinkSpec::mbps(6.0, ms(20), 25));
        let _c0 = sim.add_connection(
            ConnectionSpec::sized(AlgorithmKind::Mptcp, 4_000)
                .path(vec![a0, b0])
                .path(vec![a1, b1])
                .backup()
                .tcp(TcpParams { max_rto: SimTime::from_secs(2), ..TcpParams::default() }),
        );
        let c1 = sim.add_connection(
            ConnectionSpec::sized(AlgorithmKind::Mptcp, 3_000).path(vec![b0, a0]).path(vec![b1, a1]),
        );
        // Addr actions route to the connection's owner shard via the target
        // subflow's first link; the outage engages c0's backup.
        sim.install_fault_plan(
            &FaultPlan::new()
                .addr_remove(SimTime::from_secs(2), b1, c1, 1)
                .addr_add(SimTime::from_secs(6), b1, c1, 1)
                .outage(a0, SimTime::from_secs(3), SimTime::from_secs(9)),
        );
        sim
    };
    let run = |jobs: usize| {
        let mut sim = world();
        sim.set_jobs(jobs);
        sim.run_until(SimTime::from_secs(40));
        (
            sim.det_digest(),
            sim.connection_stats(0).backup_activations,
            sim.connection_stats(1).subflows_joined,
        )
    };
    let (d1, activations, joined) = run(1);
    assert_eq!(activations, 1, "the outage must engage c0's backup");
    assert_eq!(joined, 1, "the ADD_ADDR must rejoin c1's subflow");
    assert_eq!(d1, run(2).0, "jobs=2 diverged from jobs=1");
    let top =
        std::env::var("MPTCP_SHARD_JOBS").ok().and_then(|v| v.parse().ok()).unwrap_or(4);
    let top = top.max(2);
    assert_eq!(d1, run(top).0, "jobs={top} diverged from jobs=1");
}
