//! Property-based invariant tests for the simulator.

use mptcp_cc::AlgorithmKind;
use mptcp_netsim::{CbrSpec, ConnectionSpec, LinkSpec, SimTime, Simulator};
use proptest::prelude::*;

/// A random small scenario: 1–3 links in series per subflow, 1–3 subflows,
/// a competing CBR, random rates/queues/loss.
#[derive(Debug, Clone)]
struct Scenario {
    seed: u64,
    n_links: usize,
    n_subflows: usize,
    rate_mbps: f64,
    queue: usize,
    loss: f64,
    algorithm: AlgorithmKind,
    secs: u64,
}

fn scenario() -> impl Strategy<Value = Scenario> {
    (
        0_u64..10_000,
        1_usize..=3,
        1_usize..=3,
        1.0_f64..50.0,
        2_usize..60,
        0.0_f64..0.05,
        prop::sample::select(vec![
            AlgorithmKind::Uncoupled,
            AlgorithmKind::Ewtcp,
            AlgorithmKind::Coupled,
            AlgorithmKind::SemiCoupled,
            AlgorithmKind::Mptcp,
        ]),
        2_u64..8,
    )
        .prop_map(
            |(seed, n_links, n_subflows, rate_mbps, queue, loss, algorithm, secs)| Scenario {
                seed,
                n_links,
                n_subflows,
                rate_mbps,
                queue,
                loss,
                algorithm,
                secs,
            },
        )
}

fn build_and_run(sc: &Scenario) -> (Simulator, usize, Vec<usize>) {
    let mut sim = Simulator::new(sc.seed);
    let mut links = Vec::new();
    let mut spec = ConnectionSpec::bulk(sc.algorithm);
    for s in 0..sc.n_subflows {
        let mut path = Vec::new();
        for l in 0..sc.n_links {
            let id = sim.add_link(
                LinkSpec::mbps(
                    sc.rate_mbps * (1.0 + 0.3 * l as f64),
                    SimTime::from_millis(5 + 7 * (s as u64 + 1)),
                    sc.queue,
                )
                .with_loss(sc.loss),
            );
            links.push(id);
            path.push(id);
        }
        spec = spec.path(path);
    }
    let conn = sim.add_connection(spec);
    // A CBR sharing the first link keeps things contended.
    sim.add_cbr(CbrSpec::constant(vec![links[0]], sc.rate_mbps * 1e6 / 4.0));
    sim.run_until(SimTime::from_secs(sc.secs));
    (sim, conn, links)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Conservation per link: offered = transmitted + dropped + queued, so
    /// nothing is created or silently destroyed.
    #[test]
    fn link_packet_conservation(sc in scenario()) {
        let (sim, _conn, links) = build_and_run(&sc);
        for l in links {
            let st = sim.link_stats(l);
            prop_assert!(
                st.transmitted + st.dropped() <= st.offered,
                "link {l}: transmitted {} + dropped {} > offered {}",
                st.transmitted, st.dropped(), st.offered
            );
            // The difference is what is still queued/in service: bounded by
            // queue capacity + 1.
            let in_system = st.offered - st.transmitted - st.dropped();
            prop_assert!(
                in_system <= sim.link_spec(l).queue_pkts as u64 + 1,
                "link {l} holds {in_system} packets"
            );
        }
    }

    /// The receiver never delivers more than the sender sent, and windows
    /// stay at or above the probing floor.
    #[test]
    fn delivery_and_window_sanity(sc in scenario()) {
        let (sim, conn, _links) = build_and_run(&sc);
        let st = sim.connection_stats(conn);
        for (i, sf) in st.subflows.iter().enumerate() {
            prop_assert!(
                sf.delivered_pkts <= sf.sent_pkts + sf.retransmits,
                "subflow {i}: delivered {} > sent {} + retx {}",
                sf.delivered_pkts, sf.sent_pkts, sf.retransmits
            );
            prop_assert!(sf.cwnd >= 1.0 - 1e-9, "subflow {i} cwnd {} below floor", sf.cwnd);
            prop_assert!(sf.cwnd.is_finite());
        }
    }

    /// Determinism: the same scenario and seed produce the exact same
    /// history (event count and delivery counters).
    #[test]
    fn identical_seeds_identical_histories(sc in scenario()) {
        let (sim_a, conn_a, _) = build_and_run(&sc);
        let (sim_b, conn_b, _) = build_and_run(&sc);
        prop_assert_eq!(sim_a.events_processed(), sim_b.events_processed());
        prop_assert_eq!(
            sim_a.connection_stats(conn_a).delivered_pkts(),
            sim_b.connection_stats(conn_b).delivered_pkts()
        );
    }

    /// Event accounting: after any run, the perf counters obey their
    /// identities — every scheduled event is fired or still pending,
    /// cancellations are a subset of firings, the pending count never
    /// exceeds its own high-water mark, and the wall/sim clocks advanced.
    #[test]
    fn perf_counters_stay_consistent(sc in scenario()) {
        let (sim, _conn, _links) = build_and_run(&sc);
        let perf = sim.perf();
        prop_assert!(perf.is_consistent(), "inconsistent counters: {perf:?}");
        prop_assert_eq!(perf.events_fired, sim.events_processed());
        prop_assert!(perf.events_fired > 0, "a contended run must fire events");
        prop_assert!(perf.peak_pending > 0);
        prop_assert!(perf.sim_elapsed == SimTime::from_secs(sc.secs));
        prop_assert!(perf.wall.as_nanos() > 0, "run_until must accumulate wall time");
        prop_assert!(perf.events_per_wall_sec() > 0.0);
    }

    /// A finite transfer either completes with exactly its size delivered,
    /// or is still in progress with less delivered — never overshoot.
    #[test]
    fn finite_flows_never_overshoot(
        seed in 0_u64..1000,
        pkts in 1_u64..500,
        loss in 0.0_f64..0.1,
    ) {
        let mut sim = Simulator::new(seed);
        let l = sim.add_link(
            LinkSpec::mbps(10.0, SimTime::from_millis(10), 25).with_loss(loss),
        );
        let c = sim.add_connection(
            ConnectionSpec::sized(AlgorithmKind::Mptcp, pkts).path(vec![l]),
        );
        sim.run_until(SimTime::from_secs(30));
        let st = sim.connection_stats(c);
        prop_assert!(st.delivered_pkts() <= pkts);
        if let Some(done) = st.completion_time() {
            prop_assert_eq!(st.delivered_pkts(), pkts);
            prop_assert!(done > SimTime::ZERO);
        }
    }
}
