//! Chaos tests: randomized fault schedules over dual-homed topologies.
//!
//! Each case expands a seed into a [`FaultPlan`] (outages, brownouts,
//! queue squeezes, Gilbert–Elliott bursts — all ending by 80% of the
//! horizon) and runs a sized MPTCP flow through it. The properties are
//! the robustness contract of the fault subsystem:
//!
//! * **completion** — every sized flow finishes despite the faults;
//! * **exactly-once** — the data stream is delivered and acknowledged
//!   once per packet, with duplicates (the price of reinjection) counted
//!   separately and bounded by the reinjections actually sent;
//! * **conservation** — per-link packet accounting still balances, with
//!   down-drops tracked separately from queue and random drops;
//! * **determinism** — same seeds, bit-identical history.
//!
//! The default case count is modest so the suite stays fast; CI's nightly
//! chaos job raises it via `MPTCP_CHAOS_CASES`.

use mptcp_cc::AlgorithmKind;
use mptcp_netsim::{
    ConnectionSpec, FaultAction, FaultPlan, LinkSpec, SimTime, Simulator, TcpParams,
};
use proptest::prelude::*;

fn chaos_cases() -> u32 {
    std::env::var("MPTCP_CHAOS_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(24)
}

/// Horizon for every chaos run. `FaultPlan::randomized` confines faults to
/// the first 80%, leaving a fault-free tail to finish in.
const HORIZON: SimTime = SimTime::from_secs(60);

#[derive(Debug, Clone)]
struct Chaos {
    sim_seed: u64,
    fault_seed: u64,
    pkts: u64,
    rate_mbps: f64,
    queue: usize,
}

fn chaos() -> impl Strategy<Value = Chaos> {
    (0_u64..10_000, 0_u64..10_000, 50_u64..400, 6.0_f64..20.0, 8_usize..40).prop_map(
        |(sim_seed, fault_seed, pkts, rate_mbps, queue)| Chaos {
            sim_seed,
            fault_seed,
            pkts,
            rate_mbps,
            queue,
        },
    )
}

/// Dual-homed client: two disjoint single-link paths, one sized MPTCP flow
/// striped over both, a randomized fault plan over both links.
fn run_chaos(c: &Chaos) -> (Simulator, usize, Vec<usize>, FaultPlan) {
    let mut sim = Simulator::new(c.sim_seed);
    let l1 = sim.add_link(LinkSpec::mbps(c.rate_mbps, SimTime::from_millis(8), c.queue));
    let l2 = sim.add_link(LinkSpec::mbps(c.rate_mbps * 0.4, SimTime::from_millis(30), c.queue));
    let conn = sim.add_connection(
        ConnectionSpec::sized(AlgorithmKind::Mptcp, c.pkts)
            .path(vec![l1])
            .path(vec![l2])
            // Cap RTO backoff so recovery after a long blackout fits well
            // inside the fault-free tail of the horizon.
            .tcp(TcpParams { max_rto: SimTime::from_secs(4), ..TcpParams::default() }),
    );
    let plan = FaultPlan::randomized(c.fault_seed, &[l1, l2], HORIZON);
    sim.install_fault_plan(&plan);
    sim.run_until(HORIZON);
    (sim, conn, vec![l1, l2], plan)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(chaos_cases()))]

    /// Every sized flow completes, exactly once per data packet.
    #[test]
    fn sized_flows_survive_random_faults(c in chaos()) {
        let (sim, conn, _links, plan) = run_chaos(&c);
        let st = sim.connection_stats(conn);
        prop_assert!(
            st.finished_at.is_some(),
            "flow of {} pkts did not finish under plan of {} actions: \
             delivered {} acked {} pending reinjects {}",
            c.pkts, plan.len(), st.data_delivered, st.data_acked, st.reinject_pending
        );
        prop_assert_eq!(st.data_sent, c.pkts, "every packet assigned a dsn exactly once");
        prop_assert_eq!(st.data_delivered, c.pkts, "exactly-once delivery");
        prop_assert_eq!(st.data_acked, c.pkts, "exactly-once data ack");
        prop_assert!(
            st.dup_data_arrivals <= st.reinjections_sent,
            "dups ({}) can only come from reinjected copies ({})",
            st.dup_data_arrivals, st.reinjections_sent
        );
        prop_assert_eq!(st.reinject_pending, 0u64, "no stranded data after completion");
    }

    /// Per-link conservation still balances when links flap, shrink their
    /// queues and turn loss on and off mid-flight.
    #[test]
    fn link_conservation_holds_under_faults(c in chaos()) {
        let (sim, _conn, links, _plan) = run_chaos(&c);
        for l in links {
            let st = sim.link_stats(l);
            prop_assert!(
                st.transmitted + st.dropped() <= st.offered,
                "link {l}: transmitted {} + dropped {} > offered {}",
                st.transmitted, st.dropped(), st.offered
            );
            let in_system = st.offered - st.transmitted - st.dropped();
            prop_assert!(
                in_system <= sim.link_spec(l).queue_pkts as u64 + 1,
                "link {l} holds {in_system} packets"
            );
        }
        let perf = sim.perf();
        prop_assert!(perf.is_consistent(), "inconsistent perf counters: {perf:?}");
        prop_assert!(perf.quiesced_at.is_none(), "a live world must never quiesce");
    }

    /// Fault execution is part of the deterministic event history: the
    /// same seeds reproduce the exact same run, faults and all.
    #[test]
    fn chaos_runs_are_reproducible(c in chaos()) {
        let (sim_a, conn_a, _, plan_a) = run_chaos(&c);
        let (sim_b, conn_b, _, plan_b) = run_chaos(&c);
        prop_assert_eq!(plan_a.actions(), plan_b.actions());
        prop_assert_eq!(sim_a.events_processed(), sim_b.events_processed());
        prop_assert_eq!(sim_a.perf().faults_applied, plan_a.len() as u64);
        let (a, b) = (sim_a.connection_stats(conn_a), sim_b.connection_stats(conn_b));
        prop_assert_eq!(a.data_delivered, b.data_delivered);
        prop_assert_eq!(a.dup_data_arrivals, b.dup_data_arrivals);
        prop_assert_eq!(a.reinjections_sent, b.reinjections_sent);
        prop_assert_eq!(a.finished_at, b.finished_at);
    }
}

/// Regression: `set_link_loss` used to assert the half-open range
/// `[0, 1)`, rejecting `p = 1.0` — which is exactly what a blackout
/// scenario wants for total loss on an otherwise-up link.
#[test]
fn total_loss_is_settable_at_runtime() {
    let mut sim = Simulator::new(1);
    let l = sim.add_link(LinkSpec::mbps(10.0, SimTime::from_millis(5), 10));
    sim.set_link_loss(l, 1.0);
    let conn = sim.add_connection(ConnectionSpec::sized(AlgorithmKind::Mptcp, 50).path(vec![l]));
    sim.run_until(SimTime::from_secs(2));
    let st = sim.link_stats(l);
    assert!(st.dropped_random > 0, "every offered packet is a random drop");
    assert_eq!(st.transmitted, 0, "nothing gets through at p = 1");
    assert_eq!(sim.connection_stats(conn).data_delivered, 0);
}

/// A permanently dead path strands a single-homed flow; the watchdog
/// notices that deliveries stopped and ends the run early instead of
/// grinding RTO probes to the horizon.
#[test]
fn watchdog_flags_a_stalled_world() {
    let mut sim = Simulator::new(7);
    let l = sim.add_link(LinkSpec::mbps(10.0, SimTime::from_millis(10), 25));
    let conn = sim.add_connection(ConnectionSpec::sized(AlgorithmKind::Mptcp, 5_000).path(vec![l]));
    // The link dies at 2 s and never comes back.
    sim.install_fault_plan(&FaultPlan::new().at(SimTime::from_secs(2), FaultAction::Down { link: l }));
    sim.set_stall_watchdog(Some(SimTime::from_secs(5)));
    sim.run_until(SimTime::from_secs(120));
    let perf = sim.perf();
    let stalled = perf.stalled_at.expect("watchdog must trip");
    assert!(stalled >= SimTime::from_secs(7), "no trip before threshold elapses: {stalled:?}");
    assert!(stalled < SimTime::from_secs(120), "run ended early");
    assert_eq!(perf.sim_elapsed, stalled, "clock stops at the stall");
    assert!(sim.connection_stats(conn).finished_at.is_none());
}

/// The watchdog stays quiet on a healthy run and on one that merely
/// suffers (and survives) a long outage shorter than the threshold.
#[test]
fn watchdog_stays_quiet_when_progress_continues() {
    let mut sim = Simulator::new(8);
    let l1 = sim.add_link(LinkSpec::mbps(10.0, SimTime::from_millis(10), 25));
    let l2 = sim.add_link(LinkSpec::mbps(4.0, SimTime::from_millis(25), 25));
    let conn = sim.add_connection(
        ConnectionSpec::sized(AlgorithmKind::Mptcp, 10_000).path(vec![l1]).path(vec![l2]),
    );
    // l1 blacks out for 10 s mid-transfer; l2 keeps delivering throughout.
    sim.install_fault_plan(
        &FaultPlan::new().outage(l1, SimTime::from_secs(3), SimTime::from_secs(13)),
    );
    sim.set_stall_watchdog(Some(SimTime::from_secs(5)));
    sim.run_until(SimTime::from_secs(120));
    let perf = sim.perf();
    assert_eq!(perf.stalled_at, None, "deliveries on l2 keep resetting the watchdog");
    assert!(sim.connection_stats(conn).finished_at.is_some(), "transfer completes");
}
