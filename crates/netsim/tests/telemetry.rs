//! Integration tests for the probe subsystem and the RFC 6298 backoff
//! behaviour it makes observable.

use mptcp_cc::AlgorithmKind;
use mptcp_netsim::{
    ConnectionSpec, LinkSpec, ProbeSpec, SimTime, Simulator, TransitionKind,
};

/// A dual-homed MPTCP connection suffers a 7 s blackout on one path. The
/// probe series must show the RTO backing off exponentially during the
/// outage, and after the link returns the effective RTO must fall back to
/// the sampled (min_rto-clamped) range — i.e. the backed-off value is not
/// inherited once fresh RTT samples arrive (RFC 6298 §5.5/§5.7).
#[test]
fn rto_backs_off_during_blackout_and_recovers_to_sampled_range() {
    let mut sim = Simulator::new(42);
    let a = sim.add_link(LinkSpec::mbps(5.0, SimTime::from_millis(20), 25));
    let b = sim.add_link(LinkSpec::mbps(5.0, SimTime::from_millis(20), 25));
    let c = sim.add_connection(
        ConnectionSpec::bulk(AlgorithmKind::Mptcp).path(vec![a]).path(vec![b]),
    );
    sim.enable_probe(ProbeSpec::every(SimTime::from_millis(100)));

    sim.run_until(SimTime::from_secs(5));
    let min_rto = sim.connection_stats(c).subflows[1].rto;
    assert!(
        (min_rto - 0.2).abs() < 1e-9,
        "clean 40 ms path: effective rto sits at min_rto, got {min_rto}"
    );

    sim.set_link_down(b, true);
    sim.run_until(SimTime::from_secs(12));
    let during = sim.connection_stats(c).subflows[1];
    assert!(during.timeouts >= 3, "blackout must fire repeated RTOs: {}", during.timeouts);
    assert!(during.rto_backoffs >= 2, "backoff run: {}", during.rto_backoffs);
    assert!(
        during.rto >= 4.0 * min_rto,
        "7 s in, the effective rto must have at least quadrupled: {} vs min {min_rto}",
        during.rto
    );
    assert!(during.potentially_failed, "path is potentially failed mid-outage");

    sim.set_link_down(b, false);
    sim.run_until(SimTime::from_secs(25));
    let after = sim.connection_stats(c).subflows[1];
    assert_eq!(after.rto_backoffs, 0, "forward progress clears the backoff run");
    assert!(!after.potentially_failed, "revived after the outage");
    assert!(
        (after.rto - min_rto).abs() < 1e-9,
        "post-recovery rto returns to the sampled range: {} vs {min_rto}",
        after.rto
    );

    // The probe saw the whole story, in order: an RTO fired, the subflow
    // was declared potentially failed, then revived.
    let log = sim.disable_probe().expect("probe enabled");
    let kinds: Vec<TransitionKind> =
        log.transitions_of(c, 1).iter().map(|t| t.kind).collect();
    let pos = |k: TransitionKind| kinds.iter().position(|&x| x == k);
    let fired = pos(TransitionKind::RtoFired).expect("RtoFired recorded");
    let failed = pos(TransitionKind::PotentiallyFailed).expect("PotentiallyFailed recorded");
    let revived = pos(TransitionKind::Revived).expect("Revived recorded");
    assert!(fired < failed && failed < revived, "transition order: {kinds:?}");

    // And the rto time series itself shows the backoff peak inside the
    // outage window and the recovery afterwards.
    let peak = log
        .subflow_series(c, 1, SimTime::from_secs(5))
        .filter(|p| p.at <= SimTime::from_secs(12))
        .map(|p| p.rto)
        .fold(0.0_f64, f64::max);
    assert!(peak >= 4.0 * min_rto, "probe series must capture the backoff peak: {peak}");
    let last = log.subflow_series(c, 1, SimTime::from_secs(20)).map(|p| p.rto).last();
    assert!(last.is_some_and(|r| (r - min_rto).abs() < 1e-9), "series tail: {last:?}");
}

/// Steady random loss: every loss event's decrease lands at or above the
/// probing floor of one packet, across algorithms — no subflow is ever
/// stranded below 1 pkt, even under COUPLED's raw `w_r − w_total/2` rule.
#[test]
fn post_loss_windows_never_fall_below_the_probing_floor() {
    for kind in AlgorithmKind::all() {
        let mut sim = Simulator::new(9);
        let a = sim.add_link(LinkSpec::mbps(4.0, SimTime::from_millis(10), 8).with_loss(0.05));
        let b = sim.add_link(LinkSpec::mbps(4.0, SimTime::from_millis(50), 8).with_loss(0.05));
        let c = sim.add_connection(ConnectionSpec::bulk(kind).path(vec![a]).path(vec![b]));
        sim.enable_probe(ProbeSpec::every(SimTime::from_millis(50)));
        sim.run_until(SimTime::from_secs(30));
        let log = sim.disable_probe().unwrap();
        for p in &log.subflow_points {
            assert!(
                p.cwnd >= 1.0 - 1e-9,
                "{:?} sub {} at {}: cwnd {} below the probing floor",
                kind,
                p.sub,
                p.at,
                p.cwnd
            );
        }
        let st = sim.connection_stats(c);
        assert!(
            st.subflows.iter().all(|s| s.cwnd >= 1.0 - 1e-9),
            "{kind:?}: final windows {:?}",
            st.subflows.iter().map(|s| s.cwnd).collect::<Vec<_>>()
        );
    }
}
