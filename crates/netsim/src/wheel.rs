//! A hierarchical timer wheel: the simulator's default event queue.
//!
//! The seed drove every event through a `BinaryHeap` — O(log n) per
//! operation with poor cache behaviour once tens of thousands of events
//! are pending (FatTree-128 runs). This wheel gives O(1) amortized push
//! and pop while preserving the **exact** `(at, seq)` pop order of the
//! heap, which is what keeps runs bit-for-bit deterministic (the
//! differential property test in `event.rs` pins this down).
//!
//! Layout, following the classic hashed hierarchical wheel (Varghese &
//! Lauck) as used by production timer subsystems (Linux, s2n-quic):
//!
//! * time is bucketed into ticks of `2^GRAN_BITS` ns (1.024 µs);
//! * `LEVELS` levels of 64 slots each; level `L` spans `64^(L+1)` ticks,
//!   so the whole wheel covers ≈ 19.5 hours of simulated time, with a
//!   far-future overflow list beyond that (RTO backoff caps at seconds,
//!   so the overflow is effectively never used by real workloads);
//! * events live in a **slab** of nodes with an intrusive free list —
//!   after warm-up the steady state allocates nothing per event;
//! * each level keeps a 64-bit occupancy bitmap, so finding the next
//!   non-empty slot is a rotate + trailing-zeros, never a scan;
//! * slots hold unsorted intrusive lists; when the cursor reaches a
//!   level-0 slot (which corresponds to exactly one tick) the slot is
//!   drained into a scratch bucket and sorted **descending** by
//!   `(at, seq)` so pops are `Vec::pop` from the back. Events pushed
//!   into the current tick while it drains are inserted in order.
//!
//! Exactness argument: a level-0 slot within the active 64-tick window
//! maps to a single tick value, so sorting one bucket recovers the exact
//! global order — earlier ticks were already drained, later ticks sort
//! after, and the wheel never advances its cursor past an occupied slot
//! (higher-level slots whose range starts at or before the next level-0
//! candidate are cascaded down first).

use crate::event::{Event, EventKind};
use crate::time::SimTime;

/// log2 of the level-0 tick width in nanoseconds.
const GRAN_BITS: u32 = 10;
/// log2 of the slot count per level.
const SLOT_BITS: u32 = 6;
/// Slots per level.
const SLOTS: usize = 1 << SLOT_BITS;
/// Number of levels; the wheel spans `64^LEVELS` ticks.
const LEVELS: usize = 6;
/// Null index in the node slab.
const NIL: u32 = u32::MAX;

/// Ticks covered by one slot of `level`.
const fn slot_width(level: usize) -> u64 {
    1 << (SLOT_BITS as u64 * level as u64)
}

/// Ticks covered by the whole of `level` (64 slots).
const fn level_span(level: usize) -> u64 {
    1 << (SLOT_BITS as u64 * (level as u64 + 1))
}

/// Total ticks the wheel can hold relative to its cursor.
const WHEEL_SPAN: u64 = level_span(LEVELS - 1);

#[derive(Debug, Clone, Copy)]
struct Node {
    at: SimTime,
    seq: u64,
    kind: EventKind,
    next: u32,
}

/// The timer wheel. See the module docs for the invariants.
#[derive(Debug)]
pub(crate) struct TimerWheel {
    /// Intrusive singly-linked slot heads, indexed `[level][slot]`.
    slots: [[u32; SLOTS]; LEVELS],
    /// Per-level slot occupancy bitmaps.
    occupied: [u64; LEVELS],
    /// Node slab; freed nodes are chained through `next`.
    nodes: Vec<Node>,
    /// Head of the slab free list.
    free: u32,
    /// Current tick: `cur` holds the events of exactly this tick, and
    /// every event in the wheel has tick ≥ `origin`.
    origin: u64,
    /// Drain bucket for the current tick, sorted descending by
    /// `(at, seq)` so the next event to fire is at the back.
    cur: Vec<(SimTime, u64, EventKind)>,
    /// Events beyond the wheel span, kept unsorted (rare).
    overflow: Vec<(SimTime, u64, EventKind)>,
    /// Total events pending.
    len: usize,
}

fn tick_of(at: SimTime) -> u64 {
    at.as_nanos() >> GRAN_BITS
}

impl TimerWheel {
    pub fn new() -> Self {
        TimerWheel {
            slots: [[NIL; SLOTS]; LEVELS],
            occupied: [0; LEVELS],
            nodes: Vec::with_capacity(1024),
            free: NIL,
            origin: 0,
            cur: Vec::with_capacity(64),
            overflow: Vec::new(),
            len: 0,
        }
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn push(&mut self, at: SimTime, seq: u64, kind: EventKind) {
        self.len += 1;
        self.insert(at, seq, kind);
    }

    /// Pop the earliest event if it fires at or before `horizon`.
    pub fn pop_before(&mut self, horizon: SimTime) -> Option<Event> {
        loop {
            if let Some(&(at, _seq, _)) = self.cur.last() {
                if at <= horizon {
                    let (at, seq, kind) = self.cur.pop().expect("just peeked");
                    self.len -= 1;
                    return Some(Event { at, seq, kind });
                }
                return None;
            }
            if !self.advance(tick_of(horizon)) {
                return None;
            }
        }
    }

    /// Route one event to the drain bucket, a wheel slot, or the
    /// overflow list, based on its tick distance from the cursor.
    fn insert(&mut self, at: SimTime, seq: u64, kind: EventKind) {
        let t = tick_of(at);
        debug_assert!(t >= self.origin, "event scheduled before the wheel cursor");
        let delta = t.saturating_sub(self.origin);
        if delta == 0 {
            // Lands in the tick currently draining: insert in descending
            // (at, seq) position so pop order stays exact.
            let idx = self.cur.partition_point(|&(a, s, _)| (a, s) > (at, seq));
            self.cur.insert(idx, (at, seq, kind));
            return;
        }
        if delta >= WHEEL_SPAN {
            self.overflow.push((at, seq, kind));
            return;
        }
        let level = (0..LEVELS)
            .find(|&l| delta < level_span(l))
            .expect("delta < WHEEL_SPAN");
        let slot = ((t >> (SLOT_BITS * level as u32)) & (SLOTS as u64 - 1)) as usize;
        let head = self.slots[level][slot];
        let node = Node { at, seq, kind, next: head };
        let idx = if self.free != NIL {
            let idx = self.free;
            self.free = self.nodes[idx as usize].next;
            self.nodes[idx as usize] = node;
            idx
        } else {
            self.nodes.push(node);
            (self.nodes.len() - 1) as u32
        };
        self.slots[level][slot] = idx;
        self.occupied[level] |= 1 << slot;
    }

    /// Unlink a slot's list, returning its head (slot marked empty).
    fn take_slot(&mut self, level: usize, slot: usize) -> u32 {
        let head = self.slots[level][slot];
        self.slots[level][slot] = NIL;
        self.occupied[level] &= !(1 << slot);
        head
    }

    /// The minimum tick of any level-0 event. Exact: within the live
    /// window every level-0 slot holds exactly one tick value, and bit
    /// `(origin + delta) mod 64` is at rotated position `delta`.
    fn level0_candidate(&self) -> Option<u64> {
        let occ = self.occupied[0];
        if occ == 0 {
            return None;
        }
        let o = (self.origin & (SLOTS as u64 - 1)) as u32;
        let delta = occ.rotate_right(o).trailing_zeros() as u64;
        Some(self.origin + delta)
    }

    /// A lower bound on the event ticks in `level` (≥ 1): the range start
    /// of its first occupied slot at or after the cursor. For the slot the
    /// cursor currently sits in the range start lies in the past and the
    /// slot may even hold events a full wheel revolution ahead, so that
    /// one slot is resolved exactly by walking its (short) node list.
    fn level_candidate(&self, level: usize) -> Option<u64> {
        let occ = self.occupied[level];
        if occ == 0 {
            return None;
        }
        let width = slot_width(level);
        let shift = SLOT_BITS * level as u32;
        let o_slot = ((self.origin >> shift) & (SLOTS as u64 - 1)) as u32;
        let rotated = occ.rotate_right(o_slot);
        let mut best = u64::MAX;
        if rotated & 1 == 1 {
            // The cursor's own slot: resolve it exactly. Note its minimum
            // can be *later* than the next occupied slot's range start (it
            // may hold events a revolution ahead), so the other slots are
            // still considered below.
            let mut idx = self.slots[level][o_slot as usize];
            while idx != NIL {
                let n = &self.nodes[idx as usize];
                best = best.min(tick_of(n.at));
                idx = n.next;
            }
            debug_assert!(best >= self.origin);
        }
        let rest = rotated & !1;
        if rest != 0 {
            let slot_delta = rest.trailing_zeros() as u64;
            best = best.min((self.origin & !(width - 1)) + slot_delta * width);
        }
        Some(best)
    }

    /// Advance the cursor to the next occupied tick ≤ `h_tick` and load
    /// its events into the drain bucket. Returns `false` (leaving the
    /// cursor at `h_tick` at most) when no event fires by the horizon.
    fn advance(&mut self, h_tick: u64) -> bool {
        debug_assert!(self.cur.is_empty());
        loop {
            let c0 = self.level0_candidate();
            // The most promising higher-level slot, as (candidate, level).
            let mut upper: Option<(u64, usize)> = None;
            for level in 1..LEVELS {
                if let Some(c) = self.level_candidate(level) {
                    if upper.is_none_or(|(b, _)| c < b) {
                        upper = Some((c, level));
                    }
                }
            }
            let overflow_min = self.overflow.iter().map(|&(at, _, _)| tick_of(at)).min();

            // The earliest any pending event can fire (every candidate is
            // a lower bound; c0 and overflow_min are exact).
            let floor = [c0, upper.map(|(b, _)| b), overflow_min]
                .into_iter()
                .flatten()
                .min();

            if !self.cur.is_empty() {
                // A cascade below dropped events of tick == origin into the
                // bucket. Done once no other slot can contribute that tick.
                if floor.is_none_or(|f| f > self.origin) {
                    return true;
                }
            }
            let Some(floor) = floor else {
                // Queue is empty: park the cursor at the horizon so later
                // pushes (which are ≥ now) stay ahead of it.
                self.origin = self.origin.max(h_tick);
                return false;
            };
            if floor > h_tick {
                self.origin = self.origin.max(h_tick);
                return false;
            }

            if let Some(m) = overflow_min {
                if m <= floor {
                    // Pull the far future closer: move the cursor to the
                    // overflow's first tick and re-route what now fits.
                    self.origin = self.origin.max(m);
                    let pending = std::mem::take(&mut self.overflow);
                    for (at, seq, kind) in pending {
                        self.insert(at, seq, kind);
                    }
                    continue;
                }
            }
            if let Some((base, level)) = upper {
                if c0.is_none_or(|c| base <= c) {
                    // A coarser slot starts at or before the level-0
                    // candidate: cascade it down before firing anything.
                    // (Events landing at tick == base go straight to the
                    // drain bucket via `insert`.)
                    self.origin = self.origin.max(base);
                    let slot = ((base >> (SLOT_BITS * level as u32))
                        & (SLOTS as u64 - 1)) as usize;
                    let mut node = self.take_slot(level, slot);
                    while node != NIL {
                        let Node { at, seq, kind, next } = self.nodes[node as usize];
                        self.nodes[node as usize].next = self.free;
                        self.free = node;
                        self.insert(at, seq, kind);
                        node = next;
                    }
                    continue;
                }
            }

            // The level-0 candidate is the true next tick: drain it,
            // merging with any same-tick events a cascade already placed.
            let tick = c0.expect("floor ≤ h_tick and no earlier coarse slot");
            debug_assert!(self.cur.is_empty() || tick == self.origin);
            self.origin = tick;
            let slot = (tick & (SLOTS as u64 - 1)) as usize;
            let mut node = self.take_slot(0, slot);
            while node != NIL {
                let Node { at, seq, kind, next } = self.nodes[node as usize];
                self.nodes[node as usize].next = self.free;
                self.free = node;
                debug_assert_eq!(tick_of(at), tick);
                self.cur.push((at, seq, kind));
                node = next;
            }
            // Descending, so the earliest (at, seq) pops from the back.
            self.cur.sort_unstable_by_key(|&(a, s, _)| std::cmp::Reverse((a, s)));
            return true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(w: &mut TimerWheel) -> Vec<(u64, u64)> {
        std::iter::from_fn(|| w.pop_before(SimTime::MAX).map(|e| (e.at.as_nanos(), e.seq)))
            .collect()
    }

    #[test]
    fn pops_in_time_then_seq_order() {
        let mut w = TimerWheel::new();
        let times = [5_000u64, 1_000, 3_000, 1_000, 7_919_999, 64 * 1024, 1_000_000_000];
        for (seq, &t) in times.iter().enumerate() {
            w.push(SimTime(t), seq as u64, EventKind::ConnStart { conn: seq });
        }
        let got = drain(&mut w);
        let mut want: Vec<(u64, u64)> =
            times.iter().enumerate().map(|(s, &t)| (t, s as u64)).collect();
        want.sort_unstable();
        assert_eq!(got, want);
        assert_eq!(w.len(), 0);
    }

    #[test]
    fn same_tick_bursts_fire_in_seq_order() {
        let mut w = TimerWheel::new();
        // All in one 1.024 µs tick but with distinct nanosecond times.
        for seq in 0..100u64 {
            w.push(SimTime(500 + (seq % 7)), seq, EventKind::ConnStart { conn: 0 });
        }
        let got = drain(&mut w);
        let mut want: Vec<(u64, u64)> = (0..100u64).map(|s| (500 + (s % 7), s)).collect();
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn far_future_overflow_events_come_back() {
        let mut w = TimerWheel::new();
        let far = SimTime::from_secs(100_000); // beyond the wheel span
        w.push(far, 0, EventKind::ConnStart { conn: 1 });
        w.push(SimTime::from_millis(1), 1, EventKind::ConnStart { conn: 2 });
        assert_eq!(w.pop_before(SimTime::from_secs(1)).map(|e| e.seq), Some(1));
        assert_eq!(w.pop_before(SimTime::from_secs(1)), None);
        assert_eq!(w.pop_before(SimTime::MAX).map(|e| e.seq), Some(0));
    }

    #[test]
    fn horizon_bounded_cursor_allows_later_near_pushes() {
        let mut w = TimerWheel::new();
        w.push(SimTime::from_secs(5), 0, EventKind::ConnStart { conn: 0 });
        // Nothing before 1 s; the cursor must not run past the horizon...
        assert!(w.pop_before(SimTime::from_secs(1)).is_none());
        // ...so a push at 2 s (later "now" is 1 s) still works and pops first.
        w.push(SimTime::from_secs(2), 1, EventKind::ConnStart { conn: 1 });
        let got = drain(&mut w);
        assert_eq!(got, vec![(SimTime::from_secs(2).as_nanos(), 1), (SimTime::from_secs(5).as_nanos(), 0)]);
    }

    #[test]
    fn interleaved_push_pop_with_current_tick_inserts() {
        let mut w = TimerWheel::new();
        w.push(SimTime(100), 0, EventKind::ConnStart { conn: 0 });
        w.push(SimTime(200), 1, EventKind::ConnStart { conn: 1 });
        let first = w.pop_before(SimTime::MAX).unwrap();
        assert_eq!(first.seq, 0);
        // Push into the tick currently draining (tick 0 covers 0..1024 ns).
        w.push(SimTime(150), 2, EventKind::ConnStart { conn: 2 });
        w.push(SimTime(120), 3, EventKind::ConnStart { conn: 3 });
        let rest = drain(&mut w);
        assert_eq!(rest, vec![(120, 3), (150, 2), (200, 1)]);
    }

    #[test]
    fn slab_recycles_nodes() {
        let mut w = TimerWheel::new();
        for round in 0..50u64 {
            for i in 0..100u64 {
                w.push(SimTime(round * 1_000_000 + i * 900), round * 100 + i,
                    EventKind::ConnStart { conn: 0 });
            }
            // Drain with a bounded horizon so the cursor stays behind the
            // next round's pushes (the simulator's `now` contract).
            while w.pop_before(SimTime(round * 1_000_000 + 500_000)).is_some() {}
        }
        // 100 live events at a time → the slab never needs more than the
        // high-water mark even over 5000 total events.
        assert!(w.nodes.len() <= 128, "slab grew to {}", w.nodes.len());
    }
}
