//! Sharded intra-simulation parallelism: one world partitioned across
//! several [`Simulator`] shards, synchronized with conservative lookahead.
//!
//! ## Model
//!
//! A [`ShardedSimulator`] owns `num_shards` ordinary [`Simulator`]s. Every
//! link is added to exactly one shard (`add_link(shard, spec)`); every
//! connection lives in the shard that owns the first link of its first
//! subflow (the *owner* shard), and the first link of **every** subflow
//! must live there — the sender side of all subflows is one host. Packets
//! carry world-level connection ids; each shard resolves them through a
//! shared immutable [`WorldMap`].
//!
//! ## Synchronization (conservative lookahead)
//!
//! The only events that cross shards are packet arrivals, and a crossing
//! arrival is always scheduled at least `lookahead` after the event that
//! produced it, where `lookahead` is the minimum propagation delay over
//! all *boundary-crossing* links (a packet leaves a link in shard A for a
//! link — or final delivery — in shard B no earlier than A's clock plus
//! that link's delay). Time therefore advances in epochs of length
//! `lookahead`: within an epoch every shard processes its queue
//! independently, buffering cross-shard arrivals in per-destination
//! outboxes; at the epoch barrier outboxes are flushed into a mailbox
//! matrix and drained — in ascending source-shard order — into the
//! destination queues. Every cross-shard arrival lands in a strictly
//! later epoch than the one that produced it, so no shard ever receives
//! an event in its past.
//!
//! ## Determinism
//!
//! Each shard's `(at, seq)` event history is a pure function of the seed
//! and the (deterministic) sequence of epoch boundaries and mailbox
//! drains, none of which depend on the worker-thread count: `jobs = 1`
//! and `jobs = N` produce bit-identical merged [`DetDigest`]s
//! ([`ShardedSimulator::det_digest`]), gated by `chaos_smoke` and the
//! `shard_determinism` proptest.

use crate::event::QueueBackend;
use crate::fault::FaultPlan;
use crate::link::{LinkId, LinkSpec, LinkStats};
use crate::packet::Packet;
use crate::perf::SimPerf;
use crate::sim::{ConnId, ConnectionSpec, ShardCtx, Simulator, SubflowTiming};
use crate::stats::ConnectionStats;
use crate::time::SimTime;
use mptcp_cc::{DetDigest, DigestWriter};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier, Mutex};

/// Immutable placement and routing tables shared by every shard of a
/// partitioned world (struct-of-arrays: dense ids indexing flat vectors).
pub struct WorldMap {
    /// Per global link id: `(owning shard, shard-local link id)`.
    link_home: Vec<(u32, u32)>,
    /// Per global connection id: owning shard.
    conn_owner: Vec<u32>,
    /// Per global connection id: local id within the owner shard.
    conn_local: Vec<u32>,
    /// Prefix sums: global subflow index of each connection's first
    /// subflow (`len = conns + 1`).
    conn_sub_base: Vec<u32>,
    /// Prefix sums: index of each global subflow's first hop in `hops`
    /// (`len = total_subflows + 1`).
    sub_hop_base: Vec<u32>,
    /// Flattened per-subflow paths: `(shard, shard-local link id)` per hop.
    hops: Vec<(u32, u32)>,
    /// Minimum propagation delay over boundary-crossing links — the epoch
    /// length. `SimTime(u64::MAX)` when nothing ever crosses (the whole
    /// horizon becomes one epoch).
    lookahead: SimTime,
}

impl WorldMap {
    #[inline]
    fn gsub(&self, conn: ConnId, sub: usize) -> usize {
        self.conn_sub_base[conn] as usize + sub
    }

    /// `(shard, local link id)` of one hop of a subflow's path.
    #[inline]
    pub(crate) fn hop(&self, conn: ConnId, sub: usize, hop: usize) -> (u32, u32) {
        self.hops[self.sub_hop_base[self.gsub(conn, sub)] as usize + hop]
    }

    /// Number of links on a subflow's path.
    #[inline]
    pub(crate) fn path_len(&self, conn: ConnId, sub: usize) -> usize {
        let g = self.gsub(conn, sub);
        (self.sub_hop_base[g + 1] - self.sub_hop_base[g]) as usize
    }

    /// The shard owning a connection (where delivery and ACK processing
    /// happen).
    #[inline]
    pub(crate) fn owner_of(&self, conn: ConnId) -> u32 {
        self.conn_owner[conn]
    }

    /// A connection's local id within its owner shard.
    #[inline]
    pub(crate) fn local_of(&self, conn: ConnId) -> ConnId {
        self.conn_local[conn] as ConnId
    }
}

/// A single simulated world partitioned across shards, each with its own
/// event queue, advanced in lockstep epochs of one conservative lookahead
/// (see the [module docs](self)). The thread count is a pure execution
/// detail: results are bit-identical for any `jobs`.
pub struct ShardedSimulator {
    shards: Vec<Simulator>,
    /// Per global link id: `(owning shard, shard-local id)`.
    link_home: Vec<(u32, u32)>,
    /// Per global link id: the spec it was created with (delays feed ACK
    /// timing and the lookahead computation).
    link_specs: Vec<LinkSpec>,
    /// Per global connection id: owning shard.
    conn_owner: Vec<u32>,
    /// Per global connection id: local id within the owner shard.
    conn_local: Vec<u32>,
    /// Per global connection id: the subflow paths in global link ids
    /// (kept to build the world map).
    conn_paths: Vec<Vec<Vec<LinkId>>>,
    map: Option<Arc<WorldMap>>,
    jobs: usize,
    now: SimTime,
    wall_nanos: u64,
}

impl ShardedSimulator {
    /// Create a world of `num_shards` shards. Each shard gets its own
    /// deterministic RNG derived from `seed`, so the world's history is a
    /// pure function of `(seed, construction calls)` — independent of
    /// [`Self::set_jobs`].
    pub fn new(seed: u64, num_shards: usize) -> Self {
        Self::with_backend(seed, num_shards, QueueBackend::default())
    }

    /// Like [`Self::new`] with an explicit event-queue backend for every
    /// shard.
    pub fn with_backend(seed: u64, num_shards: usize, backend: QueueBackend) -> Self {
        assert!(num_shards > 0, "world needs at least one shard");
        let shards = (0..num_shards as u64)
            .map(|i| Simulator::with_backend(seed ^ (i + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15), backend))
            .collect();
        Self {
            shards,
            link_home: Vec::new(),
            link_specs: Vec::new(),
            conn_owner: Vec::new(),
            conn_local: Vec::new(),
            conn_paths: Vec::new(),
            map: None,
            jobs: 1,
            now: SimTime::ZERO,
            wall_nanos: 0,
        }
    }

    /// Number of shards the world is partitioned into.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Set the worker-thread count for subsequent [`Self::run_until`]
    /// calls (clamped to `[1, num_shards]` at run time). Purely an
    /// execution knob: any value produces the identical history.
    pub fn set_jobs(&mut self, jobs: usize) {
        self.jobs = jobs.max(1);
    }

    /// Current worker-thread setting.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Forward [`Simulator::wrap_pure_in_adapter`] to every shard: wrap
    /// every subsequently added pure named algorithm in the stateful
    /// adapter (the stateful-vs-pure differential tests drive whole
    /// sharded scenarios through both arms).
    pub fn wrap_pure_in_adapter(&mut self, on: bool) {
        for shard in &mut self.shards {
            shard.wrap_pure_in_adapter(on);
        }
    }

    /// Forward [`Simulator::set_flow_lifecycle`] to every shard: hot
    /// subflow windows are acquired at connection start and recycled one
    /// straggler-grace after the flow finishes. Call before any
    /// connection is added.
    pub fn set_flow_lifecycle(&mut self, on: bool) {
        for shard in &mut self.shards {
            shard.set_flow_lifecycle(on);
        }
    }

    /// Total hot subflow-window slots across every shard's arena — the
    /// world-wide high-water mark of simultaneously *resident* subflows
    /// (retired windows are recycled, so the count does not grow with
    /// total flows, only with peak concurrency).
    pub fn arena_hot_slots(&self) -> usize {
        self.shards.iter().map(|s| s.arena_hot_slots()).sum()
    }

    /// Total recycled hot-window acquisitions across every shard's arena.
    pub fn arena_hot_reuses(&self) -> u64 {
        self.shards.iter().map(|s| s.arena_hot_reuses()).sum()
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Add a link to `shard`; returns its world-level id (valid in every
    /// shard's connection paths).
    pub fn add_link(&mut self, shard: usize, spec: LinkSpec) -> LinkId {
        assert!(shard < self.shards.len(), "unknown shard {shard}");
        let local = self.shards[shard].add_link(spec);
        self.link_home.push((shard as u32, local as u32));
        self.link_specs.push(spec);
        self.map = None;
        self.link_home.len() - 1
    }

    /// Add a connection whose subflow paths are world-level link ids;
    /// returns its world-level id. The connection lives in the shard
    /// owning the first link of its first subflow.
    ///
    /// # Panics
    /// Panics if the spec has no subflows, references unknown links, or
    /// has a subflow whose first link lives outside the owner shard (all
    /// subflows of one connection leave from the same host).
    pub fn add_connection(&mut self, spec: ConnectionSpec) -> ConnId {
        assert!(!spec.subflows.is_empty(), "connection needs at least one subflow");
        let packet_size = spec.packet_bytes();
        let mut delays = Vec::with_capacity(spec.subflows.len());
        for sf in &spec.subflows {
            assert!(!sf.path.is_empty(), "subflow path must traverse at least one link");
            let mut fwd = SimTime::ZERO;
            let mut residence = SimTime::ZERO;
            for &l in &sf.path {
                assert!(l < self.link_home.len(), "unknown link {l}");
                let ls = self.link_specs[l];
                fwd += ls.delay;
                let drain = ls.tx_time(packet_size).as_nanos();
                residence += ls.delay + SimTime(drain.saturating_mul(ls.queue_pkts as u64 + 1));
            }
            let ack_delay = fwd + sf.extra_rtt;
            let rtt_hint = (fwd + ack_delay).as_secs_f64().max(1e-4);
            delays.push(SubflowTiming { ack_delay, rtt_hint, straggler: residence + ack_delay });
        }
        let owner = self.link_home[spec.subflows[0].path[0]].0;
        for (i, sf) in spec.subflows.iter().enumerate() {
            assert_eq!(
                self.link_home[sf.path[0]].0,
                owner,
                "subflow {i}: first link must live in the owner shard {owner} \
                 (all subflows of a connection leave from one host)"
            );
        }
        let gid = self.conn_owner.len();
        self.conn_paths.push(spec.subflows.iter().map(|sf| sf.path.clone()).collect());
        let local = self.shards[owner as usize].add_connection_sharded(spec, gid, &delays);
        self.conn_owner.push(owner);
        self.conn_local.push(local as u32);
        self.map = None;
        gid
    }

    /// Install a fault plan given in world-level link ids: each action is
    /// translated and installed into the shard owning its link, where it
    /// becomes an ordinary deterministic event.
    ///
    /// # Panics
    /// Panics if any action references an unknown link.
    pub fn install_fault_plan(&mut self, plan: &FaultPlan) {
        let mut per_shard: Vec<FaultPlan> = vec![FaultPlan::new(); self.shards.len()];
        for &(at, action) in plan.actions() {
            let gl = action.link();
            assert!(gl < self.link_home.len(), "unknown link {gl}");
            let (shard, local) = self.link_home[gl];
            per_shard[shard as usize].push(at, action.with_link(local as LinkId));
        }
        for (shard, plan) in self.shards.iter_mut().zip(&per_shard) {
            if !plan.is_empty() {
                shard.install_fault_plan(plan);
            }
        }
    }

    /// A link's accumulated counters (world-level id).
    pub fn link_stats(&self, link: LinkId) -> LinkStats {
        let (shard, local) = self.link_home[link];
        self.shards[shard as usize].link_stats(local as LinkId)
    }

    /// A link's current spec (world-level id).
    pub fn link_spec(&self, link: LinkId) -> LinkSpec {
        let (shard, local) = self.link_home[link];
        self.shards[shard as usize].link_spec(local as LinkId)
    }

    /// Number of links in the world.
    pub fn link_count(&self) -> usize {
        self.link_home.len()
    }

    /// Number of connections in the world.
    pub fn connection_count(&self) -> usize {
        self.conn_owner.len()
    }

    /// Zero all link counters in every shard (discard a warm-up period).
    pub fn reset_link_stats(&mut self) {
        for shard in &mut self.shards {
            shard.reset_link_stats();
        }
    }

    /// A connection's statistics snapshot (world-level id).
    pub fn connection_stats(&self, conn: ConnId) -> ConnectionStats {
        self.shards[self.conn_owner[conn] as usize]
            .connection_stats(self.conn_local[conn] as ConnId)
    }

    /// Merged performance counters: event counts summed over shards, wall
    /// time as measured around the epoch loop (not per shard — workers
    /// run concurrently). The stall/quiesce detectors are per-`Simulator`
    /// facilities and stay `None` here.
    pub fn perf(&self) -> SimPerf {
        let mut merged = SimPerf {
            sim_elapsed: self.now,
            wall: std::time::Duration::from_nanos(self.wall_nanos),
            ..SimPerf::default()
        };
        for shard in &self.shards {
            let p = shard.perf();
            merged.events_scheduled += p.events_scheduled;
            merged.events_fired += p.events_fired;
            merged.events_cancelled += p.events_cancelled;
            merged.pending += p.pending;
            merged.peak_pending += p.peak_pending;
            merged.faults_applied += p.faults_applied;
            merged.hot_allocs += p.hot_allocs;
        }
        merged
    }

    /// Merged determinism digest of the whole world: every connection's
    /// [`ConnectionStats`] in world id order, then every shard's
    /// [`SimPerf`] in shard order. Bit-identical across `jobs` settings
    /// for a fixed world — the property `chaos_smoke` gates in CI.
    pub fn det_digest(&self) -> u64 {
        let mut w = DigestWriter::new();
        for gid in 0..self.conn_owner.len() {
            self.connection_stats(gid).det_digest(&mut w);
        }
        for shard in &self.shards {
            shard.perf().det_digest(&mut w);
        }
        w.finish()
    }

    /// Build (or rebuild, after world mutation) the shared map and give
    /// every shard its routing context.
    fn ensure_map(&mut self) {
        if self.map.is_some() {
            return;
        }
        let num_shards = self.shards.len();
        let mut conn_sub_base = Vec::with_capacity(self.conn_paths.len() + 1);
        let mut sub_hop_base = Vec::new();
        let mut hops: Vec<(u32, u32)> = Vec::new();
        conn_sub_base.push(0u32);
        sub_hop_base.push(0u32);
        for paths in &self.conn_paths {
            for path in paths {
                for &gl in path {
                    hops.push(self.link_home[gl]);
                }
                sub_hop_base.push(hops.len() as u32);
            }
            conn_sub_base.push(sub_hop_base.len() as u32 - 1);
        }
        // Lookahead: a packet crosses a boundary when it leaves the link
        // at hop `i` for a link (or final delivery) in a different shard;
        // the crossing takes hop `i`'s propagation delay. The minimum over
        // all such links bounds how far any cross-shard arrival can lag
        // the event that produced it.
        let mut lookahead = SimTime(u64::MAX);
        let mut gsub = 0usize;
        for (conn, paths) in self.conn_paths.iter().enumerate() {
            let owner = self.conn_owner[conn];
            for path in paths {
                for (i, &gl) in path.iter().enumerate() {
                    let here = self.link_home[gl].0;
                    let next = match path.get(i + 1) {
                        Some(&nl) => self.link_home[nl].0,
                        None => owner,
                    };
                    if here != next {
                        lookahead = lookahead.min(self.link_specs[gl].delay);
                    }
                }
                gsub += 1;
            }
        }
        debug_assert_eq!(gsub + 1, sub_hop_base.len());
        let map = Arc::new(WorldMap {
            link_home: self.link_home.clone(),
            conn_owner: self.conn_owner.clone(),
            conn_local: self.conn_local.clone(),
            conn_sub_base,
            sub_hop_base,
            hops,
            lookahead,
        });
        debug_assert!(map.link_home.len() == self.link_specs.len());
        for (id, shard) in self.shards.iter_mut().enumerate() {
            shard.set_shard_ctx(ShardCtx {
                id: id as u32,
                map: Arc::clone(&map),
                outbox: (0..num_shards).map(|_| Vec::new()).collect(),
            });
        }
        self.map = Some(map);
    }

    /// Run the whole world forward to `horizon` (inclusive), advancing
    /// every shard in lockstep epochs of one lookahead, on up to
    /// [`Self::jobs`] worker threads. The clock ends at exactly `horizon`;
    /// the run ends early only if every shard's queue drains.
    pub fn run_until(&mut self, horizon: SimTime) {
        assert!(horizon >= self.now, "time cannot run backwards");
        let started = crate::perf::wall_clock();
        self.ensure_map();
        let n = self.shards.len();
        let lookahead = self.map.as_ref().expect("map built").lookahead.0.max(1);
        // Exclusive end of the run: `run_until(h)` processes events at
        // exactly `h`, matching the single-simulator contract.
        let hlimit = horizon.0.saturating_add(1);
        let workers = self.jobs.min(n).max(1);
        // Mailbox matrix: cell [src][dst] is written only by src's worker
        // in the process phase and read only by dst's worker in the drain
        // phase; the epoch barrier separates the two.
        let mailboxes: MailboxMatrix =
            (0..n).map(|_| (0..n).map(|_| Mutex::new(Vec::new())).collect()).collect();
        if workers == 1 {
            let mut t = self.now.0;
            loop {
                let window_end = t.saturating_add(lookahead).min(hlimit);
                for (src, shard) in self.shards.iter_mut().enumerate() {
                    shard.run_epoch(SimTime(window_end - 1));
                    flush_outbox(shard, src, &mailboxes);
                }
                let mut all_empty = true;
                for (dst, shard) in self.shards.iter_mut().enumerate() {
                    drain_mailboxes(shard, dst, &mailboxes);
                    all_empty &= shard.pending_events() == 0;
                }
                t = window_end;
                if all_empty || t >= hlimit {
                    break;
                }
            }
        } else {
            let chunk = n.div_ceil(workers);
            let nworkers = n.div_ceil(chunk);
            let barrier = Barrier::new(nworkers);
            let empty: Vec<AtomicBool> = (0..n).map(|_| AtomicBool::new(false)).collect();
            let all_done = AtomicBool::new(false);
            let start_t = self.now.0;
            std::thread::scope(|scope| {
                for (w, shards) in self.shards.chunks_mut(chunk).enumerate() {
                    let base = w * chunk;
                    let (mailboxes, barrier) = (&mailboxes, &barrier);
                    let (empty, all_done) = (&empty, &all_done);
                    scope.spawn(move || {
                        let mut t = start_t;
                        loop {
                            let window_end = t.saturating_add(lookahead).min(hlimit);
                            for (i, shard) in shards.iter_mut().enumerate() {
                                shard.run_epoch(SimTime(window_end - 1));
                                flush_outbox(shard, base + i, mailboxes);
                            }
                            // Barrier 1: every outbox is flushed before any
                            // shard drains its mailbox column.
                            barrier.wait();
                            for (i, shard) in shards.iter_mut().enumerate() {
                                drain_mailboxes(shard, base + i, mailboxes);
                                empty[base + i]
                                    .store(shard.pending_events() == 0, Ordering::SeqCst);
                            }
                            // Barrier 2: every flag is written and every
                            // mailbox drained before the leader decides.
                            if barrier.wait().is_leader() {
                                all_done.store(
                                    empty.iter().all(|e| e.load(Ordering::SeqCst)),
                                    Ordering::SeqCst,
                                );
                            }
                            // Barrier 3: the decision is published before
                            // anyone reads it or starts the next epoch.
                            barrier.wait();
                            t = window_end;
                            if all_done.load(Ordering::SeqCst) || t >= hlimit {
                                break;
                            }
                        }
                    });
                }
            });
        }
        for shard in &mut self.shards {
            shard.finish_epochs_at(horizon);
        }
        self.now = horizon;
        self.wall_nanos += started.elapsed().as_nanos() as u64;
    }
}

/// One mailbox cell: the cross-shard arrivals one source shard hands one
/// destination shard at the epoch barrier.
type Mailbox = Mutex<Vec<(SimTime, Packet)>>;
/// The full `[src][dst]` matrix.
type MailboxMatrix = Vec<Vec<Mailbox>>;

/// Move one shard's buffered cross-shard arrivals into the mailbox
/// matrix (phase 1 of the epoch barrier; `Vec::append` keeps the outbox's
/// capacity, so steady-state handoff does not allocate on the source side).
fn flush_outbox(shard: &mut Simulator, src: usize, mailboxes: &[Vec<Mailbox>]) {
    for (dst, buf) in shard.shard_outbox().iter_mut().enumerate() {
        if !buf.is_empty() {
            mailboxes[src][dst].lock().expect("mailbox poisoned").append(buf);
        }
    }
}

/// Drain every mailbox addressed to `own` into its queue, in ascending
/// source-shard order — the fixed order that makes the destination's
/// event-seq assignment independent of worker scheduling.
fn drain_mailboxes(shard: &mut Simulator, own: usize, mailboxes: &[Vec<Mailbox>]) {
    for row in mailboxes {
        let mut m = row[own].lock().expect("mailbox poisoned");
        for (at, pkt) in m.drain(..) {
            shard.inject_arrive(at, pkt);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::LinkSpec;
    use mptcp_cc::AlgorithmKind;

    /// Two shards, two multipath connections, every subflow crossing the
    /// boundary in one direction or the other.
    fn cross_world(seed: u64, num_shards: usize) -> (ShardedSimulator, Vec<ConnId>) {
        let mut sim = ShardedSimulator::new(seed, num_shards);
        let ms = SimTime::from_millis;
        let a0 = sim.add_link(0, LinkSpec::mbps(10.0, ms(10), 25));
        let a1 = sim.add_link(0, LinkSpec::mbps(8.0, ms(15), 25));
        let b0 = sim.add_link(1 % num_shards, LinkSpec::mbps(10.0, ms(10), 25));
        let b1 = sim.add_link(1 % num_shards, LinkSpec::mbps(6.0, ms(20), 25));
        let c0 = sim.add_connection(
            ConnectionSpec::bulk(AlgorithmKind::Mptcp).path(vec![a0, b0]).path(vec![a1, b1]),
        );
        let c1 = sim.add_connection(
            ConnectionSpec::sized(AlgorithmKind::Mptcp, 2000).path(vec![b0, a0]).path(vec![b1, a1]),
        );
        (sim, vec![c0, c1])
    }

    #[test]
    fn sharded_world_moves_data_across_the_boundary() {
        let (mut sim, conns) = cross_world(7, 2);
        sim.run_until(SimTime::from_secs(20));
        for &c in &conns {
            let stats = sim.connection_stats(c);
            assert!(stats.data_delivered > 100, "conn {c} moved no data: {stats:?}");
        }
        assert!(sim.connection_stats(conns[1]).finished_at.is_some(), "sized flow must finish");
        assert!(sim.perf().is_consistent());
    }

    #[test]
    fn jobs_do_not_change_the_history() {
        let digest = |jobs: usize| {
            let (mut sim, _) = cross_world(11, 2);
            sim.set_jobs(jobs);
            sim.run_until(SimTime::from_secs(15));
            sim.det_digest()
        };
        let one = digest(1);
        assert_eq!(one, digest(2), "jobs=2 diverged from jobs=1");
        assert_eq!(one, digest(8), "jobs=8 diverged from jobs=1");
    }

    #[test]
    fn stepped_runs_match_one_shot_runs() {
        let (mut a, conns) = cross_world(13, 2);
        let (mut b, _) = cross_world(13, 2);
        b.set_jobs(2);
        a.run_until(SimTime::from_secs(12));
        for s in 1..=12 {
            b.run_until(SimTime::from_secs(s));
        }
        assert_eq!(a.det_digest(), b.det_digest());
        assert!(a.connection_stats(conns[0]).data_delivered > 0);
    }

    #[test]
    fn single_shard_world_degenerates_to_one_epoch() {
        // No subflow crosses a boundary → infinite lookahead → the whole
        // run is one epoch per run_until call.
        let (mut sim, conns) = cross_world(5, 1);
        sim.run_until(SimTime::from_secs(10));
        assert!(sim.connection_stats(conns[0]).data_delivered > 100);
        assert!(sim.perf().is_consistent());
    }

    #[test]
    fn faults_are_split_per_shard_and_fire() {
        let (mut sim, conns) = cross_world(17, 2);
        let horizon = SimTime::from_secs(20);
        let links: Vec<LinkId> = (0..sim.link_count()).collect();
        sim.install_fault_plan(&FaultPlan::randomized(0xFA11, &links, horizon));
        let plan_len = FaultPlan::randomized(0xFA11, &links, horizon).len() as u64;
        sim.set_jobs(2);
        sim.run_until(horizon);
        assert_eq!(sim.perf().faults_applied, plan_len);
        assert!(sim.connection_stats(conns[0]).data_delivered > 0);
    }

    #[test]
    #[should_panic(expected = "first link must live in the owner shard")]
    fn split_first_links_are_rejected() {
        let mut sim = ShardedSimulator::new(1, 2);
        let a = sim.add_link(0, LinkSpec::mbps(10.0, SimTime::from_millis(10), 25));
        let b = sim.add_link(1, LinkSpec::mbps(10.0, SimTime::from_millis(10), 25));
        sim.add_connection(ConnectionSpec::bulk(AlgorithmKind::Mptcp).path(vec![a]).path(vec![b]));
    }
}
