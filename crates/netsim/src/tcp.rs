//! Per-subflow TCP machinery: SACK-based loss recovery in the style of
//! RFC 6675, with the window *amounts* delegated to the connection's
//! [`MultipathCc`](mptcp_cc::MultipathCc).
//!
//! Each subflow of a multipath connection runs its own loss detection and
//! recovery, exactly as the paper's implementation does ("The sequence
//! numbers and cumulative ack in the TCP header are per-subflow, allowing
//! efficient loss detection and fast retransmission", §6). Like the Linux
//! stack the paper built on, loss recovery is selective-ACK driven: the
//! receiver reports which out-of-order packets it holds, the sender keeps
//! a scoreboard (sacked / lost / retransmitted), estimates the packets
//! actually in the network (`pipe`), and retransmits all the holes of a
//! loss burst within about a round trip — without which a slow-start
//! overshoot would take one RTT *per lost packet* to repair and corrupt
//! every throughput measurement.
//!
//! The scoreboard sets themselves live behind the
//! [`Scoreboard`]/[`OooBuf`] traits in [`crate::scoreboard`]: rotating
//! bitmaps by default, the original B-tree bookkeeping behind the
//! `btree-scoreboard` feature, with differential proptests below driving
//! both through identical sequences.

// lint:hot-path — per-ACK state must stay on the bitmap scoreboards; the
// B-tree reference implementation lives in scoreboard_ref.rs.
// lint:shard-state — subflow sender/receiver state is per-shard and moves
// onto worker threads in the sharded engine; it must stay Send.

use crate::scoreboard::{DefaultOoo, DefaultScoreboard, OooBuf, RingPool, Scoreboard};
use crate::time::SimTime;
use std::collections::VecDeque;

/// Maximum SACK ranges carried per ACK (real TCP fits 3–4 in options).
pub(crate) const MAX_SACK_RANGES: usize = 4;

/// SACK ranges: up to [`MAX_SACK_RANGES`] half-open intervals
/// `[start, end)` of packets the receiver holds above the cumulative ACK.
pub(crate) type SackRanges = [Option<(u64, u64)>; MAX_SACK_RANGES];

/// Tunable TCP parameters shared by every subflow of a connection.
#[derive(Debug, Clone, Copy)]
pub struct TcpParams {
    /// Initial congestion window, packets.
    pub initial_cwnd: f64,
    /// Initial slow-start threshold, packets (∞ → slow start until first loss).
    pub initial_ssthresh: f64,
    /// Minimum retransmission timeout (Linux uses 200 ms).
    pub min_rto: SimTime,
    /// Maximum retransmission timeout.
    pub max_rto: SimTime,
    /// RTO before any RTT sample exists (RFC 6298 says 1 s).
    pub initial_rto: SimTime,
    /// Cap on the congestion window (models the receive window), packets.
    pub max_cwnd: f64,
    /// Packets SACKed above a hole before the hole is declared lost
    /// (DupThresh).
    pub dupack_threshold: u32,
}

impl Default for TcpParams {
    fn default() -> Self {
        Self {
            initial_cwnd: 2.0,
            initial_ssthresh: f64::INFINITY,
            min_rto: SimTime::from_millis(200),
            max_rto: SimTime::from_secs(60),
            initial_rto: SimTime::from_secs(1),
            max_cwnd: f64::INFINITY,
            dupack_threshold: 3,
        }
    }
}

/// Metadata the sender keeps per in-flight packet: RTT sampling (Karn's
/// rule: never sample a retransmitted packet) plus the connection-level
/// data sequence number the packet carries, so stranded data on a failed
/// subflow can be identified and reinjected elsewhere.
#[derive(Debug, Clone, Copy)]
struct SentMeta {
    sent_at: SimTime,
    retransmitted: bool,
    /// Connection-level data sequence number carried by this packet.
    dsn: u64,
    /// The dsn was reported received on *this* subflow (cum-acked or
    /// SACKed) — used to report each dsn's first acknowledgment exactly
    /// once per subflow.
    data_acked: bool,
}

/// Receiver-side reassembly state of one subflow (kept with the sender for
/// simulation convenience; content-wise it is the remote endpoint's state).
#[derive(Debug, Default)]
pub(crate) struct SubflowReceiver<B: OooBuf = DefaultOoo> {
    /// Next subflow sequence number expected in order.
    pub next_expected: u64,
    /// Out-of-order packets held for reassembly.
    ooo: B,
}

impl<B: OooBuf> SubflowReceiver<B> {
    /// Process an arriving data packet; returns the ACK to send:
    /// `(cumulative_ack, is_duplicate, sack_ranges)`.
    pub fn on_data(&mut self, seq: u64) -> (u64, bool, SackRanges) {
        let dup;
        if seq == self.next_expected {
            self.next_expected += 1;
            while self.ooo.remove(self.next_expected) {
                self.next_expected += 1;
            }
            self.ooo.advance_watermark(self.next_expected);
            dup = false;
        } else if seq > self.next_expected {
            self.ooo.insert(seq);
            dup = true;
        } else {
            // Old duplicate (spurious retransmission).
            dup = true;
        }
        (self.next_expected, dup, self.ooo.sack_ranges())
    }

    /// Packets delivered in order so far.
    pub fn delivered(&self) -> u64 {
        self.next_expected
    }

    /// Whether the receiver already holds `seq` (in order or buffered).
    pub fn contains(&self, seq: u64) -> bool {
        seq < self.next_expected || self.ooo.contains(seq)
    }

    /// Allocation events in the reassembly buffer (ring growth /
    /// fallback spills); feeds [`crate::SimPerf::hot_allocs`].
    pub fn alloc_events(&self) -> u64 {
        self.ooo.alloc_events()
    }

    /// Fresh receiver drawing reassembly-ring storage from `pool`.
    pub fn new_pooled(pool: &mut RingPool) -> Self {
        Self { next_expected: 0, ooo: B::new_pooled(pool) }
    }

    /// Reset to the initial state in place: the reassembly ring keeps its
    /// storage and its monotone allocation counter, so a recycled arena
    /// slot starts a new flow without allocating.
    pub fn reset_for_reuse(&mut self) {
        self.next_expected = 0;
        self.ooo.reset_for_reuse();
    }

    /// Surrender ring storage into `pool`; the husk must not be reused.
    pub fn gut_into(&mut self, pool: &mut RingPool) {
        self.next_expected = 0;
        self.ooo.gut_into(pool);
    }
}

/// What an ACK did to the sender's state; the caller (the simulator's
/// connection layer) turns these into congestion-controller calls.
#[derive(Debug, Default, Clone, Copy)]
pub(crate) struct AckOutcome {
    /// Packets newly covered by the cumulative ACK.
    pub newly_acked: u64,
    /// The scoreboard marked new losses and recovery started now — the
    /// caller applies the (single) multiplicative decrease.
    pub entered_recovery: bool,
    /// Timer must be (re)armed / disarmed.
    pub rearm_rto: Option<bool>,
}

/// Cold per-subflow counters, split out of [`SubflowSender`] so the
/// cache lines the per-ACK path touches stay free of write-rarely stats.
#[derive(Debug, Default, Clone, Copy)]
pub(crate) struct SenderCounters {
    /// Count of retransmissions performed.
    pub retransmits: u64,
    /// Count of RTO events.
    pub timeouts: u64,
    /// Count of fast-recovery episodes.
    pub fast_recoveries: u64,
}

/// Sender-side state of one TCP subflow (SACK scoreboard variant).
///
/// Field order is deliberate (`repr(C)` keeps the compiler from
/// rearranging it): the scalars every ACK reads and writes — window,
/// sequence edges, RTT estimator — sit first, packed into the leading
/// cache line; the scoreboard and send metadata follow; rarely-touched
/// counters and static parameters trail at the end.
#[derive(Debug)]
#[repr(C)]
pub(crate) struct SubflowSender<SB: Scoreboard = DefaultScoreboard> {
    // --- hot: read/written on every ACK ---
    /// Congestion window, packets (fractional growth accumulates).
    pub cwnd: f64,
    /// Slow-start threshold, packets.
    pub ssthresh: f64,
    /// Next new sequence number to send.
    pub next_seq: u64,
    /// Oldest unacknowledged sequence number.
    pub una: u64,
    /// Smoothed RTT (seconds), if any sample has been taken.
    pub srtt: Option<f64>,
    /// RTT variance (seconds).
    pub rttvar: f64,
    /// Current RTO (seconds), including backoff.
    pub rto: f64,
    /// Monotone count of sequences ever newly SACKed.
    sack_events: u64,
    /// In loss recovery (one window decrease per recovery episode).
    pub in_recovery: bool,
    /// The current recovery was triggered by an RTO: the window collapsed
    /// to the floor and must slow-start back while the holes are repaired
    /// (fast recovery, by contrast, holds the window at the post-decrease
    /// level until the recovery point is reached).
    pub rto_recovery: bool,
    /// Whether a timer is conceptually armed (the simulator tracks the
    /// actual deadline and uses lazy re-scheduling).
    pub rto_armed: bool,
    /// Consecutive RTO backoffs without progress.
    pub backoffs: u32,
    /// Recovery ends when `una` reaches this point.
    pub recovery_point: u64,
    /// Static estimate of the path's two-way propagation delay, used for
    /// the congestion-control RTT before any sample exists.
    pub rtt_hint: f64,
    /// Per-packet send metadata, indexed by `seq - meta_base`.
    meta: VecDeque<SentMeta>,
    meta_base: u64,
    /// SACK scoreboard: sacked / lost / retransmitted-out sets.
    board: SB,
    // --- cold: stats and configuration ---
    /// Growth events of `meta` (allocation accounting).
    meta_allocs: u64,
    /// Retransmit / timeout / recovery counters (stats reads only).
    pub stats: SenderCounters,
    params: TcpParams,
}

/// Floor applied to every slow-start threshold, in packets.
///
/// A ssthresh below one MSS is meaningless — `cwnd < ssthresh` could then
/// never hold, permanently disabling slow start — and RFC 5681 §3.1 floors
/// the post-loss threshold at 2 segments. [`SubflowSender::set_ssthresh`]
/// has always clamped here; the *initial* threshold historically did not,
/// so a user-supplied sub-MSS [`TcpParams::initial_ssthresh`] survived
/// verbatim until the first loss.
pub const MIN_SSTHRESH_PKTS: f64 = 2.0;

impl<SB: Scoreboard> SubflowSender<SB> {
    pub fn new(params: TcpParams, rtt_hint: f64) -> Self {
        Self {
            cwnd: params.initial_cwnd,
            // NaN-safe: `f64::max` propagates the floor, not the NaN.
            ssthresh: params.initial_ssthresh.max(MIN_SSTHRESH_PKTS),
            next_seq: 0,
            una: 0,
            srtt: None,
            rttvar: 0.0,
            rto: params.initial_rto.as_secs_f64(),
            sack_events: 0,
            in_recovery: false,
            rto_recovery: false,
            rto_armed: false,
            backoffs: 0,
            recovery_point: 0,
            rtt_hint,
            meta: VecDeque::new(),
            meta_base: 0,
            board: SB::with_window_hint(params.max_cwnd),
            meta_allocs: 0,
            stats: SenderCounters::default(),
            params,
        }
    }

    /// Like [`SubflowSender::new`], drawing scoreboard storage from `pool`.
    pub fn new_pooled(params: TcpParams, rtt_hint: f64, pool: &mut RingPool) -> Self {
        let mut tx = Self::new(params, rtt_hint);
        tx.board = SB::with_window_hint_pooled(params.max_cwnd, pool);
        tx
    }

    /// Reset this sender to the state [`SubflowSender::new`] would produce
    /// for `(params, rtt_hint)` — in place. Send metadata keeps its ring
    /// capacity and the scoreboard keeps its bitmap storage, so starting a
    /// new flow in a recycled arena slot is allocation-free; the monotone
    /// allocation counters (`meta_allocs`, scoreboard growth) keep
    /// counting across flows. Per-flow stats reset to zero.
    pub fn reset_for_reuse(&mut self, params: TcpParams, rtt_hint: f64) {
        self.cwnd = params.initial_cwnd;
        self.ssthresh = params.initial_ssthresh.max(MIN_SSTHRESH_PKTS);
        self.next_seq = 0;
        self.una = 0;
        self.srtt = None;
        self.rttvar = 0.0;
        self.rto = params.initial_rto.as_secs_f64();
        self.sack_events = 0;
        self.in_recovery = false;
        self.rto_recovery = false;
        self.rto_armed = false;
        self.backoffs = 0;
        self.recovery_point = 0;
        self.rtt_hint = rtt_hint;
        self.meta.clear();
        self.meta_base = 0;
        self.board.reset_for_reuse();
        self.stats = SenderCounters::default();
        self.params = params;
    }

    /// Surrender scoreboard storage into `pool`; the husk must not send
    /// again (the containing arena slot is being tombstoned).
    pub fn gut_into(&mut self, pool: &mut RingPool) {
        self.meta = VecDeque::new();
        self.meta_base = 0;
        self.next_seq = 0;
        self.una = 0;
        self.board.gut_into(pool);
    }

    /// The RTT the congestion controller should see: the smoothed estimate,
    /// or the propagation-delay hint before the first sample.
    pub fn cc_rtt(&self) -> f64 {
        self.srtt.unwrap_or(self.rtt_hint)
    }

    /// RFC 6675-style pipe: packets believed to be in the network.
    /// Everything sent and unacked, minus what the receiver holds (sacked)
    /// and what the scoreboard wrote off as lost; retransmissions put their
    /// sequence back in the pipe by moving it out of `lost`.
    pub fn pipe(&self) -> f64 {
        let outstanding = self.next_seq - self.una;
        (outstanding - self.board.sacked_len() - self.board.lost_len()) as f64
    }

    /// Whether the window permits sending one more new packet (holes are
    /// always retransmitted first; see [`SubflowSender::next_retransmit`]).
    pub fn can_send_new(&self) -> bool {
        self.board.lost_is_empty()
            && self.pipe() + 1.0 <= self.cwnd.min(self.params.max_cwnd) + 1e-9
    }

    /// The next lost sequence to retransmit, if the window allows it.
    /// Moves the sequence into the retransmitted set.
    pub fn next_retransmit(&mut self) -> Option<u64> {
        if self.pipe() + 1.0 > self.cwnd.min(self.params.max_cwnd) + 1e-9 {
            return None;
        }
        self.board.pop_lost_for_retx(self.sack_events)
    }

    /// Record that a *new* packet with the next sequence number, carrying
    /// connection-level data sequence `dsn`, was sent at `now`; returns
    /// the sequence number used and whether this send armed the
    /// retransmission timer (so the caller can schedule the event).
    pub fn on_send_new(&mut self, now: SimTime, dsn: u64) -> (u64, bool) {
        let seq = self.next_seq;
        self.next_seq += 1;
        debug_assert_eq!(self.meta_base + self.meta.len() as u64, seq);
        if self.meta.len() == self.meta.capacity() {
            self.meta_allocs += 1;
        }
        self.meta.push_back(SentMeta { sent_at: now, retransmitted: false, dsn, data_acked: false });
        let newly_armed = !self.rto_armed;
        if newly_armed {
            self.arm_rto();
        }
        (seq, newly_armed)
    }

    /// The data sequence number carried by outstanding packet `seq`
    /// (`None` once the packet is cumulatively acknowledged or for
    /// never-sent sequences).
    pub fn dsn_of(&self, seq: u64) -> Option<u64> {
        let idx = seq.checked_sub(self.meta_base)?;
        self.meta.get(idx as usize).map(|m| m.dsn)
    }

    /// Whether this subflow counts as potentially failed: at least
    /// [`mptcp_cc::POTENTIALLY_FAILED_RTO_BACKOFFS`] consecutive RTO
    /// backoffs with no ACK progress. Derived state — the first ACK that
    /// shows progress resets `backoffs` and revives the subflow.
    pub fn potentially_failed(&self) -> bool {
        self.backoffs >= mptcp_cc::POTENTIALLY_FAILED_RTO_BACKOFFS
    }

    /// Collect into `out` the outstanding `(seq, dsn)` pairs whose data has
    /// not been reported received on this subflow — the candidates for
    /// reinjection when the subflow is declared potentially failed. Takes
    /// caller-owned scratch (cleared first) so the rare failure transition
    /// stays allocation-free once the scratch has warmed up.
    pub fn stranded(&self, out: &mut Vec<(u64, u64)>) {
        out.clear();
        for s in self.una..self.next_seq {
            if self.board.sacked_contains(s) {
                continue;
            }
            let Some(m) = self.meta.get((s - self.meta_base) as usize) else { continue };
            if !m.data_acked {
                out.push((s, m.dsn));
            }
        }
    }

    /// Record a retransmission of `seq` at `now` (Karn bookkeeping).
    pub fn on_retransmit(&mut self, seq: u64, now: SimTime) {
        self.stats.retransmits += 1;
        if seq >= self.meta_base {
            if let Some(m) = self.meta.get_mut((seq - self.meta_base) as usize) {
                m.sent_at = now;
                m.retransmitted = true;
            }
        }
    }

    fn arm_rto(&mut self) {
        self.rto_armed = true;
    }

    fn disarm_rto(&mut self) {
        self.rto_armed = false;
    }

    /// Current RTO as simulation time.
    pub fn rto_interval(&self) -> SimTime {
        SimTime::from_secs_f64(self.rto_secs())
    }

    /// The clamped RTO in seconds, without the `SimTime` round-trip —
    /// telemetry sampling reads this every probe tick.
    pub fn rto_secs(&self) -> f64 {
        self.rto.clamp(self.params.min_rto.as_secs_f64(), self.params.max_rto.as_secs_f64())
    }

    /// RFC 6298 estimator update with a fresh RTT sample (seconds).
    fn rtt_sample(&mut self, sample: f64) {
        let srtt = match self.srtt {
            None => {
                self.rttvar = sample / 2.0;
                sample
            }
            Some(prev) => {
                self.rttvar = 0.75 * self.rttvar + 0.25 * (prev - sample).abs();
                0.875 * prev + 0.125 * sample
            }
        };
        self.srtt = Some(srtt);
        // A valid sample recomputes the RTO from fresh srtt/rttvar,
        // discarding any backed-off value (RFC 6298 §5.7). It does NOT
        // touch `backoffs`: only forward ACK progress proves the path is
        // alive (a sample can only arrive on such an ACK, but keeping the
        // reset in one place makes the revive rule auditable).
        self.rto = srtt + (4.0 * self.rttvar).max(0.001);
    }

    /// Process an incoming ACK: cumulative point `cum` plus SACK ranges.
    ///
    /// Every data sequence number first reported received by this ACK
    /// (cumulatively or via SACK) is appended to `newly_acked_dsns`, so
    /// the connection layer can keep exactly-once data-level accounting
    /// across subflows and reinjections.
    pub fn on_ack(
        &mut self,
        cum: u64,
        sacks: &SackRanges,
        now: SimTime,
        newly_acked_dsns: &mut Vec<u64>,
    ) -> AckOutcome {
        let mut out = AckOutcome::default();
        let mut progressed = false;
        if cum > self.una {
            out.newly_acked = cum - self.una;
            progressed = true;
            // RTT sample from the newest packet this ACK covers, if clean.
            if cum > self.meta_base {
                let idx = (cum - 1 - self.meta_base) as usize;
                if let Some(m) = self.meta.get(idx) {
                    if !m.retransmitted {
                        let sample = (now.saturating_sub(m.sent_at)).as_secs_f64();
                        if sample > 0.0 {
                            self.rtt_sample(sample);
                        }
                    }
                }
            }
            while self.meta_base < cum {
                if let Some(m) = self.meta.pop_front() {
                    if !m.data_acked {
                        newly_acked_dsns.push(m.dsn);
                    }
                }
                self.meta_base += 1;
            }
            self.una = cum;
            // Drop scoreboard state below the new cumulative point.
            self.board.advance_to(cum);
            if self.in_recovery && self.una >= self.recovery_point {
                self.in_recovery = false;
                self.rto_recovery = false;
            }
        } else if cum < self.una {
            return out; // stale (reordered) ACK
        }
        // Fold in SACK information.
        for range in sacks.iter().flatten() {
            for seq in range.0.max(self.una)..range.1.min(self.next_seq) {
                if self.board.sack_one(seq) {
                    self.sack_events += 1;
                    progressed = true;
                    if let Some(m) = self.meta.get_mut((seq - self.meta_base) as usize) {
                        if !m.data_acked {
                            m.data_acked = true;
                            newly_acked_dsns.push(m.dsn);
                        }
                    }
                }
            }
        }
        // Any forward progress proves the path is alive again: clear the
        // RTO backoff run so a potentially-failed subflow revives on the
        // first ACK after an outage ends.
        if progressed {
            self.backoffs = 0;
        }
        // Loss detection (IsLost): a hole is lost once DupThresh packets
        // above it have been SACKed.
        let newly_lost = self.detect_losses();
        if newly_lost && !self.in_recovery {
            self.in_recovery = true;
            self.rto_recovery = false;
            self.stats.fast_recoveries += 1;
            self.recovery_point = self.next_seq;
            out.entered_recovery = true;
        }
        if self.una < self.next_seq {
            self.arm_rto();
            out.rearm_rto = Some(true);
        } else {
            self.disarm_rto();
            out.rearm_rto = Some(false);
        }
        out
    }

    /// Mark holes with ≥ DupThresh SACKed packets above them as lost.
    /// Returns whether any sequence was newly marked.
    fn detect_losses(&mut self) -> bool {
        let thresh = self.params.dupack_threshold as u64;
        if self.board.sacked_len() < thresh {
            return false;
        }
        // The DupThresh-th highest SACKed sequence: every unsacked packet
        // below it has at least DupThresh SACKed packets above. The length
        // guard just above guarantees it exists; if the scoreboard ever
        // disagrees, bail conservatively (mark nothing lost this round).
        let Some(cutoff) = self.board.nth_highest_sacked(thresh as usize - 1) else {
            debug_assert!(false, "sacked_len() >= thresh guarantees a DupThresh-th highest");
            return false;
        };
        let mut any = self.board.mark_holes_lost(self.una, cutoff);
        // RACK-style: a retransmission with ≥ DupThresh *new* SACKs since
        // it went out was lost again.
        if self.board.remark_lost_retx(cutoff, self.sack_events, thresh) {
            any = true;
        }
        any
    }

    /// Handle an RTO firing (the caller verified generation freshness).
    /// Returns whether anything was outstanding (i.e. the timeout is real);
    /// the caller then applies the decrease and pumps retransmissions.
    pub fn on_rto(&mut self, floor: f64) -> bool {
        if self.una >= self.next_seq {
            self.disarm_rto();
            return false;
        }
        self.stats.timeouts += 1;
        self.backoffs += 1;
        // Exponential backoff doubles the *effective* (min_rto-clamped)
        // timeout, per RFC 6298 §5.5. Doubling the raw value lets a small
        // sampled rto (e.g. 60 ms on a LAN) sit below min_rto for several
        // backoffs, so consecutive timeouts all fire at min_rto with no
        // backoff at all.
        self.rto = (self.rto.max(self.params.min_rto.as_secs_f64()) * 2.0)
            .min(self.params.max_rto.as_secs_f64());
        // Everything unsacked is presumed lost; the network is drained.
        self.board.rto_collapse(self.una, self.next_seq);
        self.in_recovery = true;
        self.rto_recovery = true;
        self.recovery_point = self.next_seq;
        self.cwnd = floor.max(1.0);
        // Karn: every outstanding packet's RTT sample is now unreliable.
        for m in &mut self.meta {
            m.retransmitted = true;
        }
        self.arm_rto();
        true
    }

    /// Set the slow-start threshold after a loss event (the congestion
    /// controller decides the level; the subflow just records it).
    pub fn set_ssthresh(&mut self, ssthresh: f64) {
        // NaN-safe: `f64::max` propagates the floor, not the NaN.
        self.ssthresh = ssthresh.max(MIN_SSTHRESH_PKTS);
    }

    /// Whether congestion-window growth applies right now: always outside
    /// recovery, and during RTO recovery (which slow-starts back); frozen
    /// during fast recovery.
    pub fn growth_allowed(&self) -> bool {
        !self.in_recovery || self.rto_recovery
    }

    /// True while in slow start.
    pub fn in_slow_start(&self) -> bool {
        self.cwnd < self.ssthresh
    }

    /// Grow the window by `amount` packets (already computed by the caller
    /// from the slow-start rule or the coupled algorithm), honoring the cap.
    pub fn grow(&mut self, amount: f64) {
        self.cwnd = (self.cwnd + amount).min(self.params.max_cwnd);
    }

    /// Shrink the window to `level` (a loss decrease), honoring `floor`.
    pub fn shrink_to(&mut self, level: f64, floor: f64) {
        self.cwnd = level.max(floor);
        self.set_ssthresh(self.cwnd);
    }

    /// Allocation events since creation: send-metadata growth plus
    /// scoreboard growth/spills. Feeds [`crate::SimPerf::hot_allocs`].
    pub fn alloc_events(&self) -> u64 {
        self.meta_allocs + self.board.alloc_events()
    }

    /// Warmed capacity of the send-metadata ring, in packets. The arena
    /// classes released windows by this envelope so a recycled window is
    /// handed to a flow whose storage is already sized for it.
    pub(crate) fn meta_capacity(&self) -> u64 {
        self.meta.capacity() as u64
    }

    /// All data handed to this subflow has been acknowledged.
    #[cfg(test)]
    pub fn fully_acked(&self) -> bool {
        self.una == self.next_seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scoreboard::BitmapScoreboard;
    use crate::scoreboard_ref::BTreeScoreboard;

    const NO_SACKS: SackRanges = [None; MAX_SACK_RANGES];

    fn sender() -> SubflowSender {
        SubflowSender::new(TcpParams::default(), 0.1)
    }

    fn sacks(ranges: &[(u64, u64)]) -> SackRanges {
        let mut out = NO_SACKS;
        for (i, &r) in ranges.iter().take(MAX_SACK_RANGES).enumerate() {
            out[i] = Some(r);
        }
        out
    }

    /// Pre-fix failure: `SubflowSender::new` used to store
    /// `initial_ssthresh` verbatim, so a sub-MSS configured threshold
    /// survived until the first loss — with `cwnd < ssthresh` never true,
    /// slow start was permanently disabled for the subflow.
    #[test]
    fn initial_ssthresh_is_clamped_like_post_loss_ssthresh() {
        let params = TcpParams { initial_ssthresh: 0.5, ..TcpParams::default() };
        let tx: SubflowSender = SubflowSender::new(params, 0.1);
        assert!(
            tx.ssthresh >= MIN_SSTHRESH_PKTS,
            "initial ssthresh must honor the same floor as set_ssthresh, got {}",
            tx.ssthresh
        );
        let params = TcpParams { initial_ssthresh: f64::NAN, ..TcpParams::default() };
        let tx: SubflowSender = SubflowSender::new(params, 0.1);
        assert_eq!(tx.ssthresh.to_bits(), MIN_SSTHRESH_PKTS.to_bits());
    }

    /// The floor is an invariant, not a one-shot: no sequence of decreases
    /// (shrink_to with degenerate levels, RTO plus controller-set
    /// thresholds) may drive ssthresh below one MSS.
    #[test]
    fn ssthresh_floor_survives_repeated_decreases() {
        let mut tx = sender();
        for level in [1.0, 0.25, 0.0, -3.0, f64::NAN, 1e-9] {
            tx.shrink_to(level, 1.0);
            assert!(
                tx.ssthresh >= MIN_SSTHRESH_PKTS,
                "shrink_to({level}) left ssthresh at {}",
                tx.ssthresh
            );
            tx.set_ssthresh(level);
            assert!(
                tx.ssthresh >= MIN_SSTHRESH_PKTS,
                "set_ssthresh({level}) left ssthresh at {}",
                tx.ssthresh
            );
        }
        // The RTO path: the caller applies the controller's level afterwards.
        tx.on_send_new(SimTime::ZERO, 0);
        assert!(tx.on_rto(0.0));
        tx.set_ssthresh(0.1);
        assert!(tx.ssthresh >= MIN_SSTHRESH_PKTS);
    }

    #[test]
    fn receiver_in_order_delivery() {
        let mut rx: SubflowReceiver = SubflowReceiver::default();
        assert_eq!(rx.on_data(0).0, 1);
        assert_eq!(rx.on_data(1).0, 2);
        assert_eq!(rx.delivered(), 2);
    }

    #[test]
    fn receiver_out_of_order_reports_sack_ranges() {
        let mut rx: SubflowReceiver = SubflowReceiver::default();
        rx.on_data(0);
        // Packet 1 lost; 2, 3 and 5 arrive.
        let (cum, dup, s) = rx.on_data(2);
        assert_eq!((cum, dup), (1, true));
        assert_eq!(s[0], Some((2, 3)));
        let (_, _, s) = rx.on_data(3);
        assert_eq!(s[0], Some((2, 4)));
        let (_, _, s) = rx.on_data(5);
        assert_eq!(s[0], Some((2, 4)));
        assert_eq!(s[1], Some((5, 6)));
        // Retransmitted 1 fills the hole up to 4.
        let (cum, dup, s) = rx.on_data(1);
        assert_eq!((cum, dup), (4, false));
        assert_eq!(s[0], Some((5, 6)));
    }

    #[test]
    fn receiver_ignores_stale_duplicates() {
        let mut rx: SubflowReceiver = SubflowReceiver::default();
        rx.on_data(0);
        let (cum, dup, _) = rx.on_data(0);
        assert_eq!((cum, dup), (1, true));
    }

    #[test]
    fn sender_window_gates_new_packets() {
        let mut tx = sender();
        assert!(tx.can_send_new());
        tx.on_send_new(SimTime::ZERO, 0);
        assert!(tx.can_send_new());
        tx.on_send_new(SimTime::ZERO, 0);
        // initial_cwnd = 2: third packet must wait.
        assert!(!tx.can_send_new());
    }

    #[test]
    fn cumulative_ack_advances_and_samples_rtt() {
        let mut tx = sender();
        tx.on_send_new(SimTime::ZERO, 0);
        tx.on_send_new(SimTime::ZERO, 0);
        let out = tx.on_ack(2, &NO_SACKS, SimTime::from_millis(50), &mut Vec::new());
        assert_eq!(out.newly_acked, 2);
        assert_eq!(tx.una, 2);
        let srtt = tx.srtt.expect("sample taken");
        assert!((srtt - 0.050).abs() < 1e-9);
        assert!(tx.fully_acked());
        assert_eq!(out.rearm_rto, Some(false));
    }

    #[test]
    fn three_sacked_packets_mark_the_hole_lost_once() {
        let mut tx = sender();
        tx.cwnd = 10.0;
        for _ in 0..6 {
            tx.on_send_new(SimTime::ZERO, 0);
        }
        // Packet 0 lost; 1..4 SACKed one at a time.
        let out = tx.on_ack(0, &sacks(&[(1, 2)]), SimTime::from_millis(10), &mut Vec::new());
        assert!(!out.entered_recovery);
        let out = tx.on_ack(0, &sacks(&[(1, 3)]), SimTime::from_millis(11), &mut Vec::new());
        assert!(!out.entered_recovery);
        let out = tx.on_ack(0, &sacks(&[(1, 4)]), SimTime::from_millis(12), &mut Vec::new());
        assert!(out.entered_recovery, "DupThresh SACKed above the hole");
        assert!(tx.in_recovery);
        // The hole is queued for retransmission exactly once.
        assert_eq!(tx.next_retransmit(), Some(0));
        assert_eq!(tx.next_retransmit(), None);
        let out = tx.on_ack(0, &sacks(&[(1, 5)]), SimTime::from_millis(13), &mut Vec::new());
        assert!(!out.entered_recovery, "one decrease per episode");
    }

    #[test]
    fn pipe_excludes_sacked_and_lost() {
        let mut tx = sender();
        tx.cwnd = 20.0;
        for _ in 0..10 {
            tx.on_send_new(SimTime::ZERO, 0);
        }
        assert_eq!(tx.pipe(), 10.0);
        tx.on_ack(0, &sacks(&[(1, 5)]), SimTime::from_millis(10), &mut Vec::new());
        // 4 sacked, packet 0 lost (3+ above), 9 - 4 - 1 ... total out 10.
        assert_eq!(tx.pipe(), 10.0 - 4.0 - 1.0);
        // Retransmitting the hole puts it back in the pipe.
        assert_eq!(tx.next_retransmit(), Some(0));
        assert_eq!(tx.pipe(), 6.0);
    }

    #[test]
    fn burst_loss_is_retransmitted_within_window_not_one_per_rtt() {
        let mut tx = sender();
        tx.cwnd = 40.0;
        for _ in 0..40 {
            tx.on_send_new(SimTime::ZERO, 0);
        }
        // Packets 0..20 lost, 20..40 received.
        tx.on_ack(0, &sacks(&[(20, 40)]), SimTime::from_millis(10), &mut Vec::new());
        assert!(tx.in_recovery);
        let mut retx = Vec::new();
        while let Some(seq) = tx.next_retransmit() {
            retx.push(seq);
        }
        // Pipe was 40-20(sacked)-20(lost)=0, so the whole burst fits the
        // window immediately.
        assert_eq!(retx.len(), 20, "all holes retransmitted at once");
        assert_eq!(retx[0], 0);
        assert_eq!(retx[19], 19);
    }

    #[test]
    fn recovery_exits_at_recovery_point() {
        let mut tx = sender();
        tx.cwnd = 10.0;
        for _ in 0..8 {
            tx.on_send_new(SimTime::ZERO, 0);
        }
        tx.on_ack(0, &sacks(&[(1, 5)]), SimTime::from_millis(10), &mut Vec::new());
        assert!(tx.in_recovery);
        assert_eq!(tx.recovery_point, 8);
        tx.on_ack(5, &NO_SACKS, SimTime::from_millis(20), &mut Vec::new());
        assert!(tx.in_recovery, "partial ACK keeps recovery");
        tx.on_ack(8, &NO_SACKS, SimTime::from_millis(30), &mut Vec::new());
        assert!(!tx.in_recovery);
    }

    #[test]
    fn rto_marks_everything_lost_and_backs_off() {
        let mut tx = sender();
        tx.cwnd = 16.0;
        for _ in 0..10 {
            tx.on_send_new(SimTime::ZERO, 0);
        }
        let before_rto = tx.rto;
        assert!(tx.on_rto(1.0));
        assert!((tx.cwnd - 1.0).abs() < 1e-12);
        assert!(tx.rto > before_rto, "exponential backoff");
        assert_eq!(tx.stats.timeouts, 1);
        // Window 1: exactly one retransmission allowed now.
        assert_eq!(tx.next_retransmit(), Some(0));
        assert_eq!(tx.next_retransmit(), None, "window of 1 is full");
    }

    #[test]
    fn rto_with_nothing_outstanding_is_spurious() {
        let mut tx = sender();
        assert!(!tx.on_rto(1.0));
        assert_eq!(tx.stats.timeouts, 0);
    }

    #[test]
    fn karns_rule_skips_retransmitted_samples() {
        let mut tx = sender();
        tx.on_send_new(SimTime::ZERO, 0);
        tx.on_retransmit(0, SimTime::from_millis(10));
        tx.on_ack(1, &NO_SACKS, SimTime::from_millis(15), &mut Vec::new());
        assert!(tx.srtt.is_none(), "no sample from a retransmitted packet");
    }

    #[test]
    fn stale_reordered_ack_is_ignored() {
        let mut tx = sender();
        tx.cwnd = 10.0;
        for _ in 0..5 {
            tx.on_send_new(SimTime::ZERO, 0);
        }
        tx.on_ack(4, &NO_SACKS, SimTime::from_millis(10), &mut Vec::new());
        let out = tx.on_ack(2, &NO_SACKS, SimTime::from_millis(11), &mut Vec::new());
        assert_eq!(out.newly_acked, 0);
        assert_eq!(tx.una, 4);
    }

    #[test]
    fn slow_start_flag_follows_ssthresh() {
        let mut tx = sender();
        assert!(tx.in_slow_start());
        tx.ssthresh = 8.0;
        tx.cwnd = 10.0;
        assert!(!tx.in_slow_start());
    }

    #[test]
    fn shrink_respects_floor() {
        let mut tx = sender();
        tx.cwnd = 12.0;
        tx.shrink_to(-5.0, 1.0); // COUPLED's decrease can go negative
        assert!((tx.cwnd - 1.0).abs() < 1e-12);
        assert!(tx.ssthresh >= 2.0);
    }

    #[test]
    fn cumulative_ack_clears_scoreboard_below_it() {
        let mut tx = sender();
        tx.cwnd = 20.0;
        for _ in 0..10 {
            tx.on_send_new(SimTime::ZERO, 0);
        }
        tx.on_ack(0, &sacks(&[(2, 8)]), SimTime::from_millis(10), &mut Vec::new());
        assert!(tx.in_recovery);
        assert_eq!(tx.next_retransmit(), Some(0));
        assert_eq!(tx.next_retransmit(), Some(1));
        tx.on_ack(10, &NO_SACKS, SimTime::from_millis(20), &mut Vec::new());
        assert_eq!(tx.pipe(), 0.0);
        assert!(tx.fully_acked());
        assert!(!tx.in_recovery);
    }

    #[test]
    fn each_dsn_is_reported_acked_exactly_once() {
        let mut tx = sender();
        tx.cwnd = 10.0;
        for dsn in [100, 101, 102, 103] {
            tx.on_send_new(SimTime::ZERO, dsn);
        }
        // SACK packet 2 (dsn 102) first, then cum-ack everything: dsn 102
        // must not be reported twice.
        let mut acked = Vec::new();
        tx.on_ack(0, &sacks(&[(2, 3)]), SimTime::from_millis(5), &mut acked);
        assert_eq!(acked, vec![102]);
        acked.clear();
        tx.on_ack(4, &NO_SACKS, SimTime::from_millis(10), &mut acked);
        assert_eq!(acked, vec![100, 101, 103]);
    }

    #[test]
    fn stranded_excludes_sacked_and_acked_data() {
        let mut tx = sender();
        tx.cwnd = 10.0;
        for dsn in [7, 8, 9, 10] {
            tx.on_send_new(SimTime::ZERO, dsn);
        }
        tx.on_ack(1, &sacks(&[(2, 3)]), SimTime::from_millis(5), &mut Vec::new());
        // seq 0 (dsn 7) cum-acked, seq 2 (dsn 9) sacked → stranded: 1, 3.
        let mut stranded = vec![(99, 99)]; // stale content must be cleared
        tx.stranded(&mut stranded);
        assert_eq!(stranded, vec![(1, 8), (3, 10)]);
        assert_eq!(tx.dsn_of(1), Some(8));
        assert_eq!(tx.dsn_of(0), None, "cum-acked metadata is gone");
    }

    #[test]
    fn backoff_doubles_the_effective_min_clamped_rto() {
        // A LAN-grade RTT sample leaves the raw rto (srtt + 4·rttvar) well
        // below min_rto. The first backoff must still double the *effective*
        // timeout: doubling only the raw value keeps rto_interval() pinned
        // at min_rto for several consecutive timeouts — no backoff at all.
        let mut tx = sender();
        tx.cwnd = 4.0;
        for dsn in 0..4 {
            tx.on_send_new(SimTime::ZERO, dsn);
        }
        tx.on_ack(1, &NO_SACKS, SimTime::from_millis(20), &mut Vec::new());
        let min_rto = tx.params.min_rto;
        assert_eq!(tx.rto_interval(), min_rto, "sampled rto clamps up to min_rto");
        assert!(tx.on_rto(1.0));
        assert!(
            tx.rto_interval().as_secs_f64() >= 2.0 * min_rto.as_secs_f64(),
            "one backoff must at least double the effective timeout: {:?}",
            tx.rto_interval()
        );
        assert!(tx.on_rto(1.0));
        assert!(
            tx.rto_interval().as_secs_f64() >= 4.0 * min_rto.as_secs_f64(),
            "second backoff doubles again"
        );
    }

    #[test]
    fn fresh_sample_after_backoff_recomputes_rto_from_estimator() {
        // RFC 6298 §5.7: once retransmission stops, the next valid sample
        // recomputes rto from srtt/rttvar — the backed-off value is not
        // inherited. Karn's rule means the sample must come from a packet
        // sent after the timeouts.
        let mut tx = sender();
        tx.cwnd = 4.0;
        for dsn in 0..4 {
            tx.on_send_new(SimTime::ZERO, dsn);
        }
        tx.on_ack(1, &NO_SACKS, SimTime::from_millis(20), &mut Vec::new());
        assert!(tx.on_rto(1.0));
        assert!(tx.on_rto(1.0));
        let backed_off = tx.rto_interval();
        assert!(backed_off.as_secs_f64() >= 4.0 * tx.params.min_rto.as_secs_f64());
        // The outage ends: everything outstanding is acked (no sample —
        // all retransmitted under Karn), then a fresh round trip completes.
        tx.on_ack(4, &NO_SACKS, SimTime::from_secs(2), &mut Vec::new());
        assert_eq!(tx.backoffs, 0, "forward progress clears the backoff run");
        tx.on_send_new(SimTime::from_secs(3), 4);
        tx.on_ack(5, &NO_SACKS, SimTime::from_secs(3) + SimTime::from_millis(30), &mut Vec::new());
        assert_eq!(
            tx.rto_interval(),
            tx.params.min_rto,
            "post-recovery rto returns to the sampled (min_rto-clamped) range"
        );
    }

    #[test]
    fn ack_progress_revives_a_potentially_failed_subflow() {
        let mut tx = sender();
        tx.cwnd = 4.0;
        for dsn in 0..4 {
            tx.on_send_new(SimTime::ZERO, dsn);
        }
        assert!(tx.on_rto(1.0));
        assert!(tx.on_rto(1.0));
        assert!(tx.potentially_failed(), "two consecutive backoffs");
        // SACK-only progress also revives (the path demonstrably works).
        tx.on_ack(0, &sacks(&[(1, 2)]), SimTime::from_millis(10), &mut Vec::new());
        assert!(!tx.potentially_failed(), "first ACK after restore revives");
    }

    #[test]
    fn retransmission_lost_again_is_remarked_without_reneging() {
        // A retransmitted hole that is itself lost must be re-marked once
        // DupThresh *new* SACK events accumulate — and re-marking must not
        // renege already-SACKed sequences back into the pipe.
        let mut tx = sender();
        tx.cwnd = 20.0;
        for _ in 0..12 {
            tx.on_send_new(SimTime::ZERO, 0);
        }
        // Hole at 0, SACKs 1..4 mark it lost; retransmit it.
        tx.on_ack(0, &sacks(&[(1, 4)]), SimTime::from_millis(10), &mut Vec::new());
        assert_eq!(tx.next_retransmit(), Some(0));
        tx.on_retransmit(0, SimTime::from_millis(11));
        let pipe_after_retx = tx.pipe();
        // Three more *new* SACKs (4..7): the retransmission is declared
        // lost again and queued once more.
        tx.on_ack(0, &sacks(&[(1, 7)]), SimTime::from_millis(12), &mut Vec::new());
        assert_eq!(tx.next_retransmit(), Some(0), "re-marked after 3 new SACKs");
        assert_eq!(tx.next_retransmit(), None, "exactly once");
        // No reneging: every SACKed sequence stays out of the pipe.
        assert!(tx.pipe() <= pipe_after_retx, "re-mark cannot grow the pipe");
        // Re-delivering identical SACK ranges changes nothing.
        let fp_before = tx.pipe();
        let ev_before = tx.sack_events;
        tx.on_ack(0, &sacks(&[(1, 7)]), SimTime::from_millis(13), &mut Vec::new());
        assert_eq!(tx.sack_events, ev_before, "duplicate SACKs are no-ops");
        assert_eq!(tx.pipe().to_bits(), fp_before.to_bits());
    }

    // ---- differential: bitmap scoreboard vs the B-tree reference ----

    /// Everything observable about a sender, bit-exact, for equivalence
    /// checks between scoreboard backends.
    #[derive(Debug, PartialEq, Eq)]
    struct Fingerprint {
        cwnd: u64,
        ssthresh: u64,
        una: u64,
        next_seq: u64,
        pipe: u64,
        rto: u64,
        srtt: Option<u64>,
        rttvar: u64,
        sack_events: u64,
        flags: (bool, bool, bool),
        recovery_point: u64,
        backoffs: u32,
        sacked_len: u64,
        lost_len: u64,
        retransmits: u64,
        timeouts: u64,
        stranded: Vec<(u64, u64)>,
    }

    fn fingerprint<SB: Scoreboard>(tx: &SubflowSender<SB>) -> Fingerprint {
        let mut stranded = Vec::new();
        tx.stranded(&mut stranded);
        Fingerprint {
            cwnd: tx.cwnd.to_bits(),
            ssthresh: tx.ssthresh.to_bits(),
            una: tx.una,
            next_seq: tx.next_seq,
            pipe: tx.pipe().to_bits(),
            rto: tx.rto.to_bits(),
            srtt: tx.srtt.map(f64::to_bits),
            rttvar: tx.rttvar.to_bits(),
            sack_events: tx.sack_events,
            flags: (tx.in_recovery, tx.rto_recovery, tx.rto_armed),
            recovery_point: tx.recovery_point,
            backoffs: tx.backoffs,
            sacked_len: tx.board.sacked_len(),
            lost_len: tx.board.lost_len(),
            retransmits: tx.stats.retransmits,
            timeouts: tx.stats.timeouts,
            stranded,
        }
    }

    /// Interpret a byte script as a send/ack/sack/rto/retransmit sequence,
    /// driving both senders in lock-step and asserting bit-identical
    /// outcomes after every step.
    fn run_differential(script: &[(u8, u8, u8, u8)], params: TcpParams) {
        let mut a: SubflowSender<BitmapScoreboard> = SubflowSender::new(params, 0.05);
        let mut b: SubflowSender<BTreeScoreboard> = SubflowSender::new(params, 0.05);
        let mut now = SimTime::ZERO;
        let mut dsn = 0u64;
        for (step, &(op, x, y, z)) in script.iter().enumerate() {
            now = now + SimTime::from_micros(500 + x as u64 * 97);
            match op % 4 {
                0 => {
                    // Send up to x%8+1 new packets, window permitting.
                    for _ in 0..(x % 8 + 1) {
                        if !a.can_send_new() {
                            assert!(!b.can_send_new(), "step {step}: window gate differs");
                            break;
                        }
                        assert!(b.can_send_new(), "step {step}: window gate differs");
                        let ra = a.on_send_new(now, dsn);
                        let rb = b.on_send_new(now, dsn);
                        assert_eq!(ra, rb, "step {step}: on_send_new");
                        dsn += 1;
                    }
                }
                1 => {
                    // ACK: cum somewhere in [una, next_seq], plus up to two
                    // SACK ranges placed relative to cum.
                    let outstanding = a.next_seq - a.una;
                    let cum = a.una + (x as u64 % (outstanding + 1));
                    let s1 = cum + 1 + (y as u64 % 16);
                    let e1 = s1 + 1 + (z as u64 % 8);
                    let s2 = e1 + 1 + (z as u64 % 4);
                    let e2 = s2 + 1 + (y as u64 % 4);
                    let ranges = if y % 3 == 0 {
                        sacks(&[])
                    } else if y % 3 == 1 {
                        sacks(&[(s1, e1)])
                    } else {
                        sacks(&[(s1, e1), (s2, e2)])
                    };
                    let mut dsns_a = Vec::new();
                    let mut dsns_b = Vec::new();
                    let oa = a.on_ack(cum, &ranges, now, &mut dsns_a);
                    let ob = b.on_ack(cum, &ranges, now, &mut dsns_b);
                    assert_eq!(
                        (oa.newly_acked, oa.entered_recovery, oa.rearm_rto),
                        (ob.newly_acked, ob.entered_recovery, ob.rearm_rto),
                        "step {step}: AckOutcome"
                    );
                    assert_eq!(dsns_a, dsns_b, "step {step}: newly-acked dsns");
                }
                2 => {
                    assert_eq!(a.on_rto(1.0), b.on_rto(1.0), "step {step}: on_rto");
                }
                _ => {
                    // Drain the retransmission queue in lock-step.
                    loop {
                        let ra = a.next_retransmit();
                        let rb = b.next_retransmit();
                        assert_eq!(ra, rb, "step {step}: next_retransmit");
                        match ra {
                            Some(seq) => {
                                a.on_retransmit(seq, now);
                                b.on_retransmit(seq, now);
                            }
                            None => break,
                        }
                    }
                }
            }
            assert_eq!(fingerprint(&a), fingerprint(&b), "step {step}: state diverged");
        }
    }

    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn scoreboards_are_bit_identical_under_random_traffic(
            script in prop::collection::vec(
                (0u8..=255, 0u8..=255, 0u8..=255, 0u8..=255), 1..200),
        ) {
            run_differential(&script, TcpParams::default());
        }

        #[test]
        fn scoreboards_agree_with_a_tiny_ring_forced_to_wrap_and_grow(
            script in prop::collection::vec(
                (0u8..=255, 0u8..=255, 0u8..=255, 0u8..=255), 1..200),
        ) {
            // max_cwnd 8 → ring capacity 64 bits (the floor): long scripts
            // wrap the ring many times and SACK offsets above the window
            // force growth, exercising re-placement against the reference.
            let params = TcpParams { max_cwnd: 8.0, ..TcpParams::default() };
            run_differential(&script, params);
        }

        #[test]
        fn receivers_are_bit_identical_under_reordered_arrivals(
            seqs in prop::collection::vec(0u64..64, 1..300),
        ) {
            let mut a: SubflowReceiver<crate::scoreboard::BitmapOoo> =
                SubflowReceiver::default();
            let mut b: SubflowReceiver<crate::scoreboard_ref::BTreeOoo> =
                SubflowReceiver::default();
            for &seq in &seqs {
                assert_eq!(a.on_data(seq), b.on_data(seq));
                assert_eq!(a.delivered(), b.delivered());
                for probe in 0..64 {
                    assert_eq!(a.contains(probe), b.contains(probe), "seq {probe}");
                }
            }
        }
    }

    /// Drive a sender through a script, then reset it for reuse and replay
    /// a second script on it alongside a genuinely fresh sender: every
    /// observable bit must match — slot recycling may not leak any state
    /// from the previous flow.
    fn assert_reuse_equals_fresh(first: &[(u8, u8, u8, u8)], second: &[(u8, u8, u8, u8)]) {
        let params = TcpParams::default();
        let mut reused: SubflowSender<BitmapScoreboard> = SubflowSender::new(params, 0.05);
        let mut now = SimTime::ZERO;
        let mut dsn = 0u64;
        for &(op, x, _, _) in first {
            now = now + SimTime::from_micros(700);
            match op % 3 {
                0 => {
                    for _ in 0..(x % 8 + 1) {
                        if !reused.can_send_new() {
                            break;
                        }
                        reused.on_send_new(now, dsn);
                        dsn += 1;
                    }
                }
                1 => {
                    let cum = reused.una + (x as u64 % (reused.next_seq - reused.una + 1));
                    let r = sacks(&[(cum + 1, cum + 3)]);
                    reused.on_ack(cum, &r, now, &mut Vec::new());
                }
                _ => {
                    reused.on_rto(1.0);
                    while let Some(seq) = reused.next_retransmit() {
                        reused.on_retransmit(seq, now);
                    }
                }
            }
        }
        reused.reset_for_reuse(params, 0.05);
        let mut fresh: SubflowSender<BitmapScoreboard> = SubflowSender::new(params, 0.05);
        let mut now = SimTime::ZERO;
        let mut dsn = 0u64;
        for (step, &(op, x, y, z)) in second.iter().enumerate() {
            now = now + SimTime::from_micros(500 + x as u64 * 97);
            match op % 4 {
                0 => {
                    for _ in 0..(x % 8 + 1) {
                        assert_eq!(reused.can_send_new(), fresh.can_send_new(), "step {step}");
                        if !fresh.can_send_new() {
                            break;
                        }
                        assert_eq!(
                            reused.on_send_new(now, dsn),
                            fresh.on_send_new(now, dsn),
                            "step {step}"
                        );
                        dsn += 1;
                    }
                }
                1 => {
                    let outstanding = fresh.next_seq - fresh.una;
                    let cum = fresh.una + (x as u64 % (outstanding + 1));
                    let s1 = cum + 1 + (y as u64 % 16);
                    let ranges = sacks(&[(s1, s1 + 1 + z as u64 % 8)]);
                    let (mut da, mut db) = (Vec::new(), Vec::new());
                    reused.on_ack(cum, &ranges, now, &mut da);
                    fresh.on_ack(cum, &ranges, now, &mut db);
                    assert_eq!(da, db, "step {step}: newly-acked dsns");
                }
                2 => {
                    assert_eq!(reused.on_rto(1.0), fresh.on_rto(1.0), "step {step}");
                }
                _ => loop {
                    let (ra, rb) = (reused.next_retransmit(), fresh.next_retransmit());
                    assert_eq!(ra, rb, "step {step}");
                    let Some(seq) = ra else { break };
                    reused.on_retransmit(seq, now);
                    fresh.on_retransmit(seq, now);
                },
            }
            assert_eq!(
                fingerprint(&reused),
                fingerprint(&fresh),
                "step {step}: recycled slot leaked state"
            );
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn a_reset_sender_is_bit_identical_to_a_fresh_one(
            first in prop::collection::vec(
                (0u8..=255, 0u8..=255, 0u8..=255, 0u8..=255), 1..80),
            second in prop::collection::vec(
                (0u8..=255, 0u8..=255, 0u8..=255, 0u8..=255), 1..120),
        ) {
            assert_reuse_equals_fresh(&first, &second);
        }
    }

    #[test]
    fn receiver_reset_forgets_prior_flow_completely() {
        let mut rx: SubflowReceiver = SubflowReceiver::default();
        rx.on_data(0);
        rx.on_data(5);
        rx.on_data(9);
        rx.reset_for_reuse();
        assert_eq!(rx.delivered(), 0);
        assert!(!rx.contains(5) && !rx.contains(9));
        let (cum, dup, s) = rx.on_data(0);
        assert_eq!((cum, dup), (1, false));
        assert_eq!(s[0], None);
    }

    #[test]
    fn scoreboard_survives_many_ring_wraps_at_max_window() {
        // Deterministic long-run: a window pinned at the cap (ring capacity
        // 256 bits) driven far past the ring size, with a loss pattern in
        // every congestion epoch. The B-tree reference must agree bit-for-
        // bit the whole way, including across every ring-boundary crossing.
        let params = TcpParams { max_cwnd: 64.0, ..TcpParams::default() };
        let mut a: SubflowSender<BitmapScoreboard> = SubflowSender::new(params, 0.01);
        let mut b: SubflowSender<BTreeScoreboard> = SubflowSender::new(params, 0.01);
        a.cwnd = 64.0;
        b.cwnd = 64.0;
        let mut now = SimTime::ZERO;
        let mut warmed_allocs = 0;
        for epoch in 0u64..200 {
            if epoch == 20 {
                warmed_allocs = a.alloc_events();
            }
            now = now + SimTime::from_millis(10);
            // Fill the window.
            while a.can_send_new() {
                assert!(b.can_send_new());
                let dsn = a.next_seq;
                assert_eq!(a.on_send_new(now, dsn), b.on_send_new(now, dsn));
            }
            let una = a.una;
            let sent = a.next_seq;
            // Every 3rd epoch: drop the first two packets of the window,
            // SACK the rest, recover; otherwise ack everything.
            if epoch % 3 == 0 && sent - una > 4 {
                let r = sacks(&[(una + 2, sent)]);
                assert_eq!(
                    a.on_ack(una, &r, now, &mut Vec::new()).entered_recovery,
                    b.on_ack(una, &r, now, &mut Vec::new()).entered_recovery,
                );
                loop {
                    let (ra, rb) = (a.next_retransmit(), b.next_retransmit());
                    assert_eq!(ra, rb);
                    let Some(seq) = ra else { break };
                    a.on_retransmit(seq, now);
                    b.on_retransmit(seq, now);
                }
                now = now + SimTime::from_millis(10);
            }
            let da = a.on_ack(sent, &NO_SACKS, now, &mut Vec::new());
            let db = b.on_ack(sent, &NO_SACKS, now, &mut Vec::new());
            assert_eq!(da.newly_acked, db.newly_acked);
            assert_eq!(fingerprint(&a), fingerprint(&b), "epoch {epoch}");
        }
        assert!(a.next_seq > 8_000, "ran far past the 256-bit ring: {}", a.next_seq);
        assert_eq!(
            a.alloc_events(),
            warmed_allocs,
            "after warmup, wrapping the ring forever allocates nothing"
        );
    }

    #[test]
    fn steady_state_ack_path_stops_allocating() {
        // After the first few windows warm the metadata ring up, a loss-free
        // send/ack cycle must not allocate at all.
        let mut tx = sender();
        tx.cwnd = 32.0;
        let mut now = SimTime::ZERO;
        let mut scratch = Vec::with_capacity(64);
        for _ in 0..10 {
            now = now + SimTime::from_millis(1);
            while tx.can_send_new() {
                let dsn = tx.next_seq;
                tx.on_send_new(now, dsn);
            }
            scratch.clear();
            tx.on_ack(tx.next_seq, &NO_SACKS, now, &mut scratch);
        }
        let warmed = tx.alloc_events();
        for _ in 0..1000 {
            now = now + SimTime::from_millis(1);
            while tx.can_send_new() {
                let dsn = tx.next_seq;
                tx.on_send_new(now, dsn);
            }
            scratch.clear();
            tx.on_ack(tx.next_seq, &NO_SACKS, now, &mut scratch);
        }
        assert_eq!(tx.alloc_events(), warmed, "zero allocations in steady state");
    }
}
