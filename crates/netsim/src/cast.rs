//! Checked narrowing casts for the simulator's hot/shard state.
//!
//! The `cast-audit` lint (D9, DESIGN.md §3.2d) bans bare `as` casts to
//! narrower integer types and float-sourced `as`-to-integer casts in
//! `lint:hot-path`/`lint:shard-state` files: `as` truncates and saturates
//! silently, and a clipped sequence number or subflow id corrupts the
//! deterministic history without tripping anything. These helpers are the
//! sanctioned route: each one states its domain invariant, enforces it
//! under `debug_assert!`, and keeps the release-mode behavior explicit.
//!
//! The helpers live in one unmarked file on purpose — the invariant text
//! and the debug assertion sit next to the cast, so the marked call sites
//! stay clean without per-site allow annotations.

/// A slab/pool index (`ack_pool`, `subflows`, …) narrowed to the `u32`
/// stored in packet headers and ids.
///
/// Invariant: the simulator's pools are bounded far below `u32::MAX`
/// entries (a million-host run still keeps per-shard pools in the
/// thousands); debug builds assert it, release builds truncate like `as`.
#[inline]
pub(crate) fn slab_u32(n: usize) -> u32 {
    debug_assert!(u32::try_from(n).is_ok(), "slab index {n} exceeds u32");
    n as u32
}

/// An inline path length narrowed to the `u8` length field of
/// `LinkPath::Inline`.
///
/// Invariant: callers only take the inline arm when the hop count is at
/// most `INLINE_PATH` (currently 4), which fits `u8` with room to spare.
#[inline]
pub(crate) fn path_u8(n: usize) -> u8 {
    debug_assert!(u8::try_from(n).is_ok(), "inline path length {n} exceeds u8");
    n as u8
}

/// A warmed-capacity envelope (packets) collapsed to its power-of-two
/// class index — `⌈log2⌉`, so envelopes 9..=16 share class 4. The arena
/// keys its free window lists by this class so a recycled window is
/// matched to a flow its storage is already sized for.
///
/// Invariant: `⌈log2⌉` of a `u64` is at most 64, which fits `u8`.
#[inline]
pub(crate) fn env_class_u8(env: u64) -> u8 {
    let e = env.max(1);
    let c = if e.is_power_of_two() { e.ilog2() } else { e.ilog2() + 1 };
    debug_assert!(c <= 64);
    c as u8
}

/// A finite, non-negative `f64` quantity (window sizes, scaled budgets)
/// converted to `u64`.
///
/// Invariant: the source is finite and non-negative. Release builds keep
/// `as`-cast semantics — saturation at the ends, NaN to 0 — which is the
/// documented fallback if the invariant is ever violated in the field.
#[inline]
pub(crate) fn f64_to_u64(x: f64) -> u64 {
    debug_assert!(x.is_finite() && x >= 0.0, "f64→u64 cast of {x}");
    x as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_range_values_pass_through() {
        assert_eq!(slab_u32(0), 0);
        assert_eq!(slab_u32(70_000), 70_000);
        assert_eq!(path_u8(4), 4);
        assert_eq!(f64_to_u64(1024.9), 1024);
        assert_eq!(f64_to_u64(0.0), 0);
    }

    #[test]
    fn env_class_is_the_log2_ceiling() {
        assert_eq!(env_class_u8(0), 0, "zero clamps to class 0");
        assert_eq!(env_class_u8(1), 0);
        assert_eq!(env_class_u8(2), 1);
        assert_eq!(env_class_u8(9), 4);
        assert_eq!(env_class_u8(16), 4);
        assert_eq!(env_class_u8(17), 5);
        assert_eq!(env_class_u8(u64::MAX), 64);
    }

    #[test]
    #[should_panic(expected = "exceeds u8")]
    #[cfg(debug_assertions)]
    fn out_of_range_is_caught_in_debug_builds() {
        let _ = path_u8(300);
    }

    #[test]
    #[should_panic(expected = "f64→u64 cast")]
    #[cfg(debug_assertions)]
    fn non_finite_floats_are_caught_in_debug_builds() {
        let _ = f64_to_u64(f64::NAN);
    }
}
