//! Rotating bitmap scoreboards for the per-ACK hot path.
//!
//! The SACK scoreboard (`sacked` / `lost` / retransmitted-out) and the
//! receiver's out-of-order buffer are *windowed* sets: every member lies in
//! `[una, una + w)` for a window `w` bounded by the congestion-window cap,
//! and the window only ever slides forward. A `BTreeSet<u64>` pays an
//! allocation plus O(log w) pointer-chasing per operation for ordering
//! guarantees the access pattern never needs; a rotating bitmap indexed by
//! `seq & mask` gives O(1) insert/remove/contains with zero steady-state
//! allocations, and the ordered queries the scoreboard *does* make
//! (pop-lowest-lost, DupThresh-th-highest-sacked, first-k SACK runs) are
//! short masked word scans bounded by lo/hi hints.
//!
//! Pathological gaps — a sequence landing far above the ring capacity —
//! first grow the ring (doubling, up to [`MAX_CAP`] bits) and beyond that
//! spill into a sorted-interval fallback, so correctness never depends on
//! the sizing heuristic. Growth and spills are counted as allocation
//! events and surface in [`crate::SimPerf::hot_allocs`], which is how the
//! zero-alloc steady-state claim is asserted rather than assumed.
//!
//! The previous `BTreeSet`-based bookkeeping is preserved verbatim in
//! [`crate::scoreboard_ref`] behind the same traits; the `btree-scoreboard`
//! feature flips the default back (mirroring `heap-queue` for the event
//! queue), and differential proptests in `tcp.rs` drive both through
//! identical ACK/SACK/loss sequences asserting bit-identical outcomes.

// lint:hot-path — no BTreeSet/BTreeMap in this file: it *is* the structure
// that replaced them on the per-ACK path.

use crate::tcp::{SackRanges, MAX_SACK_RANGES};

/// Default ring capacity in bits when no (finite) window hint is available.
const DEFAULT_CAP: u64 = 1 << 10;

/// Rings never grow beyond this many bits (128 KiB of words); sequences
/// further above `base` go to the sorted-interval fallback instead.
const MAX_CAP: u64 = 1 << 20;

/// Sender-side SACK scoreboard: the set operations `SubflowSender` performs
/// per ACK, abstracted so a bitmap and the reference `BTreeSet` bookkeeping
/// can be driven through identical sequences and compared bit-for-bit.
pub(crate) trait Scoreboard: std::fmt::Debug {
    /// Fresh scoreboard sized for windows up to `max_window` packets
    /// (`f64::INFINITY` when uncapped — sizing is a hint, never a limit).
    fn with_window_hint(max_window: f64) -> Self;
    /// Like [`Scoreboard::with_window_hint`], drawing bitmap storage from
    /// `pool` when a retired buffer fits. Backends without reusable
    /// storage (the B-tree reference) ignore the pool.
    fn with_window_hint_pooled(max_window: f64, pool: &mut RingPool) -> Self
    where
        Self: Sized,
    {
        let _ = pool;
        Self::with_window_hint(max_window)
    }
    /// Return to the freshly-constructed empty state *in place*: storage
    /// stays allocated and the monotone allocation counters keep counting,
    /// so a recycled flow slot starts clean without touching the global
    /// allocator.
    fn reset_for_reuse(&mut self);
    /// Surrender reusable bitmap storage into `pool`, leaving a gutted
    /// (empty, never-used-again) husk behind. The default keeps nothing.
    fn gut_into(&mut self, pool: &mut RingPool) {
        let _ = pool;
        self.reset_for_reuse();
    }
    /// Number of sequences the receiver reported holding (≥ `una`).
    fn sacked_len(&self) -> u64;
    /// Whether `seq` has been SACKed.
    fn sacked_contains(&self, seq: u64) -> bool;
    /// Number of sequences currently deemed lost and not yet retransmitted.
    fn lost_len(&self) -> u64;
    /// Whether no sequence is waiting for retransmission.
    fn lost_is_empty(&self) -> bool;
    /// Pop the lowest lost sequence and record it as retransmitted-out at
    /// SACK-event count `sack_events` (for the RACK-style re-mark rule).
    fn pop_lost_for_retx(&mut self, sack_events: u64) -> Option<u64>;
    /// Drop all state below the new cumulative ACK point.
    fn advance_to(&mut self, cum: u64);
    /// Mark `seq` SACKed; returns whether it is newly marked. A newly
    /// SACKed sequence leaves the lost and retransmitted-out sets.
    fn sack_one(&mut self, seq: u64) -> bool;
    /// The `n`-th highest SACKed sequence (0 = highest), if it exists.
    fn nth_highest_sacked(&self, n: usize) -> Option<u64>;
    /// Mark every hole in `[una, cutoff)` — neither SACKed nor already
    /// lost nor retransmitted-out — as lost. Returns whether any was new.
    fn mark_holes_lost(&mut self, una: u64, cutoff: u64) -> bool;
    /// RACK-style re-mark: retransmissions below `cutoff` with ≥ `thresh`
    /// *new* SACK events since they went out are moved back to lost.
    /// Returns whether any was moved.
    fn remark_lost_retx(&mut self, cutoff: u64, sack_events: u64, thresh: u64) -> bool;
    /// RTO collapse: clear retransmitted-out, mark everything unsacked in
    /// `[una, next_seq)` lost (the network is presumed drained).
    fn rto_collapse(&mut self, una: u64, next_seq: u64);
    /// Allocation events so far (ring growth / interval-fallback spills for
    /// the bitmap; an insert-count proxy for the reference impl). Feeds
    /// [`crate::SimPerf::hot_allocs`].
    fn alloc_events(&self) -> u64;
}

/// Receiver-side out-of-order buffer: what `SubflowReceiver` needs.
pub(crate) trait OooBuf: std::fmt::Debug + Default {
    /// Fresh buffer drawing bitmap storage from `pool` when a retired
    /// buffer fits (default: ignore the pool).
    fn new_pooled(pool: &mut RingPool) -> Self
    where
        Self: Sized,
    {
        let _ = pool;
        Self::default()
    }
    /// Return to the empty state in place, keeping storage and the
    /// monotone allocation counters (see [`Scoreboard::reset_for_reuse`]).
    fn reset_for_reuse(&mut self);
    /// Surrender reusable bitmap storage into `pool` (default: keep none).
    fn gut_into(&mut self, pool: &mut RingPool) {
        let _ = pool;
        self.reset_for_reuse();
    }
    /// Buffer out-of-order sequence `seq` (idempotent).
    fn insert(&mut self, seq: u64);
    /// Remove `seq`; returns whether it was held.
    fn remove(&mut self, seq: u64) -> bool;
    /// Whether `seq` is buffered.
    fn contains(&self, seq: u64) -> bool;
    /// Tell the buffer in-order delivery reached `next_expected` (every
    /// remaining member is above it) — lets a windowed impl slide its base.
    fn advance_watermark(&mut self, next_expected: u64);
    /// The first [`MAX_SACK_RANGES`] contiguous runs, in ascending order.
    fn sack_ranges(&self) -> SackRanges;
    /// Allocation events so far (see [`Scoreboard::alloc_events`]).
    fn alloc_events(&self) -> u64;
}

/// Pool of retired ring word-buffers: flow close → open recycles bitmap
/// storage here instead of round-tripping the global allocator. Buffers
/// keep their (power-of-two-bit) capacity; `take` hands out the smallest
/// one that satisfies the request, and the requester adopts the buffer's
/// actual capacity — sizing is a hint, never a limit.
#[derive(Debug, Default)]
pub(crate) struct RingPool {
    bufs: Vec<Box<[u64]>>,
    hits: u64,
    misses: u64,
}

impl RingPool {
    /// Park a retired word-buffer for reuse (empty buffers are dropped).
    pub fn put(&mut self, buf: Box<[u64]>) {
        if !buf.is_empty() {
            self.bufs.push(buf);
        }
    }

    /// Take the best-fitting buffer with at least `cap_bits` capacity,
    /// zeroed and ready for use. `None` (a pool miss) means the caller
    /// allocates fresh.
    pub fn take(&mut self, cap_bits: u64) -> Option<Box<[u64]>> {
        let want_words = (cap_bits.clamp(64, MAX_CAP).next_power_of_two() / 64) as usize;
        let mut best: Option<(usize, usize)> = None;
        for (i, buf) in self.bufs.iter().enumerate() {
            let n = buf.len();
            if n >= want_words && best.is_none_or(|(_, b)| n < b) {
                best = Some((i, n));
            }
        }
        match best {
            Some((i, _)) => {
                self.hits += 1;
                let mut buf = self.bufs.swap_remove(i);
                buf.fill(0);
                Some(buf)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Buffers currently parked.
    #[cfg(test)]
    pub fn len(&self) -> usize {
        self.bufs.len()
    }

    /// `(hits, misses)` over the pool's lifetime.
    #[cfg(test)]
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }
}

#[cfg(not(feature = "btree-scoreboard"))]
pub(crate) type DefaultScoreboard = BitmapScoreboard;
#[cfg(feature = "btree-scoreboard")]
pub(crate) type DefaultScoreboard = crate::scoreboard_ref::BTreeScoreboard;

#[cfg(not(feature = "btree-scoreboard"))]
pub(crate) type DefaultOoo = BitmapOoo;
#[cfg(feature = "btree-scoreboard")]
pub(crate) type DefaultOoo = crate::scoreboard_ref::BTreeOoo;

/// A set of `u64` sequence numbers stored as a rotating bitmap: a power-of-
/// two ring of bits indexed by `seq & mask`, valid for members in
/// `[base, base + capacity)`, with a sorted-interval fallback for members
/// at or above `base + capacity`. `base` only moves forward
/// ([`BitRing::advance_to`]), clearing as it goes, so a slot is never
/// ambiguous: within the valid span each slot maps to exactly one sequence.
#[derive(Debug, Clone)]
pub(crate) struct BitRing {
    /// Lowest sequence the ring can represent; members are ≥ `base`.
    base: u64,
    /// Ring capacity minus one (capacity is a power of two ≥ 64 bits).
    mask: u64,
    /// The bits; `words.len() * 64 == mask + 1`.
    words: Box<[u64]>,
    /// Set bits in `words`.
    len: u64,
    /// Lower bound on the smallest bitmap member (`≥ base` once clamped).
    lo: u64,
    /// One past an upper bound on the largest bitmap member.
    hi: u64,
    /// Sorted, disjoint, non-adjacent half-open intervals holding members
    /// ≥ `base + capacity` (the pathological-gap fallback).
    ovf: Vec<(u64, u64)>,
    /// Total sequences held in `ovf`.
    ovf_len: u64,
    /// Ring growths + fallback-vector growths (allocation events).
    allocs: u64,
}

impl BitRing {
    pub fn with_capacity(cap_bits: u64) -> Self {
        let cap = cap_bits.clamp(64, MAX_CAP).next_power_of_two();
        Self {
            base: 0,
            mask: cap - 1,
            // lint:allow(hot-alloc, reason = "creation-time ring storage; steady state recycles it via the RingPool / reset_for_reuse")
            words: vec![0u64; (cap / 64) as usize].into_boxed_slice(),
            len: 0,
            lo: 0,
            hi: 0,
            ovf: Vec::new(),
            ovf_len: 0,
            allocs: 0,
        }
    }

    /// Ring capacity for a window hint: 4× headroom over the cap (loss
    /// episodes keep sacked+lost sequences beyond the instantaneous cwnd),
    /// clamped to a sane range. Infinite hints get [`DEFAULT_CAP`].
    pub fn for_window_hint(max_window: f64) -> Self {
        Self::with_capacity(Self::hint_cap_bits(max_window))
    }

    fn hint_cap_bits(max_window: f64) -> u64 {
        if max_window.is_finite() && max_window >= 1.0 {
            crate::cast::f64_to_u64(max_window * 4.0).clamp(256, 1 << 16)
        } else {
            DEFAULT_CAP
        }
    }

    /// Like [`BitRing::for_window_hint`], reusing a parked buffer from
    /// `pool` when one fits (adopting that buffer's capacity).
    pub fn for_window_hint_pooled(max_window: f64, pool: &mut RingPool) -> Self {
        let cap_bits = Self::hint_cap_bits(max_window);
        match pool.take(cap_bits) {
            Some(words) => {
                let cap = words.len() as u64 * 64;
                debug_assert!(cap.is_power_of_two() && cap >= 64);
                Self {
                    base: 0,
                    mask: cap - 1,
                    words,
                    len: 0,
                    lo: 0,
                    hi: 0,
                    ovf: Vec::new(),
                    ovf_len: 0,
                    allocs: 0,
                }
            }
            None => Self::with_capacity(cap_bits),
        }
    }

    /// Return to the freshly-constructed empty state without dropping the
    /// word storage; the monotone `allocs` counter is preserved so
    /// steady-state flatness assertions keep holding across slot reuse.
    pub fn reset_for_reuse(&mut self) {
        if self.len > 0 {
            self.words.fill(0);
        }
        self.base = 0;
        self.len = 0;
        self.lo = 0;
        self.hi = 0;
        self.ovf.clear();
        self.ovf_len = 0;
    }

    /// Gut this ring: move its word storage into `pool` and leave behind a
    /// zero-capacity husk that must never be used again (the caller is
    /// tombstoning the containing slot).
    pub fn gut_into(&mut self, pool: &mut RingPool) {
        let words = std::mem::replace(&mut self.words, Vec::new().into_boxed_slice());
        pool.put(words);
        self.base = 0;
        self.mask = 0;
        self.len = 0;
        self.lo = 0;
        self.hi = 0;
        self.ovf.clear();
        self.ovf_len = 0;
    }

    #[inline]
    pub fn len(&self) -> u64 {
        self.len + self.ovf_len
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0 && self.ovf_len == 0
    }

    pub fn alloc_events(&self) -> u64 {
        self.allocs
    }

    #[inline]
    fn cap(&self) -> u64 {
        self.mask + 1
    }

    #[inline]
    fn word_bit(&self, seq: u64) -> (usize, u64) {
        let slot = seq & self.mask;
        ((slot >> 6) as usize, 1u64 << (slot & 63))
    }

    /// The ring word holding masked slot-word index `w`.
    #[inline]
    fn word(&self, w: usize) -> u64 {
        // lint:allow(panic-free, reason = "w = (seq & mask) >> 6 comes from word_bit, so w < words.len() = cap/64 by construction; a miss means the mask/words invariant is broken and must fail loudly")
        self.words[w]
    }

    /// Mutable access to the ring word at masked slot-word index `w`.
    #[inline]
    fn word_mut(&mut self, w: usize) -> &mut u64 {
        // lint:allow(panic-free, reason = "w = (seq & mask) >> 6 comes from word_bit, so w < words.len() = cap/64 by construction; a miss means the mask/words invariant is broken and must fail loudly")
        &mut self.words[w]
    }

    /// The fallback interval at `i` (caller has range-checked `i` against
    /// `partition_point`, which never exceeds `ovf.len()`).
    #[inline]
    fn ovf_at(&self, i: usize) -> (u64, u64) {
        // lint:allow(panic-free, reason = "callers derive i from partition_point (<= ovf.len()) and guard the boundary themselves; an out-of-range i is interval-bookkeeping corruption and must fail loudly")
        self.ovf[i]
    }

    /// Mutable access to the fallback interval at `i` (same contract as
    /// [`Self::ovf_at`]).
    #[inline]
    fn ovf_at_mut(&mut self, i: usize) -> &mut (u64, u64) {
        // lint:allow(panic-free, reason = "callers derive i from partition_point (<= ovf.len()) and guard the boundary themselves; an out-of-range i is interval-bookkeeping corruption and must fail loudly")
        &mut self.ovf[i]
    }

    #[inline]
    pub fn contains(&self, seq: u64) -> bool {
        if seq < self.base {
            return false;
        }
        if seq - self.base < self.cap() {
            let (w, bit) = self.word_bit(seq);
            self.word(w) & bit != 0
        } else {
            ovf_contains(&self.ovf, seq)
        }
    }

    /// Insert `seq` (must be ≥ `base`); returns whether it is new.
    pub fn insert(&mut self, seq: u64) -> bool {
        debug_assert!(seq >= self.base, "insert below ring base");
        if seq - self.base >= self.cap() {
            if seq - self.base < MAX_CAP {
                self.grow_to_fit(seq);
            } else {
                return self.ovf_insert(seq);
            }
        }
        let (w, bit) = self.word_bit(seq);
        if self.word(w) & bit != 0 {
            return false;
        }
        *self.word_mut(w) |= bit;
        if self.len == 0 {
            self.lo = seq;
            self.hi = seq + 1;
        } else {
            self.lo = self.lo.min(seq);
            self.hi = self.hi.max(seq + 1);
        }
        self.len += 1;
        true
    }

    /// Remove `seq`; returns whether it was held.
    pub fn remove(&mut self, seq: u64) -> bool {
        if seq < self.base {
            return false;
        }
        if seq - self.base < self.cap() {
            let (w, bit) = self.word_bit(seq);
            if self.word(w) & bit == 0 {
                return false;
            }
            *self.word_mut(w) &= !bit;
            self.len -= 1;
            if self.len == 0 {
                self.lo = self.base;
                self.hi = self.base;
            }
            true
        } else {
            self.ovf_remove(seq)
        }
    }

    /// Slide the window: drop every member below `new_base` and make
    /// `new_base` the new floor. O(1) when empty (the steady-state case),
    /// otherwise a masked word-range clear plus fallback migration.
    pub fn advance_to(&mut self, new_base: u64) {
        if new_base <= self.base {
            return;
        }
        if self.len > 0 {
            let from = self.lo.max(self.base);
            let to = new_base.min(self.hi);
            if to > from {
                self.clear_seq_span(from, to);
            }
            if self.len == 0 {
                self.lo = new_base;
                self.hi = new_base;
            } else {
                self.lo = self.lo.max(new_base);
            }
        } else {
            self.lo = new_base;
            self.hi = new_base;
        }
        self.base = new_base;
        if !self.ovf.is_empty() {
            self.migrate_ovf();
        }
    }

    /// Pop the smallest member.
    pub fn pop_first(&mut self) -> Option<u64> {
        if self.len > 0 {
            // len > 0 guarantees a member in [lo, hi); if the ring ever
            // disagrees, report empty instead of panicking mid-simulation.
            let Some(seq) = self.first_in(self.lo.max(self.base), self.hi) else {
                debug_assert!(false, "len > 0 must yield a member in [lo, hi)");
                return None;
            };
            self.remove(seq);
            if self.len > 0 {
                self.lo = seq + 1;
            }
            return Some(seq);
        }
        if let Some(&(s, e)) = self.ovf.first() {
            if s + 1 == e {
                self.ovf.remove(0);
            } else if let Some(first) = self.ovf.first_mut() {
                *first = (s + 1, e);
            }
            self.ovf_len -= 1;
            return Some(s);
        }
        None
    }

    /// The `n`-th highest member (0 = highest).
    pub fn nth_back(&self, n: usize) -> Option<u64> {
        let mut n = n as u64;
        if n < self.ovf_len {
            for &(s, e) in self.ovf.iter().rev() {
                let run = e - s;
                if n < run {
                    return Some(e - 1 - n);
                }
                n -= run;
            }
            // ovf_len counts exactly the members of ovf, so the loop must
            // return; degrade to “not found” if the count ever drifts.
            debug_assert!(false, "ovf_len covers n");
            return None;
        }
        n -= self.ovf_len;
        if n >= self.len {
            return None;
        }
        self.nth_back_in(self.lo.max(self.base), self.hi, n)
    }

    /// Visit members in ascending order; stop early when `f` returns false.
    pub fn for_each_ascending(&self, mut f: impl FnMut(u64) -> bool) {
        if self.len > 0 {
            let (from, to) = (self.lo.max(self.base), self.hi);
            let cont = self.spans(from, to, |words, a, b, seq_at_a| {
                let mut slot = a;
                while let Some(s) = span_first(words, slot, b) {
                    if !f(seq_at_a + (s - a)) {
                        return false;
                    }
                    slot = s + 1;
                }
                true
            });
            if !cont {
                return;
            }
        }
        'outer: for &(s, e) in &self.ovf {
            for seq in s..e {
                if !f(seq) {
                    break 'outer;
                }
            }
        }
    }

    /// Decompose the seq range `[from, to)` (within the valid span) into
    /// ≤ 2 linear slot spans and fold `f` over them; `f` gets
    /// `(words, slot_start, slot_end, seq_at_slot_start)` and returns
    /// whether to continue. Returns whether every span ran to completion.
    fn spans(&self, from: u64, to: u64, mut f: impl FnMut(&[u64], u64, u64, u64) -> bool) -> bool {
        debug_assert!(to - from <= self.cap());
        let a = from & self.mask;
        let d = to - from;
        if a + d <= self.cap() {
            f(&self.words, a, a + d, from)
        } else {
            let first_len = self.cap() - a;
            f(&self.words, a, self.cap(), from)
                && f(&self.words, 0, d - first_len, from + first_len)
        }
    }

    fn first_in(&self, from: u64, to: u64) -> Option<u64> {
        let mut found = None;
        self.spans(from, to, |words, a, b, seq0| {
            if let Some(slot) = span_first(words, a, b) {
                found = Some(seq0 + (slot - a));
                false
            } else {
                true
            }
        });
        found
    }

    fn nth_back_in(&self, from: u64, to: u64, mut n: u64) -> Option<u64> {
        // Collect the ≤2 spans, then walk them from the top.
        let mut spans: [(u64, u64, u64); 2] = [(0, 0, 0); 2];
        let mut count = 0;
        self.spans(from, to, |_, a, b, seq0| {
            if let Some(slot) = spans.get_mut(count) {
                *slot = (a, b, seq0);
                count += 1;
            }
            true
        });
        for &(a, b, seq0) in spans.iter().take(count).rev() {
            if let Some(slot) = span_nth_back(&self.words, a, b, &mut n) {
                return Some(seq0 + (slot - a));
            }
        }
        None
    }

    /// Clear bits for the seq range `[from, to)`, updating `len`.
    fn clear_seq_span(&mut self, from: u64, to: u64) {
        let mask = self.mask;
        let mut cleared = 0u64;
        let words = &mut self.words;
        // Inline `spans` logic over &mut words.
        let cap = mask + 1;
        let a = from & mask;
        let d = to - from;
        let ranges = if a + d <= cap { [(a, a + d), (0, 0)] } else { [(a, cap), (0, a + d - cap)] };
        for (s, e) in ranges {
            if s >= e {
                continue;
            }
            let first_w = (s / 64) as usize;
            let last_w = ((e - 1) / 64) as usize;
            for (w, word) in words.iter_mut().enumerate().take(last_w + 1).skip(first_w) {
                let mut m = !0u64;
                if w == first_w {
                    m &= !0u64 << (s % 64);
                }
                if w == last_w {
                    let top = e % 64;
                    if top != 0 {
                        m &= (1u64 << top) - 1;
                    }
                }
                cleared += (*word & m).count_ones() as u64;
                *word &= !m;
            }
        }
        self.len -= cleared;
    }

    /// Grow the ring (doubling) until `seq` fits, re-placing members and
    /// pulling in any fallback intervals that now fit.
    fn grow_to_fit(&mut self, seq: u64) {
        let mut new_cap = self.cap();
        while seq - self.base >= new_cap {
            new_cap *= 2;
        }
        debug_assert!(new_cap <= MAX_CAP);
        // lint:allow(hot-alloc, reason = "counted growth: bumps `allocs`, which the flow_churn bench asserts stays flat in steady state")
        let new_words = vec![0u64; (new_cap / 64) as usize].into_boxed_slice();
        let old = std::mem::replace(&mut self.words, new_words);
        let old_mask = self.mask;
        self.mask = new_cap - 1;
        self.allocs += 1;
        if self.len > 0 {
            // Re-place every member: slots move when the mask changes.
            let (from, to) = (self.lo.max(self.base), self.hi);
            let relocated = self.len;
            self.len = 0;
            let lo = self.lo;
            let hi = self.hi;
            for_each_in_ring(&old, old_mask, from, to, |s| {
                let (w, bit) = self.word_bit(s);
                *self.word_mut(w) |= bit;
            });
            self.len = relocated;
            self.lo = lo;
            self.hi = hi;
        }
        if !self.ovf.is_empty() {
            self.migrate_ovf();
        }
    }

    /// Move fallback intervals that now fit the ring (or fell below
    /// `base`) out of `ovf`.
    fn migrate_ovf(&mut self) {
        let fit_end = self.base + self.cap();
        while let Some(&(s, e)) = self.ovf.first() {
            if s >= fit_end {
                break;
            }
            self.ovf.remove(0);
            self.ovf_len -= e - s;
            let into_ring_end = e.min(fit_end);
            for seq in s.max(self.base)..into_ring_end {
                self.insert(seq);
            }
            if e > fit_end {
                self.ovf.insert(0, (fit_end, e));
                self.ovf_len += e - fit_end;
                break;
            }
        }
    }

    fn ovf_insert(&mut self, seq: u64) -> bool {
        // Position of the first interval with start > seq.
        let i = self.ovf.partition_point(|&(s, _)| s <= seq);
        if i > 0 && seq < self.ovf_at(i - 1).1 {
            return false; // already contained
        }
        let joins_prev = i > 0 && self.ovf_at(i - 1).1 == seq;
        let joins_next = i < self.ovf.len() && self.ovf_at(i).0 == seq + 1;
        match (joins_prev, joins_next) {
            (true, true) => {
                let merged_end = self.ovf_at(i).1;
                self.ovf_at_mut(i - 1).1 = merged_end;
                self.ovf.remove(i);
            }
            (true, false) => self.ovf_at_mut(i - 1).1 = seq + 1,
            (false, true) => self.ovf_at_mut(i).0 = seq,
            (false, false) => {
                if self.ovf.len() == self.ovf.capacity() {
                    self.allocs += 1;
                }
                self.ovf.insert(i, (seq, seq + 1));
            }
        }
        self.ovf_len += 1;
        true
    }

    fn ovf_remove(&mut self, seq: u64) -> bool {
        let i = self.ovf.partition_point(|&(s, _)| s <= seq);
        if i == 0 || seq >= self.ovf_at(i - 1).1 {
            return false;
        }
        let (s, e) = self.ovf_at(i - 1);
        match (seq == s, seq + 1 == e) {
            (true, true) => {
                self.ovf.remove(i - 1);
            }
            (true, false) => self.ovf_at_mut(i - 1).0 = seq + 1,
            (false, true) => self.ovf_at_mut(i - 1).1 = seq,
            (false, false) => {
                self.ovf_at_mut(i - 1).1 = seq;
                if self.ovf.len() == self.ovf.capacity() {
                    self.allocs += 1;
                }
                self.ovf.insert(i, (seq + 1, e));
            }
        }
        self.ovf_len -= 1;
        true
    }
}

fn ovf_contains(ovf: &[(u64, u64)], seq: u64) -> bool {
    let i = ovf.partition_point(|&(s, _)| s <= seq);
    i > 0 && ovf.get(i - 1).is_some_and(|&(_, e)| seq < e)
}

/// First set slot in the linear slot span `[a, b)`.
#[inline]
fn span_first(words: &[u64], a: u64, b: u64) -> Option<u64> {
    if a >= b {
        return None;
    }
    let first_w = (a / 64) as usize;
    let last_w = ((b - 1) / 64) as usize;
    for (w, &word) in words.iter().enumerate().take(last_w + 1).skip(first_w) {
        let mut m = word;
        if w == first_w {
            m &= !0u64 << (a % 64);
        }
        if w == last_w {
            let top = b % 64;
            if top != 0 {
                m &= (1u64 << top) - 1;
            }
        }
        if m != 0 {
            return Some(w as u64 * 64 + m.trailing_zeros() as u64);
        }
    }
    None
}

/// The slot of the `(*n)`-th highest set bit in the linear slot span
/// `[a, b)`, decrementing `*n` past the bits it skips when there are not
/// enough.
#[inline]
fn span_nth_back(words: &[u64], a: u64, b: u64, n: &mut u64) -> Option<u64> {
    if a >= b {
        return None;
    }
    let first_w = (a / 64) as usize;
    let last_w = ((b - 1) / 64) as usize;
    for w in (first_w..=last_w).rev() {
        // Out-of-range reads see an empty word (skipped by the count
        // check below); callers keep [a, b) inside the slab.
        let mut m = words.get(w).copied().unwrap_or(0);
        if w == first_w {
            m &= !0u64 << (a % 64);
        }
        if w == last_w {
            let top = b % 64;
            if top != 0 {
                m &= (1u64 << top) - 1;
            }
        }
        let cnt = m.count_ones() as u64;
        if *n >= cnt {
            *n -= cnt;
            continue;
        }
        for _ in 0..*n {
            m &= !(1u64 << (63 - m.leading_zeros()));
        }
        return Some(w as u64 * 64 + (63 - m.leading_zeros()) as u64);
    }
    None
}

/// Visit set bits of a foreign ring (used while re-placing during growth).
fn for_each_in_ring(words: &[u64], mask: u64, from: u64, to: u64, mut f: impl FnMut(u64)) {
    let cap = mask + 1;
    debug_assert!(to - from <= cap);
    let a = from & mask;
    let d = to - from;
    let ranges = if a + d <= cap { [(a, a + d, from), (0, 0, 0)] } else { [(a, cap, from), (0, a + d - cap, from + (cap - a))] };
    for (s, e, seq0) in ranges {
        if s >= e {
            continue;
        }
        let mut slot = s;
        while let Some(found) = span_first(words, slot, e) {
            f(seq0 + (found - s));
            slot = found + 1;
        }
    }
}

/// The allocation-free sender scoreboard: two [`BitRing`]s plus a small
/// sorted vector for retransmitted-out sequences (a handful of entries at
/// most — binary-searched, cache-resident).
#[derive(Debug)]
pub(crate) struct BitmapScoreboard {
    sacked: BitRing,
    lost: BitRing,
    /// `(seq, sack_events at retransmit)`, sorted by `seq`.
    retx: Vec<(u64, u64)>,
    retx_allocs: u64,
}

impl BitmapScoreboard {
    #[inline]
    fn retx_contains(&self, seq: u64) -> bool {
        self.retx.binary_search_by_key(&seq, |&(s, _)| s).is_ok()
    }

    fn retx_remove(&mut self, seq: u64) {
        if let Ok(i) = self.retx.binary_search_by_key(&seq, |&(s, _)| s) {
            self.retx.remove(i);
        }
    }
}

impl Scoreboard for BitmapScoreboard {
    fn with_window_hint(max_window: f64) -> Self {
        Self {
            sacked: BitRing::for_window_hint(max_window),
            lost: BitRing::for_window_hint(max_window),
            retx: Vec::new(),
            retx_allocs: 0,
        }
    }

    fn with_window_hint_pooled(max_window: f64, pool: &mut RingPool) -> Self {
        Self {
            sacked: BitRing::for_window_hint_pooled(max_window, pool),
            lost: BitRing::for_window_hint_pooled(max_window, pool),
            retx: Vec::new(),
            retx_allocs: 0,
        }
    }

    fn reset_for_reuse(&mut self) {
        self.sacked.reset_for_reuse();
        self.lost.reset_for_reuse();
        self.retx.clear();
    }

    fn gut_into(&mut self, pool: &mut RingPool) {
        self.sacked.gut_into(pool);
        self.lost.gut_into(pool);
        self.retx = Vec::new();
    }

    fn sacked_len(&self) -> u64 {
        self.sacked.len()
    }

    fn sacked_contains(&self, seq: u64) -> bool {
        self.sacked.contains(seq)
    }

    fn lost_len(&self) -> u64 {
        self.lost.len()
    }

    fn lost_is_empty(&self) -> bool {
        self.lost.is_empty()
    }

    fn pop_lost_for_retx(&mut self, sack_events: u64) -> Option<u64> {
        let seq = self.lost.pop_first()?;
        let i = self.retx.partition_point(|&(s, _)| s < seq);
        if self.retx.len() == self.retx.capacity() {
            self.retx_allocs += 1;
        }
        self.retx.insert(i, (seq, sack_events));
        Some(seq)
    }

    fn advance_to(&mut self, cum: u64) {
        self.sacked.advance_to(cum);
        self.lost.advance_to(cum);
        let below = self.retx.partition_point(|&(s, _)| s < cum);
        if below > 0 {
            self.retx.drain(..below);
        }
    }

    fn sack_one(&mut self, seq: u64) -> bool {
        if !self.sacked.insert(seq) {
            return false;
        }
        self.lost.remove(seq);
        self.retx_remove(seq);
        true
    }

    fn nth_highest_sacked(&self, n: usize) -> Option<u64> {
        self.sacked.nth_back(n)
    }

    fn mark_holes_lost(&mut self, una: u64, cutoff: u64) -> bool {
        let mut any = false;
        for seq in una..cutoff {
            if self.sacked.contains(seq) || self.lost.contains(seq) || self.retx_contains(seq) {
                continue;
            }
            self.lost.insert(seq);
            any = true;
        }
        any
    }

    fn remark_lost_retx(&mut self, cutoff: u64, sack_events: u64, thresh: u64) -> bool {
        let lost = &mut self.lost;
        let mut any = false;
        self.retx.retain(|&(s, ev)| {
            if s < cutoff && sack_events >= ev + thresh {
                lost.insert(s);
                any = true;
                false
            } else {
                true
            }
        });
        any
    }

    fn rto_collapse(&mut self, una: u64, next_seq: u64) {
        self.retx.clear();
        for seq in una..next_seq {
            if !self.sacked.contains(seq) {
                self.lost.insert(seq);
            }
        }
    }

    fn alloc_events(&self) -> u64 {
        self.sacked.alloc_events() + self.lost.alloc_events() + self.retx_allocs
    }
}

/// The allocation-free receiver out-of-order buffer.
#[derive(Debug)]
pub(crate) struct BitmapOoo {
    ring: BitRing,
}

impl Default for BitmapOoo {
    fn default() -> Self {
        Self { ring: BitRing::with_capacity(DEFAULT_CAP) }
    }
}

impl OooBuf for BitmapOoo {
    fn new_pooled(pool: &mut RingPool) -> Self {
        // Infinite hint → DEFAULT_CAP, matching `BitmapOoo::default()`.
        Self { ring: BitRing::for_window_hint_pooled(f64::INFINITY, pool) }
    }

    fn reset_for_reuse(&mut self) {
        self.ring.reset_for_reuse();
    }

    fn gut_into(&mut self, pool: &mut RingPool) {
        self.ring.gut_into(pool);
    }

    fn insert(&mut self, seq: u64) {
        self.ring.insert(seq);
    }

    fn remove(&mut self, seq: u64) -> bool {
        self.ring.remove(seq)
    }

    fn contains(&self, seq: u64) -> bool {
        self.ring.contains(seq)
    }

    fn advance_watermark(&mut self, next_expected: u64) {
        self.ring.advance_to(next_expected);
    }

    fn sack_ranges(&self) -> SackRanges {
        let mut out: SackRanges = [None; MAX_SACK_RANGES];
        let mut cur: Option<(u64, u64)> = None;
        let mut n = 0;
        self.ring.for_each_ascending(|s| {
            match cur {
                Some((_, ref mut end)) if s == *end => *end += 1,
                Some(range) => {
                    if let Some(slot) = out.get_mut(n) {
                        *slot = Some(range);
                    }
                    n += 1;
                    if n == MAX_SACK_RANGES {
                        cur = None;
                        return false;
                    }
                    cur = Some((s, s + 1));
                }
                None => cur = Some((s, s + 1)),
            }
            true
        });
        if let Some(range) = cur {
            if let Some(slot) = out.get_mut(n) {
                *slot = Some(range);
            }
        }
        out
    }

    fn alloc_events(&self) -> u64 {
        self.ring.alloc_events()
    }
}

/// Which scoreboard implementation [`scoreboard_churn`] drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScoreboardKind {
    /// The rotating-bitmap scoreboard (the default).
    Bitmap,
    /// The reference `BTreeSet`-based bookkeeping it replaced.
    BTree,
}

/// Micro-benchmark hook: drive a scoreboard through a synthetic
/// SACK/loss/retransmit/advance cycle and return the wall time, the
/// counterpart of [`crate::queue_churn`] for the structure the per-ACK
/// path spends its time in. The workload holds `window` packets
/// outstanding, SACKs every other one (worst-case fragmentation), marks
/// the holes lost past a DupThresh cutoff, retransmits them, then advances
/// cumulatively — at least `ops` scoreboard operations in total. Both
/// kinds run the identical sequence, so the ratio isolates the data
/// structure.
pub fn scoreboard_churn(kind: ScoreboardKind, window: u64, ops: u64) -> std::time::Duration {
    match kind {
        ScoreboardKind::Bitmap => churn::<BitmapScoreboard>(window, ops),
        ScoreboardKind::BTree => churn::<crate::scoreboard_ref::BTreeScoreboard>(window, ops),
    }
}

fn churn<SB: Scoreboard>(window: u64, ops: u64) -> std::time::Duration {
    let window = window.max(8);
    let mut board = SB::with_window_hint(window as f64);
    let mut una = 0u64;
    let mut sack_events = 0u64;
    let mut done = 0u64;
    let start = crate::perf::wall_clock();
    while done < ops {
        let next = una + window;
        // Receiver holds every other packet above the first hole.
        let mut seq = una + 1;
        while seq < next {
            if board.sack_one(seq) {
                sack_events += 1;
            }
            done += 1;
            seq += 2;
        }
        // DupThresh reached: everything below the cutoff not SACKed is lost.
        if let Some(cutoff) = board.nth_highest_sacked(2) {
            board.mark_holes_lost(una, cutoff);
            done += cutoff - una;
        }
        // Retransmit every hole, then re-mark a late loss episode.
        while board.pop_lost_for_retx(sack_events).is_some() {
            done += 1;
        }
        // Three further SACK arrivals without the retransmissions being
        // covered: the re-mark rule sends them again.
        sack_events += 3;
        board.remark_lost_retx(next, sack_events, 3);
        while board.pop_lost_for_retx(sack_events).is_some() {
            done += 1;
        }
        // The cumulative ACK catches up; the window slides forward whole.
        una = next;
        board.advance_to(una);
        done += 1;
    }
    std::hint::black_box(board.sacked_len());
    start.elapsed()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove_roundtrip() {
        let mut r = BitRing::with_capacity(64);
        assert!(r.is_empty());
        assert!(r.insert(5));
        assert!(!r.insert(5), "duplicate insert");
        assert!(r.contains(5));
        assert!(!r.contains(4));
        assert!(r.remove(5));
        assert!(!r.remove(5));
        assert!(r.is_empty());
    }

    #[test]
    fn advance_drops_members_below() {
        let mut r = BitRing::with_capacity(64);
        for s in [1, 3, 10, 40] {
            r.insert(s);
        }
        r.advance_to(10);
        assert_eq!(r.len(), 2);
        assert!(!r.contains(1));
        assert!(!r.contains(3));
        assert!(r.contains(10));
        assert!(r.contains(40));
    }

    #[test]
    fn ring_wraps_across_the_boundary() {
        // cap 64: seqs 60..68 straddle the slot wrap at 64.
        let mut r = BitRing::with_capacity(64);
        r.advance_to(60);
        for s in 60..68 {
            assert!(r.insert(s));
        }
        assert_eq!(r.len(), 8);
        for s in 60..68 {
            assert!(r.contains(s), "seq {s} across the wrap");
        }
        assert_eq!(r.pop_first(), Some(60));
        assert_eq!(r.nth_back(0), Some(67));
        assert_eq!(r.nth_back(2), Some(65));
        let mut seen = Vec::new();
        r.for_each_ascending(|s| {
            seen.push(s);
            true
        });
        assert_eq!(seen, (61..68).collect::<Vec<_>>());
    }

    #[test]
    fn growth_preserves_members() {
        let mut r = BitRing::with_capacity(64);
        r.insert(0);
        r.insert(63);
        assert_eq!(r.alloc_events(), 0);
        r.insert(100); // forces a grow
        assert!(r.alloc_events() >= 1);
        for s in [0, 63, 100] {
            assert!(r.contains(s));
        }
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn far_sequences_fall_back_to_intervals_and_migrate() {
        let mut r = BitRing::with_capacity(64);
        r.insert(1);
        let far = MAX_CAP + 5; // beyond any growth
        assert!(r.insert(far));
        assert!(r.insert(far + 1));
        assert!(!r.insert(far), "fallback dedups");
        assert!(r.contains(far));
        assert_eq!(r.len(), 3);
        assert_eq!(r.nth_back(0), Some(far + 1));
        assert_eq!(r.nth_back(1), Some(far));
        assert_eq!(r.nth_back(2), Some(1));
        // Advancing close to the fallback pulls it into the ring.
        r.advance_to(far - 10);
        assert_eq!(r.len(), 2);
        assert!(r.contains(far));
        assert!(r.contains(far + 1));
        assert_eq!(r.pop_first(), Some(far));
    }

    #[test]
    fn pop_first_orders_ring_before_fallback() {
        let mut r = BitRing::with_capacity(64);
        r.insert(7);
        r.insert(MAX_CAP + 2);
        assert_eq!(r.pop_first(), Some(7));
        assert_eq!(r.pop_first(), Some(MAX_CAP + 2));
        assert_eq!(r.pop_first(), None);
    }

    #[test]
    fn ovf_interval_merge_and_split() {
        let mut r = BitRing::with_capacity(64);
        let f = MAX_CAP + 100;
        r.insert(f);
        r.insert(f + 2);
        r.insert(f + 1); // merges the two intervals
        assert_eq!(r.ovf.len(), 1);
        assert_eq!(r.ovf[0], (f, f + 3));
        assert!(r.remove(f + 1)); // splits again
        assert_eq!(r.ovf.len(), 2);
        assert!(r.contains(f) && !r.contains(f + 1) && r.contains(f + 2));
    }

    #[test]
    fn sack_ranges_match_reference_shape() {
        let mut ooo = BitmapOoo::default();
        ooo.advance_watermark(1);
        for s in [2, 3, 5, 8, 9] {
            ooo.insert(s);
        }
        let r = ooo.sack_ranges();
        assert_eq!(r[0], Some((2, 4)));
        assert_eq!(r[1], Some((5, 6)));
        assert_eq!(r[2], Some((8, 10)));
        assert_eq!(r[3], None);
    }

    #[test]
    fn sack_ranges_stop_after_four_runs() {
        let mut ooo = BitmapOoo::default();
        for s in [1, 3, 5, 7, 9, 11] {
            ooo.insert(s);
        }
        let r = ooo.sack_ranges();
        assert_eq!(r[3], Some((7, 8)));
    }

    #[test]
    fn reset_for_reuse_restores_fresh_semantics_without_dropping_storage() {
        let mut r = BitRing::with_capacity(256);
        for s in [3, 7, 200] {
            r.insert(s);
        }
        r.advance_to(5);
        r.insert(MAX_CAP + 9); // park something in the fallback too
        let words_before = r.words.len();
        let allocs_before = r.alloc_events();
        r.reset_for_reuse();
        assert!(r.is_empty());
        assert_eq!(r.words.len(), words_before, "storage survives the reset");
        assert_eq!(r.alloc_events(), allocs_before, "alloc counter is monotone");
        assert!(!r.contains(7) && !r.contains(MAX_CAP + 9));
        // Behaves exactly like a fresh ring from base 0.
        assert!(r.insert(0));
        assert!(r.insert(255));
        assert_eq!(r.pop_first(), Some(0));
        assert_eq!(r.nth_back(0), Some(255));
    }

    #[test]
    fn ring_pool_recycles_gutted_storage() {
        let mut pool = RingPool::default();
        let mut r = BitRing::with_capacity(512);
        r.insert(17);
        r.gut_into(&mut pool);
        assert_eq!(pool.len(), 1);
        // A request that fits is served from the pool, zeroed.
        let reused = BitRing::for_window_hint_pooled(64.0, &mut pool);
        assert_eq!(pool.len(), 0);
        assert_eq!(reused.cap(), 512, "adopts the parked buffer's capacity");
        assert!(reused.is_empty());
        assert!(!reused.contains(17), "recycled storage arrives clean");
        assert_eq!(pool.stats(), (1, 0));
        // An oversized request misses and allocates fresh.
        let fresh = BitRing::for_window_hint_pooled(f64::INFINITY, &mut pool);
        assert_eq!(fresh.cap(), DEFAULT_CAP);
        assert_eq!(pool.stats(), (1, 1));
    }

    #[test]
    fn ring_pool_take_prefers_the_smallest_fitting_buffer() {
        let mut pool = RingPool::default();
        for cap in [4096, 256, 1024] {
            BitRing::with_capacity(cap).gut_into(&mut pool);
        }
        let got = pool.take(300).map(|b| b.len() as u64 * 64);
        assert_eq!(got, Some(1024), "best fit, not first fit");
        assert_eq!(pool.take(1 << 19), None, "nothing big enough");
        assert_eq!(pool.len(), 2);
    }

    #[test]
    fn scoreboard_reset_clears_all_three_sets_in_place() {
        let mut b = BitmapScoreboard::with_window_hint(32.0);
        for s in 1..5 {
            b.sack_one(s);
        }
        b.mark_holes_lost(0, 2);
        b.pop_lost_for_retx(4);
        b.reset_for_reuse();
        assert_eq!(b.sacked_len(), 0);
        assert!(b.lost_is_empty());
        assert!(!b.retx_contains(0));
        // Fresh recovery cycle works from sequence zero again.
        assert!(b.sack_one(1));
        assert!(b.mark_holes_lost(0, 1));
        assert_eq!(b.pop_lost_for_retx(1), Some(0));
    }

    #[test]
    fn scoreboard_basic_recovery_cycle() {
        let mut b = BitmapScoreboard::with_window_hint(f64::INFINITY);
        // 0..6 outstanding; 1..5 sacked, hole at 0.
        for s in 1..5 {
            assert!(b.sack_one(s));
            assert!(!b.sack_one(s));
        }
        assert_eq!(b.sacked_len(), 4);
        assert_eq!(b.nth_highest_sacked(2), Some(2));
        assert!(b.mark_holes_lost(0, 2));
        assert!(!b.mark_holes_lost(0, 2), "idempotent");
        assert_eq!(b.lost_len(), 1);
        assert_eq!(b.pop_lost_for_retx(4), Some(0));
        assert!(b.lost_is_empty());
        // The retransmission is itself lost: 3 new sack events re-mark it.
        assert!(!b.remark_lost_retx(2, 6, 3));
        assert!(b.remark_lost_retx(2, 7, 3));
        assert_eq!(b.pop_lost_for_retx(7), Some(0));
        b.advance_to(6);
        assert_eq!(b.sacked_len(), 0);
        assert!(b.lost_is_empty());
    }
}
