//! Constant-bit-rate sources with optional Markov on/off bursting.
//!
//! §3's dynamic-load experiment (Fig. 9) uses "an additional bursty CBR flow
//! which sends at 100 Mb/s for a random duration of mean 10 ms, then is
//! quiet for a random duration of mean 100 ms". [`CbrSpec::onoff`] models
//! exactly that: exponentially distributed on and off periods.

use crate::link::{LinkId, LinkPath};
use crate::time::SimTime;

/// Identifier of a CBR source within one [`Simulator`](crate::Simulator).
pub type CbrId = usize;

/// Configuration of a CBR source.
#[derive(Debug, Clone)]
pub struct CbrSpec {
    /// Forward path (links traversed, in order).
    pub path: Vec<LinkId>,
    /// Sending rate while "on", bits per second.
    pub rate_bps: f64,
    /// Packet size, bytes.
    pub packet_size: u32,
    /// Mean on/off durations for the bursty (exponential) modulation;
    /// `None` means always on.
    pub onoff: Option<(SimTime, SimTime)>,
    /// When the source starts.
    pub start: SimTime,
}

impl CbrSpec {
    /// An always-on CBR source.
    ///
    /// # Panics
    /// Panics on an empty path or non-positive rate.
    pub fn constant(path: Vec<LinkId>, rate_bps: f64) -> Self {
        assert!(!path.is_empty(), "CBR path must traverse at least one link");
        assert!(rate_bps > 0.0, "CBR rate must be positive");
        Self {
            path,
            rate_bps,
            packet_size: crate::packet::DEFAULT_PACKET_SIZE,
            onoff: None,
            start: SimTime::ZERO,
        }
    }

    /// Add Markov on/off modulation with the given mean durations (both
    /// exponentially distributed, as in Fig. 9).
    pub fn onoff(mut self, mean_on: SimTime, mean_off: SimTime) -> Self {
        self.onoff = Some((mean_on, mean_off));
        self
    }

    /// Set the start time.
    pub fn start(mut self, at: SimTime) -> Self {
        self.start = at;
        self
    }

    /// Inter-packet gap while on.
    pub fn packet_interval(&self) -> SimTime {
        SimTime::from_secs_f64(self.packet_size as f64 * 8.0 / self.rate_bps)
    }
}

/// Runtime state of a CBR source.
#[derive(Debug)]
pub(crate) struct CbrSource {
    pub spec: CbrSpec,
    /// The spec's path in hot-path form (inline storage for short routes).
    pub path: LinkPath,
    /// Currently in the "on" state.
    pub on: bool,
    /// Generation counter so stale send events are ignored after toggles.
    pub gen: u64,
    /// Packets handed to the first link.
    pub sent: u64,
    /// Packets that reached the end of the path.
    pub delivered: u64,
}

impl CbrSource {
    pub fn new(spec: CbrSpec) -> Self {
        let path = LinkPath::from(spec.path.clone());
        Self { spec, path, on: false, gen: 0, sent: 0, delivered: 0 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packet_interval_for_100mbps_1500b_is_120us() {
        let spec = CbrSpec::constant(vec![0], 100e6);
        assert_eq!(spec.packet_interval(), SimTime::from_micros(120));
    }

    #[test]
    fn builder_sets_fields() {
        let spec = CbrSpec::constant(vec![1, 2], 5e6)
            .onoff(SimTime::from_millis(10), SimTime::from_millis(100))
            .start(SimTime::from_secs(3));
        assert_eq!(spec.path, vec![1, 2]);
        assert_eq!(spec.onoff, Some((SimTime::from_millis(10), SimTime::from_millis(100))));
        assert_eq!(spec.start, SimTime::from_secs(3));
    }

    #[test]
    #[should_panic]
    fn empty_path_rejected() {
        let _ = CbrSpec::constant(vec![], 1e6);
    }
}
