//! Structured telemetry probes: periodic per-subflow and per-link time
//! series plus congestion-event transitions, sampled from inside the event
//! loop.
//!
//! [`crate::Recorder`] answers the paper's *figure* questions (goodput per
//! interval); the probe subsystem answers *diagnosis* questions: what did
//! cwnd/ssthresh/srtt/rto actually do over time, when did recovery modes
//! switch, how deep were the queues, and which drop cause dominated. It is
//! the measurement substrate for the fluid-model differential oracle in
//! `mptcp-bench`.
//!
//! Design constraints:
//!
//! * **Zero cost when disabled.** The simulator holds an
//!   `Option<Box<ProbeState>>`; every hook is a single `is_some()` branch
//!   on an otherwise untouched hot path, and sampling itself is driven by a
//!   self-rescheduling [`ProbeTick`](crate::event) event, so the per-packet
//!   code never loops over watch lists.
//! * **History-neutral.** Sampling draws no randomness and sends no
//!   packets, so enabling probes cannot perturb the simulated packet
//!   history: a run with probes on and a run with probes off deliver the
//!   identical byte stream (asserted in `benches/sim_micro.rs`).
//! * **Quiesce detection.** A pending tick keeps the event queue non-empty,
//!   so [`SimPerf::quiesced_at`](crate::SimPerf) cannot trigger while a
//!   probe is enabled; the stall watchdog is unaffected (ticks do not count
//!   as progress). Disable the probe before relying on quiesce detection.

use crate::link::LinkId;
use crate::sim::ConnId;
use crate::time::SimTime;

/// What to sample and how often. Watch lists are fixed at enable time.
#[derive(Debug, Clone)]
pub struct ProbeSpec {
    /// Sampling period. Each tick records one [`SubflowPoint`] per watched
    /// subflow and one [`LinkPoint`] per watched link.
    pub interval: SimTime,
    /// Connections to sample; empty means every connection that exists
    /// when the probe is enabled.
    pub conns: Vec<ConnId>,
    /// Links to sample; empty means every link that exists when the probe
    /// is enabled.
    pub links: Vec<LinkId>,
}

impl ProbeSpec {
    /// Sample everything in the world at `interval`.
    pub fn every(interval: SimTime) -> Self {
        Self { interval, conns: Vec::new(), links: Vec::new() }
    }

    /// Restrict to specific connections.
    pub fn conns(mut self, conns: Vec<ConnId>) -> Self {
        self.conns = conns;
        self
    }

    /// Restrict to specific links.
    pub fn links(mut self, links: Vec<LinkId>) -> Self {
        self.links = links;
        self
    }
}

/// Which congestion-control regime a subflow sender was in at a sample
/// point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CcPhase {
    /// cwnd below ssthresh, exponential growth.
    SlowStart,
    /// Additive increase driven by the coupled algorithm.
    CongestionAvoidance,
    /// Steady state of a delay-based controller (wVegas): the window is
    /// steered by queueing delay, not loss — distinguished from
    /// [`CcPhase::CongestionAvoidance`] because "no losses here" means
    /// opposite things for the two regimes.
    DelayAvoidance,
    /// SACK-driven hole repair; window held at the post-decrease level.
    FastRecovery,
    /// Post-timeout: window collapsed to the floor, slow-starting back.
    RtoRecovery,
}

impl CcPhase {
    /// Stable lowercase name (used in JSONL output).
    pub fn as_str(self) -> &'static str {
        match self {
            CcPhase::SlowStart => "slow_start",
            CcPhase::CongestionAvoidance => "congestion_avoidance",
            CcPhase::DelayAvoidance => "delay_avoidance",
            CcPhase::FastRecovery => "fast_recovery",
            CcPhase::RtoRecovery => "rto_recovery",
        }
    }
}

/// One periodic sample of one subflow's sender state.
#[derive(Debug, Clone, Copy)]
pub struct SubflowPoint {
    /// Sample time.
    pub at: SimTime,
    /// Connection sampled.
    pub conn: ConnId,
    /// Subflow index within the connection.
    pub sub: usize,
    /// Congestion window, packets.
    pub cwnd: f64,
    /// Slow-start threshold, packets (∞ before the first loss).
    pub ssthresh: f64,
    /// Smoothed RTT, seconds (0 before the first sample).
    pub srtt: f64,
    /// Current effective RTO, seconds (min/max-clamped).
    pub rto: f64,
    /// Consecutive RTO backoffs without forward ACK progress.
    pub backoffs: u32,
    /// Estimated packets in the network (SACK scoreboard `pipe`).
    pub in_flight: f64,
    /// Congestion-control regime at the sample point.
    pub phase: CcPhase,
}

/// One periodic sample of one link's state. The drop counters are
/// cumulative (diff successive points for per-interval rates).
#[derive(Debug, Clone, Copy)]
pub struct LinkPoint {
    /// Sample time.
    pub at: SimTime,
    /// Link sampled.
    pub link: LinkId,
    /// Packets waiting or in service on the link right now.
    pub queue_depth: usize,
    /// Cumulative packets offered to the link.
    pub offered: u64,
    /// Cumulative drop-tail (queue overflow) drops.
    pub dropped_queue: u64,
    /// Cumulative random (Bernoulli / Gilbert–Elliott) drops.
    pub dropped_random: u64,
    /// Cumulative drops while the link was administratively down.
    pub dropped_down: u64,
    /// Cumulative packets fully serialized.
    pub transmitted: u64,
}

/// A congestion-control state transition, recorded at the event that caused
/// it (not at the next sampling tick, so ordering against other transitions
/// is exact).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransitionKind {
    /// Loss detected via SACK/dupacks; fast recovery began.
    EnterFastRecovery,
    /// A retransmission timeout fired (window collapsed to the floor).
    RtoFired,
    /// Recovery (fast or RTO) completed; normal growth resumed.
    ExitRecovery,
    /// The subflow crossed the potentially-failed backoff threshold.
    PotentiallyFailed,
    /// Forward ACK progress revived a potentially-failed subflow.
    Revived,
    /// Every usable primary subflow failed; data moved onto the
    /// connection's backup subflows (recorded against the first backup).
    BackupActivated,
    /// A primary subflow became usable again; the backups stood down.
    BackupStoodDown,
}

impl TransitionKind {
    /// Stable lowercase name (used in JSONL output).
    pub fn as_str(self) -> &'static str {
        match self {
            TransitionKind::EnterFastRecovery => "enter_fast_recovery",
            TransitionKind::RtoFired => "rto_fired",
            TransitionKind::ExitRecovery => "exit_recovery",
            TransitionKind::PotentiallyFailed => "potentially_failed",
            TransitionKind::Revived => "revived",
            TransitionKind::BackupActivated => "backup_activated",
            TransitionKind::BackupStoodDown => "backup_stood_down",
        }
    }
}

/// One recorded transition.
#[derive(Debug, Clone, Copy)]
pub struct Transition {
    /// When the transition happened.
    pub at: SimTime,
    /// Connection it happened on.
    pub conn: ConnId,
    /// Subflow index within the connection.
    pub sub: usize,
    /// What changed.
    pub kind: TransitionKind,
}

/// Everything a probe collected: three append-only, time-ordered series.
#[derive(Debug, Default, Clone)]
pub struct ProbeLog {
    /// Periodic subflow samples, in time order.
    pub subflow_points: Vec<SubflowPoint>,
    /// Periodic link samples, in time order.
    pub link_points: Vec<LinkPoint>,
    /// Congestion transitions, in event order.
    pub transitions: Vec<Transition>,
}

impl ProbeLog {
    /// Iterator over the samples of one subflow taken at or after `from`.
    pub fn subflow_series(
        &self,
        conn: ConnId,
        sub: usize,
        from: SimTime,
    ) -> impl Iterator<Item = &SubflowPoint> {
        self.subflow_points
            .iter()
            .filter(move |p| p.conn == conn && p.sub == sub && p.at >= from)
    }

    /// Time-averaged congestion window of one subflow over samples taken at
    /// or after `from` (packets). Returns `None` with no samples.
    pub fn mean_cwnd(&self, conn: ConnId, sub: usize, from: SimTime) -> Option<f64> {
        mean(self.subflow_series(conn, sub, from).map(|p| p.cwnd))
    }

    /// Time-averaged smoothed RTT of one subflow at or after `from`,
    /// ignoring pre-first-sample zeros. Returns `None` with no samples.
    pub fn mean_srtt(&self, conn: ConnId, sub: usize, from: SimTime) -> Option<f64> {
        mean(self.subflow_series(conn, sub, from).map(|p| p.srtt).filter(|&s| s > 0.0))
    }

    /// Transitions of one subflow, in order.
    pub fn transitions_of(&self, conn: ConnId, sub: usize) -> Vec<Transition> {
        self.transitions.iter().filter(|t| t.conn == conn && t.sub == sub).copied().collect()
    }
}

fn mean(it: impl Iterator<Item = f64>) -> Option<f64> {
    let mut sum = 0.0;
    let mut n = 0u64;
    for v in it {
        sum += v;
        n += 1;
    }
    if n == 0 {
        None
    } else {
        Some(sum / n as f64)
    }
}

/// Internal probe state carried by the simulator while a probe is enabled.
#[derive(Debug)]
pub(crate) struct ProbeState {
    pub spec: ProbeSpec,
    pub log: ProbeLog,
    /// `watch[conn]` — dense O(1) mirror of `spec.conns`, consulted on
    /// every ACK and RTO while the probe is enabled (a watch-list scan
    /// there would put a per-event O(conns) term back on the hot path).
    pub watch: Vec<bool>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_helpers_handle_empty_and_zero_series() {
        let log = ProbeLog::default();
        assert_eq!(log.mean_cwnd(0, 0, SimTime::ZERO), None);
        let log = ProbeLog {
            subflow_points: vec![
                SubflowPoint {
                    at: SimTime::from_secs(1),
                    conn: 0,
                    sub: 0,
                    cwnd: 4.0,
                    ssthresh: f64::INFINITY,
                    srtt: 0.0,
                    rto: 1.0,
                    backoffs: 0,
                    in_flight: 2.0,
                    phase: CcPhase::SlowStart,
                },
                SubflowPoint {
                    at: SimTime::from_secs(2),
                    conn: 0,
                    sub: 0,
                    cwnd: 8.0,
                    ssthresh: f64::INFINITY,
                    srtt: 0.1,
                    rto: 0.3,
                    backoffs: 0,
                    in_flight: 6.0,
                    phase: CcPhase::SlowStart,
                },
            ],
            ..Default::default()
        };
        // srtt == 0 (no sample yet) must not drag the mean down.
        assert_eq!(log.mean_srtt(0, 0, SimTime::ZERO), Some(0.1));
        assert_eq!(log.mean_cwnd(0, 0, SimTime::ZERO), Some(6.0));
        // `from` filters out the early sample.
        assert_eq!(log.mean_cwnd(0, 0, SimTime::from_secs(2)), Some(8.0));
        assert_eq!(log.mean_cwnd(1, 0, SimTime::ZERO), None);
    }

    #[test]
    fn phase_and_transition_names_are_stable() {
        assert_eq!(CcPhase::SlowStart.as_str(), "slow_start");
        assert_eq!(CcPhase::DelayAvoidance.as_str(), "delay_avoidance");
        assert_eq!(CcPhase::RtoRecovery.as_str(), "rto_recovery");
        assert_eq!(TransitionKind::RtoFired.as_str(), "rto_fired");
        assert_eq!(TransitionKind::Revived.as_str(), "revived");
        assert_eq!(TransitionKind::BackupActivated.as_str(), "backup_activated");
        assert_eq!(TransitionKind::BackupStoodDown.as_str(), "backup_stood_down");
    }
}
