//! Packets as they move through the simulated network.

use crate::cbr::CbrId;
use crate::sim::ConnId;

/// Default packet size in bytes (the paper expresses link rates in both
/// Mb/s and pkt/s; 1500-byte packets make 12 Mb/s ≈ 1000 pkt/s).
pub const DEFAULT_PACKET_SIZE: u32 = 1500;

/// Who owns a packet in flight: a TCP subflow or a CBR source.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PacketOwner {
    /// A data packet of subflow `sub` of connection `conn`, carrying
    /// subflow sequence number `seq` (in packets, starting at 0).
    Subflow {
        /// Owning connection.
        conn: ConnId,
        /// Subflow index within the connection.
        sub: usize,
        /// Subflow-level sequence number, in packets.
        seq: u64,
    },
    /// A packet from a constant-bit-rate source.
    Cbr {
        /// Owning source.
        src: CbrId,
    },
}

/// A packet in flight. Packets are small plain values; their forward path
/// is looked up from the owner so that the per-packet state stays compact.
#[derive(Debug, Clone, Copy)]
pub struct Packet {
    /// Originating sender.
    pub owner: PacketOwner,
    /// Size on the wire, bytes.
    pub size: u32,
    /// Index of the *next* hop in the owner's path the packet must enter
    /// (0 before the first link). Incremented as the packet advances.
    pub hop: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packet_is_small() {
        // Per-packet state stays compact: the event queue holds many.
        assert!(std::mem::size_of::<Packet>() <= 48);
    }

    #[test]
    fn owner_equality() {
        let a = PacketOwner::Subflow { conn: 1, sub: 0, seq: 5 };
        let b = PacketOwner::Subflow { conn: 1, sub: 0, seq: 5 };
        assert_eq!(a, b);
        assert_ne!(a, PacketOwner::Cbr { src: 0 });
    }
}
