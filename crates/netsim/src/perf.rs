//! Simulator performance counters.
//!
//! [`SimPerf`] is a cheap, always-on snapshot of what the event core has
//! done: how many events were scheduled, fired, and cancelled, how deep
//! the queue got, and how fast simulated events are being retired per
//! wall-clock second. The benchmark harness uses it to compare queue
//! backends honestly (same run, same workload) and the invariant tests
//! use it to pin down the event-accounting identities.

// lint:digest-surface — every pub struct here is sim-visible state and must
// implement `DetDigest` (enforced by `cargo xtask lint`). Wall-clock-derived
// fields are `skip`ped from the digest explicitly.

use crate::time::SimTime;
use mptcp_cc::impl_det_digest;
use std::time::Duration;

/// A snapshot of the simulator's event-processing counters, obtained from
/// [`crate::Simulator::perf`].
#[derive(Debug, Clone, Copy, Default)]
pub struct SimPerf {
    /// Events ever pushed onto the queue.
    pub events_scheduled: u64,
    /// Events popped and dispatched (includes cancelled ones).
    pub events_fired: u64,
    /// Fired events that turned out to be stale and did no work: lazy RTO
    /// timers that were disarmed or whose deadline had moved later, and
    /// CBR send events from a superseded on/off generation.
    pub events_cancelled: u64,
    /// Events currently pending in the queue.
    pub pending: u64,
    /// High-water mark of simultaneously pending events.
    pub peak_pending: u64,
    /// Wall-clock time spent inside `run_until`.
    pub wall: Duration,
    /// Simulated time the clock has advanced to.
    pub sim_elapsed: SimTime,
    /// Scripted fault actions executed so far (see
    /// [`crate::Simulator::install_fault_plan`]).
    pub faults_applied: u64,
    /// When the stall watchdog declared the world stalled — no data
    /// delivered for the armed threshold while unfinished connections
    /// existed (see [`crate::Simulator::set_stall_watchdog`]). `run_until`
    /// returned early at this time.
    pub stalled_at: Option<SimTime>,
    /// When the event queue ran dry with unfinished connections left: a
    /// quiesced (deadlocked) world that can never make progress again.
    pub quiesced_at: Option<SimTime>,
    /// Logical allocation events on the simulator's hot paths: scoreboard
    /// ring growth and interval-fallback spills, send-metadata growth,
    /// ACK-pool growth, and per-connection scratch growth. After warmup
    /// this must stop moving — the steady-state ACK path is allocation-
    /// free (asserted by tests). The crate forbids `unsafe`, so this is
    /// tracked by the owning structures rather than a global allocator
    /// hook.
    pub hot_allocs: u64,
}

impl_det_digest!(SimPerf {
    events_scheduled,
    events_fired,
    events_cancelled,
    pending,
    peak_pending,
    sim_elapsed,
    faults_applied,
    stalled_at,
    quiesced_at,
} skip {
    // Wall-clock measurement: legitimately differs run to run and must not
    // perturb the determinism digest.
    wall,
    // Capacity growth is backend-specific (the bitmap and B-tree
    // scoreboards legitimately count different things), so it stays out
    // of the cross-feature determinism digest, like `wall`.
    hot_allocs,
});

/// The workspace's **single audited wall-clock read**.
///
/// Determinism policy (DESIGN.md §3.2d): simulation logic may never consult
/// the host clock — simulated time is [`SimTime`], advanced only by the
/// event loop. The one legitimate use of `Instant` is *measuring ourselves*
/// (the `SimPerf::wall` counter and the benchmark harness), and every such
/// read routes through this helper so `cargo xtask lint` can allow exactly
/// one `Instant::now` site in library code.
pub fn wall_clock() -> std::time::Instant {
    // lint:allow(wall-clock, reason = "the single audited perf-measurement entropy site; every elapsed-time read routes through here")
    std::time::Instant::now()
}

impl SimPerf {
    /// Simulated events dispatched per wall-clock second — the headline
    /// throughput number for backend comparisons. Zero if no wall time has
    /// been accumulated yet.
    pub fn events_per_wall_sec(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs > 0.0 {
            self.events_fired as f64 / secs
        } else {
            0.0
        }
    }

    /// Accounting identity: every scheduled event is either fired or still
    /// pending, and every applied fault was a fired event. Used by the
    /// invariant tests.
    pub fn is_consistent(&self) -> bool {
        self.events_scheduled == self.events_fired + self.pending
            && self.events_cancelled <= self.events_fired
            && self.pending <= self.peak_pending
            && self.faults_applied <= self.events_fired
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_per_wall_sec_handles_zero_wall() {
        let p = SimPerf::default();
        assert_eq!(p.events_per_wall_sec(), 0.0);
    }

    #[test]
    fn consistency_identity() {
        let p = SimPerf {
            events_scheduled: 100,
            events_fired: 60,
            events_cancelled: 5,
            pending: 40,
            peak_pending: 50,
            wall: Duration::from_millis(10),
            sim_elapsed: SimTime::from_secs(1),
            faults_applied: 3,
            stalled_at: None,
            quiesced_at: None,
            hot_allocs: 0,
        };
        assert!(p.is_consistent());
        assert!(p.events_per_wall_sec() > 0.0);
        let bad = SimPerf { faults_applied: 61, ..p };
        assert!(!bad.is_consistent(), "more faults than fired events is impossible");
    }
}
