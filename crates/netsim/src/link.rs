//! Links: rate, propagation delay, drop-tail queue, optional random loss.

// lint:shard-state — links are per-shard state and move onto worker
// threads in the sharded engine; they must stay Send.

use crate::packet::Packet;
use crate::time::SimTime;
use std::collections::VecDeque;

/// Identifier of a link within one [`Simulator`](crate::Simulator).
pub type LinkId = usize;

/// Links a path can hold without spilling to the heap. FatTree/BCube paths
/// top out at 7 hops, so in practice every route is inline.
const INLINE_PATH: usize = 8;

/// A route: the links a packet traverses in order. Stored inline for up to
/// [`INLINE_PATH`] hops so the per-packet `path[hop]` lookup on the
/// simulator's hot path touches no separately-allocated buffer.
#[derive(Debug, Clone)]
pub(crate) enum LinkPath {
    /// The common case: the whole route in the struct itself.
    Inline { len: u8, ids: [LinkId; INLINE_PATH] },
    /// Fallback for unusually long routes.
    Heap(Vec<LinkId>),
}

impl From<Vec<LinkId>> for LinkPath {
    fn from(v: Vec<LinkId>) -> Self {
        if v.len() <= INLINE_PATH {
            let mut ids = [0; INLINE_PATH];
            ids[..v.len()].copy_from_slice(&v);
            LinkPath::Inline { len: crate::cast::path_u8(v.len()), ids }
        } else {
            LinkPath::Heap(v)
        }
    }
}

impl LinkPath {
    pub fn as_slice(&self) -> &[LinkId] {
        match self {
            LinkPath::Inline { len, ids } => &ids[..*len as usize],
            LinkPath::Heap(v) => v,
        }
    }

    pub fn len(&self) -> usize {
        self.as_slice().len()
    }
}

impl std::ops::Index<usize> for LinkPath {
    type Output = LinkId;
    fn index(&self, i: usize) -> &LinkId {
        &self.as_slice()[i]
    }
}

/// Static configuration of a link.
#[derive(Debug, Clone, Copy)]
pub struct LinkSpec {
    /// Transmission rate in bits per second.
    pub rate_bps: f64,
    /// One-way propagation delay.
    pub delay: SimTime,
    /// Drop-tail queue capacity in packets (excluding the packet currently
    /// being serialized).
    pub queue_pkts: usize,
    /// Bernoulli random-loss probability applied on enqueue, for modelling
    /// lossy wireless links. 0.0 for wired links.
    pub loss_prob: f64,
}

impl LinkSpec {
    /// A wired link specified in megabits per second.
    ///
    /// # Panics
    /// Panics on non-positive rate or invalid loss probability.
    pub fn mbps(mbps: f64, delay: SimTime, queue_pkts: usize) -> Self {
        Self::new(mbps * 1e6, delay, queue_pkts)
    }

    /// A link specified in packets per second of 1500-byte packets, the
    /// unit several of the paper's scenarios use (e.g. "capacity 1000
    /// pkt/s" in Fig. 8, "C1 = 250 pkt/s" in §5).
    pub fn pkts_per_sec(pps: f64, delay: SimTime, queue_pkts: usize) -> Self {
        Self::new(pps * crate::packet::DEFAULT_PACKET_SIZE as f64 * 8.0, delay, queue_pkts)
    }

    /// A link with an explicit bit rate.
    pub fn new(rate_bps: f64, delay: SimTime, queue_pkts: usize) -> Self {
        assert!(rate_bps > 0.0 && rate_bps.is_finite(), "rate must be positive");
        Self { rate_bps, delay, queue_pkts, loss_prob: 0.0 }
    }

    /// Add Bernoulli random loss with probability `p` on enqueue. `p = 1`
    /// is valid and models total loss (every packet dropped) — distinct
    /// from a *down* link only in accounting.
    ///
    /// # Panics
    /// Panics unless `0 ≤ p ≤ 1`.
    pub fn with_loss(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "loss probability must be in [0,1]");
        self.loss_prob = p;
        self
    }

    /// Serialization time of a packet of `bytes` bytes on this link.
    pub fn tx_time(&self, bytes: u32) -> SimTime {
        SimTime::from_secs_f64(bytes as f64 * 8.0 / self.rate_bps)
    }
}

/// Counters a link accumulates over a run.
#[derive(Debug, Clone, Copy, Default)]
pub struct LinkStats {
    /// Packets offered to the link (enqueue attempts).
    pub offered: u64,
    /// Packets dropped because the queue was full.
    pub dropped_queue: u64,
    /// Packets dropped by the random-loss process (Bernoulli or
    /// Gilbert–Elliott).
    pub dropped_random: u64,
    /// Packets dropped because the link was down: in-flight arrivals at a
    /// down link plus the queue flushed when the link went down.
    pub dropped_down: u64,
    /// Packets fully transmitted.
    pub transmitted: u64,
    /// Bytes fully transmitted.
    pub bytes: u64,
}

impl LinkStats {
    /// Total packets dropped for any reason: queue overflow
    /// (`dropped_queue`) + random loss (`dropped_random`) + down-link
    /// drops (`dropped_down`).
    pub fn dropped(&self) -> u64 {
        self.dropped_queue + self.dropped_random + self.dropped_down
    }

    /// Loss rate: drops / offered, where drops include **all three**
    /// categories (queue overflow, random loss, down-link). Diff
    /// `dropped_queue` / `dropped_random` / `dropped_down` directly to
    /// attribute loss to congestion vs. channel vs. outage. Zero if
    /// nothing was offered.
    pub fn loss_rate(&self) -> f64 {
        if self.offered == 0 {
            0.0
        } else {
            self.dropped() as f64 / self.offered as f64
        }
    }

    /// Mean utilization over `elapsed`, as delivered bits / capacity.
    pub fn utilization(&self, rate_bps: f64, elapsed: SimTime) -> f64 {
        let secs = elapsed.as_secs_f64();
        // lint:allow(float-ord, reason = "exact zero-guard against division by zero; no ordering or window arithmetic feeds off this comparison")
        if secs == 0.0 {
            0.0
        } else {
            (self.bytes as f64 * 8.0) / (rate_bps * secs)
        }
    }
}

/// Live state of a link's Gilbert–Elliott loss chain, when one is
/// installed by a fault plan.
#[derive(Debug, Clone, Copy)]
pub(crate) struct GeState {
    pub params: crate::fault::GeParams,
    /// Whether the chain is currently in the bad (bursty-loss) state.
    pub bad: bool,
}

/// Runtime state of a link.
#[derive(Debug)]
pub(crate) struct Link {
    /// Configuration; mutable so scenarios can change rate/loss mid-run
    /// (mobility, Fig. 17).
    pub spec: LinkSpec,
    /// The rate the link returns to when a brownout ends; updated by
    /// lasting rate changes ([`crate::FaultAction::SetRate`]).
    pub nominal_rate_bps: f64,
    /// The queue capacity restored when a queue squeeze ends.
    pub nominal_queue_pkts: usize,
    /// Waiting packets (the packet in service is *not* in this queue).
    pub queue: VecDeque<Packet>,
    /// Whether the transmitter is currently serializing a packet.
    pub busy: bool,
    /// The packet currently being serialized, if any.
    pub in_service: Option<Packet>,
    /// If `true`, packets are dropped at enqueue regardless of queue space —
    /// models total loss of connectivity (walking out of WiFi coverage).
    pub down: bool,
    /// Gilbert–Elliott chain, when a bursty-loss episode is active.
    pub ge: Option<GeState>,
    /// Counters.
    pub stats: LinkStats,
}

impl Link {
    pub(crate) fn new(spec: LinkSpec) -> Self {
        Self {
            spec,
            nominal_rate_bps: spec.rate_bps,
            nominal_queue_pkts: spec.queue_pkts,
            queue: VecDeque::new(),
            busy: false,
            in_service: None,
            down: false,
            ge: None,
            stats: LinkStats::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pkts_per_sec_matches_mbps_for_1500_byte_packets() {
        let a = LinkSpec::pkts_per_sec(1000.0, SimTime::ZERO, 100);
        let b = LinkSpec::mbps(12.0, SimTime::ZERO, 100);
        assert!((a.rate_bps - b.rate_bps).abs() < 1e-6);
    }

    #[test]
    fn tx_time_of_1500_bytes_at_12mbps_is_1ms() {
        let l = LinkSpec::mbps(12.0, SimTime::ZERO, 100);
        assert_eq!(l.tx_time(1500), SimTime::from_millis(1));
    }

    #[test]
    fn loss_rate_counts_all_three_kinds_of_drops() {
        let s = LinkStats {
            offered: 100,
            dropped_queue: 5,
            dropped_random: 3,
            dropped_down: 2,
            transmitted: 90,
            bytes: 0,
        };
        assert_eq!(s.dropped(), 10);
        assert!((s.loss_rate() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn total_loss_probability_is_expressible() {
        let l = LinkSpec::mbps(1.0, SimTime::ZERO, 10).with_loss(1.0);
        assert_eq!(l.loss_prob, 1.0);
    }

    #[test]
    fn empty_link_has_zero_loss() {
        assert_eq!(LinkStats::default().loss_rate(), 0.0);
    }

    #[test]
    #[should_panic]
    fn invalid_loss_probability_rejected() {
        let _ = LinkSpec::mbps(1.0, SimTime::ZERO, 10).with_loss(1.5);
    }
}
