//! The simulator: event loop, connections, and the world's mutable state.
//!
//! In sharded mode (see [`crate::shard`]) one `Simulator` instance is one
//! shard of a larger world and may be moved onto a worker thread, so all
//! state here must stay `Send` by construction.
// lint:shard-state

use crate::arena::{ColdSubflow, FlowArena, NOT_RESIDENT};
use crate::cbr::{CbrId, CbrSource, CbrSpec};
use crate::event::{AckInfo, EventKind, EventQueue, QueueBackend};
use crate::fault::{FaultAction, FaultPlan};
use crate::link::{GeState, Link, LinkId, LinkPath, LinkSpec, LinkStats};
use crate::packet::{Packet, PacketOwner, DEFAULT_PACKET_SIZE};
use crate::perf::SimPerf;
use crate::probe::{
    CcPhase, LinkPoint, ProbeLog, ProbeSpec, ProbeState, SubflowPoint, Transition, TransitionKind,
};
use crate::stats::{ConnectionStats, SubflowStats};
use crate::tcp::{SubflowReceiver, SubflowSender, TcpParams};
use crate::time::SimTime;
use mptcp_cc::{AlgorithmKind, CcDriver, MultipathCc, PureAdapter, SubflowSnapshot};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{BTreeMap, VecDeque};

/// Identifier of a connection within one [`Simulator`].
pub type ConnId = usize;

/// One subflow's static configuration.
#[derive(Debug, Clone)]
pub struct SubflowSpec {
    /// Forward path: links traversed in order.
    pub path: Vec<LinkId>,
    /// Extra fixed delay added to the ACK return (models reverse-path /
    /// wide-area latency beyond the forward links' propagation delays).
    pub extra_rtt: SimTime,
    /// Backup priority (MP_JOIN `B` bit): the subflow is established and
    /// kept warm but carries no data while any primary subflow is usable.
    pub backup: bool,
}

impl SubflowSpec {
    /// A subflow over `path` with no extra return delay.
    pub fn new(path: Vec<LinkId>) -> Self {
        Self { path, extra_rtt: SimTime::ZERO, backup: false }
    }

    /// Add extra fixed return delay.
    pub fn extra_rtt(mut self, d: SimTime) -> Self {
        self.extra_rtt = d;
        self
    }

    /// Mark the subflow as backup priority.
    pub fn backup(mut self) -> Self {
        self.backup = true;
        self
    }
}

/// How the connection's congestion controller is chosen.
enum CcChoice {
    Kind(AlgorithmKind),
    Custom(Box<dyn MultipathCc>),
}

impl std::fmt::Debug for CcChoice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CcChoice::Kind(k) => write!(f, "Kind({k:?})"),
            CcChoice::Custom(c) => write!(f, "Custom({})", c.name()),
        }
    }
}

/// Configuration of a (possibly multipath) connection, built fluently:
///
/// ```
/// # use mptcp_netsim::*;
/// # use mptcp_cc::AlgorithmKind;
/// let spec = ConnectionSpec::bulk(AlgorithmKind::Mptcp)
///     .path(vec![0])
///     .path(vec![1])
///     .start(SimTime::from_secs(1));
/// ```
pub struct ConnectionSpec {
    cc: CcChoice,
    pub(crate) subflows: Vec<SubflowSpec>,
    pub(crate) start: SimTime,
    /// Number of data packets to transfer; `None` = unlimited (bulk).
    size_pkts: Option<u64>,
    packet_size: u32,
    tcp: TcpParams,
    /// Run a pure rule through the stateful driver path (see
    /// [`ConnectionSpec::adapter_wrapped`]).
    force_adapter: bool,
}

impl ConnectionSpec {
    /// A long-lived bulk-transfer connection using a named algorithm.
    pub fn bulk(kind: AlgorithmKind) -> Self {
        Self {
            cc: CcChoice::Kind(kind),
            subflows: Vec::new(),
            start: SimTime::ZERO,
            size_pkts: None,
            packet_size: DEFAULT_PACKET_SIZE,
            tcp: TcpParams::default(),
            force_adapter: false,
        }
    }

    /// A finite transfer of `pkts` packets (for flow-arrival workloads).
    pub fn sized(kind: AlgorithmKind, pkts: u64) -> Self {
        let mut s = Self::bulk(kind);
        s.size_pkts = Some(pkts.max(1));
        s
    }

    /// A bulk connection with a custom congestion controller (for
    /// ablations).
    pub fn custom(cc: Box<dyn MultipathCc>) -> Self {
        let mut s = Self::bulk(AlgorithmKind::Mptcp);
        s.cc = CcChoice::Custom(cc);
        s
    }

    /// Add a subflow over `path` (shorthand for a default [`SubflowSpec`]).
    pub fn path(mut self, path: Vec<LinkId>) -> Self {
        self.subflows.push(SubflowSpec::new(path));
        self
    }

    /// Add a fully-specified subflow.
    pub fn subflow(mut self, sf: SubflowSpec) -> Self {
        self.subflows.push(sf);
        self
    }

    /// Mark the most recently added subflow as backup priority.
    ///
    /// # Panics
    /// Panics if no subflow has been added yet.
    pub fn backup(mut self) -> Self {
        // lint:allow(panic-free, reason = "builder API, runs at scenario construction before any event fires; the misuse is documented under # Panics and must fail loudly, not simulate a half-built world")
        self.subflows.last_mut().expect("backup() needs a preceding path()/subflow()").backup =
            true;
        self
    }

    /// Set the start time.
    pub fn start(mut self, at: SimTime) -> Self {
        self.start = at;
        self
    }

    /// Set the packet size in bytes.
    pub fn packet_size(mut self, bytes: u32) -> Self {
        self.packet_size = bytes;
        self
    }

    /// The configured packet size (admission-time timing computations).
    pub(crate) fn packet_bytes(&self) -> u32 {
        self.packet_size
    }

    /// Override the TCP parameters.
    pub fn tcp(mut self, params: TcpParams) -> Self {
        self.tcp = params;
        self
    }

    /// Run a *pure* named algorithm through the stateful driver path, via
    /// [`PureAdapter`]. A differential-testing hook: the adapter is
    /// float-exact, so a wrapped connection must produce bit-identical
    /// digests to the plain pure path — the property that pins the two
    /// driver arms together. No effect on natively stateful kinds or
    /// custom controllers.
    pub fn adapter_wrapped(mut self) -> Self {
        self.force_adapter = true;
        self
    }
}

/// Per-subflow admission-time timing, computed against whichever link
/// table (local or world) owns the subflow's path.
#[derive(Debug, Clone, Copy)]
pub(crate) struct SubflowTiming {
    /// Fixed delay from delivery at the destination to the ACK reaching
    /// the sender (reverse propagation + any extra RTT).
    pub(crate) ack_delay: SimTime,
    /// Initial RTT estimate handed to the sender.
    pub(crate) rtt_hint: f64,
    /// Conservative bound on how long after its send a packet — and the
    /// ACK it triggers — can still be in flight: the sum over hops of
    /// propagation delay plus a full drop-tail queue's serialization
    /// time, plus the ACK return delay. Feeds the flow-lifecycle
    /// retirement grace period (see [`Simulator::set_flow_lifecycle`]).
    pub(crate) straggler: SimTime,
}

/// Exactly-once bookkeeping for a data sequence number that exists (or may
/// exist) on more than one subflow because of reinjection.
#[derive(Debug, Clone, Copy, Default)]
struct ReinjectEntry {
    /// The dsn has reached the receiver (on any subflow copy).
    delivered: bool,
    /// The dsn has been acknowledged (on any subflow copy).
    acked: bool,
}

/// Runtime state of a connection.
///
/// Subflow state does not live here: every connection's subflows occupy a
/// contiguous window of the simulator-level [`FlowArena`] (struct-of-arrays
/// layout). Cold rows are addressed by the stable `(sub_base, sub_count)`
/// window; the hot columns by the recyclable `(hot_base, hot_gen)` window,
/// which under flow lifecycle is acquired at start and released one
/// straggler-grace after the transfer completes.
struct Connection {
    cc: CcDriver,
    /// First index of this connection's *cold* subflow rows in the arena
    /// (stable for the lifetime of the world).
    sub_base: u32,
    /// Number of subflows.
    sub_count: u32,
    /// First index of this connection's *hot* subflow columns in the
    /// arena, or [`NOT_RESIDENT`] (lifecycle mode: not yet started, or
    /// already retired).
    hot_base: u32,
    /// Generation of the hot window (stale-handle detection in debug
    /// builds; recycled windows bump it).
    hot_gen: u32,
    /// Lifecycle mode: the hot window has been released back to the
    /// arena and `final_stats` froze the subflow statistics.
    retired: bool,
    /// How long after the transfer completes the hot window may be
    /// recycled: twice the worst subflow's straggler bound, so every
    /// in-flight packet/ACK and stale timer has drained first.
    retire_grace: SimTime,
    /// Subflow statistics frozen at retirement (capacity reserved at
    /// admission so the retire path does not allocate).
    final_stats: Vec<SubflowStats>,
    /// Connection id carried inside packets: equal to this connection's
    /// own id in a standalone simulator, the world-level id in a sharded
    /// one (translated back to the local id at the delivery boundary).
    gid: ConnId,
    packet_size: u32,
    /// Remaining new packets to inject (finite flows).
    budget: Option<u64>,
    started_at: SimTime,
    started: bool,
    finished_at: Option<SimTime>,
    rr_next: usize,
    /// Scratch buffer for congestion-control snapshots, reused across ACKs
    /// (this is on the per-packet hot path).
    snap_buf: Vec<SubflowSnapshot>,
    /// Next connection-level data sequence number to hand to a subflow.
    next_dsn: u64,
    /// Data sequence numbers stranded on a potentially-failed subflow,
    /// waiting to be reinjected on a live one (each dsn is harvested at
    /// most once — see `reinject_reg`).
    reinject_queue: VecDeque<u64>,
    /// Per-dsn delivery/ack dedupe for data that was ever queued for
    /// reinjection. Data never reinjected has exactly one subflow copy and
    /// needs no entry here.
    reinject_reg: BTreeMap<u64, ReinjectEntry>,
    /// Distinct data packets that reached the receiver (each dsn counted
    /// once, however many copies arrived).
    data_delivered: u64,
    /// Distinct data packets acknowledged (each dsn counted once).
    data_acked: u64,
    /// Arrivals of a dsn whose data the receiver already had via another
    /// subflow copy (the waste reinjection trades for robustness).
    dup_data_arrivals: u64,
    /// Reinjected copies handed to live subflows.
    reinjections_sent: u64,
    /// Scratch for per-ACK newly-acknowledged dsns (hot path, reused).
    acked_dsn_scratch: Vec<u64>,
    /// Scratch for harvesting a failed subflow's stranded `(seq, dsn)`
    /// pairs (reused; see `SubflowSender::stranded`).
    stranded_scratch: Vec<(u64, u64)>,
    /// Capacity-growth events of the scratch buffers above (allocation
    /// accounting for [`SimPerf::hot_allocs`]).
    scratch_allocs: u64,
    /// Failover state machine: whether backup subflows currently carry
    /// data (every usable primary has failed).
    backup_active: bool,
    /// When the first unanswered primary RTO fired with no healthy
    /// primary recovery since — the failover clock. Cleared by primary
    /// cumulative ACK progress.
    primary_down_since: Option<SimTime>,
    /// Latency of the most recent backup activation: time from the
    /// failover clock starting to data moving onto the backups.
    failover_latency: Option<SimTime>,
    /// Times the failover state machine engaged the backups.
    backup_activations: u64,
    /// Addresses advertised to this connection at runtime
    /// ([`FaultAction::AddrAdd`] / [`Simulator::admin_open_subflow`]).
    addr_advertised: u64,
    /// Subflows (re)opened at runtime.
    subflows_joined: u64,
    /// Subflows administratively closed at runtime.
    subflows_closed: u64,
}

impl Connection {
    fn has_data(&self) -> bool {
        self.budget.is_none_or(|b| b > 0)
    }

    /// This connection's *cold* row window in the arena (stable indices).
    fn subs(&self) -> std::ops::Range<usize> {
        self.sub_base as usize..(self.sub_base + self.sub_count) as usize
    }

    /// This connection's *hot* column window in the arena. Only valid
    /// while resident (`hot_base != NOT_RESIDENT`).
    fn hots(&self) -> std::ops::Range<usize> {
        debug_assert!(self.hot_base != NOT_RESIDENT, "hot window accessed while not resident");
        self.hot_base as usize..(self.hot_base + self.sub_count) as usize
    }

    /// Whether the hot window is currently resident in the arena.
    fn resident(&self) -> bool {
        self.hot_base != NOT_RESIDENT
    }

    /// Refresh the snapshot scratch buffer from the live subflow state
    /// (`tx`/`cold` are this connection's hot and cold arena windows).
    fn refresh_snapshots(&mut self, tx: &[SubflowSender], cold: &[ColdSubflow]) {
        refresh_snap_buf(&mut self.snap_buf, &mut self.scratch_allocs, tx, cold);
    }
}

/// One subflow's congestion-control snapshot: clamped window and RTT, plus
/// whether the subflow is administratively live. Closed subflows stay in
/// the arena (indices are stable) but must not count toward live-path
/// weights — this flag is what lets EWTCP's equal split and the OLIA/BALIA
/// path sums track churn.
fn snapshot_of(tx: &SubflowSender, closed: bool) -> SubflowSnapshot {
    SubflowSnapshot::new(tx.cwnd.max(1e-9), tx.cc_rtt().max(1e-6)).active(!closed)
}

/// [`Connection::refresh_snapshots`] as a free function over the individual
/// fields, so the ACK growth loop can refresh while the controller field is
/// mutably borrowed (disjoint field borrows).
/// Warm per-connection scratch storage donated by a retired connection
/// and re-tenanted at the next admission (flow-lifecycle mode): the
/// capacities these vectors grew during their previous tenancy carry
/// over, so steady-state flow churn never re-pays their first growth
/// (`scratch_allocs` stays flat).
#[derive(Default)]
pub(crate) struct ConnScratch {
    snap_buf: Vec<SubflowSnapshot>,
    acked_dsn: Vec<u64>,
    stranded: Vec<(u64, u64)>,
    reinject_queue: VecDeque<u64>,
}

fn refresh_snap_buf(
    snap_buf: &mut Vec<SubflowSnapshot>,
    scratch_allocs: &mut u64,
    tx: &[SubflowSender],
    cold: &[ColdSubflow],
) {
    let cap = snap_buf.capacity();
    snap_buf.clear();
    snap_buf.extend(tx.iter().zip(cold).map(|(t, c)| snapshot_of(t, c.closed)));
    if snap_buf.capacity() != cap {
        *scratch_allocs += 1;
    }
}

/// One subflow's statistics, read from its live hot and cold state (shared
/// by [`Simulator::connection_stats`] and the lifecycle retirement
/// snapshot, so a retired flow's frozen stats are bit-identical to what a
/// live read at the same instant would have produced).
fn subflow_stats(tx: &SubflowSender, rx: &SubflowReceiver, cold: &ColdSubflow) -> SubflowStats {
    SubflowStats {
        delivered_pkts: rx.delivered(),
        sent_pkts: cold.sent_pkts,
        retransmits: tx.stats.retransmits,
        timeouts: tx.stats.timeouts,
        fast_recoveries: tx.stats.fast_recoveries,
        cwnd: tx.cwnd,
        ssthresh: tx.ssthresh,
        srtt: tx.srtt.unwrap_or(0.0),
        rto: tx.rto_secs(),
        in_flight: tx.pipe(),
        rto_backoffs: tx.backoffs,
        potentially_failed: tx.potentially_failed(),
        backup: cold.backup,
        closed: cold.closed,
    }
}

/// Per-shard routing context installed by [`crate::ShardedSimulator`]:
/// the immutable world map (global link/connection placement and path hop
/// tables) plus this shard's cross-shard outbox buffers, one per
/// destination shard. Outboxes are flushed into the shared mailbox matrix
/// at the epoch barrier, never touched concurrently.
pub(crate) struct ShardCtx {
    /// This shard's index in the world.
    pub(crate) id: u32,
    /// Shared immutable placement/routing tables.
    pub(crate) map: std::sync::Arc<crate::shard::WorldMap>,
    /// Buffered cross-shard arrivals generated during the current epoch,
    /// indexed by destination shard.
    pub(crate) outbox: Vec<Vec<(SimTime, Packet)>>,
}

/// The deterministic discrete-event simulator. See the crate docs for the
/// model scope and an end-to-end example.
pub struct Simulator {
    now: SimTime,
    queue: EventQueue,
    links: Vec<Link>,
    conns: Vec<Connection>,
    /// Subflow arena: every connection's subflows live contiguously here
    /// in struct-of-arrays columns — [`Connection`] holds dense
    /// `(base, count)` windows instead of per-connection heap vectors, so
    /// the per-ACK hot state of the whole world sits in a few contiguous
    /// slabs while routes/flags/stats are parked in cold rows. Under
    /// [`Self::set_flow_lifecycle`], hot windows are recycled across flow
    /// churn.
    flows: FlowArena,
    /// Flow-lifecycle mode: defer hot-window acquisition to start and
    /// recycle the window one straggler-grace after the flow finishes.
    lifecycle: bool,
    /// Warm scratch storage donated by retired connections, re-tenanted
    /// at the next admission (lifecycle mode only).
    scratch_pool: Vec<ConnScratch>,
    /// Routing context installed by [`crate::ShardedSimulator`] when this
    /// simulator is one shard of a partitioned world; `None` standalone.
    shard: Option<Box<ShardCtx>>,
    cbrs: Vec<CbrSource>,
    rng: StdRng,
    /// Small uniform jitter added to each ACK's return delay, to break the
    /// phase-locking artifacts drop-tail FIFO simulations are prone to.
    ack_jitter: SimTime,
    events_processed: u64,
    /// Dispatched events that were stale no-ops (lazy RTO timers, CBR sends
    /// from a superseded generation).
    events_cancelled: u64,
    /// Wall-clock nanoseconds spent inside `run_until`.
    wall_nanos: u64,
    /// Installed fault actions, indexed by `EventKind::Fault { idx }`.
    fault_actions: Vec<FaultAction>,
    /// Fault actions executed so far.
    faults_applied: u64,
    /// Stall watchdog threshold: if set and no data is delivered for this
    /// long while unfinished connections exist, `run_until` stops early
    /// and reports via [`SimPerf::stalled_at`].
    stall_watchdog: Option<SimTime>,
    /// Last time any data packet reached a destination (watchdog input).
    last_progress: SimTime,
    /// When the watchdog declared the world stalled, if it did.
    stalled_at: Option<SimTime>,
    /// When the event queue ran dry with unfinished connections left — a
    /// quiesced/deadlocked world (nothing will ever make progress again).
    quiesced_at: Option<SimTime>,
    /// Telemetry probe, when enabled (boxed: the log can grow large and
    /// the disabled case should cost one pointer).
    probe: Option<Box<ProbeState>>,
    /// Whether a `ProbeTick` event is pending in the queue (at most one,
    /// like the lazy RTO timers).
    probe_tick_pending: bool,
    /// Pool of in-flight ACK payloads; `EventKind::AckArrive` carries a
    /// slot index into this table instead of the ~100-byte payload itself,
    /// keeping queued events small and the steady-state ACK path free of
    /// allocation (slots are recycled through `ack_free`).
    ack_pool: Vec<AckInfo>,
    /// Recycled `ack_pool` slots.
    ack_free: Vec<u32>,
    /// Capacity-growth events of the ACK pool (allocation accounting).
    ack_pool_allocs: u64,
    /// Simulator-wide [`ConnectionSpec::adapter_wrapped`]: wrap every
    /// subsequently added pure named algorithm in the stateful adapter
    /// (differential-testing hook for topology builders that construct
    /// their own specs).
    force_adapter_all: bool,
}

impl Simulator {
    /// Create a simulator with a deterministic RNG seed. Two simulators
    /// constructed with the same seed and fed the same calls produce
    /// identical histories.
    pub fn new(seed: u64) -> Self {
        Self::with_backend(seed, QueueBackend::default())
    }

    /// Create a simulator with an explicit event-queue backend. Backends
    /// are observationally identical — same seed, same history — so this
    /// only matters for performance measurement.
    pub fn with_backend(seed: u64, backend: QueueBackend) -> Self {
        Self {
            now: SimTime::ZERO,
            queue: EventQueue::with_backend(backend),
            links: Vec::new(),
            conns: Vec::new(),
            flows: FlowArena::default(),
            lifecycle: false,
            scratch_pool: Vec::new(),
            shard: None,
            cbrs: Vec::new(),
            rng: StdRng::seed_from_u64(seed),
            ack_jitter: SimTime::from_micros(100),
            events_processed: 0,
            events_cancelled: 0,
            wall_nanos: 0,
            fault_actions: Vec::new(),
            faults_applied: 0,
            stall_watchdog: None,
            last_progress: SimTime::ZERO,
            stalled_at: None,
            quiesced_at: None,
            probe: None,
            probe_tick_pending: false,
            ack_pool: Vec::new(),
            ack_free: Vec::new(),
            ack_pool_allocs: 0,
            force_adapter_all: false,
        }
    }

    /// Apply [`ConnectionSpec::adapter_wrapped`] to every connection added
    /// from now on: pure named algorithms run through the stateful driver
    /// via the float-exact [`PureAdapter`]. A differential-testing hook —
    /// the histories must be bit-identical either way — that reaches specs
    /// built inside topology constructors.
    pub fn wrap_pure_in_adapter(&mut self, on: bool) {
        self.force_adapter_all = on;
    }

    /// Park an ACK payload in the pool, returning the slot to carry in the
    /// event. Slots are recycled, so after warmup this never allocates.
    fn alloc_ack(&mut self, info: AckInfo) -> u32 {
        match self.ack_free.pop() {
            Some(slot) => {
                self.ack_pool[slot as usize] = info;
                slot
            }
            None => {
                if self.ack_pool.len() == self.ack_pool.capacity() {
                    self.ack_pool_allocs += 1;
                }
                self.ack_pool.push(info);
                crate::cast::slab_u32(self.ack_pool.len() - 1)
            }
        }
    }

    /// Read an ACK payload out of the pool and recycle its slot.
    fn take_ack(&mut self, slot: u32) -> AckInfo {
        if self.ack_free.len() == self.ack_free.capacity() {
            self.ack_pool_allocs += 1;
        }
        self.ack_free.push(slot);
        self.ack_pool[slot as usize]
    }

    /// Override the ACK-return jitter (0 disables it).
    pub fn set_ack_jitter(&mut self, jitter: SimTime) {
        self.ack_jitter = jitter;
    }

    /// Enable flow-lifecycle mode: connections acquire their hot subflow
    /// columns at start instead of admission, and release them one
    /// straggler-grace period after finishing, so the arena recycles hot
    /// windows across flow churn instead of growing with every admission.
    /// Off by default; with it off, histories (and [`DetDigest`] digests)
    /// are bit-identical to the pre-arena layout.
    ///
    /// # Panics
    /// Panics if connections have already been added — the mode governs
    /// admission-time layout and cannot change mid-run.
    pub fn set_flow_lifecycle(&mut self, on: bool) {
        assert!(
            self.conns.is_empty(),
            "set_flow_lifecycle must be called before any add_connection"
        );
        self.lifecycle = on;
    }

    /// Number of hot subflow slots currently materialized in the arena
    /// (resident + free-listed; cold rows are not counted).
    pub fn arena_hot_slots(&self) -> usize {
        self.flows.hot_len()
    }

    /// How many hot-window acquisitions were served by recycling a
    /// previously released window instead of growing the arena.
    pub fn arena_hot_reuses(&self) -> u64 {
        self.flows.reuses()
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total events processed so far (a cheap progress/perf metric).
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// The event-queue backend this simulator runs on.
    pub fn queue_backend(&self) -> QueueBackend {
        self.queue.backend()
    }

    /// Snapshot of the event core's performance counters.
    pub fn perf(&self) -> SimPerf {
        SimPerf {
            events_scheduled: self.queue.scheduled(),
            events_fired: self.events_processed,
            events_cancelled: self.events_cancelled,
            pending: self.queue.len() as u64,
            peak_pending: self.queue.peak_pending() as u64,
            wall: std::time::Duration::from_nanos(self.wall_nanos),
            sim_elapsed: self.now,
            faults_applied: self.faults_applied,
            stalled_at: self.stalled_at,
            quiesced_at: self.quiesced_at,
            hot_allocs: self.hot_allocs(),
        }
    }

    /// Sum of all logical allocation events on the hot paths — see
    /// [`SimPerf::hot_allocs`]. Alloc counters survive hot-window
    /// recycling (`reset_for_reuse` keeps them), so this stays monotone
    /// and flat-in-steady-state under flow churn.
    fn hot_allocs(&self) -> u64 {
        let conns: u64 = self.conns.iter().map(|c| c.scratch_allocs).sum();
        let tx: u64 = self.flows.tx.iter().map(|t| t.alloc_events()).sum();
        let rx: u64 = self.flows.rx.iter().map(|r| r.alloc_events()).sum();
        self.ack_pool_allocs + conns + tx + rx + self.flows.alloc_events()
    }

    // ------------------------------------------------------------------
    // World construction
    // ------------------------------------------------------------------

    /// Add a link; returns its id.
    pub fn add_link(&mut self, spec: LinkSpec) -> LinkId {
        self.links.push(Link::new(spec));
        self.links.len() - 1
    }

    /// Add a connection; returns its id. Transmission begins at the spec's
    /// start time.
    ///
    /// # Panics
    /// Panics if the spec has no subflows or references unknown links.
    pub fn add_connection(&mut self, spec: ConnectionSpec) -> ConnId {
        assert!(!spec.subflows.is_empty(), "connection needs at least one subflow");
        let packet_size = spec.packet_size;
        let delays: Vec<SubflowTiming> = spec
            .subflows
            .iter()
            .map(|sf| {
                assert!(!sf.path.is_empty(), "subflow path must traverse at least one link");
                let mut fwd = SimTime::ZERO;
                let mut residence = SimTime::ZERO;
                for &l in &sf.path {
                    assert!(l < self.links.len(), "unknown link {l}");
                    let spec = self.links[l].spec;
                    fwd += spec.delay;
                    let drain = spec.tx_time(packet_size).as_nanos();
                    residence += spec.delay
                        + SimTime(drain.saturating_mul(spec.queue_pkts as u64 + 1));
                }
                let ack_delay = fwd + sf.extra_rtt;
                let rtt_hint = (fwd + ack_delay).as_secs_f64().max(1e-4);
                SubflowTiming { ack_delay, rtt_hint, straggler: residence + ack_delay }
            })
            .collect();
        let gid = self.conns.len();
        self.add_connection_inner(spec, gid, &delays)
    }

    /// Add a connection whose ACK delays and RTT hints were computed
    /// against the sharded world map instead of this shard's local link
    /// table (the spec's paths carry *global* link ids, which are neither
    /// validated nor resolvable here). `gid` is the world-level id stamped
    /// into packets.
    pub(crate) fn add_connection_sharded(
        &mut self,
        spec: ConnectionSpec,
        gid: ConnId,
        delays: &[SubflowTiming],
    ) -> ConnId {
        assert!(!spec.subflows.is_empty(), "connection needs at least one subflow");
        assert_eq!(spec.subflows.len(), delays.len());
        self.add_connection_inner(spec, gid, delays)
    }

    /// Shared tail of connection admission: `delays` holds one
    /// [`SubflowTiming`] per subflow, already computed against whichever
    /// link table (local or world) owns the paths.
    fn add_connection_inner(
        &mut self,
        spec: ConnectionSpec,
        gid: ConnId,
        delays: &[SubflowTiming],
    ) -> ConnId {
        let n = spec.subflows.len();
        let wrap = spec.force_adapter || self.force_adapter_all;
        let cc = match spec.cc {
            CcChoice::Kind(kind) if wrap && !kind.is_stateful() => {
                CcDriver::Stateful(Box::new(PureAdapter::new(kind.build(n))))
            }
            CcChoice::Kind(kind) => kind.build_cc(n),
            CcChoice::Custom(cc) => CcDriver::Pure(cc),
        };
        let sub_base = crate::cast::slab_u32(self.flows.cold.len());
        let mut worst_straggler = SimTime::ZERO;
        for (sf, t) in spec.subflows.into_iter().zip(delays) {
            worst_straggler = worst_straggler.max(t.straggler);
            self.flows.push_cold(ColdSubflow {
                path: LinkPath::from(sf.path),
                ack_delay: t.ack_delay,
                rtt_hint: t.rtt_hint,
                params: spec.tcp,
                backup: sf.backup,
                closed: false,
                sent_pkts: 0,
            });
        }
        // Flow lifecycle: hot state materializes at start (ConnStart) so
        // slots freed by earlier retirements can be recycled; otherwise
        // acquire now, which appends fresh columns in admission order
        // (hot index == cold index, the pre-lifecycle layout).
        let (hot_base, hot_gen) = if self.lifecycle {
            (NOT_RESIDENT, 0)
        } else {
            self.flows.acquire_hot(sub_base as usize, n, false, spec.size_pkts.unwrap_or(u64::MAX))
        };
        // Twice the worst subflow's straggler bound: nothing addressed to
        // this flow can still be in flight once the grace expires.
        let retire_grace = SimTime(worst_straggler.as_nanos().saturating_mul(2))
            + self.ack_jitter
            + SimTime::from_millis(1);
        let conn = Connection {
            cc,
            sub_base,
            sub_count: crate::cast::slab_u32(n),
            hot_base,
            hot_gen,
            retired: false,
            retire_grace,
            final_stats: if self.lifecycle { Vec::with_capacity(n) } else { Vec::new() },
            gid,
            snap_buf: Vec::new(),
            packet_size: spec.packet_size,
            budget: spec.size_pkts,
            started_at: spec.start,
            started: false,
            finished_at: None,
            rr_next: 0,
            next_dsn: 0,
            reinject_queue: VecDeque::new(),
            reinject_reg: BTreeMap::new(),
            data_delivered: 0,
            data_acked: 0,
            dup_data_arrivals: 0,
            reinjections_sent: 0,
            acked_dsn_scratch: Vec::new(),
            stranded_scratch: Vec::new(),
            scratch_allocs: 0,
            backup_active: false,
            primary_down_since: None,
            failover_latency: None,
            backup_activations: 0,
            addr_advertised: 0,
            subflows_joined: 0,
            subflows_closed: 0,
        };
        self.conns.push(conn);
        let id = self.conns.len() - 1;
        let start = spec.start.max(self.now);
        self.queue.push(start, EventKind::ConnStart { conn: id });
        // New work revives a previously quiesced world.
        self.quiesced_at = None;
        id
    }

    /// Add a CBR source; returns its id.
    ///
    /// # Panics
    /// Panics if the spec references unknown links.
    pub fn add_cbr(&mut self, spec: CbrSpec) -> CbrId {
        for &l in &spec.path {
            assert!(l < self.links.len(), "unknown link {l}");
        }
        let start = spec.start.max(self.now);
        self.cbrs.push(CbrSource::new(spec));
        let id = self.cbrs.len() - 1;
        self.queue.push(start, EventKind::CbrToggle { src: id });
        id
    }

    // ------------------------------------------------------------------
    // Scenario scripting (call between `run_until` steps)
    // ------------------------------------------------------------------

    /// Change a link's rate (bits per second), e.g. for mobility traces.
    /// This is a lasting change: it also becomes the link's new nominal
    /// rate (the rate a [`FaultAction::Brownout`] scales and
    /// [`FaultAction::RestoreRate`] returns to).
    pub fn set_link_rate_bps(&mut self, link: LinkId, rate_bps: f64) {
        assert!(rate_bps > 0.0);
        self.links[link].spec.rate_bps = rate_bps;
        self.links[link].nominal_rate_bps = rate_bps;
    }

    /// Change a link's random-loss probability. The closed range `[0, 1]`
    /// is accepted: `p = 1` models total loss on an otherwise-up link.
    pub fn set_link_loss(&mut self, link: LinkId, p: f64) {
        assert!((0.0..=1.0).contains(&p), "loss probability must be in [0,1], got {p}");
        self.links[link].spec.loss_prob = p;
    }

    /// Take a link down (all arriving packets dropped, queue flushed) or
    /// bring it back up. Both the flushed queue and subsequent arrivals
    /// count as [`LinkStats::dropped_down`], not queue overflow.
    pub fn set_link_down(&mut self, link: LinkId, down: bool) {
        let l = &mut self.links[link];
        l.down = down;
        if down {
            l.stats.dropped_down += l.queue.len() as u64;
            l.queue.clear();
        }
    }

    /// Install a fault plan: every `(time, action)` pair becomes an event
    /// on the simulator's own queue, so faults execute at their exact
    /// nanosecond in deterministic order with all other events — results
    /// do not depend on how `run_until` is stepped. Actions scheduled in
    /// the past execute at the current time. Plans can be installed
    /// incrementally; actions from all installed plans coexist.
    ///
    /// # Panics
    /// Panics if any action references an unknown link.
    pub fn install_fault_plan(&mut self, plan: &FaultPlan) {
        for &(at, action) in plan.actions() {
            assert!(action.link() < self.links.len(), "unknown link {}", action.link());
            let idx = self.fault_actions.len();
            self.fault_actions.push(action);
            self.queue.push(at.max(self.now), EventKind::Fault { idx });
        }
        self.quiesced_at = None;
    }

    /// Arm the stall watchdog: if no data packet reaches any destination
    /// for `threshold` of simulated time while unfinished connections
    /// exist, `run_until` stops early and reports the stall through
    /// [`SimPerf::stalled_at`]. `None` disarms (the default).
    pub fn set_stall_watchdog(&mut self, threshold: Option<SimTime>) {
        self.stall_watchdog = threshold;
        self.last_progress = self.now;
    }

    /// Force a CBR source on or off (for externally scripted burst traces).
    pub fn set_cbr_on(&mut self, src: CbrId, on: bool) {
        let s = &mut self.cbrs[src];
        if s.on == on {
            return;
        }
        s.on = on;
        s.gen += 1;
        if on {
            let gen = s.gen;
            self.queue.push(self.now, EventKind::CbrSend { src, gen });
        }
    }

    /// Stop a connection injecting new data (in-flight data still drains
    /// and is retransmitted as needed; the connection finishes when all of
    /// it is acknowledged). Models a flow terminating, as in the §2.4
    /// load-change scenario (Fig. 5).
    pub fn stop_connection(&mut self, conn: ConnId) {
        self.conns[conn].budget = Some(0);
        self.try_finish(conn);
    }

    /// Administratively close subflow `sub` of `conn` — the REMOVE_ADDR
    /// path-management signal: the peer withdrew the subflow's address, so
    /// the subflow stops carrying data immediately, its RTO timer is
    /// disarmed, and its unacknowledged data is queued for reinjection on
    /// the remaining subflows (exactly once, shared with the
    /// potentially-failed harvest). Idempotent; closing every subflow
    /// leaves the connection to the stall/quiesce detectors, exactly like
    /// an all-paths outage.
    pub fn admin_close_subflow(&mut self, conn: ConnId, sub: usize) {
        assert!(sub < self.conns[conn].sub_count as usize, "unknown subflow {sub}");
        if self.conns[conn].retired {
            return;
        }
        let base = self.conns[conn].sub_base as usize;
        if self.flows.cold[base + sub].closed {
            return;
        }
        self.flows.cold[base + sub].closed = true;
        if self.conns[conn].resident() {
            let hot = self.conns[conn].hot_base as usize;
            self.flows.rto_deadline[hot + sub] = None;
        }
        self.conns[conn].subflows_closed += 1;
        self.harvest_stranded(conn, sub);
        self.pump(conn);
    }

    /// (Re)advertise subflow `sub`'s address to `conn` — the ADD_ADDR
    /// path-management signal. Counted per advertisement; if the subflow
    /// was administratively closed it reopens and rejoins the data
    /// scheduler (sender state intact, like a subflow-level rejoin), with
    /// its RTO re-armed if it still holds in-flight data. A no-op beyond
    /// the counter for a subflow that was never closed.
    pub fn admin_open_subflow(&mut self, conn: ConnId, sub: usize) {
        assert!(sub < self.conns[conn].sub_count as usize, "unknown subflow {sub}");
        if self.conns[conn].retired {
            return;
        }
        self.conns[conn].addr_advertised += 1;
        let base = self.conns[conn].sub_base as usize;
        if !self.flows.cold[base + sub].closed {
            return;
        }
        self.flows.cold[base + sub].closed = false;
        self.conns[conn].subflows_joined += 1;
        if self.conns[conn].resident() {
            let hot = self.conns[conn].hot_base as usize;
            if self.flows.tx[hot + sub].pipe() > 0.0 {
                self.schedule_rto(conn, sub);
            }
        }
        self.pump(conn);
    }

    /// Enable the telemetry probe: every `spec.interval` the simulator
    /// records one [`SubflowPoint`] per watched subflow and one
    /// [`LinkPoint`] per watched link, plus congestion transitions as they
    /// happen. Empty watch lists mean "everything that exists now".
    ///
    /// Enabling is history-neutral: sampling draws no randomness and sends
    /// nothing, so the packet-level run is bit-identical with the probe on
    /// or off. While enabled, the pending tick keeps the event queue
    /// non-empty, so quiesce detection ([`SimPerf::quiesced_at`]) is
    /// inhibited; the stall watchdog still works. Enabling again replaces
    /// the current probe and discards its log.
    ///
    /// # Panics
    /// Panics if the interval is zero or a watch list references an
    /// unknown connection or link.
    pub fn enable_probe(&mut self, spec: ProbeSpec) {
        assert!(spec.interval > SimTime::ZERO, "probe interval must be positive");
        let mut spec = spec;
        if spec.conns.is_empty() {
            spec.conns = (0..self.conns.len()).collect();
        }
        if spec.links.is_empty() {
            spec.links = (0..self.links.len()).collect();
        }
        for &c in &spec.conns {
            assert!(c < self.conns.len(), "unknown connection {c}");
        }
        for &l in &spec.links {
            assert!(l < self.links.len(), "unknown link {l}");
        }
        let first = self.now + spec.interval;
        let mut watch = vec![false; self.conns.len()];
        for &c in &spec.conns {
            watch[c] = true;
        }
        self.probe = Some(Box::new(ProbeState { spec, log: ProbeLog::default(), watch }));
        if !self.probe_tick_pending {
            self.probe_tick_pending = true;
            self.queue.push(first, EventKind::ProbeTick);
        }
    }

    /// Disable the probe and return everything it collected (or `None` if
    /// no probe was enabled). The pending tick becomes a stale no-op.
    pub fn disable_probe(&mut self) -> Option<ProbeLog> {
        self.probe.take().map(|p| p.log)
    }

    /// The currently collected probe log, if a probe is enabled.
    pub fn probe_log(&self) -> Option<&ProbeLog> {
        self.probe.as_deref().map(|p| &p.log)
    }

    /// Zero all link counters (discard a warm-up period).
    pub fn reset_link_stats(&mut self) {
        for l in &mut self.links {
            l.stats = LinkStats::default();
        }
    }

    // ------------------------------------------------------------------
    // Measurement
    // ------------------------------------------------------------------

    /// A link's accumulated counters.
    pub fn link_stats(&self, link: LinkId) -> LinkStats {
        self.links[link].stats
    }

    /// A link's current spec (rate/delay/queue/loss).
    pub fn link_spec(&self, link: LinkId) -> LinkSpec {
        self.links[link].spec
    }

    /// Number of links in the world.
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// Number of connections in the world.
    pub fn connection_count(&self) -> usize {
        self.conns.len()
    }

    /// A connection's statistics snapshot. Valid in every lifecycle state:
    /// resident flows read the live hot columns; retired flows return the
    /// snapshot frozen at retirement; never-started flows (lifecycle mode,
    /// before `ConnStart`) synthesize the untouched-sender view from the
    /// cold row.
    pub fn connection_stats(&self, conn: ConnId) -> ConnectionStats {
        let c = &self.conns[conn];
        let subflows: Vec<SubflowStats> = if c.retired {
            c.final_stats.clone()
        } else if c.resident() {
            c.hots()
                .zip(c.subs())
                .map(|(h, s)| {
                    subflow_stats(&self.flows.tx[h], &self.flows.rx[h], &self.flows.cold[s])
                })
                .collect()
        } else {
            c.subs()
                .map(|s| {
                    let cold = &self.flows.cold[s];
                    let tx = SubflowSender::new(cold.params, cold.rtt_hint);
                    subflow_stats(&tx, &SubflowReceiver::default(), cold)
                })
                .collect()
        };
        ConnectionStats {
            subflows,
            packet_size: c.packet_size,
            started_at: c.started_at,
            finished_at: c.finished_at,
            data_sent: c.next_dsn,
            data_delivered: c.data_delivered,
            data_acked: c.data_acked,
            dup_data_arrivals: c.dup_data_arrivals,
            reinjections_sent: c.reinjections_sent,
            reinject_pending: c.reinject_queue.len() as u64,
            backup_active: c.backup_active,
            backup_activations: c.backup_activations,
            addr_advertised: c.addr_advertised,
            subflows_joined: c.subflows_joined,
            subflows_closed: c.subflows_closed,
            failover_latency: c.failover_latency,
        }
    }

    /// Packets delivered by a CBR source.
    pub fn cbr_delivered(&self, src: CbrId) -> u64 {
        self.cbrs[src].delivered
    }

    // ------------------------------------------------------------------
    // Event loop
    // ------------------------------------------------------------------

    /// Run the world forward to `horizon` (inclusive); the clock ends at
    /// exactly `horizon`.
    ///
    /// Two pathological-world detectors report through [`Self::perf`]:
    ///
    /// * if a [stall watchdog](Self::set_stall_watchdog) is armed and no
    ///   data is delivered for the threshold while unfinished connections
    ///   exist, the loop stops early (the clock stays at the stall time)
    ///   and `SimPerf::stalled_at` is set;
    /// * if the event queue runs dry before `horizon` with unfinished
    ///   connections left — a deadlocked world that can never progress —
    ///   `SimPerf::quiesced_at` records when.
    pub fn run_until(&mut self, horizon: SimTime) {
        assert!(horizon >= self.now, "time cannot run backwards");
        let started = crate::perf::wall_clock();
        let mut stalled = false;
        while let Some(ev) = self.queue.pop_before(horizon) {
            debug_assert!(ev.at >= self.now, "event from the past");
            self.now = ev.at;
            self.events_processed += 1;
            self.dispatch(ev.kind);
            if let Some(threshold) = self.stall_watchdog {
                if self.now.saturating_sub(self.last_progress) > threshold {
                    if self.has_unfinished_connections() {
                        if self.stalled_at.is_none() {
                            self.stalled_at = Some(self.now);
                        }
                        stalled = true;
                        break;
                    }
                    // Idle but with nothing left to do: not a stall.
                    self.last_progress = self.now;
                }
            }
        }
        if !stalled {
            if self.queue.len() == 0
                && self.quiesced_at.is_none()
                && self.has_unfinished_connections()
            {
                self.quiesced_at = Some(self.now);
            }
            self.now = horizon;
        }
        self.wall_nanos += started.elapsed().as_nanos() as u64;
    }

    /// Whether any started, unfinished connection still has data it is
    /// trying to move (the condition under which silence means deadlock).
    fn has_unfinished_connections(&self) -> bool {
        self.conns.iter().any(|c| c.started && c.finished_at.is_none())
    }

    fn dispatch(&mut self, kind: EventKind) {
        match kind {
            EventKind::TxDone { link } => self.on_tx_done(link),
            EventKind::Arrive { pkt } => self.on_arrive(pkt),
            EventKind::AckArrive { conn, sub, ack } => {
                let ack = self.take_ack(ack);
                self.on_ack(conn, sub, ack);
            }
            EventKind::RtoFire { conn, sub } => self.on_rto(conn, sub),
            EventKind::ConnStart { conn } => self.on_conn_start(conn),
            EventKind::ConnRetire { conn } => self.on_conn_retire(conn),
            EventKind::CbrSend { src, gen } => self.on_cbr_send(src, gen),
            EventKind::CbrToggle { src } => self.on_cbr_toggle(src),
            EventKind::Fault { idx } => self.apply_fault(idx),
            EventKind::ProbeTick => self.on_probe_tick(),
        }
    }

    /// Take one probe sample of every watched subflow and link, then
    /// re-schedule the tick. Stale ticks (probe disabled since the event
    /// was queued) are no-ops, like lazy RTO timers.
    fn on_probe_tick(&mut self) {
        let Some(probe) = self.probe.as_deref_mut() else {
            self.probe_tick_pending = false;
            self.events_cancelled += 1;
            return;
        };
        let at = self.now;
        for &conn in &probe.spec.conns {
            let c = &self.conns[conn];
            // Non-resident flows (not yet started, or retired, under flow
            // lifecycle) have no live hot state to sample.
            if !c.resident() {
                continue;
            }
            for (sub, h) in c.hots().enumerate() {
                let tx = &self.flows.tx[h];
                let phase = if tx.in_recovery {
                    if tx.rto_recovery {
                        CcPhase::RtoRecovery
                    } else {
                        CcPhase::FastRecovery
                    }
                } else if tx.in_slow_start() {
                    CcPhase::SlowStart
                } else if c.cc.delay_based() {
                    CcPhase::DelayAvoidance
                } else {
                    CcPhase::CongestionAvoidance
                };
                probe.log.subflow_points.push(SubflowPoint {
                    at,
                    conn,
                    sub,
                    cwnd: tx.cwnd,
                    ssthresh: tx.ssthresh,
                    srtt: tx.srtt.unwrap_or(0.0),
                    rto: tx.rto_secs(),
                    backoffs: tx.backoffs,
                    in_flight: tx.pipe(),
                    phase,
                });
            }
        }
        for &link in &probe.spec.links {
            let l = &self.links[link];
            probe.log.link_points.push(LinkPoint {
                at,
                link,
                queue_depth: l.queue.len() + usize::from(l.in_service.is_some()),
                offered: l.stats.offered,
                dropped_queue: l.stats.dropped_queue,
                dropped_random: l.stats.dropped_random,
                dropped_down: l.stats.dropped_down,
                transmitted: l.stats.transmitted,
            });
        }
        let next = at + probe.spec.interval;
        self.queue.push(next, EventKind::ProbeTick);
    }

    /// Append a congestion transition to the probe log (the caller already
    /// checked the connection is watched).
    fn record_transition(&mut self, conn: ConnId, sub: usize, kind: TransitionKind) {
        if let Some(p) = self.probe.as_deref_mut() {
            p.log.transitions.push(Transition { at: self.now, conn, sub, kind });
        }
    }

    /// Whether the probe is enabled and watching `conn` — the single
    /// branch congestion hooks pay when telemetry is disabled.
    fn probe_watches(&self, conn: ConnId) -> bool {
        self.probe.as_deref().is_some_and(|p| p.watch.get(conn).copied().unwrap_or(false))
    }

    /// Execute one installed fault action. Reuses the public scripting
    /// mutators so scripted and event-driven faults behave identically.
    fn apply_fault(&mut self, idx: usize) {
        let action = self.fault_actions[idx];
        self.faults_applied += 1;
        match action {
            FaultAction::Down { link } => self.set_link_down(link, true),
            FaultAction::Up { link } => self.set_link_down(link, false),
            FaultAction::SetRate { link, bps } => self.set_link_rate_bps(link, bps),
            FaultAction::Brownout { link, factor } => {
                let l = &mut self.links[link];
                l.spec.rate_bps = l.nominal_rate_bps * factor;
            }
            FaultAction::RestoreRate { link } => {
                let l = &mut self.links[link];
                l.spec.rate_bps = l.nominal_rate_bps;
            }
            FaultAction::SetLoss { link, p } => self.set_link_loss(link, p),
            FaultAction::ShrinkQueue { link, pkts } => {
                let l = &mut self.links[link];
                l.spec.queue_pkts = pkts;
                // Drop-tail semantics: excess waiting packets are shed from
                // the back of the queue immediately.
                while l.queue.len() > pkts {
                    l.queue.pop_back();
                    l.stats.dropped_queue += 1;
                }
            }
            FaultAction::RestoreQueue { link } => {
                let l = &mut self.links[link];
                l.spec.queue_pkts = l.nominal_queue_pkts;
            }
            FaultAction::GilbertElliott { link, params } => {
                self.links[link].ge = params.map(|params| GeState { params, bad: false });
            }
            FaultAction::AddrRemove { conn, sub, .. } => {
                let conn = self.local_conn(conn);
                self.admin_close_subflow(conn, sub);
            }
            FaultAction::AddrAdd { conn, sub, .. } => {
                let conn = self.local_conn(conn);
                self.admin_open_subflow(conn, sub);
            }
        }
    }

    /// The connection id to use against local tables for a packet-carried
    /// id (packets carry world-level ids in sharded mode).
    fn local_conn(&self, conn: ConnId) -> ConnId {
        match &self.shard {
            Some(ctx) => ctx.map.local_of(conn),
            None => conn,
        }
    }

    fn path_link(&self, pkt: &Packet) -> LinkId {
        match pkt.owner {
            PacketOwner::Subflow { conn, sub, .. } => match &self.shard {
                // Sharded: the hop table yields this shard's local link id
                // (the router below guarantees we only ever look up hops
                // that live here).
                Some(ctx) => ctx.map.hop(conn, sub, pkt.hop).1 as LinkId,
                None => {
                    // Cold rows are stable across hot-window recycling, so
                    // straggler packets of retired flows still route.
                    let c = &self.conns[conn];
                    self.flows.cold[c.sub_base as usize + sub].path[pkt.hop]
                }
            },
            PacketOwner::Cbr { src } => self.cbrs[src].path[pkt.hop],
        }
    }

    fn path_len(&self, pkt: &Packet) -> usize {
        match pkt.owner {
            PacketOwner::Subflow { conn, sub, .. } => match &self.shard {
                Some(ctx) => ctx.map.path_len(conn, sub),
                None => {
                    let c = &self.conns[conn];
                    self.flows.cold[c.sub_base as usize + sub].path.len()
                }
            },
            PacketOwner::Cbr { src } => self.cbrs[src].path.len(),
        }
    }

    /// Offer a packet to the link at `pkt.hop` of its path.
    fn enqueue_packet(&mut self, pkt: Packet) {
        let link_id = self.path_link(&pkt);
        let (down, loss_prob) = {
            let l = &self.links[link_id];
            (l.down, l.spec.loss_prob)
        };
        self.links[link_id].stats.offered += 1;
        if down {
            self.links[link_id].stats.dropped_down += 1;
            return;
        }
        // Gilbert–Elliott bursty loss, when a chain is installed: one
        // transition attempt per offered packet, then a loss draw in the
        // resulting state. Both draws come from the simulator RNG, in
        // packet order — fully deterministic for a fixed seed.
        if let Some(mut ge) = self.links[link_id].ge {
            let flip = if ge.bad { ge.params.p_exit_bad } else { ge.params.p_enter_bad };
            if flip > 0.0 && self.rng.gen::<f64>() < flip {
                ge.bad = !ge.bad;
                self.links[link_id].ge = Some(ge);
            }
            let p = if ge.bad { ge.params.loss_bad } else { ge.params.loss_good };
            if p > 0.0 && self.rng.gen::<f64>() < p {
                self.links[link_id].stats.dropped_random += 1;
                return;
            }
        }
        if loss_prob > 0.0 && self.rng.gen::<f64>() < loss_prob {
            self.links[link_id].stats.dropped_random += 1;
            return;
        }
        let l = &mut self.links[link_id];
        if l.busy {
            if l.queue.len() >= l.spec.queue_pkts {
                l.stats.dropped_queue += 1;
            } else {
                l.queue.push_back(pkt);
            }
        } else {
            l.busy = true;
            l.in_service = Some(pkt);
            let done = self.now + l.spec.tx_time(pkt.size);
            self.queue.push(done, EventKind::TxDone { link: link_id });
        }
    }

    fn on_tx_done(&mut self, link: LinkId) {
        let (mut pkt, delay) = {
            let l = &mut self.links[link];
            // lint:allow(panic-free, reason = "a TxDone with an idle link means the event history itself is corrupt; continuing would silently fork determinism, so this must fail loudly")
            let pkt = l.in_service.take().expect("TxDone with no packet in service");
            l.stats.transmitted += 1;
            l.stats.bytes += pkt.size as u64;
            if let Some(next) = l.queue.pop_front() {
                l.in_service = Some(next);
                let done = self.now + l.spec.tx_time(next.size);
                self.queue.push(done, EventKind::TxDone { link });
            } else {
                l.busy = false;
            }
            (pkt, l.spec.delay)
        };
        pkt.hop += 1;
        let at = self.now + delay;
        // Sharded routing decision: after the hop advance the packet's
        // next stop is either the link at `hop` or, past the last link,
        // delivery at the owning connection. Either may live in another
        // shard; if so the arrival goes to that shard's outbox instead of
        // the local queue. Arrival time is `now + delay >= now + lookahead`
        // (the lookahead is the minimum delay over boundary-crossing
        // links), so cross-shard arrivals always land in a later epoch
        // than the one being processed — the causality invariant.
        if let Some(ctx) = &mut self.shard {
            if let PacketOwner::Subflow { conn, sub, .. } = pkt.owner {
                let dst = if pkt.hop < ctx.map.path_len(conn, sub) {
                    ctx.map.hop(conn, sub, pkt.hop).0
                } else {
                    ctx.map.owner_of(conn)
                };
                if dst != ctx.id {
                    ctx.outbox[dst as usize].push((at, pkt));
                    return;
                }
            }
        }
        self.queue.push(at, EventKind::Arrive { pkt });
    }

    fn on_arrive(&mut self, pkt: Packet) {
        if pkt.hop < self.path_len(&pkt) {
            self.enqueue_packet(pkt);
            return;
        }
        // Delivered to the destination. From here on everything is local:
        // the packet-carried (possibly world-level) connection id is
        // translated once, and the ACK event carries the local id.
        match pkt.owner {
            PacketOwner::Subflow { conn, sub, seq } => {
                let conn = self.local_conn(conn);
                if self.conns[conn].retired {
                    // Straggler copy of a retired flow: its hot window may
                    // already belong to another connection, so drop it
                    // before touching any hot column.
                    self.events_cancelled += 1;
                    return;
                }
                self.last_progress = self.now;
                let base = self.conns[conn].sub_base as usize;
                let hot = self.conns[conn].hot_base as usize;
                {
                    let c = &mut self.conns[conn];
                    let FlowArena { tx, rx, .. } = &mut self.flows;
                    // Exactly-once data-level accounting. A first-time
                    // subflow arrival implies the packet is not yet
                    // cum-acked there, so its dsn metadata still exists.
                    if !rx[hot + sub].contains(seq) {
                        let dsn =
                            // lint:allow(panic-free, reason = "exactly-once accounting: !rx.contains(seq) just above implies the dsn metadata is still retained; losing it means data-level bookkeeping already diverged and must fail loudly")
                            tx[hot + sub].dsn_of(seq).expect("unacked first arrival keeps its metadata");
                        match c.reinject_reg.get_mut(&dsn) {
                            Some(e) if e.delivered => c.dup_data_arrivals += 1,
                            Some(e) => {
                                e.delivered = true;
                                c.data_delivered += 1;
                            }
                            // Never reinjected: this is the only copy.
                            None => c.data_delivered += 1,
                        }
                    }
                }
                let (cum, _dup, sacks) = self.flows.rx[hot + sub].on_data(seq);
                let jitter = if self.ack_jitter > SimTime::ZERO {
                    SimTime(self.rng.gen_range(0..=self.ack_jitter.as_nanos()))
                } else {
                    SimTime::ZERO
                };
                let back = self.now + self.flows.cold[base + sub].ack_delay + jitter;
                let ack = self.alloc_ack(AckInfo { cum, sacks });
                self.queue.push(back, EventKind::AckArrive { conn, sub, ack });
            }
            PacketOwner::Cbr { src } => {
                self.cbrs[src].delivered += 1;
            }
        }
    }

    fn on_conn_start(&mut self, conn: ConnId) {
        let c = &mut self.conns[conn];
        if c.started {
            return;
        }
        c.started = true;
        c.started_at = self.now;
        if !c.resident() {
            // Flow lifecycle: materialize the hot window now, preferring a
            // window recycled from an earlier retirement over fresh slots.
            let (hot_base, hot_gen) = self.flows.acquire_hot(
                c.sub_base as usize,
                c.sub_count as usize,
                true,
                c.budget.unwrap_or(u64::MAX),
            );
            c.hot_base = hot_base;
            c.hot_gen = hot_gen;
            // Re-tenant warm scratch storage from a retired flow (the
            // admission-time vectors are empty, so nothing is dropped).
            if let Some(scratch) = self.scratch_pool.pop() {
                c.snap_buf = scratch.snap_buf;
                c.acked_dsn_scratch = scratch.acked_dsn;
                c.stranded_scratch = scratch.stranded;
                c.reinject_queue = scratch.reinject_queue;
            }
        }
        // A newly transmitting connection counts as progress (otherwise a
        // late-starting flow trips the watchdog on its first event).
        self.last_progress = self.now;
        self.pump(conn);
    }

    /// Retire a finished flow one straggler-grace after completion: freeze
    /// its statistics snapshot and return the hot window to the arena's
    /// free lists. Only ever scheduled in [flow-lifecycle
    /// mode](Self::set_flow_lifecycle).
    fn on_conn_retire(&mut self, conn: ConnId) {
        let c = &mut self.conns[conn];
        if c.retired || !c.resident() {
            // A second stop/finish raced the first retirement.
            self.events_cancelled += 1;
            return;
        }
        debug_assert!(c.finished_at.is_some(), "retire scheduled only at finish");
        for (h, s) in c.hots().zip(c.subs()) {
            let st = subflow_stats(&self.flows.tx[h], &self.flows.rx[h], &self.flows.cold[s]);
            c.final_stats.push(st);
        }
        let (hot_base, n, gen) = (c.hot_base, c.sub_count as usize, c.hot_gen);
        // The window's warmed envelope: the *smallest* per-lane send-
        // metadata capacity, so the class promises what every lane holds.
        let env = c.hots().map(|h| self.flows.tx[h].meta_capacity()).min().unwrap_or(0);
        c.retired = true;
        c.hot_base = NOT_RESIDENT;
        // Donate the warm scratch storage to the next admitted flow so
        // churn never re-pays the first-growth allocations.
        let mut scratch = ConnScratch {
            snap_buf: std::mem::take(&mut c.snap_buf),
            acked_dsn: std::mem::take(&mut c.acked_dsn_scratch),
            stranded: std::mem::take(&mut c.stranded_scratch),
            reinject_queue: std::mem::take(&mut c.reinject_queue),
        };
        scratch.snap_buf.clear();
        scratch.acked_dsn.clear();
        scratch.stranded.clear();
        scratch.reinject_queue.clear();
        self.scratch_pool.push(scratch);
        self.flows.release_hot(hot_base, n, gen, env);
    }

    fn on_ack(&mut self, conn: ConnId, sub: usize, ack: AckInfo) {
        if self.conns[conn].retired {
            // Straggler ACK of a retired flow: its hot window may already
            // belong to another connection (the pool slot was recycled by
            // `take_ack` in dispatch, so nothing leaks).
            self.events_cancelled += 1;
            return;
        }
        let watching = self.probe_watches(conn);
        let mut transitions: [Option<TransitionKind>; 3] = [None; 3];
        let (arm, progressed) = {
            // Split borrow: the connection record and the arena columns are
            // distinct `Simulator` fields, so both can be held mutably.
            let c = &mut self.conns[conn];
            let FlowArena { tx, cold, .. } = &mut self.flows;
            let txs = &mut tx[c.hots()];
            let colds = &cold[c.subs()];
            c.acked_dsn_scratch.clear();
            let (was_recovering, was_failed) = if watching {
                (txs[sub].in_recovery, txs[sub].potentially_failed())
            } else {
                (false, false)
            };
            let scratch_cap = c.acked_dsn_scratch.capacity();
            let outcome =
                txs[sub].on_ack(ack.cum, &ack.sacks, self.now, &mut c.acked_dsn_scratch);
            if c.acked_dsn_scratch.capacity() != scratch_cap {
                c.scratch_allocs += 1;
            }
            if watching {
                if outcome.entered_recovery {
                    transitions[0] = Some(TransitionKind::EnterFastRecovery);
                }
                if was_recovering && !txs[sub].in_recovery {
                    transitions[1] = Some(TransitionKind::ExitRecovery);
                }
                if was_failed && !txs[sub].potentially_failed() {
                    transitions[2] = Some(TransitionKind::Revived);
                }
            }
            if outcome.newly_acked > 0 && txs[sub].growth_allowed() {
                // Grow once per newly acked packet: slow start adds one
                // packet per ACKed packet; congestion avoidance defers to
                // the coupled algorithm with a fresh snapshot each step
                // (windows are interdependent). Only *this* subflow's
                // window can change between steps, so the full snapshot
                // refresh happens once and later steps patch a single
                // entry in place instead of re-reading every subflow.
                let mut refreshed = false;
                match &mut c.cc {
                    CcDriver::Pure(cc) => {
                        for _ in 0..outcome.newly_acked {
                            let amount = if txs[sub].in_slow_start() {
                                1.0
                            } else {
                                if refreshed {
                                    c.snap_buf[sub] = snapshot_of(&txs[sub], colds[sub].closed);
                                } else {
                                    refresh_snap_buf(
                                        &mut c.snap_buf,
                                        &mut c.scratch_allocs,
                                        txs,
                                        colds,
                                    );
                                    refreshed = true;
                                }
                                cc.increase_per_ack(sub, &c.snap_buf)
                            };
                            txs[sub].grow(amount);
                        }
                    }
                    CcDriver::Stateful(cc) => {
                        // Stateful hooks fire in slow start too (base-RTT
                        // filters, hybrid slow start watch every ACK), so
                        // the snapshot is kept fresh on every step here.
                        let floor = cc.min_window();
                        let now = self.now.as_secs_f64();
                        for _ in 0..outcome.newly_acked {
                            if refreshed {
                                c.snap_buf[sub] = snapshot_of(&txs[sub], colds[sub].closed);
                            } else {
                                refresh_snap_buf(
                                    &mut c.snap_buf,
                                    &mut c.scratch_allocs,
                                    txs,
                                    colds,
                                );
                                refreshed = true;
                            }
                            let in_ss = txs[sub].in_slow_start();
                            let act = cc.on_ack(sub, &c.snap_buf, now, in_ss);
                            txs[sub].grow(act.grow);
                            if act.grow < 0.0 && txs[sub].cwnd < floor {
                                // `grow` has no lower bound of its own;
                                // delay-based shrinks must not dig below
                                // the probing floor.
                                txs[sub].cwnd = floor;
                            }
                            if act.exit_slow_start && in_ss {
                                // Hybrid/Vegas slow-start exit: pin
                                // ssthresh to the current window so the
                                // sender runs congestion avoidance from
                                // the next ACK on.
                                let w = txs[sub].cwnd;
                                txs[sub].set_ssthresh(w);
                            }
                        }
                    }
                }
            }
            if outcome.entered_recovery {
                // One multiplicative decrease per loss episode, with the
                // level chosen by the coupled algorithm (for stateful
                // controllers this is also the loss-epoch hook).
                c.refresh_snapshots(txs, colds);
                let level =
                    c.cc.clamped_window_after_loss(sub, &c.snap_buf, self.now.as_secs_f64());
                let floor = c.cc.min_window();
                txs[sub].shrink_to(level, floor);
            }
            (outcome.rearm_rto, outcome.newly_acked > 0)
        };
        for kind in transitions.into_iter().flatten() {
            self.record_transition(conn, sub, kind);
        }
        // ACK progress on a primary subflow closes an open failover
        // episode before it engages the backups (with them engaged, the
        // stand-down in `update_failover` clears the clock instead).
        if progressed && !self.conns[conn].backup_active {
            let base = self.conns[conn].sub_base as usize;
            if !self.flows.cold[base + sub].backup {
                self.conns[conn].primary_down_since = None;
            }
        }
        // Data-level acknowledgment accounting: each dsn counts once,
        // across all subflow copies a reinjection may have created.
        {
            let c = &mut self.conns[conn];
            let scratch = std::mem::take(&mut c.acked_dsn_scratch);
            for &dsn in &scratch {
                match c.reinject_reg.get_mut(&dsn) {
                    Some(e) if e.acked => {}
                    Some(e) => {
                        e.acked = true;
                        c.data_acked += 1;
                    }
                    None => c.data_acked += 1,
                }
            }
            c.acked_dsn_scratch = scratch;
        }
        match arm {
            Some(true) => self.schedule_rto(conn, sub),
            Some(false) => {
                let hot = self.conns[conn].hot_base as usize;
                self.flows.rto_deadline[hot + sub] = None;
            }
            None => {}
        }
        self.try_finish(conn);
        self.pump(conn);
    }

    fn on_rto(&mut self, conn: ConnId, sub: usize) {
        if self.conns[conn].retired {
            // Straggler timer of a retired flow: its hot window may
            // already belong to another connection, so drop the event
            // before touching any hot column.
            self.events_cancelled += 1;
            return;
        }
        let base = self.conns[conn].sub_base as usize;
        let hot = self.conns[conn].hot_base as usize;
        self.flows.rto_event_at[hot + sub] = None;
        if self.conns[conn].finished_at.is_some() {
            // The transfer already completed at the data level (possibly
            // via reinjection around this very subflow); stop the timer
            // churn instead of probing a dead path forever.
            self.flows.rto_deadline[hot + sub] = None;
            self.events_cancelled += 1;
            return;
        }
        if self.flows.cold[base + sub].closed {
            // Administratively closed since the event was queued: the
            // address is gone, so there is no path left to probe.
            self.flows.rto_deadline[hot + sub] = None;
            self.events_cancelled += 1;
            return;
        }
        match self.flows.rto_deadline[hot + sub] {
            None => {
                // Disarmed since the event was queued.
                self.events_cancelled += 1;
                return;
            }
            Some(d) if d > self.now => {
                // The deadline moved later (ACK progress): lazily re-queue.
                self.events_cancelled += 1;
                self.queue.push(d, EventKind::RtoFire { conn, sub });
                self.flows.rto_event_at[hot + sub] = Some(d);
                return;
            }
            Some(_) => {}
        }
        let newly_failed = {
            let c = &mut self.conns[conn];
            let FlowArena { tx, cold, rto_deadline, .. } = &mut self.flows;
            let txs = &mut tx[c.hots()];
            let colds = &cold[c.subs()];
            // The coupled decrease sets the slow-start threshold; the
            // window itself collapses to the probing floor.
            c.refresh_snapshots(txs, colds);
            let level = c.cc.clamped_window_after_loss(sub, &c.snap_buf, self.now.as_secs_f64());
            let floor = c.cc.min_window();
            let was_failed = txs[sub].potentially_failed();
            if !txs[sub].on_rto(floor) {
                rto_deadline[hot + sub] = None;
                return; // spurious
            }
            txs[sub].set_ssthresh(level);
            // Failover clock: the first unanswered RTO on a primary
            // subflow, while the backups are cold and no earlier episode
            // is still open, marks when the primaries started failing —
            // the paper's failover latency is measured from this instant
            // to data moving onto the backups.
            if !colds[sub].backup && !c.backup_active && c.primary_down_since.is_none() {
                c.primary_down_since = Some(self.now);
            }
            !was_failed && txs[sub].potentially_failed()
        };
        if self.probe_watches(conn) {
            self.record_transition(conn, sub, TransitionKind::RtoFired);
            if newly_failed {
                self.record_transition(conn, sub, TransitionKind::PotentiallyFailed);
            }
        }
        if newly_failed {
            // The subflow just crossed the potentially-failed threshold:
            // queue its stranded data for reinjection on live subflows.
            self.harvest_stranded(conn, sub);
        }
        self.schedule_rto(conn, sub);
        self.pump(conn);
    }

    /// Move a newly potentially-failed subflow's unacknowledged data into
    /// the reinjection queue, registering each dsn for exactly-once
    /// delivery/ack accounting. A dsn already registered (harvested from a
    /// previous failure episode) is never queued twice.
    fn harvest_stranded(&mut self, conn: ConnId, sub: usize) {
        let c = &mut self.conns[conn];
        if c.sub_count < 2 || !c.resident() {
            // Single path: nowhere to reinject, RTO probing is the only
            // recovery. Non-resident (lifecycle, pre-start): no sender
            // state exists yet, so nothing can be stranded.
            return;
        }
        let hot = c.hot_base as usize;
        let FlowArena { tx, rx, .. } = &mut self.flows;
        let mut stranded = std::mem::take(&mut c.stranded_scratch);
        let cap = stranded.capacity();
        tx[hot + sub].stranded(&mut stranded);
        if stranded.capacity() != cap {
            c.scratch_allocs += 1;
        }
        for &(seq, dsn) in &stranded {
            if c.reinject_reg.contains_key(&dsn) {
                continue;
            }
            // The copy may already sit in the remote reassembly buffer
            // with its ACK lost in the outage — seed the registry with
            // ground truth so a reinjected copy's arrival is not counted
            // as a fresh delivery.
            let delivered = rx[hot + sub].contains(seq);
            c.reinject_reg.insert(dsn, ReinjectEntry { delivered, acked: false });
            c.reinject_queue.push_back(dsn);
        }
        c.stranded_scratch = stranded;
    }

    /// (Re)arm the conceptual RTO at `now + RTO` and make sure an event is
    /// queued at or before that deadline. At most one pending event per
    /// subflow: an early firing re-queues itself (see [`Self::on_rto`]).
    fn schedule_rto(&mut self, conn: ConnId, sub: usize) {
        let c = &self.conns[conn];
        let (cold_idx, hot_idx) = (c.sub_base as usize + sub, c.hot_base as usize + sub);
        if self.flows.cold[cold_idx].closed {
            // No address, no timer: a closed subflow never probes.
            return;
        }
        let deadline = self.now + self.flows.tx[hot_idx].rto_interval();
        self.flows.rto_deadline[hot_idx] = Some(deadline);
        let needs_event = match self.flows.rto_event_at[hot_idx] {
            None => true,
            Some(at) => at > deadline,
        };
        if needs_event {
            self.flows.rto_event_at[hot_idx] = Some(deadline);
            self.queue.push(deadline, EventKind::RtoFire { conn, sub });
        }
    }

    fn send_subflow_packet(&mut self, conn: ConnId, sub: usize, seq: u64, retransmit: bool) {
        if retransmit {
            let hot = self.conns[conn].hot_base as usize;
            self.flows.tx[hot + sub].on_retransmit(seq, self.now);
        }
        let pkt = Packet {
            // Packets carry the world-level id so they survive crossing
            // shard boundaries (equal to `conn` standalone).
            owner: PacketOwner::Subflow { conn: self.conns[conn].gid, sub, seq },
            size: self.conns[conn].packet_size,
            hop: 0,
        };
        self.enqueue_packet(pkt);
    }

    /// Advance the graceful-degradation state machine (active → degraded →
    /// failover → recovered): backup subflows stay cold until **every**
    /// primary is unusable — administratively closed or potentially failed
    /// (≥ [`mptcp_cc::POTENTIALLY_FAILED_RTO_BACKOFFS`] unanswered RTO
    /// backoffs) — then engage, stamping the failover latency against the
    /// clock started by the first unanswered primary RTO; they stand down
    /// the moment a primary is usable again. Runs at the head of every
    /// `pump`, so the decision always precedes data scheduling.
    fn update_failover(&mut self, conn: ConnId) {
        let c = &self.conns[conn];
        let base = c.sub_base as usize;
        let hot = c.hot_base as usize;
        let n = c.sub_count as usize;
        let mut first_backup = None;
        let mut usable_primary = false;
        let mut usable_backup = false;
        for i in 0..n {
            let cold = &self.flows.cold[base + i];
            let usable = !cold.closed && !self.flows.tx[hot + i].potentially_failed();
            if cold.backup {
                if first_backup.is_none() {
                    first_backup = Some(i);
                }
                usable_backup |= usable;
            } else {
                usable_primary |= usable;
            }
        }
        let Some(first_backup) = first_backup else { return };
        if usable_primary {
            if self.conns[conn].backup_active {
                let c = &mut self.conns[conn];
                c.backup_active = false;
                c.primary_down_since = None;
                if self.probe_watches(conn) {
                    self.record_transition(conn, first_backup, TransitionKind::BackupStoodDown);
                }
            }
        } else if usable_backup && !self.conns[conn].backup_active {
            let c = &mut self.conns[conn];
            c.backup_active = true;
            c.backup_activations += 1;
            // No clock running means the primaries were closed by explicit
            // signaling rather than discovered dead by timers: failover is
            // immediate.
            c.failover_latency =
                Some(self.now.saturating_sub(c.primary_down_since.unwrap_or(self.now)));
            if self.probe_watches(conn) {
                self.record_transition(conn, first_backup, TransitionKind::BackupActivated);
            }
        }
    }

    /// Stripe new data onto whichever subflows have window space
    /// ("An MPTCP sender stripes packets across these subflows as space in
    /// the subflow windows becomes available", §2). Order of priority:
    /// hole retransmissions (including on potentially-failed subflows —
    /// those are the probes that detect restoration), then reinjections of
    /// stranded data onto live subflows, then new data on live subflows.
    fn pump(&mut self, conn: ConnId) {
        if !self.conns[conn].started || self.conns[conn].finished_at.is_some() {
            return;
        }
        self.update_failover(conn);
        let base = self.conns[conn].sub_base as usize;
        let hot = self.conns[conn].hot_base as usize;
        let n = self.conns[conn].sub_count as usize;
        // Holes first: retransmissions fill the windows before new data.
        for idx in 0..n {
            if self.flows.cold[base + idx].closed {
                continue;
            }
            while let Some(seq) = self.flows.tx[hot + idx].next_retransmit() {
                self.send_subflow_packet(conn, idx, seq, true);
            }
        }
        self.pump_reinjections(conn);
        loop {
            let mut sent_any = false;
            for i in 0..n {
                let idx = (self.conns[conn].rr_next + i) % n;
                let can = {
                    let cold = &self.flows.cold[base + idx];
                    let tx = &self.flows.tx[hot + idx];
                    self.conns[conn].has_data()
                        && !cold.closed
                        && (!cold.backup || self.conns[conn].backup_active)
                        && !tx.potentially_failed()
                        && tx.can_send_new()
                };
                if !can {
                    continue;
                }
                let (seq, newly_armed) = {
                    let c = &mut self.conns[conn];
                    if let Some(b) = &mut c.budget {
                        *b -= 1;
                    }
                    let dsn = c.next_dsn;
                    c.next_dsn += 1;
                    self.flows.cold[base + idx].sent_pkts += 1;
                    self.flows.tx[hot + idx].on_send_new(self.now, dsn)
                };
                if newly_armed {
                    self.schedule_rto(conn, idx);
                }
                self.send_subflow_packet(conn, idx, seq, false);
                sent_any = true;
            }
            self.conns[conn].rr_next = (self.conns[conn].rr_next + 1) % n;
            if !sent_any {
                break;
            }
        }
    }

    /// Drain the reinjection queue onto live subflows with window space.
    /// Each drained dsn becomes an ordinary new-sequence send on the
    /// chosen subflow; dsns already acknowledged (e.g. the original copy's
    /// ACK finally got through) are discarded unsent.
    fn pump_reinjections(&mut self, conn: ConnId) {
        let base = self.conns[conn].sub_base as usize;
        let hot = self.conns[conn].hot_base as usize;
        loop {
            let (dsn, idx) = {
                let c = &mut self.conns[conn];
                loop {
                    let Some(&dsn) = c.reinject_queue.front() else { return };
                    if c.reinject_reg.get(&dsn).is_some_and(|e| e.acked) {
                        c.reinject_queue.pop_front();
                        continue;
                    }
                    break;
                }
                let dsn = c.reinject_queue[0];
                let n = c.sub_count as usize;
                let mut chosen = None;
                for i in 0..n {
                    let idx = (c.rr_next + i) % n;
                    let cold = &self.flows.cold[base + idx];
                    let tx = &self.flows.tx[hot + idx];
                    if !cold.closed
                        && (!cold.backup || c.backup_active)
                        && !tx.potentially_failed()
                        && tx.can_send_new()
                    {
                        chosen = Some(idx);
                        break;
                    }
                }
                let Some(idx) = chosen else { return };
                c.reinject_queue.pop_front();
                c.reinjections_sent += 1;
                self.flows.cold[base + idx].sent_pkts += 1;
                (dsn, idx)
            };
            let (seq, newly_armed) = self.flows.tx[hot + idx].on_send_new(self.now, dsn);
            if newly_armed {
                self.schedule_rto(conn, idx);
            }
            self.send_subflow_packet(conn, idx, seq, false);
        }
    }

    fn try_finish(&mut self, conn: ConnId) {
        let c = &mut self.conns[conn];
        if c.finished_at.is_some() || !c.started {
            return;
        }
        // Completion is data-level: every data sequence number handed out
        // has been acknowledged on *some* subflow. Without faults this is
        // the moment every subflow is fully acked (each dsn has exactly
        // one copy); with reinjection it lets the transfer complete even
        // while a dead subflow still holds stranded sequence numbers.
        if c.budget == Some(0) && c.data_acked == c.next_dsn {
            c.finished_at = Some(self.now);
            c.reinject_queue.clear();
            let grace = c.retire_grace;
            if self.lifecycle && self.conns[conn].resident() {
                // Retirement waits out the straggler grace so every copy
                // and ACK launched before completion drains first; the
                // frozen snapshot then equals the end-of-run live stats,
                // and the recycled window can never see a stale event.
                self.queue.push(self.now + grace, EventKind::ConnRetire { conn });
            }
        }
    }

    // ------------------------------------------------------------------
    // Sharded-mode plumbing (driven by `crate::shard::ShardedSimulator`)
    // ------------------------------------------------------------------

    /// Install the routing context that turns this simulator into one
    /// shard of a partitioned world.
    pub(crate) fn set_shard_ctx(&mut self, ctx: ShardCtx) {
        self.shard = Some(Box::new(ctx));
    }

    /// Process every event strictly inside the epoch ending at
    /// `upto` (inclusive). Unlike [`Self::run_until`] this neither runs
    /// the watchdog/quiesce detectors nor measures wall time (both belong
    /// to the epoch driver), and it leaves `now` at the last event so the
    /// next epoch continues seamlessly.
    pub(crate) fn run_epoch(&mut self, upto: SimTime) {
        while let Some(ev) = self.queue.pop_before(upto) {
            debug_assert!(ev.at >= self.now, "event from the past");
            self.now = ev.at;
            self.events_processed += 1;
            self.dispatch(ev.kind);
        }
    }

    /// Drain this shard's outbox buffers: the driver moves them into the
    /// shared mailbox matrix at the epoch barrier.
    pub(crate) fn shard_outbox(&mut self) -> &mut Vec<Vec<(SimTime, Packet)>> {
        // lint:allow(panic-free, reason = "pub(crate) hook called only by the sharded driver, which created the shard state it is asking for; a None here is a driver bug, not a simulated condition")
        &mut self.shard.as_mut().expect("not in sharded mode").outbox
    }

    /// Enqueue a cross-shard arrival handed over by a peer shard.
    pub(crate) fn inject_arrive(&mut self, at: SimTime, pkt: Packet) {
        self.queue.push(at, EventKind::Arrive { pkt });
    }

    /// Number of pending events in this shard's queue.
    pub(crate) fn pending_events(&self) -> usize {
        self.queue.len()
    }

    /// Advance the clock to the horizon at the end of a sharded run (the
    /// per-epoch loop leaves `now` at the last processed event).
    pub(crate) fn finish_epochs_at(&mut self, horizon: SimTime) {
        debug_assert!(horizon >= self.now, "time cannot run backwards");
        self.now = horizon;
    }

    // ------------------------------------------------------------------
    // CBR machinery
    // ------------------------------------------------------------------

    fn exp_sample(&mut self, mean: SimTime) -> SimTime {
        let u: f64 = self.rng.gen_range(f64::EPSILON..1.0);
        SimTime::from_secs_f64(-mean.as_secs_f64() * u.ln())
    }

    fn on_cbr_toggle(&mut self, src: CbrId) {
        let (onoff, was_on) = {
            let s = &self.cbrs[src];
            (s.spec.onoff, s.on)
        };
        let Some((mean_on, mean_off)) = onoff else {
            // Plain start event for an always-on source.
            if !was_on {
                let s = &mut self.cbrs[src];
                s.on = true;
                s.gen += 1;
                let gen = s.gen;
                self.queue.push(self.now, EventKind::CbrSend { src, gen });
            }
            return;
        };
        if was_on {
            let s = &mut self.cbrs[src];
            s.on = false;
            s.gen += 1;
            let next = self.now + self.exp_sample(mean_off);
            self.queue.push(next, EventKind::CbrToggle { src });
        } else {
            {
                let s = &mut self.cbrs[src];
                s.on = true;
                s.gen += 1;
            }
            let gen = self.cbrs[src].gen;
            self.queue.push(self.now, EventKind::CbrSend { src, gen });
            let next = self.now + self.exp_sample(mean_on);
            self.queue.push(next, EventKind::CbrToggle { src });
        }
    }

    fn on_cbr_send(&mut self, src: CbrId, gen: u64) {
        let (on, cur_gen, size, interval) = {
            let s = &self.cbrs[src];
            (s.on, s.gen, s.spec.packet_size, s.spec.packet_interval())
        };
        if !on || cur_gen != gen {
            self.events_cancelled += 1;
            return;
        }
        self.cbrs[src].sent += 1;
        let pkt = Packet { owner: PacketOwner::Cbr { src }, size, hop: 0 };
        self.enqueue_packet(pkt);
        self.queue.push(self.now + interval, EventKind::CbrSend { src, gen });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mptcp_cc::DetDigest;

    fn one_link_sim(mbps: f64, delay_ms: u64, queue: usize) -> (Simulator, LinkId) {
        let mut sim = Simulator::new(1);
        let l = sim.add_link(LinkSpec::mbps(mbps, SimTime::from_millis(delay_ms), queue));
        (sim, l)
    }

    #[test]
    fn single_tcp_fills_a_link() {
        let (mut sim, l) = one_link_sim(10.0, 10, 25);
        let c = sim.add_connection(
            ConnectionSpec::bulk(AlgorithmKind::Uncoupled).path(vec![l]),
        );
        sim.run_until(SimTime::from_secs(30));
        let bps = sim.connection_stats(c).throughput_bps(sim.now());
        assert!(bps > 9.0e6, "single TCP should achieve >90% of 10 Mb/s, got {bps}");
    }

    #[test]
    fn two_tcps_share_a_link_roughly_equally() {
        let (mut sim, l) = one_link_sim(10.0, 10, 25);
        let c1 = sim.add_connection(ConnectionSpec::bulk(AlgorithmKind::Uncoupled).path(vec![l]));
        let c2 = sim.add_connection(ConnectionSpec::bulk(AlgorithmKind::Uncoupled).path(vec![l]));
        sim.run_until(SimTime::from_secs(60));
        let t1 = sim.connection_stats(c1).throughput_bps(sim.now());
        let t2 = sim.connection_stats(c2).throughput_bps(sim.now());
        let ratio = t1.min(t2) / t1.max(t2);
        assert!(ratio > 0.7, "shares too unequal: {t1} vs {t2}");
        assert!(t1 + t2 > 9.0e6, "aggregate should fill the link: {}", t1 + t2);
    }

    #[test]
    fn finite_flow_completes_and_stops() {
        let (mut sim, l) = one_link_sim(10.0, 5, 25);
        let c = sim.add_connection(
            ConnectionSpec::sized(AlgorithmKind::Uncoupled, 200).path(vec![l]),
        );
        sim.run_until(SimTime::from_secs(30));
        let stats = sim.connection_stats(c);
        assert_eq!(stats.delivered_pkts(), 200);
        let done = stats.completion_time().expect("flow should finish");
        assert!(done < SimTime::from_secs(5), "200 pkts over 10 Mb/s takes ~0.3s, got {done}");
    }

    #[test]
    fn random_loss_reduces_throughput() {
        let (mut sim_clean, l1) = one_link_sim(10.0, 10, 100);
        let c1 = sim_clean
            .add_connection(ConnectionSpec::bulk(AlgorithmKind::Uncoupled).path(vec![l1]));
        sim_clean.run_until(SimTime::from_secs(30));

        let mut sim_lossy = Simulator::new(1);
        let l2 = sim_lossy
            .add_link(LinkSpec::mbps(10.0, SimTime::from_millis(10), 100).with_loss(0.02));
        let c2 = sim_lossy
            .add_connection(ConnectionSpec::bulk(AlgorithmKind::Uncoupled).path(vec![l2]));
        sim_lossy.run_until(SimTime::from_secs(30));

        let clean = sim_clean.connection_stats(c1).throughput_bps(sim_clean.now());
        let lossy = sim_lossy.connection_stats(c2).throughput_bps(sim_lossy.now());
        assert!(lossy < 0.8 * clean, "2% loss should hurt: {lossy} vs {clean}");
    }

    #[test]
    fn determinism_same_seed_same_history() {
        let run = |seed| {
            let mut sim = Simulator::new(seed);
            let l = sim.add_link(LinkSpec::mbps(5.0, SimTime::from_millis(20), 20).with_loss(0.01));
            let c = sim.add_connection(ConnectionSpec::bulk(AlgorithmKind::Mptcp).path(vec![l]));
            sim.run_until(SimTime::from_secs(10));
            (sim.connection_stats(c).delivered_pkts(), sim.events_processed())
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7).0, 0);
    }

    #[test]
    fn multipath_uses_both_links() {
        let mut sim = Simulator::new(3);
        let l1 = sim.add_link(LinkSpec::mbps(10.0, SimTime::from_millis(10), 25));
        let l2 = sim.add_link(LinkSpec::mbps(10.0, SimTime::from_millis(10), 25));
        let c = sim.add_connection(
            ConnectionSpec::bulk(AlgorithmKind::Mptcp).path(vec![l1]).path(vec![l2]),
        );
        sim.run_until(SimTime::from_secs(30));
        let stats = sim.connection_stats(c);
        let bps = stats.throughput_bps(sim.now());
        assert!(bps > 15.0e6, "MPTCP alone should use both 10 Mb/s links: {bps}");
        for (i, sf) in stats.subflows.iter().enumerate() {
            assert!(sf.delivered_pkts > 0, "subflow {i} unused");
        }
    }

    #[test]
    fn cbr_delivers_at_configured_rate() {
        let (mut sim, l) = one_link_sim(100.0, 1, 100);
        let cbr = sim.add_cbr(CbrSpec::constant(vec![l], 12e6));
        sim.run_until(SimTime::from_secs(10));
        // 12 Mb/s of 1500B packets = 1000 pkt/s for 10 s = ~10000 pkts.
        let got = sim.cbr_delivered(cbr);
        assert!((9_900..=10_100).contains(&got), "delivered {got}");
    }

    #[test]
    fn onoff_cbr_duty_cycle_is_respected() {
        let (mut sim, l) = one_link_sim(200.0, 1, 1000);
        let cbr = sim.add_cbr(
            CbrSpec::constant(vec![l], 100e6)
                .onoff(SimTime::from_millis(10), SimTime::from_millis(100)),
        );
        sim.run_until(SimTime::from_secs(60));
        // Duty cycle 10/(10+100) ≈ 9.1% of 100 Mb/s ≈ 758 pkt/s on average.
        let rate = sim.cbr_delivered(cbr) as f64 / 60.0;
        assert!(
            (400.0..1200.0).contains(&rate),
            "on/off CBR mean rate {rate} pkt/s should be near 758"
        );
    }

    #[test]
    fn link_down_stops_traffic_and_up_resumes() {
        let (mut sim, l) = one_link_sim(10.0, 10, 25);
        let c = sim.add_connection(ConnectionSpec::bulk(AlgorithmKind::Uncoupled).path(vec![l]));
        sim.run_until(SimTime::from_secs(10));
        let before = sim.connection_stats(c).delivered_pkts();
        sim.set_link_down(l, true);
        sim.run_until(SimTime::from_secs(20));
        let during = sim.connection_stats(c).delivered_pkts();
        assert!(during - before < 30, "almost nothing delivered while down");
        sim.set_link_down(l, false);
        sim.run_until(SimTime::from_secs(40));
        let after = sim.connection_stats(c).delivered_pkts();
        assert!(after > during + 1000, "traffic should resume after link comes back");
    }

    #[test]
    fn queue_limit_causes_drops_not_growth() {
        let (mut sim, l) = one_link_sim(1.0, 5, 5);
        sim.add_connection(ConnectionSpec::bulk(AlgorithmKind::Uncoupled).path(vec![l]));
        sim.run_until(SimTime::from_secs(20));
        let stats = sim.link_stats(l);
        assert!(stats.dropped_queue > 0, "tiny buffer must overflow");
    }

    #[test]
    #[should_panic]
    fn connection_without_subflows_rejected() {
        let mut sim = Simulator::new(0);
        sim.add_connection(ConnectionSpec::bulk(AlgorithmKind::Mptcp));
    }

    /// The headline zero-alloc claim: once scratch buffers, the metadata
    /// ring, and the ACK pool have warmed up, a steady-state run — losses,
    /// retransmissions, SACK churn and all — performs no further hot-path
    /// allocation. Only meaningful on the bitmap scoreboards: the B-tree
    /// reference allocates a node per insert by design.
    #[cfg(not(feature = "btree-scoreboard"))]
    #[test]
    fn steady_state_run_is_allocation_free() {
        let mut sim = Simulator::new(42);
        let l1 = sim.add_link(LinkSpec::mbps(10.0, SimTime::from_millis(10), 25).with_loss(0.01));
        let l2 = sim.add_link(LinkSpec::mbps(10.0, SimTime::from_millis(20), 25).with_loss(0.01));
        let c = sim.add_connection(
            ConnectionSpec::bulk(AlgorithmKind::Mptcp).path(vec![l1]).path(vec![l2]),
        );
        sim.run_until(SimTime::from_secs(20));
        let warmed = sim.perf().hot_allocs;
        let delivered_warm = sim.connection_stats(c).delivered_pkts();
        sim.run_until(SimTime::from_secs(60));
        assert!(
            sim.connection_stats(c).delivered_pkts() > delivered_warm + 10_000,
            "the steady-state window must carry real traffic"
        );
        assert_eq!(
            sim.perf().hot_allocs,
            warmed,
            "hot paths must not allocate after warmup"
        );
    }

    /// The connection's live EWTCP increase rule on path 0, together with
    /// the snapshots it saw (so a fresh controller can be replayed against
    /// the identical inputs).
    fn ewtcp_increase_seen(sim: &mut Simulator, conn: ConnId) -> (f64, Vec<SubflowSnapshot>) {
        let c = &mut sim.conns[conn];
        let (hots, subs) = (c.hots(), c.subs());
        c.refresh_snapshots(&sim.flows.tx[hots], &sim.flows.cold[subs]);
        let CcDriver::Pure(cc) = &c.cc else { panic!("EWTCP is a pure rule") };
        (cc.increase_per_ack(0, &c.snap_buf), c.snap_buf.clone())
    }

    /// Regression (pre-fix failure): `Ewtcp::equal_split(n)` froze its
    /// `1/n` weight at connection build time, so after any runtime path
    /// churn the weight was wrong — a 3-path build running two-path kept
    /// aggressiveness 1/3, and a join never moved it back. The live weight
    /// must always equal `1/active_count`, bit-for-bit what a fresh
    /// fixed-weight build with the current path count computes.
    #[test]
    fn ewtcp_weight_tracks_live_subflow_count_under_churn() {
        let mut sim = Simulator::new(9);
        let mut links = Vec::new();
        for _ in 0..3 {
            links.push(sim.add_link(LinkSpec::mbps(10.0, SimTime::from_millis(10), 50)));
        }
        let c = sim.add_connection(
            ConnectionSpec::bulk(AlgorithmKind::Ewtcp)
                .path(vec![links[0]])
                .path(vec![links[1]])
                .path(vec![links[2]]),
        );
        // The third path's address is withdrawn before data moves: the
        // connection runs two-path for the first phase…
        sim.admin_close_subflow(c, 2);
        sim.run_until(SimTime::from_secs(10));
        let (inc, snaps) = ewtcp_increase_seen(&mut sim, c);
        let fresh2 = mptcp_cc::Ewtcp::equal_split(2);
        assert_eq!(
            inc.to_bits(),
            fresh2.increase_per_ack(0, &snaps).to_bits(),
            "two live paths must mean weight 1/2, not the build-time 1/3"
        );
        // …then the address is re-advertised and the subflow joins
        // mid-transfer: the rule must now match a fresh 3-path build.
        sim.admin_open_subflow(c, 2);
        sim.run_until(SimTime::from_secs(20));
        let (inc, snaps) = ewtcp_increase_seen(&mut sim, c);
        let fresh3 = mptcp_cc::Ewtcp::equal_split(3);
        assert_eq!(
            inc.to_bits(),
            fresh3.increase_per_ack(0, &snaps).to_bits(),
            "after the join the live weight must be 1/3"
        );
    }

    /// Every stateful controller in the zoo moves real data through the
    /// stateful driver arm (slow start, CA growth, loss decreases).
    #[test]
    fn stateful_zoo_controllers_move_data() {
        for kind in AlgorithmKind::zoo() {
            let mut sim = Simulator::new(3);
            let l0 = sim.add_link(LinkSpec::mbps(8.0, SimTime::from_millis(10), 50));
            let l1 = sim.add_link(LinkSpec::mbps(8.0, SimTime::from_millis(40), 50));
            let c = sim
                .add_connection(ConnectionSpec::bulk(kind).path(vec![l0]).path(vec![l1]));
            sim.run_until(SimTime::from_secs(30));
            let bps = sim.connection_stats(c).throughput_bps(sim.now());
            assert!(bps > 1.0e6, "{kind:?} moved too little data: {bps}");
        }
    }

    /// A pure rule behind the float-exact adapter must reproduce the pure
    /// history bit-for-bit — the unit-level core of the cross-scenario
    /// differential proptest in `tests/stateful_differential.rs`.
    #[test]
    fn adapter_wrapped_pure_rule_reproduces_the_pure_history() {
        let run = |wrapped: bool| {
            let mut sim = Simulator::new(11);
            let l0 = sim
                .add_link(LinkSpec::mbps(8.0, SimTime::from_millis(10), 25).with_loss(0.005));
            let l1 = sim.add_link(LinkSpec::mbps(4.0, SimTime::from_millis(40), 25));
            let mut spec =
                ConnectionSpec::bulk(AlgorithmKind::Mptcp).path(vec![l0]).path(vec![l1]);
            if wrapped {
                spec = spec.adapter_wrapped();
            }
            let c = sim.add_connection(spec);
            sim.run_until(SimTime::from_secs(40));
            let cwnds: Vec<u64> = {
                let range = sim.conns[c].hots();
                sim.flows.tx[range].iter().map(|t| t.cwnd.to_bits()).collect()
            };
            (sim.connection_stats(c).digest_value(), cwnds)
        };
        assert_eq!(run(false), run(true));
    }

    /// Build a small churn world: `flows` finite transfers with staggered
    /// starts over two lossy shared links, sizes and offsets drawn from
    /// the seed. Returns the per-connection stats digests at the horizon.
    fn churn_run(seed: u64, flows: u64, lifecycle: bool) -> Vec<u64> {
        let mut sim = Simulator::new(seed);
        sim.set_flow_lifecycle(lifecycle);
        let l1 = sim.add_link(LinkSpec::mbps(20.0, SimTime::from_millis(5), 25).with_loss(0.005));
        let l2 = sim.add_link(LinkSpec::mbps(12.0, SimTime::from_millis(15), 25));
        let mut conns = Vec::new();
        for i in 0..flows {
            // Deterministic per-flow size/offset mix, spread so early
            // flows finish well before late ones start (real churn).
            let pkts = 20 + (seed.wrapping_mul(31).wrapping_add(i * 17) % 60);
            let start = SimTime::from_millis(i * 400);
            let kind = if i % 2 == 0 { AlgorithmKind::Mptcp } else { AlgorithmKind::Ewtcp };
            conns.push(sim.add_connection(
                ConnectionSpec::sized(kind, pkts).path(vec![l1]).path(vec![l2]).start(start),
            ));
        }
        sim.run_until(SimTime::from_secs(1 + flows / 2 + 10));
        conns.iter().map(|&c| sim.connection_stats(c).digest_value()).collect()
    }

    /// The tentpole equivalence gate: flow-lifecycle mode (hot windows
    /// acquired at start, recycled one straggler-grace after finish) must
    /// leave every connection's statistics bit-identical to the
    /// non-lifecycle layout — recycling is invisible to behavior because
    /// nothing is sent after finish and the grace outlasts every
    /// straggler in flight.
    #[test]
    fn lifecycle_mode_is_stats_identical_to_the_flat_layout() {
        for seed in [3, 17, 92, 1031] {
            assert_eq!(
                churn_run(seed, 12, false),
                churn_run(seed, 12, true),
                "lifecycle on/off diverged for seed {seed}"
            );
        }
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(16))]
        /// Randomized version of the equivalence gate: any seed/flow-count
        /// mix must digest identically under both layouts.
        #[test]
        fn lifecycle_equivalence_holds_for_random_churn(
            seed in 0u64..1_000_000,
            flows in 2u64..20,
        ) {
            proptest::prop_assert_eq!(
                churn_run(seed, flows, false),
                churn_run(seed, flows, true)
            );
        }
    }

    /// Sequential same-shape flows must recycle one hot window instead of
    /// growing the arena, and steady-state churn must not touch the
    /// allocator (`hot_allocs` flat after the first flow warms the slots).
    #[test]
    fn sequential_flows_reuse_one_hot_window_without_allocating() {
        let mut sim = Simulator::new(7);
        sim.set_flow_lifecycle(true);
        let l1 = sim.add_link(LinkSpec::mbps(20.0, SimTime::from_millis(5), 25));
        let l2 = sim.add_link(LinkSpec::mbps(20.0, SimTime::from_millis(10), 25));
        let flows = 30u64;
        let mut conns = Vec::new();
        for i in 0..flows {
            // 2s spacing: each 40-packet flow finishes (and out-retires
            // its grace) long before the next one starts.
            conns.push(sim.add_connection(
                ConnectionSpec::sized(AlgorithmKind::Mptcp, 40)
                    .path(vec![l1])
                    .path(vec![l2])
                    .start(SimTime::from_secs(2 * i)),
            ));
        }
        sim.run_until(SimTime::from_secs(4));
        let (warm_slots, warm_allocs) = (sim.arena_hot_slots(), sim.perf().hot_allocs);
        sim.run_until(SimTime::from_secs(2 * flows + 2));
        for &c in &conns {
            assert!(
                sim.connection_stats(c).finished_at.is_some(),
                "every sized flow must complete"
            );
        }
        assert_eq!(
            sim.arena_hot_slots(),
            warm_slots,
            "sequential same-shape flows must recycle the first flow's hot window"
        );
        assert_eq!(warm_slots, 2, "exactly one two-subflow window materialized");
        assert!(
            sim.arena_hot_reuses() >= flows - 2,
            "recycling must serve nearly every acquisition: {} of {flows}",
            sim.arena_hot_reuses()
        );
        assert_eq!(
            sim.perf().hot_allocs,
            warm_allocs,
            "flow churn must not allocate after warmup"
        );
    }

    /// Stats of a retired flow must be frozen — identical before and long
    /// after its hot window was recycled to another connection.
    #[test]
    fn retired_stats_are_frozen_across_window_recycling() {
        let mut sim = Simulator::new(5);
        sim.set_flow_lifecycle(true);
        let l = sim.add_link(LinkSpec::mbps(10.0, SimTime::from_millis(10), 25));
        let a = sim.add_connection(ConnectionSpec::sized(AlgorithmKind::Mptcp, 50).path(vec![l]));
        let b = sim.add_connection(
            ConnectionSpec::bulk(AlgorithmKind::Mptcp)
                .path(vec![l])
                .start(SimTime::from_secs(10)),
        );
        sim.run_until(SimTime::from_secs(10));
        assert!(sim.connection_stats(a).finished_at.is_some());
        let frozen = sim.connection_stats(a).digest_value();
        sim.run_until(SimTime::from_secs(30));
        assert!(sim.connection_stats(b).delivered_pkts() > 0, "tenant b is live");
        assert_eq!(
            sim.connection_stats(a).digest_value(),
            frozen,
            "a retired flow's stats must not move when its window is re-tenanted"
        );
    }
}
