//! # mptcp-netsim — deterministic packet-level network simulator
//!
//! The paper evaluates its congestion-control designs "by means of
//! simulations with a high-speed custom packet-level simulator, and with
//! testbed experiments on a Linux implementation" (§1). This crate is that
//! simulator, rebuilt in Rust:
//!
//! * a **discrete-event core** ([`Simulator`]) with nanosecond timestamps
//!   and fully deterministic execution (a seeded RNG drives every random
//!   choice; ties in the event queue break on insertion order);
//! * **links** with a configurable rate, propagation delay, drop-tail queue
//!   and optional Bernoulli random loss (for modelling lossy wireless);
//! * a **TCP NewReno sender/receiver** per subflow: slow start, congestion
//!   avoidance, fast retransmit on three duplicate ACKs, NewReno partial-ACK
//!   recovery, and RTO with exponential backoff and RFC 6298-style
//!   SRTT/RTTVAR estimation;
//! * **multipath connections** that stripe one data stream across several
//!   subflows "as space in the subflow windows becomes available" (§2),
//!   with the window dynamics delegated to any
//!   [`MultipathCc`](mptcp_cc::MultipathCc) implementation from `mptcp-cc`;
//! * **constant-bit-rate sources** with optional Markov on/off bursting,
//!   used for the §3 dynamic-load experiments (Fig. 9).
//!
//! Following the smoltcp design ethos, everything is a plain poll/event
//! state machine — no async runtime, no clever type-level tricks, and no
//! hidden allocation on the per-packet hot path beyond the event queue.
//!
//! ## Model scope
//!
//! Data packets consume link capacity and queue space hop by hop; ACKs
//! return to the sender after the path's reverse propagation delay without
//! consuming queue capacity (the paper's experiments are all bottlenecked in
//! the data direction). Connection-level reassembly, receive-buffer flow
//! control and the wire protocol live in the `mptcp-proto` crate; this crate
//! measures what the paper's figures measure — subflow and link dynamics.
//!
//! ## Quick example
//!
//! ```
//! use mptcp_netsim::{ConnectionSpec, LinkSpec, Simulator, SimTime};
//! use mptcp_cc::AlgorithmKind;
//!
//! let mut sim = Simulator::new(42);
//! // One 10 Mb/s bottleneck, 10 ms one-way delay, 25-packet buffer.
//! let link = sim.add_link(LinkSpec::mbps(10.0, SimTime::from_millis(10), 25));
//! let conn = sim.add_connection(
//!     ConnectionSpec::bulk(AlgorithmKind::Mptcp)
//!         .path(vec![link])
//!         .start(SimTime::ZERO),
//! );
//! sim.run_until(SimTime::from_secs(20));
//! let goodput = sim.connection_stats(conn).throughput_bps(SimTime::from_secs(20));
//! assert!(goodput > 8.0e6, "should nearly fill the 10 Mb/s link: {goodput}");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arena;
mod cast;
mod cbr;
mod event;
mod fault;
mod link;
mod packet;
mod perf;
mod probe;
mod scoreboard;
mod scoreboard_ref;
mod shard;
mod sim;
mod stats;
mod tcp;
mod time;
mod trace;
mod wheel;

pub use cbr::{CbrId, CbrSpec};
pub use event::{queue_churn, QueueBackend};
pub use fault::{FaultAction, FaultPlan, GeParams};
pub use link::{LinkId, LinkSpec, LinkStats};
pub use packet::DEFAULT_PACKET_SIZE;
pub use perf::{wall_clock, SimPerf};
// Re-exported so downstream crates digest sim state without naming the core
// crate (the trait behind the chaos_smoke bit-identity gate).
pub use mptcp_cc::{DetDigest, DigestWriter};
pub use probe::{
    CcPhase, LinkPoint, ProbeLog, ProbeSpec, SubflowPoint, Transition, TransitionKind,
};
pub use scoreboard::{scoreboard_churn, ScoreboardKind};
pub use shard::ShardedSimulator;
pub use sim::{ConnId, ConnectionSpec, Simulator, SubflowSpec};
pub use stats::{ConnectionStats, SubflowStats};
pub use tcp::TcpParams;
pub use time::SimTime;
pub use trace::{Recorder, Sample, TraceWriter};
