//! Simulation time: a nanosecond-resolution monotonic clock.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in (or duration of) simulated time, in nanoseconds.
///
/// `u64` nanoseconds cover ~584 years of simulation — far beyond any
/// experiment in the paper — while keeping event ordering exact (no
/// floating-point time drift).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

impl SimTime {
    /// The start of simulated time.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable time (used as "never").
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// From whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// From whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// From whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// From fractional seconds. Negative or non-finite inputs are invalid.
    ///
    /// # Panics
    /// Panics if `s` is negative, NaN or infinite.
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s.is_finite() && s >= 0.0, "invalid duration: {s}");
        SimTime((s * 1e9).round() as u64)
    }

    /// As fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// As whole nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl mptcp_cc::DetDigest for SimTime {
    fn det_digest(&self, h: &mut mptcp_cc::DigestWriter) {
        h.write_u64(self.0);
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_roundtrip() {
        assert_eq!(SimTime::from_secs(2).as_nanos(), 2_000_000_000);
        assert_eq!(SimTime::from_millis(3).as_nanos(), 3_000_000);
        assert_eq!(SimTime::from_micros(7).as_nanos(), 7_000);
        let t = SimTime::from_secs_f64(0.123456789);
        assert!((t.as_secs_f64() - 0.123456789).abs() < 1e-9);
    }

    #[test]
    fn arithmetic() {
        let a = SimTime::from_millis(10);
        let b = SimTime::from_millis(4);
        assert_eq!((a + b).as_nanos(), 14_000_000);
        assert_eq!((a - b).as_nanos(), 6_000_000);
        assert_eq!(b.saturating_sub(a), SimTime::ZERO);
    }

    #[test]
    fn ordering() {
        assert!(SimTime::from_millis(1) < SimTime::from_millis(2));
        assert!(SimTime::ZERO < SimTime::MAX);
    }

    #[test]
    #[should_panic]
    fn negative_duration_rejected() {
        let _ = SimTime::from_secs_f64(-0.1);
    }
}
