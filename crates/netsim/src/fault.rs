//! Declarative, deterministic fault injection.
//!
//! A [`FaultPlan`] is a time-ordered list of [`FaultAction`]s — link
//! down/up flaps, Gilbert–Elliott bursty-loss episodes, rate brownouts and
//! queue squeezes. [`Simulator::install_fault_plan`](crate::Simulator::install_fault_plan)
//! turns each entry into a first-class event on the simulator's own queue,
//! so faults fire at their exact nanosecond regardless of how the caller
//! chops `run_until` into steps — no between-step polling, no
//! granularity-dependent results.
//!
//! ## Determinism
//!
//! Everything random about a fault schedule is resolved from seeds the
//! caller provides: [`FaultPlan::randomized`] expands a seed into concrete
//! timed actions *before* the plan is installed, and the Gilbert–Elliott
//! chain advances on the simulator's own seeded RNG in packet-arrival
//! order. A fixed simulator seed plus a fixed plan therefore yields a
//! bit-identical run — including under `MPTCP_JOBS` parallelism, where
//! each job owns its whole simulator and no state is shared.
//!
//! ## Gilbert–Elliott parameters
//!
//! The two-state chain is parameterized by per-packet transition
//! probabilities (`p_enter_bad`, `p_exit_bad`) and per-state loss rates
//! (`loss_good`, `loss_bad`). Mean burst length is `1/p_exit_bad` packets,
//! mean gap `1/p_enter_bad`; [`GeParams::bursty`] builds the common
//! "clean good state, lossy bad state" configuration from those means.

use crate::link::LinkId;
use crate::sim::ConnId;
use crate::time::SimTime;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of a two-state Gilbert–Elliott loss chain. The chain makes
/// one transition attempt per packet offered to the link, then drops the
/// packet with the current state's loss probability.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GeParams {
    /// Per-packet probability of moving good → bad.
    pub p_enter_bad: f64,
    /// Per-packet probability of moving bad → good.
    pub p_exit_bad: f64,
    /// Loss probability while in the good state.
    pub loss_good: f64,
    /// Loss probability while in the bad state.
    pub loss_bad: f64,
}

impl GeParams {
    /// A bursty-loss chain with the given mean burst and gap lengths (in
    /// packets) and loss rate inside a burst; the good state is clean.
    ///
    /// # Panics
    /// Panics unless both means are ≥ 1 packet and `loss_bad ∈ [0, 1]`.
    pub fn bursty(mean_burst_pkts: f64, mean_gap_pkts: f64, loss_bad: f64) -> Self {
        assert!(mean_burst_pkts >= 1.0 && mean_gap_pkts >= 1.0, "means must be ≥ 1 packet");
        let p = Self {
            p_enter_bad: 1.0 / mean_gap_pkts,
            p_exit_bad: 1.0 / mean_burst_pkts,
            loss_good: 0.0,
            loss_bad,
        };
        p.validate();
        p
    }

    pub(crate) fn validate(&self) {
        for (name, v) in [
            ("p_enter_bad", self.p_enter_bad),
            ("p_exit_bad", self.p_exit_bad),
            ("loss_good", self.loss_good),
            ("loss_bad", self.loss_bad),
        ] {
            assert!((0.0..=1.0).contains(&v), "{name} must be a probability, got {v}");
        }
    }

    /// Long-run fraction of time spent in the bad state.
    pub fn stationary_bad(&self) -> f64 {
        let denom = self.p_enter_bad + self.p_exit_bad;
        // lint:allow(float-ord, reason = "exact zero-guard against division by zero; no ordering or window arithmetic feeds off this comparison")
        if denom == 0.0 {
            0.0
        } else {
            self.p_enter_bad / denom
        }
    }

    /// Long-run average loss rate of the chain.
    pub fn mean_loss(&self) -> f64 {
        let b = self.stationary_bad();
        b * self.loss_bad + (1.0 - b) * self.loss_good
    }
}

/// One scripted change to the world. All actions are idempotent state
/// assignments, so replaying a plan over a restored snapshot is safe.
// lint:exhaustive
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultAction {
    /// Take the link down: arriving packets are dropped, the queue is
    /// flushed (counted as [`LinkStats::dropped_down`](crate::LinkStats)).
    Down {
        /// Target link.
        link: LinkId,
    },
    /// Bring the link back up.
    Up {
        /// Target link.
        link: LinkId,
    },
    /// Set the link rate to an absolute value and make it the new nominal
    /// rate (a lasting change, e.g. a mobility trace's new basestation).
    SetRate {
        /// Target link.
        link: LinkId,
        /// New rate in bits per second.
        bps: f64,
    },
    /// Scale the link's *nominal* rate by `factor` (a brownout); the
    /// nominal rate itself is remembered for [`FaultAction::RestoreRate`].
    Brownout {
        /// Target link.
        link: LinkId,
        /// Multiplier applied to the nominal rate, in `(0, 1]`.
        factor: f64,
    },
    /// Restore the link to its nominal rate, ending a brownout.
    RestoreRate {
        /// Target link.
        link: LinkId,
    },
    /// Set the link's Bernoulli loss probability (closed range `[0, 1]`).
    SetLoss {
        /// Target link.
        link: LinkId,
        /// New loss probability.
        p: f64,
    },
    /// Shrink (or grow) the drop-tail queue capacity; packets over the new
    /// cap are dropped from the tail immediately.
    ShrinkQueue {
        /// Target link.
        link: LinkId,
        /// New queue capacity in packets.
        pkts: usize,
    },
    /// Restore the queue capacity the link was built with.
    RestoreQueue {
        /// Target link.
        link: LinkId,
    },
    /// Start a Gilbert–Elliott bursty-loss episode on the link (the chain
    /// starts in the good state), or stop it with `None`.
    GilbertElliott {
        /// Target link.
        link: LinkId,
        /// Chain parameters, or `None` to turn the chain off.
        params: Option<GeParams>,
    },
    /// Withdraw an address (`REMOVE_ADDR`-style path-management
    /// signaling): administratively close subflow `sub` of connection
    /// `conn`, reinjecting its stranded in-flight data on the remaining
    /// subflows. The link stays untouched — this models the *endpoint*
    /// withdrawing the path, not the path failing.
    AddrRemove {
        /// First link of the target subflow's path. Not mutated; carried
        /// so the action can be validated and routed to the shard that
        /// owns the connection (a connection's subflows all leave from
        /// their first link's shard).
        link: LinkId,
        /// Target connection.
        conn: ConnId,
        /// Subflow index within the connection.
        sub: usize,
    },
    /// (Re)advertise an address (`ADD_ADDR`-style signaling): reopen
    /// subflow `sub` of connection `conn` so it may carry traffic again.
    AddrAdd {
        /// First link of the target subflow's path (see
        /// [`FaultAction::AddrRemove`]).
        link: LinkId,
        /// Target connection.
        conn: ConnId,
        /// Subflow index within the connection.
        sub: usize,
    },
}

impl FaultAction {
    /// The link this action targets.
    pub fn link(&self) -> LinkId {
        match *self {
            FaultAction::Down { link }
            | FaultAction::Up { link }
            | FaultAction::SetRate { link, .. }
            | FaultAction::Brownout { link, .. }
            | FaultAction::RestoreRate { link }
            | FaultAction::SetLoss { link, .. }
            | FaultAction::ShrinkQueue { link, .. }
            | FaultAction::RestoreQueue { link }
            | FaultAction::GilbertElliott { link, .. }
            | FaultAction::AddrRemove { link, .. }
            | FaultAction::AddrAdd { link, .. } => link,
        }
    }

    /// The same action retargeted at `link` — used by the sharded
    /// simulator to translate world-level link ids into shard-local ones
    /// when splitting a plan across shards.
    pub(crate) fn with_link(mut self, link: LinkId) -> FaultAction {
        match &mut self {
            FaultAction::Down { link: l }
            | FaultAction::Up { link: l }
            | FaultAction::SetRate { link: l, .. }
            | FaultAction::Brownout { link: l, .. }
            | FaultAction::RestoreRate { link: l }
            | FaultAction::SetLoss { link: l, .. }
            | FaultAction::ShrinkQueue { link: l, .. }
            | FaultAction::RestoreQueue { link: l }
            | FaultAction::GilbertElliott { link: l, .. }
            | FaultAction::AddrRemove { link: l, .. }
            | FaultAction::AddrAdd { link: l, .. } => *l = link,
        }
        self
    }
}

/// A declarative fault schedule: `(time, action)` pairs executed through
/// the event queue. Build one fluently:
///
/// ```
/// # use mptcp_netsim::{FaultPlan, GeParams, SimTime};
/// let s = SimTime::from_secs;
/// let plan = FaultPlan::new()
///     .outage(0, s(10), s(25))
///     .brownout(1, s(5), s(8), 0.25)
///     .bursty_loss(1, s(30), s(40), GeParams::bursty(20.0, 500.0, 0.5));
/// assert_eq!(plan.len(), 6);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    timed: Vec<(SimTime, FaultAction)>,
}

impl FaultPlan {
    /// An empty plan.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append an action at `at` (builder style).
    pub fn at(mut self, at: SimTime, action: FaultAction) -> Self {
        self.push(at, action);
        self
    }

    /// Append an action at `at`.
    pub fn push(&mut self, at: SimTime, action: FaultAction) {
        if let FaultAction::GilbertElliott { params: Some(p), .. } = &action {
            p.validate();
        }
        if let FaultAction::SetLoss { p, .. } = action {
            assert!((0.0..=1.0).contains(&p), "loss probability must be in [0,1], got {p}");
        }
        if let FaultAction::Brownout { factor, .. } = action {
            assert!(factor > 0.0 && factor <= 1.0, "brownout factor must be in (0,1], got {factor}");
        }
        self.timed.push((at, action));
    }

    /// A complete outage of `link` over `[from, until)`.
    pub fn outage(self, link: LinkId, from: SimTime, until: SimTime) -> Self {
        assert!(until > from, "outage must end after it starts");
        self.at(from, FaultAction::Down { link }).at(until, FaultAction::Up { link })
    }

    /// A rate brownout of `link` to `factor` of nominal over `[from, until)`.
    pub fn brownout(self, link: LinkId, from: SimTime, until: SimTime, factor: f64) -> Self {
        assert!(until > from, "brownout must end after it starts");
        self.at(from, FaultAction::Brownout { link, factor })
            .at(until, FaultAction::RestoreRate { link })
    }

    /// A queue squeeze of `link` to `pkts` over `[from, until)`.
    pub fn queue_squeeze(self, link: LinkId, from: SimTime, until: SimTime, pkts: usize) -> Self {
        assert!(until > from, "squeeze must end after it starts");
        self.at(from, FaultAction::ShrinkQueue { link, pkts })
            .at(until, FaultAction::RestoreQueue { link })
    }

    /// A Gilbert–Elliott bursty-loss episode on `link` over `[from, until)`.
    pub fn bursty_loss(
        self,
        link: LinkId,
        from: SimTime,
        until: SimTime,
        params: GeParams,
    ) -> Self {
        assert!(until > from, "episode must end after it starts");
        self.at(from, FaultAction::GilbertElliott { link, params: Some(params) })
            .at(until, FaultAction::GilbertElliott { link, params: None })
    }

    /// Withdraw subflow `sub` of `conn` at `at` (`REMOVE_ADDR`-style).
    /// `link` must be the first link of the subflow's path.
    pub fn addr_remove(self, at: SimTime, link: LinkId, conn: ConnId, sub: usize) -> Self {
        self.at(at, FaultAction::AddrRemove { link, conn, sub })
    }

    /// (Re)advertise subflow `sub` of `conn` at `at` (`ADD_ADDR`-style).
    /// `link` must be the first link of the subflow's path.
    pub fn addr_add(self, at: SimTime, link: LinkId, conn: ConnId, sub: usize) -> Self {
        self.at(at, FaultAction::AddrAdd { link, conn, sub })
    }

    /// Concatenate another plan's actions onto this one.
    pub fn merge(mut self, other: FaultPlan) -> Self {
        self.timed.extend(other.timed);
        self
    }

    /// The scheduled `(time, action)` pairs, in insertion order. Entries
    /// with equal times execute in this order (the queue breaks ties by
    /// insertion sequence).
    pub fn actions(&self) -> &[(SimTime, FaultAction)] {
        &self.timed
    }

    /// Number of scheduled actions.
    pub fn len(&self) -> usize {
        self.timed.len()
    }

    /// Whether the plan is empty.
    pub fn is_empty(&self) -> bool {
        self.timed.is_empty()
    }

    /// Expand `seed` into a concrete random fault schedule over `links`
    /// within `[0, horizon)`: per link, up to two outages, at most one
    /// brownout, one queue squeeze and one bursty-loss episode. Every
    /// fault ends by `0.8 × horizon`, so a sized flow always gets a
    /// fault-free tail to finish in. The expansion is purely a function of
    /// `(seed, links, horizon)` — same inputs, same plan.
    pub fn randomized(seed: u64, links: &[LinkId], horizon: SimTime) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut plan = FaultPlan::new();
        let span = horizon.as_nanos();
        assert!(span > 0, "horizon must be positive");
        // All faults live in [2% , 80%) of the horizon.
        let lo = span / 50;
        let hi = span * 4 / 5;
        let window = |rng: &mut StdRng, max_frac: u64| {
            let start = rng.gen_range(lo..hi);
            let max_len = ((hi - start) / max_frac).max(1);
            let end = start + rng.gen_range(1..=max_len);
            (SimTime(start), SimTime(end.min(hi)))
        };
        for &link in links {
            for _ in 0..rng.gen_range(0..=2u32) {
                let (from, until) = window(&mut rng, 4);
                if until > from {
                    plan = plan.outage(link, from, until);
                }
            }
            if rng.gen_bool(0.5) {
                let (from, until) = window(&mut rng, 2);
                let factor = rng.gen_range(0.1..=0.9);
                if until > from {
                    plan = plan.brownout(link, from, until, factor);
                }
            }
            if rng.gen_bool(0.5) {
                let (from, until) = window(&mut rng, 2);
                let pkts = rng.gen_range(1..=4usize);
                if until > from {
                    plan = plan.queue_squeeze(link, from, until, pkts);
                }
            }
            if rng.gen_bool(0.5) {
                let (from, until) = window(&mut rng, 2);
                let params = GeParams::bursty(
                    rng.gen_range(2.0..=50.0),
                    rng.gen_range(50.0..=2000.0),
                    rng.gen_range(0.2..=1.0),
                );
                if until > from {
                    plan = plan.bursty_loss(link, from, until, params);
                }
            }
        }
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_emit_paired_actions() {
        let s = SimTime::from_secs;
        let plan = FaultPlan::new().outage(3, s(1), s(2));
        assert_eq!(
            plan.actions(),
            &[(s(1), FaultAction::Down { link: 3 }), (s(2), FaultAction::Up { link: 3 })]
        );
    }

    #[test]
    fn ge_params_bursty_means() {
        let p = GeParams::bursty(10.0, 990.0, 0.5);
        assert!((p.stationary_bad() - 0.01).abs() < 1e-12);
        assert!((p.mean_loss() - 0.005).abs() < 1e-12);
    }

    #[test]
    fn randomized_is_a_pure_function_of_its_inputs() {
        let links = [0, 1, 2];
        let h = SimTime::from_secs(60);
        let a = FaultPlan::randomized(9, &links, h);
        let b = FaultPlan::randomized(9, &links, h);
        assert_eq!(a, b);
        // Different seeds almost surely differ (this seed pair does).
        let c = FaultPlan::randomized(10, &links, h);
        assert_ne!(a, c);
    }

    #[test]
    fn randomized_faults_end_before_80_percent_of_horizon() {
        let h = SimTime::from_secs(100);
        for seed in 0..50 {
            let plan = FaultPlan::randomized(seed, &[0, 1], h);
            for &(at, _) in plan.actions() {
                assert!(at <= SimTime::from_secs(80), "fault at {at} past the 80% fence");
            }
        }
    }

    #[test]
    #[should_panic]
    fn total_loss_is_a_valid_action_but_above_one_is_not() {
        let mut plan = FaultPlan::new();
        plan.push(SimTime::ZERO, FaultAction::SetLoss { link: 0, p: 1.0 }); // fine
        plan.push(SimTime::ZERO, FaultAction::SetLoss { link: 0, p: 1.1 }); // panics
    }
}
