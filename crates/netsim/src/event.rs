//! The discrete-event queue.
//!
//! Two interchangeable backends sit behind [`EventQueue`]:
//!
//! * [`QueueBackend::TimerWheel`] (default) — the hierarchical timer wheel
//!   in [`crate::wheel`], O(1) amortized push/pop;
//! * [`QueueBackend::BinaryHeap`] — the original `BinaryHeap` future-event
//!   list, kept as the reference implementation for differential testing
//!   and for benchmarking the wheel against.
//!
//! Both produce the **same** pop order — ascending `(at, seq)` — which is
//! the determinism contract the whole simulator rests on. The property
//! tests at the bottom of this file drive both backends with identical
//! random schedules (including far-future RTO-style deadlines and bursts
//! of events in one wheel tick) and require identical pop sequences.

use crate::cbr::CbrId;
use crate::link::LinkId;
use crate::packet::Packet;
use crate::sim::ConnId;
use crate::time::SimTime;
use crate::wheel::TimerWheel;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::tcp::SackRanges;

/// Selects the data structure behind the simulator's event queue.
///
/// Both backends are observationally identical (bit-for-bit identical runs
/// for a fixed seed); they differ only in speed. The default is the timer
/// wheel unless the crate is built with the `heap-queue` feature, which
/// flips the default back to the binary heap (useful for A/B timing runs
/// and as an escape hatch).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QueueBackend {
    /// Hierarchical timer wheel: O(1) amortized, allocation-free steady
    /// state. The default.
    TimerWheel,
    /// `std::collections::BinaryHeap` future-event list: O(log n), the
    /// seed implementation, kept as the reference for differential tests.
    BinaryHeap,
}

impl Default for QueueBackend {
    fn default() -> Self {
        if cfg!(feature = "heap-queue") {
            QueueBackend::BinaryHeap
        } else {
            QueueBackend::TimerWheel
        }
    }
}

impl QueueBackend {
    /// Short stable name, used in benchmark output.
    pub fn name(self) -> &'static str {
        match self {
            QueueBackend::TimerWheel => "wheel",
            QueueBackend::BinaryHeap => "heap",
        }
    }
}

/// Information carried by an ACK back to the sender. The ACK's content is
/// fixed at the moment the receiver generates it, so it is computed at
/// delivery time and carried in the event.
#[derive(Debug, Clone, Copy)]
pub(crate) struct AckInfo {
    /// Receiver's cumulative ACK: the next subflow sequence number expected.
    pub cum: u64,
    /// Selective acknowledgment ranges above the cumulative point.
    pub sacks: SackRanges,
}

/// Everything that can happen in the simulated world.
#[derive(Debug, Clone, Copy)]
pub(crate) enum EventKind {
    /// A link finished serializing the packet in service.
    TxDone { link: LinkId },
    /// A packet finished propagating and arrives at `pkt.hop` of its path
    /// (or at the destination if the path is exhausted).
    Arrive { pkt: Packet },
    /// An ACK reaches the sender of `conn`/`sub`. The ACK's content (fixed
    /// at delivery time) lives in the simulator's [`AckInfo`] pool; `ack`
    /// is its slot index, freed when the event is dispatched. Carrying the
    /// 4-byte slot instead of the ~100-byte `AckInfo` inline keeps every
    /// queued `Event` small, which matters because the timer wheel copies
    /// events between slabs as time advances.
    AckArrive { conn: ConnId, sub: usize, ack: u32 },
    /// A retransmission-timer event. Timers are lazy: at most one event is
    /// pending per subflow, and a firing that arrives before the current
    /// deadline simply re-schedules itself — this keeps the event queue at
    /// O(subflows) instead of one stale entry per ACK.
    RtoFire { conn: ConnId, sub: usize },
    /// A connection begins transmitting.
    ConnStart { conn: ConnId },
    /// A finished connection's hot arena window is recycled (flow
    /// lifecycle mode only — see [`crate::Simulator::set_flow_lifecycle`]).
    /// Scheduled one straggler-grace period after the transfer completed,
    /// so every in-flight packet, ACK and stale timer for the flow has
    /// drained before its slots are handed to another connection.
    ConnRetire { conn: ConnId },
    /// A CBR source emits its next packet.
    CbrSend { src: CbrId, gen: u64 },
    /// A CBR source toggles between its on and off states.
    CbrToggle { src: CbrId },
    /// A scripted fault fires: `idx` indexes the simulator's installed
    /// fault-action table (see [`crate::Simulator::install_fault_plan`]).
    /// Faults are ordinary events, so they execute at their exact time in
    /// deterministic order with everything else — never "between steps".
    Fault { idx: usize },
    /// The telemetry probe samples the world and re-schedules itself (see
    /// [`crate::Simulator::enable_probe`]). Sampling draws no randomness
    /// and emits no packets, so the tick cannot perturb packet history.
    ProbeTick,
}

#[derive(Debug)]
pub(crate) struct Event {
    pub at: SimTime,
    /// Monotonic tie-breaker: simultaneous events fire in insertion order,
    /// making runs fully deterministic.
    pub seq: u64,
    pub kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Event {}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event pops first.
        other.at.cmp(&self.at).then(other.seq.cmp(&self.seq))
    }
}

#[derive(Debug)]
enum BackendImpl {
    // Boxed: the wheel's slot array is ~2.5 KiB, the heap variant 24 bytes.
    Wheel(Box<TimerWheel>),
    Heap(BinaryHeap<Event>),
}

/// A deterministic future-event list.
#[derive(Debug)]
pub(crate) struct EventQueue {
    backend: BackendImpl,
    next_seq: u64,
    /// Total events ever pushed.
    scheduled: u64,
    /// High-water mark of pending events.
    peak_pending: usize,
}

impl Default for EventQueue {
    fn default() -> Self {
        EventQueue::with_backend(QueueBackend::default())
    }
}

impl EventQueue {
    pub fn with_backend(backend: QueueBackend) -> Self {
        let backend = match backend {
            QueueBackend::TimerWheel => BackendImpl::Wheel(Box::new(TimerWheel::new())),
            QueueBackend::BinaryHeap => BackendImpl::Heap(BinaryHeap::new()),
        };
        EventQueue { backend, next_seq: 0, scheduled: 0, peak_pending: 0 }
    }

    /// Which backend this queue runs on.
    pub fn backend(&self) -> QueueBackend {
        match self.backend {
            BackendImpl::Wheel(_) => QueueBackend::TimerWheel,
            BackendImpl::Heap(_) => QueueBackend::BinaryHeap,
        }
    }

    pub fn push(&mut self, at: SimTime, kind: EventKind) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.scheduled += 1;
        match &mut self.backend {
            BackendImpl::Wheel(w) => w.push(at, seq, kind),
            BackendImpl::Heap(h) => h.push(Event { at, seq, kind }),
        }
        let pending = self.len();
        if pending > self.peak_pending {
            self.peak_pending = pending;
        }
    }

    /// Pop the next event at or before `horizon`, if any.
    pub fn pop_before(&mut self, horizon: SimTime) -> Option<Event> {
        match &mut self.backend {
            BackendImpl::Wheel(w) => w.pop_before(horizon),
            BackendImpl::Heap(h) => {
                if h.peek().is_some_and(|e| e.at <= horizon) {
                    h.pop()
                } else {
                    None
                }
            }
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        match &self.backend {
            BackendImpl::Wheel(w) => w.len(),
            BackendImpl::Heap(h) => h.len(),
        }
    }

    /// Total events ever scheduled on this queue.
    pub fn scheduled(&self) -> u64 {
        self.scheduled
    }

    /// High-water mark of simultaneously pending events.
    pub fn peak_pending(&self) -> usize {
        self.peak_pending
    }
}

/// Scheduler-only micro-benchmark: hold `pending` events resident and do
/// `ops` pop-then-push steps (each pop re-schedules one event a pseudo-random
/// RTT-scale delta ahead), returning the wall time of the churn loop.
///
/// This isolates the event queue from the rest of the simulator so the
/// wheel-vs-heap comparison is not diluted by per-event TCP processing;
/// `benches/sim_micro.rs` reports both this and the end-to-end numbers.
/// The schedule is deterministic (internal xorshift), so both backends see
/// the identical workload.
pub fn queue_churn(backend: QueueBackend, pending: usize, ops: u64) -> std::time::Duration {
    let mut q = EventQueue::with_backend(backend);
    let mut state = 0x9e37_79b9_7f4a_7c15u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    // Deltas up to 100 ms spread events across several wheel levels, like
    // the mix of serialization, propagation and RTO timers in a real run.
    const SPREAD: u64 = 100_000_000;
    for _ in 0..pending {
        q.push(SimTime(next() % SPREAD), EventKind::ConnStart { conn: 0 });
    }
    let started = crate::perf::wall_clock();
    for _ in 0..ops {
        let e = q.pop_before(SimTime::MAX).expect("queue stays at `pending` events");
        q.push(SimTime(e.at.as_nanos() + 1 + next() % SPREAD), EventKind::ConnStart { conn: 0 });
    }
    started.elapsed()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn both_backends() -> [EventQueue; 2] {
        [
            EventQueue::with_backend(QueueBackend::TimerWheel),
            EventQueue::with_backend(QueueBackend::BinaryHeap),
        ]
    }

    #[test]
    fn events_pop_in_time_order() {
        for mut q in both_backends() {
            q.push(SimTime::from_millis(5), EventKind::ConnStart { conn: 0 });
            q.push(SimTime::from_millis(1), EventKind::ConnStart { conn: 1 });
            q.push(SimTime::from_millis(3), EventKind::ConnStart { conn: 2 });
            let order: Vec<SimTime> =
                std::iter::from_fn(|| q.pop_before(SimTime::MAX).map(|e| e.at)).collect();
            assert_eq!(
                order,
                vec![SimTime::from_millis(1), SimTime::from_millis(3), SimTime::from_millis(5)]
            );
        }
    }

    #[test]
    fn simultaneous_events_fire_in_insertion_order() {
        for mut q in both_backends() {
            let t = SimTime::from_millis(1);
            for conn in 0..10 {
                q.push(t, EventKind::ConnStart { conn });
            }
            let mut seen = Vec::new();
            while let Some(e) = q.pop_before(SimTime::MAX) {
                if let EventKind::ConnStart { conn } = e.kind {
                    seen.push(conn);
                }
            }
            assert_eq!(seen, (0..10).collect::<Vec<_>>());
        }
    }

    #[test]
    fn pop_respects_horizon() {
        // Satellite regression: an event exactly AT the horizon pops; one
        // nanosecond past it does not — on both backends.
        for mut q in both_backends() {
            let backend = q.backend();
            q.push(SimTime::from_millis(10), EventKind::ConnStart { conn: 0 });
            assert!(
                q.pop_before(SimTime::from_millis(5)).is_none(),
                "{}: early horizon must not pop",
                backend.name()
            );
            assert_eq!(q.len(), 1);
            assert!(
                q.pop_before(SimTime::from_millis(10)).is_some(),
                "{}: event exactly at the horizon must pop",
                backend.name()
            );
        }
        for mut q in both_backends() {
            let backend = q.backend();
            let at = SimTime::from_millis(10);
            q.push(at, EventKind::ConnStart { conn: 0 });
            let just_before = SimTime(at.as_nanos() - 1);
            assert!(
                q.pop_before(just_before).is_none(),
                "{}: horizon 1 ns short must not pop",
                backend.name()
            );
            assert!(q.pop_before(at).is_some(), "{}", backend.name());
            assert!(q.pop_before(SimTime::MAX).is_none());
        }
    }

    #[test]
    fn default_backend_tracks_feature_flag() {
        let expect = if cfg!(feature = "heap-queue") {
            QueueBackend::BinaryHeap
        } else {
            QueueBackend::TimerWheel
        };
        assert_eq!(QueueBackend::default(), expect);
        assert_eq!(EventQueue::default().backend(), expect);
    }

    #[test]
    fn counters_track_scheduled_and_peak() {
        for mut q in both_backends() {
            for i in 0..5u64 {
                q.push(SimTime(i * 100), EventKind::ConnStart { conn: 0 });
            }
            for _ in 0..3 {
                q.pop_before(SimTime::MAX);
            }
            q.push(SimTime(1_000), EventKind::ConnStart { conn: 0 });
            assert_eq!(q.scheduled(), 6);
            assert_eq!(q.peak_pending(), 5);
            assert_eq!(q.len(), 3);
        }
    }

    /// One step of a random schedule: push an event at `now + delta`, or
    /// pop everything up to a horizon `delta` from now.
    #[derive(Debug, Clone, Copy)]
    enum Op {
        Push { delta: u64 },
        PopUntil { delta: u64 },
    }

    fn op_strategy() -> BoxedStrategy<Op> {
        prop_oneof![
            // Mostly near-term deltas (sub-tick to a few ms)...
            (0u64..5_000_000).prop_map(|delta| Op::Push { delta }),
            // ...same-tick bursts (several events inside one 1.024 µs tick),
            (0u64..1_024).prop_map(|delta| Op::Push { delta }),
            // ...far-future RTO-style deadlines (up to 60 s and beyond the
            // wheel span at ~19 h),
            (0u64..80_000_000_000_000).prop_map(|delta| Op::Push { delta }),
            // ...and pops that advance simulated time.
            (0u64..10_000_000).prop_map(|delta| Op::PopUntil { delta }),
        ]
        .boxed()
    }

    proptest! {
        /// Differential test: the wheel pops the exact same (at, seq)
        /// sequence as the reference heap under arbitrary interleavings of
        /// pushes and horizon-bounded pops.
        #[test]
        fn wheel_matches_heap_pop_order(ops in prop::collection::vec(op_strategy(), 1..200)) {
            let mut wheel = EventQueue::with_backend(QueueBackend::TimerWheel);
            let mut heap = EventQueue::with_backend(QueueBackend::BinaryHeap);
            // Simulated "now": pushes are never scheduled in the past,
            // matching the simulator's contract.
            let mut now = 0u64;
            for op in ops {
                match op {
                    Op::Push { delta } => {
                        let at = SimTime(now + delta);
                        wheel.push(at, EventKind::ConnStart { conn: 0 });
                        heap.push(at, EventKind::ConnStart { conn: 0 });
                    }
                    Op::PopUntil { delta } => {
                        let horizon = SimTime(now + delta);
                        loop {
                            let a = wheel.pop_before(horizon);
                            let b = heap.pop_before(horizon);
                            prop_assert_eq!(
                                a.as_ref().map(|e| (e.at, e.seq)),
                                b.as_ref().map(|e| (e.at, e.seq))
                            );
                            match a {
                                Some(e) => now = now.max(e.at.as_nanos()),
                                None => break,
                            }
                        }
                        now = now.max(horizon.as_nanos());
                    }
                }
            }
            // Drain both fully; the tails must agree too.
            loop {
                let a = wheel.pop_before(SimTime::MAX);
                let b = heap.pop_before(SimTime::MAX);
                prop_assert_eq!(
                    a.as_ref().map(|e| (e.at, e.seq)),
                    b.as_ref().map(|e| (e.at, e.seq))
                );
                if a.is_none() {
                    break;
                }
            }
            prop_assert_eq!(wheel.len(), 0);
            prop_assert_eq!(heap.len(), 0);
        }
    }

    /// The wheel copies events between slabs as time advances, so `Event`
    /// size is a real throughput knob. `AckArrive` must carry its pool
    /// slot, never an inline `AckInfo` (which alone is bigger than this
    /// whole bound).
    #[test]
    fn queued_events_stay_small() {
        assert!(std::mem::size_of::<AckInfo>() > 64, "payload belongs in the pool");
        let sz = std::mem::size_of::<Event>();
        assert!(sz <= 72, "Event grew to {sz} bytes; keep it lean");
    }

    /// Regression pinned from a proptest shrink: two horizon-bounded pops
    /// park the wheel cursor mid-slot, then two pushes land one event in the
    /// cursor's own level-1 slot (one revolution ahead in rotation order)
    /// and one in a later slot with an earlier tick. A candidate search that
    /// stopped at the cursor's slot skipped the second event entirely.
    #[test]
    fn cursor_slot_does_not_shadow_later_slots() {
        let mut wheel = EventQueue::with_backend(QueueBackend::TimerWheel);
        let mut heap = EventQueue::with_backend(QueueBackend::BinaryHeap);
        assert!(wheel.pop_before(SimTime(180_074)).is_none());
        assert!(wheel.pop_before(SimTime(6_203_118)).is_none());
        for at in [SimTime(10_396_556), SimTime(9_002_129)] {
            wheel.push(at, EventKind::ConnStart { conn: 0 });
            heap.push(at, EventKind::ConnStart { conn: 0 });
        }
        loop {
            let a = wheel.pop_before(SimTime::MAX);
            let b = heap.pop_before(SimTime::MAX);
            assert_eq!(
                a.as_ref().map(|e| (e.at, e.seq)),
                b.as_ref().map(|e| (e.at, e.seq))
            );
            if a.is_none() {
                break;
            }
        }
    }
}
