//! The discrete-event queue.

use crate::cbr::CbrId;
use crate::link::LinkId;
use crate::packet::Packet;
use crate::sim::ConnId;
use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::tcp::SackRanges;

/// Information carried by an ACK back to the sender. The ACK's content is
/// fixed at the moment the receiver generates it, so it is computed at
/// delivery time and carried in the event.
#[derive(Debug, Clone, Copy)]
pub(crate) struct AckInfo {
    /// Receiver's cumulative ACK: the next subflow sequence number expected.
    pub cum: u64,
    /// Selective acknowledgment ranges above the cumulative point.
    pub sacks: SackRanges,
}

/// Everything that can happen in the simulated world.
#[derive(Debug, Clone, Copy)]
pub(crate) enum EventKind {
    /// A link finished serializing the packet in service.
    TxDone { link: LinkId },
    /// A packet finished propagating and arrives at `pkt.hop` of its path
    /// (or at the destination if the path is exhausted).
    Arrive { pkt: Packet },
    /// An ACK reaches the sender of `conn`/`sub`.
    AckArrive { conn: ConnId, sub: usize, ack: AckInfo },
    /// A retransmission-timer event. Timers are lazy: at most one event is
    /// pending per subflow, and a firing that arrives before the current
    /// deadline simply re-schedules itself — this keeps the event heap at
    /// O(subflows) instead of one stale entry per ACK.
    RtoFire { conn: ConnId, sub: usize },
    /// A connection begins transmitting.
    ConnStart { conn: ConnId },
    /// A CBR source emits its next packet.
    CbrSend { src: CbrId, gen: u64 },
    /// A CBR source toggles between its on and off states.
    CbrToggle { src: CbrId },
}

#[derive(Debug)]
pub(crate) struct Event {
    pub at: SimTime,
    /// Monotonic tie-breaker: simultaneous events fire in insertion order,
    /// making runs fully deterministic.
    pub seq: u64,
    pub kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Event {}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event pops first.
        other.at.cmp(&self.at).then(other.seq.cmp(&self.seq))
    }
}

/// A deterministic future-event list.
#[derive(Debug, Default)]
pub(crate) struct EventQueue {
    heap: BinaryHeap<Event>,
    next_seq: u64,
}

impl EventQueue {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn push(&mut self, at: SimTime, kind: EventKind) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Event { at, seq, kind });
    }

    /// Pop the next event at or before `horizon`, if any.
    pub fn pop_before(&mut self, horizon: SimTime) -> Option<Event> {
        if self.heap.peek().is_some_and(|e| e.at <= horizon) {
            self.heap.pop()
        } else {
            None
        }
    }

    /// Number of pending events (used by tests and diagnostics).
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn len(&self) -> usize {
        self.heap.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_pop_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_millis(5), EventKind::ConnStart { conn: 0 });
        q.push(SimTime::from_millis(1), EventKind::ConnStart { conn: 1 });
        q.push(SimTime::from_millis(3), EventKind::ConnStart { conn: 2 });
        let order: Vec<SimTime> = std::iter::from_fn(|| q.pop_before(SimTime::MAX).map(|e| e.at))
            .collect();
        assert_eq!(
            order,
            vec![SimTime::from_millis(1), SimTime::from_millis(3), SimTime::from_millis(5)]
        );
    }

    #[test]
    fn simultaneous_events_fire_in_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(1);
        for conn in 0..10 {
            q.push(t, EventKind::ConnStart { conn });
        }
        let mut seen = Vec::new();
        while let Some(e) = q.pop_before(SimTime::MAX) {
            if let EventKind::ConnStart { conn } = e.kind {
                seen.push(conn);
            }
        }
        assert_eq!(seen, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn pop_respects_horizon() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_millis(10), EventKind::ConnStart { conn: 0 });
        assert!(q.pop_before(SimTime::from_millis(5)).is_none());
        assert_eq!(q.len(), 1);
        assert!(q.pop_before(SimTime::from_millis(10)).is_some());
    }
}
