//! Reference scoreboard implementations: the original `BTreeSet`/`BTreeMap`
//! bookkeeping from before the bitmap rewrite, preserved verbatim behind
//! the [`Scoreboard`]/[`OooBuf`] traits.
//!
//! These are the *semantic ground truth* for the differential proptests in
//! `tcp.rs`: the bitmap scoreboards must produce bit-identical outcomes
//! when driven through identical ACK/SACK/loss sequences. The
//! `btree-scoreboard` cargo feature flips the crate-wide default back to
//! these (mirroring how `heap-queue` flips the event-queue backend), so a
//! whole simulation — including the chaos digests — can be replayed on the
//! old structures for cross-checking.
//!
//! This file deliberately is **not** marked `lint:hot-path`: B-tree
//! containers are its whole point.

use crate::scoreboard::{OooBuf, Scoreboard};
use crate::tcp::{SackRanges, MAX_SACK_RANGES};
use std::collections::{BTreeMap, BTreeSet};

/// The pre-rewrite sender scoreboard: ordered sets with per-node heap
/// allocation. `alloc_events` reports accepted inserts as a proxy for the
/// node churn (the bitmap impl reports actual growth events instead).
#[derive(Debug)]
pub(crate) struct BTreeScoreboard {
    /// Sequences (≥ una) the receiver reported holding.
    sacked: BTreeSet<u64>,
    /// Sequences deemed lost and not yet retransmitted this episode.
    lost: BTreeSet<u64>,
    /// Sequences retransmitted and presumed back in the network, mapped to
    /// the value of `sack_events` when they were retransmitted.
    retx_out: BTreeMap<u64, u64>,
    /// Scratch for the re-mark pass (kept to match the old allocation
    /// discipline exactly).
    remark_scratch: Vec<u64>,
    inserts: u64,
}

impl Scoreboard for BTreeScoreboard {
    fn with_window_hint(_max_window: f64) -> Self {
        Self {
            sacked: BTreeSet::new(),
            lost: BTreeSet::new(),
            retx_out: BTreeMap::new(),
            remark_scratch: Vec::new(),
            inserts: 0,
        }
    }

    fn reset_for_reuse(&mut self) {
        self.sacked.clear();
        self.lost.clear();
        self.retx_out.clear();
        self.remark_scratch.clear();
    }

    fn sacked_len(&self) -> u64 {
        self.sacked.len() as u64
    }

    fn sacked_contains(&self, seq: u64) -> bool {
        self.sacked.contains(&seq)
    }

    fn lost_len(&self) -> u64 {
        self.lost.len() as u64
    }

    fn lost_is_empty(&self) -> bool {
        self.lost.is_empty()
    }

    fn pop_lost_for_retx(&mut self, sack_events: u64) -> Option<u64> {
        let seq = self.lost.pop_first()?;
        self.retx_out.insert(seq, sack_events);
        self.inserts += 1;
        Some(seq)
    }

    fn advance_to(&mut self, cum: u64) {
        self.sacked = self.sacked.split_off(&cum);
        self.lost = self.lost.split_off(&cum);
        self.retx_out = self.retx_out.split_off(&cum);
    }

    fn sack_one(&mut self, seq: u64) -> bool {
        if !self.sacked.insert(seq) {
            return false;
        }
        self.inserts += 1;
        self.lost.remove(&seq);
        self.retx_out.remove(&seq);
        true
    }

    fn nth_highest_sacked(&self, n: usize) -> Option<u64> {
        self.sacked.iter().nth_back(n).copied()
    }

    fn mark_holes_lost(&mut self, una: u64, cutoff: u64) -> bool {
        let mut any = false;
        for seq in una..cutoff {
            if !self.sacked.contains(&seq)
                && !self.retx_out.contains_key(&seq)
                && self.lost.insert(seq)
            {
                self.inserts += 1;
                any = true;
            }
        }
        any
    }

    fn remark_lost_retx(&mut self, cutoff: u64, sack_events: u64, thresh: u64) -> bool {
        let mut remark = std::mem::take(&mut self.remark_scratch);
        remark.clear();
        remark.extend(
            self.retx_out
                .iter()
                .filter(|&(&s, &ev)| s < cutoff && sack_events >= ev + thresh)
                .map(|(&s, _)| s),
        );
        let mut any = false;
        for &s in &remark {
            self.retx_out.remove(&s);
            self.lost.insert(s);
            self.inserts += 1;
            any = true;
        }
        self.remark_scratch = remark;
        any
    }

    fn rto_collapse(&mut self, una: u64, next_seq: u64) {
        self.retx_out.clear();
        for seq in una..next_seq {
            if !self.sacked.contains(&seq) && self.lost.insert(seq) {
                self.inserts += 1;
            }
        }
    }

    fn alloc_events(&self) -> u64 {
        self.inserts
    }
}

/// The pre-rewrite receiver reassembly buffer. Only the differential tests
/// and the `btree-scoreboard` feature construct it (the sender-side board
/// also serves `scoreboard_churn` in default builds).
#[cfg_attr(not(any(test, feature = "btree-scoreboard")), allow(dead_code))]
#[derive(Debug, Default)]
pub(crate) struct BTreeOoo {
    ooo: BTreeSet<u64>,
    inserts: u64,
}

impl OooBuf for BTreeOoo {
    fn reset_for_reuse(&mut self) {
        self.ooo.clear();
    }

    fn insert(&mut self, seq: u64) {
        if self.ooo.insert(seq) {
            self.inserts += 1;
        }
    }

    fn remove(&mut self, seq: u64) -> bool {
        self.ooo.remove(&seq)
    }

    fn contains(&self, seq: u64) -> bool {
        self.ooo.contains(&seq)
    }

    fn advance_watermark(&mut self, _next_expected: u64) {}

    fn sack_ranges(&self) -> SackRanges {
        let mut out: SackRanges = [None; MAX_SACK_RANGES];
        let mut it = self.ooo.iter().copied();
        let Some(first) = it.next() else { return out };
        let mut start = first;
        let mut end = first + 1;
        let mut n = 0;
        for s in it {
            if s == end {
                end += 1;
            } else {
                out[n] = Some((start, end));
                n += 1;
                if n == MAX_SACK_RANGES {
                    return out;
                }
                start = s;
                end = s + 1;
            }
        }
        out[n] = Some((start, end));
        out
    }

    fn alloc_events(&self) -> u64 {
        self.inserts
    }
}
