//! Slab-backed struct-of-arrays arena for per-subflow flow state.
//!
//! The simulator used to keep one `Vec<SubflowState>` of fat mixed
//! hot/cold structs. At FatTree K=32+ scale the per-ACK path walked
//! cache lines full of routing tables and write-rarely stats to reach
//! the few fields it actually needed, and flow churn (Poisson short-flow
//! arrivals) hit the global allocator on every open/close. This module
//! replaces that with a [`FlowArena`]:
//!
//! * **Hot columns** — [`SubflowSender`] (cwnd/una/next_seq/srtt and the
//!   scoreboard), [`SubflowReceiver`], and the lazy RTO timer pair — live
//!   in parallel `Vec`s indexed by a *hot* slot index. A connection's
//!   subflows occupy a contiguous window `[hot_base, hot_base + n)`.
//!   Windows are generation-indexed and **recycled**: when a connection
//!   retires, its window goes on a size-keyed free list and a later
//!   connection of the same shape reuses the slots in place via
//!   `reset_for_reuse` — no allocator traffic, counters stay monotone.
//! * **Cold rows** — [`ColdSubflow`]: the route, ACK-return delay,
//!   backup/closed flags, per-subflow send counter and the TCP params
//!   needed to re-arm a recycled sender. Cold rows are append-only and
//!   their indices are *stable for the lifetime of the world*, so
//!   straggler packets still in link queues keep routing correctly even
//!   after the owning flow's hot window was recycled.
//! * **A pooled ring allocator** — when no free window of a compatible
//!   shape exists, smaller free windows are cannibalized: their
//!   scoreboard/reassembly bitmap storage is gutted into a [`RingPool`]
//!   and the replacement slots draw those word-buffers back out instead
//!   of allocating fresh ones.
//!
//! The arena is purely a storage layout: simulation *behavior* is
//! unchanged, which `sim.rs`'s lifecycle differential proptest and the
//! committed `chaos_smoke` digest pin down.
// lint:shard-state — the arena is per-shard slab storage: panic-free and
// cast-audited like the sender state it holds, but not `lint:hot-path` —
// slab indexing is the storage idiom here, its own methods run at flow
// open/close (the churn path), and the per-ACK column reads live in
// `sim.rs`. The free-list BTreeMap is likewise churn-path-only.

use crate::link::LinkPath;
use crate::scoreboard::RingPool;
use crate::tcp::{SubflowReceiver, SubflowSender, TcpParams};
use crate::time::SimTime;
use std::collections::BTreeMap;

/// Sentinel hot base for a connection whose window is not resident (not
/// yet started under flow lifecycle, or already retired).
pub(crate) const NOT_RESIDENT: u32 = u32::MAX;

/// Cold per-subflow state: everything the per-ACK path does *not* touch.
/// Rows are append-only and indexed by the connection's stable
/// `sub_base`; they survive hot-window recycling so late packets still
/// find their route and admin/path-management flags.
#[derive(Debug)]
pub(crate) struct ColdSubflow {
    /// Forward route (looked up per hop by packets, including stragglers
    /// of retired flows — this is why cold rows are never recycled).
    pub(crate) path: LinkPath,
    /// Fixed delay from delivery at the destination to the ACK reaching
    /// the sender (reverse propagation + any extra RTT).
    pub(crate) ack_delay: SimTime,
    /// RTT hint handed to a (re)initialized sender.
    pub(crate) rtt_hint: f64,
    /// TCP parameters, kept so a recycled hot slot can be re-armed to
    /// exactly the state `SubflowSender::new` would produce.
    pub(crate) params: TcpParams,
    /// Backup priority (MP_JOIN `B` bit).
    pub(crate) backup: bool,
    /// Administratively closed (address withdrawn).
    pub(crate) closed: bool,
    /// Packets handed to the link layer on this subflow.
    pub(crate) sent_pkts: u64,
}

/// Struct-of-arrays storage for every subflow in the world: hot columns
/// in recycled generation-indexed windows, cold rows parked separately.
/// See the [module docs](self) for the layout rationale.
#[derive(Debug, Default)]
pub(crate) struct FlowArena {
    /// Hot column: sender state (window, scoreboard, RTT estimator).
    pub(crate) tx: Vec<SubflowSender>,
    /// Hot column: receiver/reassembly state.
    pub(crate) rx: Vec<SubflowReceiver>,
    /// Hot column: absolute RTO deadline, if conceptually armed.
    pub(crate) rto_deadline: Vec<Option<SimTime>>,
    /// Hot column: time of the earliest pending `RtoFire` event (lazy
    /// timers re-queue themselves when they fire early).
    pub(crate) rto_event_at: Vec<Option<SimTime>>,
    /// Hot column: slot generation, bumped on every acquisition. Lets
    /// debug builds catch a stale `(base, gen)` handle touching a slot
    /// that has since been recycled to another connection.
    pub(crate) gen: Vec<u32>,
    /// Cold rows, indexed by the stable `sub_base` space.
    pub(crate) cold: Vec<ColdSubflow>,
    /// Free hot windows keyed by `(window size, envelope class)`: the
    /// class is the `⌈log2⌉` of the smallest warmed per-packet-metadata
    /// capacity across the window's lanes (see
    /// [`crate::cast::env_class_u8`]). Acquisition matches a flow to a
    /// window whose storage is already sized for it, so a short clean
    /// flow never re-tenants — and then regrows — a window a congested
    /// tiny-flight flow left behind.
    free: BTreeMap<(u32, u8), Vec<u32>>,
    /// Word-buffer pool fed by cannibalized windows (see
    /// [`Self::acquire_hot`]).
    pool: RingPool,
    /// Capacity-growth events of the hot columns (folded into
    /// `SimPerf::hot_allocs`; flat once churn reuses windows).
    grows: u64,
    /// Windows served from the free lists instead of fresh storage.
    reuses: u64,
}

impl FlowArena {
    /// Number of hot slots (resident + free + leaked husks).
    pub(crate) fn hot_len(&self) -> usize {
        self.tx.len()
    }

    /// Allocation accounting: hot-column capacity growth events, for
    /// [`crate::SimPerf::hot_allocs`]. Initial admission-time column
    /// fills are not counted (matching the sender/scoreboard discipline
    /// of not counting constructor allocations); growth during lifecycle
    /// churn is.
    pub(crate) fn alloc_events(&self) -> u64 {
        self.grows
    }

    /// Hot windows served by recycling instead of fresh storage.
    pub(crate) fn reuses(&self) -> u64 {
        self.reuses
    }

    /// Append one cold row; returns its stable index.
    pub(crate) fn push_cold(&mut self, row: ColdSubflow) -> usize {
        self.cold.push(row);
        self.cold.len() - 1
    }

    /// Acquire a hot window of `n` slots for the subflows whose cold rows
    /// start at `cold_base`, returning `(hot_base, generation)`.
    /// `want_env` is the flow's expected per-lane flight envelope in
    /// packets (its transfer size for sized flows, `u64::MAX` for bulk):
    /// reuse prefers, in order, a same-width window whose warmed envelope
    /// already covers it, the *largest*-envelope same-width window below
    /// it (least growth for the new tenant to pay), then a wider window
    /// to split. Otherwise undersized free windows are cannibalized into
    /// the ring pool and fresh slots appended. `count_growth` controls
    /// whether fresh column growth is charged to `alloc_events` —
    /// admission-time fills pass `false` (constructor allocations are
    /// uncounted by convention), lifecycle-churn acquisitions pass
    /// `true`.
    pub(crate) fn acquire_hot(
        &mut self,
        cold_base: usize,
        n: usize,
        count_growth: bool,
        want_env: u64,
    ) -> (u32, u32) {
        debug_assert!(n > 0 && cold_base + n <= self.cold.len());
        let want = crate::cast::slab_u32(n);
        let want_class = crate::cast::env_class_u8(want_env);
        let key = self
            .free
            .range((want, want_class)..=(want, u8::MAX))
            .next()
            .map(|(&k, _)| k)
            .or_else(|| {
                self.free.range((want, 0)..(want, want_class)).next_back().map(|(&k, _)| k)
            })
            .or_else(|| {
                // A wider window can be split; prefer one whose envelope
                // suffices (the key space is tiny — a handful of
                // width/class pairs — so the scan is cheap).
                self.free
                    .range((want + 1, 0)..)
                    .find(|&(&(_, class), _)| class >= want_class)
                    .map(|(&k, _)| k)
            })
            .or_else(|| self.free.range((want + 1, 0)..).next().map(|(&k, _)| k));
        if let Some(key) = key {
            // lint:allow(panic-free, reason = "the key was just yielded by the range scans above; empty stacks are removed eagerly on pop")
            let stack = self.free.get_mut(&key).expect("free-list key just seen");
            // lint:allow(panic-free, reason = "empty stacks are removed eagerly below, so a present key always holds at least one base")
            let base = stack.pop().expect("free-list stacks are never left empty");
            if stack.is_empty() {
                self.free.remove(&key);
            }
            let (size, class) = key;
            if size > want {
                // Split: the tail stays free, inheriting the class (the
                // envelope bound holds per lane, so any sub-window keeps
                // it).
                self.free.entry((size - want, class)).or_default().push(base + want);
            }
            self.reuses += 1;
            let gen = self.reset_window(base as usize, cold_base, n);
            return (base, gen);
        }
        // Nothing fits. Cannibalize undersized free windows: gut their
        // ring storage into the pool so the fresh slots below draw
        // recycled word-buffers instead of allocating. The gutted husk
        // slots are retired for good (a gutted ring degenerates to the
        // interval-fallback path, which would silently re-allocate).
        let mut gutted = 0usize;
        while gutted < n {
            let Some((&key, _)) = self.free.range(..(want, 0)).next_back() else { break };
            let (size, _) = key;
            // lint:allow(panic-free, reason = "the key was just yielded by the range scan above; empty stacks are removed eagerly on pop")
            let stack = self.free.get_mut(&key).expect("free-list key just seen");
            // lint:allow(panic-free, reason = "empty stacks are removed eagerly below, so a present key always holds at least one base")
            let base = stack.pop().expect("free-list stacks are never left empty");
            if stack.is_empty() {
                self.free.remove(&key);
            }
            for i in base as usize..(base + size) as usize {
                self.tx[i].gut_into(&mut self.pool);
                self.rx[i].gut_into(&mut self.pool);
            }
            gutted += size as usize;
        }
        let base = crate::cast::slab_u32(self.tx.len());
        let cap = self.tx.capacity();
        for i in 0..n {
            let row = &self.cold[cold_base + i];
            self.tx.push(SubflowSender::new_pooled(row.params, row.rtt_hint, &mut self.pool));
            self.rx.push(SubflowReceiver::new_pooled(&mut self.pool));
            self.rto_deadline.push(None);
            self.rto_event_at.push(None);
            self.gen.push(0);
        }
        if count_growth && self.tx.capacity() != cap {
            // The columns grow in lockstep; one charge covers the slab.
            self.grows += 1;
        }
        (base, 0)
    }

    /// Re-arm a recycled window in place: every slot ends bit-identical
    /// to a freshly constructed one (pinned by the `reset_for_reuse`
    /// differential proptests in `tcp.rs`), storage and monotone
    /// allocation counters are kept, and the generation is bumped.
    fn reset_window(&mut self, base: usize, cold_base: usize, n: usize) -> u32 {
        for i in 0..n {
            let row = &self.cold[cold_base + i];
            self.tx[base + i].reset_for_reuse(row.params, row.rtt_hint);
            self.rx[base + i].reset_for_reuse();
            self.rto_deadline[base + i] = None;
            self.rto_event_at[base + i] = None;
            self.gen[base + i] = self.gen[base + i].wrapping_add(1);
        }
        self.gen[base]
    }

    /// Return a hot window to the free lists for reuse. `env` is the
    /// warmed envelope the retiring tenant leaves behind (its smallest
    /// per-lane metadata capacity, packets) — it becomes the window's
    /// class key so acquisition can match flows to pre-sized storage.
    /// `gen` is the generation handed out by [`Self::acquire_hot`]; a
    /// mismatch means a stale handle released someone else's window
    /// (debug-asserted).
    pub(crate) fn release_hot(&mut self, hot_base: u32, n: usize, gen: u32, env: u64) {
        debug_assert!(hot_base != NOT_RESIDENT && (hot_base as usize) + n <= self.tx.len());
        debug_assert_eq!(self.gen[hot_base as usize], gen, "stale window handle at release");
        self.free
            .entry((crate::cast::slab_u32(n), crate::cast::env_class_u8(env)))
            .or_default()
            .push(hot_base);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arena_with_cold(n: usize) -> FlowArena {
        let mut a = FlowArena::default();
        for _ in 0..n {
            a.push_cold(ColdSubflow {
                path: LinkPath::from(vec![0]),
                ack_delay: SimTime::from_millis(10),
                rtt_hint: 0.02,
                params: TcpParams::default(),
                backup: false,
                closed: false,
                sent_pkts: 0,
            });
        }
        a
    }

    #[test]
    fn released_windows_are_reused_in_place_with_a_bumped_generation() {
        let mut a = arena_with_cold(4);
        let (b0, g0) = a.acquire_hot(0, 2, true, 8);
        let (b1, _g1) = a.acquire_hot(2, 2, true, 8);
        assert_eq!((b0, b1), (0, 2), "fresh windows are appended in order");
        let len = a.hot_len();
        a.release_hot(b0, 2, g0, 8);
        let (b2, g2) = a.acquire_hot(2, 2, true, 8);
        assert_eq!(b2, b0, "a same-shape acquisition must recycle the freed window");
        assert_eq!(g2, g0 + 1, "recycling must bump the generation");
        assert_eq!(a.hot_len(), len, "reuse must not grow the columns");
        assert_eq!(a.reuses(), 1);
    }

    #[test]
    fn larger_free_windows_are_split_not_skipped() {
        let mut a = arena_with_cold(5);
        let (b0, g0) = a.acquire_hot(0, 4, true, 8);
        a.release_hot(b0, 4, g0, 8);
        let (b1, _) = a.acquire_hot(0, 1, true, 8);
        assert_eq!(b1, b0, "the head of the 4-window serves the 1-slot request");
        let (b2, _) = a.acquire_hot(1, 3, true, 8);
        assert_eq!(b2, b0 + 1, "the split tail serves the next request");
        assert_eq!(a.hot_len(), 4, "both served from recycled storage");
        assert_eq!(a.reuses(), 2);
    }

    #[test]
    fn shape_mismatch_cannibalizes_small_windows_into_the_ring_pool() {
        let mut a = arena_with_cold(6);
        let (b0, g0) = a.acquire_hot(0, 1, true, 8);
        let (b1, g1) = a.acquire_hot(1, 1, true, 8);
        a.release_hot(b0, 1, g0, 8);
        a.release_hot(b1, 1, g1, 8);
        // A 3-wide request cannot reuse the two 1-wide windows: they are
        // gutted into the pool and the fresh slots draw from it.
        let (b2, _) = a.acquire_hot(2, 3, true, 8);
        assert_eq!(b2 as usize, 2, "fresh slots are appended past the husks");
        // The reference BTreeSet scoreboards own no ring storage, so only
        // the bitmap build can observe the pool round-trip.
        #[cfg(not(feature = "btree-scoreboard"))]
        {
            let (hits, _misses) = a.pool_stats();
            assert!(hits > 0, "fresh slots must draw cannibalized ring storage from the pool");
        }
    }

    #[test]
    fn cold_rows_are_stable_across_hot_churn() {
        let mut a = arena_with_cold(2);
        a.cold[1].sent_pkts = 77;
        let (b, g) = a.acquire_hot(0, 2, false, 8);
        a.release_hot(b, 2, g, 8);
        let _ = a.acquire_hot(0, 2, true, 8);
        assert_eq!(a.cold[1].sent_pkts, 77, "cold rows must survive hot recycling");
        assert_eq!(a.cold.len(), 2);
    }

    #[test]
    fn acquisition_matches_flows_to_windows_sized_for_them() {
        let mut a = arena_with_cold(6);
        let (b_small, g_small) = a.acquire_hot(0, 2, true, 4);
        let (b_big, g_big) = a.acquire_hot(2, 2, true, 64);
        let (b_mid, g_mid) = a.acquire_hot(4, 2, true, 16);
        a.release_hot(b_small, 2, g_small, 4);
        a.release_hot(b_big, 2, g_big, 64);
        a.release_hot(b_mid, 2, g_mid, 16);
        // A 40-packet flow needs class 6 (33..=64): only the big window
        // qualifies, even though the small ones were released later.
        let (b0, _) = a.acquire_hot(0, 2, true, 40);
        assert_eq!(b0, b_big, "the 64-envelope window serves the 40-packet flow");
        // A 3-packet flow takes the *smallest* sufficient envelope.
        let (b1, _) = a.acquire_hot(2, 2, true, 3);
        assert_eq!(b1, b_small, "the 4-envelope window serves the 3-packet flow");
        // Nothing sufficient left: fall back to the largest envelope
        // below the request rather than growing fresh columns.
        let len = a.hot_len();
        let (b2, _) = a.acquire_hot(4, 2, true, 1000);
        assert_eq!(b2, b_mid, "largest-below fallback picks the 16-envelope window");
        assert_eq!(a.hot_len(), len, "fallback reuse must not grow the columns");
        assert_eq!(a.reuses(), 3);
    }

    #[cfg(not(feature = "btree-scoreboard"))]
    impl FlowArena {
        fn pool_stats(&self) -> (u64, u64) {
            self.pool.stats()
        }
    }
}
