//! Time-series measurement: periodic sampling of connection and link
//! state, for the paper's timeline figures (Fig. 10, Fig. 15, Fig. 17).
//!
//! [`Recorder`] wraps the "run a step, diff the counters" pattern every
//! timeline experiment needs: give it a sampling interval and the objects
//! to watch, then call [`Recorder::advance_to`] instead of
//! [`Simulator::run_until`]; it chops the run into sampling intervals and
//! records one [`Sample`] per interval.

use crate::link::LinkId;
use crate::probe::ProbeLog;
use crate::sim::{ConnId, Simulator};
use crate::time::SimTime;
use std::io::{self, Write};

/// One sampling interval's measurements.
#[derive(Debug, Clone)]
pub struct Sample {
    /// End of the interval.
    pub at: SimTime,
    /// Per-watched-connection: goodput during the interval in bits/s,
    /// per subflow.
    pub conn_subflow_bps: Vec<Vec<f64>>,
    /// Per-watched-connection congestion windows at the sample point.
    pub conn_cwnd: Vec<Vec<f64>>,
    /// Per-watched-link loss rate over the interval.
    pub link_loss: Vec<f64>,
}

impl Sample {
    /// Total goodput of watched connection `i` during the interval.
    pub fn conn_bps(&self, i: usize) -> f64 {
        self.conn_subflow_bps[i].iter().sum()
    }
}

/// A periodic sampler over a [`Simulator`].
#[derive(Debug)]
pub struct Recorder {
    interval: SimTime,
    conns: Vec<ConnId>,
    links: Vec<LinkId>,
    /// Last cumulative delivered counts per conn/subflow.
    last_delivered: Vec<Vec<u64>>,
    /// Last cumulative (offered, dropped) per link.
    last_link: Vec<(u64, u64)>,
    samples: Vec<Sample>,
    next_sample: SimTime,
}

impl Recorder {
    /// Create a recorder sampling every `interval`, watching the given
    /// connections and links. Must be created before the region of
    /// interest; the first interval starts at the simulator's current time.
    pub fn new(
        sim: &Simulator,
        interval: SimTime,
        conns: Vec<ConnId>,
        links: Vec<LinkId>,
    ) -> Self {
        assert!(interval > SimTime::ZERO, "sampling interval must be positive");
        let last_delivered = conns
            .iter()
            .map(|&c| {
                sim.connection_stats(c).subflows.iter().map(|s| s.delivered_pkts).collect()
            })
            .collect();
        let last_link = links
            .iter()
            .map(|&l| {
                let st = sim.link_stats(l);
                (st.offered, st.dropped())
            })
            .collect();
        let next_sample = sim.now() + interval;
        Self {
            interval,
            conns,
            links,
            last_delivered,
            last_link,
            samples: Vec::new(),
            next_sample,
        }
    }

    /// Run the simulator to `horizon`, taking samples on every interval
    /// boundary along the way.
    pub fn advance_to(&mut self, sim: &mut Simulator, horizon: SimTime) {
        while self.next_sample <= horizon {
            let at = self.next_sample;
            sim.run_until(at);
            self.take_sample(sim, at);
            self.next_sample = at + self.interval;
        }
        sim.run_until(horizon);
    }

    fn take_sample(&mut self, sim: &Simulator, at: SimTime) {
        let secs = self.interval.as_secs_f64();
        let mut conn_subflow_bps = Vec::with_capacity(self.conns.len());
        let mut conn_cwnd = Vec::with_capacity(self.conns.len());
        for (i, &c) in self.conns.iter().enumerate() {
            let st = sim.connection_stats(c);
            let mut bps = Vec::with_capacity(st.subflows.len());
            let mut cw = Vec::with_capacity(st.subflows.len());
            for (j, sf) in st.subflows.iter().enumerate() {
                let prev = self.last_delivered[i][j];
                bps.push((sf.delivered_pkts - prev) as f64 * st.packet_size as f64 * 8.0 / secs);
                cw.push(sf.cwnd);
                self.last_delivered[i][j] = sf.delivered_pkts;
            }
            conn_subflow_bps.push(bps);
            conn_cwnd.push(cw);
        }
        let mut link_loss = Vec::with_capacity(self.links.len());
        for (i, &l) in self.links.iter().enumerate() {
            let st = sim.link_stats(l);
            let (po, pd) = self.last_link[i];
            let offered = st.offered - po;
            let dropped = st.dropped() - pd;
            link_loss.push(if offered == 0 { 0.0 } else { dropped as f64 / offered as f64 });
            self.last_link[i] = (st.offered, st.dropped());
        }
        self.samples.push(Sample { at, conn_subflow_bps, conn_cwnd, link_loss });
    }

    /// The samples collected so far.
    pub fn samples(&self) -> &[Sample] {
        &self.samples
    }

    /// Mean goodput of connection `i` (bits/s) over all samples from
    /// `from` onward.
    pub fn mean_conn_bps(&self, i: usize, from: SimTime) -> f64 {
        let picked: Vec<f64> = self
            .samples
            .iter()
            .filter(|s| s.at >= from)
            .map(|s| s.conn_bps(i))
            .collect();
        if picked.is_empty() {
            0.0
        } else {
            picked.iter().sum::<f64>() / picked.len() as f64
        }
    }
}

/// Writes a [`ProbeLog`] as JSON Lines: one self-describing object per
/// line, `kind` ∈ `{"subflow", "link", "transition"}`, times in seconds.
///
/// The format is deliberately flat so any JSONL-aware tool (jq, pandas,
/// gnuplot via a filter) can consume it without a schema; see
/// EXPERIMENTS.md for plotting recipes. JSON is hand-rolled — this crate
/// takes no serialization dependency — and non-finite floats (ssthresh is
/// ∞ before the first loss) are emitted as `null`.
#[derive(Debug)]
pub struct TraceWriter<W: Write> {
    out: W,
}

impl<W: Write> TraceWriter<W> {
    /// Wrap a byte sink (a `File`, a `Vec<u8>`, a `BufWriter`, …).
    pub fn new(out: W) -> Self {
        Self { out }
    }

    /// Write every point and transition of `log`, time-ordered within each
    /// series, and return the sink.
    pub fn write_log(mut self, log: &ProbeLog) -> io::Result<W> {
        for p in &log.subflow_points {
            writeln!(
                self.out,
                "{{\"kind\":\"subflow\",\"at\":{},\"conn\":{},\"sub\":{},\"cwnd\":{},\
                 \"ssthresh\":{},\"srtt\":{},\"rto\":{},\"backoffs\":{},\"in_flight\":{},\
                 \"phase\":\"{}\"}}",
                json_f64(p.at.as_secs_f64()),
                p.conn,
                p.sub,
                json_f64(p.cwnd),
                json_f64(p.ssthresh),
                json_f64(p.srtt),
                json_f64(p.rto),
                p.backoffs,
                json_f64(p.in_flight),
                p.phase.as_str(),
            )?;
        }
        for p in &log.link_points {
            writeln!(
                self.out,
                "{{\"kind\":\"link\",\"at\":{},\"link\":{},\"queue_depth\":{},\"offered\":{},\
                 \"dropped_queue\":{},\"dropped_random\":{},\"dropped_down\":{},\
                 \"transmitted\":{}}}",
                json_f64(p.at.as_secs_f64()),
                p.link,
                p.queue_depth,
                p.offered,
                p.dropped_queue,
                p.dropped_random,
                p.dropped_down,
                p.transmitted,
            )?;
        }
        for t in &log.transitions {
            writeln!(
                self.out,
                "{{\"kind\":\"transition\",\"at\":{},\"conn\":{},\"sub\":{},\"event\":\"{}\"}}",
                json_f64(t.at.as_secs_f64()),
                t.conn,
                t.sub,
                t.kind.as_str(),
            )?;
        }
        self.out.flush()?;
        Ok(self.out)
    }
}

/// JSON-safe float formatting: finite values print as-is (Rust's `{}` for
/// f64 round-trips), non-finite become `null`.
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::probe::{ProbeSpec, TransitionKind};
    use crate::{ConnectionSpec, LinkSpec};
    use mptcp_cc::AlgorithmKind;

    #[test]
    fn recorder_samples_at_interval_boundaries() {
        let mut sim = Simulator::new(1);
        let l = sim.add_link(LinkSpec::mbps(10.0, SimTime::from_millis(10), 25));
        let c = sim.add_connection(ConnectionSpec::bulk(AlgorithmKind::Uncoupled).path(vec![l]));
        let mut rec = Recorder::new(&sim, SimTime::from_secs(1), vec![c], vec![l]);
        rec.advance_to(&mut sim, SimTime::from_secs(10));
        assert_eq!(rec.samples().len(), 10);
        assert_eq!(rec.samples()[0].at, SimTime::from_secs(1));
        assert_eq!(rec.samples()[9].at, SimTime::from_secs(10));
    }

    #[test]
    fn samples_reflect_steady_state_goodput() {
        let mut sim = Simulator::new(2);
        let l = sim.add_link(LinkSpec::mbps(10.0, SimTime::from_millis(10), 25));
        let c = sim.add_connection(ConnectionSpec::bulk(AlgorithmKind::Mptcp).path(vec![l]));
        let mut rec = Recorder::new(&sim, SimTime::from_secs(1), vec![c], vec![l]);
        rec.advance_to(&mut sim, SimTime::from_secs(20));
        let mean = rec.mean_conn_bps(0, SimTime::from_secs(5));
        assert!(mean > 8.5e6, "steady-state goodput {mean}");
        // Early samples (slow start) deliver less than late ones.
        let first = rec.samples()[0].conn_bps(0);
        assert!(first < mean, "slow start should be visible in sample 1");
    }

    #[test]
    fn link_loss_is_per_interval_not_cumulative() {
        let mut sim = Simulator::new(3);
        let l = sim.add_link(LinkSpec::mbps(10.0, SimTime::from_millis(10), 5));
        sim.add_connection(ConnectionSpec::bulk(AlgorithmKind::Uncoupled).path(vec![l]));
        let mut rec = Recorder::new(&sim, SimTime::from_secs(2), vec![], vec![l]);
        rec.advance_to(&mut sim, SimTime::from_secs(20));
        // Some interval must show loss (tiny buffer), and all rates are
        // valid probabilities.
        let losses: Vec<f64> = rec.samples().iter().map(|s| s.link_loss[0]).collect();
        assert!(losses.iter().any(|&p| p > 0.0));
        assert!(losses.iter().all(|&p| (0.0..=1.0).contains(&p)));
    }

    #[test]
    #[should_panic]
    fn zero_interval_rejected() {
        let sim = Simulator::new(0);
        let _ = Recorder::new(&sim, SimTime::ZERO, vec![], vec![]);
    }

    #[test]
    fn probe_samples_subflows_links_and_transitions() {
        let mut sim = Simulator::new(7);
        // Tiny buffer forces drop-tail losses → fast recoveries.
        let l = sim.add_link(LinkSpec::mbps(10.0, SimTime::from_millis(10), 5));
        let c = sim.add_connection(ConnectionSpec::bulk(AlgorithmKind::Mptcp).path(vec![l]));
        sim.enable_probe(ProbeSpec::every(SimTime::from_millis(100)));
        sim.run_until(SimTime::from_secs(10));
        let log = sim.probe_log().expect("probe enabled");
        assert_eq!(log.subflow_points.len(), 100, "one point per 100 ms tick");
        assert_eq!(log.link_points.len(), 100);
        assert!(log.subflow_points.iter().all(|p| p.conn == c && p.sub == 0));
        // Congestion avoidance with real losses: transitions were recorded
        // and the series shows the sawtooth (cwnd varies).
        assert!(
            log.transitions.iter().any(|t| t.kind == TransitionKind::EnterFastRecovery),
            "drop-tail losses must enter fast recovery"
        );
        let cwnds: Vec<f64> = log.subflow_series(c, 0, SimTime::ZERO).map(|p| p.cwnd).collect();
        let (min, max) =
            cwnds.iter().fold((f64::MAX, 0.0_f64), |(lo, hi), &w| (lo.min(w), hi.max(w)));
        assert!(max > min + 1.0, "sawtooth should be visible: {min}..{max}");
        // Link series: cumulative counters are monotone, queue bounded.
        for pair in log.link_points.windows(2) {
            assert!(pair[1].offered >= pair[0].offered);
            assert!(pair[1].dropped_queue >= pair[0].dropped_queue);
        }
        assert!(log.link_points.iter().all(|p| p.queue_depth <= 6));
        // Means are available for the oracle.
        assert!(log.mean_cwnd(c, 0, SimTime::from_secs(2)).unwrap() > 1.0);
        assert!(log.mean_srtt(c, 0, SimTime::from_secs(2)).unwrap() > 0.02);
    }

    #[test]
    fn probe_is_history_neutral() {
        // Identical seed with and without the probe → identical delivery
        // history (sampling must not perturb the packet-level run).
        let run = |probe: bool| {
            let mut sim = Simulator::new(11);
            let l = sim.add_link(LinkSpec::mbps(8.0, SimTime::from_millis(20), 10).with_loss(0.01));
            let c = sim.add_connection(ConnectionSpec::bulk(AlgorithmKind::Mptcp).path(vec![l]));
            if probe {
                sim.enable_probe(ProbeSpec::every(SimTime::from_millis(37)));
            }
            sim.run_until(SimTime::from_secs(15));
            let st = sim.connection_stats(c);
            (
                st.delivered_pkts(),
                st.subflows[0].retransmits,
                st.subflows[0].timeouts,
                st.subflows[0].cwnd.to_bits(),
            )
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn disable_probe_returns_log_and_stops_sampling() {
        let mut sim = Simulator::new(3);
        let l = sim.add_link(LinkSpec::mbps(10.0, SimTime::from_millis(10), 25));
        sim.add_connection(ConnectionSpec::bulk(AlgorithmKind::Uncoupled).path(vec![l]));
        sim.enable_probe(ProbeSpec::every(SimTime::from_secs(1)));
        sim.run_until(SimTime::from_secs(5));
        let log = sim.disable_probe().expect("was enabled");
        assert_eq!(log.subflow_points.len(), 5);
        assert!(sim.probe_log().is_none());
        sim.run_until(SimTime::from_secs(10));
        assert!(sim.disable_probe().is_none(), "no further log accumulates");
    }

    #[test]
    fn trace_writer_emits_valid_jsonl() {
        let mut sim = Simulator::new(5);
        let l = sim.add_link(LinkSpec::mbps(10.0, SimTime::from_millis(10), 5));
        sim.add_connection(ConnectionSpec::bulk(AlgorithmKind::Mptcp).path(vec![l]));
        // 10 ms ticks: the first few samples land during initial slow
        // start, while ssthresh is still ∞.
        sim.enable_probe(ProbeSpec::every(SimTime::from_millis(10)));
        sim.run_until(SimTime::from_secs(5));
        let log = sim.disable_probe().unwrap();
        let bytes = TraceWriter::new(Vec::new()).write_log(&log).unwrap();
        let text = String::from_utf8(bytes).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(
            lines.len(),
            log.subflow_points.len() + log.link_points.len() + log.transitions.len()
        );
        for line in &lines {
            assert!(line.starts_with('{') && line.ends_with('}'), "not an object: {line}");
            assert!(line.contains("\"kind\":\""));
            // ssthresh starts at ∞ → must serialize as null, never `inf`.
            assert!(!line.contains("inf") && !line.contains("NaN"), "bad float: {line}");
        }
        assert!(text.contains("\"kind\":\"subflow\""));
        assert!(text.contains("\"kind\":\"link\""));
        assert!(text.contains("\"ssthresh\":null"), "pre-loss ssthresh is ∞ → null");
    }
}
