//! Time-series measurement: periodic sampling of connection and link
//! state, for the paper's timeline figures (Fig. 10, Fig. 15, Fig. 17).
//!
//! [`Recorder`] wraps the "run a step, diff the counters" pattern every
//! timeline experiment needs: give it a sampling interval and the objects
//! to watch, then call [`Recorder::advance_to`] instead of
//! [`Simulator::run_until`]; it chops the run into sampling intervals and
//! records one [`Sample`] per interval.

use crate::link::LinkId;
use crate::sim::{ConnId, Simulator};
use crate::time::SimTime;

/// One sampling interval's measurements.
#[derive(Debug, Clone)]
pub struct Sample {
    /// End of the interval.
    pub at: SimTime,
    /// Per-watched-connection: goodput during the interval in bits/s,
    /// per subflow.
    pub conn_subflow_bps: Vec<Vec<f64>>,
    /// Per-watched-connection congestion windows at the sample point.
    pub conn_cwnd: Vec<Vec<f64>>,
    /// Per-watched-link loss rate over the interval.
    pub link_loss: Vec<f64>,
}

impl Sample {
    /// Total goodput of watched connection `i` during the interval.
    pub fn conn_bps(&self, i: usize) -> f64 {
        self.conn_subflow_bps[i].iter().sum()
    }
}

/// A periodic sampler over a [`Simulator`].
#[derive(Debug)]
pub struct Recorder {
    interval: SimTime,
    conns: Vec<ConnId>,
    links: Vec<LinkId>,
    /// Last cumulative delivered counts per conn/subflow.
    last_delivered: Vec<Vec<u64>>,
    /// Last cumulative (offered, dropped) per link.
    last_link: Vec<(u64, u64)>,
    samples: Vec<Sample>,
    next_sample: SimTime,
}

impl Recorder {
    /// Create a recorder sampling every `interval`, watching the given
    /// connections and links. Must be created before the region of
    /// interest; the first interval starts at the simulator's current time.
    pub fn new(
        sim: &Simulator,
        interval: SimTime,
        conns: Vec<ConnId>,
        links: Vec<LinkId>,
    ) -> Self {
        assert!(interval > SimTime::ZERO, "sampling interval must be positive");
        let last_delivered = conns
            .iter()
            .map(|&c| {
                sim.connection_stats(c).subflows.iter().map(|s| s.delivered_pkts).collect()
            })
            .collect();
        let last_link = links
            .iter()
            .map(|&l| {
                let st = sim.link_stats(l);
                (st.offered, st.dropped())
            })
            .collect();
        let next_sample = sim.now() + interval;
        Self {
            interval,
            conns,
            links,
            last_delivered,
            last_link,
            samples: Vec::new(),
            next_sample,
        }
    }

    /// Run the simulator to `horizon`, taking samples on every interval
    /// boundary along the way.
    pub fn advance_to(&mut self, sim: &mut Simulator, horizon: SimTime) {
        while self.next_sample <= horizon {
            let at = self.next_sample;
            sim.run_until(at);
            self.take_sample(sim, at);
            self.next_sample = at + self.interval;
        }
        sim.run_until(horizon);
    }

    fn take_sample(&mut self, sim: &Simulator, at: SimTime) {
        let secs = self.interval.as_secs_f64();
        let mut conn_subflow_bps = Vec::with_capacity(self.conns.len());
        let mut conn_cwnd = Vec::with_capacity(self.conns.len());
        for (i, &c) in self.conns.iter().enumerate() {
            let st = sim.connection_stats(c);
            let mut bps = Vec::with_capacity(st.subflows.len());
            let mut cw = Vec::with_capacity(st.subflows.len());
            for (j, sf) in st.subflows.iter().enumerate() {
                let prev = self.last_delivered[i][j];
                bps.push((sf.delivered_pkts - prev) as f64 * st.packet_size as f64 * 8.0 / secs);
                cw.push(sf.cwnd);
                self.last_delivered[i][j] = sf.delivered_pkts;
            }
            conn_subflow_bps.push(bps);
            conn_cwnd.push(cw);
        }
        let mut link_loss = Vec::with_capacity(self.links.len());
        for (i, &l) in self.links.iter().enumerate() {
            let st = sim.link_stats(l);
            let (po, pd) = self.last_link[i];
            let offered = st.offered - po;
            let dropped = st.dropped() - pd;
            link_loss.push(if offered == 0 { 0.0 } else { dropped as f64 / offered as f64 });
            self.last_link[i] = (st.offered, st.dropped());
        }
        self.samples.push(Sample { at, conn_subflow_bps, conn_cwnd, link_loss });
    }

    /// The samples collected so far.
    pub fn samples(&self) -> &[Sample] {
        &self.samples
    }

    /// Mean goodput of connection `i` (bits/s) over all samples from
    /// `from` onward.
    pub fn mean_conn_bps(&self, i: usize, from: SimTime) -> f64 {
        let picked: Vec<f64> = self
            .samples
            .iter()
            .filter(|s| s.at >= from)
            .map(|s| s.conn_bps(i))
            .collect();
        if picked.is_empty() {
            0.0
        } else {
            picked.iter().sum::<f64>() / picked.len() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ConnectionSpec, LinkSpec};
    use mptcp_cc::AlgorithmKind;

    #[test]
    fn recorder_samples_at_interval_boundaries() {
        let mut sim = Simulator::new(1);
        let l = sim.add_link(LinkSpec::mbps(10.0, SimTime::from_millis(10), 25));
        let c = sim.add_connection(ConnectionSpec::bulk(AlgorithmKind::Uncoupled).path(vec![l]));
        let mut rec = Recorder::new(&sim, SimTime::from_secs(1), vec![c], vec![l]);
        rec.advance_to(&mut sim, SimTime::from_secs(10));
        assert_eq!(rec.samples().len(), 10);
        assert_eq!(rec.samples()[0].at, SimTime::from_secs(1));
        assert_eq!(rec.samples()[9].at, SimTime::from_secs(10));
    }

    #[test]
    fn samples_reflect_steady_state_goodput() {
        let mut sim = Simulator::new(2);
        let l = sim.add_link(LinkSpec::mbps(10.0, SimTime::from_millis(10), 25));
        let c = sim.add_connection(ConnectionSpec::bulk(AlgorithmKind::Mptcp).path(vec![l]));
        let mut rec = Recorder::new(&sim, SimTime::from_secs(1), vec![c], vec![l]);
        rec.advance_to(&mut sim, SimTime::from_secs(20));
        let mean = rec.mean_conn_bps(0, SimTime::from_secs(5));
        assert!(mean > 8.5e6, "steady-state goodput {mean}");
        // Early samples (slow start) deliver less than late ones.
        let first = rec.samples()[0].conn_bps(0);
        assert!(first < mean, "slow start should be visible in sample 1");
    }

    #[test]
    fn link_loss_is_per_interval_not_cumulative() {
        let mut sim = Simulator::new(3);
        let l = sim.add_link(LinkSpec::mbps(10.0, SimTime::from_millis(10), 5));
        sim.add_connection(ConnectionSpec::bulk(AlgorithmKind::Uncoupled).path(vec![l]));
        let mut rec = Recorder::new(&sim, SimTime::from_secs(2), vec![], vec![l]);
        rec.advance_to(&mut sim, SimTime::from_secs(20));
        // Some interval must show loss (tiny buffer), and all rates are
        // valid probabilities.
        let losses: Vec<f64> = rec.samples().iter().map(|s| s.link_loss[0]).collect();
        assert!(losses.iter().any(|&p| p > 0.0));
        assert!(losses.iter().all(|&p| (0.0..=1.0).contains(&p)));
    }

    #[test]
    #[should_panic]
    fn zero_interval_rejected() {
        let sim = Simulator::new(0);
        let _ = Recorder::new(&sim, SimTime::ZERO, vec![], vec![]);
    }
}
