//! Measurement: per-subflow and per-connection statistics.

// lint:digest-surface — every pub struct here is sim-visible state and must
// implement `DetDigest` (enforced by `cargo xtask lint`), so it feeds the
// chaos_smoke bit-identity digest and cannot silently drift.

use crate::time::SimTime;
use mptcp_cc::impl_det_digest;

/// Counters for one subflow, as observed at the end of a run (or at a
/// sampling point — callers can diff successive snapshots for time series).
#[derive(Debug, Clone, Copy, Default)]
pub struct SubflowStats {
    /// Packets delivered in order at the receiver (goodput, packets).
    pub delivered_pkts: u64,
    /// New data packets sent (excluding retransmissions).
    pub sent_pkts: u64,
    /// Retransmissions performed.
    pub retransmits: u64,
    /// Retransmission timeouts suffered.
    pub timeouts: u64,
    /// Fast-recovery episodes entered.
    pub fast_recoveries: u64,
    /// Congestion window at sampling time, packets.
    pub cwnd: f64,
    /// Slow-start threshold at sampling time, packets (∞ before the first
    /// loss).
    pub ssthresh: f64,
    /// Smoothed RTT at sampling time, seconds (0 if no sample yet).
    pub srtt: f64,
    /// Effective (min/max-clamped) retransmission timeout at sampling
    /// time, seconds.
    pub rto: f64,
    /// Estimated packets in the network at sampling time (SACK `pipe`).
    pub in_flight: f64,
    /// Consecutive RTO backoffs without ACK progress at sampling time.
    pub rto_backoffs: u32,
    /// Whether the subflow currently counts as potentially failed
    /// (`rto_backoffs ≥` [`mptcp_cc::POTENTIALLY_FAILED_RTO_BACKOFFS`]):
    /// no new data is scheduled on it until an ACK revives it.
    pub potentially_failed: bool,
    /// Whether the subflow runs at backup priority: it carries no data
    /// while any primary subflow is usable, and activates only when the
    /// connection's failover state machine engages.
    pub backup: bool,
    /// Whether the subflow is administratively closed (its address was
    /// withdrawn via [`crate::FaultAction::AddrRemove`] or
    /// [`crate::Simulator::admin_close_subflow`]).
    pub closed: bool,
}

impl_det_digest!(SubflowStats {
    delivered_pkts,
    sent_pkts,
    retransmits,
    timeouts,
    fast_recoveries,
    cwnd,
    ssthresh,
    srtt,
    rto,
    in_flight,
    rto_backoffs,
    potentially_failed,
    backup,
    closed,
});

/// Statistics of a whole multipath connection.
#[derive(Debug, Clone, Default)]
pub struct ConnectionStats {
    /// Per-subflow counters.
    pub subflows: Vec<SubflowStats>,
    /// Packet size used by this connection, bytes.
    pub packet_size: u32,
    /// When the connection started sending.
    pub started_at: SimTime,
    /// When the last byte was acknowledged (finite flows only).
    pub finished_at: Option<SimTime>,
    /// Distinct data packets handed to subflows (data sequence numbers
    /// assigned so far).
    pub data_sent: u64,
    /// Distinct data packets that reached the receiver — each counted
    /// **once**, no matter how many subflow copies (original plus
    /// reinjections) arrived.
    pub data_delivered: u64,
    /// Distinct data packets acknowledged (each counted once).
    pub data_acked: u64,
    /// Arrivals of data the receiver already held via another subflow
    /// copy — the duplicate traffic reinjection trades for robustness.
    /// Exactly-once delivery means `data_delivered + dup_data_arrivals`
    /// equals total first-time subflow arrivals.
    pub dup_data_arrivals: u64,
    /// Reinjected copies handed to live subflows after another subflow
    /// was declared potentially failed.
    pub reinjections_sent: u64,
    /// Stranded data packets still waiting for a live subflow with window
    /// space.
    pub reinject_pending: u64,
    /// Whether backup subflows are carrying data right now (the failover
    /// state machine is engaged).
    pub backup_active: bool,
    /// Times the failover state machine engaged the backup subflows
    /// (every usable primary closed or potentially failed).
    pub backup_activations: u64,
    /// Runtime address advertisements received
    /// ([`crate::FaultAction::AddrAdd`] /
    /// [`crate::Simulator::admin_open_subflow`]).
    pub addr_advertised: u64,
    /// Subflows (re)opened at runtime.
    pub subflows_joined: u64,
    /// Subflows administratively closed at runtime
    /// ([`crate::FaultAction::AddrRemove`]).
    pub subflows_closed: u64,
    /// Latency of the most recent backup activation: from the first
    /// unanswered primary RTO to data moving onto the backups (zero when
    /// the primaries were closed by explicit signaling).
    pub failover_latency: Option<SimTime>,
}

impl_det_digest!(ConnectionStats {
    subflows,
    packet_size,
    started_at,
    finished_at,
    data_sent,
    data_delivered,
    data_acked,
    dup_data_arrivals,
    reinjections_sent,
    reinject_pending,
    backup_active,
    backup_activations,
    addr_advertised,
    subflows_joined,
    subflows_closed,
    failover_latency,
});

impl ConnectionStats {
    /// Total packets delivered in order across subflows.
    pub fn delivered_pkts(&self) -> u64 {
        self.subflows.iter().map(|s| s.delivered_pkts).sum()
    }

    /// Data-level goodput in bits/s from start to `now` (or completion):
    /// distinct data packets delivered, so reinjected duplicates are not
    /// double-counted the way per-subflow `delivered_pkts` would.
    pub fn data_throughput_bps(&self, now: SimTime) -> f64 {
        let end = self.finished_at.unwrap_or(now);
        let secs = end.saturating_sub(self.started_at).as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        self.data_delivered as f64 * self.packet_size as f64 * 8.0 / secs
    }

    /// Goodput in bits/s measured from connection start to `now` (or to
    /// completion for a finished finite flow).
    pub fn throughput_bps(&self, now: SimTime) -> f64 {
        let end = self.finished_at.unwrap_or(now);
        let secs = end.saturating_sub(self.started_at).as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        self.delivered_pkts() as f64 * self.packet_size as f64 * 8.0 / secs
    }

    /// Goodput in packets/s (the unit of several of the paper's scenarios).
    pub fn throughput_pps(&self, now: SimTime) -> f64 {
        let end = self.finished_at.unwrap_or(now);
        let secs = end.saturating_sub(self.started_at).as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        self.delivered_pkts() as f64 / secs
    }

    /// Completion time for a finite flow, if it finished.
    pub fn completion_time(&self) -> Option<SimTime> {
        self.finished_at.map(|end| end.saturating_sub(self.started_at))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_accounts_for_start_offset() {
        let stats = ConnectionStats {
            subflows: vec![SubflowStats { delivered_pkts: 1000, ..Default::default() }],
            packet_size: 1500,
            started_at: SimTime::from_secs(10),
            ..Default::default()
        };
        let bps = stats.throughput_bps(SimTime::from_secs(20));
        // 1000 pkts * 1500 B * 8 b / 10 s = 1.2 Mb/s.
        assert!((bps - 1.2e6).abs() < 1.0);
        assert!((stats.throughput_pps(SimTime::from_secs(20)) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn finished_flow_uses_completion_time() {
        let stats = ConnectionStats {
            subflows: vec![SubflowStats { delivered_pkts: 100, ..Default::default() }],
            packet_size: 1500,
            finished_at: Some(SimTime::from_secs(1)),
            ..Default::default()
        };
        assert!((stats.throughput_pps(SimTime::from_secs(100)) - 100.0).abs() < 1e-9);
        assert_eq!(stats.completion_time(), Some(SimTime::from_secs(1)));
    }

    #[test]
    fn zero_elapsed_yields_zero_throughput() {
        let stats = ConnectionStats {
            packet_size: 1500,
            ..Default::default()
        };
        assert_eq!(stats.throughput_bps(SimTime::ZERO), 0.0);
    }
}
