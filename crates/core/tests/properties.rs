//! Property-based tests for the congestion-control core.

use mptcp_cc::fluid::fairness::{check_fairness, jains_index};
use mptcp_cc::fluid::{equilibrium, tcp_window};
use mptcp_cc::{
    lia_increase_exhaustive, lia_increase_linear, Coupled, Ewtcp, Mptcp, MultipathCc,
    SemiCoupled, SubflowSnapshot, UncoupledReno,
};
use proptest::prelude::*;

/// Strategy: a subflow with a sane window (1..1000 pkts) and RTT (1ms..2s).
fn subflow() -> impl Strategy<Value = SubflowSnapshot> {
    (1.0_f64..1000.0, 0.001_f64..2.0).prop_map(|(w, rtt)| SubflowSnapshot::new(w, rtt))
}

fn subflows(max: usize) -> impl Strategy<Value = Vec<SubflowSnapshot>> {
    prop::collection::vec(subflow(), 1..=max)
}

proptest! {
    /// The appendix's linear-time search agrees with brute-force subset
    /// enumeration of eq. (1) for every subflow.
    #[test]
    fn lia_linear_equals_exhaustive(subs in subflows(8)) {
        for r in 0..subs.len() {
            let lin = lia_increase_linear(r, &subs);
            let exh = lia_increase_exhaustive(r, &subs);
            prop_assert!(
                (lin - exh).abs() <= 1e-9 * exh.max(1e-30),
                "r={r}: linear {lin} vs exhaustive {exh}, subs={subs:?}"
            );
        }
    }

    /// eq. (1)'s increase never exceeds regular TCP's 1/w_r (the §2.5 cap is
    /// built in via the singleton subset).
    #[test]
    fn lia_increase_never_beats_single_path_tcp(subs in subflows(8)) {
        for r in 0..subs.len() {
            let inc = lia_increase_linear(r, &subs);
            prop_assert!(inc <= 1.0 / subs[r].cwnd + 1e-12);
            prop_assert!(inc > 0.0);
        }
    }

    /// Every algorithm's increase is positive and its post-loss window is
    /// below the current window (decreases really decrease).
    #[test]
    fn increases_positive_decreases_decrease(subs in subflows(6)) {
        let ccs: Vec<Box<dyn MultipathCc>> = vec![
            Box::new(UncoupledReno::new()),
            Box::new(Ewtcp::equal_split(subs.len())),
            Box::new(Coupled::new()),
            Box::new(SemiCoupled::new()),
            Box::new(Mptcp::new()),
        ];
        for cc in &ccs {
            for r in 0..subs.len() {
                prop_assert!(cc.increase_per_ack(r, &subs) > 0.0, "{}", cc.name());
                prop_assert!(
                    cc.window_after_loss(r, &subs) < subs[r].cwnd,
                    "{} loss must shrink window", cc.name()
                );
            }
        }
    }

    /// The clamped decrease every sender uses never drops a subflow below
    /// the probing floor (≥ 1 packet), for all five algorithms — even on
    /// tiny windows where the raw COUPLED rule goes negative.
    #[test]
    fn clamped_decrease_never_strands_a_subflow(
        subs in prop::collection::vec(
            // Include sub-packet windows: repeated losses can leave the
            // snapshot below 1.0 before the next decrease fires.
            (0.01_f64..1000.0, 0.001_f64..2.0)
                .prop_map(|(w, rtt)| SubflowSnapshot::new(w, rtt)),
            1..=6,
        )
    ) {
        let ccs: Vec<Box<dyn MultipathCc>> = vec![
            Box::new(UncoupledReno::new()),
            Box::new(Ewtcp::equal_split(subs.len())),
            Box::new(Coupled::new()),
            Box::new(SemiCoupled::new()),
            Box::new(Mptcp::new()),
        ];
        for cc in &ccs {
            for r in 0..subs.len() {
                let w = cc.clamped_window_after_loss(r, &subs);
                prop_assert!(
                    w >= cc.min_window() && w.is_finite(),
                    "{}: clamped post-loss window {w} below floor", cc.name()
                );
            }
        }
    }

    /// eq. (1)'s linear form must not panic and must return a finite,
    /// non-negative increase for *any* snapshot contents, including the
    /// degenerate rtt == 0 / NaN / ∞ states reachable before the first RTT
    /// sample; on fully sane inputs it must still match the exhaustive
    /// enumeration.
    #[test]
    fn lia_linear_survives_degenerate_snapshots(
        raw in prop::collection::vec(
            (
                // The sane range is repeated so most draws are valid and the
                // mixed sane/degenerate combinations get exercised too.
                prop_oneof![
                    0.5_f64..1000.0,
                    0.5_f64..1000.0,
                    0.5_f64..1000.0,
                    Just(0.0),
                    Just(f64::NAN),
                    Just(f64::INFINITY),
                ],
                prop_oneof![
                    0.001_f64..2.0,
                    0.001_f64..2.0,
                    0.001_f64..2.0,
                    Just(0.0),
                    Just(f64::NAN),
                ],
            ),
            1..=6,
        )
    ) {
        let subs: Vec<SubflowSnapshot> =
            raw.iter().map(|&(w, rtt)| SubflowSnapshot::new(w, rtt)).collect();
        let sane = subs
            .iter()
            .all(|s| s.cwnd.is_finite() && s.cwnd > 0.0 && s.rtt.is_finite() && s.rtt > 0.0);
        for r in 0..subs.len() {
            let inc = lia_increase_linear(r, &subs);
            prop_assert!(inc.is_finite() && inc >= 0.0, "r={r}: inc {inc} subs={subs:?}");
            if sane {
                let exh = lia_increase_exhaustive(r, &subs);
                prop_assert!(
                    (inc - exh).abs() <= 1e-9 * exh.max(1e-30),
                    "r={r}: linear {inc} vs exhaustive {exh}"
                );
            } else {
                // Degenerate input: pinned to the singleton bound.
                let w = subs[r].cwnd;
                let expect =
                    if w.is_finite() && w > 0.0 { 1.0 / w } else { 0.0 };
                prop_assert!((inc - expect).abs() < 1e-12, "r={r}: {inc} vs {expect}");
            }
        }
    }

    /// Jain's index is always in (0, 1] and is exactly 1 for equal rates.
    #[test]
    fn jain_index_bounds(rates in prop::collection::vec(0.0_f64..1e6, 1..20)) {
        let j = jains_index(&rates);
        prop_assert!(j > 0.0 && j <= 1.0 + 1e-12, "jain {j} for {rates:?}");
    }

    #[test]
    fn jain_index_equal_rates_is_one(rate in 0.1_f64..1e6, n in 1usize..20) {
        let rates = vec![rate; n];
        let j = jains_index(&rates);
        prop_assert!((j - 1.0).abs() < 1e-9);
    }

    /// MPTCP's fluid equilibrium satisfies both §2.5 fairness constraints
    /// for arbitrary loss-rate/RTT combinations (the appendix theorem).
    #[test]
    fn mptcp_equilibrium_is_fair(
        paths in prop::collection::vec((0.001_f64..0.1, 0.01_f64..1.0), 2..=4)
    ) {
        let loss: Vec<f64> = paths.iter().map(|&(p, _)| p).collect();
        let rtt: Vec<f64> = paths.iter().map(|&(_, t)| t).collect();
        let w = equilibrium(&Mptcp::new(), &loss, &rtt);
        let rep = check_fairness(&w, &loss, &rtt, 0.08);
        prop_assert!(rep.incentive_ok, "incentive violated: {rep:?} loss={loss:?} rtt={rtt:?}");
        prop_assert!(rep.no_harm_ok, "no-harm violated: {rep:?} loss={loss:?} rtt={rtt:?}");
    }

    /// A single-path connection under any algorithm matches regular TCP's
    /// √(2/p) equilibrium (drop-in replacement requirement).
    #[test]
    fn single_path_equilibrium_is_tcp(p in 0.0005_f64..0.2, rtt in 0.005_f64..1.0) {
        let expected = tcp_window(p);
        for cc in [
            Box::new(UncoupledReno::new()) as Box<dyn MultipathCc>,
            Box::new(Coupled::new()),
            Box::new(SemiCoupled::new()),
            Box::new(Mptcp::new()),
            Box::new(Ewtcp::equal_split(1)),
        ] {
            let w = equilibrium(cc.as_ref(), &[p], &[rtt]);
            prop_assert!(
                (w[0] - expected).abs() / expected < 0.02,
                "{}: {} vs {}", cc.name(), w[0], expected
            );
        }
    }

    /// SEMICOUPLED's ODE equilibrium matches the paper's closed form.
    #[test]
    fn semicoupled_solver_matches_closed_form(
        loss in prop::collection::vec(0.002_f64..0.1, 2..=4)
    ) {
        let rtt = vec![0.1; loss.len()];
        let w = equilibrium(&SemiCoupled::new(), &loss, &rtt);
        let inv_sum: f64 = loss.iter().map(|p| 1.0 / p).sum();
        for (r, (&wr, &p)) in w.iter().zip(&loss).enumerate() {
            let expect = (2.0_f64).sqrt() * (1.0 / p) / inv_sum.sqrt();
            prop_assert!(
                (wr - expect).abs() / expect < 0.03,
                "path {r}: {} vs {}", wr, expect
            );
        }
    }
}
