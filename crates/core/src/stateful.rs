//! Stateful congestion controllers and the driver that lets them share the
//! sender plumbing with the pure [`MultipathCc`] layer.
//!
//! The paper's algorithms are pairs of *pure* update rules — that is what
//! [`MultipathCc`] models, and it is what makes them fluid-checkable. What
//! production stacks actually run (CUBIC epochs, OLIA's inter-loss
//! counters, wVegas's base-RTT filters) needs per-connection mutable state
//! and a notion of time. [`StatefulCc`] is that layer: per-ACK and per-loss
//! hooks that take `&mut self` plus the simulation clock, returning an
//! [`AckAction`] instead of a bare increment so controllers can also drive
//! phase changes (hybrid slow start's early exit).
//!
//! Determinism rules (DESIGN.md §3.2h): controller state is part of the
//! simulated world, so it must be `Send` (connections migrate across shard
//! worker threads), must expose its state to [`DetDigest`] (the chaos
//! digests must see it), and must derive every decision from snapshot
//! slices and the *simulated* clock — never wall time, never iteration
//! order of an unordered container.
// lint:digest-surface

use crate::algorithm::MultipathCc;
use crate::digest::{DetDigest, DigestWriter};
use crate::snapshot::SubflowSnapshot;

/// What a stateful controller wants done after one ACKed packet.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AckAction {
    /// Window change in packets (may be negative: delay-based controllers
    /// shrink without a loss; drivers clamp at the probing floor).
    pub grow: f64,
    /// Leave slow start now even though `cwnd < ssthresh` — hybrid slow
    /// start's delay-increase exit. The driver pins ssthresh to the current
    /// window so the sender re-enters congestion avoidance.
    pub exit_slow_start: bool,
}

crate::impl_det_digest!(AckAction { grow, exit_slow_start });

impl AckAction {
    /// Plain window growth, no phase change.
    pub fn grow(amount: f64) -> Self {
        Self { grow: amount, exit_slow_start: false }
    }
}

/// A congestion controller with per-connection mutable state.
///
/// Call contract (both the simulator and the protocol endpoint follow it):
///
/// * [`StatefulCc::on_ack`] fires once per newly ACKed **packet** while
///   growth is allowed, with a fresh snapshot slice, the simulated time in
///   seconds, and whether the sender considers itself in slow start;
/// * [`StatefulCc::window_after_loss`] fires once per loss episode (fast
///   retransmit or RTO), *before* the window is moved, and is where
///   loss-epoch state (CUBIC's `w_max`, OLIA's inter-loss counters) is
///   recorded;
/// * `Send` (no `Sync` requirement — unlike pure rules, a stateful
///   controller is owned by exactly one connection) so sharded simulators
///   can move connections across worker threads.
pub trait StatefulCc: Send {
    /// Short stable name, used in experiment output ("CUBIC", "OLIA", …).
    fn name(&self) -> &'static str;

    /// Process one newly ACKed packet on subflow `r`.
    fn on_ack(
        &mut self,
        r: usize,
        subs: &[SubflowSnapshot],
        now: f64,
        in_slow_start: bool,
    ) -> AckAction;

    /// The window subflow `r` should drop to on a loss event (before the
    /// probing floor is applied). Mutable: this is the loss-epoch hook.
    fn window_after_loss(&mut self, r: usize, subs: &[SubflowSnapshot], now: f64) -> f64;

    /// Probing floor, as in [`MultipathCc::min_window`].
    fn min_window(&self) -> f64 {
        1.0
    }

    /// Whether congestion avoidance is driven by delay rather than loss
    /// (labels probe-telemetry phases for controllers like wVegas).
    fn delay_based(&self) -> bool {
        false
    }

    /// Fold the controller's mutable state into a determinism digest.
    fn digest_state(&self, h: &mut DigestWriter);

    /// [`StatefulCc::window_after_loss`] with the probing floor applied —
    /// the same clamp as [`MultipathCc::clamped_window_after_loss`].
    fn clamped_window_after_loss(
        &mut self,
        r: usize,
        subs: &[SubflowSnapshot],
        now: f64,
    ) -> f64 {
        let raw = self.window_after_loss(r, subs, now);
        let floor = self.min_window();
        if raw.is_finite() {
            raw.max(floor)
        } else {
            floor
        }
    }
}

/// A pure [`MultipathCc`] rule worn as a [`StatefulCc`].
///
/// The adapter is *float-exact*: in slow start it grows by 1.0 per ACKed
/// packet and in congestion avoidance it returns `increase_per_ack`
/// verbatim, which is precisely the arithmetic the drivers perform on the
/// pure path. The stateful-vs-pure differential proptest pins the two
/// paths `DetDigest`-bit-identical on the chaos scenarios.
// lint:allow(digest-surface, reason = "holds only the wrapped pure rule, which is stateless by the MultipathCc contract; digest_state hashes the rule name and CcDriver tags the arm")
pub struct PureAdapter {
    inner: Box<dyn MultipathCc>,
}

impl PureAdapter {
    /// Wrap a pure rule.
    pub fn new(inner: Box<dyn MultipathCc>) -> Self {
        Self { inner }
    }
}

impl StatefulCc for PureAdapter {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn on_ack(
        &mut self,
        r: usize,
        subs: &[SubflowSnapshot],
        _now: f64,
        in_slow_start: bool,
    ) -> AckAction {
        if in_slow_start {
            AckAction::grow(1.0)
        } else {
            AckAction::grow(self.inner.increase_per_ack(r, subs))
        }
    }

    fn window_after_loss(&mut self, r: usize, subs: &[SubflowSnapshot], _now: f64) -> f64 {
        self.inner.window_after_loss(r, subs)
    }

    fn min_window(&self) -> f64 {
        self.inner.min_window()
    }

    fn digest_state(&self, h: &mut DigestWriter) {
        self.inner.name().det_digest(h);
    }
}

/// The controller a connection actually drives: either a pure paper rule
/// (the default — its call sequence is kept byte-for-byte identical to the
/// pre-stateful code so existing histories cannot shift) or a stateful
/// controller behind the per-ACK/per-loss hooks.
// lint:exhaustive
pub enum CcDriver {
    /// A pure, stateless paper rule.
    Pure(Box<dyn MultipathCc>),
    /// A controller with per-connection mutable state.
    Stateful(Box<dyn StatefulCc>),
}

impl CcDriver {
    /// The controller's stable name.
    pub fn name(&self) -> &'static str {
        match self {
            CcDriver::Pure(cc) => cc.name(),
            CcDriver::Stateful(cc) => cc.name(),
        }
    }

    /// The probing floor.
    pub fn min_window(&self) -> f64 {
        match self {
            CcDriver::Pure(cc) => cc.min_window(),
            CcDriver::Stateful(cc) => cc.min_window(),
        }
    }

    /// Whether congestion avoidance is delay-driven (see
    /// [`StatefulCc::delay_based`]); pure paper rules are all loss-driven.
    pub fn delay_based(&self) -> bool {
        match self {
            CcDriver::Pure(_) => false,
            CcDriver::Stateful(cc) => cc.delay_based(),
        }
    }

    /// The post-loss window with the probing floor applied. For a stateful
    /// controller this is also the loss-epoch hook (hence `&mut self` and
    /// the simulated clock); pure rules ignore `now`.
    pub fn clamped_window_after_loss(
        &mut self,
        r: usize,
        subs: &[SubflowSnapshot],
        now: f64,
    ) -> f64 {
        match self {
            CcDriver::Pure(cc) => cc.clamped_window_after_loss(r, subs),
            CcDriver::Stateful(cc) => cc.clamped_window_after_loss(r, subs, now),
        }
    }
}

impl std::fmt::Debug for CcDriver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CcDriver::Pure(cc) => write!(f, "Pure({})", cc.name()),
            CcDriver::Stateful(cc) => write!(f, "Stateful({})", cc.name()),
        }
    }
}

impl DetDigest for CcDriver {
    fn det_digest(&self, h: &mut DigestWriter) {
        match self {
            CcDriver::Pure(cc) => {
                h.write_u64(0);
                cc.name().det_digest(h);
            }
            CcDriver::Stateful(cc) => {
                h.write_u64(1);
                cc.digest_state(h);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AlgorithmKind, Mptcp};

    fn snaps() -> [SubflowSnapshot; 2] {
        [SubflowSnapshot::new(8.0, 0.02), SubflowSnapshot::new(12.0, 0.1)]
    }

    /// The adapter must be float-exact against the pure rule it wraps:
    /// same bits in congestion avoidance, exactly 1.0 in slow start, same
    /// loss level. This is the unit-level core of the differential digest
    /// property.
    #[test]
    fn pure_adapter_is_float_exact() {
        for kind in AlgorithmKind::all() {
            let Some(pure) = kind.try_build(2) else { continue };
            let mut adapted = PureAdapter::new(kind.try_build(2).unwrap());
            let subs = snaps();
            for r in 0..subs.len() {
                let act = adapted.on_ack(r, &subs, 1.5, false);
                assert_eq!(act.grow.to_bits(), pure.increase_per_ack(r, &subs).to_bits());
                assert!(!act.exit_slow_start);
                assert_eq!(adapted.on_ack(r, &subs, 1.5, true), AckAction::grow(1.0));
                assert_eq!(
                    adapted.clamped_window_after_loss(r, &subs, 2.0).to_bits(),
                    pure.clamped_window_after_loss(r, &subs).to_bits()
                );
            }
        }
    }

    #[test]
    fn stateful_clamp_matches_the_pure_clamp_contract() {
        struct Bad;
        impl StatefulCc for Bad {
            fn name(&self) -> &'static str {
                "BAD"
            }
            fn on_ack(&mut self, _: usize, _: &[SubflowSnapshot], _: f64, _: bool) -> AckAction {
                AckAction::grow(0.0)
            }
            fn window_after_loss(&mut self, _: usize, _: &[SubflowSnapshot], _: f64) -> f64 {
                f64::NAN
            }
            fn digest_state(&self, _: &mut DigestWriter) {}
        }
        let subs = snaps();
        assert_eq!(Bad.clamped_window_after_loss(0, &subs, 0.0), 1.0, "NaN → floor");
    }

    #[test]
    fn driver_reports_name_floor_and_digest_arm() {
        let pure = CcDriver::Pure(Box::new(Mptcp::new()));
        let adapted = CcDriver::Stateful(Box::new(PureAdapter::new(Box::new(Mptcp::new()))));
        assert_eq!(pure.name(), "MPTCP");
        assert_eq!(adapted.name(), "MPTCP");
        assert!((pure.min_window() - 1.0).abs() < 1e-12);
        assert!(!pure.delay_based() && !adapted.delay_based());
        // Same controller behind different arms digests differently (the
        // arm is part of the simulated configuration).
        assert_ne!(pure.digest_value(), adapted.digest_value());
    }

    /// `Box<dyn StatefulCc>` must stay `Send`: sharded simulators move
    /// connections (and therefore their controllers) across worker threads.
    #[test]
    fn driver_is_send() {
        fn assert_send<T: Send>() {}
        assert_send::<CcDriver>();
        assert_send::<Box<dyn StatefulCc>>();
    }
}
