//! Regular TCP (NewReno AIMD) run independently on every subflow.

use crate::algorithm::MultipathCc;
use crate::snapshot::SubflowSnapshot;

/// Uncoupled congestion control: each subflow behaves exactly like a regular
/// TCP flow ("why not just run regular TCP congestion control on each
/// subflow?", §2.1).
///
/// The paper's Fig. 1 shows why this is unacceptable as a deployable
/// multipath algorithm: at a shared bottleneck an `n`-path connection takes
/// `n` times the bandwidth of a competing single-path TCP. It is kept here as
/// the baseline every other algorithm is measured against, and because a
/// single-subflow connection under any of the coupled algorithms must reduce
/// to it.
#[derive(Debug, Clone, Copy, Default)]
pub struct UncoupledReno;

impl UncoupledReno {
    /// Create the baseline algorithm.
    pub fn new() -> Self {
        Self
    }
}

impl MultipathCc for UncoupledReno {
    fn name(&self) -> &'static str {
        "UNCOUPLED"
    }

    /// "Each ACK, increase the congestion window w by 1/w, resulting in an
    /// increase of one packet per RTT."
    fn increase_per_ack(&self, r: usize, subs: &[SubflowSnapshot]) -> f64 {
        1.0 / subs[r].cwnd
    }

    /// "Each loss, decrease w by w/2."
    fn window_after_loss(&self, r: usize, subs: &[SubflowSnapshot]) -> f64 {
        subs[r].cwnd / 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_paths() -> Vec<SubflowSnapshot> {
        vec![SubflowSnapshot::new(10.0, 0.01), SubflowSnapshot::new(40.0, 0.1)]
    }

    #[test]
    fn increase_is_one_over_own_window() {
        let cc = UncoupledReno::new();
        let subs = two_paths();
        assert!((cc.increase_per_ack(0, &subs) - 0.1).abs() < 1e-12);
        assert!((cc.increase_per_ack(1, &subs) - 0.025).abs() < 1e-12);
    }

    #[test]
    fn loss_halves_own_window_only() {
        let cc = UncoupledReno::new();
        let subs = two_paths();
        assert!((cc.window_after_loss(0, &subs) - 5.0).abs() < 1e-12);
        assert!((cc.window_after_loss(1, &subs) - 20.0).abs() < 1e-12);
    }

    #[test]
    fn ignores_other_subflows_entirely() {
        let cc = UncoupledReno::new();
        let lone = [SubflowSnapshot::new(10.0, 0.01)];
        let crowded = two_paths();
        assert_eq!(cc.increase_per_ack(0, &lone), cc.increase_per_ack(0, &crowded));
        assert_eq!(cc.window_after_loss(0, &lone), cc.window_after_loss(0, &crowded));
    }
}
