//! Deterministic state digests — the trait behind the `chaos_smoke`
//! bit-identity gate.
//!
//! The repo's strongest runtime guarantee is that a simulation is
//! bit-for-bit reproducible given a seed; `chaos_smoke` enforces it by
//! comparing digests of end-of-run state across serial and parallel
//! executions. [`DetDigest`] is how state gets *into* that digest: a
//! structural fold over every field, hashed with a fixed-constant FNV-1a
//! (never `std`'s seeded `RandomState`), so the digest itself is stable
//! across processes, platforms and runs.
//!
//! Implementations come from [`impl_det_digest!`], which **destructures the
//! struct exhaustively**: adding a field without deciding whether it is
//! digest-relevant is a compile error, so new sim state cannot silently
//! escape the determinism gate. Fields that are legitimately wall-clock
//! dependent (e.g. `SimPerf::wall`) are listed in the macro's `skip` block,
//! which still names them in the destructuring pattern.
//!
//! The `xtask lint` `digest-surface` rule closes the loop statically: every
//! `pub struct` in a file marked `// lint:digest-surface` must have a
//! `DetDigest` impl (normally via the macro) somewhere in its crate.

/// Structural, order-sensitive digest of sim-visible state.
///
/// The contract: two values that are `==`-equal in every digest-relevant
/// field produce the same digest, and the digest depends on **no**
/// per-process state (hasher seeds, addresses, wall-clock readings).
pub trait DetDigest {
    /// Fold `self` into the writer.
    fn det_digest(&self, h: &mut DigestWriter);

    /// Convenience: digest `self` alone and return the 64-bit value.
    fn digest_value(&self) -> u64 {
        let mut h = DigestWriter::new();
        self.det_digest(&mut h);
        h.finish()
    }
}

/// FNV-1a (64-bit) with the standard offset basis and prime — fixed
/// constants, deliberately *not* `DefaultHasher`/`RandomState`, which are
/// seeded per process.
#[derive(Debug, Clone)]
pub struct DigestWriter(u64);

impl DigestWriter {
    const OFFSET_BASIS: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    /// A fresh writer at the FNV offset basis.
    pub fn new() -> Self {
        Self(Self::OFFSET_BASIS)
    }

    /// Fold raw bytes.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
    }

    /// Fold a `u64` (little-endian bytes).
    pub fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// The accumulated digest.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for DigestWriter {
    fn default() -> Self {
        Self::new()
    }
}

macro_rules! digest_as_u64 {
    ($($ty:ty),+) => {
        $(impl DetDigest for $ty {
            fn det_digest(&self, h: &mut DigestWriter) {
                h.write_u64(*self as u64);
            }
        })+
    };
}

digest_as_u64!(u8, u16, u32, u64, usize, bool);

impl DetDigest for i64 {
    fn det_digest(&self, h: &mut DigestWriter) {
        h.write_u64(*self as u64);
    }
}

impl DetDigest for f64 {
    /// Digest the exact bit pattern (`to_bits`), so `-0.0` vs `0.0` and
    /// distinct NaN payloads are distinguished — a digest, unlike an
    /// ordering, must never conflate states that arithmetic can tell apart.
    fn det_digest(&self, h: &mut DigestWriter) {
        h.write_u64(self.to_bits());
    }
}

impl DetDigest for str {
    fn det_digest(&self, h: &mut DigestWriter) {
        h.write_u64(self.len() as u64);
        h.write_bytes(self.as_bytes());
    }
}

impl DetDigest for String {
    fn det_digest(&self, h: &mut DigestWriter) {
        self.as_str().det_digest(h);
    }
}

impl<T: DetDigest> DetDigest for Option<T> {
    /// Tagged: `None` and `Some(default)` digest differently.
    fn det_digest(&self, h: &mut DigestWriter) {
        match self {
            None => h.write_u64(0),
            Some(v) => {
                h.write_u64(1);
                v.det_digest(h);
            }
        }
    }
}

impl<T: DetDigest> DetDigest for [T] {
    /// Length-prefixed so `[[a], [b]]` and `[[a, b]]` digest differently.
    fn det_digest(&self, h: &mut DigestWriter) {
        h.write_u64(self.len() as u64);
        for v in self {
            v.det_digest(h);
        }
    }
}

impl<T: DetDigest> DetDigest for Vec<T> {
    fn det_digest(&self, h: &mut DigestWriter) {
        self.as_slice().det_digest(h);
    }
}

impl<T: DetDigest + ?Sized> DetDigest for &T {
    fn det_digest(&self, h: &mut DigestWriter) {
        (**self).det_digest(h);
    }
}

/// Implement [`DetDigest`] for a struct by exhaustively destructuring it.
///
/// ```
/// use mptcp_cc::impl_det_digest;
///
/// pub struct Counters {
///     pub hits: u64,
///     pub misses: u64,
///     pub wall_secs: f64, // measurement artefact, not sim state
/// }
/// impl_det_digest!(Counters { hits, misses } skip { wall_secs });
/// ```
///
/// Every field must appear in either the digest list or the `skip` block;
/// a newly added field makes the generated `let Self { .. }` pattern
/// non-exhaustive and the crate stops compiling until the author decides
/// where the field belongs. Skip only fields that are *not* part of the
/// reproducible simulation outcome (wall-clock measurements and the like).
#[macro_export]
macro_rules! impl_det_digest {
    ($ty:ident { $($field:ident),+ $(,)? }) => {
        $crate::impl_det_digest!($ty { $($field),+ } skip {});
    };
    ($ty:ident { $($field:ident),+ $(,)? } skip { $($skipped:ident),* $(,)? }) => {
        impl $crate::digest::DetDigest for $ty {
            fn det_digest(&self, h: &mut $crate::digest::DigestWriter) {
                // Exhaustive: a new field fails to compile until it is
                // added to the digest list or the skip block.
                let Self { $($field,)+ $($skipped: _,)* } = self;
                $($crate::digest::DetDigest::det_digest($field, h);)+
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_constants_are_the_reference_ones() {
        // FNV-1a test vector: the empty input hashes to the offset basis,
        // and "a" to the well-known 0xaf63dc4c8601ec8c.
        assert_eq!(DigestWriter::new().finish(), 0xcbf2_9ce4_8422_2325);
        let mut h = DigestWriter::new();
        h.write_bytes(b"a");
        assert_eq!(h.finish(), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn option_tagging_distinguishes_none_from_default() {
        assert_ne!(None::<u64>.digest_value(), Some(0u64).digest_value());
    }

    #[test]
    fn length_prefix_distinguishes_splits() {
        let a: Vec<Vec<u64>> = vec![vec![1], vec![2]];
        let b: Vec<Vec<u64>> = vec![vec![1, 2]];
        assert_ne!(a.digest_value(), b.digest_value());
    }

    #[test]
    fn float_digest_is_bitwise() {
        assert_ne!(0.0f64.digest_value(), (-0.0f64).digest_value());
        // NaN digests to something stable (bit pattern), not a panic.
        let n = f64::NAN.digest_value();
        assert_eq!(n, f64::NAN.digest_value());
    }

    #[test]
    fn macro_digests_fields_and_skips_listed_ones() {
        struct S {
            a: u64,
            b: f64,
            wall: f64,
        }
        impl_det_digest!(S { a, b } skip { wall });
        let x = S { a: 1, b: 2.0, wall: 0.123 };
        let y = S { a: 1, b: 2.0, wall: 9.876 };
        assert_ne!(x.wall, y.wall);
        assert_eq!(x.digest_value(), y.digest_value(), "skipped field must not matter");
        let z = S { a: 1, b: 2.5, wall: 0.123 };
        assert_ne!(x.digest_value(), z.digest_value());
    }
}
