//! CUBIC (RFC 8312) per subflow, with hybrid slow start — what a
//! production single-path stack actually runs, as the uncoupled baseline
//! the multipath algorithms are swept against.
//!
//! Each subflow runs an independent CUBIC loop (no coupling — like
//! [`crate::UncoupledReno`], this is the "what if we just bond n regular
//! TCPs" strawman, with today's window growth function instead of Reno's).
//! The controller is stateful three times over: the cubic epoch
//! (`w_max`, `K`, epoch start time), the TCP-friendly Reno estimate, and
//! hybrid slow start's per-round min-RTT filter.
//!
//! * On loss at window `w`: remember `w_max` (with fast convergence:
//!   `w_max ← w·(2−β)/2` when the new peak is below the old), reset the
//!   epoch, drop to `β·w` with `β = 0.7`.
//! * Per ACK in congestion avoidance: the target is
//!   `W(t+RTT) = C·(t+RTT−K)³ + w_max` with `K = ∛((w_max−w₀)/C)`,
//!   approached at `(target−w)/w` per ACK (minimum probe of `0.01/w`,
//!   growth capped at 0.5 packets per ACK — Linux's `cnt ≥ 2` rule), and
//!   never slower than the Reno-friendly window `w_tcp`.
//! * Hybrid slow start (HyStart's delay-increase heuristic): track the min
//!   RTT per round; if a round's min exceeds the previous round's by
//!   `max(last/8, 4 ms)` after ≥ 8 samples, exit slow start at the current
//!   window instead of overshooting to the first loss.
//!
//! Determinism: all timing uses the simulated clock handed to
//! [`StatefulCc::on_ack`]; RTT samples come from the snapshot slice.
// lint:digest-surface

use crate::digest::{DetDigest, DigestWriter};
use crate::snapshot::SubflowSnapshot;
use crate::stateful::{AckAction, StatefulCc};

/// RFC 8312 constant `C` (window units per second³).
const C: f64 = 0.4;
/// Multiplicative decrease factor β (window retained after a loss).
const BETA: f64 = 0.7;
/// HyStart: minimum RTT samples per round before the exit test applies.
const HYSTART_MIN_SAMPLES: u32 = 8;
/// HyStart: absolute floor of the delay-increase threshold, seconds.
const HYSTART_DELAY_FLOOR: f64 = 0.004;
/// Per-ACK growth cap in congestion avoidance (Linux's `cnt ≥ 2`).
const MAX_GROW_PER_ACK: f64 = 0.5;

/// One subflow's CUBIC + HyStart state.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CubicPath {
    /// Window just before the last multiplicative decrease (the plateau
    /// the cubic curve aims back at).
    pub w_max: f64,
    /// Epoch start on the simulated clock; `None` until the first
    /// congestion-avoidance ACK after a loss (or after slow start).
    pub epoch_start: Option<f64>,
    /// Time offset `K` at which the cubic curve crosses `w_max`.
    pub k: f64,
    /// Window at the start of the epoch (`w₀` in the `K` derivation).
    pub w_origin: f64,
    /// Round start time of the HyStart filter.
    pub round_start: f64,
    /// Min RTT observed in the current round.
    pub curr_min_rtt: f64,
    /// Min RTT observed in the previous round.
    pub last_min_rtt: f64,
    /// RTT samples taken in the current round.
    pub samples: u32,
}

crate::impl_det_digest!(CubicPath {
    w_max,
    epoch_start,
    k,
    w_origin,
    round_start,
    curr_min_rtt,
    last_min_rtt,
    samples
});

impl Default for CubicPath {
    fn default() -> Self {
        Self {
            w_max: 0.0,
            epoch_start: None,
            k: 0.0,
            w_origin: 0.0,
            round_start: -1.0,
            curr_min_rtt: f64::INFINITY,
            last_min_rtt: f64::INFINITY,
            samples: 0,
        }
    }
}

impl CubicPath {
    /// HyStart bookkeeping for one ACK; returns `true` when the
    /// delay-increase exit condition fired.
    fn hystart_sample(&mut self, now: f64, rtt: f64) -> bool {
        if self.round_start < 0.0 || now - self.round_start >= rtt {
            // Round boundary: rotate the min-RTT filter.
            self.last_min_rtt = self.curr_min_rtt;
            self.curr_min_rtt = f64::INFINITY;
            self.samples = 0;
            self.round_start = now;
        }
        self.curr_min_rtt = self.curr_min_rtt.min(rtt);
        self.samples += 1;
        if self.samples >= HYSTART_MIN_SAMPLES && self.last_min_rtt.is_finite() {
            let threshold = self.last_min_rtt + (self.last_min_rtt / 8.0).max(HYSTART_DELAY_FLOOR);
            if self.curr_min_rtt >= threshold {
                return true;
            }
        }
        false
    }

    /// Start a cubic epoch from window `w` at time `now`.
    fn start_epoch(&mut self, now: f64, w: f64) {
        self.epoch_start = Some(now);
        self.w_origin = w;
        if w < self.w_max {
            self.k = ((self.w_max - w) / C).cbrt();
        } else {
            // At or above the old plateau: probe forward from here.
            self.k = 0.0;
            self.w_max = w;
        }
    }

    /// The cubic window `W(t)` for an epoch elapsed time `t`.
    fn w_cubic(&self, t: f64) -> f64 {
        let d = t - self.k;
        C * d * d * d + self.w_max
    }
}

/// Per-subflow CUBIC with hybrid slow start.
#[derive(Debug, Clone, Default)]
pub struct Cubic {
    /// One state block per subflow slot, grown on demand.
    pub paths: Vec<CubicPath>,
}

crate::impl_det_digest!(Cubic { paths });

impl Cubic {
    /// A fresh controller.
    pub fn new() -> Self {
        Self::default()
    }

    fn ensure(&mut self, len: usize) {
        if self.paths.len() < len {
            self.paths.resize(len, CubicPath::default());
        }
    }
}

impl StatefulCc for Cubic {
    fn name(&self) -> &'static str {
        "CUBIC"
    }

    fn on_ack(
        &mut self,
        r: usize,
        subs: &[SubflowSnapshot],
        now: f64,
        in_slow_start: bool,
    ) -> AckAction {
        self.ensure(subs.len());
        let w = subs[r].cwnd;
        let rtt = subs[r].rtt;
        let path = &mut self.paths[r];
        if in_slow_start {
            let exit = path.hystart_sample(now, rtt);
            if exit {
                // Leaving slow start without a loss: the current window is
                // the plateau the cubic curve should orbit.
                path.w_max = w;
                path.epoch_start = None;
            }
            return AckAction { grow: 1.0, exit_slow_start: exit };
        }
        if path.epoch_start.is_none() {
            path.start_epoch(now, w);
        }
        let t = now - path.epoch_start.unwrap_or(now);
        let target = path.w_cubic(t + rtt);
        let cubic_grow = if target > w { (target - w) / w } else { 0.01 / w };
        // TCP-friendly region (RFC 8312 §4.2): never slower than a Reno
        // flow that saw the same loss, W_est = β·w_max + (3(1−β)/(1+β))·t/RTT.
        let w_est = path.w_max * BETA + (3.0 * (1.0 - BETA) / (1.0 + BETA)) * (t / rtt.max(1e-6));
        let friendly_grow = if w_est > w { (w_est - w) / w } else { 0.0 };
        AckAction::grow(cubic_grow.max(friendly_grow).min(MAX_GROW_PER_ACK))
    }

    fn window_after_loss(&mut self, r: usize, subs: &[SubflowSnapshot], _now: f64) -> f64 {
        self.ensure(subs.len());
        let w = subs[r].cwnd;
        let path = &mut self.paths[r];
        // Fast convergence: a peak below the previous plateau means
        // capacity shrank — release the extra window sooner.
        path.w_max = if w < path.w_max { w * (2.0 - BETA) / 2.0 } else { w };
        path.epoch_start = None;
        w * BETA
    }

    fn digest_state(&self, h: &mut DigestWriter) {
        self.det_digest(h);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one(w: f64, rtt: f64) -> [SubflowSnapshot; 1] {
        [SubflowSnapshot::new(w, rtt)]
    }

    #[test]
    fn loss_drops_to_beta_and_remembers_the_plateau() {
        let mut cc = Cubic::new();
        let level = cc.window_after_loss(0, &one(100.0, 0.05), 1.0);
        assert!((level - 70.0).abs() < 1e-9);
        assert!((cc.paths[0].w_max - 100.0).abs() < 1e-9);
        // A lower second peak engages fast convergence: w_max < the peak.
        let level2 = cc.window_after_loss(0, &one(80.0, 0.05), 2.0);
        assert!((level2 - 56.0).abs() < 1e-9);
        assert!((cc.paths[0].w_max - 80.0 * (2.0 - BETA) / 2.0).abs() < 1e-9);
    }

    /// The concave phase: far below the plateau the window climbs fast,
    /// then flattens as it approaches w_max — growth at t=0 exceeds growth
    /// near K. (Windows are large so the TCP-friendly floor stays inactive
    /// and the cubic curve itself is what's measured.)
    #[test]
    fn concave_phase_decelerates_toward_the_plateau() {
        let mut cc = Cubic::new();
        let rtt = 0.1;
        cc.window_after_loss(0, &one(10_000.0, rtt), 0.0);
        let early = cc.on_ack(0, &one(9_000.0, rtt), 0.0, false).grow;
        // Near the plateau, later in the epoch.
        let k = cc.paths[0].k;
        let late = cc.on_ack(0, &one(9_990.0, rtt), k * 0.95, false).grow;
        assert!(
            early > late,
            "cubic concave phase must decelerate: early {early} vs late {late}"
        );
        assert!(late >= 0.01 / 9_990.0 - 1e-15, "probe floor holds");
    }

    /// Past K the curve turns convex: growth accelerates again while
    /// probing above the old plateau.
    #[test]
    fn convex_phase_accelerates_past_the_plateau() {
        let mut cc = Cubic::new();
        let rtt = 0.1;
        cc.window_after_loss(0, &one(10_000.0, rtt), 0.0);
        cc.on_ack(0, &one(9_000.0, rtt), 0.0, false);
        let k = cc.paths[0].k;
        let just_past = cc.on_ack(0, &one(10_000.0, rtt), k + 0.5, false).grow;
        let far_past = cc.on_ack(0, &one(10_000.0, rtt), k + 2.0, false).grow;
        assert!(far_past > just_past, "{far_past} vs {just_past}");
    }

    /// The TCP-friendly region (RFC 8312 §4.2): deep in an epoch with a
    /// small window, growth must track the Reno estimate rather than the
    /// nearly-flat cubic curve.
    #[test]
    fn tcp_friendly_region_floors_the_growth() {
        let mut cc = Cubic::new();
        let rtt = 0.05;
        cc.window_after_loss(0, &one(100.0, rtt), 0.0);
        cc.on_ack(0, &one(70.0, rtt), 0.0, false);
        // 4 s ≈ 80 RTTs in: Reno would sit at 0.7·100 + 80·0.529 ≈ 112,
        // well above the cubic curve still crawling toward 100.
        let g = cc.on_ack(0, &one(99.0, rtt), 4.0, false).grow;
        let w_est = 70.0 + (3.0 * 0.3 / 1.7) * (4.0 / rtt);
        assert!(w_est > 100.0, "test premise: Reno estimate passed the plateau");
        let friendly = ((w_est - 99.0) / 99.0).min(MAX_GROW_PER_ACK);
        assert!((g - friendly).abs() < 1e-9, "grow {g} vs friendly floor {friendly}");
    }

    #[test]
    fn growth_is_capped_per_ack() {
        let mut cc = Cubic::new();
        cc.window_after_loss(0, &one(1000.0, 0.05), 0.0);
        // Ten simulated minutes into the epoch the raw cubic target is
        // astronomically far away; the per-ACK cap must hold.
        let g = cc.on_ack(0, &one(10.0, 0.05), 600.0, false).grow;
        assert!((g - MAX_GROW_PER_ACK).abs() < 1e-12);
    }

    #[test]
    fn hystart_exits_on_a_sustained_rtt_increase() {
        let mut cc = Cubic::new();
        let base_rtt = 0.05;
        let mut now = 0.0;
        // Round 1: flat RTTs establish the baseline.
        for _ in 0..10 {
            let act = cc.on_ack(0, &one(10.0, base_rtt), now, true);
            assert!(!act.exit_slow_start);
            now += 0.001;
        }
        // Force a round boundary (even at the inflated RTT), then feed
        // inflated RTTs (queue building).
        now += 2.0 * base_rtt;
        let inflated = base_rtt * 1.5;
        let mut exited = false;
        for _ in 0..10 {
            if cc.on_ack(0, &one(40.0, inflated), now, true).exit_slow_start {
                exited = true;
                break;
            }
            now += 0.001;
        }
        assert!(exited, "a 50% RTT inflation must trip the HyStart exit");
        // The exit pinned the plateau at the exit window.
        assert!((cc.paths[0].w_max - 40.0).abs() < 1e-9);
    }

    #[test]
    fn hystart_stays_in_slow_start_on_flat_rtts() {
        let mut cc = Cubic::new();
        let mut now = 0.0;
        for _ in 0..200 {
            let act = cc.on_ack(0, &one(10.0, 0.05), now, true);
            assert!(!act.exit_slow_start, "flat RTTs must not exit slow start");
            now += 0.002;
        }
    }

    /// Subflows are independent: a loss on path 0 must not reset path 1's
    /// epoch.
    #[test]
    fn paths_are_uncoupled() {
        let mut cc = Cubic::new();
        let subs =
            [SubflowSnapshot::new(50.0, 0.05), SubflowSnapshot::new(50.0, 0.05)];
        cc.on_ack(1, &subs, 0.0, false);
        let epoch1 = cc.paths[1].epoch_start;
        cc.window_after_loss(0, &subs, 1.0);
        assert_eq!(cc.paths[1].epoch_start, epoch1);
        assert!(cc.paths[0].epoch_start.is_none());
    }
}
