//! wVegas — weighted Vegas, the delay-based multipath controller (Cao,
//! Xu & Fu, ICNP 2012; surveyed in Kimura & Loureiro, arXiv:1812.03210).
//!
//! Where the loss-based family reacts to drops, wVegas watches the gap
//! between expected (`w/base_rtt`) and actual (`w/rtt`) rate: the number
//! of packets the flow itself keeps queued in the bottleneck,
//! `diff = w·(1 − base_rtt/rtt)`. Each path tries to hold `diff` inside a
//! band `[α_r, α_r + 2]` where the per-path target `α_r` is its share of a
//! connection-wide queue budget, weighted by the path's fraction of the
//! total rate — congested paths earn smaller shares, which is what
//! migrates traffic off them (the paper's congestion-equality principle).
//!
//! State: the per-path `base_rtt` filter (min RTT observed — the
//! propagation-delay estimate) makes this a [`StatefulCc`]. Determinism
//! rules: the filter is a pure running min over snapshot RTTs, so it is
//! reproducible from the simulated history alone.
//!
//! No fluid oracle cell: our fluid solver drives dynamics with per-path
//! *loss* rates, which never reach a delay-based equilibrium (wVegas backs
//! off before the queue fills). wVegas is swept in the packet experiments
//! only.
// lint:digest-surface

use crate::digest::{DetDigest, DigestWriter};
use crate::snapshot::SubflowSnapshot;
use crate::stateful::{AckAction, StatefulCc};

/// Connection-wide queue budget (total packets kept in flight beyond the
/// bandwidth-delay product, split across paths by rate share).
const TOTAL_ALPHA: f64 = 10.0;
/// Hysteresis band width above the per-path target.
const BAND: f64 = 2.0;

/// Per-path state: the propagation-delay estimate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WvegasPathState {
    /// Minimum RTT observed on this path, seconds (the base-RTT filter);
    /// `INFINITY` until the first sample.
    pub base_rtt: f64,
}

crate::impl_det_digest!(WvegasPathState { base_rtt });

impl Default for WvegasPathState {
    fn default() -> Self {
        Self { base_rtt: f64::INFINITY }
    }
}

/// The wVegas controller.
#[derive(Debug, Clone, Default)]
pub struct Wvegas {
    /// One filter per subflow slot, grown on demand.
    pub paths: Vec<WvegasPathState>,
}

crate::impl_det_digest!(Wvegas { paths });

impl Wvegas {
    /// A fresh controller (no RTT history).
    pub fn new() -> Self {
        Self::default()
    }

    fn ensure(&mut self, len: usize) {
        if self.paths.len() < len {
            self.paths.resize(len, WvegasPathState::default());
        }
    }
}

impl StatefulCc for Wvegas {
    fn name(&self) -> &'static str {
        "WVEGAS"
    }

    fn on_ack(
        &mut self,
        r: usize,
        subs: &[SubflowSnapshot],
        _now: f64,
        in_slow_start: bool,
    ) -> AckAction {
        self.ensure(subs.len());
        let rtt = subs[r].rtt;
        self.paths[r].base_rtt = self.paths[r].base_rtt.min(rtt);
        let base = self.paths[r].base_rtt;
        let w = subs[r].cwnd;
        if in_slow_start {
            // Vegas-style guarded slow start: bail out as soon as the flow
            // queues more than its whole target budget, instead of doubling
            // into a loss.
            let diff = w * (1.0 - base / rtt);
            if diff > TOTAL_ALPHA {
                return AckAction { grow: 0.0, exit_slow_start: true };
            }
            return AckAction::grow(1.0);
        }
        // Rate-share weight: x_r / Σ x_k over live paths.
        let x_r = w / rtt;
        let sum_x: f64 = subs.iter().filter(|s| s.active).map(|s| s.rate()).sum();
        if sum_x <= 0.0 || !sum_x.is_finite() {
            return AckAction::grow(0.0);
        }
        // Per-path queue target, floored at one packet so a starved path
        // keeps probing (same rationale as the §2.4 window floor).
        let alpha_r = (TOTAL_ALPHA * x_r / sum_x).max(1.0);
        let diff = w * (1.0 - base / rtt);
        if diff < alpha_r {
            AckAction::grow(1.0 / w)
        } else if diff > alpha_r + BAND {
            AckAction::grow(-1.0 / w)
        } else {
            AckAction::grow(0.0)
        }
    }

    fn window_after_loss(&mut self, r: usize, subs: &[SubflowSnapshot], _now: f64) -> f64 {
        // Losses still halve the window — delay control normally prevents
        // them, but random (non-queue) loss must keep standard behaviour.
        subs[r].cwnd / 2.0
    }

    fn delay_based(&self) -> bool {
        true
    }

    fn digest_state(&self, h: &mut DigestWriter) {
        self.det_digest(h);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drive on_ack once to seed the base-RTT filter at `base`, then
    /// return the controller.
    fn seeded(base: f64) -> Wvegas {
        let mut cc = Wvegas::new();
        cc.on_ack(0, &[SubflowSnapshot::new(2.0, base)], 0.0, true);
        cc
    }

    #[test]
    fn base_rtt_filter_takes_the_running_min() {
        let mut cc = Wvegas::new();
        for rtt in [0.08, 0.05, 0.06, 0.09] {
            cc.on_ack(0, &[SubflowSnapshot::new(4.0, rtt)], 0.0, true);
        }
        assert!((cc.paths[0].base_rtt - 0.05).abs() < 1e-12);
    }

    #[test]
    fn window_grows_below_band_and_shrinks_above() {
        let mut cc = seeded(0.05);
        // rtt == base: diff = 0 < α ⇒ grow.
        let g = cc.on_ack(0, &[SubflowSnapshot::new(10.0, 0.05)], 1.0, false);
        assert!((g.grow - 0.1).abs() < 1e-12);
        // Heavy self-queueing: w(1 − base/rtt) = 30·0.5 = 15 > α + 2 ⇒
        // back off without any loss.
        let s = cc.on_ack(0, &[SubflowSnapshot::new(30.0, 0.10)], 2.0, false);
        assert!((s.grow + 1.0 / 30.0).abs() < 1e-12, "negative grow, got {}", s.grow);
        // Inside the band: hold.
        // α = 10 (single path), diff = w(1−0.05/rtt) ≈ 11 ∈ [10, 12] at
        // w = 33, rtt = 0.075.
        let h = cc.on_ack(0, &[SubflowSnapshot::new(33.0, 0.075)], 3.0, false);
        assert_eq!(h.grow.to_bits(), 0.0_f64.to_bits(), "hold inside the band");
    }

    /// The weighting: with two paths at equal windows, the path whose RTT
    /// inflated (congested) gets a smaller α target, so it backs off while
    /// the clean path still grows — traffic migrates off congestion.
    #[test]
    fn congested_path_earns_the_smaller_target() {
        let mut cc = Wvegas::new();
        let clean = SubflowSnapshot::new(20.0, 0.05);
        let congested = SubflowSnapshot::new(20.0, 0.15);
        // Seed both base-RTT filters at 50 ms.
        cc.on_ack(0, &[clean, SubflowSnapshot::new(20.0, 0.05)], 0.0, true);
        cc.on_ack(1, &[clean, SubflowSnapshot::new(20.0, 0.05)], 0.0, true);
        let subs = [clean, congested];
        let g0 = cc.on_ack(0, &subs, 1.0, false);
        let g1 = cc.on_ack(1, &subs, 1.0, false);
        assert!(g0.grow > 0.0, "clean path keeps growing, got {}", g0.grow);
        assert!(g1.grow < 0.0, "congested path backs off, got {}", g1.grow);
    }

    #[test]
    fn slow_start_exits_once_the_queue_budget_is_spent() {
        let mut cc = seeded(0.05);
        // diff = 40·(1 − 0.05/0.1) = 20 > 10 ⇒ exit without a loss.
        let act = cc.on_ack(0, &[SubflowSnapshot::new(40.0, 0.1)], 1.0, true);
        assert!(act.exit_slow_start);
        assert_eq!(act.grow.to_bits(), 0.0_f64.to_bits());
        // Shallow queue: keep slow-starting.
        let act = cc.on_ack(0, &[SubflowSnapshot::new(8.0, 0.06)], 2.0, true);
        assert!(!act.exit_slow_start);
        assert!((act.grow - 1.0).abs() < 1e-12);
    }

    #[test]
    fn loss_still_halves() {
        let mut cc = seeded(0.05);
        let level = cc.window_after_loss(0, &[SubflowSnapshot::new(12.0, 0.05)], 1.0);
        assert!((level - 6.0).abs() < 1e-12);
        assert!(cc.delay_based());
    }
}
